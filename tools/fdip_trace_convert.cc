/**
 * @file fdip_trace_convert.cc
 * Convert a trace into the native v2 format (docs/TRACES.md):
 *
 *   fdip_trace_convert --in workload.champsim.trace.xz \
 *       --out workload.fdip.trace [--max-insts <n>]
 *
 * ChampSim inputs stream through the canonicalizing reader (one full
 * pass unless capped); native v1 inputs are rewritten record for
 * record, gaining the v2 delta encoding and code-range header. The
 * output header's code range is backpatched to the tight extent the
 * input actually used.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "common/error.hh"
#include "trace/champsim.hh"
#include "trace/trace_file.hh"

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --in <path> --out <path> [--max-insts <n>]\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string in;
    std::string out;
    std::uint64_t max_insts = std::numeric_limits<std::uint64_t>::max();

    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             flag);
                usage(argv[0]);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--in") == 0)
            in = need("--in");
        else if (std::strcmp(argv[i], "--out") == 0)
            out = need("--out");
        else if (std::strcmp(argv[i], "--max-insts") == 0)
            max_insts = std::strtoull(need("--max-insts"), nullptr, 10);
        else
            usage(argv[0]);
    }
    if (in.empty() || out.empty() || max_insts == 0)
        usage(argv[0]);

    try {
        fdip::TraceFileWriter writer(out);
        fdip::Addr code_base = 0;
        fdip::Addr code_end = 0;

        if (fdip::isChampSimTracePath(in)) {
            fdip::ChampSimTraceReader reader(in);
            // One full pass over the source: the reader loops
            // seamlessly, so stop when it enters its second pass and
            // the canonical instructions of the first are drained.
            while (writer.written() < max_insts &&
                   (reader.sourcePasses() == 0 || reader.hasPending())) {
                writer.append(reader.next());
            }
            code_base = reader.codeBase();
            code_end = reader.allocatedEnd();
            std::printf("converted %llu champsim records -> %llu "
                        "canonical insts\n",
                        static_cast<unsigned long long>(
                            reader.recordsRead()),
                        static_cast<unsigned long long>(writer.written()));
        } else {
            fdip::TraceFileReader reader(in);
            std::uint64_t n = std::min(max_insts, reader.numInsts());
            for (std::uint64_t i = 0; i < n; ++i)
                writer.append(reader.next());
            code_base = reader.codeBase();
            code_end = reader.codeEnd();
            std::printf("rewrote %llu insts (input v%u -> v%u)\n",
                        static_cast<unsigned long long>(n),
                        reader.version(), fdip::traceFileVersion);
        }

        writer.setCodeRange(code_base, code_end);
        writer.close();
        std::printf("wrote %s (code [%#llx, %#llx))\n", out.c_str(),
                    static_cast<unsigned long long>(code_base),
                    static_cast<unsigned long long>(code_end));
    } catch (const fdip::SimError &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
    }
    return 0;
}
