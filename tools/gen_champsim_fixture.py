#!/usr/bin/env python3
"""Generate tests/fixtures/mini.champsim.trace — a small, deterministic
ChampSim-format trace that exercises every branch-classification
heuristic and the PC-canonicalizer's interesting paths (taken targets,
cond taken/not-taken, call/return, alternating indirect-call targets, a
fall-through into already-mapped code, a heuristic-fallback branch).

Record layout (64 bytes, matching trace/champsim.hh):
  u64 ip; u8 is_branch; u8 branch_taken;
  u8 dst_regs[2]; u8 src_regs[4]; u64 dst_mem[2]; u64 src_mem[4]

Regenerate with:  python3 tools/gen_champsim_fixture.py
The byte-level golden decode in tests/test_trace_ingest.cc pins the
result; rerun it with FDIP_UPDATE_GOLDEN=1 after regenerating.
"""

import os
import struct

SP, FLAGS, IP = 6, 25, 26
GPR = 3  # an "other" register

HERE = os.path.dirname(os.path.abspath(__file__))
OUT = os.path.join(HERE, "..", "tests", "fixtures", "mini.champsim.trace")


def rec(ip, is_branch=0, taken=0, dst=(), src=()):
    dst = list(dst) + [0] * (2 - len(dst))
    src = list(src) + [0] * (4 - len(src))
    return struct.pack(
        "<QBB2B4B2Q4Q", ip, is_branch, taken, *dst, *src, 0, 0, 0, 0, 0, 0
    )


def noncf(ip):
    return rec(ip, dst=[GPR], src=[GPR])


def jump(ip):
    return rec(ip, 1, 1, dst=[IP], src=[IP])


def indjump(ip):
    return rec(ip, 1, 1, dst=[IP], src=[GPR])


def cond(ip, taken):
    return rec(ip, 1, taken, dst=[IP], src=[IP, FLAGS])


def call(ip):
    return rec(ip, 1, 1, dst=[IP, SP], src=[IP, SP])


def indcall(ip):
    return rec(ip, 1, 1, dst=[IP, SP], src=[SP, GPR])


def ret(ip):
    return rec(ip, 1, 1, dst=[IP, SP], src=[SP])


def fallback_branch(ip):
    # is_branch set but no IP write: the heuristics cannot place it, so
    # the reader degrades it to a conditional branch.
    return rec(ip, 1, 0, dst=[GPR], src=[GPR])


# The dynamic stream: each entry's successor is the next entry's ip
# (ChampSim stores no targets); the trace loops, so the last record's
# successor is the first record again.
records = [
    noncf(0x401000),
    noncf(0x401003),
    call(0x401008),        # -> 0x402000
    noncf(0x402000),
    ret(0x402004),         # -> 0x40100D (return site)
    cond(0x40100D, 1),     # taken -> 0x401020
    noncf(0x401020),
    jump(0x401023),        # -> 0x401030
    indcall(0x401030),     # -> 0x403000
    ret(0x403000),         # -> 0x401035
    cond(0x401035, 1),     # taken back-edge -> 0x40100D (already mapped)
    cond(0x40100D, 1),     # taken -> 0x401020 again
    noncf(0x401020),
    jump(0x401023),        # -> 0x401030
    indcall(0x401030),     # alternating target -> 0x404000
    indjump(0x404000),     # -> 0x401035
    cond(0x401035, 0),     # NOT taken -> 0x40103A
    noncf(0x40103A),
    noncf(0x40103D),       # gap: "falls through" to mapped 0x401000
    noncf(0x401000),
    noncf(0x401003),
    call(0x401008),        # -> 0x402000
    noncf(0x402000),
    ret(0x402004),         # -> 0x40100D
    cond(0x40100D, 0),     # NOT taken -> 0x401012
    fallback_branch(0x401012),  # heuristic fallback, not taken
    noncf(0x401015),
    jump(0x401018),        # -> 0x401030
    indcall(0x401030),     # -> 0x403000
    ret(0x403000),         # -> 0x401035
    cond(0x401035, 0),     # NOT taken -> 0x40103A
    noncf(0x40103A),
    # Last record: its successor wraps to 0x401000 — the same gap the
    # canonicalizer already resolved for this ip at record 19.
    noncf(0x40103D),
]

os.makedirs(os.path.dirname(OUT), exist_ok=True)
with open(OUT, "wb") as f:
    for r in records:
        assert len(r) == 64
        f.write(r)
print(f"wrote {len(records)} records ({len(records) * 64} bytes) to {OUT}")
