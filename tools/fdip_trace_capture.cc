/**
 * @file fdip_trace_capture.cc
 * Record a synthetic workload's instruction stream into a native v2
 * trace file (docs/TRACES.md):
 *
 *   fdip_trace_capture --workload gcc --out gcc.fdip.trace \
 *       [--insts 1000000] [--seed-offset 0]
 *
 * The resulting file replays through any trace-workload hook
 * ("trace:<path>" workloads, SimConfig::tracePath) bit-identically to
 * the live executor.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/error.hh"
#include "trace/profile.hh"
#include "trace/synth_builder.hh"
#include "trace/trace_file.hh"

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --workload <name> --out <path> "
                 "[--insts <n>] [--seed-offset <n>]\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload;
    std::string out;
    std::uint64_t insts = 1000 * 1000;
    std::uint64_t seed_offset = 0;

    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             flag);
                usage(argv[0]);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--workload") == 0)
            workload = need("--workload");
        else if (std::strcmp(argv[i], "--out") == 0)
            out = need("--out");
        else if (std::strcmp(argv[i], "--insts") == 0)
            insts = std::strtoull(need("--insts"), nullptr, 10);
        else if (std::strcmp(argv[i], "--seed-offset") == 0)
            seed_offset = std::strtoull(need("--seed-offset"), nullptr, 10);
        else
            usage(argv[0]);
    }
    if (workload.empty() || out.empty() || insts == 0)
        usage(argv[0]);

    try {
        fdip::WorkloadProfile profile = fdip::findProfile(workload);
        profile.seed += seed_offset;
        auto prog = fdip::buildProgram(profile);
        fdip::SyntheticExecutor exec(*prog, profile);
        fdip::writeTraceFile(out, exec, insts, prog->base,
                             prog->codeEnd());
        std::printf("captured %llu insts of '%s' into %s "
                    "(code [%#llx, %#llx))\n",
                    static_cast<unsigned long long>(insts),
                    workload.c_str(), out.c_str(),
                    static_cast<unsigned long long>(prog->base),
                    static_cast<unsigned long long>(prog->codeEnd()));
    } catch (const fdip::SimError &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
    }
    return 0;
}
