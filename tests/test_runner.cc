/** Tests for the experiment runner and aggregate helpers. */

#include <gtest/gtest.h>

#include "sim/runner.hh"

using namespace fdip;

TEST(Runner, MemoizesRuns)
{
    Runner r(20 * 1000, 60 * 1000);
    const SimResults &a = r.run("li", PrefetchScheme::None);
    const SimResults &b = r.run("li", PrefetchScheme::None);
    EXPECT_EQ(&a, &b); // same cached object
}

TEST(Runner, DistinctTweakKeysDistinctRuns)
{
    Runner r(20 * 1000, 60 * 1000);
    const SimResults &a = r.run("li", PrefetchScheme::None);
    const SimResults &b = r.run(
        "li", PrefetchScheme::None, "bigcache",
        [](SimConfig &cfg) { cfg.mem.l1i.sizeBytes = 64 * 1024; });
    EXPECT_NE(&a, &b);
}

TEST(Runner, SpeedupAgainstBaseline)
{
    Runner r(20 * 1000, 80 * 1000);
    double s = r.speedup("gcc", PrefetchScheme::FdpRemove);
    EXPECT_GT(s, 0.0);
    // Baseline against itself is zero.
    EXPECT_DOUBLE_EQ(r.speedup("gcc", PrefetchScheme::None), 0.0);
}

TEST(Runner, EnqueueThenRunPendingFillsMemo)
{
    Runner r(20 * 1000, 60 * 1000);
    r.setJobs(2);
    r.enqueue("li", PrefetchScheme::None);
    r.enqueue("li", PrefetchScheme::None); // duplicate: ignored
    EXPECT_EQ(r.pendingRuns(), 1u);
    r.runPending();
    EXPECT_EQ(r.pendingRuns(), 0u);
    EXPECT_EQ(r.cachedRuns(), 1u);

    // run() must serve the memoized object, not re-simulate.
    const SimResults &a = r.run("li", PrefetchScheme::None);
    const SimResults &b = r.run("li", PrefetchScheme::None);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(r.cachedRuns(), 1u);

    // Enqueueing an already-memoized point is a no-op.
    r.enqueue("li", PrefetchScheme::None);
    EXPECT_EQ(r.pendingRuns(), 0u);
}

TEST(Runner, EnqueueSpeedupQueuesBaseline)
{
    Runner r(20 * 1000, 60 * 1000);
    r.enqueueSpeedup("li", PrefetchScheme::FdpRemove);
    EXPECT_EQ(r.pendingRuns(), 2u); // scheme + no-prefetch baseline
}

TEST(Runner, SlashInTweakKeyCannotCollide)
{
    // Memo keys are (workload, scheme, tweak_key) tuples, so "/" in a
    // tweak key is just a character, not a separator that could make
    // two distinct points alias.
    Runner r(20 * 1000, 60 * 1000);
    const SimResults &plain = r.run("li", PrefetchScheme::None);
    const SimResults &slashy = r.run(
        "li", PrefetchScheme::None, "cache/64k",
        [](SimConfig &cfg) { cfg.mem.l1i.sizeBytes = 64 * 1024; });
    EXPECT_NE(&plain, &slashy);
    EXPECT_EQ(r.cachedRuns(), 2u);
    // Same slashy key memoizes to the same point.
    EXPECT_EQ(&slashy, &r.run("li", PrefetchScheme::None, "cache/64k"));
}

TEST(Runner, JobsConfiguration)
{
    EXPECT_GE(Runner::defaultJobs(), 1u);
    Runner r(20 * 1000, 60 * 1000);
    r.setJobs(3);
    EXPECT_EQ(r.jobs(), 3u);
    r.setJobs(0); // clamped
    EXPECT_EQ(r.jobs(), 1u);
}

TEST(Aggregates, GmeanSpeedup)
{
    EXPECT_DOUBLE_EQ(gmeanSpeedup({}), 0.0);
    EXPECT_NEAR(gmeanSpeedup({0.1}), 0.1, 1e-12);
    // gmean(1.0, 1.21) - 1 = 0.1 exactly for {0.0, 0.21}.
    EXPECT_NEAR(gmeanSpeedup({0.0, 0.21}), 0.1, 1e-12);
    // Order invariant.
    EXPECT_NEAR(gmeanSpeedup({0.21, 0.0}), gmeanSpeedup({0.0, 0.21}),
                1e-12);
}

TEST(Aggregates, Mean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}
