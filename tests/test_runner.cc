/** Tests for the experiment runner and aggregate helpers. */

#include <gtest/gtest.h>

#include "sim/runner.hh"

using namespace fdip;

TEST(Runner, MemoizesRuns)
{
    Runner r(20 * 1000, 60 * 1000);
    const SimResults &a = r.run("li", PrefetchScheme::None);
    const SimResults &b = r.run("li", PrefetchScheme::None);
    EXPECT_EQ(&a, &b); // same cached object
}

TEST(Runner, DistinctTweakKeysDistinctRuns)
{
    Runner r(20 * 1000, 60 * 1000);
    const SimResults &a = r.run("li", PrefetchScheme::None);
    const SimResults &b = r.run(
        "li", PrefetchScheme::None, "bigcache",
        [](SimConfig &cfg) { cfg.mem.l1i.sizeBytes = 64 * 1024; });
    EXPECT_NE(&a, &b);
}

TEST(Runner, SpeedupAgainstBaseline)
{
    Runner r(20 * 1000, 80 * 1000);
    double s = r.speedup("gcc", PrefetchScheme::FdpRemove);
    EXPECT_GT(s, 0.0);
    // Baseline against itself is zero.
    EXPECT_DOUBLE_EQ(r.speedup("gcc", PrefetchScheme::None), 0.0);
}

TEST(Aggregates, GmeanSpeedup)
{
    EXPECT_DOUBLE_EQ(gmeanSpeedup({}), 0.0);
    EXPECT_NEAR(gmeanSpeedup({0.1}), 0.1, 1e-12);
    // gmean(1.0, 1.21) - 1 = 0.1 exactly for {0.0, 0.21}.
    EXPECT_NEAR(gmeanSpeedup({0.0, 0.21}), 0.1, 1e-12);
    // Order invariant.
    EXPECT_NEAR(gmeanSpeedup({0.21, 0.0}), gmeanSpeedup({0.0, 0.21}),
                1e-12);
}

TEST(Aggregates, Mean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}
