/** Tests for the experiment runner and aggregate helpers. */

#include <cstdlib>

#include <gtest/gtest.h>

#include "sim/runner.hh"

using namespace fdip;

namespace
{

// Runner defaults its on-disk result cache from FDIP_CACHE_DIR;
// these tests must be hermetic regardless of the invoking shell's
// environment (and must not pollute a developer's bench cache).
[[maybe_unused]] const bool env_cleared = [] {
    unsetenv("FDIP_CACHE_DIR");
    unsetenv("FDIP_NO_CACHE");
    return true;
}();

} // namespace

TEST(Runner, MemoizesRuns)
{
    Runner r(20 * 1000, 60 * 1000);
    const SimResults &a = r.run("li", PrefetchScheme::None);
    const SimResults &b = r.run("li", PrefetchScheme::None);
    EXPECT_EQ(&a, &b); // same cached object
}

TEST(Runner, DistinctTweakKeysDistinctRuns)
{
    Runner r(20 * 1000, 60 * 1000);
    const SimResults &a = r.run("li", PrefetchScheme::None);
    const SimResults &b = r.run(
        "li", PrefetchScheme::None, "bigcache",
        [](SimConfig &cfg) { cfg.mem.l1i.sizeBytes = 64 * 1024; });
    EXPECT_NE(&a, &b);
}

TEST(Runner, SpeedupAgainstBaseline)
{
    Runner r(20 * 1000, 80 * 1000);
    double s = r.speedup("gcc", PrefetchScheme::FdpRemove);
    EXPECT_GT(s, 0.0);
    // Baseline against itself is zero.
    EXPECT_DOUBLE_EQ(r.speedup("gcc", PrefetchScheme::None), 0.0);
}

TEST(Runner, EnqueueThenRunPendingFillsMemo)
{
    Runner r(20 * 1000, 60 * 1000);
    r.setJobs(2);
    r.enqueue("li", PrefetchScheme::None);
    r.enqueue("li", PrefetchScheme::None); // duplicate: ignored
    EXPECT_EQ(r.pendingRuns(), 1u);
    r.runPending();
    EXPECT_EQ(r.pendingRuns(), 0u);
    EXPECT_EQ(r.memoizedRuns(), 1u);

    // run() must serve the memoized object, not re-simulate.
    const SimResults &a = r.run("li", PrefetchScheme::None);
    const SimResults &b = r.run("li", PrefetchScheme::None);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(r.memoizedRuns(), 1u);

    // Enqueueing an already-memoized point is a no-op.
    r.enqueue("li", PrefetchScheme::None);
    EXPECT_EQ(r.pendingRuns(), 0u);
}

TEST(Runner, EnqueueSpeedupQueuesBaseline)
{
    Runner r(20 * 1000, 60 * 1000);
    r.enqueueSpeedup("li", PrefetchScheme::FdpRemove);
    EXPECT_EQ(r.pendingRuns(), 2u); // scheme + no-prefetch baseline
}

TEST(Runner, SlashInTweakKeyCannotCollide)
{
    // Memo keys are (workload, scheme, tweak_key) tuples, so "/" in a
    // tweak key is just a character, not a separator that could make
    // two distinct points alias.
    Runner r(20 * 1000, 60 * 1000);
    const SimResults &plain = r.run("li", PrefetchScheme::None);
    const SimResults &slashy = r.run(
        "li", PrefetchScheme::None, "cache/64k",
        [](SimConfig &cfg) { cfg.mem.l1i.sizeBytes = 64 * 1024; });
    EXPECT_NE(&plain, &slashy);
    EXPECT_EQ(r.memoizedRuns(), 2u);
    // Same slashy key memoizes to the same point.
    EXPECT_EQ(&slashy, &r.run("li", PrefetchScheme::None, "cache/64k"));
}

TEST(Runner, SameKeySameConfigDistinctClosuresAccepted)
{
    // Two textually distinct closures that materialize the same config
    // are the same grid point (the enqueue-mirror/table-loop pattern
    // every bench uses); the fingerprint must not reject them.
    Runner r(20 * 1000, 60 * 1000);
    auto grow = [](SimConfig &cfg) { cfg.mem.l1i.sizeBytes = 64 * 1024; };
    auto grow2 = [](SimConfig &cfg) { cfg.mem.l1i.sizeBytes = 64 * 1024; };
    r.enqueue("li", PrefetchScheme::None, "bigcache", grow);
    r.runPending();
    const SimResults &a =
        r.run("li", PrefetchScheme::None, "bigcache", grow2);
    const SimResults &b =
        r.run("li", PrefetchScheme::None, "bigcache", grow);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(r.memoizedRuns(), 1u);
}

TEST(RunnerDeath, StaleConfigServeIsImpossible)
{
    // The ROADMAP hazard: the memo key used to ignore the tweak
    // closure, so a second tweak reusing a key name was silently
    // served the first tweak's results. The config fingerprint now
    // makes that fatal, in every order the drift can happen.

    // run() after run() with a drifted tweak under the same key.
    EXPECT_DEATH(
        {
            Runner r(10 * 1000, 20 * 1000);
            r.run("li", PrefetchScheme::None, "tweaked",
                  [](SimConfig &cfg) { cfg.ftqEntries = 8; });
            r.run("li", PrefetchScheme::None, "tweaked",
                  [](SimConfig &cfg) { cfg.ftqEntries = 16; });
        },
        "memo-key collision");

    // enqueue() drifting from an earlier enqueue of the same key.
    EXPECT_DEATH(
        {
            Runner r(10 * 1000, 20 * 1000);
            r.enqueue("li", PrefetchScheme::None, "tweaked",
                      [](SimConfig &cfg) { cfg.ftqEntries = 8; });
            r.enqueue("li", PrefetchScheme::None, "tweaked",
                      [](SimConfig &cfg) { cfg.ftqEntries = 16; });
        },
        "memo-key collision");

    // A tweak reusing the un-tweaked baseline's empty key.
    EXPECT_DEATH(
        {
            Runner r(10 * 1000, 20 * 1000);
            r.enqueue("li", PrefetchScheme::None);
            r.enqueue("li", PrefetchScheme::None, "",
                      [](SimConfig &cfg) { cfg.ftqEntries = 8; });
        },
        "memo-key collision");

    // A tweak-less run() under the anonymous "" key claims the
    // un-tweaked baseline even on a cache hit, so a tweak memoized
    // under "" must not be served to it silently.
    EXPECT_DEATH(
        {
            Runner r(10 * 1000, 20 * 1000);
            r.enqueue("li", PrefetchScheme::None, "",
                      [](SimConfig &cfg) { cfg.ftqEntries = 8; });
            r.runPending();
            r.run("li", PrefetchScheme::None);
        },
        "memo-key collision");

    // A tweak-less run() that *simulates* under a named key defines
    // that key as the un-tweaked config; a later tweaked claim on the
    // same name must not be served the memoized baseline.
    EXPECT_DEATH(
        {
            Runner r(10 * 1000, 20 * 1000);
            r.run("li", PrefetchScheme::None, "tweaked");
            r.run("li", PrefetchScheme::None, "tweaked",
                  [](SimConfig &cfg) { cfg.mem.dramLatency = 400; });
        },
        "memo-key collision");
}

TEST(Runner, JobsConfiguration)
{
    EXPECT_GE(Runner::defaultJobs(), 1u);
    Runner r(20 * 1000, 60 * 1000);
    r.setJobs(3);
    EXPECT_EQ(r.jobs(), 3u);
    r.setJobs(0); // clamped
    EXPECT_EQ(r.jobs(), 1u);
}

TEST(Aggregates, GmeanSpeedup)
{
    EXPECT_DOUBLE_EQ(gmeanSpeedup({}), 0.0);
    EXPECT_NEAR(gmeanSpeedup({0.1}), 0.1, 1e-12);
    // gmean(1.0, 1.21) - 1 = 0.1 exactly for {0.0, 0.21}.
    EXPECT_NEAR(gmeanSpeedup({0.0, 0.21}), 0.1, 1e-12);
    // Order invariant.
    EXPECT_NEAR(gmeanSpeedup({0.21, 0.0}), gmeanSpeedup({0.0, 0.21}),
                1e-12);
}

TEST(Aggregates, Mean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}
