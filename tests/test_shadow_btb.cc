/** Tests for shadow-branch BTB/FTB prefill. */

#include <gtest/gtest.h>

#include "bpu/btb.hh"
#include "bpu/ftb.hh"
#include "prefetch/shadow_btb.hh"
#include "test_helpers.hh"
#include "trace/code_image.hh"

using namespace fdip;

namespace
{

struct Rig
{
    std::unique_ptr<Program> prog = testutil::makeCallPattern();
    CodeImage img;
    Ftb ftb;
    MemHierarchy mem;

    Rig() : img(*prog), ftb(Ftb::Config{16, 2, 48, 31}), mem(makeCfg()) {}

    static MemConfig
    makeCfg()
    {
        MemConfig c;
        c.l1i.sizeBytes = 4096;
        c.l1i.assoc = 2;
        c.l1i.blockBytes = 32; // 8 inst slots per line
        c.l2.sizeBytes = 64 * 1024;
        c.l2.assoc = 4;
        c.l2.blockBytes = 32;
        return c;
    }

    FetchAccess
    missAccess()
    {
        FetchAccess a;
        a.hitL1 = false;
        a.readyAt = 100;
        return a;
    }

    /** Scan everything queued (one line per tick is plenty). */
    void
    drain(ShadowBtbPrefetcher &pf)
    {
        for (Cycle t = 1; t <= 50; ++t) {
            mem.tick(t);
            pf.tick(t);
        }
    }
};

} // namespace

TEST(ShadowBtb, FindsPlantedBranchesAndPrefillsFtb)
{
    Rig rig;
    ShadowBtbPrefetcher pf(&rig.ftb, nullptr, rig.mem, &rig.img, {});

    // makeCallPattern lays f0 (Call@base+4, Jump@base+12) and f1's
    // CondBr@base+24 inside the first 32B line.
    Addr base = rig.img.base();
    pf.onDemandAccess(base, rig.missAccess(), 1);
    rig.drain(pf);

    EXPECT_EQ(pf.stats.counter("shadow.lines_scanned"), 1u);
    EXPECT_EQ(pf.stats.counter("shadow.branches_found"), 3u);
    EXPECT_EQ(pf.stats.counter("shadow.prefill_correct"), 3u);
    EXPECT_EQ(pf.stats.counter("shadow.prefill_bogus"), 0u);
    EXPECT_EQ(pf.stats.counter("shadow.out_of_range_dropped"), 0u);

    // The reconstructed blocks carry the true targets.
    auto call_blk = rig.ftb.lookup(base);
    ASSERT_TRUE(call_blk.has_value());
    EXPECT_EQ(call_blk->termCls, InstClass::Call);
    EXPECT_EQ(call_blk->numInsts, 2u);
    EXPECT_EQ(call_blk->target, rig.prog->funcs[1].entry);

    auto cond_blk = rig.ftb.lookup(rig.prog->funcs[1].entry);
    ASSERT_TRUE(cond_blk.has_value());
    EXPECT_EQ(cond_blk->termCls, InstClass::CondBr);
    EXPECT_EQ(cond_blk->target, rig.prog->funcs[1].blocks[2].start);
}

TEST(ShadowBtb, PrefillsConventionalBtbByBranchPc)
{
    Rig rig;
    Btb btb(Btb::Config{16, 2, 0, 0, 48});
    ShadowBtbPrefetcher pf(nullptr, &btb, rig.mem, &rig.img, {});

    Addr base = rig.img.base();
    pf.onDemandAccess(base, rig.missAccess(), 1);
    rig.drain(pf);

    auto call_hit = btb.lookup(base + 1 * instBytes);
    ASSERT_TRUE(call_hit.has_value());
    EXPECT_EQ(call_hit->cls, InstClass::Call);
    EXPECT_EQ(call_hit->target, rig.prog->funcs[1].entry);
}

TEST(ShadowBtb, SkipsReturnsAndNeverPrefillsOutsideImage)
{
    Rig rig;
    ShadowBtbPrefetcher::Config cfg;
    cfg.bogusNoiseDenom = 1; // every non-CF slot looks like a branch
    ShadowBtbPrefetcher pf(&rig.ftb, nullptr, rig.mem, &rig.img, cfg);

    // The second line holds f1's tail (plain insts + Return) and runs
    // past the end of the 48-byte image into "data" slots.
    Addr base = rig.img.base();
    pf.onDemandAccess(base + 32, rig.missAccess(), 1);
    rig.drain(pf);

    EXPECT_EQ(pf.stats.counter("shadow.indirect_skipped"), 1u);
    EXPECT_GT(pf.stats.counter("shadow.prefill_bogus"), 0u);
    // Every synthesized target is clamped into [base, end): the
    // out-of-range guard must never have fired.
    EXPECT_EQ(pf.stats.counter("shadow.out_of_range_dropped"), 0u);
}

TEST(ShadowBtb, DoesNotOverwriteTrainedEntries)
{
    Rig rig;
    ShadowBtbPrefetcher pf(&rig.ftb, nullptr, rig.mem, &rig.img, {});

    // The front-end already learned a (different) geometry for the
    // first block; shadow prefill must leave it alone.
    Addr base = rig.img.base();
    rig.ftb.insert(base, 7, InstClass::CondBr, base + 0x100);
    pf.onDemandAccess(base, rig.missAccess(), 1);
    rig.drain(pf);

    EXPECT_GT(pf.stats.counter("shadow.already_known"), 0u);
    auto blk = rig.ftb.lookup(base);
    ASSERT_TRUE(blk.has_value());
    EXPECT_EQ(blk->numInsts, 7u);
    EXPECT_EQ(blk->target, base + 0x100);
}

TEST(ShadowBtb, RecentFilterAndQueueBoundTheScanner)
{
    Rig rig;
    ShadowBtbPrefetcher::Config cfg;
    cfg.queueEntries = 1;
    ShadowBtbPrefetcher pf(&rig.ftb, nullptr, rig.mem, &rig.img, cfg);

    Addr base = rig.img.base();
    pf.onDemandAccess(base, rig.missAccess(), 1);
    pf.onDemandAccess(base + 32, rig.missAccess(), 1); // queue full
    EXPECT_EQ(pf.stats.counter("shadow.queue_drops"), 1u);

    rig.drain(pf);
    pf.onDemandAccess(base, rig.missAccess(), 60); // already scanned
    EXPECT_EQ(pf.stats.counter("shadow.filtered"), 1u);
    EXPECT_EQ(pf.stats.counter("shadow.lines_scanned"), 1u);
}

TEST(ShadowBtb, NoImageMeansNoScanning)
{
    Rig rig;
    ShadowBtbPrefetcher pf(&rig.ftb, nullptr, rig.mem, nullptr, {});
    pf.onDemandAccess(0x4000, rig.missAccess(), 1);
    EXPECT_EQ(pf.stats.counter("shadow.no_image"), 1u);
    EXPECT_EQ(pf.nextEventCycle(1), kNever);
    rig.drain(pf);
    EXPECT_EQ(pf.stats.counter("shadow.lines_scanned"), 0u);
}

TEST(ShadowBtb, QuiescenceContract)
{
    Rig rig;
    ShadowBtbPrefetcher pf(&rig.ftb, nullptr, rig.mem, &rig.img, {});
    EXPECT_EQ(pf.nextEventCycle(5), kNever);
    pf.onDemandAccess(rig.img.base(), rig.missAccess(), 1);
    EXPECT_EQ(pf.nextEventCycle(5), Cycle(6));
    rig.drain(pf);
    EXPECT_EQ(pf.nextEventCycle(60), kNever);
}
