/** Tests for the fetch-directed prefetcher and its CPF variants. */

#include <gtest/gtest.h>

#include "frontend/ftq.hh"
#include "mem/hierarchy.hh"
#include "prefetch/fdp.hh"

using namespace fdip;

namespace
{

struct Rig
{
    MemHierarchy mem;
    Ftq ftq;

    Rig()
        : mem(makeCfg()), ftq(16, 32)
    {}

    static MemConfig
    makeCfg()
    {
        MemConfig c;
        c.l1i.sizeBytes = 4096;
        c.l1i.assoc = 2;
        c.l1i.blockBytes = 32;
        c.l2.sizeBytes = 64 * 1024;
        c.l2.assoc = 4;
        c.l2.blockBytes = 32;
        c.l1TagPorts = 2;
        return c;
    }

    void
    pushBlock(Addr pc, unsigned n = 8)
    {
        FetchBlock b;
        b.startPc = pc;
        b.numInsts = n;
        b.validLen = n;
        ftq.push(b);
    }

    FdpPrefetcher
    makeFdp(CpfMode mode)
    {
        FdpPrefetcher::Config c;
        c.mode = mode;
        return FdpPrefetcher(ftq, mem, c);
    }
};

} // namespace

TEST(Fdp, ScansBeyondFetchPointOnly)
{
    Rig rig;
    auto fdp = rig.makeFdp(CpfMode::None);
    rig.pushBlock(0x1000); // entry 0 = fetch point: not scanned
    rig.mem.tick(1);
    fdp.tick(1);
    EXPECT_EQ(fdp.piq().size(), 0u);

    rig.pushBlock(0x2000); // entry 1: scanned
    rig.mem.tick(2);
    fdp.tick(2); // scan enqueues the candidate
    EXPECT_EQ(fdp.piq().size(), 1u);
    EXPECT_EQ(fdp.stats.counter("fdp.candidates"), 1u);
    rig.mem.tick(3);
    fdp.tick(3); // issue happens the next cycle
    EXPECT_EQ(fdp.piq().size(), 0u);
    EXPECT_GT(rig.mem.stats.counter("mem.prefetches_issued"), 0u);
}

TEST(Fdp, NoFilterPrefetchesCachedBlocksToo)
{
    Rig rig;
    auto fdp = rig.makeFdp(CpfMode::None);
    rig.mem.l1i().insert(0x2000); // candidate already cached
    rig.pushBlock(0x1000);
    rig.pushBlock(0x2000);
    rig.mem.tick(1);
    fdp.tick(1);
    // Without CPF the cached block is still enqueued (waste).
    EXPECT_EQ(fdp.stats.counter("fdp.candidates"), 1u);
    EXPECT_EQ(fdp.stats.counter("fdp.cpf_probes"), 0u);
}

TEST(Fdp, IdealCpfFiltersCachedBlocks)
{
    Rig rig;
    auto fdp = rig.makeFdp(CpfMode::Ideal);
    rig.mem.l1i().insert(0x2000);
    rig.pushBlock(0x1000);
    rig.pushBlock(0x2000); // cached: must be filtered
    rig.pushBlock(0x3000); // not cached: must survive
    rig.mem.tick(1);
    fdp.tick(1); // scan: filter 0x2000, enqueue 0x3000
    EXPECT_EQ(fdp.stats.counter("fdp.cpf_filtered"), 1u);
    rig.mem.tick(2);
    fdp.tick(2); // issue the survivor
    EXPECT_EQ(rig.mem.stats.counter("mem.prefetches_issued"), 1u);
    EXPECT_TRUE(rig.mem.mshrs().find(0x3000) != nullptr);
    EXPECT_TRUE(rig.mem.mshrs().find(0x2000) == nullptr);
}

TEST(Fdp, EnqueueCpfNeedsIdleTagPort)
{
    Rig rig;
    auto fdp = rig.makeFdp(CpfMode::Enqueue);
    rig.pushBlock(0x1000);
    rig.pushBlock(0x2000);
    rig.mem.tick(1);
    // Exhaust both tag ports (as a busy fetch engine would).
    rig.mem.reserveTagPort();
    rig.mem.reserveTagPort();
    fdp.tick(1);
    EXPECT_EQ(fdp.stats.counter("fdp.enqueue_no_port"), 1u);
    EXPECT_EQ(fdp.piq().size(), 0u);
    // Next cycle a port is free: the candidate goes through.
    rig.mem.tick(2);
    fdp.tick(2);
    EXPECT_EQ(fdp.stats.counter("fdp.cpf_probes"), 1u);
}

TEST(Fdp, RemoveCpfProbesWaitingEntries)
{
    Rig rig;
    FdpPrefetcher::Config c;
    c.mode = CpfMode::Remove;
    c.issueWidth = 1;
    FdpPrefetcher fdp(rig.ftq, rig.mem, c);

    rig.mem.l1i().insert(0x3000); // will be enqueued then removed
    rig.pushBlock(0x1000);
    rig.pushBlock(0x2000);
    rig.pushBlock(0x3000);
    rig.mem.tick(1);
    fdp.tick(1);
    // Both candidates enqueued; one issued (issueWidth 1); remove-CPF
    // probes the remaining entries with idle ports over the cycles.
    rig.mem.tick(2);
    fdp.tick(2);
    EXPECT_GE(fdp.stats.counter("fdp.cpf_probes"), 1u);
    EXPECT_EQ(fdp.stats.counter("fdp.cpf_filtered"), 1u);
    // The cached block must never be issued.
    EXPECT_EQ(rig.mem.mshrs().find(0x3000), nullptr);
}

TEST(Fdp, DedupAcrossScans)
{
    Rig rig;
    auto fdp = rig.makeFdp(CpfMode::None);
    rig.pushBlock(0x1000);
    rig.pushBlock(0x2000);
    rig.pushBlock(0x2000); // same block again
    rig.mem.tick(1);
    fdp.tick(1);
    rig.mem.tick(2);
    fdp.tick(2);
    EXPECT_GE(fdp.stats.counter("fdp.dedup_dropped"), 1u);
    EXPECT_EQ(rig.mem.stats.counter("mem.prefetches_issued"), 1u);
}

TEST(Fdp, MultiBlockEntryYieldsAllBlocks)
{
    Rig rig;
    auto fdp = rig.makeFdp(CpfMode::None);
    rig.pushBlock(0x1000);
    rig.pushBlock(0x2010, 8); // straddles 0x2000 and 0x2020
    rig.mem.tick(1);
    fdp.tick(1);
    EXPECT_EQ(fdp.stats.counter("fdp.candidates"), 2u);
}

TEST(Fdp, RedirectFlushesPiq)
{
    Rig rig;
    FdpPrefetcher::Config c;
    c.mode = CpfMode::None;
    c.issueWidth = 1;
    c.scanWidth = 4;
    FdpPrefetcher fdp(rig.ftq, rig.mem, c);
    rig.pushBlock(0x1000);
    rig.pushBlock(0x2000);
    rig.pushBlock(0x3000);
    rig.pushBlock(0x4000);
    rig.mem.tick(1);
    fdp.tick(1); // 3 candidates enqueued, 1 issued, 2 remain
    EXPECT_GT(fdp.piq().size(), 0u);
    fdp.onRedirect(1);
    EXPECT_EQ(fdp.piq().size(), 0u);
}

TEST(Fdp, IssueRespectsBusOccupancy)
{
    Rig rig;
    auto fdp = rig.makeFdp(CpfMode::None);
    // Saturate the L2 bus with a demand transfer.
    rig.mem.l2Bus().transfer(1, 3200); // long transfer
    rig.pushBlock(0x1000);
    rig.pushBlock(0x2000);
    rig.mem.tick(1);
    fdp.tick(1);
    EXPECT_EQ(rig.mem.stats.counter("mem.prefetches_issued"), 0u);
    EXPECT_GT(fdp.piq().size(), 0u); // candidate waits in the PIQ
}

TEST(Fdp, NamesIncludeMode)
{
    Rig rig;
    EXPECT_EQ(rig.makeFdp(CpfMode::None).name(), "fdp-none");
    EXPECT_EQ(rig.makeFdp(CpfMode::Ideal).name(), "fdp-ideal");
    EXPECT_EQ(rig.makeFdp(CpfMode::Remove).name(), "fdp-remove");
    EXPECT_EQ(rig.makeFdp(CpfMode::Enqueue).name(), "fdp-enqueue");
    EXPECT_EQ(rig.makeFdp(CpfMode::EnqueueAggressive).name(),
              "fdp-enqueue-aggr");
}

TEST(Fdp, AggressiveEnqueuesUnprobedWithoutPort)
{
    Rig rig;
    auto fdp = rig.makeFdp(CpfMode::EnqueueAggressive);
    rig.pushBlock(0x1000);
    rig.pushBlock(0x2000);
    rig.mem.tick(1);
    rig.mem.reserveTagPort();
    rig.mem.reserveTagPort(); // all ports gone
    fdp.tick(1);
    // Unlike the conservative variant, the candidate still enters the
    // PIQ (unprobed).
    EXPECT_EQ(fdp.stats.counter("fdp.enqueue_no_port"), 1u);
    EXPECT_EQ(fdp.piq().size(), 1u);
}

TEST(Fdp, FillIntoL1AblationSkipsBuffer)
{
    Rig rig;
    FdpPrefetcher::Config c;
    c.mode = CpfMode::None;
    c.fillIntoL1 = true;
    FdpPrefetcher fdp(rig.ftq, rig.mem, c);
    rig.pushBlock(0x1000);
    rig.pushBlock(0x2000);
    rig.mem.tick(1);
    fdp.tick(1); // enqueue
    rig.mem.tick(2);
    fdp.tick(2); // issue
    MshrEntry *e = rig.mem.mshrs().find(0x2000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->dest, FillDest::DemandL1);
    // Drain the fill: the block lands in the L1, not the buffer.
    for (Cycle t = 3; t < 200; ++t)
        rig.mem.tick(t);
    EXPECT_TRUE(rig.mem.l1i().probe(0x2000));
    EXPECT_FALSE(rig.mem.pfBuffer().probe(0x2000));
}
