/** Tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace fdip;

namespace
{

Cache::Config
tinyCfg()
{
    Cache::Config c;
    c.name = "t";
    c.sizeBytes = 256; // 8 blocks
    c.assoc = 2;       // 4 sets
    c.blockBytes = 32;
    return c;
}

} // namespace

TEST(Cache, GeometryDerived)
{
    Cache c(tinyCfg());
    EXPECT_EQ(c.numBlocks(), 8u);
    EXPECT_EQ(c.numSets(), 4u);
    EXPECT_EQ(c.blockAlign(0x1234), 0x1220u);
}

TEST(Cache, MissThenHit)
{
    Cache c(tinyCfg());
    EXPECT_FALSE(c.access(0x1000));
    c.insert(0x1000);
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_EQ(c.stats.counter("cache.misses"), 1u);
    EXPECT_EQ(c.stats.counter("cache.hits"), 1u);
}

TEST(Cache, ProbeHasNoSideEffects)
{
    Cache c(tinyCfg());
    c.insert(0x1000);
    std::uint64_t accesses = c.stats.counter("cache.accesses");
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_EQ(c.stats.counter("cache.accesses"), accesses);
}

TEST(Cache, LruEvictionOrder)
{
    Cache c(tinyCfg()); // 4 sets x 2 ways; same set stride = 128
    Addr a = 0x1000, b = a + 128, d = b + 128;
    c.insert(a);
    c.insert(b);
    EXPECT_TRUE(c.access(a)); // a is MRU
    auto evicted = c.insert(d);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, b);
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, InsertExistingRefreshesOnly)
{
    Cache c(tinyCfg());
    c.insert(0x1000);
    auto evicted = c.insert(0x1000);
    EXPECT_FALSE(evicted.has_value());
    EXPECT_EQ(c.validBlocks(), 1u);
}

TEST(Cache, EvictedAddressReconstruction)
{
    Cache::Config cfg = tinyCfg();
    cfg.assoc = 1; // direct mapped, 8 sets
    Cache c(cfg);
    Addr victim_addr = 0x1000;
    c.insert(victim_addr);
    Addr conflicting = victim_addr + 8 * 32; // same set
    auto evicted = c.insert(conflicting);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, victim_addr);
}

TEST(Cache, Invalidate)
{
    Cache c(tinyCfg());
    c.insert(0x1000);
    EXPECT_TRUE(c.invalidate(0x1000));
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_FALSE(c.invalidate(0x1000));
}

TEST(Cache, FirstUseTagConsumedOnce)
{
    Cache c(tinyCfg());
    c.insert(0x1000, /*first_use_tag=*/true);
    EXPECT_TRUE(c.consumeFirstUse(0x1000));
    EXPECT_FALSE(c.consumeFirstUse(0x1000)); // cleared
    c.insert(0x2000, /*first_use_tag=*/false);
    EXPECT_FALSE(c.consumeFirstUse(0x2000));
    EXPECT_FALSE(c.consumeFirstUse(0x3000)); // absent
}

TEST(Cache, SubBlockAddressesShareBlock)
{
    Cache c(tinyCfg());
    c.insert(0x1000);
    EXPECT_TRUE(c.probe(0x101c)); // same 32B block
    EXPECT_FALSE(c.probe(0x1020));
}

class CacheGeometrySweep
    : public ::testing::TestWithParam<std::pair<std::uint64_t, unsigned>>
{};

TEST_P(CacheGeometrySweep, CapacityIsRespected)
{
    auto [size, assoc] = GetParam();
    Cache::Config cfg;
    cfg.sizeBytes = size;
    cfg.assoc = assoc;
    cfg.blockBytes = 32;
    Cache c(cfg);
    unsigned blocks = c.numBlocks();
    // Fill with exactly `blocks` distinct lines: all fit.
    for (unsigned i = 0; i < blocks; ++i)
        c.insert(0x10000 + Addr(i) * 32);
    EXPECT_EQ(c.validBlocks(), blocks);
    // One more line must evict something.
    c.insert(0x10000 + Addr(blocks) * 32);
    EXPECT_EQ(c.validBlocks(), blocks);
    EXPECT_GE(c.stats.counter("cache.evictions"), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometrySweep,
    ::testing::Values(std::pair<std::uint64_t, unsigned>{1024, 1},
                      std::pair<std::uint64_t, unsigned>{4096, 2},
                      std::pair<std::uint64_t, unsigned>{16384, 2},
                      std::pair<std::uint64_t, unsigned>{16384, 4},
                      std::pair<std::uint64_t, unsigned>{65536, 8}));

TEST(CacheDeath, BadGeometry)
{
    Cache::Config cfg;
    cfg.sizeBytes = 100; // not a multiple of block size
    cfg.assoc = 2;
    cfg.blockBytes = 32;
    EXPECT_DEATH({ Cache c(cfg); }, "geometry");
}
