/** Unit tests for the statistics registry. */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace fdip;

TEST(StatSet, CountersStartAtZero)
{
    StatSet s;
    EXPECT_EQ(s.counter("x"), 0u);
    EXPECT_DOUBLE_EQ(s.value("x"), 0.0);
    EXPECT_FALSE(s.has("x"));
}

TEST(StatSet, IncAccumulates)
{
    StatSet s;
    s.inc("a");
    s.inc("a", 4);
    EXPECT_EQ(s.counter("a"), 5u);
    EXPECT_TRUE(s.has("a"));
}

TEST(StatSet, SetOverwrites)
{
    StatSet s;
    s.set("g", 1.5);
    s.set("g", 2.5);
    EXPECT_DOUBLE_EQ(s.value("g"), 2.5);
}

TEST(StatSet, Ratio)
{
    StatSet s;
    s.inc("hits", 30);
    s.inc("lookups", 40);
    EXPECT_DOUBLE_EQ(s.ratio("hits", "lookups"), 0.75);
    EXPECT_DOUBLE_EQ(s.ratio("hits", "absent"), 0.0);
}

TEST(StatSet, MergeWithPrefix)
{
    StatSet a, b;
    b.inc("hits", 3);
    a.inc("l1.hits", 1);
    a.merge(b, "l1.");
    EXPECT_EQ(a.counter("l1.hits"), 4u);
}

TEST(StatSet, MergeNoPrefix)
{
    StatSet a, b;
    a.inc("x", 1);
    b.inc("x", 2);
    b.inc("y", 7);
    a.merge(b);
    EXPECT_EQ(a.counter("x"), 3u);
    EXPECT_EQ(a.counter("y"), 7u);
}

TEST(StatSet, SubtractDeltas)
{
    StatSet before, after;
    before.inc("n", 10);
    after.inc("n", 25);
    after.inc("m", 5);
    StatSet d = StatSet::subtract(after, before);
    EXPECT_EQ(d.counter("n"), 15u);
    EXPECT_EQ(d.counter("m"), 5u);
}

TEST(StatSet, ResetClears)
{
    StatSet s;
    s.inc("a", 2);
    s.reset();
    EXPECT_FALSE(s.has("a"));
    EXPECT_EQ(s.entries().size(), 0u);
}

TEST(StatSet, DumpSortedAndFormatted)
{
    StatSet s;
    s.inc("zebra", 1);
    s.inc("apple", 2);
    s.set("ratio", 0.5);
    std::string d = s.dump();
    EXPECT_LT(d.find("apple"), d.find("zebra"));
    EXPECT_NE(d.find("0.5"), std::string::npos);
}
