/** Unit tests for the statistics registry. */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace fdip;

TEST(StatSet, CountersStartAtZero)
{
    StatSet s;
    EXPECT_EQ(s.counter("x"), 0u);
    EXPECT_DOUBLE_EQ(s.value("x"), 0.0);
    EXPECT_FALSE(s.has("x"));
}

TEST(StatSet, IncAccumulates)
{
    StatSet s;
    s.inc("a");
    s.inc("a", 4);
    EXPECT_EQ(s.counter("a"), 5u);
    EXPECT_TRUE(s.has("a"));
}

TEST(StatSet, SetOverwrites)
{
    StatSet s;
    s.set("g", 1.5);
    s.set("g", 2.5);
    EXPECT_DOUBLE_EQ(s.value("g"), 2.5);
}

TEST(StatSet, Ratio)
{
    StatSet s;
    s.inc("hits", 30);
    s.inc("lookups", 40);
    EXPECT_DOUBLE_EQ(s.ratio("hits", "lookups"), 0.75);
    EXPECT_DOUBLE_EQ(s.ratio("hits", "absent"), 0.0);
}

TEST(StatSet, MergeWithPrefix)
{
    StatSet a, b;
    b.inc("hits", 3);
    a.inc("l1.hits", 1);
    a.merge(b, "l1.");
    EXPECT_EQ(a.counter("l1.hits"), 4u);
}

TEST(StatSet, MergeNoPrefix)
{
    StatSet a, b;
    a.inc("x", 1);
    b.inc("x", 2);
    b.inc("y", 7);
    a.merge(b);
    EXPECT_EQ(a.counter("x"), 3u);
    EXPECT_EQ(a.counter("y"), 7u);
}

TEST(StatSet, SubtractDeltas)
{
    StatSet before, after;
    before.inc("n", 10);
    after.inc("n", 25);
    after.inc("m", 5);
    StatSet d = StatSet::subtract(after, before);
    EXPECT_EQ(d.counter("n"), 15u);
    EXPECT_EQ(d.counter("m"), 5u);
}

TEST(StatSet, ResetClears)
{
    StatSet s;
    s.inc("a", 2);
    s.reset();
    EXPECT_FALSE(s.has("a"));
    EXPECT_EQ(s.entries().size(), 0u);
}

TEST(StatSet, DumpSortedAndFormatted)
{
    StatSet s;
    s.inc("zebra", 1);
    s.inc("apple", 2);
    s.set("ratio", 0.5);
    std::string d = s.dump();
    EXPECT_LT(d.find("apple"), d.find("zebra"));
    EXPECT_NE(d.find("0.5"), std::string::npos);
}

TEST(StatSetHandles, RegisterAndInc)
{
    StatSet s;
    StatSet::Counter c = s.registerCounter("hot");
    c.inc();
    c.inc(4);
    EXPECT_EQ(s.counter("hot"), 5u);
    EXPECT_TRUE(s.has("hot"));
}

TEST(StatSetHandles, DuplicateRegistrationSharesCounter)
{
    StatSet s;
    StatSet::Counter a = s.registerCounter("x");
    StatSet::Counter b = s.registerCounter("x");
    a.inc(2);
    b.inc(3);
    EXPECT_EQ(s.counter("x"), 5u);
}

TEST(StatSetHandles, ParityWithStringInc)
{
    // The same increment sequence through handles and through the
    // string API must produce byte-identical registries.
    StatSet via_handle, via_string;
    StatSet::Counter a = via_handle.registerCounter("a");
    StatSet::Counter b = via_handle.registerCounter("b.sub");
    a.inc();
    b.inc(7);
    a.inc(2);
    via_string.inc("a");
    via_string.inc("b.sub", 7);
    via_string.inc("a", 2);
    EXPECT_EQ(via_handle.dump(), via_string.dump());
    EXPECT_EQ(via_handle.entries(), via_string.entries());
}

TEST(StatSetHandles, UnusedCounterStaysAbsent)
{
    // Matching the lazy string API: no inc, no entry.
    StatSet s;
    s.registerCounter("never");
    EXPECT_FALSE(s.has("never"));
    EXPECT_EQ(s.entries().size(), 0u);
    EXPECT_EQ(s.dump(), "");
}

TEST(StatSetHandles, ZeroDeltaCreatesEntryLikeStringInc)
{
    StatSet s;
    StatSet::Counter c = s.registerCounter("z");
    c.inc(0);
    EXPECT_TRUE(s.has("z"));
    EXPECT_EQ(s.counter("z"), 0u);
}

TEST(StatSetHandles, MixedStringAndHandleSum)
{
    StatSet s;
    StatSet::Counter c = s.registerCounter("m");
    c.inc(10);
    s.inc("m", 5);
    c.inc(1);
    EXPECT_EQ(s.counter("m"), 16u);
}

TEST(StatSetHandles, MergeAndSubtractSeeHandleIncrements)
{
    StatSet src;
    StatSet::Counter c = src.registerCounter("hits");
    c.inc(3);

    StatSet dst;
    dst.merge(src, "l1.");
    EXPECT_EQ(dst.counter("l1.hits"), 3u);

    c.inc(4);
    StatSet delta = StatSet::subtract(src, dst);
    // src is now 7; dst has no "hits" (only "l1.hits").
    EXPECT_EQ(delta.counter("hits"), 7u);
}

TEST(StatSetHandles, ResetKeepsHandlesValid)
{
    StatSet s;
    StatSet::Counter c = s.registerCounter("r");
    c.inc(9);
    s.reset();
    EXPECT_FALSE(s.has("r"));
    c.inc(2);
    EXPECT_EQ(s.counter("r"), 2u);
}

TEST(StatSetHandles, CopyFlattensAndDetaches)
{
    StatSet orig;
    StatSet::Counter c = orig.registerCounter("n");
    c.inc(5);

    StatSet copy = orig;
    EXPECT_EQ(copy.counter("n"), 5u);

    // The handle stays bound to the original only.
    c.inc(1);
    EXPECT_EQ(orig.counter("n"), 6u);
    EXPECT_EQ(copy.counter("n"), 5u);
}

TEST(StatSet, MergeWithPrefixCopiesGauges)
{
    StatSet a, b;
    b.set("util", 0.25);
    b.inc("busy", 4);
    a.merge(b, "bus.");
    EXPECT_DOUBLE_EQ(a.value("bus.util"), 0.25);
    EXPECT_EQ(a.counter("bus.busy"), 4u);
    // The unprefixed names must not leak into the destination.
    EXPECT_FALSE(a.has("util"));
    EXPECT_FALSE(a.has("busy"));
}

TEST(StatSet, SubtractHandlesGauges)
{
    StatSet before, after;
    before.set("g", 1.5);
    after.set("g", 4.0);
    after.set("only_after", 2.0);
    StatSet d = StatSet::subtract(after, before);
    EXPECT_DOUBLE_EQ(d.value("g"), 2.5);
    EXPECT_DOUBLE_EQ(d.value("only_after"), 2.0);
}

TEST(StatSetHandles, SubtractWithPendingOnBothOperands)
{
    // Both operands carry unflushed handle increments when the
    // subtraction runs; the snapshot semantics must still hold
    // (interval sampling subtracts a live cumulative set from a
    // previously copied one every interval).
    StatSet cum;
    StatSet::Counter c = cum.registerCounter("ticks");
    c.inc(10);

    StatSet prev = cum; // flattened snapshot at 10
    c.inc(7);           // pending on cum only

    StatSet d = StatSet::subtract(cum, prev);
    EXPECT_EQ(d.counter("ticks"), 7u);

    // The subtraction must not have consumed cum's state.
    c.inc(3);
    EXPECT_EQ(cum.counter("ticks"), 20u);
    EXPECT_EQ(prev.counter("ticks"), 10u);
}

TEST(StatSetHandles, MergeWithPrefixSeesPendingAndKeepsHandlesLive)
{
    StatSet component;
    StatSet::Counter c = component.registerCounter("fills");
    c.inc(2);

    StatSet out;
    out.merge(component, "pf.");
    EXPECT_EQ(out.counter("pf.fills"), 2u);

    // Handles survive being merged-from: later increments land in the
    // component and show up in the next merge.
    c.inc(5);
    StatSet out2;
    out2.merge(component, "pf.");
    EXPECT_EQ(out2.counter("pf.fills"), 7u);
}
