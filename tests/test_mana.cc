/** Tests for MANA-style record/replay prefetching. */

#include <gtest/gtest.h>

#include "prefetch/mana.hh"

using namespace fdip;

namespace
{

// 32B blocks, 4-block regions: region bytes = 128.
constexpr Addr kRegA = 0x1000; // region 32
constexpr Addr kRegB = 0x1080; // region 33
constexpr Addr kRegC = 0x1100; // region 34
constexpr Addr kRegD = 0x1180; // region 35

struct Rig
{
    MemHierarchy mem;

    Rig() : mem(makeCfg()) {}

    static MemConfig
    makeCfg()
    {
        MemConfig c;
        c.l1i.sizeBytes = 4096;
        c.l1i.assoc = 2;
        c.l1i.blockBytes = 32;
        c.l2.sizeBytes = 64 * 1024;
        c.l2.assoc = 4;
        c.l2.blockBytes = 32;
        return c;
    }

    static ManaPrefetcher::Config
    makePfCfg()
    {
        ManaPrefetcher::Config c;
        c.regionBlocks = 4;
        c.tableSets = 4;
        c.tableWays = 2;
        c.chainLength = 1;
        return c;
    }

    FetchAccess
    missAccess()
    {
        FetchAccess a;
        a.hitL1 = false;
        a.readyAt = 100;
        return a;
    }

    FetchAccess
    hitAccess()
    {
        FetchAccess a;
        a.hitL1 = true;
        a.readyAt = 1;
        return a;
    }

    /** Run the memory system until pending candidates drain. */
    void
    drain(ManaPrefetcher &pf)
    {
        for (Cycle t = 1; t <= 600; ++t) {
            mem.tick(t);
            pf.tick(t);
        }
    }
};

} // namespace

TEST(Mana, RecordsFootprintAndReplaysOnReentry)
{
    Rig rig;
    ManaPrefetcher pf(rig.mem, Rig::makePfCfg());

    // Visit region A, missing on blocks 0, 1, and 3.
    pf.onDemandAccess(kRegA + 0x00, rig.missAccess(), 1);
    pf.onDemandAccess(kRegA + 0x20, rig.missAccess(), 1);
    pf.onDemandAccess(kRegA + 0x60, rig.missAccess(), 1);
    // Leave for region B: A's footprint is recorded.
    pf.onDemandAccess(kRegB, rig.missAccess(), 1);
    EXPECT_EQ(pf.stats.counter("mana.records"), 1u);
    EXPECT_EQ(pf.stats.counter("mana.replays"), 0u);

    // Re-enter region A: the recorded footprint replays, minus the
    // trigger block the demand access is already fetching.
    pf.onDemandAccess(kRegA + 0x00, rig.missAccess(), 1);
    EXPECT_EQ(pf.stats.counter("mana.lookups"), 3u);
    EXPECT_EQ(pf.stats.counter("mana.replays"), 1u);
    EXPECT_EQ(pf.stats.counter("mana.replayed_blocks"), 2u);

    rig.drain(pf);
    EXPECT_EQ(pf.stats.counter("mana.issued"), 2u);
    EXPECT_TRUE(rig.mem.pfBuffer().probe(kRegA + 0x20));
    EXPECT_TRUE(rig.mem.pfBuffer().probe(kRegA + 0x60));
    EXPECT_FALSE(rig.mem.pfBuffer().probe(kRegA + 0x00)); // trigger
    EXPECT_FALSE(rig.mem.pfBuffer().probe(kRegA + 0x40)); // never missed
}

TEST(Mana, TableBytesAndEvictionAccounting)
{
    Rig rig;
    ManaPrefetcher::Config cfg = Rig::makePfCfg();
    cfg.tableSets = 1;
    cfg.tableWays = 2; // capacity: two entries
    ManaPrefetcher pf(rig.mem, cfg);

    std::uint64_t eb = (ManaPrefetcher::entryBits(cfg) + 7) / 8;
    ASSERT_EQ(ManaPrefetcher::tableCapacityBytes(cfg), 2 * eb);

    // Walk four regions, one miss each: three records (the fourth
    // region is still open), two fresh allocations, one eviction.
    pf.onDemandAccess(kRegA, rig.missAccess(), 1);
    pf.onDemandAccess(kRegB, rig.missAccess(), 1);
    pf.onDemandAccess(kRegC, rig.missAccess(), 1);
    pf.onDemandAccess(kRegD, rig.missAccess(), 1);
    EXPECT_EQ(pf.stats.counter("mana.records"), 3u);
    EXPECT_EQ(pf.stats.counter("mana.evictions"), 1u);
    // Live-metadata identity: bytes grow only while cold ways fill,
    // then plateau at the table's capacity.
    EXPECT_EQ(pf.stats.counter("mana.table_bytes"), 2 * eb);

    // The LRU victim was region A: re-entering it finds nothing.
    pf.onDemandAccess(kRegA, rig.missAccess(), 1);
    EXPECT_EQ(pf.stats.counter("mana.replays"), 0u);
    EXPECT_EQ(pf.stats.counter("mana.evictions"), 2u);
    EXPECT_EQ(pf.stats.counter("mana.table_bytes"), 2 * eb);
    EXPECT_LE(pf.stats.counter("mana.table_bytes"),
              ManaPrefetcher::tableCapacityBytes(cfg));
}

TEST(Mana, MissFreeRegionsAreNotRecorded)
{
    Rig rig;
    ManaPrefetcher pf(rig.mem, Rig::makePfCfg());
    pf.onDemandAccess(kRegA + 0x00, rig.hitAccess(), 1);
    pf.onDemandAccess(kRegA + 0x20, rig.hitAccess(), 1);
    pf.onDemandAccess(kRegB, rig.hitAccess(), 1);
    EXPECT_EQ(pf.stats.counter("mana.records"), 0u);
    EXPECT_EQ(pf.stats.counter("mana.table_bytes"), 0u);
}

TEST(Mana, ChainReplayFollowsSuccessorRegion)
{
    Rig rig;
    ManaPrefetcher::Config cfg = Rig::makePfCfg();
    cfg.chainLength = 2;
    ManaPrefetcher pf(rig.mem, cfg);

    // A misses blocks 0 and 2, then the stream moves to B (miss) and
    // back to A: the replay covers A's footprint AND chases A's
    // recorded successor B.
    pf.onDemandAccess(kRegA + 0x00, rig.missAccess(), 1);
    pf.onDemandAccess(kRegA + 0x40, rig.missAccess(), 1);
    pf.onDemandAccess(kRegB + 0x00, rig.missAccess(), 1);
    pf.onDemandAccess(kRegA + 0x00, rig.missAccess(), 1);
    EXPECT_EQ(pf.stats.counter("mana.replays"), 1u);
    EXPECT_EQ(pf.stats.counter("mana.chain_replays"), 1u);
    EXPECT_EQ(pf.stats.counter("mana.replayed_blocks"), 2u);

    rig.drain(pf);
    EXPECT_TRUE(rig.mem.pfBuffer().probe(kRegA + 0x40));
    EXPECT_TRUE(rig.mem.pfBuffer().probe(kRegB + 0x00));
}

TEST(Mana, QuiescenceContract)
{
    Rig rig;
    ManaPrefetcher pf(rig.mem, Rig::makePfCfg());
    EXPECT_EQ(pf.nextEventCycle(5), kNever);

    pf.onDemandAccess(kRegA + 0x00, rig.missAccess(), 1);
    pf.onDemandAccess(kRegA + 0x20, rig.missAccess(), 1);
    pf.onDemandAccess(kRegB, rig.missAccess(), 1);
    pf.onDemandAccess(kRegA + 0x00, rig.missAccess(), 1); // replay pends
    EXPECT_EQ(pf.nextEventCycle(5), Cycle(6));

    rig.drain(pf);
    EXPECT_EQ(pf.nextEventCycle(700), kNever);
}
