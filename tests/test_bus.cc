/** Tests for the finite-bandwidth bus. */

#include <gtest/gtest.h>

#include "mem/bus.hh"

using namespace fdip;

TEST(Bus, TransferTakesBytesOverBandwidth)
{
    Bus bus("b", 8);
    EXPECT_EQ(bus.transfer(100, 32), 104u); // 32B at 8B/cyc
    EXPECT_EQ(bus.busyCycles(), 4u);
}

TEST(Bus, PartialWordRoundsUp)
{
    Bus bus("b", 8);
    EXPECT_EQ(bus.transfer(0, 33), 5u);
}

TEST(Bus, DemandQueuesBehindTraffic)
{
    Bus bus("b", 8);
    bus.transfer(100, 32);            // busy until 104
    EXPECT_EQ(bus.transfer(101, 32), 108u);
    EXPECT_EQ(bus.stats.counter("bus.demand_queue_cycles"), 3u);
}

TEST(Bus, PrefetchDeniedWhenBusy)
{
    Bus bus("b", 8);
    bus.transfer(100, 32);
    EXPECT_FALSE(bus.tryTransfer(102, 32).has_value());
    EXPECT_EQ(bus.stats.counter("bus.prefetch_denied"), 1u);
    // Once idle, the prefetch is granted.
    auto done = bus.tryTransfer(104, 32);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(*done, 108u);
}

TEST(Bus, IdleAt)
{
    Bus bus("b", 8);
    EXPECT_TRUE(bus.idleAt(0));
    bus.transfer(10, 16);
    EXPECT_FALSE(bus.idleAt(11));
    EXPECT_TRUE(bus.idleAt(12));
}

TEST(Bus, UtilizationFraction)
{
    Bus bus("b", 8);
    bus.transfer(0, 32);
    bus.transfer(50, 32);
    EXPECT_DOUBLE_EQ(bus.utilization(100), 0.08);
    EXPECT_DOUBLE_EQ(bus.utilization(0), 0.0);
}

TEST(Bus, BusyCyclesAccumulateAcrossKinds)
{
    Bus bus("b", 4);
    bus.transfer(0, 32);       // 8 cycles
    bus.tryTransfer(100, 32);  // 8 cycles
    EXPECT_EQ(bus.busyCycles(), 16u);
    EXPECT_EQ(bus.stats.counter("bus.busy_cycles"), 16u);
    EXPECT_EQ(bus.stats.counter("bus.demand_transfers"), 1u);
    EXPECT_EQ(bus.stats.counter("bus.prefetch_transfers"), 1u);
}

TEST(BusDeath, ZeroBandwidth)
{
    EXPECT_DEATH({ Bus b("zero", 0); }, "zero bandwidth");
}
