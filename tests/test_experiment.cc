/**
 * Tests for the declarative experiment-grid subsystem
 * (sim/experiment.hh). The R-F9 bench's spec TU is linked into this
 * test (see CMakeLists.txt), pinning a real production grid:
 *  - spec expansion produces exactly the enqueue set the old
 *    hand-written mirror produced,
 *  - --list / --describe output is stable.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "trace/profile.hh"

using namespace fdip;

namespace
{

using PointList = std::vector<std::array<std::string, 3>>;

PointList
sorted(PointList points)
{
    std::sort(points.begin(), points.end());
    return points;
}

/** Callers must ASSERT_NE against nullptr before dereferencing. */
const ExperimentSpec *
f9Spec()
{
    return ExperimentRegistry::instance().find("R-F9");
}

} // namespace

TEST(ExperimentRegistry, F9SpecIsRegistered)
{
    const ExperimentSpec *spec = f9Spec();
    ASSERT_NE(spec, nullptr)
        << "bench_f9_ftq_sweep.cc must be linked into this test";
    EXPECT_EQ(spec->binary, "bench_f9_ftq_sweep");
    EXPECT_EQ(spec->warmup, 150u * 1000u);
    EXPECT_EQ(spec->measure, 500u * 1000u);
    ASSERT_EQ(spec->grids.size(), 1u);
    EXPECT_TRUE(spec->grids[0].withBaseline);
    EXPECT_EQ(spec->grids[0].variants.size(), 6u);
    EXPECT_TRUE(static_cast<bool>(spec->render));
}

TEST(ExperimentExpansion, MatchesHandWrittenMirror)
{
    const ExperimentSpec *spec_p = f9Spec();
    ASSERT_NE(spec_p, nullptr);
    const ExperimentSpec &spec = *spec_p;

    Runner from_spec(spec.warmup, spec.measure);
    from_spec.disableCache();
    enqueueExperiment(from_spec, spec);

    // The enqueue mirror exactly as bench_f9_ftq_sweep.cc wrote it
    // before the spec refactor (PR 2/PR 3 vintage).
    Runner mirror(spec.warmup, spec.measure);
    mirror.disableCache();
    for (unsigned entries : {2u, 4u, 8u, 16u, 32u, 64u}) {
        for (const auto &name : largeFootprintNames()) {
            mirror.enqueueSpeedup(
                name, PrefetchScheme::FdpRemove,
                "ftq" + std::to_string(entries),
                [entries](SimConfig &cfg) {
                    cfg.ftqEntries = entries;
                });
        }
    }

    EXPECT_EQ(from_spec.pendingRuns(), mirror.pendingRuns());
    EXPECT_EQ(sorted(from_spec.pendingPoints()),
              sorted(mirror.pendingPoints()));
    EXPECT_EQ(countDistinctPoints(spec), mirror.pendingRuns());
}

TEST(ExperimentExpansion, BaselineGridAddsNoPrefetchPoints)
{
    ExperimentSpec s;
    s.id = "T-GRID";
    s.binary = "test";
    s.grids = {{{"gcc", "li"}, {PrefetchScheme::FdpRemove},
                {{"k1", "one", nullptr}}, true}};
    EXPECT_EQ(countDistinctPoints(s), 4u); // 2 workloads x {None, FdpRemove}

    std::size_t calls = 0, baselines = 0;
    forEachGridPoint(s, [&](const std::string &, PrefetchScheme scheme,
                            const TweakVariant &v) {
        ++calls;
        if (scheme == PrefetchScheme::None)
            ++baselines;
        EXPECT_EQ(v.key, "k1");
    });
    EXPECT_EQ(calls, 4u);
    EXPECT_EQ(baselines, 2u);
}

TEST(ExperimentExpansion, EmptyGridsExpandToNothing)
{
    ExperimentSpec s;
    s.id = "T-EMPTY";
    s.binary = "test";
    EXPECT_EQ(countDistinctPoints(s), 0u);
    Runner r(10 * 1000, 10 * 1000);
    r.disableCache();
    enqueueExperiment(r, s);
    EXPECT_EQ(r.pendingRuns(), 0u);
}

TEST(ExperimentDescribe, OutputIsStable)
{
    const std::string expected =
        "R-F9: FTQ depth sweep (FDP remove-CPF vs baseline FTQ=32)\n"
        "  binary:     bench_f9_ftq_sweep\n"
        "  reproduces: MICRO-32, Fig. 9 (FTQ size sensitivity)\n"
        "  expected:   tiny FTQs cripple FDP (no lookahead); gains "
        "saturate by a few tens of entries\n"
        "  run:        150000 warmup + 500000 measured instructions "
        "per point\n"
        "  grid 1:     6 workloads x 1 schemes x 6 variants "
        "(+ no-prefetch baselines)\n"
        "    workloads: burg perl go groff gcc vortex\n"
        "    schemes:   fdp-remove\n"
        "    variants:  ftq2 = 2-entry FTQ, ftq4 = 4-entry FTQ, "
        "ftq8 = 8-entry FTQ, ftq16 = 16-entry FTQ, "
        "ftq32 = 32-entry FTQ, ftq64 = 64-entry FTQ\n"
        "  points:     72 distinct simulations\n";
    const ExperimentSpec *spec = f9Spec();
    ASSERT_NE(spec, nullptr);
    EXPECT_EQ(describeExperiment(*spec), expected);
}

TEST(ExperimentList, OutputIsStable)
{
    const std::string expected =
        "R-F9    bench_f9_ftq_sweep              72 points  "
        "FTQ depth sweep (FDP remove-CPF vs baseline FTQ=32)\n";
    const ExperimentSpec *spec = f9Spec();
    ASSERT_NE(spec, nullptr);
    EXPECT_EQ(listExperiments({spec}), expected);
}

TEST(ExperimentCatalog, MarkdownMentionsEverySpec)
{
    auto specs = ExperimentRegistry::instance().all();
    std::string md = experimentCatalogMarkdown(specs);
    EXPECT_NE(md.find("# Experiment catalog"), std::string::npos);
    EXPECT_NE(md.find("Do not edit by hand"), std::string::npos);
    for (const ExperimentSpec *s : specs) {
        EXPECT_NE(md.find("## " + s->id + ": "), std::string::npos)
            << s->id;
        EXPECT_NE(md.find("`" + s->binary + "`"), std::string::npos)
            << s->binary;
    }
}
