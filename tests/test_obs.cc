/**
 * Observability subsystem tests: the JSON helpers, the trace ring
 * buffer, the passivity guarantee (telemetry on/off is bit-identical
 * across both tick modes), output-file well-formedness (Chrome trace
 * JSON, JSONL/CSV samples), the prefetch-attribution counter
 * invariants, and the FDIP_LOG level filter.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "obs/attribution.hh"
#include "obs/json.hh"
#include "obs/tracer.hh"
#include "sim/presets.hh"
#include "sim/report.hh"
#include "sim/runner.hh"

using namespace fdip;

namespace
{

std::string
tmpPath(const std::string &tag)
{
    std::string path = ::testing::TempDir() + "fdip-obs-" + tag;
    std::remove(path.c_str());
    return path;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

SimConfig
smallConfig(const std::string &workload, PrefetchScheme scheme)
{
    SimConfig cfg = makeBaselineConfig(workload, scheme);
    cfg.warmupInsts = 3 * 1000;
    cfg.measureInsts = 15 * 1000;
    return cfg;
}

} // namespace

TEST(Json, ValidatorAcceptsWellFormedDocuments)
{
    for (const char *doc : {
             "{}",
             "[]",
             "0",
             "-12.5e-3",
             "true",
             "null",
             "\"a \\\"quoted\\\" \\u00e9 string\"",
             "{\"a\": [1, 2.5, -3e2, true, false, null], \"b\": {}}",
             "  [ {\"nested\": [[[]]]} ]  ",
         }) {
        std::string err;
        EXPECT_TRUE(jsonValidate(doc, &err)) << doc << ": " << err;
    }
}

TEST(Json, ValidatorRejectsMalformedDocuments)
{
    for (const char *doc : {
             "",
             "{",
             "}",
             "{\"a\":}",
             "[1,]",
             "{\"a\":1,}",
             "\"unterminated",
             "{} trailing",
             "[01]",
             "{'single': 1}",
             "nul",
             "[1 2]",
             "{\"a\" 1}",
             "\"bad \\x escape\"",
         }) {
        std::string err;
        EXPECT_FALSE(jsonValidate(doc, &err)) << doc;
        EXPECT_FALSE(err.empty()) << doc;
    }
}

TEST(Json, EscapeRoundTripsThroughValidator)
{
    std::string nasty = "he said \"hi\"\\ \n\t\r\b\f";
    nasty += '\x01';
    std::string doc = "{\"k\": \"" + jsonEscape(nasty) + "\"}";
    std::string err;
    EXPECT_TRUE(jsonValidate(doc, &err)) << doc << ": " << err;
    EXPECT_NE(doc.find("\\u0001"), std::string::npos);
}

TEST(Tracer, RingOverwritesOldestAndDrainResets)
{
    Tracer t(2);
    t.setNow(10);
    t.instant("a", kTidFrontend);
    t.setNow(11);
    t.instant("b", kTidFrontend);
    t.setNow(12);
    t.instant("c", kTidFrontend);

    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.dropped(), 1u);

    std::vector<TraceEvent> events = t.drain();
    ASSERT_EQ(events.size(), 2u);
    // Oldest surviving first: "a" was overwritten.
    EXPECT_STREQ(events[0].name, "b");
    EXPECT_STREQ(events[1].name, "c");
    EXPECT_EQ(events[0].ts, 11u);

    // drain() clears both the ring and the dropped counter.
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_TRUE(t.drain().empty());
}

TEST(Tracer, CompleteSpansCarryDurationAndArgs)
{
    Tracer t(8);
    t.complete("span", kTidMem, 5, 9, "block", 0x40, "outcome", "timely");
    std::vector<TraceEvent> events = t.drain();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].ph, 'X');
    EXPECT_EQ(events[0].ts, 5u);
    EXPECT_EQ(events[0].dur, 4u);
    EXPECT_STREQ(events[0].argKey, "block");
    EXPECT_EQ(events[0].argVal, 0x40u);
    EXPECT_STREQ(events[0].strVal, "timely");
}

TEST(Obs, ConfigIsExcludedFromFingerprint)
{
    SimConfig plain = smallConfig("li", PrefetchScheme::FdpRemove);
    SimConfig instrumented = smallConfig("li", PrefetchScheme::FdpRemove);
    instrumented.obs.samplesPath = "/tmp/ignored.jsonl";
    instrumented.obs.tracePath = "/tmp/ignored.json";
    instrumented.obs.sampleIntervalCycles = 123;
    // Telemetry is passive: turning it on must not re-key the result
    // cache or split grid points.
    EXPECT_EQ(plain.fingerprint(), instrumented.fingerprint());
}

TEST(Obs, ResultsAreBitIdenticalAcrossObsAndSkipModes)
{
    struct Case
    {
        const char *workload;
        PrefetchScheme scheme;
    };
    const std::vector<Case> cases = {
        {"li", PrefetchScheme::FdpRemove},
        {"gcc", PrefetchScheme::StreamBuffer},
    };

    int combo = 0;
    for (const Case &c : cases) {
        std::vector<std::string> serialized;
        for (bool force_tick : {false, true}) {
            for (bool obs_on : {false, true}) {
                SimConfig cfg = smallConfig(c.workload, c.scheme);
                cfg.forceTick = force_tick;
                if (obs_on) {
                    std::string tag = "parity" + std::to_string(combo++);
                    cfg.obs.samplesPath = tmpPath(tag + ".jsonl");
                    cfg.obs.tracePath = tmpPath(tag + "-trace.json");
                    cfg.obs.sampleIntervalCycles = 500;
                }
                SimResults r = simulate(cfg);
                serialized.push_back(serializeResults(r));
                if (obs_on) {
                    // Non-vacuous: telemetry actually wrote output.
                    EXPECT_FALSE(readFile(cfg.obs.samplesPath).empty());
                    EXPECT_FALSE(readFile(cfg.obs.tracePath).empty());
                }
            }
        }
        for (std::size_t i = 1; i < serialized.size(); ++i) {
            EXPECT_EQ(serialized[0], serialized[i])
                << c.workload << "/" << schemeName(c.scheme)
                << ": combo " << i
                << " diverged (telemetry or sampling perturbed the "
                   "simulation)";
        }
    }
}

TEST(Obs, TraceFileIsValidChromeTraceJson)
{
    std::string path = tmpPath("chrome-trace.json");
    SimConfig cfg = smallConfig("li", PrefetchScheme::FdpRemove);
    cfg.obs.tracePath = path;
    simulate(cfg);

    std::string text = readFile(path);
    std::string err;
    ASSERT_TRUE(jsonValidate(text, &err)) << err;
    EXPECT_EQ(text.compare(0, 15, "{\"traceEvents\":"), 0);
    EXPECT_NE(text.find("\"process_name\""), std::string::npos);
    EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(text.find("\"ftq_entry\""), std::string::npos);
    EXPECT_NE(text.find("\"prefetch\""), std::string::npos);
    EXPECT_NE(text.find("\"outcome\""), std::string::npos);

    // A second run appending to the same file must leave it valid
    // (the sink rewinds over its `]}` trailer per flush) and add a
    // second process with its own id.
    SimConfig cfg2 = smallConfig("gcc", PrefetchScheme::StreamBuffer);
    cfg2.obs.tracePath = path;
    simulate(cfg2);
    std::string text2 = readFile(path);
    ASSERT_TRUE(jsonValidate(text2, &err)) << err;
    EXPECT_GT(text2.size(), text.size());
    EXPECT_NE(text2.find("gcc/stream"), std::string::npos);
}

TEST(Obs, SampleLinesAreValidJsonl)
{
    std::string path = tmpPath("samples.jsonl");
    SimConfig cfg = smallConfig("li", PrefetchScheme::FdpRemove);
    cfg.obs.samplesPath = path;
    cfg.obs.sampleIntervalCycles = 500;
    simulate(cfg);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    std::size_t rows = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string err;
        EXPECT_TRUE(jsonValidate(line, &err)) << line << ": " << err;
        EXPECT_EQ(line.compare(0, 7, "{\"run\":"), 0) << line;
        for (const char *key : {"\"workload\"", "\"scheme\"", "\"cycle\"",
                                "\"ipc\"", "\"mpki\"", "\"pf_accuracy\"",
                                "\"ftq_occ_mean\"", "\"walks_queued\"",
                                "\"prefetches_issued\""}) {
            EXPECT_NE(line.find(key), std::string::npos) << key;
        }
        ++rows;
    }
    EXPECT_GE(rows, 2u) << "interval sampler produced too few rows";
}

TEST(Obs, CsvSamplePathGetsHeaderAndRows)
{
    std::string path = tmpPath("samples.csv");
    SimConfig cfg = smallConfig("li", PrefetchScheme::FdpRemove);
    cfg.obs.samplesPath = path;
    cfg.obs.sampleIntervalCycles = 500;
    simulate(cfg);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_EQ(header,
              "run,workload,scheme,cycle,interval_cycles,insts,ipc,mpki,"
              "pf_accuracy,ftq_occ_mean,walks_queued,prefetches_issued");
    std::string row;
    ASSERT_TRUE(std::getline(in, row));
    EXPECT_NE(row.find(",li,fdp-remove,"), std::string::npos) << row;
}

TEST(Obs, AttributionCountersMatchConsumptionAndMergeCounters)
{
    // The attribution hooks sit right next to the hierarchy's own
    // counters, so two identities hold by construction; breaking one
    // means a hook was moved or dropped.
    for (const auto &[workload, scheme] :
         std::vector<std::pair<std::string, PrefetchScheme>>{
             {"li", PrefetchScheme::FdpRemove},
             {"gcc", PrefetchScheme::StreamBuffer},
             {"perl", PrefetchScheme::Nlp},
         }) {
        SimConfig cfg = smallConfig(workload, scheme);
        SimResults r = simulate(cfg);
        double timely = r.stats.value("pfattr.timely");
        EXPECT_EQ(timely, r.stats.value("mem.pfbuf_hits") +
                              r.stats.value("mem.streambuf_hits"))
            << workload << "/" << schemeName(scheme);
        EXPECT_EQ(r.stats.value("pfattr.late"),
                  r.stats.value("mem.inflight_prefetch_merges"))
            << workload << "/" << schemeName(scheme);
        // One timeliness histogram sample per timely prefetch in the
        // measurement window (the histogram resets at the warmup
        // boundary alongside the stat snapshot).
        EXPECT_EQ(static_cast<double>(r.pfTimeliness.count()), timely)
            << workload << "/" << schemeName(scheme);
        EXPECT_GT(timely, 0.0)
            << workload << "/" << schemeName(scheme)
            << ": attribution identities are vacuous without timely "
               "prefetches";
        // The fractions surfaced in SimResults agree with the raw
        // counters.
        double issued = r.stats.value("mem.prefetches_issued");
        ASSERT_GT(issued, 0.0);
        EXPECT_DOUBLE_EQ(r.prefetchTimely, timely / issued);
    }
}

TEST(Obs, AttributionClassifiesLifecyclesDirectly)
{
    PrefetchAttribution attr;

    // Timely: issue -> fill -> consume, 6 cycles fill-to-use
    // (log2 bucket: 1 + floor(log2(6)) = 3).
    attr.onIssue(0x100, 10);
    attr.onFill(0x100, 20);
    attr.onConsume(0x100, 26);
    EXPECT_EQ(attr.stats.counter("pfattr.timely"), 1u);
    EXPECT_EQ(attr.timelinessHist().bucket(3), 1u);

    // Late: demand merges with the in-flight prefetch.
    attr.onIssue(0x200, 30);
    attr.onDemandMerge(0x200, 35);
    EXPECT_EQ(attr.stats.counter("pfattr.late"), 1u);

    // Evicted-unused: filled but displaced before any use.
    attr.onIssue(0x300, 40);
    attr.onFill(0x300, 50);
    attr.onEvictUnused(0x300);
    EXPECT_EQ(attr.stats.counter("pfattr.evicted_unused"), 1u);

    // Pollution: a prefetch L2 fill displaces a victim, then a demand
    // L2 access misses on that victim. Fires once per armed victim.
    attr.onL2Fill(0x400, std::optional<Addr>(0x500), /*isPrefetch=*/true);
    attr.onL2DemandMiss(0x500);
    attr.onL2DemandMiss(0x500);
    EXPECT_EQ(attr.stats.counter("pfattr.pollution"), 1u);

    // A demand fill's victim must NOT arm pollution, and re-inserting
    // an armed victim disarms it.
    attr.onL2Fill(0x600, std::optional<Addr>(0x700), /*isPrefetch=*/false);
    attr.onL2DemandMiss(0x700);
    attr.onL2Fill(0x800, std::optional<Addr>(0x900), /*isPrefetch=*/true);
    attr.onL2Fill(0x900, std::nullopt, /*isPrefetch=*/false);
    attr.onL2DemandMiss(0x900);
    EXPECT_EQ(attr.stats.counter("pfattr.pollution"), 1u);

    // Consuming a block the attribution never saw issued is a no-op
    // (no spurious timely count).
    attr.onConsume(0xdead, 60);
    EXPECT_EQ(attr.stats.counter("pfattr.timely"), 1u);
}

TEST(Obs, PollutionFiresUnderCacheCapacityPressure)
{
    // A tiny direct-mapped L2 under an aggressive prefetcher: prefetch
    // fills must displace demand-resident lines that demands then miss
    // on, so the end-to-end pollution plumbing (victim tracking in the
    // hierarchy tick -> demand-miss probe) reports a nonzero class.
    SimConfig cfg = smallConfig("gcc", PrefetchScheme::FdpNone);
    cfg.mem.l2.sizeBytes = 4 * 1024;
    cfg.mem.l2.assoc = 1;
    SimResults r = simulate(cfg);
    EXPECT_GT(r.stats.value("pfattr.pollution"), 0.0);
    EXPECT_GT(r.prefetchPollution, 0.0);
}

TEST(Logging, LevelFilterGatesWarnAndInform)
{
    setLogLevel(LogLevel::Quiet);
    ::testing::internal::CaptureStderr();
    warn("suppressed warning %d", 1);
    inform("suppressed info");
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");

    setLogLevel(LogLevel::Warn);
    ::testing::internal::CaptureStderr();
    warn("visible warning");
    inform("still suppressed");
    std::string out = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("warn: visible warning"), std::string::npos) << out;
    EXPECT_EQ(out.find("suppressed"), std::string::npos) << out;

    setLogLevel(LogLevel::Info);
    ::testing::internal::CaptureStderr();
    warn("warning at info");
    inform("info at info");
    out = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("warn: warning at info"), std::string::npos) << out;
    EXPECT_NE(out.find("info: info at info"), std::string::npos) << out;
}
