/** Tests for the partitioned-BTB extension. */

#include <gtest/gtest.h>

#include "bpu/partitioned_btb.hh"

using namespace fdip;

namespace
{

PartitionedBtb::Config
tinyCfg()
{
    PartitionedBtb::Config c;
    c.tagBits = 16;
    c.partitions = {
        {8, 16, 2},
        {13, 16, 2},
        {23, 16, 2},
        {0, 8, 2},
    };
    return c;
}

} // namespace

TEST(PartitionedBtb, AllocatesToSmallestFittingPartition)
{
    PartitionedBtb pbtb(tinyCfg());
    Addr pc = 0x100000;

    pbtb.insert(pc, InstClass::Jump, pc + 100 * instBytes);   // 7 bits
    pbtb.insert(pc + 4, InstClass::Jump, pc + 5000 * instBytes);  // 13
    pbtb.insert(pc + 8, InstClass::Jump, pc + 4000000 * instBytes); // 22
    pbtb.insert(pc + 12, InstClass::IndCall, 0x40000000);     // full

    EXPECT_EQ(pbtb.stats.counter("pbtb.insert_p0"), 1u);
    EXPECT_EQ(pbtb.stats.counter("pbtb.insert_p1"), 1u);
    EXPECT_EQ(pbtb.stats.counter("pbtb.insert_p2"), 1u);
    EXPECT_EQ(pbtb.stats.counter("pbtb.insert_p3"), 1u);

    for (unsigned i = 0; i < 4; ++i)
        EXPECT_TRUE(pbtb.lookup(pc + i * 4).has_value()) << i;
}

TEST(PartitionedBtb, LookupSearchesAllPartitions)
{
    PartitionedBtb pbtb(tinyCfg());
    Addr pc = 0x200000;
    Addr far = pc + (1 << 20) * instBytes;
    pbtb.insert(pc, InstClass::Jump, far);
    auto hit = pbtb.lookup(pc);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->target, far);
}

TEST(PartitionedBtb, TargetChangeMigratesPartition)
{
    PartitionedBtb pbtb(tinyCfg());
    Addr pc = 0x300000;
    pbtb.insert(pc, InstClass::CondBr, pc + 10 * instBytes);  // short
    pbtb.insert(pc, InstClass::CondBr, pc + 100000 * instBytes); // long
    // Exactly one entry must survive, holding the new target.
    auto hit = pbtb.lookup(pc);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->target, pc + 100000 * instBytes);
    unsigned valid = 0;
    for (unsigned p = 0; p < pbtb.numPartitions(); ++p)
        valid += pbtb.partition(p).validEntries();
    EXPECT_EQ(valid, 1u);
}

TEST(PartitionedBtb, InvalidateClearsEverywhere)
{
    PartitionedBtb pbtb(tinyCfg());
    Addr pc = 0x400000;
    pbtb.insert(pc, InstClass::Jump, pc + 4 * instBytes);
    pbtb.invalidate(pc);
    EXPECT_FALSE(pbtb.lookup(pc).has_value());
}

TEST(PartitionedBtb, DefaultConfigGeometry)
{
    auto cfg = PartitionedBtb::makeDefaultConfig(1024);
    PartitionedBtb pbtb(cfg);
    EXPECT_EQ(pbtb.numPartitions(), 4u);
    // Distribution-tuned sizing: the 8-bit partition dominates
    // (short offsets plus returns), the longer-offset partitions are
    // small, and the full-width partition serves indirects.
    EXPECT_EQ(pbtb.partition(0).numEntries(), 1536u);
    EXPECT_EQ(pbtb.partition(1).numEntries(), 256u);
    EXPECT_EQ(pbtb.partition(2).numEntries(), 256u);
    EXPECT_EQ(pbtb.partition(3).numEntries(), 384u);
}

TEST(PartitionedBtb, StorageBeatsUnifiedPerEntry)
{
    // At roughly equal storage, the partitioned design holds over 2x
    // the entries of the unified full-entry block-based design.
    auto cfg = PartitionedBtb::makeDefaultConfig(1024);
    PartitionedBtb pbtb(cfg);

    Btb::Config unified;
    unified.sets = 128;
    unified.ways = 8;          // 1K entries
    unified.tagBits = 0;       // full tag
    unified.offsetBits = 0;    // full target
    Btb ubtb(unified);

    double pb_per_entry = static_cast<double>(pbtb.storageBits()) /
        pbtb.numEntries();
    double ub_per_entry = static_cast<double>(ubtb.storageBits()) /
        ubtb.numEntries();
    EXPECT_LT(pb_per_entry, ub_per_entry / 2.0);
    EXPECT_GT(static_cast<double>(pbtb.numEntries()),
              2.0 * ubtb.numEntries());
}

TEST(PartitionedBtb, RejectsUnencodableNever)
{
    // The full-width partition accepts everything, so inserts must
    // never be rejected.
    PartitionedBtb pbtb(tinyCfg());
    Addr pc = 0x500000;
    pbtb.insert(pc, InstClass::Jump, 0xFFFFFFFFF0ull);
    EXPECT_EQ(pbtb.stats.counter("pbtb.insert_rejected"), 0u);
    EXPECT_TRUE(pbtb.lookup(pc).has_value());
}

TEST(PartitionedBtbDeath, EmptyConfig)
{
    PartitionedBtb::Config c;
    EXPECT_DEATH({ PartitionedBtb p(c); }, "no partitions");
}
