/** Tests for the Jouppi streaming buffers. */

#include <gtest/gtest.h>

#include "prefetch/stream_buffer.hh"

using namespace fdip;

namespace
{

struct Rig
{
    MemHierarchy mem;

    Rig() : mem(makeCfg()) {}

    static MemConfig
    makeCfg()
    {
        MemConfig c;
        c.l1i.sizeBytes = 4096;
        c.l1i.assoc = 2;
        c.l1i.blockBytes = 32;
        c.l2.sizeBytes = 64 * 1024;
        c.l2.assoc = 4;
        c.l2.blockBytes = 32;
        c.l2BusBytesPerCycle = 32; // quick transfers for tests
        return c;
    }

    FetchAccess
    trueMiss()
    {
        FetchAccess a; // all false = true miss with retry=false
        a.readyAt = 50;
        return a;
    }

    /** Run fill completion + buffer top-up for a few cycles. */
    void
    settle(StreamBufferPrefetcher &sb, Cycle from, Cycle to)
    {
        for (Cycle t = from; t <= to; ++t) {
            mem.tick(t);
            sb.tick(t);
        }
    }
};

StreamBufferPrefetcher::Config
noFilterCfg()
{
    StreamBufferPrefetcher::Config c;
    c.numBuffers = 2;
    c.depth = 4;
    c.allocationFilter = false;
    return c;
}

} // namespace

TEST(StreamBuffer, AllocatesOnMissAndStreams)
{
    Rig rig;
    StreamBufferPrefetcher sb(rig.mem, noFilterCfg());
    rig.mem.tick(1);
    sb.onDemandAccess(0x1000, rig.trueMiss(), 1);
    EXPECT_EQ(sb.stats.counter("sb.allocations"), 1u);
    rig.settle(sb, 2, 600); // one outstanding per buffer: serial fills
    // The buffer filled up to its depth with successive blocks.
    EXPECT_GE(sb.stats.counter("sb.issued"), 4u);
    EXPECT_GE(sb.stats.counter("sb.fills"), 4u);
}

TEST(StreamBuffer, ProbeConsumesAndShifts)
{
    Rig rig;
    StreamBufferPrefetcher sb(rig.mem, noFilterCfg());
    rig.mem.tick(1);
    sb.onDemandAccess(0x1000, rig.trueMiss(), 1);
    rig.settle(sb, 2, 200);
    // 0x1020 must be sitting in the buffer now.
    EXPECT_TRUE(sb.probeAndConsume(0x1020, 201));
    EXPECT_EQ(sb.stats.counter("sb.hits"), 1u);
    // Consuming again must fail (entry gone).
    EXPECT_FALSE(sb.probeAndConsume(0x1020, 202));
}

TEST(StreamBuffer, NonHeadHitSkipsOlderSlots)
{
    Rig rig;
    StreamBufferPrefetcher sb(rig.mem, noFilterCfg());
    rig.mem.tick(1);
    sb.onDemandAccess(0x1000, rig.trueMiss(), 1);
    rig.settle(sb, 2, 200);
    // Jump over 0x1020 straight to 0x1040: fully-associative lookup
    // hits and discards the skipped slot.
    EXPECT_TRUE(sb.probeAndConsume(0x1040, 201));
    EXPECT_EQ(sb.stats.counter("sb.skipped_slots"), 1u);
    EXPECT_FALSE(sb.probeAndConsume(0x1020, 202));
}

TEST(StreamBuffer, TwoMissFilterSuppressesRandomMisses)
{
    Rig rig;
    StreamBufferPrefetcher::Config c;
    c.numBuffers = 2;
    c.depth = 4;
    c.allocationFilter = true;
    StreamBufferPrefetcher sb(rig.mem, c);
    rig.mem.tick(1);
    sb.onDemandAccess(0x1000, rig.trueMiss(), 1);
    EXPECT_EQ(sb.stats.counter("sb.allocations"), 0u);
    EXPECT_EQ(sb.stats.counter("sb.filtered_allocations"), 1u);
    // Sequential second miss allocates.
    sb.onDemandAccess(0x1020, rig.trueMiss(), 2);
    EXPECT_EQ(sb.stats.counter("sb.allocations"), 1u);
}

TEST(StreamBuffer, LruReallocationReplacesColdBuffer)
{
    Rig rig;
    StreamBufferPrefetcher::Config c = noFilterCfg();
    c.numBuffers = 2;
    StreamBufferPrefetcher sb(rig.mem, c);
    rig.mem.tick(1);
    sb.onDemandAccess(0x1000, rig.trueMiss(), 1);
    rig.settle(sb, 2, 100);
    sb.onDemandAccess(0x8000, rig.trueMiss(), 101);
    rig.settle(sb, 102, 200);
    // Third stream: one of the two buffers must be re-aimed.
    sb.onDemandAccess(0x20000, rig.trueMiss(), 201);
    EXPECT_EQ(sb.stats.counter("sb.allocations"), 3u);
    EXPECT_EQ(sb.stats.counter("sb.reallocations"), 1u);
}

TEST(StreamBuffer, DoesNotReallocateForBlocksAlreadyStreamed)
{
    Rig rig;
    StreamBufferPrefetcher sb(rig.mem, noFilterCfg());
    rig.mem.tick(1);
    sb.onDemandAccess(0x1000, rig.trueMiss(), 1);
    rig.settle(sb, 2, 100);
    std::uint64_t allocs = sb.stats.counter("sb.allocations");
    // A miss on a block the buffer already holds must not allocate a
    // second stream (the demand path would have consumed it anyway).
    sb.onDemandAccess(0x1020, rig.trueMiss(), 101);
    EXPECT_EQ(sb.stats.counter("sb.allocations"), allocs);
}

TEST(StreamBuffer, SkipsBlocksAlreadyCached)
{
    Rig rig;
    StreamBufferPrefetcher sb(rig.mem, noFilterCfg());
    rig.mem.l1i().insert(0x1020); // next block is already in L1
    rig.mem.tick(1);
    sb.onDemandAccess(0x1000, rig.trueMiss(), 1);
    rig.settle(sb, 2, 400);
    EXPECT_GE(sb.stats.counter("sb.skipped_redundant"), 1u);
    // The stream continued past the cached block.
    EXPECT_TRUE(sb.probeAndConsume(0x1040, 401));
}

TEST(StreamBuffer, InFlightSlotNotConsumable)
{
    Rig rig;
    MemConfig slow = Rig::makeCfg();
    slow.dramLatency = 500;
    MemHierarchy mem(slow);
    StreamBufferPrefetcher sb(mem, noFilterCfg());
    mem.tick(1);
    sb.onDemandAccess(0x1000, FetchAccess{.readyAt = 50}, 1);
    mem.tick(2);
    sb.tick(2); // issues the first prefetch; fill is far away
    EXPECT_FALSE(sb.probeAndConsume(0x1020, 3));
    // But the MSHR knows it is in flight: a demand would merge there.
    EXPECT_NE(mem.mshrs().find(0x1020), nullptr);
}

TEST(StreamBuffer, RegistersAsHierarchyClient)
{
    Rig rig;
    StreamBufferPrefetcher sb(rig.mem, noFilterCfg());
    rig.mem.tick(1);
    sb.onDemandAccess(0x1000, rig.trueMiss(), 1);
    rig.settle(sb, 2, 200);
    // demandFetch must find the streamed block via the probe client.
    rig.mem.tick(201);
    rig.mem.reserveTagPort();
    FetchAccess a = rig.mem.demandFetch(0x1020, 201);
    EXPECT_TRUE(a.hitStreamBuffer);
    EXPECT_TRUE(rig.mem.l1i().probe(0x1020));
}
