/** Tests for the canonical configs and BTB budget ladders. */

#include <gtest/gtest.h>

#include "bpu/ftb.hh"
#include "sim/presets.hh"

using namespace fdip;

TEST(Presets, BaselineMachineShape)
{
    SimConfig cfg = makeBaselineConfig("gcc");
    EXPECT_EQ(cfg.workload, "gcc");
    EXPECT_EQ(cfg.mem.l1i.sizeBytes, 16u * 1024);
    EXPECT_EQ(cfg.mem.l1i.assoc, 2u);
    EXPECT_EQ(cfg.ftqEntries, 32u);
    EXPECT_TRUE(cfg.bpu.blockBased);
    EXPECT_NO_FATAL_FAILURE(cfg.validate());
}

TEST(Presets, LadderMatchesPaperBudgets)
{
    auto ladder = btbBudgetLadder();
    ASSERT_EQ(ladder.size(), 6u);
    EXPECT_EQ(ladder.front().ftbEntries, 1024u);
    EXPECT_EQ(ladder.back().ftbEntries, 32768u);
    // The unified FTB at each rung must cost what the ladder claims.
    for (const auto &pt : ladder) {
        SimConfig cfg = makeBaselineConfig("gcc");
        applyFtbBudget(cfg, pt.ftbEntries);
        Ftb ftb(cfg.bpu.ftb);
        double kb = static_cast<double>(ftb.storageBits()) / 8.0 / 1024.0;
        EXPECT_NEAR(kb, pt.ftbBudgetKB, pt.ftbBudgetKB * 0.01)
            << pt.ftbEntries << " entries";
    }
}

TEST(Presets, PartitionedBudgetUsesLessStorageMoreEntries)
{
    for (const auto &pt : btbBudgetLadder()) {
        SimConfig ucfg = makeBaselineConfig("gcc");
        applyFtbBudget(ucfg, pt.ftbEntries);
        Ftb ftb(ucfg.bpu.ftb);

        SimConfig pcfg = makeBaselineConfig("gcc");
        applyPartitionedBudget(pcfg, pt.ftbEntries);
        PartitionedBtb pbtb(pcfg.pbtb);

        // The partitioned ensemble must fit within the unified budget
        // and provide >2x the entries.
        EXPECT_LE(pbtb.storageBits(), ftb.storageBits())
            << pt.ftbEntries;
        EXPECT_GT(pbtb.numEntries(), 2u * pt.ftbEntries)
            << pt.ftbEntries;
    }
}

TEST(Presets, ApplyFtbBudgetSetsGeometry)
{
    SimConfig cfg = makeBaselineConfig("gcc");
    applyFtbBudget(cfg, 8192);
    EXPECT_TRUE(cfg.bpu.blockBased);
    EXPECT_EQ(cfg.bpu.ftb.ways, 8u);
    EXPECT_EQ(cfg.bpu.ftb.sets, 1024u);
    EXPECT_NO_FATAL_FAILURE(cfg.validate());
}

TEST(Presets, ApplyPartitionedBudgetSwitchesFrontEnd)
{
    SimConfig cfg = makeBaselineConfig("gcc");
    applyPartitionedBudget(cfg, 1024);
    EXPECT_FALSE(cfg.bpu.blockBased);
    EXPECT_TRUE(cfg.usePartitionedBtb);
    EXPECT_EQ(cfg.pbtb.tagBits, 16u);
    EXPECT_NO_FATAL_FAILURE(cfg.validate());
}

TEST(Presets, ApplyUnifiedBtbBudget)
{
    SimConfig cfg = makeBaselineConfig("gcc");
    applyUnifiedBtbBudget(cfg, 4096);
    EXPECT_FALSE(cfg.bpu.blockBased);
    EXPECT_FALSE(cfg.usePartitionedBtb);
    EXPECT_EQ(cfg.bpu.btb.sets * cfg.bpu.btb.ways, 4096u);
    EXPECT_NO_FATAL_FAILURE(cfg.validate());
}

TEST(Presets, SchemeNamesRoundTrip)
{
    EXPECT_STREQ(schemeName(PrefetchScheme::None), "none");
    EXPECT_STREQ(schemeName(PrefetchScheme::FdpIdeal), "fdp-ideal");
    EXPECT_TRUE(schemeIsFdp(PrefetchScheme::FdpEnqueue));
    EXPECT_FALSE(schemeIsFdp(PrefetchScheme::Nlp));
    EXPECT_FALSE(schemeIsFdp(PrefetchScheme::None));
}
