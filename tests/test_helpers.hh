/**
 * @file test_helpers.hh
 * Hand-built miniature programs and small utilities shared by tests.
 */

#ifndef FDIP_TESTS_TEST_HELPERS_HH
#define FDIP_TESTS_TEST_HELPERS_HH

#include <memory>

#include "trace/program.hh"

namespace fdip::testutil
{

/**
 * A single infinite loop:
 *   fn0: bb0 (4 insts, plain)
 *        bb1 (4 insts, ends in Jump -> bb0)
 * 8 instructions total, footprint 32 bytes.
 */
inline std::unique_ptr<Program>
makeTightLoop()
{
    auto prog = std::make_unique<Program>();
    Function fn;
    fn.level = 0;

    BasicBlock b0;
    b0.numInsts = 4;
    b0.term = InstClass::NonCF;
    fn.blocks.push_back(b0);

    BasicBlock b1;
    b1.numInsts = 4;
    b1.term = InstClass::Jump;
    b1.targetBb = 0;
    fn.blocks.push_back(b1);

    prog->funcs.push_back(fn);
    prog->layout();
    prog->validate();
    return prog;
}

/**
 * Dispatcher + callee with a patterned conditional:
 *   fn0: bb0 (2 insts, Call -> fn1)
 *        bb1 (2 insts, Jump -> bb0)
 *   fn1: bb0 (3 insts, CondBr pattern TNTN.. -> bb2)
 *        bb1 (3 insts, plain fallthrough)
 *        bb2 (2 insts, Return)
 */
inline std::unique_ptr<Program>
makeCallPattern()
{
    auto prog = std::make_unique<Program>();

    Function f0;
    f0.level = 0;
    {
        BasicBlock b0;
        b0.numInsts = 2;
        b0.term = InstClass::Call;
        b0.targetFn = 1;
        f0.blocks.push_back(b0);

        BasicBlock b1;
        b1.numInsts = 2;
        b1.term = InstClass::Jump;
        b1.targetBb = 0;
        f0.blocks.push_back(b1);
    }

    Function f1;
    f1.level = 1;
    {
        BasicBlock b0;
        b0.numInsts = 3;
        b0.term = InstClass::CondBr;
        b0.targetBb = 2;
        b0.cond.kind = CondBehavior::Kind::Pattern;
        b0.cond.pattern = 0b01; // T, N, T, N, ...
        b0.cond.patternLen = 2;
        f1.blocks.push_back(b0);

        BasicBlock b1;
        b1.numInsts = 3;
        b1.term = InstClass::NonCF;
        f1.blocks.push_back(b1);

        BasicBlock b2;
        b2.numInsts = 2;
        b2.term = InstClass::Return;
        f1.blocks.push_back(b2);
    }

    prog->funcs.push_back(f0);
    prog->funcs.push_back(f1);
    prog->layout();
    prog->validate();
    return prog;
}

/**
 * Straight-line code over many cache blocks, looping at the end:
 *   fn0: bb0 (num_insts plain insts)
 *        bb1 (2 insts, Jump -> bb0)
 * Used to exercise sequential fetch/prefetch across blocks.
 */
inline std::unique_ptr<Program>
makeLongStraightLoop(unsigned num_insts = 256)
{
    auto prog = std::make_unique<Program>();
    Function fn;
    fn.level = 0;

    BasicBlock b0;
    b0.numInsts = num_insts;
    b0.term = InstClass::NonCF;
    fn.blocks.push_back(b0);

    BasicBlock b1;
    b1.numInsts = 2;
    b1.term = InstClass::Jump;
    b1.targetBb = 0;
    fn.blocks.push_back(b1);

    prog->funcs.push_back(fn);
    prog->layout();
    prog->validate();
    return prog;
}

} // namespace fdip::testutil

#endif // FDIP_TESTS_TEST_HELPERS_HH
