/**
 * Conformance suite for the trace ingestion frontend (docs/TRACES.md):
 *
 *  - ChampSim decode: byte-level golden decode of the checked-in
 *    fixture (tests/fixtures/mini.champsim.trace), the branch-type
 *    register heuristics, and the canonical-stream invariant the
 *    PC canonicalizer guarantees.
 *  - v2 format: delta-encoding edge cases (far-target sentinel,
 *    alignment rejection), v1 read-back and v1-to-v2 conversion
 *    identity, truncated/corrupt inputs rejected with SimError.
 *  - Warmup/ROI phases: ROI instruction accounting and the
 *    skip-N == discard-N-records equivalence.
 *  - Differential replay: a recorded synthetic workload replayed
 *    through the streaming reader is bit-identical (serializeResults)
 *    to the live executor, in both tick modes.
 *
 * The golden decode baseline regenerates with:
 *
 *     FDIP_UPDATE_GOLDEN=1 ./build/test_trace_ingest
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/logging.hh"
#include "sim/presets.hh"
#include "sim/report.hh"
#include "sim/runner.hh"
#include "test_helpers.hh"
#include "trace/champsim.hh"
#include "trace/profile.hh"
#include "trace/synth_builder.hh"
#include "trace/trace_file.hh"

using namespace fdip;

namespace
{

const char *kFixturePath =
    FDIP_TESTS_DIR "/fixtures/mini.champsim.trace";
const char *kGoldenPath =
    FDIP_TESTS_DIR "/golden/champsim_fixture_decode.golden";

struct TempPath
{
    std::string path;
    explicit TempPath(const std::string &name)
        : path("/tmp/fdip_ingest_" + name + ".trace")
    {}
    ~TempPath() { std::remove(path.c_str()); }
};

WorkloadProfile
miniProfile()
{
    WorkloadProfile p;
    p.name = "mini";
    p.seed = 23;
    return p;
}

/** A ChampSim record with the given register operand slots. */
ChampSimRecord
makeRec(std::uint64_t ip, bool is_branch, bool taken,
        std::vector<std::uint8_t> dst, std::vector<std::uint8_t> src)
{
    ChampSimRecord r{};
    r.ip = ip;
    r.isBranch = is_branch ? 1 : 0;
    r.branchTaken = taken ? 1 : 0;
    for (std::size_t i = 0; i < dst.size(); ++i)
        r.destinationRegisters[i] = dst[i];
    for (std::size_t i = 0; i < src.size(); ++i)
        r.sourceRegisters[i] = src[i];
    return r;
}

std::string
formatInstr(const TraceInstr &ti)
{
    return strprintf("%#010llx %-7s taken=%d target=%#010llx\n",
                     static_cast<unsigned long long>(ti.pc),
                     instClassName(ti.cls), ti.taken ? 1 : 0,
                     ti.target == invalidAddr
                         ? 0ull
                         : static_cast<unsigned long long>(ti.target));
}

/** Decode @p n canonical instructions from the fixture. */
std::vector<TraceInstr>
decodeFixture(std::size_t n, const std::string &path = kFixturePath)
{
    ChampSimTraceReader reader(path);
    std::vector<TraceInstr> out;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(reader.next());
    return out;
}

void
writeBytes(const std::string &path, const void *data, std::size_t n)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(data, 1, n, f), n);
    std::fclose(f);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

} // namespace

// ---------------------------------------------------------------------
// Branch-type reconstruction heuristics
// ---------------------------------------------------------------------

TEST(ChampSimClassify, RegisterHeuristicsCoverEveryClass)
{
    const std::uint8_t SP = champSimRegStackPointer;
    const std::uint8_t FL = champSimRegFlags;
    const std::uint8_t IP = champSimRegInstructionPointer;
    const std::uint8_t GP = 3;

    // Not a branch, no IP write: plain instruction.
    EXPECT_EQ(classifyChampSim(makeRec(0x1000, false, false, {GP}, {GP})),
              InstClass::NonCF);
    // Writes IP, reads IP only: direct jump.
    EXPECT_EQ(classifyChampSim(makeRec(0x1000, true, true, {IP}, {IP})),
              InstClass::Jump);
    // Writes IP, reads a general register only: indirect jump.
    EXPECT_EQ(classifyChampSim(makeRec(0x1000, true, true, {IP}, {GP})),
              InstClass::IndJump);
    // Writes IP, reads IP and flags: conditional branch.
    EXPECT_EQ(
        classifyChampSim(makeRec(0x1000, true, false, {IP}, {IP, FL})),
        InstClass::CondBr);
    // Writes IP and SP, reads IP and SP: direct call.
    EXPECT_EQ(
        classifyChampSim(makeRec(0x1000, true, true, {IP, SP}, {IP, SP})),
        InstClass::Call);
    // Writes IP and SP, reads SP and a general register: indirect call.
    EXPECT_EQ(
        classifyChampSim(makeRec(0x1000, true, true, {IP, SP}, {SP, GP})),
        InstClass::IndCall);
    // Writes IP and SP, reads SP only: return.
    EXPECT_EQ(
        classifyChampSim(makeRec(0x1000, true, true, {IP, SP}, {SP})),
        InstClass::Return);
    // Flagged as a branch but no IP write: heuristics cannot place it;
    // degrade to the conservative CondBr.
    EXPECT_EQ(classifyChampSim(makeRec(0x1000, true, false, {GP}, {GP})),
              InstClass::CondBr);
}

TEST(ChampSimClassify, PathDispatchByExtension)
{
    EXPECT_TRUE(isChampSimTracePath("a/b/foo.champsim.trace"));
    EXPECT_TRUE(isChampSimTracePath("foo.champsim.trace.xz"));
    EXPECT_TRUE(isChampSimTracePath("foo.champsim.trace.gz"));
    EXPECT_TRUE(isChampSimTracePath("600.perlbench_s-210B.champsimtrace.xz"));
    EXPECT_FALSE(isChampSimTracePath("foo.fdip.trace"));
    EXPECT_FALSE(isChampSimTracePath("foo.trace.xz"));
}

// ---------------------------------------------------------------------
// Fixture decode: golden baseline + canonical-stream invariant
// ---------------------------------------------------------------------

// Byte-level golden decode: the first two passes over the checked-in
// fixture, canonical PCs and all. Any change to the classification
// heuristics, the canonicalizer's allocation order, or trampoline
// placement fails loudly here.
TEST(ChampSimDecode, GoldenFixtureDecode)
{
    // 84 canonical instructions cover two-plus passes over the
    // 33-record fixture (trampolines add records), so the golden also
    // pins that pass two replays pass one's memoized decisions.
    std::string got;
    for (const TraceInstr &ti : decodeFixture(84))
        got += formatInstr(ti);

    const char *update = std::getenv("FDIP_UPDATE_GOLDEN");
    if (update != nullptr && update[0] != '\0' &&
        !(update[0] == '0' && update[1] == '\0')) {
        std::ofstream out(kGoldenPath, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
        out << got;
        GTEST_SKIP() << "golden baseline rewritten: " << kGoldenPath;
    }

    std::ifstream in(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden baseline " << kGoldenPath
        << " — generate it with FDIP_UPDATE_GOLDEN=1";
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(got, buf.str())
        << "fixture decode drifted; if intentional, regenerate with "
        << "FDIP_UPDATE_GOLDEN=1 and commit the new baseline";
}

// The invariant every consumer of canonical streams relies on: PCs are
// word aligned inside the reader's code region, every not-taken record
// is followed by pc+4, and every taken record is followed by its
// target.
TEST(ChampSimDecode, CanonicalStreamInvariant)
{
    ChampSimTraceReader reader(kFixturePath);
    std::vector<TraceInstr> insts;
    for (int i = 0; i < 400; ++i)
        insts.push_back(reader.next());
    EXPECT_GE(reader.sourcePasses(), 8u);

    for (std::size_t i = 0; i < insts.size(); ++i) {
        const TraceInstr &ti = insts[i];
        ASSERT_EQ(ti.pc % instBytes, 0u) << "at " << i;
        ASSERT_GE(ti.pc, reader.codeBase()) << "at " << i;
        ASSERT_LT(ti.pc, reader.allocatedEnd()) << "at " << i;
        if (ti.taken) {
            ASSERT_NE(ti.target, invalidAddr) << "at " << i;
            ASSERT_EQ(ti.target % instBytes, 0u) << "at " << i;
        }
        if (i + 1 < insts.size()) {
            Addr expect = ti.taken ? ti.target : ti.pc + instBytes;
            ASSERT_EQ(insts[i + 1].pc, expect)
                << "at " << i << ": " << formatInstr(ti) << "  next "
                << formatInstr(insts[i + 1]);
        }
    }
    EXPECT_LE(reader.allocatedEnd(), reader.codeEnd());
    EXPECT_GT(reader.allocatedEnd(), reader.codeBase());
}

// The decode covers the whole class repertoire (the fixture was built
// to exercise every heuristic).
TEST(ChampSimDecode, FixtureExercisesAllClasses)
{
    std::vector<bool> seen(static_cast<int>(InstClass::IndCall) + 1,
                           false);
    for (const TraceInstr &ti : decodeFixture(40))
        seen[static_cast<int>(ti.cls)] = true;
    for (std::size_t c = 0; c < seen.size(); ++c)
        EXPECT_TRUE(seen[c])
            << instClassName(static_cast<InstClass>(c)) << " never decoded";
}

TEST(ChampSimDecode, TruncatedRecordRejected)
{
    TempPath tmp("champsim_truncated");
    std::string bytes = readFile(kFixturePath);
    ASSERT_EQ(bytes.size() % sizeof(ChampSimRecord), 0u);
    bytes.resize(bytes.size() - 17); // cut into the final record
    writeBytes(tmp.path, bytes.data(), bytes.size());

    ChampSimTraceReader reader(tmp.path);
    EXPECT_THROW(
        {
            for (int i = 0; i < 200; ++i)
                reader.next();
        },
        SimError);
}

TEST(ChampSimDecode, EmptyInputRejected)
{
    TempPath tmp("champsim_empty");
    writeBytes(tmp.path, "", 0);
    EXPECT_THROW({ ChampSimTraceReader r(tmp.path); }, SimError);
    EXPECT_THROW(
        { ChampSimTraceReader r("/nonexistent/x.champsim.trace"); },
        SimError);
}

// Decompression pipe: a gzip-compressed fixture decodes identically to
// the raw one.
TEST(ChampSimDecode, GzipPipeMatchesRawDecode)
{
    if (std::system("gzip --version >/dev/null 2>&1") != 0)
        GTEST_SKIP() << "no gzip in PATH";
    TempPath tmp("gzfixture");
    std::string gz = tmp.path + ".champsim.trace.gz";
    std::string cmd = "gzip -c " + std::string(kFixturePath) + " > " + gz;
    ASSERT_EQ(std::system(cmd.c_str()), 0);

    auto raw = decodeFixture(84);
    auto piped = decodeFixture(84, gz);
    ASSERT_EQ(raw.size(), piped.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
        EXPECT_EQ(formatInstr(raw[i]), formatInstr(piped[i]))
            << "at " << i;
    }
    std::remove(gz.c_str());
}

// ---------------------------------------------------------------------
// v2 delta-encoding edge cases
// ---------------------------------------------------------------------

TEST(TraceV2, FarTargetSentinelRoundTrips)
{
    TempPath tmp("far_target");
    // Forward and backward targets beyond the 32-bit word-delta reach,
    // plus the largest delta that still fits inline on each side.
    const Addr base = 0x10'0000'0000ull;
    const std::int64_t reach = // max inline delta, in bytes
        (std::int64_t(std::numeric_limits<std::int32_t>::max())) * 4;
    std::vector<TraceInstr> recs;
    auto jump = [](Addr pc, Addr target) {
        TraceInstr ti;
        ti.pc = pc;
        ti.cls = InstClass::Jump;
        ti.target = target;
        ti.taken = true;
        return ti;
    };
    recs.push_back(jump(base, base + reach + 4));       // far forward
    recs.push_back(jump(base, base - reach - 4));       // far backward
    recs.push_back(jump(base, base + reach));           // inline max
    recs.push_back(jump(base + reach, 0x0));            // inline min-ish
    recs.push_back(jump(base, base + (1ull << 40)));    // very far

    {
        TraceFileWriter w(tmp.path);
        for (const TraceInstr &ti : recs)
            w.append(ti);
        w.close();
    }
    TraceFileReader r(tmp.path);
    ASSERT_EQ(r.numInsts(), recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
        TraceInstr got = r.next();
        EXPECT_EQ(got.pc, recs[i].pc) << "at " << i;
        EXPECT_EQ(got.target, recs[i].target) << "at " << i;
        EXPECT_EQ(got.cls, recs[i].cls) << "at " << i;
        EXPECT_TRUE(got.taken) << "at " << i;
    }
}

TEST(TraceV2, InvalidTargetRoundTripsWithoutFlag)
{
    TempPath tmp("no_target");
    TraceInstr ti;
    ti.pc = 0x400000;
    ti.cls = InstClass::NonCF;
    ti.target = invalidAddr;
    ti.taken = false;
    {
        TraceFileWriter w(tmp.path);
        w.append(ti);
        w.close();
    }
    TraceFileReader r(tmp.path);
    TraceInstr got = r.next();
    EXPECT_EQ(got.pc, ti.pc);
    EXPECT_EQ(got.target, invalidAddr);
    EXPECT_FALSE(got.taken);
}

TEST(TraceV2, RejectsUnalignedAddressesAtWrite)
{
    TempPath tmp("unaligned");
    TraceFileWriter w(tmp.path);
    TraceInstr bad_pc;
    bad_pc.pc = 0x400001; // not word aligned
    bad_pc.cls = InstClass::NonCF;
    bad_pc.target = invalidAddr;
    EXPECT_THROW(w.append(bad_pc), SimError);

    TraceInstr bad_target;
    bad_target.pc = 0x400000;
    bad_target.cls = InstClass::Jump;
    bad_target.target = 0x400006; // valid but unaligned target
    bad_target.taken = true;
    EXPECT_THROW(w.append(bad_target), SimError);
}

TEST(TraceV2, RejectsTruncatedRecordStream)
{
    TempPath tmp("v2_truncated");
    auto prog = testutil::makeTightLoop();
    SyntheticExecutor src(*prog, miniProfile());
    writeTraceFile(tmp.path, src, 32);

    std::string bytes = readFile(tmp.path);
    bytes.resize(bytes.size() - 9); // cut into the final record
    writeBytes(tmp.path, bytes.data(), bytes.size());

    TraceFileReader r(tmp.path);
    EXPECT_THROW(
        {
            for (int i = 0; i < 32; ++i)
                r.next();
        },
        SimError);
}

TEST(TraceV2, RejectsCorruptRecordFields)
{
    auto write_one = [](const std::string &path,
                        const TraceFileRecordV2 &rec) {
        TraceFileHeader h;
        h.numInsts = 1;
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(&h, sizeof(h), 1, f), 1u);
        ASSERT_EQ(std::fwrite(&rec, sizeof(rec), 1, f), 1u);
        std::fclose(f);
    };
    auto expect_reject = [&](const TraceFileRecordV2 &rec,
                             const char *what) {
        TempPath tmp("v2_corrupt");
        write_one(tmp.path, rec);
        TraceFileReader r(tmp.path);
        EXPECT_THROW(r.next(), SimError) << what;
    };

    TraceFileRecordV2 ok{};
    ok.pcAndFlags = (0x400000ull >> 2) << 2; // aligned pc, no target
    ok.cls = static_cast<std::uint8_t>(InstClass::NonCF);

    TraceFileRecordV2 rec = ok;
    rec.pcAndFlags |= 1ull << 1;
    expect_reject(rec, "reserved flag bit set");

    rec = ok;
    rec.cls = 99;
    expect_reject(rec, "out-of-range class");

    rec = ok;
    rec.taken = 2;
    expect_reject(rec, "non-boolean taken");

    rec = ok;
    rec.reserved = 7;
    expect_reject(rec, "reserved field set");

    rec = ok;
    rec.targetDelta = 12; // delta without the target-valid flag
    expect_reject(rec, "delta on an invalid target");
}

// ---------------------------------------------------------------------
// v1 compatibility: read-back and conversion identity
// ---------------------------------------------------------------------

TEST(TraceV1, ReadBackAndConvertToV2Identity)
{
    TempPath v1p("v1_file");
    TempPath v2p("v1_to_v2");

    // Hand-build a v1 file: tight loop of 3 insts, one pass unrolled.
    std::vector<TraceFileRecordV1> v1recs;
    for (int i = 0; i < 12; ++i) {
        TraceFileRecordV1 r{};
        int lane = i % 3;
        r.pc = 0x400000 + 4 * lane;
        if (lane == 2) {
            r.target = 0x400000;
            r.cls = static_cast<std::uint8_t>(InstClass::Jump);
            r.taken = 1;
        } else {
            r.target = std::uint64_t(-1); // invalidAddr
            r.cls = static_cast<std::uint8_t>(InstClass::NonCF);
            r.taken = 0;
        }
        v1recs.push_back(r);
    }
    {
        TraceFileHeaderV1 h;
        h.numInsts = v1recs.size();
        std::FILE *f = std::fopen(v1p.path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(&h, sizeof(h), 1, f), 1u);
        ASSERT_EQ(std::fwrite(v1recs.data(), sizeof(TraceFileRecordV1),
                              v1recs.size(), f),
                  v1recs.size());
        std::fclose(f);
    }

    // v1 read-back: exact records, fixed fallback code range.
    TraceFileReader v1r(v1p.path);
    EXPECT_EQ(v1r.version(), 1u);
    EXPECT_EQ(v1r.numInsts(), v1recs.size());
    EXPECT_EQ(v1r.codeBase(), 0x400000u);
    EXPECT_EQ(v1r.codeEnd(), 0x400000u + 32ull * 1024 * 1024);

    // Convert to v2 (what fdip_trace_convert does for native inputs).
    TraceFileWriter w(v2p.path, v1r.codeBase(), v1r.codeEnd());
    std::vector<TraceInstr> from_v1;
    for (std::size_t i = 0; i < v1recs.size(); ++i) {
        TraceInstr ti = v1r.next();
        from_v1.push_back(ti);
        w.append(ti);
    }
    w.close();

    TraceFileReader v2r(v2p.path);
    EXPECT_EQ(v2r.version(), 2u);
    ASSERT_EQ(v2r.numInsts(), v1recs.size());
    EXPECT_EQ(v2r.codeBase(), v1r.codeBase());
    EXPECT_EQ(v2r.codeEnd(), v1r.codeEnd());
    for (std::size_t i = 0; i < v1recs.size(); ++i) {
        TraceInstr a = from_v1[i];
        TraceInstr b = v2r.next();
        ASSERT_EQ(a.pc, b.pc) << "at " << i;
        ASSERT_EQ(a.cls, b.cls) << "at " << i;
        ASSERT_EQ(a.taken, b.taken) << "at " << i;
        ASSERT_EQ(a.target, b.target) << "at " << i;
        ASSERT_EQ(a.pc, v1recs[i].pc) << "at " << i;
    }
}

// ---------------------------------------------------------------------
// Warmup / ROI phase control
// ---------------------------------------------------------------------

// Stats cover exactly the ROI: warmup instructions are excluded and
// measurement stops within one retire group of the target.
TEST(TraceRoi, InstructionCountCoversExactlyTheRoi)
{
    TempPath tmp("roi_count");
    auto prog = testutil::makeCallPattern();
    SyntheticExecutor src(*prog, miniProfile());
    writeTraceFile(tmp.path, src, 60 * 1000, prog->base,
                   prog->codeEnd());

    SimConfig cfg = makeBaselineConfig("gcc", PrefetchScheme::Nlp);
    cfg.tracePath = tmp.path;
    cfg.warmupInsts = 3 * 1000;
    cfg.measureInsts = 10 * 1000;
    SimResults r = simulate(cfg);
    EXPECT_GE(r.instructions, cfg.measureInsts);
    EXPECT_LT(r.instructions,
              cfg.measureInsts + cfg.backend.retireWidth);
}

// SimConfig::skipInsts fast-forwards the source before warmup: a run
// that skips N records of a trace is bit-identical to a run over the
// same trace with its first N records discarded.
TEST(TraceRoi, SkipNEqualsDiscardNRecords)
{
    TempPath full("roi_full");
    TempPath suffix("roi_suffix");
    constexpr std::uint64_t kTotal = 60 * 1000;
    constexpr std::uint64_t kSkip = 2 * 1000;

    auto prog = testutil::makeCallPattern();
    SyntheticExecutor src(*prog, miniProfile());
    writeTraceFile(full.path, src, kTotal, prog->base, prog->codeEnd());

    // Discard the first kSkip records into a suffix trace.
    {
        TraceFileReader r(full.path);
        TraceFileWriter w(suffix.path, r.codeBase(), r.codeEnd());
        for (std::uint64_t i = 0; i < kSkip; ++i)
            r.next();
        for (std::uint64_t i = kSkip; i < kTotal; ++i)
            w.append(r.next());
        w.close();
    }

    auto run = [](const std::string &path, std::uint64_t skip) {
        SimConfig cfg =
            makeBaselineConfig("roi", PrefetchScheme::FdpEnqueue);
        cfg.tracePath = path;
        cfg.skipInsts = skip;
        cfg.warmupInsts = 1000;
        cfg.measureInsts = 5 * 1000; // well short of a wrap
        return serializeResults(simulate(cfg));
    };
    EXPECT_EQ(run(full.path, kSkip), run(suffix.path, 0));
}

// ---------------------------------------------------------------------
// Differential replay parity (live executor vs streaming reader)
// ---------------------------------------------------------------------

// A recorded synthetic workload replayed through the streaming reader
// produces serializeResults() bit-identical to the live executor run —
// in both tick modes (cf. tests/test_tick_skip.cc; CI re-runs this
// under FDIP_NO_SKIP=1).
TEST(TraceDifferential, ReplayMatchesLiveExecutorBothTickModes)
{
    TempPath tmp("differential");
    const std::string workload = "gcc";
    WorkloadProfile profile = findProfile(workload);
    auto prog = buildProgram(profile);
    {
        SyntheticExecutor exec(*prog, profile);
        // Capture far more than warmup+measure so the replay never
        // wraps (the live stream would diverge at the wrap).
        writeTraceFile(tmp.path, exec, 100 * 1000, prog->base,
                       prog->codeEnd());
    }

    struct Point
    {
        PrefetchScheme scheme;
        bool vm;
    };
    const std::vector<Point> points = {
        {PrefetchScheme::None, false},
        {PrefetchScheme::FdpEnqueue, false},
        {PrefetchScheme::FdpRemove, true},
    };
    for (const Point &p : points) {
        for (bool force_tick : {false, true}) {
            SimConfig live = makeBaselineConfig(workload, p.scheme);
            live.warmupInsts = 5 * 1000;
            live.measureInsts = 20 * 1000;
            live.forceTick = force_tick;
            if (p.vm) {
                applyVmConfig(live, TlbPrefetchPolicy::Wait,
                              PageMapKind::Scrambled,
                              /*itlb_entries=*/16);
            }
            SimConfig replay = live;
            replay.tracePath = tmp.path;

            std::string a = serializeResults(simulate(live));
            std::string b = serializeResults(simulate(replay));
            ASSERT_EQ(a, b)
                << "live vs replay diverged: scheme="
                << schemeName(p.scheme) << " vm=" << p.vm
                << " forceTick=" << force_tick;
        }
    }
}

// End to end: the checked-in ChampSim fixture drives a full simulation
// through the "trace:" workload hook (looping many times over its 33
// records) and produces sane results.
TEST(TraceDifferential, ChampSimFixtureRunsEndToEnd)
{
    SimConfig cfg = makeBaselineConfig(
        "trace:" + std::string(kFixturePath), PrefetchScheme::FdpEnqueue);
    cfg.warmupInsts = 1000;
    cfg.measureInsts = 5 * 1000;
    SimResults r = simulate(cfg);
    EXPECT_GE(r.instructions, cfg.measureInsts);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.cycles, 0u);
}
