/** Tests for the return address stack. */

#include <gtest/gtest.h>

#include "bpu/ras.hh"

using namespace fdip;

TEST(Ras, PushPopLifo)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.size(), 3u);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_TRUE(ras.empty());
}

TEST(Ras, PopEmptyReturnsInvalid)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.pop(), invalidAddr);
    EXPECT_EQ(ras.top(), invalidAddr);
}

TEST(Ras, TopDoesNotPop)
{
    ReturnAddressStack ras(4);
    ras.push(0x42);
    EXPECT_EQ(ras.top(), 0x42u);
    EXPECT_EQ(ras.size(), 1u);
}

TEST(Ras, OverflowOverwritesOldest)
{
    ReturnAddressStack ras(3);
    ras.push(0x1);
    ras.push(0x2);
    ras.push(0x3);
    ras.push(0x4); // overwrites 0x1
    EXPECT_EQ(ras.size(), 3u);
    EXPECT_EQ(ras.pop(), 0x4u);
    EXPECT_EQ(ras.pop(), 0x3u);
    EXPECT_EQ(ras.pop(), 0x2u);
    EXPECT_TRUE(ras.empty());
}

TEST(Ras, CopySemanticsForCheckpointing)
{
    ReturnAddressStack arch(8);
    arch.push(0x10);
    arch.push(0x20);
    ReturnAddressStack spec = arch; // checkpoint
    spec.pop();
    spec.push(0xBAD);
    spec.push(0xBAD2);
    // Restoring from the checkpoint recovers the original contents.
    spec = arch;
    EXPECT_EQ(spec.size(), 2u);
    EXPECT_EQ(spec.pop(), 0x20u);
    EXPECT_EQ(spec.pop(), 0x10u);
    // The architectural copy is untouched.
    EXPECT_EQ(arch.size(), 2u);
}

TEST(Ras, ClearEmpties)
{
    ReturnAddressStack ras(4);
    ras.push(0x1);
    ras.clear();
    EXPECT_TRUE(ras.empty());
    EXPECT_EQ(ras.pop(), invalidAddr);
}

TEST(Ras, DeepCallChain)
{
    ReturnAddressStack ras(32);
    for (Addr a = 1; a <= 32; ++a)
        ras.push(a * 0x10);
    for (Addr a = 32; a >= 1; --a)
        EXPECT_EQ(ras.pop(), a * 0x10);
}

TEST(Ras, WrapAroundManyTimes)
{
    ReturnAddressStack ras(4);
    for (int round = 0; round < 100; ++round) {
        ras.push(round);
        EXPECT_EQ(ras.top(), static_cast<Addr>(round));
    }
    EXPECT_EQ(ras.size(), 4u);
}

TEST(RasDeath, ZeroDepth)
{
    EXPECT_DEATH({ ReturnAddressStack r(0); }, "depth");
}
