/** Tests for binary trace record/replay. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "test_helpers.hh"
#include "trace/trace_file.hh"

using namespace fdip;

namespace
{

struct TempPath
{
    std::string path;
    explicit TempPath(const std::string &name)
        : path("/tmp/fdip_test_" + name + ".trace")
    {}
    ~TempPath() { std::remove(path.c_str()); }
};

WorkloadProfile
miniProfile()
{
    WorkloadProfile p;
    p.name = "mini";
    p.seed = 11;
    return p;
}

} // namespace

TEST(TraceFile, RoundTripPreservesInstructions)
{
    TempPath tmp("roundtrip");
    auto prog = testutil::makeCallPattern();
    SyntheticExecutor writer_src(*prog, miniProfile());
    writeTraceFile(tmp.path, writer_src, 500);

    SyntheticExecutor ref(*prog, miniProfile());
    TraceFileReader reader(tmp.path);
    EXPECT_EQ(reader.numInsts(), 500u);
    for (int i = 0; i < 500; ++i) {
        TraceInstr a = ref.next();
        TraceInstr b = reader.next();
        ASSERT_EQ(a.pc, b.pc) << "at " << i;
        ASSERT_EQ(a.cls, b.cls);
        ASSERT_EQ(a.taken, b.taken);
        ASSERT_EQ(a.target, b.target);
    }
}

TEST(TraceFile, ReaderLoopsAtEnd)
{
    TempPath tmp("loop");
    auto prog = testutil::makeTightLoop();
    SyntheticExecutor src(*prog, miniProfile());
    writeTraceFile(tmp.path, src, 16); // exactly two loop iterations

    TraceFileReader reader(tmp.path);
    TraceInstr first = reader.next();
    for (int i = 1; i < 16; ++i)
        reader.next();
    EXPECT_EQ(reader.loopCount(), 0u);
    TraceInstr wrapped = reader.next();
    EXPECT_EQ(reader.loopCount(), 1u);
    EXPECT_EQ(wrapped.pc, first.pc);
}

TEST(TraceFile, ReaderIsATraceSource)
{
    TempPath tmp("source");
    auto prog = testutil::makeTightLoop();
    SyntheticExecutor src(*prog, miniProfile());
    writeTraceFile(tmp.path, src, 64);

    TraceFileReader reader(tmp.path);
    TraceWindow win(reader);
    // Window semantics work over a file-backed source.
    EXPECT_EQ(win.at(10).pc, win.at(10).pc);
    win.retireUpTo(5);
    EXPECT_EQ(win.baseSeq(), 5u);
}

TEST(TraceFileDeath, RejectsGarbageFile)
{
    TempPath tmp("garbage");
    std::FILE *f = std::fopen(tmp.path.c_str(), "wb");
    const char junk[] = "not a trace file at all, sorry";
    std::fwrite(junk, sizeof(junk), 1, f);
    std::fclose(f);
    EXPECT_EXIT({ TraceFileReader r(tmp.path); },
                ::testing::ExitedWithCode(1), "bad magic");
}

TEST(TraceFileDeath, RejectsMissingFile)
{
    EXPECT_EXIT({ TraceFileReader r("/nonexistent/path.trace"); },
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceFileDeath, RejectsTruncatedHeader)
{
    TempPath tmp("short");
    std::FILE *f = std::fopen(tmp.path.c_str(), "wb");
    std::uint32_t partial = 42;
    std::fwrite(&partial, sizeof(partial), 1, f);
    std::fclose(f);
    EXPECT_EXIT({ TraceFileReader r(tmp.path); },
                ::testing::ExitedWithCode(1), "too short");
}
