/** Tests for binary trace record/replay (v1 + v2 formats). */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/error.hh"
#include "test_helpers.hh"
#include "trace/trace_file.hh"

using namespace fdip;

namespace
{

struct TempPath
{
    std::string path;
    explicit TempPath(const std::string &name)
        : path("/tmp/fdip_test_" + name + ".trace")
    {}
    ~TempPath() { std::remove(path.c_str()); }
};

WorkloadProfile
miniProfile()
{
    WorkloadProfile p;
    p.name = "mini";
    p.seed = 11;
    return p;
}

} // namespace

// The on-disk layouts are a compatibility contract: pin both versions'
// header/record sizes and the v2 field rules so drift between the doc
// in trace_file.hh and the shipped structs cannot recur.
TEST(TraceFile, PinsBothFormatVersions)
{
    EXPECT_EQ(sizeof(TraceFileHeaderV1), 24u);
    EXPECT_EQ(sizeof(TraceFileRecordV1), 24u);
    EXPECT_EQ(sizeof(TraceFileHeader), 40u);
    EXPECT_EQ(sizeof(TraceFileRecordV2), 16u);
    EXPECT_EQ(traceFileVersion, 2u);
    EXPECT_EQ(TraceFileHeaderV1{}.magic, traceFileMagic);
    EXPECT_EQ(TraceFileHeader{}.magic, traceFileMagic);
    EXPECT_EQ(traceRecordHasTarget, 1ull);
    EXPECT_EQ(traceFarTargetSentinel,
              std::numeric_limits<std::int32_t>::min());
}

TEST(TraceFile, RoundTripPreservesInstructions)
{
    TempPath tmp("roundtrip");
    auto prog = testutil::makeCallPattern();
    SyntheticExecutor writer_src(*prog, miniProfile());
    writeTraceFile(tmp.path, writer_src, 500, prog->base,
                   prog->codeEnd());

    SyntheticExecutor ref(*prog, miniProfile());
    TraceFileReader reader(tmp.path);
    EXPECT_EQ(reader.numInsts(), 500u);
    EXPECT_EQ(reader.version(), traceFileVersion);
    EXPECT_EQ(reader.codeBase(), prog->base);
    EXPECT_EQ(reader.codeEnd(), prog->codeEnd());
    for (int i = 0; i < 500; ++i) {
        TraceInstr a = ref.next();
        TraceInstr b = reader.next();
        ASSERT_EQ(a.pc, b.pc) << "at " << i;
        ASSERT_EQ(a.cls, b.cls);
        ASSERT_EQ(a.taken, b.taken);
        ASSERT_EQ(a.target, b.target);
    }
}

TEST(TraceFile, ReaderLoopsAtEnd)
{
    TempPath tmp("loop");
    auto prog = testutil::makeTightLoop();
    SyntheticExecutor src(*prog, miniProfile());
    writeTraceFile(tmp.path, src, 16); // exactly two loop iterations

    TraceFileReader reader(tmp.path);
    TraceInstr first = reader.next();
    for (int i = 1; i < 16; ++i)
        reader.next();
    EXPECT_EQ(reader.loopCount(), 0u);
    TraceInstr wrapped = reader.next();
    EXPECT_EQ(reader.loopCount(), 1u);
    EXPECT_EQ(wrapped.pc, first.pc);
}

TEST(TraceFile, ReaderIsATraceSource)
{
    TempPath tmp("source");
    auto prog = testutil::makeTightLoop();
    SyntheticExecutor src(*prog, miniProfile());
    writeTraceFile(tmp.path, src, 64);

    TraceFileReader reader(tmp.path);
    TraceWindow win(reader);
    // Window semantics work over a file-backed source.
    EXPECT_EQ(win.at(10).pc, win.at(10).pc);
    win.retireUpTo(5);
    EXPECT_EQ(win.baseSeq(), 5u);
}

// Corrupt inputs raise SimError unconditionally (not the FDIP_FATAL
// abort path): a sweep must be able to isolate one bad trace as a
// FAIL cell instead of dying (docs/ROBUSTNESS.md).
TEST(TraceFile, RejectsGarbageFile)
{
    TempPath tmp("garbage");
    std::FILE *f = std::fopen(tmp.path.c_str(), "wb");
    const char junk[] = "not a trace file at all, sorry";
    std::fwrite(junk, sizeof(junk), 1, f);
    std::fclose(f);
    EXPECT_THROW({ TraceFileReader r(tmp.path); }, SimError);
}

TEST(TraceFile, RejectsMissingFile)
{
    EXPECT_THROW({ TraceFileReader r("/nonexistent/path.trace"); },
                 SimError);
}

TEST(TraceFile, RejectsTruncatedHeader)
{
    TempPath tmp("short");
    std::FILE *f = std::fopen(tmp.path.c_str(), "wb");
    std::uint32_t partial = 42;
    std::fwrite(&partial, sizeof(partial), 1, f);
    std::fclose(f);
    EXPECT_THROW({ TraceFileReader r(tmp.path); }, SimError);
}

TEST(TraceFile, RejectsUnsupportedVersion)
{
    TempPath tmp("badver");
    TraceFileHeader h;
    h.version = 99;
    h.numInsts = 1;
    std::FILE *f = std::fopen(tmp.path.c_str(), "wb");
    std::fwrite(&h, sizeof(h), 1, f);
    std::fclose(f);
    EXPECT_THROW({ TraceFileReader r(tmp.path); }, SimError);
}
