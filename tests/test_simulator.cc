/** Whole-system integration tests. */

#include <cmath>

#include <gtest/gtest.h>

#include "sim/presets.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"
#include "trace/profile.hh"

using namespace fdip;

namespace
{

SimConfig
quickCfg(const std::string &wl, PrefetchScheme scheme)
{
    SimConfig cfg = makeBaselineConfig(wl, scheme);
    cfg.warmupInsts = 30 * 1000;
    cfg.measureInsts = 120 * 1000;
    return cfg;
}

} // namespace

TEST(Simulator, RunsToCompletion)
{
    SimResults r = simulate(quickCfg("li", PrefetchScheme::None));
    // Retire-width granularity: up to retireWidth-1 overshoot on each
    // window boundary.
    EXPECT_GE(r.instructions, 120 * 1000u - 4);
    EXPECT_LE(r.instructions, 120 * 1000u + 4);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.ipc, 0.1);
    EXPECT_LT(r.ipc, 4.0); // retire width
}

TEST(Simulator, DeterministicAcrossRuns)
{
    SimResults a = simulate(quickCfg("m88ksim", PrefetchScheme::FdpRemove));
    SimResults b = simulate(quickCfg("m88ksim", PrefetchScheme::FdpRemove));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_DOUBLE_EQ(a.mpki, b.mpki);
    EXPECT_EQ(a.stats.counter("mem.prefetches_issued"),
              b.stats.counter("mem.prefetches_issued"));
}

TEST(Simulator, FdpReducesMissesAndHelpsIpc)
{
    SimResults base = simulate(quickCfg("gcc", PrefetchScheme::None));
    SimResults fdp = simulate(quickCfg("gcc", PrefetchScheme::FdpRemove));
    EXPECT_LT(fdp.mpki, base.mpki * 0.7);
    EXPECT_GT(speedupOver(base, fdp), 0.05);
    EXPECT_GT(fdp.prefetchAccuracy, 0.3);
    EXPECT_GT(fdp.prefetchCoverage, 0.3);
}

TEST(Simulator, NoPrefetchIssuesNoPrefetches)
{
    SimResults r = simulate(quickCfg("gcc", PrefetchScheme::None));
    EXPECT_EQ(r.stats.counter("mem.prefetches_issued"), 0u);
    EXPECT_DOUBLE_EQ(r.prefetchAccuracy, 0.0);
}

TEST(Simulator, CpfCutsBusTrafficVsNoFilter)
{
    SimResults nofil = simulate(quickCfg("gcc", PrefetchScheme::FdpNone));
    SimResults ideal = simulate(quickCfg("gcc", PrefetchScheme::FdpIdeal));
    EXPECT_LT(ideal.l2BusUtil, nofil.l2BusUtil * 0.8);
    EXPECT_GT(ideal.prefetchAccuracy, nofil.prefetchAccuracy);
}

TEST(Simulator, RedirectMachineryExercised)
{
    SimResults r = simulate(quickCfg("go", PrefetchScheme::None));
    EXPECT_GT(r.stats.counter("bpu.divergences"), 100u);
    EXPECT_GT(r.stats.counter("bpu.redirects"), 100u);
    EXPECT_GT(r.stats.counter("fetch.wrong_path_delivered"), 0u);
    EXPECT_GT(r.stats.counter("backend.squashed"), 0u);
    // Every redirect pairs with a scheduled redirect, up to
    // window-boundary skew.
    EXPECT_NEAR(r.stats.value("bpu.redirects"),
                r.stats.value("fetch.redirects_scheduled"), 2.0);
}

TEST(Simulator, FtqOccupancySampledEveryMeasuredCycle)
{
    SimConfig cfg = quickCfg("li", PrefetchScheme::None);
    SimResults r = simulate(cfg);
    EXPECT_EQ(r.ftqOccupancy.count(), r.cycles);
}

TEST(Simulator, CommittedMatchesBackendAccounting)
{
    SimConfig cfg = quickCfg("perl", PrefetchScheme::Nlp);
    SimResults r = simulate(cfg);
    // Delivered >= committed (wrong-path extras are delivered too).
    EXPECT_GE(r.stats.counter("backend.delivered"), r.instructions);
    // IPC consistent with raw counters.
    EXPECT_NEAR(r.ipc,
                static_cast<double>(r.instructions) /
                    static_cast<double>(r.cycles),
                1e-12);
}

TEST(Simulator, StreamBufferSchemeWiresClients)
{
    SimResults r = simulate(quickCfg("gcc", PrefetchScheme::StreamBuffer));
    EXPECT_GT(r.stats.counter("sb.allocations"), 0u);
    EXPECT_GT(r.stats.counter("sb.issued"), 0u);
    EXPECT_GT(r.stats.counter("mem.streambuf_hits"), 0u);
}

TEST(Simulator, CombinedFdpNlpRuns)
{
    SimConfig cfg = quickCfg("gcc", PrefetchScheme::FdpRemove);
    cfg.combineNlp = true;
    SimResults r = simulate(cfg);
    EXPECT_GT(r.stats.counter("fdp.issued"), 0u);
    EXPECT_GT(r.stats.counter("nlp.triggers"), 0u);
}

TEST(Simulator, PartitionedBtbFrontEndRuns)
{
    SimConfig cfg = quickCfg("gcc", PrefetchScheme::FdpRemove);
    applyPartitionedBudget(cfg, 1024);
    SimResults r = simulate(cfg);
    EXPECT_GT(r.ipc, 0.1);
    EXPECT_GT(r.stats.counter("pbtb.hits"), 0u);
}

TEST(Simulator, StepExposesCycleGranularity)
{
    SimConfig cfg = quickCfg("li", PrefetchScheme::None);
    Simulator sim(cfg);
    EXPECT_EQ(sim.now(), 0u);
    sim.step();
    EXPECT_EQ(sim.now(), 1u);
    for (int i = 0; i < 100; ++i)
        sim.step();
    EXPECT_GT(sim.backend().committed(), 0u);
}

TEST(Simulator, WarmupExcludedFromMeasurement)
{
    SimConfig cfg = quickCfg("li", PrefetchScheme::None);
    SimResults r = simulate(cfg);
    // Cold-start compulsory misses land in warmup; the measured
    // window of this cache-resident workload must be nearly missless.
    EXPECT_LT(r.mpki, 3.0);
}

TEST(Simulator, SpeedupHelpers)
{
    SimResults a, b;
    a.ipc = 1.0;
    b.ipc = 1.25;
    EXPECT_DOUBLE_EQ(speedupOver(a, b), 0.25);
    EXPECT_DOUBLE_EQ(speedupOver(b, a), -0.2);
}

TEST(Simulator, SpeedupOverDegenerateBaselineIsNaN)
{
    SimResults dead, live;
    dead.ipc = 0.0;
    live.ipc = 1.0;
    EXPECT_TRUE(std::isnan(speedupOver(dead, live)));
}

TEST(Simulator, VmIdentityHugeItlbMatchesVmOffBaseline)
{
    // Identity mapping + an effectively-infinite ITLB: all walks are
    // compulsory and resolve during warmup, so the measured window
    // must reproduce the VM-off machine for every preset workload.
    for (const auto &name : allWorkloadNames()) {
        SimConfig off = quickCfg(name, PrefetchScheme::FdpRemove);
        SimConfig on = off;
        applyVmConfig(on, TlbPrefetchPolicy::Fill,
                      PageMapKind::Identity, /*itlb_entries=*/4096);
        SimResults r_off = simulate(off);
        SimResults r_on = simulate(on);
        EXPECT_NEAR(r_on.ipc, r_off.ipc, r_off.ipc * 0.01)
            << "workload " << name;
    }
}

TEST(Simulator, VmStatsAppearInResults)
{
    SimConfig cfg = quickCfg("gcc", PrefetchScheme::FdpRemove);
    applyVmConfig(cfg, TlbPrefetchPolicy::Drop,
                  PageMapKind::Scrambled, /*itlb_entries=*/8);
    SimResults r = simulate(cfg);
    EXPECT_TRUE(r.stats.has("itlb.hits"));
    EXPECT_TRUE(r.stats.has("itlb.misses"));
    EXPECT_GT(r.stats.counter("itlb.misses"), 0u);
    EXPECT_GT(r.stats.counter("mmu.walks"), 0u);
    EXPECT_GT(r.stats.counter("fetch.itlb_misses"), 0u);
    EXPECT_GT(r.stats.counter("fetch.itlb_stall_cycles"), 0u);
    // Drop policy: TLB-missing candidates were discarded, not walked.
    EXPECT_GT(r.stats.counter("mmu.pf_dropped"), 0u);
    EXPECT_GT(r.stats.counter("fdp.tlb_dropped"), 0u);
    EXPECT_EQ(r.stats.counter("mmu.pf_walks"), 0u);
}

TEST(Simulator, VmOffReportsNoItlbStats)
{
    SimResults r = simulate(quickCfg("gcc", PrefetchScheme::FdpRemove));
    EXPECT_FALSE(r.stats.has("itlb.hits"));
    EXPECT_FALSE(r.stats.has("mmu.walks"));
}

TEST(Simulator, VmPrefetchFillPolicyPreWarmsDemandTranslations)
{
    SimConfig drop = quickCfg("gcc", PrefetchScheme::FdpRemove);
    applyVmConfig(drop, TlbPrefetchPolicy::Drop,
                  PageMapKind::Scrambled, /*itlb_entries=*/8);
    SimConfig fill = drop;
    fill.vm.prefetchPolicy = TlbPrefetchPolicy::Fill;
    SimResults r_drop = simulate(drop);
    SimResults r_fill = simulate(fill);
    EXPECT_GT(r_fill.stats.counter("mmu.pf_fills"), 0u);
    // Pre-warmed translations mean fewer demand-side walks.
    EXPECT_LT(r_fill.stats.counter("mmu.demand_walks"),
              r_drop.stats.counter("mmu.demand_walks"));
    EXPECT_GE(r_fill.ipc, r_drop.ipc);
}

TEST(Simulator, VmDeterministicAcrossRuns)
{
    SimConfig cfg = quickCfg("go", PrefetchScheme::FdpRemove);
    applyVmConfig(cfg, TlbPrefetchPolicy::Wait,
                  PageMapKind::Scrambled, /*itlb_entries=*/16);
    SimResults a = simulate(cfg);
    SimResults b = simulate(cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stats.counter("mmu.walks"), b.stats.counter("mmu.walks"));
}

TEST(SimulatorDeath, InvalidConfigRejected)
{
    SimConfig cfg = quickCfg("li", PrefetchScheme::None);
    cfg.measureInsts = 0;
    EXPECT_DEATH({ Simulator s(cfg); }, "measureInsts");
}

TEST(SimulatorDeath, InvalidVmKnobsRejected)
{
    SimConfig cfg = quickCfg("li", PrefetchScheme::None);
    cfg.vm.enable = true;
    cfg.vm.pageBytes = 3000; // not a power of two
    EXPECT_DEATH({ Simulator s(cfg); }, "power of two");

    SimConfig cfg2 = quickCfg("li", PrefetchScheme::None);
    applyVmConfig(cfg2);
    cfg2.vm.walkLatency = 0;
    EXPECT_DEATH({ Simulator s(cfg2); }, "walk latency");

    SimConfig cfg3 = quickCfg("li", PrefetchScheme::None);
    EXPECT_DEATH(
        { applyVmConfig(cfg3, TlbPrefetchPolicy::Drop,
                        PageMapKind::Scrambled, /*itlb_entries=*/12); },
        "power of two");
}

TEST(SimulatorDeath, PartitionedBtbRequiresConventionalFrontEnd)
{
    SimConfig cfg = quickCfg("li", PrefetchScheme::None);
    cfg.usePartitionedBtb = true; // without blockBased=false
    cfg.pbtb = PartitionedBtb::makeDefaultConfig(1024);
    EXPECT_DEATH({ Simulator s(cfg); }, "conventional");
}
