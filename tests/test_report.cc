/** Tests for the report-formatting helpers. */

#include <gtest/gtest.h>

#include "sim/report.hh"

using namespace fdip;

TEST(Report, BannerContainsAllParts)
{
    std::string b = experimentBanner("R-F5", "headline result",
                                     "fdp wins");
    EXPECT_NE(b.find("R-F5"), std::string::npos);
    EXPECT_NE(b.find("headline result"), std::string::npos);
    EXPECT_NE(b.find("expected shape: fdp wins"), std::string::npos);
    EXPECT_NE(b.find("===="), std::string::npos);
}

TEST(Report, SummarizeRunFormatsMetrics)
{
    SimResults r;
    r.workload = "gcc";
    r.scheme = "fdp-remove";
    r.ipc = 1.234;
    r.mpki = 12.5;
    r.l2BusUtil = 0.25;
    r.prefetchAccuracy = 0.5;
    r.prefetchCoverage = 0.75;
    r.skippedCycles = 375;
    r.totalCycles = 1000;
    std::string s = summarizeRun(r);
    EXPECT_NE(s.find("gcc"), std::string::npos);
    EXPECT_NE(s.find("fdp-remove"), std::string::npos);
    EXPECT_NE(s.find("1.234"), std::string::npos);
    EXPECT_NE(s.find("12.50"), std::string::npos);
    EXPECT_NE(s.find("25.0%"), std::string::npos);
    EXPECT_NE(s.find("75.0%"), std::string::npos);
    EXPECT_NE(s.find("skip=37.5%"), std::string::npos) << s;
}

TEST(Report, SummarizeRunSkipPercentHandlesZeroTotal)
{
    // Cache-hit results zero the skip gauges; the summary must not
    // divide by zero.
    SimResults r;
    r.workload = "li";
    r.scheme = "none";
    std::string s = summarizeRun(r);
    EXPECT_NE(s.find("skip=0.0%"), std::string::npos) << s;
}

TEST(Report, StrprintfBehavesLikePrintf)
{
    EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strprintf("%.3f", 1.5), "1.500");
    EXPECT_EQ(strprintf("no args"), "no args");
    // Long strings do not truncate.
    std::string long_arg(500, 'a');
    EXPECT_EQ(strprintf("%s", long_arg.c_str()).size(), 500u);
}
