/** Tests for the direction predictors. */

#include <gtest/gtest.h>

#include "bpu/bimodal.hh"
#include "bpu/gshare.hh"
#include "bpu/hybrid.hh"
#include "bpu/local2level.hh"

using namespace fdip;

namespace
{

/** Train+measure accuracy of @p pred on a repeating pattern at one PC. */
template <typename Pred>
double
patternAccuracy(Pred &pred, Addr pc, const std::vector<bool> &pattern,
                int rounds)
{
    std::uint64_t hist = 0;
    int correct = 0, total = 0;
    for (int r = 0; r < rounds; ++r) {
        for (bool taken : pattern) {
            bool p = pred.predict(pc, hist);
            if (r >= rounds / 2) { // measure the second half
                correct += p == taken;
                ++total;
            }
            pred.update(pc, hist, taken);
            hist = shiftHistory(hist, taken);
        }
    }
    return static_cast<double>(correct) / total;
}

} // namespace

TEST(Bimodal, LearnsStrongBias)
{
    BimodalPredictor pred(1024);
    Addr pc = 0x1000;
    EXPECT_GT(patternAccuracy(pred, pc, {true}, 100), 0.99);
    BimodalPredictor pred2(1024);
    EXPECT_GT(patternAccuracy(pred2, pc, {false}, 100), 0.99);
}

TEST(Bimodal, CannotLearnAlternation)
{
    BimodalPredictor pred(1024);
    double acc = patternAccuracy(pred, 0x1000, {true, false}, 200);
    EXPECT_LT(acc, 0.75); // alternation defeats a 2-bit counter
}

TEST(Bimodal, SeparatePcsSeparateCounters)
{
    BimodalPredictor pred(1024);
    std::uint64_t h = 0;
    // Adjacent instructions: guaranteed distinct table indices.
    for (int i = 0; i < 10; ++i) {
        pred.update(0x1000, h, true);
        pred.update(0x1004, h, false);
    }
    EXPECT_TRUE(pred.predict(0x1000, h));
    EXPECT_FALSE(pred.predict(0x1004, h));
}

TEST(Gshare, LearnsAlternationViaHistory)
{
    GsharePredictor pred(4096, 8);
    double acc = patternAccuracy(pred, 0x1000, {true, false}, 200);
    EXPECT_GT(acc, 0.95);
}

TEST(Gshare, LearnsLongerPattern)
{
    GsharePredictor pred(4096, 10);
    double acc = patternAccuracy(
        pred, 0x1000, {true, true, false, true, false, false}, 400);
    EXPECT_GT(acc, 0.9);
}

TEST(Local2Level, LearnsPerBranchPattern)
{
    Local2LevelPredictor pred(256, 10, 1024);
    double acc = patternAccuracy(pred, 0x1000,
                                 {true, true, true, false}, 300);
    EXPECT_GT(acc, 0.95);
}

TEST(Hybrid, AtLeastAsGoodAsComponentsOnMix)
{
    // Branch A: strongly biased (bimodal-friendly);
    // Branch B: alternating (gshare-friendly). The hybrid must do well
    // on both simultaneously.
    HybridPredictor hybrid;
    std::uint64_t hist = 0;
    int correct = 0, total = 0;
    for (int r = 0; r < 600; ++r) {
        bool a_outcome = true;
        bool b_outcome = r % 2 == 0;
        for (auto [pc, outcome] :
             {std::pair<Addr, bool>{0x1000, a_outcome},
              std::pair<Addr, bool>{0x2000, b_outcome}}) {
            bool p = hybrid.predict(pc, hist);
            if (r > 300) {
                correct += p == outcome;
                ++total;
            }
            hybrid.update(pc, hist, outcome);
            hist = shiftHistory(hist, outcome);
        }
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.95);
}

TEST(Predictors, StorageBitsAccounting)
{
    BimodalPredictor bim(4096, 2);
    EXPECT_EQ(bim.storageBits(), 4096u * 2);

    GsharePredictor gsh(16384, 12, 2);
    EXPECT_EQ(gsh.storageBits(), 16384u * 2);

    Local2LevelPredictor loc(1024, 10, 1024, 2);
    EXPECT_EQ(loc.storageBits(), 1024u * 10 + 1024u * 2);

    HybridPredictor hyb(16384, 12, 4096, 4096);
    EXPECT_EQ(hyb.storageBits(),
              16384u * 2 + 4096u * 2 + 4096u * 2);
}

TEST(Predictors, Names)
{
    EXPECT_EQ(BimodalPredictor(16).name(), "bimodal");
    EXPECT_EQ(GsharePredictor(16, 2).name(), "gshare");
    EXPECT_EQ(Local2LevelPredictor(16, 4, 16).name(), "local2level");
    EXPECT_EQ(HybridPredictor(16, 2, 16, 16).name(), "hybrid");
}

class GshareSizeSweep : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(GshareSizeSweep, AllSizesLearnAlternation)
{
    GsharePredictor pred(GetParam(), 6);
    double acc = patternAccuracy(pred, 0x1000, {true, false}, 200);
    EXPECT_GT(acc, 0.9) << "size " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sizes, GshareSizeSweep,
                         ::testing::Values(256u, 1024u, 4096u, 65536u));

TEST(PredictorsDeath, NonPowerOfTwoTables)
{
    EXPECT_DEATH({ BimodalPredictor p(1000); }, "2\\^n");
    EXPECT_DEATH({ GsharePredictor p(1000, 8); }, "2\\^n");
}
