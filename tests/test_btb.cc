/** Tests for the conventional BTB. */

#include <gtest/gtest.h>

#include "bpu/btb.hh"

using namespace fdip;

namespace
{

Btb::Config
smallCfg()
{
    Btb::Config c;
    c.sets = 16;
    c.ways = 2;
    return c;
}

} // namespace

TEST(Btb, MissOnEmpty)
{
    Btb btb(smallCfg());
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    EXPECT_EQ(btb.stats.counter("btb.misses"), 1u);
}

TEST(Btb, InsertThenHit)
{
    Btb btb(smallCfg());
    btb.insert(0x1000, InstClass::CondBr, 0x2000);
    auto hit = btb.lookup(0x1000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->cls, InstClass::CondBr);
    EXPECT_EQ(hit->target, 0x2000u);
    EXPECT_EQ(btb.validEntries(), 1u);
}

TEST(Btb, UpdateInPlace)
{
    Btb btb(smallCfg());
    btb.insert(0x1000, InstClass::CondBr, 0x2000);
    btb.insert(0x1000, InstClass::CondBr, 0x3000);
    EXPECT_EQ(btb.validEntries(), 1u);
    EXPECT_EQ(btb.lookup(0x1000)->target, 0x3000u);
}

TEST(Btb, LruEviction)
{
    Btb btb(smallCfg()); // 2 ways
    // Three branches mapping to the same set (stride = sets*4 bytes).
    Addr stride = 16 * instBytes;
    Addr a = 0x1000, b = a + stride, c = b + stride;
    btb.insert(a, InstClass::Jump, 0x9000);
    btb.insert(b, InstClass::Jump, 0x9010);
    // Touch a so b becomes LRU.
    EXPECT_TRUE(btb.lookup(a).has_value());
    btb.insert(c, InstClass::Jump, 0x9020);
    EXPECT_TRUE(btb.lookup(a).has_value());
    EXPECT_FALSE(btb.lookup(b).has_value());
    EXPECT_TRUE(btb.lookup(c).has_value());
    EXPECT_EQ(btb.stats.counter("btb.evictions"), 1u);
}

TEST(Btb, Invalidate)
{
    Btb btb(smallCfg());
    btb.insert(0x1000, InstClass::Call, 0x4000);
    btb.invalidate(0x1000);
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    EXPECT_EQ(btb.validEntries(), 0u);
}

TEST(Btb, FullTagDistinguishesAliases)
{
    Btb btb(smallCfg()); // full tags
    Addr a = 0x1000;
    Addr alias = a + 16 * instBytes; // same set, different tag
    btb.insert(a, InstClass::Jump, 0x9000);
    auto hit = btb.lookup(alias);
    EXPECT_FALSE(hit.has_value());
}

TEST(Btb, CompressedTagWidth)
{
    Btb::Config c = smallCfg();
    c.tagBits = 16;
    Btb btb(c);
    btb.insert(0x1000, InstClass::Jump, 0x9000);
    EXPECT_TRUE(btb.lookup(0x1000).has_value());
    // Entry accounting: 16 (tag) + 2 (type) + 46 (full target).
    EXPECT_EQ(btb.entryBits(), 16u + 2 + 46);
}

TEST(Btb, CompressedTagCanAlias)
{
    // With an 8-bit tag, addresses whose folded tags collide must hit
    // the same entry; construct a deliberate alias: two PCs in the
    // same set whose full tags differ only in bits that fold away.
    Btb::Config c;
    c.sets = 16;
    c.ways = 1;
    c.tagBits = 8;
    Btb btb(c);
    // full tag = (pc/4) >> 4. Choose pc1 with tag 0x01, pc2 with tag
    // 0x01 ^ (0x01 << 8)... folded tag of 0x0101 (low8=0x01, rest=0x01
    // folds to 0x01... width-8 fold keeps only low 8 bits: tag(0x0101)
    // = 0x01 ^ 0x01 = 0x00? Here low_bits = 8, so compressed tag is
    // just the low 8 bits of the full tag. Tags 0x101 and 0x201 both
    // compress to 0x01 only if tagBits <= 8 (no high fold bits).
    Addr pc1 = (0x101ull << 4) * instBytes; // full tag 0x101
    Addr pc2 = (0x201ull << 4) * instBytes; // full tag 0x201
    btb.insert(pc1, InstClass::Jump, 0x9000);
    auto hit = btb.lookup(pc2);
    ASSERT_TRUE(hit.has_value()); // destructive aliasing
    EXPECT_EQ(hit->target, 0x9000u);
}

TEST(Btb, OffsetFieldRejectsFarBranches)
{
    Btb::Config c = smallCfg();
    c.offsetBits = 8;
    Btb btb(c);
    Addr pc = 0x100000;
    // 255-instruction offset fits in 8 bits.
    EXPECT_TRUE(btb.canHold(pc, InstClass::Jump, pc + 255 * instBytes));
    // 256 does not.
    EXPECT_FALSE(btb.canHold(pc, InstClass::Jump, pc + 256 * instBytes));
    // Backward offsets use the separate direction bit.
    EXPECT_TRUE(btb.canHold(pc, InstClass::Jump, pc - 255 * instBytes));

    btb.insert(pc, InstClass::Jump, pc + 256 * instBytes);
    EXPECT_FALSE(btb.lookup(pc).has_value());
    EXPECT_EQ(btb.stats.counter("btb.insert_rejected"), 1u);
}

TEST(Btb, IndirectNeedsFullWidth)
{
    Btb::Config c = smallCfg();
    c.offsetBits = 23;
    Btb btb(c);
    EXPECT_FALSE(btb.canHold(0x1000, InstClass::IndCall, 0x1004));
    // Returns carry no target (the RAS supplies it): any partition.
    EXPECT_TRUE(btb.canHold(0x1000, InstClass::Return, 0x1004));

    Btb::Config full = smallCfg();
    Btb fbtb(full);
    EXPECT_TRUE(fbtb.canHold(0x1000, InstClass::IndCall, 0x1004));
}

TEST(Btb, EntryBitsMatchRevisitTable)
{
    // The follow-up work's Table II entry sizes with 16-bit tags:
    // 8-bit offset -> 26, 13 -> 31, 23 -> 41, full(46) -> 64 bits.
    for (auto [off, bits] : std::vector<std::pair<unsigned, unsigned>>{
             {8, 26}, {13, 31}, {23, 41}, {0, 64}}) {
        Btb::Config c;
        c.sets = 128;
        c.ways = 6;
        c.tagBits = 16;
        c.offsetBits = off;
        Btb btb(c);
        EXPECT_EQ(btb.entryBits(), bits) << "offset " << off;
    }
}

TEST(Btb, FullTagWidthMatchesGeometry)
{
    // 48-bit VA, 128 sets, word-aligned: tag = 48 - 2 - 7 = 39 bits.
    Btb::Config c;
    c.sets = 128;
    c.ways = 8;
    Btb btb(c);
    EXPECT_EQ(btb.fullTagBits(), 39u);
}

TEST(Btb, StorageBitsScaleWithEntries)
{
    Btb::Config c = smallCfg();
    Btb small(c);
    c.sets *= 2;
    Btb big(c);
    // Doubling sets nearly doubles storage (tag shrinks one bit).
    EXPECT_GT(big.storageBits(), small.storageBits() * 19 / 10);
    EXPECT_LT(big.storageBits(), small.storageBits() * 2);
}

class BtbGeometrySweep
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{};

TEST_P(BtbGeometrySweep, FillsToCapacityWithinSet)
{
    auto [sets, ways] = GetParam();
    Btb::Config c;
    c.sets = sets;
    c.ways = ways;
    Btb btb(c);
    // Fill one set completely, all entries must coexist.
    Addr stride = Addr(sets) * instBytes;
    for (unsigned w = 0; w < ways; ++w)
        btb.insert(0x4000 + w * stride, InstClass::Jump, 0x100);
    for (unsigned w = 0; w < ways; ++w)
        EXPECT_TRUE(btb.lookup(0x4000 + w * stride).has_value());
    EXPECT_EQ(btb.validEntries(), ways);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BtbGeometrySweep,
    ::testing::Values(std::pair<unsigned, unsigned>{16, 1},
                      std::pair<unsigned, unsigned>{16, 2},
                      std::pair<unsigned, unsigned>{64, 4},
                      std::pair<unsigned, unsigned>{128, 6},
                      std::pair<unsigned, unsigned>{1024, 8}));
