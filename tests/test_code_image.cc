/** Tests for the PC-indexed static code image. */

#include <gtest/gtest.h>

#include "test_helpers.hh"
#include "trace/code_image.hh"
#include "trace/profile.hh"
#include "trace/synth_builder.hh"

using namespace fdip;

TEST(CodeImage, GeometryMatchesProgram)
{
    auto prog = testutil::makeCallPattern();
    CodeImage img(*prog);
    EXPECT_EQ(img.base(), prog->base);
    EXPECT_EQ(img.end(), prog->codeEnd());
    EXPECT_EQ(img.numInsts(), prog->numInsts());
}

TEST(CodeImage, TerminatorsPlacedAtBlockEnds)
{
    auto prog = testutil::makeCallPattern();
    CodeImage img(*prog);

    const auto &f0 = prog->funcs[0];
    const auto &f1 = prog->funcs[1];

    // Call terminator of f0/bb0 targets f1's entry.
    const StaticInst &call = img.at(f0.blocks[0].terminatorPc());
    EXPECT_EQ(call.cls, InstClass::Call);
    EXPECT_EQ(call.target, f1.entry);

    // Jump terminator of f0/bb1 targets f0/bb0.
    const StaticInst &jump = img.at(f0.blocks[1].terminatorPc());
    EXPECT_EQ(jump.cls, InstClass::Jump);
    EXPECT_EQ(jump.target, f0.blocks[0].start);

    // CondBr terminator of f1/bb0 targets f1/bb2.
    const StaticInst &cond = img.at(f1.blocks[0].terminatorPc());
    EXPECT_EQ(cond.cls, InstClass::CondBr);
    EXPECT_EQ(cond.target, f1.blocks[2].start);

    // Return has no static target.
    const StaticInst &ret = img.at(f1.blocks[2].terminatorPc());
    EXPECT_EQ(ret.cls, InstClass::Return);
    EXPECT_EQ(ret.target, invalidAddr);
}

TEST(CodeImage, NonTerminatorsArePlain)
{
    auto prog = testutil::makeTightLoop();
    CodeImage img(*prog);
    const auto &b0 = prog->funcs[0].blocks[0];
    for (unsigned i = 0; i < b0.numInsts; ++i) {
        EXPECT_EQ(img.at(b0.start + i * instBytes).cls, InstClass::NonCF);
    }
}

TEST(CodeImage, ContainsChecksAlignmentAndRange)
{
    auto prog = testutil::makeTightLoop();
    CodeImage img(*prog);
    EXPECT_TRUE(img.contains(img.base()));
    EXPECT_FALSE(img.contains(img.base() + 1)); // misaligned
    EXPECT_FALSE(img.contains(img.end()));
    EXPECT_FALSE(img.contains(img.base() - instBytes));
}

TEST(CodeImage, AtOrPlainOutsideImage)
{
    auto prog = testutil::makeTightLoop();
    CodeImage img(*prog);
    const StaticInst &out = img.atOrPlain(img.end() + 0x1000);
    EXPECT_EQ(out.cls, InstClass::NonCF);
    EXPECT_EQ(out.target, invalidAddr);
}

TEST(CodeImageDeath, AtOutsidePanics)
{
    auto prog = testutil::makeTightLoop();
    CodeImage img(*prog);
    EXPECT_DEATH(img.at(img.end()), "outside");
}

TEST(CodeImage, ClassCountsMatchProgramStructure)
{
    auto prog = testutil::makeCallPattern();
    CodeImage img(*prog);
    EXPECT_EQ(img.countClass(InstClass::Call), 1u);
    EXPECT_EQ(img.countClass(InstClass::Jump), 1u);
    EXPECT_EQ(img.countClass(InstClass::CondBr), 1u);
    EXPECT_EQ(img.countClass(InstClass::Return), 1u);
    EXPECT_EQ(img.countClass(InstClass::NonCF),
              prog->numInsts() - 4);
}

TEST(CodeImage, SynthesizedProgramFullyMapped)
{
    auto prog = buildProgram(findProfile("li"));
    CodeImage img(*prog);
    // Every terminator of every block must appear in the image with
    // the right class.
    for (const auto &fn : prog->funcs) {
        for (const auto &bb : fn.blocks) {
            if (bb.term == InstClass::NonCF)
                continue;
            EXPECT_EQ(img.at(bb.terminatorPc()).cls, bb.term);
        }
    }
}
