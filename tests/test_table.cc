/** Unit tests for ASCII table rendering. */

#include <gtest/gtest.h>

#include "common/table.hh"

using namespace fdip;

TEST(AsciiTable, RendersHeadersAndRows)
{
    AsciiTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(AsciiTable, ColumnsPadToWidestCell)
{
    AsciiTable t({"h"});
    t.addRow({"wide-cell-content"});
    std::string out = t.render();
    // Every line should have the same length.
    std::size_t first_len = out.find('\n');
    std::size_t pos = 0;
    while (pos < out.size()) {
        std::size_t next = out.find('\n', pos);
        if (next == std::string::npos)
            break;
        EXPECT_EQ(next - pos, first_len);
        pos = next + 1;
    }
}

TEST(AsciiTable, NumFormatting)
{
    EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(AsciiTable::num(3.0, 0), "3");
    EXPECT_EQ(AsciiTable::pct(0.1234, 1), "12.3%");
    EXPECT_EQ(AsciiTable::pct(1.0, 0), "100%");
    EXPECT_EQ(AsciiTable::integer(42), "42");
}

TEST(AsciiTable, EmptyTableRendersHeaderOnly)
{
    AsciiTable t({"a", "b"});
    std::string out = t.render();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_EQ(t.numRows(), 0u);
}

TEST(AsciiTableDeath, RowArityMismatch)
{
    AsciiTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

TEST(AsciiTableDeath, NoColumns)
{
    EXPECT_DEATH({ AsciiTable t({}); }, "column");
}
