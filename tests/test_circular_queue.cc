/** Unit tests for the fixed-capacity ring buffer. */

#include <gtest/gtest.h>

#include "common/circular_queue.hh"

using namespace fdip;

TEST(CircularQueue, StartsEmpty)
{
    CircularQueue<int> q(4);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.full());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.capacity(), 4u);
    EXPECT_EQ(q.freeSlots(), 4u);
}

TEST(CircularQueue, FifoOrder)
{
    CircularQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.front(), 1);
    EXPECT_EQ(q.back(), 3);
    q.pop();
    EXPECT_EQ(q.front(), 2);
    q.pop();
    EXPECT_EQ(q.front(), 3);
}

TEST(CircularQueue, RandomAccessFromHead)
{
    CircularQueue<int> q(8);
    for (int i = 0; i < 5; ++i)
        q.push(i * 10);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(q.at(i), i * 10);
}

TEST(CircularQueue, WrapsAround)
{
    CircularQueue<int> q(3);
    q.push(1);
    q.push(2);
    q.pop();
    q.push(3);
    q.push(4); // wraps
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.at(0), 2);
    EXPECT_EQ(q.at(1), 3);
    EXPECT_EQ(q.at(2), 4);
}

TEST(CircularQueue, TruncateDropsYoungest)
{
    CircularQueue<int> q(8);
    for (int i = 0; i < 6; ++i)
        q.push(i);
    q.truncate(2);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.at(0), 0);
    EXPECT_EQ(q.at(1), 1);
}

TEST(CircularQueue, TruncateToZeroEqualsClear)
{
    CircularQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.truncate(0);
    EXPECT_TRUE(q.empty());
    q.push(9);
    EXPECT_EQ(q.front(), 9);
}

TEST(CircularQueue, ClearResets)
{
    CircularQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.clear();
    EXPECT_TRUE(q.empty());
    q.push(7);
    EXPECT_EQ(q.front(), 7);
    EXPECT_EQ(q.back(), 7);
}

TEST(CircularQueue, StressWrapManyTimes)
{
    CircularQueue<int> q(5);
    int next_in = 0, next_out = 0;
    for (int round = 0; round < 1000; ++round) {
        while (!q.full())
            q.push(next_in++);
        while (!q.empty()) {
            EXPECT_EQ(q.front(), next_out++);
            q.pop();
        }
    }
    EXPECT_EQ(next_in, next_out);
}

TEST(CircularQueueDeath, Overflow)
{
    CircularQueue<int> q(1);
    q.push(1);
    EXPECT_DEATH(q.push(2), "full");
}

TEST(CircularQueueDeath, UnderflowAndRange)
{
    CircularQueue<int> q(2);
    EXPECT_DEATH(q.pop(), "empty");
    EXPECT_DEATH(q.front(), "empty");
    q.push(1);
    EXPECT_DEATH(q.at(1), "at");
    EXPECT_DEATH(q.truncate(2), "truncate");
}

TEST(CircularQueueDeath, ZeroCapacity)
{
    EXPECT_DEATH({ CircularQueue<int> q(0); }, "capacity");
}
