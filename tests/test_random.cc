/** Unit + property tests for the deterministic RNG and distributions. */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"

using namespace fdip;

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

class RngBelowSweep : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RngBelowSweep, StaysInBound)
{
    std::uint64_t bound = GetParam();
    Rng rng(7);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(rng.below(bound), bound);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBelowSweep,
                         ::testing::Values(1ull, 2ull, 3ull, 10ull,
                                           1000ull, 1ull << 33));

TEST(Rng, BelowCoversDomain)
{
    Rng rng(9);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 4000; ++i)
        ++seen[rng.below(8)];
    for (int v : seen)
        EXPECT_GT(v, 300); // each of 8 values ~500 expected
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-0.5));
        EXPECT_TRUE(rng.chance(1.5));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng rng(19);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

class GeometricSweep : public ::testing::TestWithParam<double>
{};

TEST_P(GeometricSweep, MeanApproximatelyRight)
{
    double mean = GetParam();
    Rng rng(23);
    double sum = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
        unsigned v = rng.geometric(mean);
        ASSERT_GE(v, 1u);
        sum += v;
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.08 + 0.1);
}

INSTANTIATE_TEST_SUITE_P(Means, GeometricSweep,
                         ::testing::Values(1.0, 2.0, 5.0, 9.0, 24.0));

TEST(Rng, GeometricDegenerateMean)
{
    Rng rng(29);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.geometric(0.5), 1u);
}

TEST(ZipfSampler, SkewOrdersPopularity)
{
    Rng rng(31);
    ZipfSampler zipf(16, 1.0);
    std::vector<int> counts(16, 0);
    for (int i = 0; i < 30000; ++i)
        ++counts[zipf.sample(rng)];
    // Rank 0 must dominate rank 8 and rank 15 heavily under s=1.
    EXPECT_GT(counts[0], counts[8] * 3);
    EXPECT_GT(counts[0], counts[15] * 5);
}

TEST(ZipfSampler, FlatWhenSkewZero)
{
    Rng rng(37);
    ZipfSampler zipf(8, 0.0);
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 32000; ++i)
        ++counts[zipf.sample(rng)];
    for (int c : counts)
        EXPECT_NEAR(c, 4000, 450);
}

TEST(ZipfSampler, SingleElement)
{
    Rng rng(41);
    ZipfSampler zipf(1, 1.2);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(WeightedChoice, RespectsWeights)
{
    Rng rng(43);
    WeightedChoice wc({1.0, 0.0, 3.0});
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[wc.sample(rng)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[2] / double(counts[0]), 3.0, 0.35);
}

TEST(WeightedChoice, SingleWeight)
{
    Rng rng(47);
    WeightedChoice wc({2.5});
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(wc.sample(rng), 0u);
}
