/** Tests for the victim cache and its hierarchy integration. */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"
#include "mem/victim_cache.hh"

using namespace fdip;

TEST(VictimCache, DisabledWhenZeroEntries)
{
    VictimCache vc(0);
    EXPECT_FALSE(vc.enabled());
    vc.insert(0x1000);
    EXPECT_EQ(vc.size(), 0u);
    EXPECT_FALSE(vc.probe(0x1000));
}

TEST(VictimCache, InsertProbeExtract)
{
    VictimCache vc(4);
    vc.insert(0x1000);
    EXPECT_TRUE(vc.probe(0x1000));
    EXPECT_TRUE(vc.extract(0x1000));
    EXPECT_FALSE(vc.probe(0x1000));
    EXPECT_FALSE(vc.extract(0x1000));
    EXPECT_EQ(vc.stats.counter("vc.hits"), 1u);
}

TEST(VictimCache, LruReplacement)
{
    VictimCache vc(2);
    vc.insert(0x1000);
    vc.insert(0x2000);
    vc.insert(0x1000); // refresh 0x1000 to MRU
    vc.insert(0x3000); // evicts 0x2000 (LRU)
    EXPECT_TRUE(vc.probe(0x1000));
    EXPECT_FALSE(vc.probe(0x2000));
    EXPECT_TRUE(vc.probe(0x3000));
    EXPECT_EQ(vc.stats.counter("vc.evictions"), 1u);
}

TEST(VictimCache, ClearEmpties)
{
    VictimCache vc(4);
    vc.insert(0x1000);
    vc.clear();
    EXPECT_EQ(vc.size(), 0u);
}

namespace
{

MemConfig
vcConfig()
{
    MemConfig c;
    c.l1i.sizeBytes = 256; // 8 blocks, 4 sets x 2 ways: easy conflicts
    c.l1i.assoc = 2;
    c.l1i.blockBytes = 32;
    c.l2.sizeBytes = 64 * 1024;
    c.l2.assoc = 4;
    c.l2.blockBytes = 32;
    c.victimCacheEntries = 4;
    return c;
}

} // namespace

TEST(VictimCacheIntegration, EvictionsLandInVictimCache)
{
    MemHierarchy mem(vcConfig());
    mem.tick(0);
    // Three conflicting blocks in the same set (stride 128).
    mem.l1i().insert(0x1000);
    mem.l1i().insert(0x1080);
    // Direct inserts bypass the hierarchy; use a demand fill so the
    // eviction routes to the victim cache.
    mem.reserveTagPort();
    FetchAccess a = mem.demandFetch(0x1100, 0);
    for (Cycle t = 1; t <= a.readyAt; ++t)
        mem.tick(t);
    EXPECT_TRUE(mem.l1i().probe(0x1100));
    // One of the conflicting blocks was evicted into the VC.
    EXPECT_EQ(mem.victimCache().size(), 1u);
}

TEST(VictimCacheIntegration, HitSwapsBackIntoL1)
{
    MemHierarchy mem(vcConfig());
    mem.tick(0);
    mem.l1i().insert(0x1000);
    mem.l1i().insert(0x1080);
    mem.reserveTagPort();
    FetchAccess a = mem.demandFetch(0x1100, 0); // evicts LRU (0x1000)
    for (Cycle t = 1; t <= a.readyAt; ++t)
        mem.tick(t);
    ASSERT_TRUE(mem.victimCache().probe(0x1000));

    // Re-demand the victim: short-latency hit, swapped into the L1.
    Cycle now = a.readyAt + 1;
    mem.tick(now);
    mem.reserveTagPort();
    FetchAccess b = mem.demandFetch(0x1000, now);
    EXPECT_TRUE(b.hitL1);
    EXPECT_EQ(b.readyAt, now + 1 + 1); // hit latency + VC penalty
    EXPECT_TRUE(mem.l1i().probe(0x1000));
    EXPECT_FALSE(mem.victimCache().probe(0x1000));
    EXPECT_GT(mem.stats.counter("mem.victim_hits"), 0u);
}

TEST(VictimCacheIntegration, DisabledByDefaultInBaseline)
{
    MemConfig c = vcConfig();
    c.victimCacheEntries = 0;
    MemHierarchy mem(c);
    mem.tick(0);
    mem.reserveTagPort();
    FetchAccess a = mem.demandFetch(0x1000, 0);
    for (Cycle t = 1; t <= a.readyAt; ++t)
        mem.tick(t);
    EXPECT_FALSE(mem.victimCache().enabled());
    EXPECT_EQ(mem.victimCache().size(), 0u);
}
