/**
 * Golden-file regression test: full SimResults serializations for a
 * small fixed (workload x scheme) grid, compared against the baseline
 * checked in at tests/golden/sim_results.golden. Any change that
 * shifts *simulated* numbers — cycle counts, stat counters, histogram
 * bins — fails this test loudly instead of drifting silently.
 *
 * If a simulator change is *supposed* to move the numbers, regenerate
 * the baseline and commit it together with the change:
 *
 *     FDIP_UPDATE_GOLDEN=1 ./build/test_golden_results
 *
 * The grid runs identically with and without idle-cycle skipping
 * (enforced by tests/test_tick_skip.cc), so the baseline is valid for
 * both paths.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "sim/presets.hh"
#include "sim/report.hh"
#include "sim/runner.hh"

using namespace fdip;

namespace
{

const char *kGoldenPath = FDIP_TESTS_DIR "/golden/sim_results.golden";

/** The fixed grid: small/large workloads x representative schemes,
 *  plus one translated-fetch point to pin the VM subsystem. */
std::string
renderGrid()
{
    std::string out;
    for (const char *wl : {"li", "gcc"}) {
        for (PrefetchScheme scheme : {PrefetchScheme::None,
                                      PrefetchScheme::FdpRemove,
                                      PrefetchScheme::StreamBuffer}) {
            SimConfig cfg = makeBaselineConfig(wl, scheme);
            cfg.warmupInsts = 10 * 1000;
            cfg.measureInsts = 40 * 1000;
            out += "==== " + std::string(wl) + " / " +
                schemeName(scheme) + " ====\n";
            out += serializeResults(simulate(cfg));
        }
    }
    SimConfig vm = makeBaselineConfig("gcc", PrefetchScheme::FdpRemove);
    vm.warmupInsts = 10 * 1000;
    vm.measureInsts = 40 * 1000;
    applyVmConfig(vm, TlbPrefetchPolicy::Wait, PageMapKind::Scrambled,
                  /*itlb_entries=*/16);
    out += "==== gcc / fdp-remove / vm-wait ====\n";
    out += serializeResults(simulate(vm));

    // One multi-core point pins the shared-L2 machine: the per-core
    // request tagging, the rotating bus arbiter, the per-core
    // measurement windows, and the per_core serialization block.
    SimConfig mc = makeBaselineConfig("gcc", PrefetchScheme::FdpRemove);
    mc.warmupInsts = 10 * 1000;
    mc.measureInsts = 40 * 1000;
    applyMultiCore(mc, 2);
    mc.mem.l2.sizeBytes = 256 * 1024;
    out += "==== gcc / fdp-remove / 2-core shared-l2 ====\n";
    out += serializeResults(simulate(mc));

    // Competitor-zoo schemes (appended: the sections above must stay
    // byte-identical across the regen that introduced these).
    for (PrefetchScheme scheme : {PrefetchScheme::Mana,
                                  PrefetchScheme::ShadowBtb}) {
        SimConfig cfg = makeBaselineConfig("gcc", scheme);
        cfg.warmupInsts = 10 * 1000;
        cfg.measureInsts = 40 * 1000;
        out += "==== gcc / " + std::string(schemeName(scheme)) +
            " ====\n";
        out += serializeResults(simulate(cfg));
    }
    return out;
}

} // namespace

TEST(GoldenResults, GridMatchesCheckedInBaseline)
{
    std::string got = renderGrid();

    const char *update = std::getenv("FDIP_UPDATE_GOLDEN");
    if (update != nullptr && update[0] != '\0' &&
        !(update[0] == '0' && update[1] == '\0')) {
        std::ofstream out(kGoldenPath, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
        out << got;
        GTEST_SKIP() << "golden baseline rewritten: " << kGoldenPath;
    }

    std::ifstream in(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden baseline " << kGoldenPath
        << " — generate it with FDIP_UPDATE_GOLDEN=1";
    std::stringstream buf;
    buf << in.rdbuf();
    std::string want = buf.str();

    if (got != want) {
        // Locate the first diverging line for a readable failure.
        std::istringstream ga(got), wa(want);
        std::string gl, wl, section;
        std::size_t line = 0;
        while (true) {
            bool g_ok = static_cast<bool>(std::getline(ga, gl));
            bool w_ok = static_cast<bool>(std::getline(wa, wl));
            ++line;
            if (!g_ok && !w_ok)
                break;
            if (g_ok && gl.rfind("====", 0) == 0)
                section = gl;
            if (!g_ok || !w_ok || gl != wl) {
                FAIL() << "simulated results drifted from the golden "
                       << "baseline at line " << line << " (" << section
                       << ")\n  golden: " << (w_ok ? wl : "<eof>")
                       << "\n  got:    " << (g_ok ? gl : "<eof>")
                       << "\nIf intentional, regenerate with "
                       << "FDIP_UPDATE_GOLDEN=1 and commit the new "
                       << "baseline.";
            }
        }
    }
    SUCCEED();
}
