/** Tests for the backend drain model. */

#include <gtest/gtest.h>

#include "core/backend.hh"

using namespace fdip;

namespace
{

DeliveredInst
inst(InstSeqNum seq, bool wrong = false)
{
    DeliveredInst d;
    d.seq = seq;
    d.wrongPath = wrong;
    return d;
}

} // namespace

TEST(Backend, RetiresUpToWidth)
{
    Backend be({.retireWidth = 2, .queueDepth = 8});
    for (InstSeqNum s = 0; s < 5; ++s)
        be.deliver(inst(s));
    be.tick(1);
    EXPECT_EQ(be.committed(), 2u);
    be.tick(2);
    EXPECT_EQ(be.committed(), 4u);
    be.tick(3);
    EXPECT_EQ(be.committed(), 5u);
}

TEST(Backend, FreeSlotsTrackOccupancy)
{
    Backend be({.retireWidth = 4, .queueDepth = 4});
    EXPECT_EQ(be.freeSlots(), 4u);
    be.deliver(inst(0));
    be.deliver(inst(1));
    EXPECT_EQ(be.freeSlots(), 2u);
    be.tick(1);
    EXPECT_EQ(be.freeSlots(), 4u);
}

TEST(Backend, WrongPathBlocksRetirementUntilSquash)
{
    Backend be({.retireWidth = 4, .queueDepth = 8});
    be.deliver(inst(0));
    be.deliver(inst(1));
    be.deliver(inst(0, /*wrong=*/true));
    be.deliver(inst(0, /*wrong=*/true));
    be.tick(1);
    EXPECT_EQ(be.committed(), 2u);
    be.tick(2);
    EXPECT_EQ(be.committed(), 2u); // stuck behind wrong-path head
    be.squashWrongPath();
    EXPECT_EQ(be.freeSlots(), 8u);
    EXPECT_EQ(be.stats.counter("backend.squashed"), 2u);
}

TEST(Backend, SquashKeepsCorrectPathPrefix)
{
    Backend be({.retireWidth = 1, .queueDepth = 8});
    be.deliver(inst(10));
    be.deliver(inst(11));
    be.deliver(inst(0, true));
    be.squashWrongPath();
    be.tick(1);
    be.tick(2);
    EXPECT_EQ(be.committed(), 2u);
}

TEST(Backend, StarvedCyclesCounted)
{
    Backend be({.retireWidth = 4, .queueDepth = 8});
    be.tick(1);
    be.tick(2);
    EXPECT_EQ(be.stats.counter("backend.starved_cycles"), 2u);
    be.deliver(inst(0));
    be.tick(3);
    EXPECT_EQ(be.stats.counter("backend.starved_cycles"), 2u);
    EXPECT_EQ(be.stats.counter("backend.retire_slots_lost"), 8u + 3u);
}

TEST(Backend, DeliveryStatsSplitByPath)
{
    Backend be({.retireWidth = 4, .queueDepth = 8});
    be.deliver(inst(0));
    be.deliver(inst(0, true));
    EXPECT_EQ(be.stats.counter("backend.delivered"), 2u);
    EXPECT_EQ(be.stats.counter("backend.delivered_wrong_path"), 1u);
}

TEST(BackendDeath, OverflowPanics)
{
    Backend be({.retireWidth = 1, .queueDepth = 1});
    be.deliver(inst(0));
    EXPECT_DEATH(be.deliver(inst(1)), "full");
}
