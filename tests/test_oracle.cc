/** Tests for the oracle prefetcher and the new ablation knobs. */

#include <gtest/gtest.h>

#include "prefetch/oracle.hh"
#include "sim/presets.hh"
#include "sim/runner.hh"
#include "test_helpers.hh"

using namespace fdip;

namespace
{

SimConfig
quickCfg(const std::string &wl, PrefetchScheme scheme)
{
    SimConfig cfg = makeBaselineConfig(wl, scheme);
    cfg.warmupInsts = 30 * 1000;
    cfg.measureInsts = 120 * 1000;
    return cfg;
}

} // namespace

TEST(Oracle, ComponentPrefetchesTrueFuture)
{
    auto prog = testutil::makeLongStraightLoop(256);
    WorkloadProfile prof;
    prof.name = "straight";
    SyntheticExecutor exec(*prog, prof);
    TraceWindow win(exec);
    BpuConfig bcfg;
    Bpu bpu(win, bcfg);

    MemConfig mcfg;
    mcfg.l1i.sizeBytes = 1024;
    mcfg.l1i.assoc = 2;
    mcfg.l2BusBytesPerCycle = 32;
    MemHierarchy mem(mcfg);

    OraclePrefetcher oracle(win, bpu, mem, {});
    // Tick the oracle; it must start pulling the true future into the
    // prefetch buffer without the BPU having predicted anything yet.
    for (Cycle t = 1; t < 600; ++t) {
        mem.tick(t);
        oracle.tick(t);
    }
    EXPECT_GT(oracle.stats.counter("oracle.issued"), 4u);
    // Prefetched blocks are ahead of the verified position and on the
    // correct path.
    Addr first_block = mem.l1i().blockAlign(win.at(0).pc);
    EXPECT_TRUE(mem.pfBuffer().probe(first_block) ||
                mem.l1i().probe(first_block) ||
                mem.mshrs().find(first_block) != nullptr);
}

TEST(Oracle, EndToEndBeatsOrMatchesFdp)
{
    SimResults base = simulate(quickCfg("gcc", PrefetchScheme::None));
    SimResults fdp = simulate(quickCfg("gcc", PrefetchScheme::FdpRemove));
    SimResults oracle = simulate(quickCfg("gcc", PrefetchScheme::Oracle));
    // The oracle never fetches wrong-path addresses, so its accuracy
    // must be near-perfect and its MPKI at least as good as FDP's.
    EXPECT_GT(oracle.prefetchAccuracy, 0.9);
    EXPECT_LT(oracle.mpki, base.mpki * 0.5);
    EXPECT_GT(speedupOver(base, oracle), 0.0);
    EXPECT_GE(speedupOver(base, oracle),
              speedupOver(base, fdp) - 0.02);
}

TEST(Ablations, EnqueueAggressiveRunsAndIssues)
{
    SimResults r = simulate(
        quickCfg("gcc", PrefetchScheme::FdpEnqueueAggressive));
    EXPECT_GT(r.stats.counter("fdp.issued"), 0u);
    EXPECT_GT(r.ipc, 0.1);
}

TEST(Ablations, AggressivePrefetchesMoreUnderPortScarcity)
{
    // With a single tag port, CPF probes can only happen in cycles the
    // fetch engine is stalled (the paper's "idle port" opportunity).
    // The conservative variant drops candidates it cannot probe; the
    // aggressive variant enqueues them unprobed, so it must issue at
    // least as many prefetches (at lower accuracy).
    auto one_port = [](SimConfig &cfg) { cfg.mem.l1TagPorts = 1; };
    SimConfig cons = quickCfg("gcc", PrefetchScheme::FdpEnqueue);
    one_port(cons);
    SimConfig aggr = quickCfg("gcc", PrefetchScheme::FdpEnqueueAggressive);
    one_port(aggr);
    SimResults rc = simulate(cons);
    SimResults ra = simulate(aggr);
    EXPECT_GE(ra.stats.counter("fdp.issued"),
              rc.stats.counter("fdp.issued"));
    EXPECT_GT(ra.stats.counter("fdp.enqueue_no_port"), 0u);
    EXPECT_GT(rc.stats.counter("fdp.enqueue_no_port"), 0u);
    // Both still prefetch (stall cycles provide probe ports).
    EXPECT_GT(rc.stats.counter("fdp.issued"), 0u);
    EXPECT_GE(rc.prefetchAccuracy, ra.prefetchAccuracy - 0.02);
}

TEST(Ablations, FillIntoL1PollutesCache)
{
    SimConfig buf = quickCfg("gcc", PrefetchScheme::FdpNone);
    SimConfig l1 = quickCfg("gcc", PrefetchScheme::FdpNone);
    l1.fdp.fillIntoL1 = true;
    SimResults rbuf = simulate(buf);
    SimResults rl1 = simulate(l1);
    // Direct-to-L1 fills must show up as L1 fills, not buffer fills.
    EXPECT_EQ(rl1.stats.counter("pfbuf.fills"), 0u);
    EXPECT_GT(rbuf.stats.counter("pfbuf.fills"), 0u);
    // The unfiltered wrong-path stream into the L1 costs evictions.
    EXPECT_GT(rl1.stats.counter("l1i.cache.fills"),
              rbuf.stats.counter("l1i.cache.fills"));
}

TEST(Ablations, PrefetchBusQueueingDelaysDemand)
{
    SimConfig idle = quickCfg("gcc", PrefetchScheme::FdpNone);
    SimConfig queue = quickCfg("gcc", PrefetchScheme::FdpNone);
    queue.mem.prefetchMayQueueOnBus = true;
    SimResults ridle = simulate(idle);
    SimResults rqueue = simulate(queue);
    // Queueing prefetches push bus utilization up and demand misses
    // now wait behind prefetch transfers.
    EXPECT_GT(rqueue.l2BusUtil, ridle.l2BusUtil);
    EXPECT_GT(rqueue.stats.counter("l2bus.bus.demand_queue_cycles"),
              ridle.stats.counter("l2bus.bus.demand_queue_cycles"));
}

TEST(Ablations, SchemeNamesCoverNewSchemes)
{
    EXPECT_STREQ(schemeName(PrefetchScheme::Oracle), "oracle");
    EXPECT_STREQ(schemeName(PrefetchScheme::FdpEnqueueAggressive),
                 "fdp-enqueue-aggr");
    EXPECT_TRUE(schemeIsFdp(PrefetchScheme::FdpEnqueueAggressive));
    EXPECT_FALSE(schemeIsFdp(PrefetchScheme::Oracle));
}
