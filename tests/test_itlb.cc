/** Tests for the virtual-memory subsystem: page table, ITLB, MMU. */

#include <set>

#include <gtest/gtest.h>

#include "vm/mmu.hh"

#include "test_helpers.hh"

using namespace fdip;

namespace
{

constexpr Addr kBase = 0x400000;
constexpr unsigned kPage = 4096;

VmConfig
smallVm(TlbPrefetchPolicy policy = TlbPrefetchPolicy::Drop,
        PageMapKind mapping = PageMapKind::Identity)
{
    VmConfig vm;
    vm.enable = true;
    vm.pageBytes = kPage;
    vm.itlbEntries = 8;
    vm.itlbAssoc = 2;
    vm.walkLatency = 30;
    vm.prefetchPolicy = policy;
    vm.mapping = mapping;
    return vm;
}

} // namespace

TEST(PageTable, IdentityMapsEverythingToItself)
{
    PageTable pt(kBase, kBase + 16 * kPage, kPage,
                 PageMapKind::Identity, 1);
    EXPECT_EQ(pt.numPages(), 16u);
    for (Addr a : {kBase, kBase + 123u * instBytes, kBase + 15 * kPage})
        EXPECT_EQ(pt.translate(a), a);
}

TEST(PageTable, ScrambledIsABijectionOverTheCodeFrames)
{
    PageTable pt(kBase, kBase + 64 * kPage, kPage,
                 PageMapKind::Scrambled, 7);
    std::set<Addr> seen;
    bool moved_any = false;
    for (std::size_t i = 0; i < pt.numPages(); ++i) {
        Addr v = kBase + Addr(i) * kPage;
        Addr p = pt.translate(v);
        // Frames stay inside the code's own page pool.
        EXPECT_GE(p, kBase);
        EXPECT_LT(p, kBase + 64 * kPage);
        EXPECT_EQ(p % kPage, 0u);
        seen.insert(p);
        moved_any |= p != v;
    }
    EXPECT_EQ(seen.size(), pt.numPages()); // no two pages collide
    EXPECT_TRUE(moved_any);
}

TEST(PageTable, ScrambledPreservesPageOffsets)
{
    PageTable pt(kBase, kBase + 8 * kPage, kPage,
                 PageMapKind::Scrambled, 3);
    Addr v = kBase + 2 * kPage + 0x64;
    EXPECT_EQ(pt.translate(v) % kPage, 0x64u);
}

TEST(PageTable, OutOfRangePagesIdentityMapped)
{
    PageTable pt(kBase, kBase + 4 * kPage, kPage,
                 PageMapKind::Scrambled, 9);
    Addr past = kBase + 10 * kPage + 0x40; // wrong-path runoff
    EXPECT_EQ(pt.translate(past), past);
    EXPECT_EQ(pt.translate(0x1000u), 0x1000u);
}

TEST(PageTable, DeterministicForAGivenSeed)
{
    PageTable a(kBase, kBase + 32 * kPage, kPage,
                PageMapKind::Scrambled, 42);
    PageTable b(kBase, kBase + 32 * kPage, kPage,
                PageMapKind::Scrambled, 42);
    for (std::size_t i = 0; i < a.numPages(); ++i) {
        Addr v = kBase + Addr(i) * kPage;
        EXPECT_EQ(a.translate(v), b.translate(v));
    }
}

TEST(Itlb, GeometryDerived)
{
    Itlb tlb({8, 2});
    EXPECT_EQ(tlb.numEntries(), 8u);
    EXPECT_EQ(tlb.numSets(), 4u);
    EXPECT_EQ(tlb.validEntries(), 0u);
}

TEST(Itlb, MissFillHit)
{
    Itlb tlb({8, 2});
    EXPECT_FALSE(tlb.access(5));
    tlb.insert(5);
    EXPECT_TRUE(tlb.access(5));
    EXPECT_EQ(tlb.stats.counter("itlb.misses"), 1u);
    EXPECT_EQ(tlb.stats.counter("itlb.hits"), 1u);
    EXPECT_EQ(tlb.stats.counter("itlb.fills"), 1u);
}

TEST(Itlb, LookupHasNoSideEffects)
{
    Itlb tlb({8, 2});
    tlb.insert(5);
    std::uint64_t accesses = tlb.stats.counter("itlb.accesses");
    EXPECT_TRUE(tlb.lookup(5));
    EXPECT_FALSE(tlb.lookup(6));
    EXPECT_EQ(tlb.stats.counter("itlb.accesses"), accesses);
}

TEST(Itlb, LruEvictionWithinSet)
{
    Itlb tlb({8, 2}); // 4 sets x 2 ways; same set stride = 4
    tlb.insert(0);
    tlb.insert(4);
    EXPECT_TRUE(tlb.access(0)); // 0 is MRU, 4 is LRU
    tlb.insert(8);              // evicts 4
    EXPECT_TRUE(tlb.lookup(0));
    EXPECT_FALSE(tlb.lookup(4));
    EXPECT_TRUE(tlb.lookup(8));
    EXPECT_EQ(tlb.stats.counter("itlb.evictions"), 1u);
}

TEST(Itlb, ReinsertRefreshesInsteadOfDuplicating)
{
    Itlb tlb({8, 2});
    tlb.insert(0);
    tlb.insert(0);
    EXPECT_EQ(tlb.validEntries(), 1u);
    EXPECT_EQ(tlb.stats.counter("itlb.fills"), 1u);
}

TEST(Itlb, Invalidate)
{
    Itlb tlb({8, 2});
    tlb.insert(3);
    EXPECT_TRUE(tlb.invalidate(3));
    EXPECT_FALSE(tlb.lookup(3));
    EXPECT_FALSE(tlb.invalidate(3));
}

TEST(ItlbDeath, BadGeometryRejected)
{
    EXPECT_DEATH({ Itlb t({0, 1}); }, "at least one entry");
    EXPECT_DEATH({ Itlb t({8, 3}); }, "divide evenly");
    EXPECT_DEATH({ Itlb t({24, 2}); }, "power of two");
}

TEST(Mmu, DisabledIsAZeroCostPassthrough)
{
    VmConfig vm; // enable = false
    Mmu mmu(vm, kBase, kBase + 4 * kPage);
    TlbAccess tr = mmu.demandTranslate(kBase + 0x10, 100);
    EXPECT_TRUE(tr.hit);
    EXPECT_EQ(tr.paddr, kBase + 0x10);
    EXPECT_EQ(tr.readyAt, 100u);
    PfTranslation pf = mmu.prefetchTranslate(kBase + 0x20, 100);
    EXPECT_EQ(pf.status, PfTranslation::Status::Ready);
    EXPECT_EQ(pf.paddr, kBase + 0x20);
}

TEST(Mmu, DemandMissChargesWalkLatencyThenHits)
{
    Mmu mmu(smallVm(), kBase, kBase + 4 * kPage);
    TlbAccess miss = mmu.demandTranslate(kBase, 100);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.readyAt, 130u); // 100 + 30-cycle walk
    EXPECT_EQ(mmu.walksInFlight(), 1u);

    mmu.tick(129);
    EXPECT_EQ(mmu.walksInFlight(), 1u); // not done yet
    mmu.tick(130);
    EXPECT_EQ(mmu.walksInFlight(), 0u);

    TlbAccess hit = mmu.demandTranslate(kBase, 130);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.readyAt, 130u);
    EXPECT_EQ(mmu.stats.counter("mmu.walks"), 1u);
    EXPECT_EQ(mmu.stats.counter("mmu.demand_walks"), 1u);
}

TEST(Mmu, ConcurrentWalksForOnePageMerge)
{
    Mmu mmu(smallVm(), kBase, kBase + 4 * kPage);
    TlbAccess a = mmu.demandTranslate(kBase, 100);
    TlbAccess b = mmu.demandTranslate(kBase + 0x40, 105); // same page
    EXPECT_EQ(a.readyAt, b.readyAt); // joined the in-flight walk
    EXPECT_EQ(mmu.stats.counter("mmu.walks"), 1u);
    EXPECT_EQ(mmu.stats.counter("mmu.walk_merges"), 1u);
}

TEST(Mmu, DropPolicyDiscardsWithoutWalking)
{
    Mmu mmu(smallVm(TlbPrefetchPolicy::Drop), kBase, kBase + 4 * kPage);
    PfTranslation pf = mmu.prefetchTranslate(kBase, 100);
    EXPECT_EQ(pf.status, PfTranslation::Status::Dropped);
    EXPECT_EQ(mmu.walksInFlight(), 0u);
    EXPECT_EQ(mmu.stats.counter("mmu.pf_dropped"), 1u);
}

TEST(Mmu, WaitPolicyWalksButDoesNotFillTheTlb)
{
    Mmu mmu(smallVm(TlbPrefetchPolicy::Wait), kBase, kBase + 4 * kPage);
    PfTranslation pf = mmu.prefetchTranslate(kBase, 100);
    EXPECT_EQ(pf.status, PfTranslation::Status::Walking);
    EXPECT_EQ(pf.readyAt, 130u);
    EXPECT_EQ(pf.paddr, kBase); // translation resolved for the issue

    mmu.tick(130);
    // No speculative TLB pollution: the demand still misses.
    EXPECT_FALSE(mmu.tlbHolds(kBase));
    TlbAccess demand = mmu.demandTranslate(kBase, 130);
    EXPECT_FALSE(demand.hit);
}

TEST(Mmu, FillPolicyPreWarmsTheTlbForTheDemand)
{
    Mmu mmu(smallVm(TlbPrefetchPolicy::Fill), kBase, kBase + 4 * kPage);
    PfTranslation pf = mmu.prefetchTranslate(kBase, 100);
    EXPECT_EQ(pf.status, PfTranslation::Status::Walking);
    EXPECT_EQ(mmu.stats.counter("mmu.pf_fills"), 1u);

    mmu.tick(130);
    EXPECT_TRUE(mmu.tlbHolds(kBase));
    TlbAccess demand = mmu.demandTranslate(kBase, 130);
    EXPECT_TRUE(demand.hit);
    EXPECT_EQ(demand.readyAt, 130u);
}

TEST(Mmu, DemandJoiningAWaitWalkUpgradesItToFill)
{
    Mmu mmu(smallVm(TlbPrefetchPolicy::Wait), kBase, kBase + 4 * kPage);
    mmu.prefetchTranslate(kBase, 100);          // wait-walk, no fill
    TlbAccess demand = mmu.demandTranslate(kBase, 110);
    EXPECT_FALSE(demand.hit);
    EXPECT_EQ(demand.readyAt, 130u); // merged into the earlier walk
    mmu.tick(130);
    EXPECT_TRUE(mmu.tlbHolds(kBase)); // the demand's fill won
}

TEST(Mmu, ScrambledTranslationsFlowThroughEveryPath)
{
    Mmu mmu(smallVm(TlbPrefetchPolicy::Fill, PageMapKind::Scrambled),
            kBase, kBase + 64 * kPage);
    Addr v = kBase + 17 * kPage + 0x80;
    Addr p = mmu.pageTable().translate(v);
    EXPECT_EQ(mmu.translateFunctional(v), p);
    TlbAccess demand = mmu.demandTranslate(v, 0);
    EXPECT_EQ(demand.paddr, p);
    PfTranslation pf = mmu.prefetchTranslate(v, 0);
    EXPECT_EQ(pf.paddr, p);
}

TEST(Mmu, BuildsFromAProgram)
{
    auto prog = testutil::makeLongStraightLoop(256);
    Mmu mmu(smallVm(), *prog);
    EXPECT_GE(mmu.pageTable().numPages(), 1u);
    EXPECT_EQ(mmu.translateFunctional(prog->base), prog->base);
}
