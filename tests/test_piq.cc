/** Tests for the prefetch instruction queue. */

#include <gtest/gtest.h>

#include "prefetch/piq.hh"

using namespace fdip;

TEST(Piq, PushFrontPop)
{
    Piq piq(4);
    piq.push(0x1000);
    piq.push(0x2000);
    EXPECT_EQ(piq.front().blockAddr, 0x1000u);
    piq.popFront();
    EXPECT_EQ(piq.front().blockAddr, 0x2000u);
}

TEST(Piq, EntriesStartUnprobed)
{
    Piq piq(4);
    piq.push(0x1000);
    EXPECT_FALSE(piq.front().probed);
    piq.front().probed = true;
    EXPECT_TRUE(piq.at(0).probed);
}

TEST(Piq, Contains)
{
    Piq piq(4);
    piq.push(0x1000);
    piq.push(0x2000);
    EXPECT_TRUE(piq.contains(0x1000));
    EXPECT_TRUE(piq.contains(0x2000));
    EXPECT_FALSE(piq.contains(0x3000));
}

TEST(Piq, RemoveAtCompactsInOrder)
{
    Piq piq(8);
    piq.push(0x1000);
    piq.push(0x2000);
    piq.push(0x3000);
    piq.removeAt(1);
    EXPECT_EQ(piq.size(), 2u);
    EXPECT_EQ(piq.at(0).blockAddr, 0x1000u);
    EXPECT_EQ(piq.at(1).blockAddr, 0x3000u);
    EXPECT_EQ(piq.stats.counter("piq.removed"), 1u);
}

TEST(Piq, RemoveHead)
{
    Piq piq(8);
    piq.push(0x1000);
    piq.push(0x2000);
    piq.removeAt(0);
    EXPECT_EQ(piq.front().blockAddr, 0x2000u);
}

TEST(Piq, FlushCounts)
{
    Piq piq(8);
    piq.push(0x1000);
    piq.push(0x2000);
    piq.flush();
    EXPECT_TRUE(piq.empty());
    EXPECT_EQ(piq.stats.counter("piq.flushed_entries"), 2u);
}

TEST(PiqDeath, OverflowAndRange)
{
    Piq piq(1);
    piq.push(0x1000);
    EXPECT_DEATH(piq.push(0x2000), "full");
    EXPECT_DEATH(piq.removeAt(1), "out of range");
}
