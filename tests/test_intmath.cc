/** Unit tests for common/intmath.hh. */

#include <gtest/gtest.h>

#include "common/intmath.hh"

using namespace fdip;

TEST(IntMath, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ULL << 40));
    EXPECT_FALSE(isPowerOf2((1ULL << 40) + 1));
}

TEST(IntMath, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1025), 10u);
    EXPECT_EQ(floorLog2(~0ULL), 63u);
}

TEST(IntMath, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(IntMath, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
    EXPECT_EQ(divCeil(32, 8), 4u);
}

TEST(IntMath, AlignDownUp)
{
    EXPECT_EQ(alignDown(0x1234, 32), 0x1220u);
    EXPECT_EQ(alignDown(0x1220, 32), 0x1220u);
    EXPECT_EQ(alignUp(0x1234, 32), 0x1240u);
    EXPECT_EQ(alignUp(0x1240, 32), 0x1240u);
    EXPECT_EQ(alignDown(0x1234, 1), 0x1234u);
}

TEST(IntMath, BitsForOffsetSmall)
{
    EXPECT_EQ(bitsForOffset(0), 1u);
    EXPECT_EQ(bitsForOffset(1), 1u);
    EXPECT_EQ(bitsForOffset(-1), 1u);
    EXPECT_EQ(bitsForOffset(2), 2u);
    EXPECT_EQ(bitsForOffset(-2), 2u);
    EXPECT_EQ(bitsForOffset(255), 8u);
    EXPECT_EQ(bitsForOffset(256), 9u);
    EXPECT_EQ(bitsForOffset(-256), 9u);
}

// Offsets at each power-of-two boundary need exactly n+1 bits.
class BitsForOffsetSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(BitsForOffsetSweep, BoundaryExact)
{
    unsigned n = GetParam();
    std::int64_t v = std::int64_t(1) << n;
    EXPECT_EQ(bitsForOffset(v - 1), n);      // 2^n - 1 fits in n bits
    EXPECT_EQ(bitsForOffset(v), n + 1);      // 2^n needs n+1
    EXPECT_EQ(bitsForOffset(-v), n + 1);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitsForOffsetSweep,
                         ::testing::Values(1u, 2u, 3u, 7u, 8u, 12u, 13u,
                                           22u, 23u, 31u, 45u));

TEST(IntMath, FoldXorIdentityWideWidth)
{
    EXPECT_EQ(foldXor(0x1234, 32), 0x1234u);
    EXPECT_EQ(foldXor(0xdeadbeef, 64), 0xdeadbeefu);
}

TEST(IntMath, FoldXorFolds)
{
    // 0xAB ^ 0xCD = 0x66
    EXPECT_EQ(foldXor(0xABCD, 8), 0xABu ^ 0xCDu);
    // Three chunks.
    EXPECT_EQ(foldXor(0x112233, 8), 0x11u ^ 0x22u ^ 0x33u);
    EXPECT_EQ(foldXor(0, 8), 0u);
}

TEST(IntMath, FoldXorStaysInWidth)
{
    for (std::uint64_t v : {0xffffffffffffffffULL, 0x123456789abcdefULL}) {
        for (unsigned w : {4u, 8u, 13u, 16u}) {
            EXPECT_LT(foldXor(v, w), std::uint64_t(1) << w)
                << "v=" << v << " w=" << w;
        }
    }
}

TEST(IntMath, FoldXorPreservesLowEntropy)
{
    // Distinct values differing only in high bits should usually fold
    // to distinct results: check a simple pair is preserved.
    EXPECT_NE(foldXor(0x0100, 8), foldXor(0x0200, 8));
}
