/** Tests for instruction-class helpers and FetchBlock geometry. */

#include <gtest/gtest.h>

#include "bpu/bpu.hh"
#include "trace/instr.hh"

using namespace fdip;

TEST(InstClass, ControlPredicate)
{
    EXPECT_FALSE(isControl(InstClass::NonCF));
    for (auto cls : {InstClass::CondBr, InstClass::Jump, InstClass::Call,
                     InstClass::Return, InstClass::IndJump,
                     InstClass::IndCall}) {
        EXPECT_TRUE(isControl(cls)) << instClassName(cls);
    }
}

TEST(InstClass, UnconditionalPredicate)
{
    EXPECT_FALSE(isUnconditional(InstClass::NonCF));
    EXPECT_FALSE(isUnconditional(InstClass::CondBr));
    for (auto cls : {InstClass::Jump, InstClass::Call, InstClass::Return,
                     InstClass::IndJump, InstClass::IndCall}) {
        EXPECT_TRUE(isUnconditional(cls)) << instClassName(cls);
    }
}

TEST(InstClass, CallPredicate)
{
    EXPECT_TRUE(isCall(InstClass::Call));
    EXPECT_TRUE(isCall(InstClass::IndCall));
    EXPECT_FALSE(isCall(InstClass::Return));
    EXPECT_FALSE(isCall(InstClass::Jump));
}

TEST(InstClass, DirectVsIndirectPartition)
{
    // Every control class is direct, indirect, or a return.
    for (auto cls : {InstClass::CondBr, InstClass::Jump, InstClass::Call,
                     InstClass::IndJump, InstClass::IndCall,
                     InstClass::Return}) {
        bool direct = isDirect(cls);
        bool indirect = isIndirect(cls);
        EXPECT_FALSE(direct && indirect) << instClassName(cls);
        if (cls != InstClass::Return)
            EXPECT_TRUE(direct || indirect) << instClassName(cls);
    }
}

TEST(InstClass, NamesAreUnique)
{
    std::set<std::string> names;
    for (auto cls : {InstClass::NonCF, InstClass::CondBr, InstClass::Jump,
                     InstClass::Call, InstClass::Return,
                     InstClass::IndJump, InstClass::IndCall}) {
        names.insert(instClassName(cls));
    }
    EXPECT_EQ(names.size(), 7u);
}

TEST(TraceInstr, NextPcFollowsTakenFlag)
{
    TraceInstr ti;
    ti.pc = 0x1000;
    ti.cls = InstClass::CondBr;
    ti.target = 0x2000;
    ti.taken = false;
    EXPECT_EQ(ti.nextPc(), 0x1004u);
    ti.taken = true;
    EXPECT_EQ(ti.nextPc(), 0x2000u);
}

TEST(FetchBlock, Geometry)
{
    FetchBlock blk;
    blk.startPc = 0x1000;
    blk.numInsts = 5;
    EXPECT_EQ(blk.pcOf(0), 0x1000u);
    EXPECT_EQ(blk.pcOf(4), 0x1010u);
    EXPECT_EQ(blk.endPc(), 0x1014u);
}
