/** Tests for tagged next-line prefetching. */

#include <gtest/gtest.h>

#include "prefetch/nlp.hh"

using namespace fdip;

namespace
{

struct Rig
{
    MemHierarchy mem;

    Rig() : mem(makeCfg()) {}

    static MemConfig
    makeCfg()
    {
        MemConfig c;
        c.l1i.sizeBytes = 4096;
        c.l1i.assoc = 2;
        c.l1i.blockBytes = 32;
        c.l2.sizeBytes = 64 * 1024;
        c.l2.assoc = 4;
        c.l2.blockBytes = 32;
        return c;
    }

    FetchAccess
    missAccess()
    {
        FetchAccess a;
        a.hitL1 = false;
        a.readyAt = 100;
        return a;
    }

    FetchAccess
    hitAccess()
    {
        FetchAccess a;
        a.hitL1 = true;
        a.readyAt = 1;
        return a;
    }

    FetchAccess
    pfbufHit()
    {
        FetchAccess a;
        a.hitPrefetchBuffer = true;
        a.readyAt = 1;
        return a;
    }
};

} // namespace

TEST(Nlp, TriggersOnTrueMiss)
{
    Rig rig;
    NlpPrefetcher nlp(rig.mem, {});
    rig.mem.tick(1);
    nlp.onDemandAccess(0x1000, rig.missAccess(), 1);
    nlp.tick(1);
    EXPECT_EQ(nlp.stats.counter("nlp.triggers"), 1u);
    EXPECT_EQ(nlp.stats.counter("nlp.issued"), 1u);
    EXPECT_NE(rig.mem.mshrs().find(0x1020), nullptr); // next line
}

TEST(Nlp, TriggersOnPrefetchBufferFirstUse)
{
    Rig rig;
    NlpPrefetcher nlp(rig.mem, {});
    rig.mem.tick(1);
    nlp.onDemandAccess(0x2000, rig.pfbufHit(), 1);
    nlp.tick(1);
    EXPECT_EQ(nlp.stats.counter("nlp.triggers"), 1u);
    EXPECT_NE(rig.mem.mshrs().find(0x2020), nullptr);
}

TEST(Nlp, NoTriggerOnPlainHit)
{
    Rig rig;
    NlpPrefetcher nlp(rig.mem, {});
    rig.mem.tick(1);
    nlp.onDemandAccess(0x1000, rig.hitAccess(), 1);
    nlp.tick(1);
    EXPECT_EQ(nlp.stats.counter("nlp.triggers"), 0u);
    EXPECT_EQ(rig.mem.mshrs().inUse(), 0u);
}

TEST(Nlp, SkipsNextLineAlreadyCached)
{
    Rig rig;
    NlpPrefetcher nlp(rig.mem, {});
    rig.mem.l1i().insert(0x1020);
    rig.mem.tick(1);
    nlp.onDemandAccess(0x1000, rig.missAccess(), 1);
    nlp.tick(1);
    EXPECT_EQ(nlp.stats.counter("nlp.already_cached"), 1u);
    EXPECT_EQ(nlp.stats.counter("nlp.issued"), 0u);
}

TEST(Nlp, DegreeRequestsMultipleLines)
{
    Rig rig;
    NlpPrefetcher nlp(rig.mem, {.degree = 3, .queueEntries = 8});
    rig.mem.tick(1);
    nlp.onDemandAccess(0x1000, rig.missAccess(), 1);
    // The shared bus serializes issues: give it time.
    for (Cycle t = 1; t <= 600; ++t) {
        rig.mem.tick(t);
        nlp.tick(t);
    }
    EXPECT_EQ(nlp.stats.counter("nlp.issued"), 3u);
    EXPECT_TRUE(rig.mem.pfBuffer().probe(0x1020));
    EXPECT_TRUE(rig.mem.pfBuffer().probe(0x1040));
    EXPECT_TRUE(rig.mem.pfBuffer().probe(0x1060));
}

TEST(Nlp, RetriesWhenBusBusy)
{
    Rig rig;
    NlpPrefetcher nlp(rig.mem, {});
    rig.mem.l2Bus().transfer(1, 800); // bus busy 100 cycles
    rig.mem.tick(1);
    nlp.onDemandAccess(0x1000, rig.missAccess(), 1);
    nlp.tick(1);
    EXPECT_EQ(nlp.stats.counter("nlp.issue_stalls"), 1u);
    EXPECT_EQ(nlp.stats.counter("nlp.issued"), 0u);
    // Much later, the pending candidate issues.
    rig.mem.tick(200);
    nlp.tick(200);
    EXPECT_EQ(nlp.stats.counter("nlp.issued"), 1u);
}

TEST(Nlp, PendingQueueDedupes)
{
    Rig rig;
    NlpPrefetcher nlp(rig.mem, {});
    rig.mem.l2Bus().transfer(1, 800);
    rig.mem.tick(1);
    nlp.onDemandAccess(0x1000, rig.missAccess(), 1);
    nlp.onDemandAccess(0x1000, rig.missAccess(), 1);
    rig.mem.tick(200);
    nlp.tick(200);
    EXPECT_EQ(rig.mem.stats.counter("mem.prefetches_issued"), 1u);
}
