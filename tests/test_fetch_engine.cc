/** Tests for the fetch engine (FTQ consumption + demand fetch). */

#include <gtest/gtest.h>

#include "core/backend.hh"
#include "frontend/fetch_engine.hh"
#include "frontend/ftq.hh"
#include "mem/hierarchy.hh"

using namespace fdip;

namespace
{

struct Rig
{
    MemConfig mcfg;
    MemHierarchy mem;
    Ftq ftq;
    Backend backend;
    FetchEngine fetch;
    Cycle now = 0;

    Rig()
        : mcfg(makeCfg()), mem(mcfg), ftq(8, 32),
          backend({.retireWidth = 8, .queueDepth = 64}),
          fetch(ftq, mem, backend, {.fetchWidth = 8,
                                    .decodeRedirectLatency = 3,
                                    .resolveRedirectLatency = 12})
    {}

    static MemConfig
    makeCfg()
    {
        MemConfig c;
        c.l1i.sizeBytes = 4096;
        c.l1i.assoc = 2;
        c.l1i.blockBytes = 32;
        c.l2.sizeBytes = 64 * 1024;
        c.l2.assoc = 4;
        c.l2.blockBytes = 32;
        return c;
    }

    void
    tick()
    {
        ++now;
        mem.tick(now);
        backend.tick(now);
        fetch.tick(now);
    }

    FetchBlock
    blockAt(Addr pc, unsigned n, InstSeqNum first_seq = 0)
    {
        FetchBlock b;
        b.startPc = pc;
        b.numInsts = n;
        b.validLen = n;
        b.firstSeq = first_seq;
        return b;
    }
};

} // namespace

TEST(FetchEngine, DeliversWholeBlockOnHit)
{
    Rig rig;
    rig.mem.l1i().insert(0x1000);
    rig.ftq.push(rig.blockAt(0x1000, 8));
    rig.tick();
    EXPECT_EQ(rig.backend.stats.counter("backend.delivered"), 8u);
    EXPECT_TRUE(rig.ftq.empty()); // fully fetched entries pop
}

TEST(FetchEngine, BlockSpanningTwoCacheLinesTakesTwoCycles)
{
    Rig rig;
    rig.mem.l1i().insert(0x1000);
    rig.mem.l1i().insert(0x1020);
    // 8 instructions starting 4 before the line boundary.
    rig.ftq.push(rig.blockAt(0x1010, 8));
    rig.tick();
    EXPECT_EQ(rig.backend.stats.counter("backend.delivered"), 4u);
    EXPECT_FALSE(rig.ftq.empty());
    rig.tick();
    EXPECT_EQ(rig.backend.stats.counter("backend.delivered"), 8u);
    EXPECT_TRUE(rig.ftq.empty());
}

TEST(FetchEngine, MissStallsUntilFill)
{
    Rig rig;
    rig.ftq.push(rig.blockAt(0x2000, 8));
    rig.tick(); // miss issued
    EXPECT_EQ(rig.fetch.stats.counter("fetch.demand_misses"), 1u);
    EXPECT_EQ(rig.backend.stats.counter("backend.delivered"), 0u);
    // Drain until well past the memory latency.
    for (int i = 0; i < 120; ++i)
        rig.tick();
    EXPECT_EQ(rig.backend.stats.counter("backend.delivered"), 8u);
    EXPECT_GT(rig.fetch.stats.counter("fetch.miss_stall_cycles"), 50u);
}

TEST(FetchEngine, EmptyFtqCountsStarvation)
{
    Rig rig;
    rig.tick();
    rig.tick();
    EXPECT_EQ(rig.fetch.stats.counter("fetch.ftq_empty_cycles"), 2u);
}

TEST(FetchEngine, BackendBackpressureStallsFetch)
{
    Rig rig;
    // Tiny backend queue that we keep full.
    Backend small({.retireWidth = 1, .queueDepth = 2});
    FetchEngine fe(rig.ftq, rig.mem, small,
                   {.fetchWidth = 8, .decodeRedirectLatency = 3,
                    .resolveRedirectLatency = 12});
    rig.mem.l1i().insert(0x1000);
    rig.ftq.push(rig.blockAt(0x1000, 8));
    rig.mem.tick(1);
    fe.tick(1); // delivers only 2 (queue space)
    EXPECT_EQ(small.stats.counter("backend.delivered"), 2u);
    rig.mem.tick(2);
    fe.tick(2); // queue still full: 0 delivered
    EXPECT_EQ(small.stats.counter("backend.delivered"), 2u);
    EXPECT_GT(fe.stats.counter("fetch.backend_full_cycles"), 0u);
}

TEST(FetchEngine, WrongPathInstructionsFlagged)
{
    Rig rig;
    rig.mem.l1i().insert(0x1000);
    FetchBlock blk = rig.blockAt(0x1000, 8);
    blk.validLen = 3; // diverges after instruction 2
    blk.diverges = true;
    blk.culpritIdx = 2;
    blk.decodeFixable = false;
    rig.ftq.push(blk);
    rig.tick();
    EXPECT_EQ(rig.fetch.stats.counter("fetch.wrong_path_delivered"), 5u);
    EXPECT_EQ(rig.backend.stats.counter("backend.delivered_wrong_path"),
              5u);
}

TEST(FetchEngine, RedirectScheduledWithResolveLatency)
{
    Rig rig;
    rig.mem.l1i().insert(0x1000);
    FetchBlock blk = rig.blockAt(0x1000, 8);
    blk.diverges = true;
    blk.culpritIdx = 4;
    blk.validLen = 5;
    blk.decodeFixable = false;
    rig.ftq.push(blk);
    rig.tick(); // delivery at cycle 1
    ASSERT_TRUE(rig.fetch.redirectPending());
    EXPECT_EQ(rig.fetch.redirectTime(), 1u + 12);
    EXPECT_EQ(rig.fetch.stats.counter("fetch.resolve_redirects"), 1u);
}

TEST(FetchEngine, DecodeFixableUsesShortLatency)
{
    Rig rig;
    rig.mem.l1i().insert(0x1000);
    FetchBlock blk = rig.blockAt(0x1000, 8);
    blk.diverges = true;
    blk.culpritIdx = 7;
    blk.validLen = 8;
    blk.decodeFixable = true;
    rig.ftq.push(blk);
    rig.tick();
    ASSERT_TRUE(rig.fetch.redirectPending());
    EXPECT_EQ(rig.fetch.redirectTime(), 1u + 3);
    EXPECT_EQ(rig.fetch.stats.counter("fetch.decode_redirects"), 1u);
}

TEST(FetchEngine, SquashClearsRedirectAndStall)
{
    Rig rig;
    rig.ftq.push(rig.blockAt(0x3000, 8)); // will miss
    rig.tick();
    rig.fetch.squash();
    EXPECT_FALSE(rig.fetch.redirectPending());
    // After the squash the engine fetches fresh work immediately.
    rig.ftq.flush();
    rig.mem.l1i().insert(0x1000);
    rig.ftq.push(rig.blockAt(0x1000, 8));
    rig.tick();
    EXPECT_EQ(rig.backend.stats.counter("backend.delivered"), 8u);
}

namespace
{

struct RecordingPrefetcher : Prefetcher
{
    std::vector<Addr> accesses;
    std::vector<bool> misses;
    std::string name() const override { return "recorder"; }
    void
    onDemandAccess(Addr block, const FetchAccess &a, Cycle) override
    {
        accesses.push_back(block);
        misses.push_back(isTrueMiss(a));
    }
};

} // namespace

TEST(FetchEngine, NotifiesPrefetchersOfDemandAccesses)
{
    Rig rig;
    RecordingPrefetcher rec;
    rig.fetch.addPrefetcher(&rec);
    rig.mem.l1i().insert(0x1000);
    rig.ftq.push(rig.blockAt(0x1000, 8));
    rig.ftq.push(rig.blockAt(0x2000, 8));
    rig.tick(); // hit on 0x1000
    rig.tick(); // miss on 0x2000
    ASSERT_GE(rec.accesses.size(), 2u);
    EXPECT_EQ(rec.accesses[0], 0x1000u);
    EXPECT_FALSE(rec.misses[0]);
    EXPECT_EQ(rec.accesses[1], 0x2000u);
    EXPECT_TRUE(rec.misses[1]);
}
