/**
 * Multi-core machine tests (docs/MULTICORE.md): N cores sharing one
 * L2/bus/DRAM behind per-core request tagging and round-robin bus
 * arbitration.
 *
 * The contracts pinned here:
 *  - numCores=1 is THE single-core machine: serializeResults() output
 *    is byte-identical to a config that never mentions numCores, and
 *    the perCore row vector stays empty.
 *  - Multi-core runs are deterministic: repeat runs and --jobs-style
 *    concurrent runs produce byte-identical serializations.
 *  - Every core-private stat sums across the perCore rows to the
 *    aggregate row's value; aggregate instructions are the per-core
 *    sum.
 *  - Shared-L2 contention is real: co-running cores see the shared
 *    bus busy on each other's transfers.
 */

#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "sim/presets.hh"
#include "sim/report.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"

using namespace fdip;

namespace
{

SimConfig
smallConfig(const std::string &wl, PrefetchScheme scheme)
{
    SimConfig cfg = makeBaselineConfig(wl, scheme);
    cfg.warmupInsts = 5 * 1000;
    cfg.measureInsts = 20 * 1000;
    return cfg;
}

/** Core-private stat keys in the aggregate row that must equal the
 *  sum over perCore rows (shared l2./l2bus./membus./dram.* keys and
 *  the machine-window sim.cycles are excluded by construction). */
bool
isCorePrivateKey(const std::string &key)
{
    for (const char *shared : {"l2.", "l2bus.", "membus.", "dram."}) {
        if (key.rfind(shared, 0) == 0)
            return false;
    }
    return key != "sim.cycles";
}

} // namespace

TEST(MultiCore, SingleCoreConfigIsByteIdenticalToClassicMachine)
{
    // applyMultiCore(cfg, 1) must be a no-op on the simulated numbers:
    // same fingerprint axis value as the default, identity request
    // tags, no share counters, no perCore rows.
    SimConfig classic = smallConfig("li", PrefetchScheme::FdpRemove);
    SimConfig one = smallConfig("li", PrefetchScheme::FdpRemove);
    applyMultiCore(one, 1);

    SimResults a = simulate(classic);
    SimResults b = simulate(one);
    EXPECT_TRUE(a.perCore.empty());
    EXPECT_TRUE(b.perCore.empty());
    EXPECT_EQ(serializeResults(a), serializeResults(b));
    // No bus-share counters may leak into single-core stat output.
    EXPECT_FALSE(a.stats.has("mem.l2bus_busy_cycles"));
    EXPECT_FALSE(a.stats.has("mem.membus_busy_cycles"));
}

TEST(MultiCore, TwoCoreRunIsDeterministicAcrossRepeatsAndThreads)
{
    SimConfig cfg = smallConfig("gcc", PrefetchScheme::FdpRemove);
    applyMultiCore(cfg, 2);

    std::string first = serializeResults(simulate(cfg));
    ASSERT_FALSE(first.empty());

    // Sequential repeat.
    EXPECT_EQ(first, serializeResults(simulate(cfg)));

    // Concurrent repeats, as a --jobs N Runner sweep would issue them.
    std::vector<std::future<std::string>> jobs;
    for (int i = 0; i < 4; ++i) {
        jobs.push_back(std::async(std::launch::async, [&cfg] {
            return serializeResults(simulate(cfg));
        }));
    }
    for (auto &j : jobs)
        EXPECT_EQ(first, j.get());
}

TEST(MultiCore, PerCoreRowsSumToAggregate)
{
    SimConfig cfg = smallConfig("groff", PrefetchScheme::FdpRemove);
    applyMultiCore(cfg, 2);
    SimResults r = simulate(cfg);

    ASSERT_EQ(r.perCore.size(), 2u);
    for (const SimResults &c : r.perCore)
        EXPECT_TRUE(c.perCore.empty()) << "per-core rows must not nest";

    // Aggregate instructions = sum of per-core instructions.
    std::uint64_t insts = 0;
    for (const SimResults &c : r.perCore)
        insts += c.instructions;
    EXPECT_EQ(r.instructions, insts);

    // Every core-private counter sums exactly (deltas are integral
    // counter values, so == is the right comparison).
    for (const auto &[key, val] : r.stats.entries()) {
        if (!isCorePrivateKey(key))
            continue;
        double sum = 0.0;
        for (const SimResults &c : r.perCore)
            sum += c.stats.value(key);
        EXPECT_EQ(val, sum) << "aggregate stat " << key
                            << " != sum of per-core rows";
    }
}

TEST(MultiCore, PerCoreRowsCarryWorkloadLabelsAndShareCounters)
{
    SimConfig cfg = smallConfig("li", PrefetchScheme::None);
    applyMultiCore(cfg, 2, {"li", "gcc"});
    SimResults r = simulate(cfg);

    ASSERT_EQ(r.perCore.size(), 2u);
    EXPECT_EQ(r.perCore[0].workload, "li");
    EXPECT_EQ(r.perCore[1].workload, "gcc");
    EXPECT_NE(serializeResults(r.perCore[0]),
              serializeResults(r.perCore[1]))
        << "heterogeneous cores produced identical rows";

    // On a multi-core machine each core attributes its own share of
    // the shared-bus occupancy, and the shares sum to the bus total.
    double share = 0.0;
    for (const SimResults &c : r.perCore) {
        EXPECT_TRUE(c.stats.has("mem.membus_busy_cycles"));
        share += c.stats.value("mem.membus_busy_cycles");
    }
    EXPECT_GT(share, 0.0);
    EXPECT_EQ(share, r.stats.value("mem.membus_busy_cycles"));
}

TEST(MultiCore, SharedL2ContentionMovesPerformance)
{
    // The same workload on the same machine must get slower (never
    // faster) when a second core contends for the shared L2/buses —
    // and with a deliberately tiny shared L2 the effect must be
    // visible in core 0's own IPC.
    SimConfig solo = smallConfig("gcc", PrefetchScheme::FdpRemove);
    solo.mem.l2.sizeBytes = 64 * 1024;
    SimResults alone = simulate(solo);

    SimConfig duo = solo;
    applyMultiCore(duo, 2);
    SimResults shared = simulate(duo);

    ASSERT_EQ(shared.perCore.size(), 2u);
    EXPECT_LE(shared.perCore[0].ipc, alone.ipc)
        << "adding a contending core made core 0 faster";
    EXPECT_GT(shared.perCore[0].cycles, 0u);
    EXPECT_GT(shared.perCore[1].cycles, 0u);
}

TEST(MultiCore, SerializationCoversPerCoreRows)
{
    SimConfig cfg = smallConfig("li", PrefetchScheme::None);
    applyMultiCore(cfg, 2);
    SimResults r = simulate(cfg);

    std::string s = serializeResults(r);
    EXPECT_NE(s.find("per_core 2"), std::string::npos) << s;
    EXPECT_NE(s.find("core 0"), std::string::npos);
    EXPECT_NE(s.find("core 1"), std::string::npos);
    EXPECT_NE(s.find("core_end"), std::string::npos);

    // Single-core serializations must not mention the block at all.
    SimResults solo = simulate(smallConfig("li", PrefetchScheme::None));
    EXPECT_EQ(serializeResults(solo).find("per_core"),
              std::string::npos);
}

TEST(MultiCore, ConfigValidationRejectsBadCoreCounts)
{
    setFatalMode(FatalMode::Throw);
    SimConfig cfg = smallConfig("li", PrefetchScheme::None);
    cfg.numCores = 0;
    EXPECT_THROW(cfg.validate(), SimError);

    cfg.numCores = 2;
    cfg.coreWorkloads = {"li"}; // one label for two cores
    EXPECT_THROW(cfg.validate(), SimError);

    cfg.coreWorkloads = {"li", "gcc"};
    EXPECT_NO_THROW(cfg.validate());
    setFatalMode(FatalMode::Abort);
}

TEST(MultiCore, FingerprintCoversCoreAxes)
{
    SimConfig a = smallConfig("li", PrefetchScheme::None);
    SimConfig b = a;
    applyMultiCore(b, 2);
    EXPECT_NE(a.fingerprint(), b.fingerprint());

    SimConfig c = a;
    applyMultiCore(c, 2, {"li", "gcc"});
    EXPECT_NE(b.fingerprint(), c.fingerprint());
}

TEST(MultiCore, AccessorsRouteThroughCores)
{
    SimConfig cfg = smallConfig("li", PrefetchScheme::FdpRemove);
    applyMultiCore(cfg, 2);
    Simulator sim(cfg);

    ASSERT_EQ(sim.numCores(), 2u);
    // Distinct per-core components, one shared memory system.
    EXPECT_NE(&sim.mem(0), &sim.mem(1));
    EXPECT_NE(&sim.ftq(0), &sim.ftq(1));
    EXPECT_EQ(&sim.mem(0).l2(), &sim.mem(1).l2());
    EXPECT_EQ(&sim.mem(0).l2(), &sim.sharedMem().l2);
    EXPECT_EQ(sim.mem(0).coreId(), 0u);
    EXPECT_EQ(sim.mem(1).coreId(), 1u);
    // The default-argument accessors are core 0.
    EXPECT_EQ(&sim.mem(), &sim.mem(0));
    EXPECT_EQ(&sim.bpu(), &sim.bpu(0));
}
