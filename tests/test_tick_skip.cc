/**
 * Differential parity harness for event-driven idle-cycle skipping.
 *
 * The skip fast path must be *bit-identical* to per-cycle ticking:
 * every SimResults field, every StatSet counter, and every occupancy
 * histogram bin. This harness runs a randomized config matrix twice —
 * skip-enabled vs SimConfig::forceTick — and compares the canonical
 * serializations. Any divergence is a quiescence-protocol bug in some
 * component's nextEventCycle()/chargeIdleCycles() pair.
 */

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/presets.hh"
#include "sim/report.hh"
#include "sim/runner.hh"
#include "trace/profile.hh"

using namespace fdip;

namespace
{

/** First differing line of two multi-line strings, for diagnostics. */
std::string
firstDiff(const std::string &a, const std::string &b)
{
    std::size_t line = 1, i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        std::size_t ae = a.find('\n', i);
        std::size_t be = b.find('\n', j);
        std::string la = a.substr(i, ae - i);
        std::string lb = b.substr(j, be - j);
        if (la != lb) {
            return "line " + std::to_string(line) + ":\n  skip:  " + la +
                "\n  tick:  " + lb;
        }
        if (ae == std::string::npos || be == std::string::npos)
            break;
        i = ae + 1;
        j = be + 1;
        ++line;
    }
    return a.size() == b.size() ? "(no line diff found)"
                                : "(outputs differ in length)";
}

/** True when FDIP_NO_SKIP already forces ticking process-wide (the
 *  CI re-run); skip-side assertions are vacuous in that case. */
bool
envNoSkip()
{
    const char *env = std::getenv("FDIP_NO_SKIP");
    return env != nullptr && env[0] != '\0' &&
        !(env[0] == '0' && env[1] == '\0');
}

template <typename T>
T
pick(std::mt19937 &rng, std::initializer_list<T> options)
{
    std::uniform_int_distribution<std::size_t> d(0, options.size() - 1);
    return options.begin()[d(rng)];
}

/**
 * Config @p i of the matrix: deterministic (seeded) random knobs with
 * round-robin scheme and VM-policy coverage, biased toward the
 * stall-heavy corners where skipping actually engages.
 */
SimConfig
matrixConfig(int i)
{
    // Derived from the scheme registry, NOT hardcoded: a newly added
    // scheme lands in the differential matrix automatically instead of
    // silently dodging it.
    const std::vector<PrefetchScheme> &schemes = allPrefetchSchemes();
    static const std::vector<TlbPrefetchPolicy> policies = {
        TlbPrefetchPolicy::Drop,
        TlbPrefetchPolicy::Wait,
        TlbPrefetchPolicy::Fill,
    };

    std::mt19937 rng(0xf0d1u + static_cast<unsigned>(i));
    const auto &workloads = allWorkloadNames();
    const std::string &wl = workloads[i % workloads.size()];
    PrefetchScheme scheme = schemes[i % schemes.size()];

    SimConfig cfg = makeBaselineConfig(wl, scheme);
    cfg.warmupInsts = 5 * 1000;
    cfg.measureInsts = 25 * 1000;
    cfg.ftqEntries = pick(rng, {std::size_t(4), std::size_t(16),
                                std::size_t(32)});
    cfg.fetch.fetchWidth = pick(rng, {4u, 8u});
    cfg.backend.queueDepth = pick(rng, {std::size_t(16),
                                        std::size_t(32)});
    cfg.mem.l1i.sizeBytes = pick(rng, {std::uint64_t(8) * 1024,
                                       std::uint64_t(16) * 1024});
    cfg.mem.dramLatency = pick(rng, {Cycle(40), Cycle(70), Cycle(200)});
    cfg.mem.mshrs = pick(rng, {2u, 4u, 16u});
    cfg.mem.victimCacheEntries = pick(rng, {0u, 8u});
    cfg.mem.prefetchMayQueueOnBus = (i % 5) == 0;
    cfg.maxOutstandingPrefetches = pick(rng, {2u, 8u});
    if (schemeIsFdp(scheme))
        cfg.combineNlp = (i % 4) == 0;

    // Multi-core axis: half the matrix scales the machine out to 2 or
    // 4 cores sharing the L2/buses/DRAM, so skip parity also covers
    // the aggregated quiescence protocol, the rotating bus-arbiter
    // order, and the per-core measurement windows (a quarter of these
    // run a heterogeneous two-workload mix). Shrink the shared L2 on
    // those points so the cores genuinely contend.
    static const unsigned kCoreCounts[] = {1u, 2u, 1u, 4u};
    unsigned cores = kCoreCounts[i % 4];
    if (cores > 1) {
        std::vector<std::string> mix;
        if (cores == 2 && i % 8 == 1) {
            const std::string &other =
                workloads[(i + 1) % workloads.size()];
            mix = {wl, other};
        }
        applyMultiCore(cfg, cores, mix);
        cfg.mem.l2.sizeBytes = 128 * 1024;
    }

    // Three quarters of the matrix runs translated fetch, cycling
    // through all three prefetch-translation policies, with walk
    // latencies long enough that Wait/Fill runs are page-walk
    // dominated. The two-level hierarchy axes are randomized on top:
    // L2-TLB size (0 = single-level), bounded walker pools (0 =
    // unlimited), and the decoupled FTQ TLB prefetcher.
    if (i % 4 != 3) {
        applyVmConfig(cfg, policies[i % policies.size()],
                      PageMapKind::Scrambled,
                      pick(rng, {16u, 64u}));
        cfg.vm.walkLatency = pick(rng, {Cycle(20), Cycle(60),
                                        Cycle(150)});
        cfg.vm.l2TlbEntries = pick(rng, {0u, 32u, 128u});
        cfg.vm.l2TlbAssoc = 4;
        cfg.vm.l2TlbLatency = pick(rng, {Cycle(4), Cycle(8)});
        cfg.vm.numWalkers = pick(rng, {0u, 1u, 2u});
        cfg.vm.tlbPrefetch = (i % 3) == 0;
    }
    return cfg;
}

} // namespace

TEST(TickSkip, DifferentialParityAcrossRandomizedMatrix)
{
    constexpr int kConfigs = 20;
    Cycle total_skipped = 0;
    for (int i = 0; i < kConfigs; ++i) {
        SimConfig fast = matrixConfig(i);
        fast.forceTick = false;
        SimConfig slow = matrixConfig(i);
        slow.forceTick = true;

        SimResults a = simulate(fast);
        SimResults b = simulate(slow);
        std::string sa = serializeResults(a);
        std::string sb = serializeResults(b);
        ASSERT_EQ(sa, sb)
            << "config " << i << " (" << fast.workload << ", "
            << schemeName(fast.scheme) << ", vm="
            << (fast.vm.enable ? tlbPolicyName(fast.vm.prefetchPolicy)
                               : "off")
            << ", cores=" << fast.numCores
            << "): " << firstDiff(sa, sb);

        EXPECT_EQ(b.skippedCycles, 0u) << "forceTick run skipped";
        total_skipped += a.skippedCycles;
    }
    // The matrix must actually exercise the fast path, or the parity
    // assertions above prove nothing.
    if (!envNoSkip()) {
        EXPECT_GT(total_skipped, 0u);
    }
}

TEST(TickSkip, MatrixCoversAllSchemesAndPolicies)
{
    std::vector<bool> scheme_seen(allPrefetchSchemes().size(), false);
    std::vector<bool> policy_seen(3, false);
    bool l2_seen = false, bounded_seen = false, tlbpf_seen = false;
    bool single_seen = false, dual_seen = false, quad_seen = false;
    bool hetero_seen = false;
    for (int i = 0; i < 20; ++i) {
        SimConfig cfg = matrixConfig(i);
        scheme_seen[static_cast<int>(cfg.scheme)] = true;
        single_seen |= cfg.numCores == 1;
        dual_seen |= cfg.numCores == 2;
        quad_seen |= cfg.numCores == 4;
        hetero_seen |= !cfg.coreWorkloads.empty();
        if (cfg.vm.enable) {
            policy_seen[static_cast<int>(cfg.vm.prefetchPolicy)] = true;
            l2_seen |= cfg.vm.l2TlbEntries > 0;
            bounded_seen |= cfg.vm.numWalkers > 0;
            tlbpf_seen |= cfg.vm.tlbPrefetch;
        }
    }
    EXPECT_TRUE(single_seen && dual_seen && quad_seen)
        << "the numCores axis must cover 1, 2, and 4 cores";
    EXPECT_TRUE(hetero_seen)
        << "no config ran a heterogeneous per-core workload mix";
    for (std::size_t s = 0; s < scheme_seen.size(); ++s) {
        EXPECT_TRUE(scheme_seen[s])
            << "scheme " << schemeName(allPrefetchSchemes()[s])
            << " never run — raise kConfigs if the registry outgrew "
            << "the matrix";
    }
    for (std::size_t p = 0; p < policy_seen.size(); ++p)
        EXPECT_TRUE(policy_seen[p]) << "policy " << p << " never run";
    EXPECT_TRUE(l2_seen) << "no config exercised the L2 TLB";
    EXPECT_TRUE(bounded_seen) << "no config bounded the walkers";
    EXPECT_TRUE(tlbpf_seen) << "no config ran the TLB prefetcher";
}

TEST(TickSkip, ForceTickDisablesSkipping)
{
    SimConfig cfg = makeBaselineConfig("gcc", PrefetchScheme::None);
    cfg.warmupInsts = 5 * 1000;
    cfg.measureInsts = 20 * 1000;
    cfg.forceTick = true;
    SimResults r = simulate(cfg);
    EXPECT_EQ(r.skippedCycles, 0u);
    // totalCycles covers the whole run, warmup included.
    EXPECT_GE(r.totalCycles, r.cycles);
}

TEST(TickSkip, StallHeavyConfigSkipsMostCycles)
{
    if (envNoSkip())
        GTEST_SKIP() << "FDIP_NO_SKIP forces per-cycle ticking";
    // ITLB Wait policy with a long walk and a tiny ITLB: fetch spends
    // most of its time stalled on page walks, which is exactly the
    // workload the fast path exists for.
    SimConfig cfg = makeBaselineConfig("gcc", PrefetchScheme::FdpRemove);
    cfg.warmupInsts = 5 * 1000;
    cfg.measureInsts = 20 * 1000;
    applyVmConfig(cfg, TlbPrefetchPolicy::Wait, PageMapKind::Scrambled,
                  /*itlb_entries=*/4);
    cfg.vm.walkLatency = 200;
    SimResults r = simulate(cfg);
    EXPECT_GT(r.skippedCycles, r.totalCycles / 2)
        << "skipped " << r.skippedCycles << " of " << r.totalCycles;
}

TEST(TickSkip, SkippingPreservesOccupancySampleCount)
{
    SimConfig cfg = makeBaselineConfig("groff", PrefetchScheme::None);
    cfg.warmupInsts = 5 * 1000;
    cfg.measureInsts = 20 * 1000;
    SimResults r = simulate(cfg);
    // One occupancy sample per measured cycle, skipped or ticked.
    EXPECT_EQ(r.ftqOccupancy.count(), r.cycles);
}
