/**
 * Robustness tests: failure isolation (SimError / FDIP_FATAL=throw),
 * bounded retries, watchdogs (maxCycles ceiling + wall deadline),
 * result-cache quarantine / GC / build-identity invalidation, the
 * deterministic FDIP_FAULT injection harness, and the shared envUint()
 * knob parser. The load-bearing property pinned throughout: a sweep
 * with injected faults still completes, and every non-faulted point
 * produces byte-identical results to a clean run.
 */

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/build_id.hh"
#include "common/env.hh"
#include "common/error.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "sim/result_cache.hh"
#include "sim/runner.hh"
#include "trace/profile.hh"
#include "trace/synth_builder.hh"
#include "trace/trace_file.hh"

using namespace fdip;

namespace
{

constexpr std::uint64_t kWarmup = 10 * 1000;
constexpr std::uint64_t kMeasure = 30 * 1000;

SimConfig
smallConfig(const std::string &workload, PrefetchScheme scheme)
{
    SimConfig cfg = makeBaselineConfig(workload, scheme);
    cfg.warmupInsts = kWarmup;
    cfg.measureInsts = kMeasure;
    return cfg;
}

std::string
freshCacheDir(const std::string &tag)
{
    std::string dir = ::testing::TempDir() + "fdip-robustness-" + tag;
    std::filesystem::remove_all(dir);
    return dir;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << path;
    out << content;
}

/**
 * Every test starts from a clean slate: no armed faults, abort-mode
 * fatals, and none of the robustness env knobs leaking in from the
 * invoking shell (or from a sibling test).
 */
class Robustness : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        FaultInjector::instance().reset();
        setFatalMode(FatalMode::Abort);
        for (const char *var :
             {"FDIP_FAULT", "FDIP_FATAL", "FDIP_RETRIES",
              "FDIP_RETRY_BASE_MS", "FDIP_SIM_TIMEOUT_S",
              "FDIP_CACHE_BUDGET_MB", "FDIP_CACHE_DIR", "FDIP_NO_CACHE",
              "FDIP_JOBS"}) {
            unsetenv(var);
        }
    }

    void
    TearDown() override
    {
        SetUp();
    }
};

} // namespace

// ---------------------------------------------------------------------
// envUint(): the shared numeric-knob parser.
// ---------------------------------------------------------------------

TEST_F(Robustness, EnvUintAcceptsValidAndDefaultsWhenUnset)
{
    unsetenv("FDIP_TEST_KNOB");
    EXPECT_EQ(envUint("FDIP_TEST_KNOB", 7), 7u);
    setenv("FDIP_TEST_KNOB", "42", 1);
    EXPECT_EQ(envUint("FDIP_TEST_KNOB", 7), 42u);
    setenv("FDIP_TEST_KNOB", "", 1);
    EXPECT_EQ(envUint("FDIP_TEST_KNOB", 7), 7u);
    unsetenv("FDIP_TEST_KNOB");
}

TEST_F(Robustness, EnvUintRejectsMalformedWithWarning)
{
    for (const char *bad : {"12abc", "abc", "-3", "1.5", " 4"}) {
        setenv("FDIP_TEST_KNOB", bad, 1);
        ::testing::internal::CaptureStderr();
        EXPECT_EQ(envUint("FDIP_TEST_KNOB", 9), 9u) << bad;
        std::string err = ::testing::internal::GetCapturedStderr();
        EXPECT_NE(err.find("FDIP_TEST_KNOB"), std::string::npos) << err;
        EXPECT_NE(err.find("using 9"), std::string::npos) << err;
    }
    unsetenv("FDIP_TEST_KNOB");
}

TEST_F(Robustness, EnvUintEnforcesMinimum)
{
    setenv("FDIP_TEST_KNOB", "0", 1);
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(envUint("FDIP_TEST_KNOB", 16, 1), 16u);
    std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("out-of-range"), std::string::npos) << err;
    // At the minimum is fine.
    setenv("FDIP_TEST_KNOB", "1", 1);
    EXPECT_EQ(envUint("FDIP_TEST_KNOB", 16, 1), 1u);
    unsetenv("FDIP_TEST_KNOB");
}

TEST_F(Robustness, DefaultJobsHonorsEnvAndSurvivesGarbage)
{
    setenv("FDIP_JOBS", "3", 1);
    EXPECT_EQ(Runner::defaultJobs(), 3u);
    setenv("FDIP_JOBS", "zero", 1);
    ::testing::internal::CaptureStderr();
    EXPECT_GE(Runner::defaultJobs(), 1u);
    std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("FDIP_JOBS"), std::string::npos) << err;
    unsetenv("FDIP_JOBS");
    EXPECT_GE(Runner::defaultJobs(), 1u);
}

// ---------------------------------------------------------------------
// Failure model: fatal() under FDIP_FATAL=throw, SimTimeout subtype.
// ---------------------------------------------------------------------

TEST_F(Robustness, FatalThrowsSimErrorInThrowMode)
{
    setFatalMode(FatalMode::Throw);
    bool caught = false;
    try {
        fatal("deliberate test failure (%d)", 42);
    } catch (const SimError &e) {
        caught = true;
        EXPECT_NE(std::string(e.what()).find("deliberate test failure"),
                  std::string::npos);
        // fatal() must never masquerade as a watchdog expiry.
        EXPECT_EQ(dynamic_cast<const SimTimeout *>(&e), nullptr);
    }
    EXPECT_TRUE(caught);
}

TEST_F(Robustness, SimTimeoutIsAThrowableSimErrorSubtype)
{
    setFatalMode(FatalMode::Throw);
    EXPECT_THROW(sim_timeout("deliberate watchdog expiry"), SimTimeout);
    // Catchable through the SimError base, so one isolation path
    // handles both kinds.
    try {
        sim_timeout("deliberate watchdog expiry");
        FAIL() << "sim_timeout returned";
    } catch (const SimError &e) {
        EXPECT_NE(dynamic_cast<const SimTimeout *>(&e), nullptr);
    }
}

// ---------------------------------------------------------------------
// FaultInjector grammar and scoping.
// ---------------------------------------------------------------------

TEST_F(Robustness, FaultInjectorParsesGrammarAndScopesByPoint)
{
    auto &faults = FaultInjector::instance();
    EXPECT_FALSE(faults.any());

    faults.configure("throw@2");
    EXPECT_TRUE(faults.any());
    // Outside a PointScope nothing fires.
    EXPECT_NO_THROW(faults.maybeThrow());
    {
        FaultInjector::PointScope scope(1, 1);
        EXPECT_NO_THROW(faults.maybeThrow());
    }
    {
        FaultInjector::PointScope scope(2, 1);
        EXPECT_THROW(faults.maybeThrow(), SimError);
    }
    // A persistent throw@ fires on every attempt.
    {
        FaultInjector::PointScope scope(2, 5);
        EXPECT_THROW(faults.maybeThrow(), SimError);
    }

    // throw@<idx>x<n>: only the first n attempts fail.
    faults.configure("throw@3x1");
    {
        FaultInjector::PointScope scope(3, 1);
        EXPECT_THROW(faults.maybeThrow(), SimError);
    }
    {
        FaultInjector::PointScope scope(3, 2);
        EXPECT_NO_THROW(faults.maybeThrow());
    }

    faults.reset();
    EXPECT_FALSE(faults.any());
}

TEST_F(Robustness, FaultInjectorWarnsOnUnknownToken)
{
    ::testing::internal::CaptureStderr();
    FaultInjector::instance().configure("explode@7");
    std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("explode@7"), std::string::npos) << err;
    FaultInjector::instance().reset();
}

// ---------------------------------------------------------------------
// Watchdogs.
// ---------------------------------------------------------------------

TEST_F(Robustness, MaxCyclesCeilingRaisesSimTimeout)
{
    setFatalMode(FatalMode::Throw);
    SimConfig cfg = smallConfig("gcc", PrefetchScheme::None);
    // Far too few cycles to retire the warmup: the ceiling must fire.
    cfg.maxCycles = 100;
    EXPECT_THROW(simulate(cfg), SimTimeout);
}

TEST_F(Robustness, MaxCyclesIsPartOfTheConfigFingerprint)
{
    SimConfig a = smallConfig("gcc", PrefetchScheme::None);
    SimConfig b = a;
    b.maxCycles = 1;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// ---------------------------------------------------------------------
// Runner: retries, isolation, sentinel rendering, health footer.
// ---------------------------------------------------------------------

TEST_F(Robustness, RetryRecoversFromTransientFault)
{
    FaultInjector::instance().configure("throw@0x1");
    Runner r(kWarmup, kMeasure);
    r.disableCache();
    r.setJobs(1);
    r.setRetryPolicy(2, 1);
    ::testing::internal::CaptureStderr(); // swallow the attempt warn
    const SimResults &res = r.run("gcc", PrefetchScheme::None);
    ::testing::internal::GetCapturedStderr();

    EXPECT_EQ(res.status, RunStatus::Ok);
    EXPECT_TRUE(r.failures().empty());
    EXPECT_EQ(r.retriedPoints(), 1u);

    // The recovered result is byte-identical to an undisturbed run.
    FaultInjector::instance().reset();
    Runner clean(kWarmup, kMeasure);
    clean.disableCache();
    EXPECT_EQ(serializeResults(clean.run("gcc", PrefetchScheme::None)),
              serializeResults(res));
}

TEST_F(Robustness, SweepSurvivesInjectedThrowAndHang)
{
    // The acceptance sweep: three points, point 0 persistently throws,
    // point 1 hangs until the wall watchdog fires, point 2 is healthy.
    FaultInjector::instance().configure("throw@0,hang@1");
    setenv("FDIP_SIM_TIMEOUT_S", "1", 1);

    Runner r(kWarmup, kMeasure);
    r.disableCache();
    r.setJobs(1);
    r.setRetryPolicy(1, 1); // exercise one retry per failing point
    r.enqueue("gcc", PrefetchScheme::None);
    r.enqueue("li", PrefetchScheme::None);
    r.enqueue("go", PrefetchScheme::None);
    ::testing::internal::CaptureStderr(); // attempt warns
    r.runPending();
    ::testing::internal::GetCapturedStderr();

    // The sweep completed and both failures were isolated + recorded.
    ASSERT_EQ(r.failures().size(), 2u);
    const Runner::FailedPoint &thrown = r.failures()[0];
    EXPECT_EQ(thrown.workload, "gcc");
    EXPECT_EQ(thrown.attempts, 2u);
    EXPECT_FALSE(thrown.timedOut);
    EXPECT_NE(thrown.error.find("injected fault"), std::string::npos);
    EXPECT_NE(thrown.fingerprint, 0u);
    const Runner::FailedPoint &hung = r.failures()[1];
    EXPECT_EQ(hung.workload, "li");
    EXPECT_TRUE(hung.timedOut);
    EXPECT_EQ(r.timedOutPoints(), 1u);

    // Sentinels render distinguishably.
    const SimResults &fail = r.run("gcc", PrefetchScheme::None);
    EXPECT_EQ(fail.status, RunStatus::Failed);
    EXPECT_TRUE(std::isnan(fail.ipc));
    EXPECT_EQ(AsciiTable::num(fail.ipc), "FAIL");
    const SimResults &tout = r.run("li", PrefetchScheme::None);
    EXPECT_EQ(tout.status, RunStatus::TimedOut);
    EXPECT_TRUE(isTimedOutSentinel(tout.ipc));
    EXPECT_EQ(AsciiTable::num(tout.ipc), "TIMEOUT");
    EXPECT_EQ(AsciiTable::pct(tout.ipc), "TIMEOUT");

    // Values *derived* from a sentinel (a bench's hand-computed
    // speedup ratio) stay NaN — NaN propagates through arithmetic
    // where -infinity would collapse finite/-inf into a silently
    // poisonous finite -1. (Whether the TIMEOUT tag survives the
    // arithmetic is hardware-dependent; NaN-ness is the guarantee.)
    EXPECT_TRUE(std::isnan(1.0 / tout.ipc - 1.0));
    EXPECT_EQ(AsciiTable::num(1.0 / fail.ipc - 1.0), "FAIL");

    // Sentinel-tainted speedups poison gmean to NaN, not a panic.
    EXPECT_TRUE(std::isnan(gmeanSpeedup({0.1, fail.ipc})));
    EXPECT_TRUE(std::isnan(gmeanSpeedup({0.1, tout.ipc})));

    // The footer reports the damage.
    std::string summary = r.sweepSummary();
    EXPECT_NE(summary.find("health:"), std::string::npos) << summary;
    EXPECT_NE(summary.find("2 failed"), std::string::npos) << summary;
    EXPECT_NE(summary.find("1 timed out"), std::string::npos) << summary;

    // And the non-faulted point is byte-identical to a clean run.
    FaultInjector::instance().reset();
    unsetenv("FDIP_SIM_TIMEOUT_S");
    Runner clean(kWarmup, kMeasure);
    clean.disableCache();
    EXPECT_EQ(serializeResults(clean.run("go", PrefetchScheme::None)),
              serializeResults(r.run("go", PrefetchScheme::None)));
}

TEST_F(Robustness, HealthFooterIsSilentWhenHealthy)
{
    Runner r(kWarmup, kMeasure);
    r.disableCache();
    r.setJobs(1);
    r.enqueue("li", PrefetchScheme::None);
    r.runPending();
    EXPECT_TRUE(r.failures().empty());
    EXPECT_EQ(r.sweepSummary().find("health:"), std::string::npos)
        << r.sweepSummary();
}

// ---------------------------------------------------------------------
// Result cache hardening.
// ---------------------------------------------------------------------

TEST_F(Robustness, TruncatedEntryQuarantinedAndHealed)
{
    std::string dir = freshCacheDir("truncated");
    ResultCache cache(dir);
    SimConfig cfg = smallConfig("gcc", PrefetchScheme::FdpRemove);
    SimResults r = simulate(cfg);
    std::uint64_t fp = cfg.fingerprint();
    cache.store(fp, kWarmup, kMeasure, r);

    std::string path = cache.entryPath(fp, kWarmup, kMeasure);
    std::string content = readFile(path);
    ASSERT_FALSE(content.empty());
    writeFile(path, content.substr(0, content.size() / 2));

    ::testing::internal::CaptureStderr();
    auto loaded = cache.load(fp, kWarmup, kMeasure);
    std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_FALSE(loaded.has_value());
    EXPECT_NE(err.find("rejecting entry"), std::string::npos) << err;
    EXPECT_NE(err.find("quarantined"), std::string::npos) << err;
    EXPECT_EQ(cache.quarantined(), 1u);
    // The torn file was moved aside, not deleted: evidence survives.
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_TRUE(std::filesystem::exists(path + ".bad"));

    // Re-storing heals the entry and it round-trips bit-exactly.
    cache.store(fp, kWarmup, kMeasure, r);
    auto healed = cache.load(fp, kWarmup, kMeasure);
    ASSERT_TRUE(healed.has_value());
    EXPECT_EQ(serializeResults(*healed), serializeResults(r));
}

TEST_F(Robustness, BitFlippedEntryQuarantined)
{
    std::string dir = freshCacheDir("bitflip");
    ResultCache cache(dir);
    SimConfig cfg = smallConfig("li", PrefetchScheme::None);
    SimResults r = simulate(cfg);
    std::uint64_t fp = cfg.fingerprint();
    cache.store(fp, kWarmup, kMeasure, r);

    // Flip one bit of one byte in the payload half of the entry. The
    // canonical-serialization hash makes any such flip detectable.
    std::string path = cache.entryPath(fp, kWarmup, kMeasure);
    std::string content = readFile(path);
    ASSERT_GT(content.size(), 16u);
    content[content.size() / 2] ^= 0x01;
    writeFile(path, content);

    ::testing::internal::CaptureStderr();
    auto loaded = cache.load(fp, kWarmup, kMeasure);
    std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_FALSE(loaded.has_value());
    EXPECT_NE(err.find("rejecting entry"), std::string::npos) << err;
    EXPECT_EQ(cache.quarantined(), 1u);
    EXPECT_TRUE(std::filesystem::exists(path + ".bad"));

    // A consumer Runner warns, re-simulates, and rewrites the entry.
    // (Quarantine moved the bad file aside, so this is a plain miss.)
    ::testing::internal::CaptureStderr();
    Runner consumer(kWarmup, kMeasure);
    consumer.setCacheDir(dir);
    consumer.setJobs(1);
    consumer.enqueue("li", PrefetchScheme::None);
    consumer.runPending();
    ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(consumer.cacheMisses(), 1u);
    auto healed = cache.load(fp, kWarmup, kMeasure);
    ASSERT_TRUE(healed.has_value());
    EXPECT_EQ(serializeResults(*healed), serializeResults(r));
}

TEST_F(Robustness, CacheBudgetEvictsOldestFirst)
{
    std::string dir = freshCacheDir("gc");
    std::filesystem::create_directories(dir);
    const std::string payload(1000, 'x');
    std::string a = dir + "/aaaa.result";
    std::string b = dir + "/bbbb.result";
    std::string c = dir + "/cccc.result";
    writeFile(a, payload);
    writeFile(b, payload);
    writeFile(c, payload);
    auto now = std::filesystem::file_time_type::clock::now();
    std::filesystem::last_write_time(a, now - std::chrono::hours(3));
    std::filesystem::last_write_time(b, now - std::chrono::hours(2));
    std::filesystem::last_write_time(c, now - std::chrono::hours(1));

    // 3000 bytes on disk, 2048 allowed: exactly the oldest must go.
    ::testing::internal::CaptureStderr();
    ResultCache cache(dir, 2048);
    ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(cache.evicted(), 1u);
    EXPECT_FALSE(std::filesystem::exists(a));
    EXPECT_TRUE(std::filesystem::exists(b));
    EXPECT_TRUE(std::filesystem::exists(c));

    // Budget 0 means unlimited: nothing is touched.
    ResultCache unlimited(dir, 0);
    EXPECT_EQ(unlimited.evicted(), 0u);
    EXPECT_TRUE(std::filesystem::exists(b));
    EXPECT_TRUE(std::filesystem::exists(c));
}

TEST_F(Robustness, CacheBudgetComesFromEnvInMegabytes)
{
    unsetenv("FDIP_CACHE_BUDGET_MB");
    EXPECT_EQ(ResultCache::budgetBytesFromEnv(), 0u);
    setenv("FDIP_CACHE_BUDGET_MB", "7", 1);
    EXPECT_EQ(ResultCache::budgetBytesFromEnv(), 7u * 1024 * 1024);
    setenv("FDIP_CACHE_BUDGET_MB", "lots", 1);
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(ResultCache::budgetBytesFromEnv(), 0u);
    std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("FDIP_CACHE_BUDGET_MB"), std::string::npos) << err;
    unsetenv("FDIP_CACHE_BUDGET_MB");
}

TEST_F(Robustness, BuildIdentityChangeInvalidatesEntries)
{
    std::string dir = freshCacheDir("buildid");
    ResultCache cache(dir);
    SimConfig cfg = smallConfig("gcc", PrefetchScheme::None);
    SimResults r = simulate(cfg);
    std::uint64_t fp = cfg.fingerprint();
    cache.store(fp, kWarmup, kMeasure, r);
    ASSERT_TRUE(cache.load(fp, kWarmup, kMeasure).has_value());

    // "Rebuild" with different sources: the same entry is now stale —
    // no kFormatVersion bump required.
    const std::uint64_t original = buildIdentity();
    cache.store(fp, kWarmup, kMeasure, r); // re-store (load leaves it)
    setBuildIdentity(original ^ 0x5eed5eed5eed5eedull);
    ::testing::internal::CaptureStderr();
    auto stale = cache.load(fp, kWarmup, kMeasure);
    std::string err = ::testing::internal::GetCapturedStderr();
    setBuildIdentity(original);
    EXPECT_FALSE(stale.has_value());
    EXPECT_NE(err.find("build identity mismatch"), std::string::npos)
        << err;
    EXPECT_GE(cache.quarantined(), 1u);
}

TEST_F(Robustness, CorruptCacheFaultTearsExactlyOneStore)
{
    FaultInjector::instance().configure("corrupt-cache@0");
    std::string dir = freshCacheDir("tearfault");
    ResultCache cache(dir);
    SimConfig cfg = smallConfig("li", PrefetchScheme::None);
    SimResults r = simulate(cfg);
    std::uint64_t fp = cfg.fingerprint();

    // Store #0 is torn (with a warning naming the injection)...
    ::testing::internal::CaptureStderr();
    cache.store(fp, kWarmup, kMeasure, r);
    std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("fault injection"), std::string::npos) << err;
    ::testing::internal::CaptureStderr();
    EXPECT_FALSE(cache.load(fp, kWarmup, kMeasure).has_value());
    ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(cache.quarantined(), 1u);

    // ...and store #1 is untouched: the entry round-trips again.
    cache.store(fp, kWarmup, kMeasure, r);
    auto healed = cache.load(fp, kWarmup, kMeasure);
    ASSERT_TRUE(healed.has_value());
    EXPECT_EQ(serializeResults(*healed), serializeResults(r));
    FaultInjector::instance().reset();
}

// ---------------------------------------------------------------------
// Trace-stream faults: a trace that dies mid-stream is one FAIL cell.
// ---------------------------------------------------------------------

namespace
{

/** Record a small native trace to replay under fault injection. */
std::string
captureRobustnessTrace(const std::string &tag)
{
    std::string path =
        ::testing::TempDir() + "fdip-robustness-" + tag + ".fdip.trace";
    WorkloadProfile profile = findProfile("gcc");
    auto prog = buildProgram(profile);
    SyntheticExecutor exec(*prog, profile);
    writeTraceFile(path, exec, kWarmup + kMeasure, prog->base,
                   prog->codeEnd());
    return path;
}

} // namespace

TEST_F(Robustness, TruncateTraceFaultGrammarAndScoping)
{
    auto &faults = FaultInjector::instance();
    faults.configure("truncate-trace@1x100");
    EXPECT_TRUE(faults.any());
    // Outside a PointScope nothing fires, whatever the position.
    EXPECT_NO_THROW(faults.maybeTruncateTrace(5000, "x.trace"));
    {
        FaultInjector::PointScope scope(0, 1);
        EXPECT_NO_THROW(faults.maybeTruncateTrace(5000, "x.trace"));
    }
    {
        FaultInjector::PointScope scope(1, 1);
        // Fires only once the reader is past the threshold: the trace
        // serves N records, then "dies".
        EXPECT_NO_THROW(faults.maybeTruncateTrace(99, "x.trace"));
        bool caught = false;
        try {
            faults.maybeTruncateTrace(100, "x.trace");
        } catch (const SimError &e) {
            caught = true;
            std::string what = e.what();
            EXPECT_NE(what.find("injected fault"), std::string::npos)
                << what;
            EXPECT_NE(what.find("x.trace"), std::string::npos) << what;
            EXPECT_NE(what.find("mid-stream"), std::string::npos) << what;
        }
        EXPECT_TRUE(caught);
    }
    faults.reset();
    EXPECT_FALSE(faults.any());
}

TEST_F(Robustness, SweepIsolatesTraceDyingMidStream)
{
    std::string path = captureRobustnessTrace("midstream");
    // Point 0 (the trace replay) loses its stream 2000 records in —
    // during warmup; point 1 is a healthy synthetic sibling.
    FaultInjector::instance().configure("truncate-trace@0x2000");

    Runner r(kWarmup, kMeasure);
    r.disableCache();
    r.setJobs(1);
    r.setRetryPolicy(0, 1);
    r.enqueue("trace:" + path, PrefetchScheme::None);
    r.enqueue("go", PrefetchScheme::None);
    ::testing::internal::CaptureStderr(); // attempt warns
    r.runPending();
    ::testing::internal::GetCapturedStderr();

    ASSERT_EQ(r.failures().size(), 1u);
    const Runner::FailedPoint &dead = r.failures()[0];
    EXPECT_EQ(dead.workload, "trace:" + path);
    EXPECT_NE(dead.error.find("injected fault"), std::string::npos)
        << dead.error;
    EXPECT_NE(dead.error.find("mid-stream"), std::string::npos)
        << dead.error;

    // The dead trace renders as a FAIL cell, not a crash or garbage.
    const SimResults &fail = r.run("trace:" + path, PrefetchScheme::None);
    EXPECT_EQ(fail.status, RunStatus::Failed);
    EXPECT_EQ(AsciiTable::num(fail.ipc), "FAIL");

    // The healthy sibling is byte-identical to an undisturbed run.
    FaultInjector::instance().reset();
    Runner clean(kWarmup, kMeasure);
    clean.disableCache();
    EXPECT_EQ(serializeResults(clean.run("go", PrefetchScheme::None)),
              serializeResults(r.run("go", PrefetchScheme::None)));
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// experimentMain: exit code distinguishes clean from damaged sweeps.
// ---------------------------------------------------------------------

namespace
{

ExperimentSpec
tinySpec()
{
    ExperimentSpec spec;
    spec.id = "T-ROBUST";
    spec.binary = "test_robustness";
    spec.title = "robustness exit-code probe";
    spec.shape = "n/a";
    spec.paperRef = "n/a";
    spec.warmup = kWarmup;
    spec.measure = kMeasure;
    ExperimentGrid grid;
    grid.workloads = {"gcc"};
    grid.schemes = {PrefetchScheme::None};
    grid.withBaseline = false;
    spec.grids = {grid};
    spec.render = [](Runner &) {};
    return spec;
}

} // namespace

TEST_F(Robustness, ExperimentExitCodeDistinguishesFailedSweeps)
{
    const char *argv[] = {"test_robustness"};
    auto args = const_cast<char **>(argv);

    ::testing::internal::CaptureStdout();
    int clean_rc = experimentMain(tinySpec(), 1, args);
    std::string clean_out = ::testing::internal::GetCapturedStdout();
    EXPECT_EQ(clean_rc, 0);
    EXPECT_EQ(clean_out.find("failed points:"), std::string::npos);

    setenv("FDIP_RETRIES", "0", 1);
    FaultInjector::instance().configure("throw@0");
    ::testing::internal::CaptureStdout();
    ::testing::internal::CaptureStderr();
    int faulted_rc = experimentMain(tinySpec(), 1, args);
    ::testing::internal::GetCapturedStderr();
    std::string faulted_out = ::testing::internal::GetCapturedStdout();
    FaultInjector::instance().reset();
    unsetenv("FDIP_RETRIES");

    EXPECT_EQ(faulted_rc, 3);
    EXPECT_NE(faulted_out.find("failed points:"), std::string::npos)
        << faulted_out;
    EXPECT_NE(faulted_out.find("injected fault"), std::string::npos)
        << faulted_out;
}

// The same exit-code contract covers a trace workload whose stream
// dies mid-run: the sweep completes, names the dead trace, exits 3.
TEST_F(Robustness, ExperimentExitCodeCoversTraceStreamDeath)
{
    std::string path = captureRobustnessTrace("exitcode");
    ExperimentSpec spec = tinySpec();
    spec.grids[0].workloads = {"trace:" + path};

    setenv("FDIP_RETRIES", "0", 1);
    FaultInjector::instance().configure("truncate-trace@0x1000");
    const char *argv[] = {"test_robustness"};
    auto args = const_cast<char **>(argv);
    ::testing::internal::CaptureStdout();
    ::testing::internal::CaptureStderr();
    int rc = experimentMain(spec, 1, args);
    ::testing::internal::GetCapturedStderr();
    std::string out = ::testing::internal::GetCapturedStdout();
    FaultInjector::instance().reset();
    unsetenv("FDIP_RETRIES");

    EXPECT_EQ(rc, 3);
    EXPECT_NE(out.find("failed points:"), std::string::npos) << out;
    EXPECT_NE(out.find("mid-stream"), std::string::npos) << out;
    std::remove(path.c_str());
}
