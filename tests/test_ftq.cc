/** Tests for the fetch target queue. */

#include <gtest/gtest.h>

#include "frontend/ftq.hh"

using namespace fdip;

namespace
{

FetchBlock
mkBlock(Addr start, unsigned n)
{
    FetchBlock b;
    b.startPc = start;
    b.numInsts = n;
    b.validLen = n;
    return b;
}

} // namespace

TEST(Ftq, PushPopFifo)
{
    Ftq ftq(4, 32);
    ftq.push(mkBlock(0x1000, 8));
    ftq.push(mkBlock(0x2000, 4));
    EXPECT_EQ(ftq.size(), 2u);
    EXPECT_EQ(ftq.head().blk.startPc, 0x1000u);
    ftq.popHead();
    EXPECT_EQ(ftq.head().blk.startPc, 0x2000u);
}

TEST(Ftq, EntryBookkeepingStartsAtZero)
{
    Ftq ftq(4, 32);
    ftq.push(mkBlock(0x1000, 8));
    EXPECT_EQ(ftq.head().fetchedInsts, 0u);
    EXPECT_EQ(ftq.head().nextScanBlock, 0u);
}

TEST(Ftq, CacheBlockEnumerationAligned)
{
    Ftq ftq(4, 32);
    ftq.push(mkBlock(0x1000, 8)); // exactly one 32B block
    EXPECT_EQ(ftq.numCacheBlocks(0), 1u);
    EXPECT_EQ(ftq.cacheBlockAddr(0, 0), 0x1000u);
}

TEST(Ftq, CacheBlockEnumerationStraddling)
{
    Ftq ftq(4, 32);
    // Starts 3 instructions before a block boundary, 8 instructions:
    // spans two cache blocks.
    ftq.push(mkBlock(0x1000 + 5 * instBytes, 8));
    EXPECT_EQ(ftq.numCacheBlocks(0), 2u);
    EXPECT_EQ(ftq.cacheBlockAddr(0, 0), 0x1000u);
    EXPECT_EQ(ftq.cacheBlockAddr(0, 1), 0x1020u);
}

TEST(Ftq, SingleInstructionBlock)
{
    Ftq ftq(4, 32);
    ftq.push(mkBlock(0x101c, 1));
    EXPECT_EQ(ftq.numCacheBlocks(0), 1u);
    EXPECT_EQ(ftq.cacheBlockAddr(0, 0), 0x1000u);
}

TEST(Ftq, FlushEmptiesAndCounts)
{
    Ftq ftq(4, 32);
    ftq.push(mkBlock(0x1000, 8));
    ftq.push(mkBlock(0x2000, 8));
    ftq.flush();
    EXPECT_TRUE(ftq.empty());
    EXPECT_EQ(ftq.stats.counter("ftq.flushes"), 1u);
    EXPECT_EQ(ftq.stats.counter("ftq.flushed_blocks"), 2u);
}

TEST(Ftq, OccupancySampling)
{
    Ftq ftq(8, 32);
    ftq.sampleOccupancy(); // 0
    ftq.push(mkBlock(0x1000, 8));
    ftq.sampleOccupancy(); // 1
    ftq.push(mkBlock(0x2000, 8));
    ftq.sampleOccupancy(); // 2
    ftq.sampleOccupancy(); // 2
    const Histogram &h = ftq.occupancyHist();
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 2u);
    ftq.resetOccupancy();
    EXPECT_EQ(ftq.occupancyHist().count(), 0u);
}

TEST(Ftq, FullBlocksPush)
{
    Ftq ftq(2, 32);
    ftq.push(mkBlock(0x1000, 8));
    ftq.push(mkBlock(0x2000, 8));
    EXPECT_TRUE(ftq.full());
    EXPECT_DEATH(ftq.push(mkBlock(0x3000, 8)), "full");
}

TEST(Ftq, StatsTrackInstructionVolume)
{
    Ftq ftq(4, 32);
    ftq.push(mkBlock(0x1000, 8));
    ftq.push(mkBlock(0x2000, 3));
    EXPECT_EQ(ftq.stats.counter("ftq.pushed_insts"), 11u);
    EXPECT_EQ(ftq.stats.counter("ftq.pushed_blocks"), 2u);
}
