/** Tests for the basic-block-oriented fetch target buffer. */

#include <gtest/gtest.h>

#include "bpu/ftb.hh"

using namespace fdip;

namespace
{

Ftb::Config
smallCfg()
{
    Ftb::Config c;
    c.sets = 16;
    c.ways = 2;
    return c;
}

} // namespace

TEST(Ftb, MissOnEmpty)
{
    Ftb ftb(smallCfg());
    EXPECT_FALSE(ftb.lookup(0x1000).has_value());
}

TEST(Ftb, InsertThenHit)
{
    Ftb ftb(smallCfg());
    ftb.insert(0x1000, 5, InstClass::CondBr, 0x2000);
    auto hit = ftb.lookup(0x1000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->numInsts, 5u);
    EXPECT_EQ(hit->termCls, InstClass::CondBr);
    EXPECT_EQ(hit->target, 0x2000u);
}

TEST(Ftb, UpdateShrinksBlock)
{
    // A newly-taken branch in the middle of a known block shortens it.
    Ftb ftb(smallCfg());
    ftb.insert(0x1000, 8, InstClass::Jump, 0x2000);
    ftb.insert(0x1000, 3, InstClass::CondBr, 0x3000);
    auto hit = ftb.lookup(0x1000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->numInsts, 3u);
    EXPECT_EQ(hit->target, 0x3000u);
    EXPECT_EQ(ftb.validEntries(), 1u);
}

TEST(Ftb, TooLongBlocksAreNotStored)
{
    Ftb::Config c = smallCfg();
    c.maxBlockInsts = 31;
    Ftb ftb(c);
    ftb.insert(0x1000, 32, InstClass::Jump, 0x2000);
    EXPECT_FALSE(ftb.lookup(0x1000).has_value());
    EXPECT_EQ(ftb.stats.counter("ftb.insert_truncated"), 1u);
}

TEST(Ftb, LruEviction)
{
    Ftb ftb(smallCfg());
    Addr stride = 16 * instBytes;
    ftb.insert(0x1000, 4, InstClass::Jump, 0x100);
    ftb.insert(0x1000 + stride, 4, InstClass::Jump, 0x100);
    EXPECT_TRUE(ftb.lookup(0x1000).has_value()); // touch
    ftb.insert(0x1000 + 2 * stride, 4, InstClass::Jump, 0x100);
    EXPECT_TRUE(ftb.lookup(0x1000).has_value());
    EXPECT_FALSE(ftb.lookup(0x1000 + stride).has_value());
}

TEST(Ftb, Invalidate)
{
    Ftb ftb(smallCfg());
    ftb.insert(0x1000, 4, InstClass::Jump, 0x100);
    ftb.invalidate(0x1000);
    EXPECT_FALSE(ftb.lookup(0x1000).has_value());
}

TEST(Ftb, EntryBitsMatchPaperTable)
{
    // The basic-block BTB storage table: with a 48-bit VA and 8-way
    // organization, entry size is 92 bits at 128 sets (1K entries)
    // and drops one bit per doubling of sets.
    for (auto [sets, bits] : std::vector<std::pair<unsigned, unsigned>>{
             {128, 92}, {256, 91}, {512, 90}, {1024, 89},
             {2048, 88}, {4096, 87}}) {
        Ftb::Config c;
        c.sets = sets;
        c.ways = 8;
        Ftb ftb(c);
        EXPECT_EQ(ftb.entryBits(), bits) << sets << " sets";
    }
}

TEST(Ftb, StorageTotalsMatchPaperTable)
{
    // 1K entries @ 92 bits = 11.5KB, 8K @ 89 = 89KB, 32K @ 87 = 348KB.
    for (auto [sets, kb] : std::vector<std::pair<unsigned, double>>{
             {128, 11.5}, {1024, 89.0}, {4096, 348.0}}) {
        Ftb::Config c;
        c.sets = sets;
        c.ways = 8;
        Ftb ftb(c);
        double total_kb =
            static_cast<double>(ftb.storageBits()) / 8.0 / 1024.0;
        EXPECT_NEAR(total_kb, kb, kb * 0.01) << sets << " sets";
    }
}

TEST(FtbDeath, ZeroSizeBlock)
{
    Ftb ftb(smallCfg());
    EXPECT_DEATH(ftb.insert(0x1000, 0, InstClass::Jump, 0x100),
                 "no instructions");
}
