/** Unit tests for the saturating counter. */

#include <gtest/gtest.h>

#include "common/sat_counter.hh"

using namespace fdip;

TEST(SatCounter, DefaultGeometry)
{
    SatCounter c;
    EXPECT_EQ(c.max(), 3);
    EXPECT_EQ(c.value(), 0);
    EXPECT_FALSE(c.taken());
}

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2, 0);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2, 3);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, TakenThreshold2Bit)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.taken()); // 0
    c.increment();
    EXPECT_FALSE(c.taken()); // 1
    c.increment();
    EXPECT_TRUE(c.taken());  // 2
    c.increment();
    EXPECT_TRUE(c.taken());  // 3
}

TEST(SatCounter, UpdateTrainsTowardOutcome)
{
    SatCounter c(2, 2);
    c.update(false);
    c.update(false);
    c.update(false);
    EXPECT_FALSE(c.taken());
    c.update(true);
    c.update(true);
    EXPECT_TRUE(c.taken());
}

class SatCounterWidths : public ::testing::TestWithParam<unsigned>
{};

TEST_P(SatCounterWidths, MaxMatchesWidth)
{
    unsigned bits = GetParam();
    SatCounter c(bits, 0);
    EXPECT_EQ(c.max(), (1u << bits) - 1);
    for (unsigned i = 0; i < (1u << bits) + 5; ++i)
        c.increment();
    EXPECT_EQ(c.value(), c.max());
    // Midpoint rule: values above max/2 predict taken.
    SatCounter mid(bits, static_cast<std::uint8_t>(c.max() / 2));
    EXPECT_FALSE(mid.taken());
    mid.increment();
    EXPECT_TRUE(mid.taken());
}

INSTANTIATE_TEST_SUITE_P(Widths, SatCounterWidths,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(SatCounter, SetWithinRange)
{
    SatCounter c(3, 0);
    c.set(7);
    EXPECT_EQ(c.value(), 7);
    EXPECT_TRUE(c.taken());
}

TEST(SatCounterDeath, InvalidWidth)
{
    EXPECT_DEATH({ SatCounter c(0); }, "width");
    EXPECT_DEATH({ SatCounter c(9); }, "width");
}

TEST(SatCounterDeath, InitialOutOfRange)
{
    EXPECT_DEATH({ SatCounter c(2, 4); }, "initial");
}
