/**
 * Contract tests for the quiescence protocol: every ticked component's
 * nextEventCycle(now)
 *   - returns kNever when the component is idle,
 *   - returns the pending ready/completion cycle when one is in
 *     flight,
 *   - never returns a cycle <= now.
 */

#include <gtest/gtest.h>

#include "core/backend.hh"
#include "frontend/fetch_engine.hh"
#include "frontend/ftq.hh"
#include "mem/hierarchy.hh"
#include "prefetch/fdp.hh"
#include "prefetch/nlp.hh"
#include "sim/presets.hh"
#include "sim/simulator.hh"
#include "vm/mmu.hh"
#include "vm/tlb_prefetcher.hh"

using namespace fdip;

namespace
{

MemConfig
smallMemCfg()
{
    MemConfig c;
    c.l1i.sizeBytes = 4096;
    c.l2.sizeBytes = 64 * 1024;
    return c;
}

VmConfig
smallVmCfg()
{
    VmConfig c;
    c.enable = true;
    c.itlbEntries = 4;
    c.itlbAssoc = 4;
    c.walkLatency = 25;
    return c;
}

} // namespace

TEST(NextEvent, MemHierarchyIdleIsNever)
{
    MemHierarchy mem(smallMemCfg());
    mem.tick(1);
    EXPECT_EQ(mem.nextEventCycle(1), kNever);
}

TEST(NextEvent, MemHierarchyReportsPendingFill)
{
    MemHierarchy mem(smallMemCfg());
    Cycle now = 1;
    mem.tick(now);
    ASSERT_TRUE(mem.reserveTagPort());
    FetchAccess acc = mem.demandFetch(0x1000, now);
    ASSERT_FALSE(acc.hitL1);
    ASSERT_NE(acc.readyAt, neverCycle);
    // A DRAM fill has two bus legs; the memory bus frees before the
    // fill lands, so the event is in (now, readyAt].
    EXPECT_GT(mem.nextEventCycle(now), now);
    EXPECT_LE(mem.nextEventCycle(now), acc.readyAt);

    // Completing the fill returns the hierarchy to quiescence.
    mem.tick(acc.readyAt);
    EXPECT_EQ(mem.nextEventCycle(acc.readyAt), kNever);
}

TEST(NextEvent, MemHierarchyL2HitFillIsExactReadyCycle)
{
    // Evict 0x1000 from the 2-way L1 set with two same-set fills, then
    // re-fetch it: an L2 hit whose only leg is the L1<->L2 bus, so the
    // MSHR ready time IS the next event.
    MemHierarchy mem(smallMemCfg());
    Cycle now = 1;
    std::uint64_t set_stride =
        smallMemCfg().l1i.sizeBytes / smallMemCfg().l1i.assoc;
    for (Addr a : {Addr(0x1000), Addr(0x1000) + set_stride,
                   Addr(0x1000) + 2 * set_stride}) {
        mem.tick(now);
        ASSERT_TRUE(mem.reserveTagPort());
        FetchAccess acc = mem.demandFetch(a, now);
        ASSERT_FALSE(acc.hitL1);
        now = acc.readyAt;
        mem.tick(now);
    }
    ASSERT_TRUE(mem.reserveTagPort());
    FetchAccess acc = mem.demandFetch(0x1000, now);
    ASSERT_FALSE(acc.hitL1);
    EXPECT_EQ(mem.nextEventCycle(now), acc.readyAt);
}

TEST(NextEvent, MemHierarchyNeverAtOrBeforeNow)
{
    MemHierarchy mem(smallMemCfg());
    Cycle now = 1;
    mem.tick(now);
    ASSERT_TRUE(mem.reserveTagPort());
    FetchAccess acc = mem.demandFetch(0x2000, now);
    // Even when probed *past* the fill's ready time without a tick,
    // the protocol clamps to the future.
    EXPECT_GT(mem.nextEventCycle(acc.readyAt + 10), acc.readyAt + 10);
}

TEST(NextEvent, MmuIdleAndPendingWalk)
{
    Mmu mmu(smallVmCfg(), /*code_base=*/0x1000, /*code_end=*/0x40000);
    EXPECT_EQ(mmu.nextEventCycle(5), kNever);

    TlbAccess tr = mmu.demandTranslate(0x1000, 5);
    ASSERT_FALSE(tr.hit);
    EXPECT_EQ(mmu.nextEventCycle(5), tr.readyAt);
    EXPECT_GT(mmu.nextEventCycle(5), 5u);

    mmu.tick(tr.readyAt);
    EXPECT_EQ(mmu.nextEventCycle(tr.readyAt), kNever);
}

TEST(NextEvent, MmuDisabledIsNever)
{
    VmConfig off;
    off.enable = false;
    Mmu mmu(off, 0x1000, 0x40000);
    EXPECT_EQ(mmu.nextEventCycle(0), kNever);
}

TEST(NextEvent, MmuQueuedWalkIsCoveredByTheActiveCompletion)
{
    // A queued walk has no known completion, so it must not need an
    // event of its own: the active walk's completion (at which the
    // queued walk starts) is the reported event, and after that tick
    // the now-active walk reports its own completion.
    VmConfig vcfg = smallVmCfg();
    vcfg.prefetchPolicy = TlbPrefetchPolicy::Wait;
    vcfg.numWalkers = 1;
    Mmu mmu(vcfg, /*code_base=*/0x1000, /*code_end=*/0x40000);

    PfTranslation active = mmu.prefetchTranslate(0x1000, 5);
    ASSERT_EQ(active.status, PfTranslation::Status::Walking);
    PfTranslation queued = mmu.prefetchTranslate(0x1000 + 4096, 6);
    ASSERT_EQ(queued.status, PfTranslation::Status::Walking);
    ASSERT_EQ(queued.readyAt, kNever);
    EXPECT_EQ(mmu.walksQueued(), 1u);

    // Only the active walk's completion is the next event.
    EXPECT_EQ(mmu.nextEventCycle(6), active.readyAt);

    // Ticking at that event starts the queued walk, whose completion
    // becomes the new next event.
    mmu.tick(active.readyAt);
    EXPECT_EQ(mmu.walksQueued(), 0u);
    EXPECT_EQ(mmu.nextEventCycle(active.readyAt),
              active.readyAt + vcfg.walkLatency);
    EXPECT_EQ(mmu.walkReadyCycle(queued.vpn, queued.walkId),
              active.readyAt + vcfg.walkLatency);

    mmu.tick(active.readyAt + vcfg.walkLatency);
    EXPECT_EQ(mmu.nextEventCycle(active.readyAt + vcfg.walkLatency),
              kNever);
}

TEST(NextEvent, MmuL2RefillReportsItsCompletion)
{
    VmConfig vcfg = smallVmCfg();
    vcfg.l2TlbEntries = 16;
    vcfg.l2TlbAssoc = 4;
    vcfg.l2TlbLatency = 6;
    Mmu mmu(vcfg, /*code_base=*/0x1000, /*code_end=*/0x40000);
    ASSERT_NE(mmu.l2Tlb(), nullptr);
    mmu.l2Tlb()->insert(mmu.pageTable().vpn(0x1000));

    TlbAccess tr = mmu.demandTranslate(0x1000, 9);
    ASSERT_FALSE(tr.hit);
    ASSERT_EQ(tr.readyAt, 15u); // 9 + 6-cycle refill
    EXPECT_EQ(mmu.nextEventCycle(9), tr.readyAt);
    mmu.tick(tr.readyAt);
    EXPECT_EQ(mmu.nextEventCycle(tr.readyAt), kNever);
}

TEST(NextEvent, BackendStates)
{
    Backend be({.retireWidth = 4, .queueDepth = 8});
    // Drained: only a delivery can wake it.
    EXPECT_EQ(be.nextEventCycle(3), kNever);

    // Correct-path head: retires next cycle.
    be.deliver({.seq = 1, .wrongPath = false});
    EXPECT_EQ(be.nextEventCycle(3), 4u);

    // Wrong-path head: blocked until a redirect squashes it.
    Backend be2({.retireWidth = 4, .queueDepth = 8});
    be2.deliver({.seq = 0, .wrongPath = true});
    EXPECT_EQ(be2.nextEventCycle(3), kNever);
}

TEST(NextEvent, BackendIdleChargeMatchesTicking)
{
    Backend ticked({.retireWidth = 4, .queueDepth = 8});
    Backend charged({.retireWidth = 4, .queueDepth = 8});
    for (Cycle c = 1; c <= 7; ++c)
        ticked.tick(c);
    charged.chargeIdleCycles(0, 7);
    EXPECT_EQ(ticked.stats.dump(), charged.stats.dump());
}

TEST(NextEvent, FtqAndBpuArePassive)
{
    Ftq ftq(8, 32);
    EXPECT_EQ(ftq.nextEventCycle(0), kNever);
    EXPECT_EQ(ftq.nextEventCycle(12345), kNever);

    SimConfig cfg = makeBaselineConfig("li", PrefetchScheme::None);
    Simulator sim(cfg);
    EXPECT_EQ(sim.bpu().nextEventCycle(sim.now()), kNever);
}

TEST(NextEvent, FetchEngineBlockedVsActing)
{
    MemConfig mcfg = smallMemCfg();
    MemHierarchy mem(mcfg);
    Ftq ftq(8, 32);
    Backend backend({.retireWidth = 4, .queueDepth = 8});
    FetchEngine fetch(ftq, mem, backend, {});

    // Empty FTQ: fetch can only be woken by a BPU push.
    EXPECT_EQ(fetch.nextEventCycle(1), kNever);

    FetchBlock b;
    b.startPc = 0x1000;
    b.numInsts = 4;
    b.validLen = 4;
    ftq.push(b);
    // Work available and backend space: fetch acts next cycle.
    EXPECT_EQ(fetch.nextEventCycle(1), 2u);

    // Full backend of wrong-path slots: blocked again.
    for (int i = 0; i < 8; ++i)
        backend.deliver({.seq = 0, .wrongPath = true});
    EXPECT_EQ(fetch.nextEventCycle(1), kNever);
}

TEST(NextEvent, FetchEngineReportsStallExpiry)
{
    MemConfig mcfg = smallMemCfg();
    MemHierarchy mem(mcfg);
    Ftq ftq(8, 32);
    Backend backend({.retireWidth = 4, .queueDepth = 32});
    FetchEngine fetch(ftq, mem, backend, {});

    FetchBlock b;
    b.startPc = 0x1000;
    b.numInsts = 4;
    b.validLen = 4;
    ftq.push(b);

    // Cold caches: the first fetch misses and stalls until the fill.
    // A mirror hierarchy reproduces the fill's deterministic ready
    // time so we can assert the stall expiry exactly.
    MemHierarchy mirror(mcfg);
    Cycle now = 1;
    mem.tick(now);
    mirror.tick(now);
    fetch.tick(now);
    ASSERT_TRUE(mirror.reserveTagPort());
    FetchAccess acc = mirror.demandFetch(0x1000, now);
    ASSERT_FALSE(acc.hitL1);
    EXPECT_EQ(fetch.nextEventCycle(now), acc.readyAt);
    EXPECT_GT(fetch.nextEventCycle(now), now);
}

TEST(NextEvent, PrefetcherDefaultsAndNlp)
{
    MemConfig mcfg = smallMemCfg();
    MemHierarchy mem(mcfg);
    NlpPrefetcher nlp(mem, {});
    // Nothing pending: idle.
    EXPECT_EQ(nlp.nextEventCycle(7), kNever);

    // A true miss queues next-line candidates: acts next cycle.
    FetchAccess miss;
    miss.hitL1 = false;
    nlp.onDemandAccess(0x1000, miss, 7);
    EXPECT_EQ(nlp.nextEventCycle(7), 8u);
}

TEST(NextEvent, FdpIdleWithEmptyFtq)
{
    MemConfig mcfg = smallMemCfg();
    MemHierarchy mem(mcfg);
    Ftq ftq(8, 32);
    FdpPrefetcher fdp(ftq, mem, {});
    EXPECT_EQ(fdp.nextEventCycle(3), kNever);

    // Entry 0 is the fetch point — never scanned — so one entry keeps
    // the FDP idle; a second gives it candidates to scan.
    FetchBlock b;
    b.startPc = 0x1000;
    b.numInsts = 4;
    b.validLen = 4;
    ftq.push(b);
    EXPECT_EQ(fdp.nextEventCycle(3), kNever);
    b.startPc = 0x2000;
    ftq.push(b);
    EXPECT_EQ(fdp.nextEventCycle(3), 4u);
}

TEST(NextEvent, WaitPolicyHeadOfLineReportsWalkCompletion)
{
    // An NLP candidate under the Wait policy parks on its page walk;
    // the prefetcher must report the walk completion as its event.
    MemConfig mcfg = smallMemCfg();
    MemHierarchy mem(mcfg);
    VmConfig vcfg = smallVmCfg();
    vcfg.prefetchPolicy = TlbPrefetchPolicy::Wait;
    Mmu mmu(vcfg, 0x0, 0x100000);
    NlpPrefetcher nlp(mem, {});
    nlp.setMmu(&mmu);

    FetchAccess miss;
    miss.hitL1 = false;
    Cycle now = 9;
    nlp.onDemandAccess(0x4000, miss, now);
    nlp.tick(now); // translates the head; ITLB is cold, walk starts
    Cycle ev = nlp.nextEventCycle(now);
    EXPECT_EQ(ev, now + vcfg.walkLatency);
    EXPECT_GT(ev, now);
}

TEST(NextEvent, SharedMemIdleIsNeverAndBusyReportsBusRelease)
{
    // The shared L2/buses/DRAM block is passive when no transfer is
    // scheduled; a transfer makes its release the next event.
    MemConfig mcfg = smallMemCfg();
    SharedMem shared(mcfg);
    EXPECT_EQ(shared.nextEventCycle(1), kNever);

    Cycle done = shared.memBus.transfer(5, mcfg.l2.blockBytes);
    ASSERT_GT(done, 5u);
    EXPECT_EQ(shared.nextEventCycle(5), shared.memBus.freeAtCycle());
    EXPECT_GT(shared.nextEventCycle(5), 5u);
    // Probed at/after the release, the event has passed: idle again.
    EXPECT_EQ(shared.nextEventCycle(shared.memBus.freeAtCycle()),
              kNever);
}

TEST(NextEvent, MultiCoreHierarchiesShareQuiescence)
{
    // Two per-core hierarchies on one SharedMem. Core 1's fill is
    // core 1's event; core 0 (nothing in flight) may conservatively
    // report the shared-bus release but must never report a cycle at
    // or before now — and both go quiescent once the fill lands.
    MemConfig mcfg = smallMemCfg();
    SharedMem shared(mcfg);
    MemHierarchy c0(mcfg, shared, /*core_id=*/0, /*num_cores=*/2);
    MemHierarchy c1(mcfg, shared, /*core_id=*/1, /*num_cores=*/2);

    Cycle now = 1;
    c0.tick(now);
    c1.tick(now);
    EXPECT_EQ(c0.nextEventCycle(now), kNever);
    EXPECT_EQ(c1.nextEventCycle(now), kNever);

    ASSERT_TRUE(c1.reserveTagPort());
    FetchAccess acc = c1.demandFetch(0x1000, now);
    ASSERT_FALSE(acc.hitL1);
    ASSERT_NE(acc.readyAt, neverCycle);
    EXPECT_GT(c1.nextEventCycle(now), now);
    EXPECT_LE(c1.nextEventCycle(now), acc.readyAt);
    EXPECT_GT(c0.nextEventCycle(now), now);

    c0.tick(acc.readyAt);
    c1.tick(acc.readyAt);
    EXPECT_EQ(c1.nextEventCycle(acc.readyAt), kNever);
    EXPECT_EQ(c0.nextEventCycle(acc.readyAt), kNever);
}

TEST(NextEvent, MultiCoreRequestsAreDistinctLinesInTheSharedL2)
{
    // Private address spaces: the same block number fetched by two
    // cores must MISS separately in the shared L2 (per-core request
    // tagging), not constructively share a line.
    MemConfig mcfg = smallMemCfg();
    SharedMem shared(mcfg);
    MemHierarchy c0(mcfg, shared, 0, 2);
    MemHierarchy c1(mcfg, shared, 1, 2);

    Cycle now = 1;
    c0.tick(now);
    c1.tick(now);
    ASSERT_TRUE(c0.reserveTagPort());
    FetchAccess a0 = c0.demandFetch(0x1000, now);
    ASSERT_FALSE(a0.hitL1);

    // Land core 0's fill (DRAM -> L2 -> L1), then fetch the same
    // block number on core 1: its tagged address is a different L2
    // line, so it must go to DRAM, not hit core 0's line.
    now = a0.readyAt;
    c0.tick(now);
    c1.tick(now);
    ASSERT_TRUE(c1.reserveTagPort());
    FetchAccess a1 = c1.demandFetch(0x1000, now);
    ASSERT_FALSE(a1.hitL1);
    EXPECT_GE(a1.readyAt - now, mcfg.dramLatency)
        << "core 1 constructively hit core 0's L2 line";
}

TEST(NextEvent, MultiCoreWholeMachinePropertyNeverAtOrBeforeNow)
{
    // The aggregated protocol: on a ticked 2-core machine every
    // component of EVERY core honours the strictly-future contract,
    // and the shared memory block does too.
    SimConfig cfg = makeBaselineConfig("li", PrefetchScheme::FdpRemove);
    applyMultiCore(cfg, 2);
    cfg.mem.l2.sizeBytes = 128 * 1024;
    cfg.forceTick = true;
    Simulator sim(cfg);
    for (int i = 0; i < 2000; ++i) {
        sim.step();
        Cycle now = sim.now();
        EXPECT_GT(sim.sharedMem().nextEventCycle(now), now);
        for (std::size_t c = 0; c < sim.numCores(); ++c) {
            EXPECT_GT(sim.mem(c).nextEventCycle(now), now);
            EXPECT_GT(sim.backend(c).nextEventCycle(now), now);
            EXPECT_GT(sim.fetchEngine(c).nextEventCycle(now), now);
            EXPECT_GT(sim.ftq(c).nextEventCycle(now), now);
            EXPECT_GT(sim.bpu(c).nextEventCycle(now), now);
            for (const auto &pf : sim.core(c).prefetchers)
                EXPECT_GT(pf->nextEventCycle(now), now);
        }
    }
}

TEST(NextEvent, WholeMachinePropertyNeverAtOrBeforeNow)
{
    // Step a few real machines (forced per-cycle ticking so the walk
    // is exhaustive) and check the contract for every component at
    // every cycle.
    for (const char *wl : {"li", "gcc"}) {
        SimConfig cfg = makeBaselineConfig(wl, PrefetchScheme::FdpRemove);
        applyVmConfig(cfg, TlbPrefetchPolicy::Wait,
                      PageMapKind::Scrambled, /*itlb_entries=*/16);
        // The second workload runs the full hierarchy: L2 TLB,
        // bounded walkers, and the FTQ TLB prefetcher.
        if (std::string(wl) == "gcc")
            applyTlbHierarchy(cfg, /*l2_entries=*/64,
                              /*num_walkers=*/1, /*tlb_prefetch=*/true);
        cfg.forceTick = true;
        Simulator sim(cfg);
        for (int i = 0; i < 3000; ++i) {
            sim.step();
            Cycle now = sim.now();
            EXPECT_GT(sim.mem().nextEventCycle(now), now);
            EXPECT_GT(sim.mmu().nextEventCycle(now), now);
            EXPECT_GT(sim.backend().nextEventCycle(now), now);
            EXPECT_GT(sim.fetchEngine().nextEventCycle(now), now);
            EXPECT_GT(sim.ftq().nextEventCycle(now), now);
            EXPECT_GT(sim.bpu().nextEventCycle(now), now);
            if (sim.tlbPrefetcher() != nullptr)
                EXPECT_GT(sim.tlbPrefetcher()->nextEventCycle(now), now);
            for (std::size_t p = 0; p < sim.numPrefetchers(); ++p)
                EXPECT_GT(sim.prefetcher(p).nextEventCycle(now), now);
        }
    }
}
