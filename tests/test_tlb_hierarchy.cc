/**
 * Tests for the two-level TLB hierarchy and bounded page-walk
 * bandwidth (vm/l2_tlb.hh, the reworked vm/mmu.hh walk queue) and the
 * decoupled FTQ TLB prefetcher (vm/tlb_prefetcher.hh):
 *  - L2-TLB hit/miss/evict accounting and the ITLB-refill path,
 *  - demand walks queueing ahead of (and upgrading) prefetch walks at
 *    walker saturation, with exact demand completion times,
 *  - walk-id freshness for the prefetchers' live-polling contract,
 *  - translation lookahead warming the TLBs from the FTQ.
 */

#include <gtest/gtest.h>

#include "frontend/ftq.hh"
#include "sim/presets.hh"
#include "sim/runner.hh"
#include "vm/mmu.hh"
#include "vm/tlb_prefetcher.hh"

using namespace fdip;

namespace
{

constexpr Addr kBase = 0x400000;
constexpr unsigned kPage = 4096;

VmConfig
hierVm(TlbPrefetchPolicy policy, unsigned l2_entries,
       unsigned num_walkers)
{
    VmConfig vm;
    vm.enable = true;
    vm.pageBytes = kPage;
    vm.itlbEntries = 8;
    vm.itlbAssoc = 2;
    vm.walkLatency = 30;
    vm.prefetchPolicy = policy;
    vm.mapping = PageMapKind::Identity;
    vm.l2TlbEntries = l2_entries;
    vm.l2TlbAssoc = l2_entries >= 4 ? 4 : l2_entries;
    vm.l2TlbLatency = 8;
    vm.numWalkers = num_walkers;
    return vm;
}

Addr
page(unsigned i)
{
    return kBase + Addr(i) * kPage;
}

} // namespace

TEST(L2Tlb, GeometryDerived)
{
    L2Tlb tlb({16, 4, 8});
    EXPECT_EQ(tlb.numEntries(), 16u);
    EXPECT_EQ(tlb.numSets(), 4u);
    EXPECT_EQ(tlb.hitLatency(), 8u);
    EXPECT_EQ(tlb.validEntries(), 0u);
}

TEST(L2Tlb, MissFillHitAccounting)
{
    L2Tlb tlb({16, 4, 8});
    EXPECT_FALSE(tlb.access(5));
    tlb.insert(5);
    EXPECT_TRUE(tlb.access(5));
    EXPECT_EQ(tlb.stats.counter("l2tlb.accesses"), 2u);
    EXPECT_EQ(tlb.stats.counter("l2tlb.misses"), 1u);
    EXPECT_EQ(tlb.stats.counter("l2tlb.hits"), 1u);
    EXPECT_EQ(tlb.stats.counter("l2tlb.fills"), 1u);
}

TEST(L2Tlb, LookupHasNoSideEffects)
{
    L2Tlb tlb({16, 4, 8});
    tlb.insert(5);
    std::uint64_t accesses = tlb.stats.counter("l2tlb.accesses");
    EXPECT_TRUE(tlb.lookup(5));
    EXPECT_FALSE(tlb.lookup(6));
    EXPECT_EQ(tlb.stats.counter("l2tlb.accesses"), accesses);
}

TEST(L2Tlb, LruEvictionWithinSet)
{
    L2Tlb tlb({8, 2, 8}); // 4 sets x 2 ways; same-set stride = 4
    tlb.insert(0);
    tlb.insert(4);
    EXPECT_TRUE(tlb.access(0)); // 0 is MRU, 4 is LRU
    tlb.insert(8);              // evicts 4
    EXPECT_TRUE(tlb.lookup(0));
    EXPECT_FALSE(tlb.lookup(4));
    EXPECT_TRUE(tlb.lookup(8));
    EXPECT_EQ(tlb.stats.counter("l2tlb.evictions"), 1u);
}

TEST(L2TlbDeath, BadGeometryRejected)
{
    EXPECT_DEATH({ L2Tlb t({0, 1, 8}); }, "at least one entry");
    EXPECT_DEATH({ L2Tlb t({8, 3, 8}); }, "divide evenly");
    EXPECT_DEATH({ L2Tlb t({24, 2, 8}); }, "power of two");
    EXPECT_DEATH({ L2Tlb t({8, 2, 0}); }, "latency");
}

TEST(MmuHierarchy, L2DisabledByDefault)
{
    VmConfig vm = hierVm(TlbPrefetchPolicy::Drop, 0, 0);
    Mmu mmu(vm, kBase, kBase + 16 * kPage);
    EXPECT_EQ(mmu.l2Tlb(), nullptr);
}

TEST(MmuHierarchy, DemandL2HitRefillsItlbWithoutAWalk)
{
    Mmu mmu(hierVm(TlbPrefetchPolicy::Drop, 16, 0), kBase,
            kBase + 16 * kPage);
    ASSERT_NE(mmu.l2Tlb(), nullptr);
    mmu.l2Tlb()->insert(mmu.pageTable().vpn(page(0)));

    TlbAccess tr = mmu.demandTranslate(page(0), 100);
    EXPECT_FALSE(tr.hit);
    EXPECT_EQ(tr.readyAt, 108u); // 100 + 8-cycle L2 latency, not 130
    EXPECT_EQ(mmu.stats.counter("mmu.l2tlb_hit_fills"), 1u);
    EXPECT_EQ(mmu.stats.counter("mmu.walks"), 0u);
    EXPECT_EQ(mmu.l2Tlb()->stats.counter("l2tlb.hits"), 1u);

    mmu.tick(108);
    EXPECT_TRUE(mmu.tlbHolds(page(0)));
    TlbAccess retry = mmu.demandTranslate(page(0), 108);
    EXPECT_TRUE(retry.hit);
}

TEST(MmuHierarchy, DemandWalkFillsBothLevels)
{
    Mmu mmu(hierVm(TlbPrefetchPolicy::Drop, 16, 0), kBase,
            kBase + 16 * kPage);
    TlbAccess tr = mmu.demandTranslate(page(1), 100);
    EXPECT_FALSE(tr.hit);
    EXPECT_EQ(tr.readyAt, 130u); // full walk: L2 missed too
    EXPECT_EQ(mmu.stats.counter("mmu.demand_walks"), 1u);
    EXPECT_EQ(mmu.l2Tlb()->stats.counter("l2tlb.misses"), 1u);

    mmu.tick(130);
    EXPECT_TRUE(mmu.tlbHolds(page(1)));
    EXPECT_TRUE(mmu.l2Tlb()->lookup(mmu.pageTable().vpn(page(1))));
}

TEST(MmuHierarchy, DropPolicyRidesTheL2ButNeverAWalk)
{
    Mmu mmu(hierVm(TlbPrefetchPolicy::Drop, 16, 0), kBase,
            kBase + 16 * kPage);
    mmu.l2Tlb()->insert(mmu.pageTable().vpn(page(2)));

    // L2-resident page: a short refill, not a walk, so Drop proceeds.
    PfTranslation warm = mmu.prefetchTranslate(page(2), 100);
    EXPECT_EQ(warm.status, PfTranslation::Status::Walking);
    EXPECT_EQ(warm.readyAt, 108u);
    EXPECT_EQ(mmu.stats.counter("mmu.pf_l2tlb_hits"), 1u);
    // Drop never pollutes the ITLB.
    mmu.tick(108);
    EXPECT_FALSE(mmu.tlbHolds(page(2)));

    // Cold page: a full walk would be needed — dropped.
    PfTranslation cold = mmu.prefetchTranslate(page(3), 100);
    EXPECT_EQ(cold.status, PfTranslation::Status::Dropped);
    EXPECT_EQ(mmu.stats.counter("mmu.pf_dropped"), 1u);
}

TEST(MmuHierarchy, FillPolicyL2HitWarmsTheItlb)
{
    Mmu mmu(hierVm(TlbPrefetchPolicy::Fill, 16, 0), kBase,
            kBase + 16 * kPage);
    mmu.l2Tlb()->insert(mmu.pageTable().vpn(page(4)));
    PfTranslation pf = mmu.prefetchTranslate(page(4), 100);
    EXPECT_EQ(pf.status, PfTranslation::Status::Walking);
    EXPECT_EQ(pf.readyAt, 108u);
    mmu.tick(108);
    EXPECT_TRUE(mmu.tlbHolds(page(4)));
}

TEST(MmuHierarchy, WaitPolicyWalkFillsNeitherLevel)
{
    Mmu mmu(hierVm(TlbPrefetchPolicy::Wait, 16, 0), kBase,
            kBase + 16 * kPage);
    PfTranslation pf = mmu.prefetchTranslate(page(5), 100);
    EXPECT_EQ(pf.status, PfTranslation::Status::Walking);
    EXPECT_EQ(pf.readyAt, 130u);
    mmu.tick(130);
    EXPECT_FALSE(mmu.tlbHolds(page(5)));
    EXPECT_FALSE(mmu.l2Tlb()->lookup(mmu.pageTable().vpn(page(5))));
}

TEST(MmuWalkers, UnlimitedByDefaultRunsWalksConcurrently)
{
    Mmu mmu(hierVm(TlbPrefetchPolicy::Wait, 0, 0), kBase,
            kBase + 16 * kPage);
    EXPECT_EQ(mmu.demandTranslate(page(0), 100).readyAt, 130u);
    EXPECT_EQ(mmu.demandTranslate(page(1), 100).readyAt, 130u);
    EXPECT_EQ(mmu.demandTranslate(page(2), 100).readyAt, 130u);
    EXPECT_EQ(mmu.walksQueued(), 0u);
}

TEST(MmuWalkers, DemandQueuesAheadOfQueuedPrefetchWalks)
{
    Mmu mmu(hierVm(TlbPrefetchPolicy::Wait, 0, 1), kBase,
            kBase + 16 * kPage);

    // Walker saturated by a prefetch walk...
    PfTranslation a = mmu.prefetchTranslate(page(0), 100);
    EXPECT_EQ(a.readyAt, 130u);
    // ...a second prefetch walk queues with an unknown completion...
    PfTranslation b = mmu.prefetchTranslate(page(1), 101);
    EXPECT_EQ(b.readyAt, kNever);
    EXPECT_TRUE(mmu.walkPending(b.vpn, b.walkId));
    EXPECT_EQ(mmu.walkReadyCycle(b.vpn, b.walkId), kNever);
    // ...and a later demand walk jumps the queue with an exact time.
    TlbAccess c = mmu.demandTranslate(page(2), 102);
    EXPECT_FALSE(c.hit);
    EXPECT_EQ(c.readyAt, 160u); // starts at 130 when walk A completes
    EXPECT_EQ(mmu.walksQueued(), 2u);
    EXPECT_EQ(mmu.stats.counter("mmu.walks_queued"), 2u);

    // Walk A completes at 130: the demand starts, not prefetch B.
    mmu.tick(130);
    EXPECT_EQ(mmu.walksQueued(), 1u);
    EXPECT_EQ(mmu.walkReadyCycle(b.vpn, b.walkId), kNever);
    EXPECT_EQ(mmu.stats.counter("mmu.demand_queue_cycles"), 28u);

    // The demand completes at its promised cycle and fills the ITLB;
    // only then does prefetch B get the walker.
    mmu.tick(160);
    EXPECT_TRUE(mmu.tlbHolds(page(2)));
    EXPECT_EQ(mmu.walkReadyCycle(b.vpn, b.walkId), 190u);
    mmu.tick(190);
    EXPECT_FALSE(mmu.walkPending(b.vpn, b.walkId));
    // Queue-wait accounting: 28 (demand) + 59 (prefetch B, 101->160).
    EXPECT_EQ(mmu.stats.counter("mmu.walk_queue_cycles"), 87u);
}

TEST(MmuWalkers, DemandJoiningAQueuedPrefetchWalkUpgradesIt)
{
    Mmu mmu(hierVm(TlbPrefetchPolicy::Wait, 0, 1), kBase,
            kBase + 16 * kPage);
    mmu.prefetchTranslate(page(0), 100);          // active walk
    PfTranslation b = mmu.prefetchTranslate(page(1), 101); // queued
    EXPECT_EQ(b.readyAt, kNever);

    TlbAccess demand = mmu.demandTranslate(page(1), 105);
    EXPECT_FALSE(demand.hit);
    EXPECT_EQ(demand.readyAt, 160u); // starts at 130, exact again
    EXPECT_EQ(mmu.stats.counter("mmu.walk_upgrades"), 1u);
    EXPECT_EQ(mmu.stats.counter("mmu.walk_merges"), 1u);

    mmu.tick(130);
    EXPECT_EQ(mmu.walkReadyCycle(b.vpn, b.walkId), 160u);
    mmu.tick(160);
    // The joining demand upgraded the Wait walk to fill the ITLB.
    EXPECT_TRUE(mmu.tlbHolds(page(1)));
    EXPECT_FALSE(mmu.walkPending(b.vpn, b.walkId));
}

TEST(MmuWalkers, QueuedDemandsServeFifoWithExactTimes)
{
    Mmu mmu(hierVm(TlbPrefetchPolicy::Wait, 0, 2), kBase,
            kBase + 16 * kPage);
    EXPECT_EQ(mmu.demandTranslate(page(0), 100).readyAt, 130u);
    EXPECT_EQ(mmu.demandTranslate(page(1), 102).readyAt, 132u);
    // Both walkers busy: the third and fourth demands queue behind
    // the earliest completions, in order.
    EXPECT_EQ(mmu.demandTranslate(page(2), 104).readyAt, 160u);
    EXPECT_EQ(mmu.demandTranslate(page(3), 105).readyAt, 162u);
    for (Cycle c = 105; c <= 162; ++c)
        mmu.tick(c);
    EXPECT_TRUE(mmu.tlbHolds(page(2)));
    EXPECT_TRUE(mmu.tlbHolds(page(3)));
    EXPECT_EQ(mmu.walksInFlight(), 0u);
}

TEST(MmuWalkers, WalkIdsStayFreshAcrossReWalks)
{
    Mmu mmu(hierVm(TlbPrefetchPolicy::Wait, 0, 0), kBase,
            kBase + 16 * kPage);
    PfTranslation first = mmu.prefetchTranslate(page(0), 100);
    EXPECT_TRUE(mmu.walkPending(first.vpn, first.walkId));
    mmu.tick(130); // Wait policy: no fill, walk simply retires

    // A later walk for the same page gets a new id; the old handle
    // must read as completed, not as pending on the new walk.
    PfTranslation second = mmu.prefetchTranslate(page(0), 140);
    EXPECT_NE(second.walkId, first.walkId);
    EXPECT_FALSE(mmu.walkPending(first.vpn, first.walkId));
    EXPECT_EQ(mmu.walkReadyCycle(first.vpn, first.walkId), 0u);
    EXPECT_TRUE(mmu.walkPending(second.vpn, second.walkId));
}

TEST(TlbPrefetcher, WarmsFtqPagesPastTheFetchPoint)
{
    VmConfig vm = hierVm(TlbPrefetchPolicy::Drop, 0, 0);
    Mmu mmu(vm, kBase, kBase + 64 * kPage);
    Ftq ftq(8, 32);
    TlbPrefetcher pf(ftq, mmu, {/*width=*/2, /*filterEntries=*/16});

    // Nothing to scan: idle.
    EXPECT_EQ(pf.nextEventCycle(4), kNever);

    FetchBlock b;
    b.numInsts = 4;
    b.validLen = 4;
    for (unsigned i = 0; i < 3; ++i) {
        b.startPc = page(i); // one distinct page per entry
        ftq.push(b);
    }
    // Entry 0 is the fetch point; entries 1 and 2 are lookahead.
    EXPECT_EQ(pf.nextEventCycle(4), 5u);
    pf.tick(5);
    EXPECT_EQ(mmu.stats.counter("mmu.tlbpf_walks"), 2u);
    EXPECT_EQ(pf.stats.counter("tlbpf.probes"), 2u);
    EXPECT_EQ(pf.stats.counter("tlbpf.requests"), 2u);
    EXPECT_FALSE(mmu.tlbHolds(page(1)));

    // Probed pages are filtered: the prefetcher reaches a fixed point
    // (this is what keeps idle-cycle skipping exact).
    EXPECT_EQ(pf.nextEventCycle(5), kNever);
    pf.tick(6);
    EXPECT_EQ(pf.stats.counter("tlbpf.probes"), 2u);

    // The walks fill the ITLB ahead of the demand.
    mmu.tick(35);
    EXPECT_TRUE(mmu.tlbHolds(page(1)));
    EXPECT_TRUE(mmu.tlbHolds(page(2)));
}

TEST(TlbPrefetcher, L2ResidentPagesRefillInsteadOfWalking)
{
    VmConfig vm = hierVm(TlbPrefetchPolicy::Drop, 16, 0);
    Mmu mmu(vm, kBase, kBase + 64 * kPage);
    mmu.l2Tlb()->insert(mmu.pageTable().vpn(page(1)));
    Ftq ftq(8, 32);
    TlbPrefetcher pf(ftq, mmu, {2, 16});

    FetchBlock b;
    b.numInsts = 4;
    b.validLen = 4;
    b.startPc = page(0);
    ftq.push(b);
    b.startPc = page(1);
    ftq.push(b);

    pf.tick(5);
    EXPECT_EQ(mmu.stats.counter("mmu.tlbpf_walks"), 0u);
    EXPECT_EQ(pf.stats.counter("tlbpf.requests"), 1u);
    mmu.tick(13); // 5 + 8-cycle L2 refill
    EXPECT_TRUE(mmu.tlbHolds(page(1)));
}

TEST(TlbHierarchy, SimulatorRunsTranslatedWithHierarchyAndPrefetch)
{
    SimConfig cfg = makeBaselineConfig("gcc", PrefetchScheme::FdpRemove);
    cfg.warmupInsts = 5 * 1000;
    cfg.measureInsts = 20 * 1000;
    applyVmConfig(cfg, TlbPrefetchPolicy::Wait, PageMapKind::Scrambled,
                  /*itlb_entries=*/8);
    applyTlbHierarchy(cfg, /*l2_entries=*/64, /*num_walkers=*/1,
                      /*tlb_prefetch=*/true);
    SimResults r = simulate(cfg);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.stats.value("tlbpf.probes"), 0.0);
    EXPECT_GT(r.stats.value("l2tlb.accesses"), 0.0);
    EXPECT_GT(r.stats.value("mmu.walks"), 0.0);
}

TEST(TlbHierarchy, MoreWalkersAndBiggerL2NeverSlowTheMachine)
{
    // Monotonicity smoke: widening either hierarchy axis must not
    // lose IPC (the full sweep is bench_x16_tlb_hierarchy).
    auto run = [](unsigned l2, unsigned walkers) {
        SimConfig cfg =
            makeBaselineConfig("gcc", PrefetchScheme::FdpRemove);
        cfg.warmupInsts = 5 * 1000;
        cfg.measureInsts = 20 * 1000;
        applyVmConfig(cfg, TlbPrefetchPolicy::Wait,
                      PageMapKind::Scrambled, /*itlb_entries=*/8);
        cfg.vm.walkLatency = 60;
        applyTlbHierarchy(cfg, l2, walkers);
        return simulate(cfg).ipc;
    };
    EXPECT_LE(run(0, 1), run(256, 1) * 1.0001);
    EXPECT_LE(run(64, 1), run(64, 0) * 1.0001);
}

TEST(TlbHierarchyDeath, BadKnobsRejected)
{
    SimConfig cfg = makeBaselineConfig("li", PrefetchScheme::None);
    applyVmConfig(cfg);
    cfg.vm.l2TlbEntries = 24;
    cfg.vm.l2TlbAssoc = 2; // 12 sets: not a power of two
    EXPECT_DEATH({ Simulator s(cfg); }, "power of two");

    SimConfig slow = makeBaselineConfig("li", PrefetchScheme::None);
    applyVmConfig(slow);
    slow.vm.l2TlbEntries = 16;
    slow.vm.l2TlbAssoc = 4;
    slow.vm.l2TlbLatency = slow.vm.walkLatency; // not faster than a walk
    EXPECT_DEATH({ Simulator s(slow); }, "beat a full page walk");

    SimConfig pf = makeBaselineConfig("li", PrefetchScheme::None);
    applyVmConfig(pf);
    pf.vm.tlbPrefetch = true;
    pf.vm.tlbPrefetchWidth = 0;
    EXPECT_DEATH({ Simulator s(pf); }, "width");
}
