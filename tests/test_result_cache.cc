/**
 * Tests for the on-disk result cache (sim/result_cache.hh): entry
 * round-trip fidelity, cache-hit parity against a fresh simulation,
 * and rejection (with a warning) of corrupted or stale entries.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "sim/report.hh"
#include "sim/result_cache.hh"
#include "sim/runner.hh"

using namespace fdip;

namespace
{

SimConfig
smallConfig(const std::string &workload, PrefetchScheme scheme)
{
    SimConfig cfg = makeBaselineConfig(workload, scheme);
    cfg.warmupInsts = 10 * 1000;
    cfg.measureInsts = 30 * 1000;
    return cfg;
}

/** Fresh per-test cache directory under the gtest temp dir. */
std::string
freshCacheDir(const std::string &tag)
{
    std::string dir = ::testing::TempDir() + "fdip-result-cache-" + tag;
    std::filesystem::remove_all(dir);
    return dir;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::string out((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    return out;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << path;
    out << content;
}

} // namespace

TEST(ResultCacheCodec, RoundTripIsExact)
{
    SimConfig cfg = smallConfig("gcc", PrefetchScheme::FdpRemove);
    SimResults r = simulate(cfg);
    std::uint64_t fp = cfg.fingerprint();

    std::string text = encodeCacheEntry(fp, cfg.warmupInsts,
                                        cfg.measureInsts, r);
    auto back = decodeCacheEntry(text, fp, cfg.warmupInsts,
                                 cfg.measureInsts);
    ASSERT_TRUE(back.has_value());

    // Every simulated field round-trips bit-exactly: the canonical
    // serialization (scalars, histogram bins, full StatSet) is equal.
    EXPECT_EQ(serializeResults(r), serializeResults(*back));
    // The host gauges of the producing run are preserved verbatim.
    EXPECT_DOUBLE_EQ(r.hostSeconds, back->hostSeconds);
    EXPECT_DOUBLE_EQ(r.hostKcyclesPerSec, back->hostKcyclesPerSec);
    EXPECT_EQ(r.skippedCycles, back->skippedCycles);
    EXPECT_EQ(r.totalCycles, back->totalCycles);
    // Histogram summary stats derive from reconstructed buckets.
    EXPECT_DOUBLE_EQ(r.ftqOccupancy.mean(), back->ftqOccupancy.mean());
    EXPECT_EQ(r.ftqOccupancy.count(), back->ftqOccupancy.count());
}

TEST(ResultCacheCodec, RejectsWrongKeyAndMalformedText)
{
    SimConfig cfg = smallConfig("li", PrefetchScheme::None);
    SimResults r = simulate(cfg);
    std::uint64_t fp = cfg.fingerprint();
    std::string text = encodeCacheEntry(fp, cfg.warmupInsts,
                                        cfg.measureInsts, r);

    std::string why;
    // Stale keys: fingerprint, warmup, or measure mismatch.
    EXPECT_FALSE(decodeCacheEntry(text, fp + 1, cfg.warmupInsts,
                                  cfg.measureInsts, &why));
    EXPECT_NE(why.find("fingerprint"), std::string::npos);
    EXPECT_FALSE(decodeCacheEntry(text, fp, cfg.warmupInsts + 1,
                                  cfg.measureInsts, &why));
    EXPECT_NE(why.find("warmup"), std::string::npos);
    EXPECT_FALSE(decodeCacheEntry(text, fp, cfg.warmupInsts,
                                  cfg.measureInsts + 1, &why));
    EXPECT_NE(why.find("measure"), std::string::npos);

    // Truncation (the "end" marker is missing).
    std::string cut = text.substr(0, text.size() / 2);
    EXPECT_FALSE(decodeCacheEntry(cut, fp, cfg.warmupInsts,
                                  cfg.measureInsts, &why));

    // Garbage.
    EXPECT_FALSE(decodeCacheEntry("not a cache entry\n", fp,
                                  cfg.warmupInsts, cfg.measureInsts,
                                  &why));
    EXPECT_FALSE(decodeCacheEntry("", fp, cfg.warmupInsts,
                                  cfg.measureInsts, &why));
}

TEST(ResultCache, HitParityVsFreshSimulation)
{
    std::string dir = freshCacheDir("parity");

    // Producer: populates the cache (all misses).
    Runner producer(10 * 1000, 30 * 1000);
    producer.setCacheDir(dir);
    producer.setJobs(1);
    producer.enqueue("gcc", PrefetchScheme::FdpRemove);
    producer.runPending();
    EXPECT_EQ(producer.cacheHits(), 0u);
    EXPECT_EQ(producer.cacheMisses(), 1u);
    const SimResults &fresh =
        producer.run("gcc", PrefetchScheme::FdpRemove);

    // Consumer: a separate Runner ("another binary") sharing the dir.
    Runner consumer(10 * 1000, 30 * 1000);
    consumer.setCacheDir(dir);
    consumer.setJobs(1);
    consumer.enqueue("gcc", PrefetchScheme::FdpRemove);
    consumer.runPending();
    EXPECT_EQ(consumer.cacheHits(), 1u);
    EXPECT_EQ(consumer.cacheMisses(), 0u);
    const SimResults &cached =
        consumer.run("gcc", PrefetchScheme::FdpRemove);

    // And a cache-less Runner as the ground truth.
    Runner plain(10 * 1000, 30 * 1000);
    plain.disableCache();
    const SimResults &truth =
        plain.run("gcc", PrefetchScheme::FdpRemove);

    EXPECT_EQ(serializeResults(truth), serializeResults(cached));
    EXPECT_EQ(serializeResults(truth), serializeResults(fresh));
}

TEST(ResultCache, CorruptedEntryRejectedWithWarning)
{
    std::string dir = freshCacheDir("corrupt");

    Runner producer(10 * 1000, 30 * 1000);
    producer.setCacheDir(dir);
    producer.setJobs(1);
    producer.enqueue("li", PrefetchScheme::None);
    producer.runPending();
    EXPECT_EQ(producer.cacheMisses(), 1u);

    // Corrupt the stored entry in place.
    SimConfig cfg = smallConfig("li", PrefetchScheme::None);
    ResultCache cache(dir);
    std::string path = cache.entryPath(cfg.fingerprint(),
                                       cfg.warmupInsts,
                                       cfg.measureInsts);
    std::string content = readFile(path);
    ASSERT_FALSE(content.empty());
    writeFile(path, content.substr(0, content.size() / 3) + "garbage");

    // A consumer must warn, treat it as a miss, and re-simulate.
    ::testing::internal::CaptureStderr();
    Runner consumer(10 * 1000, 30 * 1000);
    consumer.setCacheDir(dir);
    consumer.setJobs(1);
    consumer.enqueue("li", PrefetchScheme::None);
    consumer.runPending();
    std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(consumer.cacheHits(), 0u);
    EXPECT_EQ(consumer.cacheMisses(), 1u);
    EXPECT_NE(err.find("rejecting entry"), std::string::npos) << err;

    // The re-simulation overwrote the corrupt entry: next load hits.
    Runner verifier(10 * 1000, 30 * 1000);
    verifier.setCacheDir(dir);
    verifier.run("li", PrefetchScheme::None);
    EXPECT_EQ(verifier.cacheHits(), 1u);
}

TEST(ResultCache, StaleFingerprintEntryRejectedWithWarning)
{
    std::string dir = freshCacheDir("stale");
    ResultCache cache(dir);

    SimConfig produced = smallConfig("gcc", PrefetchScheme::None);
    SimResults r = simulate(produced);

    // Plant the produced entry at the *path* of a different config,
    // simulating a stale/aliased file. The embedded fingerprint
    // cannot match, so the load must reject it.
    SimConfig wanted = smallConfig("gcc", PrefetchScheme::FdpRemove);
    ASSERT_NE(produced.fingerprint(), wanted.fingerprint());
    writeFile(cache.entryPath(wanted.fingerprint(),
                              wanted.warmupInsts, wanted.measureInsts),
              encodeCacheEntry(produced.fingerprint(),
                               produced.warmupInsts,
                               produced.measureInsts, r));

    ::testing::internal::CaptureStderr();
    auto loaded = cache.load(wanted.fingerprint(), wanted.warmupInsts,
                             wanted.measureInsts);
    std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_FALSE(loaded.has_value());
    EXPECT_NE(err.find("fingerprint mismatch"), std::string::npos)
        << err;
}

TEST(ResultCache, OldFormatVersionEntriesRejectedWithWarning)
{
    // The multi-core work added the per_core row block and bumped the
    // format to v5; any entry left on disk by an older build must be
    // rejected as stale, warned about, and re-simulated. This pin is
    // deliberate: extending the on-disk schema without bumping the
    // version would let old entries half-decode.
    ASSERT_EQ(ResultCache::kFormatVersion, 5u);

    std::string dir = freshCacheDir("oldversion");
    ResultCache cache(dir);

    SimConfig cfg = smallConfig("li", PrefetchScheme::None);
    SimResults r = simulate(cfg);
    std::string text = encodeCacheEntry(cfg.fingerprint(),
                                        cfg.warmupInsts,
                                        cfg.measureInsts, r);

    // Rewrite the header as the previous format version.
    std::string cur_header =
        "fdip-result-cache " + std::to_string(ResultCache::kFormatVersion);
    ASSERT_EQ(text.compare(0, cur_header.size(), cur_header), 0);
    std::string stale = "fdip-result-cache 2" +
        text.substr(cur_header.size());
    writeFile(cache.entryPath(cfg.fingerprint(), cfg.warmupInsts,
                              cfg.measureInsts),
              stale);

    ::testing::internal::CaptureStderr();
    auto loaded = cache.load(cfg.fingerprint(), cfg.warmupInsts,
                             cfg.measureInsts);
    std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_FALSE(loaded.has_value());
    EXPECT_NE(err.find("format version 2, want 5"), std::string::npos)
        << err;
}

TEST(ResultCache, DisabledByDefaultInRunnerWhenEnvUnset)
{
    // The suite must not depend on the invoking shell's environment;
    // explicitly clear the knobs before checking the default.
    unsetenv("FDIP_CACHE_DIR");
    unsetenv("FDIP_NO_CACHE");
    Runner r(10 * 1000, 30 * 1000);
    EXPECT_FALSE(r.cacheEnabled());
    EXPECT_EQ(ResultCache::fromEnv(), nullptr);

    setenv("FDIP_CACHE_DIR", freshCacheDir("env").c_str(), 1);
    EXPECT_NE(ResultCache::fromEnv(), nullptr);
    setenv("FDIP_NO_CACHE", "1", 1);
    EXPECT_EQ(ResultCache::fromEnv(), nullptr);
    setenv("FDIP_NO_CACHE", "0", 1);
    EXPECT_NE(ResultCache::fromEnv(), nullptr);
    unsetenv("FDIP_CACHE_DIR");
    unsetenv("FDIP_NO_CACHE");
}
