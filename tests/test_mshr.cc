/** Tests for the MSHR file. */

#include <gtest/gtest.h>

#include "mem/mshr.hh"

using namespace fdip;

TEST(Mshr, AllocateAndFind)
{
    MshrFile m(4);
    MshrEntry *e = m.allocate(0x1000, 50, false, FillDest::DemandL1);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(m.find(0x1000), e);
    EXPECT_EQ(m.find(0x2000), nullptr);
    EXPECT_EQ(m.inUse(), 1u);
}

TEST(Mshr, FullRejectsAllocation)
{
    MshrFile m(2);
    EXPECT_NE(m.allocate(0x1000, 1, false, FillDest::DemandL1), nullptr);
    EXPECT_NE(m.allocate(0x2000, 1, false, FillDest::DemandL1), nullptr);
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.allocate(0x3000, 1, false, FillDest::DemandL1), nullptr);
    EXPECT_EQ(m.stats.counter("mshr.alloc_failures"), 1u);
}

TEST(Mshr, FreeMakesRoom)
{
    MshrFile m(1);
    MshrEntry *e = m.allocate(0x1000, 1, false, FillDest::DemandL1);
    m.free(*e);
    EXPECT_FALSE(m.full());
    EXPECT_EQ(m.find(0x1000), nullptr);
    EXPECT_NE(m.allocate(0x2000, 1, false, FillDest::DemandL1), nullptr);
}

TEST(Mshr, PrefetchesCountedSeparately)
{
    MshrFile m(4);
    m.allocate(0x1000, 1, true, FillDest::PrefetchBuffer);
    m.allocate(0x2000, 1, true, FillDest::PrefetchBuffer);
    m.allocate(0x3000, 1, false, FillDest::DemandL1);
    EXPECT_EQ(m.prefetchesInFlight(), 2u);
    EXPECT_EQ(m.inUse(), 3u);
}

TEST(Mshr, ReadyCollectsCompletedOnly)
{
    MshrFile m(4);
    m.allocate(0x1000, 10, false, FillDest::DemandL1);
    m.allocate(0x2000, 20, false, FillDest::DemandL1);
    auto ready = m.ready(15);
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0]->blockAddr, 0x1000u);
    // At t=20 both are ready.
    EXPECT_EQ(m.ready(20).size(), 2u);
}

TEST(Mshr, ClearDropsEverything)
{
    MshrFile m(4);
    m.allocate(0x1000, 1, false, FillDest::DemandL1);
    m.clear();
    EXPECT_EQ(m.inUse(), 0u);
    EXPECT_EQ(m.find(0x1000), nullptr);
}

TEST(MshrDeath, DuplicateAllocation)
{
    MshrFile m(4);
    m.allocate(0x1000, 1, false, FillDest::DemandL1);
    EXPECT_DEATH(m.allocate(0x1000, 2, false, FillDest::DemandL1),
                 "duplicate");
}

TEST(MshrDeath, DoubleFree)
{
    MshrFile m(2);
    MshrEntry *e = m.allocate(0x1000, 1, false, FillDest::DemandL1);
    m.free(*e);
    EXPECT_DEATH(m.free(*e), "invalid");
}
