/**
 * Concurrency tests: simulations share no mutable global state, so
 * concurrent Simulator instances and the Runner's parallel sweep mode
 * must reproduce serial results exactly.
 *
 * Audit notes (src/common and friends): Rng / ZipfSampler /
 * WeightedChoice hold per-instance state; Cache's xorshift replacement
 * state is per-instance; logging writes to stdio with no shared
 * buffers; the only function-level static is the `const` workload
 * suite in profiles.cc, whose initialization is thread-safe (C++11
 * magic statics) and which is immutable afterwards. Simulators are
 * therefore safe by isolation, which these tests pin down.
 */

#include <cstdlib>
#include <thread>

#include <gtest/gtest.h>

#include "sim/runner.hh"

using namespace fdip;

namespace
{

// Runner defaults its on-disk result cache from FDIP_CACHE_DIR;
// parallel-vs-serial parity must compare fresh simulations, not a
// shared cache, regardless of the invoking shell's environment.
[[maybe_unused]] const bool env_cleared = [] {
    unsetenv("FDIP_CACHE_DIR");
    unsetenv("FDIP_NO_CACHE");
    return true;
}();

SimConfig
smallConfig(const std::string &workload, PrefetchScheme scheme)
{
    SimConfig cfg = makeBaselineConfig(workload, scheme);
    cfg.warmupInsts = 20 * 1000;
    cfg.measureInsts = 60 * 1000;
    return cfg;
}

/** The deterministic face of a run (host-time gauges excluded). */
void
expectSameResults(const SimResults &a, const SimResults &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_DOUBLE_EQ(a.mpki, b.mpki);
    EXPECT_EQ(a.stats.dump(), b.stats.dump());
}

} // namespace

TEST(Concurrency, TwoSimulatorsOnThreadsMatchSerial)
{
    SimConfig cfg_a = smallConfig("gcc", PrefetchScheme::FdpRemove);
    SimConfig cfg_b = smallConfig("li", PrefetchScheme::Nlp);

    SimResults serial_a = simulate(cfg_a);
    SimResults serial_b = simulate(cfg_b);

    SimResults thread_a, thread_b;
    std::thread ta([&] { thread_a = simulate(cfg_a); });
    std::thread tb([&] { thread_b = simulate(cfg_b); });
    ta.join();
    tb.join();

    expectSameResults(serial_a, thread_a);
    expectSameResults(serial_b, thread_b);
}

TEST(Concurrency, ParallelRunnerMatchesSerialSweep)
{
    const std::vector<std::string> workloads = {"li", "gcc"};
    const std::vector<PrefetchScheme> schemes = {
        PrefetchScheme::None, PrefetchScheme::FdpRemove};

    Runner serial(20 * 1000, 60 * 1000);
    serial.setJobs(1);
    Runner parallel(20 * 1000, 60 * 1000);
    parallel.setJobs(4);

    for (const auto &w : workloads) {
        for (auto s : schemes)
            parallel.enqueue(w, s);
    }
    parallel.runPending();
    EXPECT_EQ(parallel.memoizedRuns(), workloads.size() * schemes.size());

    for (const auto &w : workloads) {
        for (auto s : schemes)
            expectSameResults(serial.run(w, s), parallel.run(w, s));
    }
}
