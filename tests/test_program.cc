/** Tests for the static program representation and the synthesizer. */

#include <gtest/gtest.h>

#include "test_helpers.hh"
#include "trace/profile.hh"
#include "trace/synth_builder.hh"

using namespace fdip;

TEST(Program, LayoutAssignsContiguousAddresses)
{
    auto prog = testutil::makeCallPattern();
    Addr pc = prog->base;
    for (const auto &fn : prog->funcs) {
        EXPECT_EQ(fn.entry, pc);
        for (const auto &bb : fn.blocks) {
            EXPECT_EQ(bb.start, pc);
            pc += Addr(bb.numInsts) * instBytes;
        }
    }
    EXPECT_EQ(prog->codeEnd(), pc);
}

TEST(Program, TerminatorPcIsLastInstruction)
{
    auto prog = testutil::makeTightLoop();
    const auto &bb = prog->funcs[0].blocks[1];
    EXPECT_EQ(bb.terminatorPc(), bb.start + 3 * instBytes);
    EXPECT_EQ(bb.end(), bb.start + 4 * instBytes);
}

TEST(Program, NumInstsCounts)
{
    auto prog = testutil::makeCallPattern();
    EXPECT_EQ(prog->funcs[0].numInsts(), 4u);
    EXPECT_EQ(prog->funcs[1].numInsts(), 8u);
    EXPECT_EQ(prog->numInsts(), 12u);
}

TEST(ProgramDeath, ValidateCatchesBadCondBr)
{
    Program prog;
    Function fn;
    BasicBlock bb;
    bb.numInsts = 2;
    bb.term = InstClass::CondBr; // cond branch in final block: invalid
    bb.targetBb = 0;
    fn.blocks.push_back(bb);
    prog.funcs.push_back(fn);
    prog.layout();
    EXPECT_DEATH(prog.validate(), "fallthrough");
}

TEST(ProgramDeath, ValidateCatchesDanglingTarget)
{
    Program prog;
    Function fn;
    BasicBlock b0;
    b0.numInsts = 2;
    b0.term = InstClass::Jump;
    b0.targetBb = 5; // out of range
    fn.blocks.push_back(b0);
    BasicBlock b1;
    b1.numInsts = 1;
    b1.term = InstClass::Return;
    fn.blocks.push_back(b1);
    prog.funcs.push_back(fn);
    prog.layout();
    EXPECT_DEATH(prog.validate(), "out of range");
}

// ---------------------------------------------------------------------
// Synthesizer properties, swept over the whole workload suite.
// ---------------------------------------------------------------------

class SynthSuite : public ::testing::TestWithParam<std::string>
{
  protected:
    const WorkloadProfile &profile() { return findProfile(GetParam()); }
};

TEST_P(SynthSuite, FootprintApproximatelyRequested)
{
    auto prog = buildProgram(profile());
    double want = static_cast<double>(profile().codeFootprintBytes);
    double got = static_cast<double>(prog->codeBytes());
    EXPECT_GT(got, want * 0.5);
    EXPECT_LT(got, want * 1.8);
}

TEST_P(SynthSuite, DeterministicInSeed)
{
    auto a = buildProgram(profile());
    auto b = buildProgram(profile());
    ASSERT_EQ(a->funcs.size(), b->funcs.size());
    EXPECT_EQ(a->codeBytes(), b->codeBytes());
    for (std::size_t i = 0; i < a->funcs.size(); ++i) {
        EXPECT_EQ(a->funcs[i].entry, b->funcs[i].entry);
        EXPECT_EQ(a->funcs[i].blocks.size(), b->funcs[i].blocks.size());
    }
}

TEST_P(SynthSuite, HasAllTerminatorKinds)
{
    auto prog = buildProgram(profile());
    unsigned cond = 0, jump = 0, call = 0, ret = 0, icall = 0;
    for (const auto &fn : prog->funcs) {
        for (const auto &bb : fn.blocks) {
            switch (bb.term) {
              case InstClass::CondBr: ++cond; break;
              case InstClass::Jump: ++jump; break;
              case InstClass::Call: ++call; break;
              case InstClass::Return: ++ret; break;
              case InstClass::IndCall: ++icall; break;
              default: break;
            }
        }
    }
    EXPECT_GT(cond, 0u);
    EXPECT_GT(jump, 0u);
    EXPECT_GT(call, 0u);
    EXPECT_GT(ret, 0u);
    EXPECT_GT(icall, 0u);
}

TEST_P(SynthSuite, CallGraphIsLayered)
{
    auto prog = buildProgram(profile());
    for (const auto &fn : prog->funcs) {
        for (const auto &bb : fn.blocks) {
            if (bb.term == InstClass::Call) {
                EXPECT_GT(prog->funcs[bb.targetFn].level, fn.level)
                    << "call must go to a deeper level (no recursion)";
            }
            for (auto t : bb.indTargets) {
                EXPECT_GT(prog->funcs[t].level, fn.level);
            }
        }
    }
}

TEST_P(SynthSuite, DispatcherLoopsForever)
{
    auto prog = buildProgram(profile());
    const Function &dispatcher = prog->funcs[0];
    const BasicBlock &last = dispatcher.blocks.back();
    EXPECT_EQ(last.term, InstClass::Jump);
    EXPECT_EQ(last.targetBb, 0u);
    for (const auto &bb : dispatcher.blocks)
        EXPECT_NE(bb.term, InstClass::Return);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SynthSuite,
                         ::testing::ValuesIn(allWorkloadNames()));

TEST(SynthBuilder, DistinctSeedsGiveDistinctPrograms)
{
    WorkloadProfile p = findProfile("gcc");
    auto a = buildProgram(p);
    p.seed += 1;
    auto b = buildProgram(p);
    // Same knobs, different seed: some structural difference expected.
    bool differs = a->codeBytes() != b->codeBytes() ||
        a->funcs.size() != b->funcs.size();
    if (!differs) {
        for (std::size_t i = 0; i < a->funcs.size() && !differs; ++i) {
            differs = a->funcs[i].blocks.size() !=
                b->funcs[i].blocks.size();
        }
    }
    EXPECT_TRUE(differs);
}
