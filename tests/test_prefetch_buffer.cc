/** Tests for the fully-associative prefetch buffer. */

#include <gtest/gtest.h>

#include "mem/prefetch_buffer.hh"

using namespace fdip;

TEST(PrefetchBuffer, InsertProbeConsume)
{
    PrefetchBuffer pb(4);
    pb.insert(0x1000);
    EXPECT_TRUE(pb.probe(0x1000));
    EXPECT_TRUE(pb.consume(0x1000));
    EXPECT_FALSE(pb.probe(0x1000)); // consumed entries leave
    EXPECT_FALSE(pb.consume(0x1000));
}

TEST(PrefetchBuffer, FifoEvictionWhenFull)
{
    PrefetchBuffer pb(2);
    pb.insert(0x1000);
    pb.insert(0x2000);
    pb.insert(0x3000); // evicts 0x1000 (oldest)
    EXPECT_FALSE(pb.probe(0x1000));
    EXPECT_TRUE(pb.probe(0x2000));
    EXPECT_TRUE(pb.probe(0x3000));
    EXPECT_EQ(pb.stats.counter("pfbuf.unused_evictions"), 1u);
}

TEST(PrefetchBuffer, DuplicateFillIgnored)
{
    PrefetchBuffer pb(4);
    pb.insert(0x1000);
    pb.insert(0x1000);
    EXPECT_EQ(pb.size(), 1u);
    EXPECT_EQ(pb.stats.counter("pfbuf.duplicate_fills"), 1u);
}

TEST(PrefetchBuffer, ConsumeCountsUseful)
{
    PrefetchBuffer pb(4);
    pb.insert(0x1000);
    pb.insert(0x2000);
    pb.consume(0x2000);
    EXPECT_EQ(pb.stats.counter("pfbuf.consumed"), 1u);
    EXPECT_EQ(pb.size(), 1u);
}

TEST(PrefetchBuffer, ClearFlushes)
{
    PrefetchBuffer pb(4);
    pb.insert(0x1000);
    pb.insert(0x2000);
    pb.clear();
    EXPECT_EQ(pb.size(), 0u);
    EXPECT_EQ(pb.stats.counter("pfbuf.flushed_entries"), 2u);
}

TEST(PrefetchBuffer, CapacityRespected)
{
    PrefetchBuffer pb(8);
    for (int i = 0; i < 20; ++i)
        pb.insert(0x1000 + i * 0x20);
    EXPECT_EQ(pb.size(), 8u);
    EXPECT_EQ(pb.capacity(), 8u);
}

TEST(PrefetchBufferDeath, ZeroEntries)
{
    EXPECT_DEATH({ PrefetchBuffer p(0); }, "at least one");
}
