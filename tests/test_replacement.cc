/** Tests for cache replacement policies. */

#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace fdip;

namespace
{

Cache::Config
cfgWith(ReplPolicy policy)
{
    Cache::Config c;
    c.sizeBytes = 128; // 4 blocks
    c.assoc = 4;       // single set
    c.blockBytes = 32;
    c.repl = policy;
    return c;
}

} // namespace

TEST(Replacement, Names)
{
    EXPECT_STREQ(replPolicyName(ReplPolicy::Lru), "lru");
    EXPECT_STREQ(replPolicyName(ReplPolicy::Fifo), "fifo");
    EXPECT_STREQ(replPolicyName(ReplPolicy::Random), "random");
}

TEST(Replacement, LruRespectsAccessRecency)
{
    Cache c(cfgWith(ReplPolicy::Lru));
    for (Addr a = 0; a < 4; ++a)
        c.insert(a * 32);
    EXPECT_TRUE(c.access(0));   // refresh the oldest
    auto evicted = c.insert(4 * 32);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 1u * 32); // block 1 is now the LRU
}

TEST(Replacement, FifoIgnoresAccessRecency)
{
    Cache c(cfgWith(ReplPolicy::Fifo));
    for (Addr a = 0; a < 4; ++a)
        c.insert(a * 32);
    EXPECT_TRUE(c.access(0));   // access must NOT save block 0
    auto evicted = c.insert(4 * 32);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 0u); // oldest fill leaves regardless
}

TEST(Replacement, RandomEvictsSomeValidBlock)
{
    Cache c(cfgWith(ReplPolicy::Random));
    for (Addr a = 0; a < 4; ++a)
        c.insert(a * 32);
    auto evicted = c.insert(4 * 32);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_LT(*evicted / 32, 4u);
    EXPECT_EQ(c.validBlocks(), 4u);
}

TEST(Replacement, RandomSpreadsVictims)
{
    Cache c(cfgWith(ReplPolicy::Random));
    std::set<Addr> victims;
    // Keep one hot set overflowing; random should hit several ways.
    for (Addr a = 0; a < 200; ++a) {
        auto ev = c.insert(a * 32);
        if (ev)
            victims.insert(*ev % (4 * 32) / 32);
    }
    EXPECT_GE(victims.size(), 3u);
}

TEST(Replacement, AllPoliciesFillInvalidWaysFirst)
{
    for (auto policy : {ReplPolicy::Lru, ReplPolicy::Fifo,
                        ReplPolicy::Random}) {
        Cache c(cfgWith(policy));
        c.insert(0);
        c.insert(32);
        auto evicted = c.insert(64);
        EXPECT_FALSE(evicted.has_value())
            << replPolicyName(policy)
            << " must not evict while invalid ways remain";
        EXPECT_EQ(c.validBlocks(), 3u);
    }
}

TEST(Replacement, PoliciesDivergeOnLoopingPattern)
{
    // A cyclic access pattern one block larger than the set: LRU
    // always misses (pathological), Random retains some blocks.
    auto run = [](ReplPolicy policy) {
        Cache c(cfgWith(policy));
        for (int round = 0; round < 200; ++round) {
            for (Addr a = 0; a <= 4; ++a) {
                if (!c.access(a * 32))
                    c.insert(a * 32);
            }
        }
        return c.stats.ratio("cache.hits", "cache.accesses");
    };
    double lru = run(ReplPolicy::Lru);
    double rnd = run(ReplPolicy::Random);
    EXPECT_LT(lru, 0.02);  // LRU thrashes the cycle
    EXPECT_GT(rnd, 0.30);  // random keeps a useful fraction
}
