/** Tests for the branch prediction unit / address generation engine. */

#include <gtest/gtest.h>

#include <memory>

#include "bpu/bpu.hh"
#include "bpu/partitioned_btb.hh"
#include "test_helpers.hh"
#include "trace/executor.hh"
#include "trace/profile.hh"
#include "trace/synth_builder.hh"

using namespace fdip;

namespace
{

struct Harness
{
    std::unique_ptr<Program> prog;
    WorkloadProfile prof;
    std::unique_ptr<SyntheticExecutor> exec;
    std::unique_ptr<TraceWindow> win;
    std::unique_ptr<Bpu> bpu;

    explicit Harness(std::unique_ptr<Program> p, BpuConfig cfg = {},
                     std::unique_ptr<BtbIface> custom = nullptr)
        : prog(std::move(p))
    {
        prof.name = "harness";
        prof.seed = 5;
        exec = std::make_unique<SyntheticExecutor>(*prog, prof);
        win = std::make_unique<TraceWindow>(*exec);
        bpu = std::make_unique<Bpu>(*win, cfg, std::move(custom));
    }

    /** Predict blocks, redirecting immediately on divergence. */
    unsigned
    trainBlocks(unsigned n)
    {
        unsigned divergences = 0;
        for (unsigned i = 0; i < n; ++i) {
            FetchBlock blk = bpu->predictBlock();
            if (blk.diverges) {
                ++divergences;
                bpu->redirect();
            }
        }
        return divergences;
    }
};

} // namespace

TEST(Bpu, ColdStartProducesSequentialBlock)
{
    Harness h(testutil::makeTightLoop());
    FetchBlock blk = h.bpu->predictBlock();
    EXPECT_EQ(blk.startPc, h.prog->base);
    EXPECT_FALSE(blk.endsInCF);
    EXPECT_EQ(blk.numInsts, 8u); // default maxBlockInsts
    EXPECT_EQ(blk.firstSeq, 0u);
}

TEST(Bpu, ColdLoopDivergesAtJump)
{
    Harness h(testutil::makeTightLoop());
    FetchBlock blk = h.bpu->predictBlock();
    // The loop's jump is at index 7 of the sequential block.
    ASSERT_TRUE(blk.diverges);
    EXPECT_EQ(blk.culpritIdx, 7u);
    EXPECT_EQ(blk.culpritCls, InstClass::Jump);
    EXPECT_TRUE(blk.decodeFixable);
    EXPECT_EQ(blk.validLen, 8u);
    EXPECT_FALSE(h.bpu->onCorrectPath());
    EXPECT_EQ(h.bpu->divergenceSeq(), 7u);
}

TEST(Bpu, WrongPathBlocksAreFlagged)
{
    Harness h(testutil::makeTightLoop());
    FetchBlock first = h.bpu->predictBlock();
    ASSERT_TRUE(first.diverges);
    for (int i = 0; i < 5; ++i) {
        FetchBlock wp = h.bpu->predictBlock();
        EXPECT_TRUE(wp.wrongPath);
        EXPECT_EQ(wp.validLen, 0u);
        EXPECT_FALSE(wp.diverges);
    }
    EXPECT_EQ(h.bpu->stats.counter("bpu.wrong_path_blocks"), 5u);
}

TEST(Bpu, RedirectResumesCorrectPath)
{
    Harness h(testutil::makeTightLoop());
    FetchBlock first = h.bpu->predictBlock();
    ASSERT_TRUE(first.diverges);
    h.bpu->predictBlock(); // wander down the wrong path
    h.bpu->redirect();
    EXPECT_TRUE(h.bpu->onCorrectPath());
    FetchBlock next = h.bpu->predictBlock();
    EXPECT_FALSE(next.wrongPath);
    // The loop jumps back to its start.
    EXPECT_EQ(next.startPc, h.prog->base);
    EXPECT_EQ(next.firstSeq, 8u);
}

TEST(Bpu, TightLoopLearnsAfterOneRedirect)
{
    Harness h(testutil::makeTightLoop());
    unsigned div = h.trainBlocks(3);
    EXPECT_GE(div, 1u);
    // Steady state: the FTB knows the loop block; zero divergence.
    EXPECT_EQ(h.trainBlocks(100), 0u);
    // Blocks are now FTB-formed, 8 instructions, ending in the jump.
    FetchBlock blk = h.bpu->predictBlock();
    EXPECT_TRUE(blk.endsInCF);
    EXPECT_EQ(blk.termCls, InstClass::Jump);
    EXPECT_EQ(blk.numInsts, 8u);
    EXPECT_TRUE(blk.predTaken);
    EXPECT_EQ(blk.predTarget, h.prog->base);
}

TEST(Bpu, CallPatternReachesLowSteadyStateDivergence)
{
    Harness h(testutil::makeCallPattern());
    h.trainBlocks(3000);
    unsigned div = h.trainBlocks(2000);
    // FTB captures all blocks; gshare learns the TNTN pattern; the RAS
    // nails returns. A small residue is tolerated.
    EXPECT_LT(div, 2000u * 5 / 100) << "steady-state divergence too high";
}

TEST(Bpu, ReturnsPredictedViaRas)
{
    Harness h(testutil::makeCallPattern());
    h.trainBlocks(3000);
    std::uint64_t ret_div_before =
        h.bpu->stats.counter("bpu.diverge_ret");
    h.trainBlocks(2000);
    std::uint64_t ret_div_after =
        h.bpu->stats.counter("bpu.diverge_ret");
    EXPECT_EQ(ret_div_after, ret_div_before)
        << "returns must be fully predicted by the RAS in steady state";
}

TEST(Bpu, VerifySeqAdvancesDenselyOnCorrectPath)
{
    Harness h(testutil::makeTightLoop());
    h.trainBlocks(3);
    InstSeqNum before = h.bpu->nextVerifySeq();
    FetchBlock blk = h.bpu->predictBlock();
    ASSERT_FALSE(blk.diverges);
    EXPECT_EQ(blk.firstSeq, before);
    EXPECT_EQ(h.bpu->nextVerifySeq(), before + blk.numInsts);
}

TEST(Bpu, BtbModeLearnsTightLoop)
{
    BpuConfig cfg;
    cfg.blockBased = false;
    cfg.btb.sets = 64;
    cfg.btb.ways = 4;
    Harness h(testutil::makeTightLoop(), cfg);
    h.trainBlocks(3);
    EXPECT_EQ(h.trainBlocks(100), 0u);
    FetchBlock blk = h.bpu->predictBlock();
    EXPECT_TRUE(blk.endsInCF);
    EXPECT_EQ(blk.termCls, InstClass::Jump);
}

TEST(Bpu, BtbModeAcceptsPartitionedBtb)
{
    BpuConfig cfg;
    cfg.blockBased = false;
    auto pbtb = std::make_unique<PartitionedBtb>(
        PartitionedBtb::makeDefaultConfig(1024));
    PartitionedBtb *raw = pbtb.get();
    Harness h(testutil::makeCallPattern(), cfg, std::move(pbtb));
    h.trainBlocks(500);
    EXPECT_GT(raw->stats.counter("pbtb.lookups"), 0u);
    EXPECT_GT(raw->stats.counter("pbtb.hits"), 0u);
    unsigned div = h.trainBlocks(500);
    EXPECT_LT(div, 500u / 10);
}

TEST(Bpu, SyntheticWorkloadRunsWithoutViolations)
{
    // Whole-suite smoke: a real synthesized workload, 50K blocks, with
    // immediate redirects. Internal panics would abort the test.
    const WorkloadProfile &p = findProfile("m88ksim");
    auto prog = buildProgram(p);
    SyntheticExecutor exec(*prog, p);
    TraceWindow win(exec);
    BpuConfig cfg;
    Bpu bpu(win, cfg);
    unsigned div = 0;
    for (int i = 0; i < 50000; ++i) {
        FetchBlock blk = bpu.predictBlock();
        if (blk.diverges) {
            ++div;
            bpu.redirect();
        }
        win.retireUpTo(bpu.nextVerifySeq() > 512
                       ? bpu.nextVerifySeq() - 512 : 0);
    }
    // Some divergence must exist (cold misses, biased branches) but
    // the front-end must mostly stay on track.
    EXPECT_GT(div, 0u);
    EXPECT_LT(div, 50000u / 4);
    EXPECT_GT(bpu.stats.counter("bpu.ftb_blocks"), 25000u);
}

class BpuPredictorKinds
    : public ::testing::TestWithParam<PredictorKind>
{};

TEST_P(BpuPredictorKinds, AllKindsLearnTheTightLoop)
{
    BpuConfig cfg;
    cfg.predictor = GetParam();
    Harness h(testutil::makeTightLoop(), cfg);
    h.trainBlocks(3);
    // The loop ends in an unconditional jump: every predictor kind
    // must reach zero steady-state divergence once the FTB is warm.
    EXPECT_EQ(h.trainBlocks(100), 0u)
        << predictorKindName(GetParam());
}

TEST_P(BpuPredictorKinds, AllKindsHandlePatternBranches)
{
    BpuConfig cfg;
    cfg.predictor = GetParam();
    Harness h(testutil::makeCallPattern(), cfg);
    h.trainBlocks(3000);
    unsigned div = h.trainBlocks(2000);
    // History-based predictors nail the TNTN pattern; bimodal cannot,
    // but even it must stay below the every-branch-wrong bound.
    if (GetParam() == PredictorKind::Bimodal)
        EXPECT_LT(div, 1200u);
    else
        EXPECT_LT(div, 150u) << predictorKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Kinds, BpuPredictorKinds,
                         ::testing::Values(PredictorKind::Bimodal,
                                           PredictorKind::Gshare,
                                           PredictorKind::Local2Level,
                                           PredictorKind::Hybrid));

TEST(Bpu, PredictorKindNames)
{
    EXPECT_STREQ(predictorKindName(PredictorKind::Bimodal), "bimodal");
    EXPECT_STREQ(predictorKindName(PredictorKind::Gshare), "gshare");
    EXPECT_STREQ(predictorKindName(PredictorKind::Local2Level),
                 "local2level");
    EXPECT_STREQ(predictorKindName(PredictorKind::Hybrid), "hybrid");
}

TEST(Bpu, StorageAccountingPositive)
{
    Harness ftb_mode(testutil::makeTightLoop());
    EXPECT_GT(ftb_mode.bpu->targetStructBits(), 0u);

    BpuConfig cfg;
    cfg.blockBased = false;
    Harness btb_mode(testutil::makeTightLoop(), cfg);
    EXPECT_GT(btb_mode.bpu->targetStructBits(), 0u);
}

TEST(BpuDeath, RedirectWithoutDivergence)
{
    Harness h(testutil::makeTightLoop());
    EXPECT_DEATH(h.bpu->redirect(), "no pending divergence");
}

TEST(BpuDeath, CustomBtbWithFtbMode)
{
    auto prog = testutil::makeTightLoop();
    WorkloadProfile prof;
    prof.name = "x";
    SyntheticExecutor exec(*prog, prof);
    TraceWindow win(exec);
    BpuConfig cfg; // blockBased = true
    auto pbtb = std::make_unique<PartitionedBtb>(
        PartitionedBtb::makeDefaultConfig(1024));
    EXPECT_DEATH({ Bpu bpu(win, cfg, std::move(pbtb)); },
                 "only meaningful");
}
