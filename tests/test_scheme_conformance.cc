/**
 * Scheme-conformance battery: every registered prefetch scheme —
 * current and future — is run through one shared set of contracts:
 *
 *   - tick-skip bit-parity (quiescence protocol),
 *   - obs-on/obs-off parity (telemetry is passive),
 *   - fingerprint-axis distinctness (the result cache can't confuse
 *     schemes or knob settings),
 *   - warmup-window stat identities (attribution bookkeeping),
 *   - multi-core N=1 bit-identity (the scale-out machine degenerates
 *     to the classic one).
 *
 * The parameter source is allPrefetchSchemes() plus the per-scheme
 * knob registry below: adding a scheme to the enum without a registry
 * line fails RegistryCoversEveryScheme, so a new scheme cannot ship
 * without full conformance coverage.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/presets.hh"
#include "sim/report.hh"
#include "sim/runner.hh"

using namespace fdip;

namespace
{

struct SchemeCase
{
    PrefetchScheme scheme;
    /** A scheme-private knob that must move the fingerprint. */
    const char *knobName;
    std::function<void(SimConfig &)> knobTweak;
};

/** One line per registered scheme — this is the registry the issue
 *  tracker means by "future schemes get coverage by adding one line". */
const std::vector<SchemeCase> &
registry()
{
    static const std::vector<SchemeCase> cases = {
        {PrefetchScheme::None, "ftqEntries",
         [](SimConfig &c) { c.ftqEntries = 48; }},
        {PrefetchScheme::Nlp, "nlp.degree",
         [](SimConfig &c) { c.nlp.degree = 3; }},
        {PrefetchScheme::StreamBuffer, "sb.numBuffers",
         [](SimConfig &c) { c.sb.numBuffers = 2; }},
        {PrefetchScheme::FdpNone, "fdp.scanWidth",
         [](SimConfig &c) { c.fdp.scanWidth = 5; }},
        {PrefetchScheme::FdpEnqueue, "fdp.piqEntries",
         [](SimConfig &c) { c.fdp.piqEntries = 12; }},
        {PrefetchScheme::FdpEnqueueAggressive, "fdp.issueWidth",
         [](SimConfig &c) { c.fdp.issueWidth = 3; }},
        {PrefetchScheme::FdpRemove, "fdp.recentFilterEntries",
         [](SimConfig &c) { c.fdp.recentFilterEntries = 12; }},
        {PrefetchScheme::FdpIdeal, "fdp.flushPiqOnRedirect",
         [](SimConfig &c) { c.fdp.flushPiqOnRedirect = false; }},
        {PrefetchScheme::Oracle, "oracle.lookaheadInsts",
         [](SimConfig &c) { c.oracle.lookaheadInsts = 96; }},
        {PrefetchScheme::Mana, "mana.regionBlocks",
         [](SimConfig &c) { c.mana.regionBlocks = 16; }},
        {PrefetchScheme::ShadowBtb, "shadow.bogusNoiseDenom",
         [](SimConfig &c) { c.shadow.bogusNoiseDenom = 64; }},
    };
    return cases;
}

SimConfig
smallConfig(PrefetchScheme scheme)
{
    SimConfig cfg = makeBaselineConfig("gcc", scheme);
    cfg.warmupInsts = 3 * 1000;
    cfg.measureInsts = 12 * 1000;
    return cfg;
}

std::string
firstDiff(const std::string &a, const std::string &b)
{
    std::size_t i = 0, j = 0, line = 1;
    while (i < a.size() && j < b.size()) {
        std::size_t ae = a.find('\n', i);
        std::size_t be = b.find('\n', j);
        std::string la = a.substr(i, ae - i);
        std::string lb = b.substr(j, be - j);
        if (la != lb) {
            return "line " + std::to_string(line) + ":\n  a: " + la +
                "\n  b: " + lb;
        }
        if (ae == std::string::npos || be == std::string::npos)
            break;
        i = ae + 1;
        j = be + 1;
        ++line;
    }
    return "(no line diff found)";
}

std::string
tmpPath(const std::string &tag)
{
    std::string path = ::testing::TempDir() + "fdip-conf-" + tag;
    std::remove(path.c_str());
    return path;
}

class SchemeConformance : public ::testing::TestWithParam<std::size_t>
{
  protected:
    const SchemeCase &c() const { return registry()[GetParam()]; }
};

} // namespace

TEST(SchemeConformanceRegistry, RegistryCoversEveryScheme)
{
    const auto &all = allPrefetchSchemes();
    ASSERT_EQ(registry().size(), all.size())
        << "every scheme in allPrefetchSchemes() needs exactly one "
        << "conformance-registry line";
    for (std::size_t i = 0; i < all.size(); ++i) {
        EXPECT_EQ(registry()[i].scheme, all[i])
            << "registry()[" << i << "] out of order vs "
            << schemeName(all[i]);
    }
}

TEST_P(SchemeConformance, TickSkipBitParity)
{
    SimConfig fast = smallConfig(c().scheme);
    fast.forceTick = false;
    SimConfig slow = smallConfig(c().scheme);
    slow.forceTick = true;
    std::string a = serializeResults(simulate(fast));
    std::string b = serializeResults(simulate(slow));
    ASSERT_EQ(a, b) << schemeName(c().scheme) << ": " << firstDiff(a, b);
}

TEST_P(SchemeConformance, ObsOnOffParity)
{
    SimConfig plain = smallConfig(c().scheme);
    SimConfig obs = smallConfig(c().scheme);
    std::string tag = schemeName(c().scheme);
    obs.obs.samplesPath = tmpPath(tag + ".jsonl");
    obs.obs.tracePath = tmpPath(tag + "-trace.json");
    obs.obs.sampleIntervalCycles = 500;
    std::string a = serializeResults(simulate(plain));
    std::string b = serializeResults(simulate(obs));
    ASSERT_EQ(a, b) << schemeName(c().scheme)
                    << " (telemetry perturbed the simulation): "
                    << firstDiff(a, b);
    std::remove(obs.obs.samplesPath.c_str());
    std::remove(obs.obs.tracePath.c_str());
}

TEST_P(SchemeConformance, FingerprintKnobAxis)
{
    SimConfig base = smallConfig(c().scheme);
    SimConfig tweaked = smallConfig(c().scheme);
    c().knobTweak(tweaked);
    EXPECT_NE(base.fingerprint(), tweaked.fingerprint())
        << schemeName(c().scheme) << ": knob " << c().knobName
        << " does not reach SimConfig::fingerprint() — the result "
        << "cache would alias its settings";
    // Telemetry must NOT reach the fingerprint (cache reuse across
    // instrumented and plain runs is deliberate).
    SimConfig obs = smallConfig(c().scheme);
    obs.obs.samplesPath = "/tmp/never-written.jsonl";
    EXPECT_EQ(base.fingerprint(), obs.fingerprint());
}

TEST_P(SchemeConformance, WarmupWindowStatIdentities)
{
    SimResults r = simulate(smallConfig(c().scheme));
    const char *name = schemeName(c().scheme);

    // Attribution identities over the measurement window.
    EXPECT_DOUBLE_EQ(r.stats.value("pfattr.timely"),
                     r.stats.value("mem.pfbuf_hits") +
                         r.stats.value("mem.streambuf_hits"))
        << name;
    EXPECT_DOUBLE_EQ(r.stats.value("pfattr.late"),
                     r.stats.value("mem.inflight_prefetch_merges"))
        << name;
    EXPECT_EQ(static_cast<double>(r.pfTimeliness.count()),
              r.stats.value("pfattr.timely"))
        << name;
    // One FTQ-occupancy sample per measured cycle, skipped or ticked.
    EXPECT_EQ(r.ftqOccupancy.count(), r.cycles) << name;

    // Coverage is a true fraction (useful / (useful + misses)).
    // Accuracy/timely/late are per-*issued* ratios and may slightly
    // exceed 1 when warmup-issued prefetches are consumed inside the
    // measurement window (oracle does this), so only non-negativity
    // and a sanity ceiling hold for them.
    EXPECT_GE(r.prefetchCoverage, 0.0) << name;
    EXPECT_LE(r.prefetchCoverage, 1.0) << name;
    for (double v : {r.prefetchAccuracy, r.prefetchTimely,
                     r.prefetchLate}) {
        EXPECT_GE(v, 0.0) << name;
        EXPECT_LE(v, 2.0) << name;
    }
    EXPECT_GT(r.ipc, 0.0) << name;
}

TEST_P(SchemeConformance, MultiCoreN1BitIdentity)
{
    SimConfig classic = smallConfig(c().scheme);
    SimConfig n1 = smallConfig(c().scheme);
    applyMultiCore(n1, 1);
    std::string a = serializeResults(simulate(classic));
    std::string b = serializeResults(simulate(n1));
    ASSERT_EQ(a, b) << schemeName(c().scheme)
                    << " (1-core machine diverged from classic): "
                    << firstDiff(a, b);
}

TEST(SchemeConformanceRegistry, SchemeAxisIsPairwiseDistinct)
{
    // Same workload and knobs, different scheme => different
    // fingerprint, for every registered pair.
    const auto &all = allPrefetchSchemes();
    for (std::size_t i = 0; i < all.size(); ++i) {
        for (std::size_t j = i + 1; j < all.size(); ++j) {
            SimConfig a = smallConfig(all[i]);
            SimConfig b = smallConfig(all[j]);
            EXPECT_NE(a.fingerprint(), b.fingerprint())
                << schemeName(all[i]) << " vs " << schemeName(all[j]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeConformance,
    ::testing::Range(std::size_t(0), registry().size()),
    [](const ::testing::TestParamInfo<std::size_t> &info) {
        std::string n = schemeName(registry()[info.param].scheme);
        for (char &ch : n) {
            if (ch == '-')
                ch = '_';
        }
        return n;
    });
