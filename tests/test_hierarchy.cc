/** Integration tests for the memory hierarchy. */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

using namespace fdip;

namespace
{

MemConfig
smallCfg()
{
    MemConfig c;
    c.l1i.sizeBytes = 1024; // small so eviction is easy to force
    c.l1i.assoc = 2;
    c.l1i.blockBytes = 32;
    c.l2.sizeBytes = 64 * 1024;
    c.l2.assoc = 4;
    c.l2.blockBytes = 32;
    c.l2HitLatency = 12;
    c.dramLatency = 70;
    c.l2BusBytesPerCycle = 8;  // 4 cycles per 32B block
    c.memBusBytesPerCycle = 4; // 8 cycles per block
    c.l1TagPorts = 2;
    c.prefetchBufferEntries = 4;
    return c;
}

/** Advance until the hierarchy's pending fills (if any) land. */
void
drain(MemHierarchy &mem, Cycle upto)
{
    for (Cycle t = 0; t <= upto; ++t)
        mem.tick(t);
}

} // namespace

TEST(Hierarchy, ColdMissGoesToMemoryWithBothBusLatencies)
{
    MemHierarchy mem(smallCfg());
    mem.tick(0);
    mem.reserveTagPort();
    FetchAccess a = mem.demandFetch(0x10000, 0);
    EXPECT_FALSE(a.hitL1);
    EXPECT_FALSE(a.retry);
    // L2 miss path: l2 lat (12) + dram (70) + mem bus (8) + l2 bus (4).
    EXPECT_EQ(a.readyAt, 0u + 12 + 70 + 8 + 4);
}

TEST(Hierarchy, L2HitPathLatency)
{
    MemHierarchy mem(smallCfg());
    mem.tick(0);
    mem.reserveTagPort();
    FetchAccess a = mem.demandFetch(0x10000, 0);
    drain(mem, a.readyAt); // fills L1 and L2
    // Evict it from the tiny L1 with conflicting fills.
    Addr conflict = 0x10000;
    for (int i = 1; i <= 2; ++i) {
        conflict += 1024; // same L1 set
        mem.l1i().insert(conflict);
    }
    EXPECT_FALSE(mem.l1i().probe(0x10000));

    mem.tick(2000);
    mem.reserveTagPort();
    FetchAccess b = mem.demandFetch(0x10000, 2000);
    EXPECT_FALSE(b.hitL1);
    EXPECT_EQ(b.readyAt, 2000u + 12 + 4); // L2 hit + l2 bus
}

TEST(Hierarchy, HitIsOneCycleLatency)
{
    MemHierarchy mem(smallCfg());
    mem.tick(0);
    mem.l1i().insert(0x10000);
    mem.reserveTagPort();
    FetchAccess a = mem.demandFetch(0x10000, 5);
    EXPECT_TRUE(a.hitL1);
    EXPECT_EQ(a.readyAt, 5u + 1);
}

TEST(Hierarchy, PrefetchFillsBufferThenPromotesOnDemand)
{
    MemHierarchy mem(smallCfg());
    mem.tick(0);
    auto r = mem.issuePrefetch(0x20000, 0, FillDest::PrefetchBuffer);
    EXPECT_EQ(r, MemHierarchy::PfIssue::Issued);
    drain(mem, 200);
    EXPECT_TRUE(mem.pfBuffer().probe(0x20000));
    EXPECT_FALSE(mem.l1i().probe(0x20000));

    mem.tick(300);
    mem.reserveTagPort();
    FetchAccess a = mem.demandFetch(0x20000, 300);
    EXPECT_TRUE(a.hitPrefetchBuffer);
    EXPECT_EQ(a.readyAt, 300u + 1);
    EXPECT_TRUE(mem.l1i().probe(0x20000));   // promoted
    EXPECT_FALSE(mem.pfBuffer().probe(0x20000)); // freed
}

TEST(Hierarchy, DemandMergesWithInflightPrefetch)
{
    MemHierarchy mem(smallCfg());
    mem.tick(0);
    auto r = mem.issuePrefetch(0x30000, 0, FillDest::PrefetchBuffer);
    ASSERT_EQ(r, MemHierarchy::PfIssue::Issued);
    Cycle pf_ready = mem.mshrs().find(0x30000)->readyAt;

    // Demand arrives halfway through the fill.
    mem.tick(10);
    mem.reserveTagPort();
    FetchAccess a = mem.demandFetch(0x30000, 10);
    EXPECT_TRUE(a.mergedInflight);
    EXPECT_TRUE(a.mergedInflightPrefetch);
    EXPECT_EQ(a.readyAt, pf_ready); // inherits the fill's timing
    // The fill is retargeted straight into the L1.
    EXPECT_EQ(mem.mshrs().find(0x30000)->dest, FillDest::DemandL1);
    drain(mem, pf_ready);
    EXPECT_TRUE(mem.l1i().probe(0x30000));
    EXPECT_FALSE(mem.pfBuffer().probe(0x30000));
}

TEST(Hierarchy, RedundantPrefetchSuppressed)
{
    MemHierarchy mem(smallCfg());
    mem.tick(0);
    ASSERT_EQ(mem.issuePrefetch(0x40000, 0, FillDest::PrefetchBuffer),
              MemHierarchy::PfIssue::Issued);
    // Same block while in flight: redundant.
    EXPECT_EQ(mem.issuePrefetch(0x40000, 1, FillDest::PrefetchBuffer),
              MemHierarchy::PfIssue::Redundant);
    drain(mem, 200);
    // Now it sits in the prefetch buffer: still redundant.
    EXPECT_EQ(mem.issuePrefetch(0x40000, 300, FillDest::PrefetchBuffer),
              MemHierarchy::PfIssue::Redundant);
}

TEST(Hierarchy, PrefetchDeniedWhenBusBusy)
{
    MemConfig cfg = smallCfg();
    MemHierarchy mem(cfg);
    mem.tick(0);
    mem.reserveTagPort();
    // A demand miss occupies the L2 bus (after L2 latency).
    mem.demandFetch(0x50000, 0);
    // The L2 data transfer occupies the bus; a prefetch that needs the
    // same bus in that window is denied.
    auto r = mem.issuePrefetch(0x51000, 0, FillDest::PrefetchBuffer);
    EXPECT_EQ(r, MemHierarchy::PfIssue::NoResource);
}

TEST(Hierarchy, PrefetchBudgetEnforced)
{
    MemConfig cfg = smallCfg();
    cfg.l2BusBytesPerCycle = 1024; // effectively infinite bandwidth
    cfg.memBusBytesPerCycle = 1024;
    MemHierarchy mem(cfg);
    mem.setMaxOutstandingPrefetches(2);
    mem.tick(0);
    EXPECT_EQ(mem.issuePrefetch(0x60000, 0, FillDest::PrefetchBuffer),
              MemHierarchy::PfIssue::Issued);
    mem.tick(1);
    EXPECT_EQ(mem.issuePrefetch(0x61000, 1, FillDest::PrefetchBuffer),
              MemHierarchy::PfIssue::Issued);
    mem.tick(2);
    EXPECT_EQ(mem.issuePrefetch(0x62000, 2, FillDest::PrefetchBuffer),
              MemHierarchy::PfIssue::NoResource);
}

TEST(Hierarchy, TagPortsResetEachCycle)
{
    MemHierarchy mem(smallCfg()); // 2 ports
    mem.tick(0);
    EXPECT_TRUE(mem.reserveTagPort());
    EXPECT_TRUE(mem.reserveTagPort());
    EXPECT_FALSE(mem.reserveTagPort());
    EXPECT_EQ(mem.freeTagPorts(), 0u);
    mem.tick(1);
    EXPECT_EQ(mem.freeTagPorts(), 2u);
    EXPECT_TRUE(mem.reserveTagPort());
}

namespace
{

struct RecordingFillClient : StreamFillClient
{
    std::vector<std::tuple<std::uint32_t, std::uint32_t, Addr>> fills;
    void
    streamFill(std::uint32_t sid, std::uint32_t slot, Addr addr) override
    {
        fills.emplace_back(sid, slot, addr);
    }
};

} // namespace

TEST(Hierarchy, StreamFillsDispatchToClient)
{
    MemHierarchy mem(smallCfg());
    RecordingFillClient client;
    mem.setStreamFillClient(&client);
    mem.tick(0);
    ASSERT_EQ(mem.issuePrefetch(0x70000, 0, FillDest::StreamBuffer,
                                /*stream_id=*/3, /*slot_id=*/1),
              MemHierarchy::PfIssue::Issued);
    drain(mem, 200);
    ASSERT_EQ(client.fills.size(), 1u);
    EXPECT_EQ(std::get<0>(client.fills[0]), 3u);
    EXPECT_EQ(std::get<1>(client.fills[0]), 1u);
    EXPECT_EQ(std::get<2>(client.fills[0]), 0x70000u);
}

TEST(Hierarchy, MissFillsBothLevels)
{
    MemHierarchy mem(smallCfg());
    mem.tick(0);
    mem.reserveTagPort();
    FetchAccess a = mem.demandFetch(0x80000, 0);
    EXPECT_FALSE(mem.l2().probe(0x80000));
    drain(mem, a.readyAt);
    EXPECT_TRUE(mem.l1i().probe(0x80000));
    EXPECT_TRUE(mem.l2().probe(0x80000));
}

TEST(Hierarchy, CollectStatsAggregatesComponents)
{
    MemHierarchy mem(smallCfg());
    mem.tick(0);
    mem.reserveTagPort();
    mem.demandFetch(0x90000, 0);
    StatSet all;
    mem.collectStats(all);
    EXPECT_GT(all.counter("mem.demand_accesses"), 0u);
    EXPECT_GT(all.counter("l1i.cache.misses"), 0u);
    EXPECT_GT(all.counter("l2bus.bus.busy_cycles"), 0u);
    EXPECT_GT(all.counter("dram.reads"), 0u);
}
