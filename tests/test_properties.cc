/**
 * Whole-system property tests: invariants that must hold for every
 * (workload x scheme) combination, checked over a grid.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "sim/presets.hh"
#include "sim/runner.hh"

using namespace fdip;

namespace
{

using GridPoint = std::tuple<std::string, PrefetchScheme>;

std::vector<GridPoint>
grid()
{
    std::vector<GridPoint> points;
    for (const char *wl : {"li", "deltablue", "perl", "gcc"}) {
        for (auto scheme : {PrefetchScheme::None, PrefetchScheme::Nlp,
                            PrefetchScheme::StreamBuffer,
                            PrefetchScheme::FdpNone,
                            PrefetchScheme::FdpEnqueue,
                            PrefetchScheme::FdpEnqueueAggressive,
                            PrefetchScheme::FdpRemove,
                            PrefetchScheme::FdpIdeal,
                            PrefetchScheme::Oracle}) {
            points.emplace_back(wl, scheme);
        }
    }
    return points;
}

std::string
pointName(const ::testing::TestParamInfo<GridPoint> &info)
{
    std::string s = std::get<0>(info.param);
    s += "_";
    s += schemeName(std::get<1>(info.param));
    for (auto &c : s) {
        if (c == '-')
            c = '_';
    }
    return s;
}

} // namespace

class SchemeGrid : public ::testing::TestWithParam<GridPoint>
{
  protected:
    SimResults
    runPoint()
    {
        auto [wl, scheme] = GetParam();
        SimConfig cfg = makeBaselineConfig(wl, scheme);
        cfg.warmupInsts = 25 * 1000;
        cfg.measureInsts = 100 * 1000;
        return simulate(cfg);
    }
};

TEST_P(SchemeGrid, InvariantsHold)
{
    SimResults r = runPoint();

    // Completion and rate sanity.
    EXPECT_GE(r.instructions, 100 * 1000u - 4);
    EXPECT_GT(r.ipc, 0.05);
    EXPECT_LE(r.ipc, 4.0 + 1e-9); // retire width bound

    // Fractions stay in range.
    EXPECT_GE(r.prefetchCoverage, 0.0);
    EXPECT_LE(r.prefetchCoverage, 1.0);
    EXPECT_GE(r.l2BusUtil, 0.0);
    EXPECT_LE(r.l2BusUtil, 1.0);
    EXPECT_GE(r.memBusUtil, 0.0);
    EXPECT_LE(r.memBusUtil, 1.0);
    EXPECT_GE(r.mpki, 0.0);

    // Accounting identities.
    EXPECT_GE(r.stats.counter("backend.delivered"), r.instructions);
    // Scheduled/performed redirects pair up to window-boundary skew
    // (a redirect scheduled in warmup can fire in measurement).
    EXPECT_NEAR(r.stats.value("bpu.redirects"),
                r.stats.value("fetch.redirects_scheduled"), 2.0);
    EXPECT_EQ(r.ftqOccupancy.count(), r.cycles);

    // Prefetch accounting: issues only when a prefetcher exists.
    auto [wl, scheme] = GetParam();
    if (scheme == PrefetchScheme::None) {
        EXPECT_EQ(r.stats.counter("mem.prefetches_issued"), 0u);
    } else {
        EXPECT_GT(r.stats.counter("mem.prefetch_attempts"), 0u);
    }

    // The L1-I can never hold more blocks than its capacity.
    // (Indirectly checked: fills - evictions - invalidations is
    // bounded by the block count.)
    double resident = r.stats.value("l1i.cache.fills") -
        r.stats.value("l1i.cache.evictions") -
        r.stats.value("l1i.cache.invalidations");
    EXPECT_LE(resident, 16.0 * 1024 / 32 + 1);
}

TEST_P(SchemeGrid, DeterministicReplay)
{
    SimResults a = runPoint();
    SimResults b = runPoint();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stats.counter("mem.prefetches_issued"),
              b.stats.counter("mem.prefetches_issued"));
    EXPECT_EQ(a.stats.counter("bpu.divergences"),
              b.stats.counter("bpu.divergences"));
}

INSTANTIATE_TEST_SUITE_P(AllPoints, SchemeGrid,
                         ::testing::ValuesIn(grid()), pointName);

// ---------------------------------------------------------------------
// Cross-scheme ordering properties on a pressured workload.
// ---------------------------------------------------------------------

namespace
{

SimResults
quickRun(const char *wl, PrefetchScheme scheme,
         const std::function<void(SimConfig &)> &tweak = nullptr)
{
    SimConfig cfg = makeBaselineConfig(wl, scheme);
    cfg.warmupInsts = 25 * 1000;
    cfg.measureInsts = 100 * 1000;
    if (tweak)
        tweak(cfg);
    return simulate(cfg);
}

} // namespace

TEST(SchemeOrdering, EveryPrefetcherBeatsBaselineUnderPressure)
{
    SimResults base = quickRun("gcc", PrefetchScheme::None);
    for (auto scheme : {PrefetchScheme::Nlp, PrefetchScheme::FdpNone,
                        PrefetchScheme::FdpRemove,
                        PrefetchScheme::Oracle}) {
        SimResults r = quickRun("gcc", scheme);
        EXPECT_GT(speedupOver(base, r), 0.0) << schemeName(scheme);
    }
}

TEST(SchemeOrdering, FilteredFdpUsesLessBandwidthThanUnfiltered)
{
    SimResults nofil = quickRun("gcc", PrefetchScheme::FdpNone);
    for (auto scheme : {PrefetchScheme::FdpEnqueue,
                        PrefetchScheme::FdpRemove,
                        PrefetchScheme::FdpIdeal}) {
        SimResults r = quickRun("gcc", scheme);
        EXPECT_LT(r.l2BusUtil, nofil.l2BusUtil) << schemeName(scheme);
    }
}

TEST(SchemeOrdering, BiggerCacheNeverHurtsBaseline)
{
    double prev_ipc = 0.0;
    for (unsigned kb : {8u, 16u, 32u, 64u}) {
        SimResults r = quickRun("gcc", PrefetchScheme::None,
                                [kb](SimConfig &cfg) {
                                    cfg.mem.l1i.sizeBytes =
                                        std::uint64_t(kb) * 1024;
                                });
        EXPECT_GE(r.ipc, prev_ipc * 0.995) << kb << "KB";
        prev_ipc = r.ipc;
    }
}

TEST(SchemeOrdering, DeeperFtqNeverHurtsFdpMuch)
{
    double prev = -1.0;
    for (unsigned depth : {4u, 16u, 64u}) {
        SimResults base = quickRun("gcc", PrefetchScheme::None,
                                   [depth](SimConfig &cfg) {
                                       cfg.ftqEntries = depth;
                                   });
        SimResults fdp = quickRun("gcc", PrefetchScheme::FdpRemove,
                                  [depth](SimConfig &cfg) {
                                      cfg.ftqEntries = depth;
                                  });
        double s = speedupOver(base, fdp);
        EXPECT_GT(s, prev - 0.05) << depth;
        prev = s;
    }
}
