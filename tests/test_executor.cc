/** Tests for the stochastic executor and the trace window. */

#include <gtest/gtest.h>

#include <vector>

#include "test_helpers.hh"
#include "trace/code_image.hh"
#include "trace/executor.hh"
#include "trace/profile.hh"
#include "trace/synth_builder.hh"

using namespace fdip;

namespace
{

WorkloadProfile
miniProfile()
{
    WorkloadProfile p;
    p.name = "mini";
    p.seed = 7;
    return p;
}

} // namespace

TEST(Executor, TightLoopRepeatsForever)
{
    auto prog = testutil::makeTightLoop();
    SyntheticExecutor ex(*prog, miniProfile());
    Addr base = prog->base;
    // 8-instruction loop; pc sequence must cycle with period 8.
    std::vector<Addr> first;
    for (int i = 0; i < 8; ++i)
        first.push_back(ex.next().pc);
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 8; ++i) {
            TraceInstr ti = ex.next();
            EXPECT_EQ(ti.pc, first[i]);
        }
    }
    EXPECT_EQ(first[0], base);
}

TEST(Executor, JumpIsAlwaysTaken)
{
    auto prog = testutil::makeTightLoop();
    SyntheticExecutor ex(*prog, miniProfile());
    for (int i = 0; i < 64; ++i) {
        TraceInstr ti = ex.next();
        if (ti.cls == InstClass::Jump) {
            EXPECT_TRUE(ti.taken);
            EXPECT_EQ(ti.target, prog->funcs[0].blocks[0].start);
        }
    }
}

TEST(Executor, PatternBranchFollowsPattern)
{
    auto prog = testutil::makeCallPattern();
    SyntheticExecutor ex(*prog, miniProfile());
    std::vector<bool> outcomes;
    for (int i = 0; i < 400 && outcomes.size() < 8; ++i) {
        TraceInstr ti = ex.next();
        if (ti.cls == InstClass::CondBr)
            outcomes.push_back(ti.taken);
    }
    ASSERT_GE(outcomes.size(), 8u);
    // pattern 0b01, len 2: T, N, T, N, ...
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(outcomes[i], i % 2 == 0) << "at " << i;
}

TEST(Executor, CallReturnPairing)
{
    auto prog = testutil::makeCallPattern();
    SyntheticExecutor ex(*prog, miniProfile());
    std::vector<Addr> shadow;
    for (int i = 0; i < 5000; ++i) {
        TraceInstr ti = ex.next();
        if (isCall(ti.cls)) {
            shadow.push_back(ti.pc + instBytes);
        } else if (ti.cls == InstClass::Return) {
            ASSERT_FALSE(shadow.empty());
            EXPECT_EQ(ti.target, shadow.back());
            shadow.pop_back();
        }
    }
}

TEST(Executor, NextPcChainsForTightLoop)
{
    auto prog = testutil::makeTightLoop();
    SyntheticExecutor ex(*prog, miniProfile());
    TraceInstr prev = ex.next();
    for (int i = 0; i < 1000; ++i) {
        TraceInstr cur = ex.next();
        EXPECT_EQ(cur.pc, prev.nextPc());
        prev = cur;
    }
}

// ---------------------------------------------------------------------
// Whole-suite properties.
// ---------------------------------------------------------------------

class ExecutorSuite : public ::testing::TestWithParam<std::string>
{};

TEST_P(ExecutorSuite, TraceIsConsistentWithImage)
{
    const WorkloadProfile &p = findProfile(GetParam());
    auto prog = buildProgram(p);
    CodeImage img(*prog);
    SyntheticExecutor ex(*prog, p);

    TraceInstr prev = ex.next();
    for (int i = 0; i < 100 * 1000; ++i) {
        TraceInstr ti = ex.next();
        // Correct-path stream: each pc follows from the previous one.
        ASSERT_EQ(ti.pc, prev.nextPc());
        // Every pc lies inside the code image.
        ASSERT_TRUE(img.contains(ti.pc));
        // The dynamic class matches the static image.
        const StaticInst &si = img.at(ti.pc);
        ASSERT_EQ(ti.cls, si.cls);
        // Direct control flow targets the static target.
        if (isDirect(ti.cls) && isControl(ti.cls))
            ASSERT_EQ(ti.target, si.target);
        // Unconditional control flow is always taken.
        if (isUnconditional(ti.cls))
            ASSERT_TRUE(ti.taken);
        prev = ti;
    }
}

TEST_P(ExecutorSuite, Deterministic)
{
    const WorkloadProfile &p = findProfile(GetParam());
    auto prog = buildProgram(p);
    SyntheticExecutor a(*prog, p), b(*prog, p);
    for (int i = 0; i < 20000; ++i) {
        TraceInstr x = a.next(), y = b.next();
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(x.taken, y.taken);
        ASSERT_EQ(x.target, y.target);
    }
}

TEST_P(ExecutorSuite, DynamicMixIsReasonable)
{
    const WorkloadProfile &p = findProfile(GetParam());
    auto prog = buildProgram(p);
    SyntheticExecutor ex(*prog, p);
    for (int i = 0; i < 200 * 1000; ++i)
        ex.next();
    const StatSet &s = ex.classStats();
    double total = static_cast<double>(ex.emitted());
    double branches = s.value("dyn.cond") + s.value("dyn.jump") +
        s.value("dyn.call") + s.value("dyn.ret") +
        s.value("dyn.indcall") + s.value("dyn.indjump");
    // SPEC-class codes are ~10-30% control flow.
    EXPECT_GT(branches / total, 0.05);
    EXPECT_LT(branches / total, 0.45);
    EXPECT_GT(s.value("dyn.cond"), 0.0);
    EXPECT_GT(s.value("dyn.call"), 0.0);
    // Calls and returns balance up to the live call-stack depth at
    // the cutoff point.
    double imbalance = s.value("dyn.call") + s.value("dyn.indcall") -
        s.value("dyn.ret");
    EXPECT_GE(imbalance, 0.0);
    EXPECT_LE(imbalance, 32.0);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ExecutorSuite,
                         ::testing::ValuesIn(allWorkloadNames()));

// ---------------------------------------------------------------------
// TraceWindow.
// ---------------------------------------------------------------------

TEST(TraceWindow, RandomAccessGeneratesForward)
{
    auto prog = testutil::makeTightLoop();
    SyntheticExecutor ex(*prog, miniProfile());
    TraceWindow win(ex);
    const TraceInstr &i5 = win.at(5);
    EXPECT_EQ(win.windowSize(), 6u);
    EXPECT_EQ(i5.pc, prog->base + 5 * instBytes);
    // Earlier entries remain accessible.
    EXPECT_EQ(win.at(0).pc, prog->base);
}

TEST(TraceWindow, RetireReleasesStorage)
{
    auto prog = testutil::makeTightLoop();
    SyntheticExecutor ex(*prog, miniProfile());
    TraceWindow win(ex);
    win.at(99);
    EXPECT_EQ(win.windowSize(), 100u);
    win.retireUpTo(50);
    EXPECT_EQ(win.baseSeq(), 50u);
    EXPECT_EQ(win.windowSize(), 50u);
    EXPECT_EQ(win.at(50).pc, win.at(50).pc); // still accessible
}

TEST(TraceWindowDeath, BelowBasePanics)
{
    auto prog = testutil::makeTightLoop();
    SyntheticExecutor ex(*prog, miniProfile());
    TraceWindow win(ex);
    win.at(10);
    win.retireUpTo(5);
    EXPECT_DEATH(win.at(2), "below window base");
}

TEST(TraceWindow, RetireBeyondGeneratedIsSafe)
{
    auto prog = testutil::makeTightLoop();
    SyntheticExecutor ex(*prog, miniProfile());
    TraceWindow win(ex);
    win.at(3);
    win.retireUpTo(10); // beyond what exists
    EXPECT_EQ(win.at(10).pc, win.at(10).pc);
    EXPECT_GE(win.baseSeq(), 4u);
}
