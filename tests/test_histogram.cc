/** Unit tests for the histogram. */

#include <gtest/gtest.h>

#include "common/histogram.hh"

using namespace fdip;

TEST(Histogram, EmptyDefaults)
{
    Histogram h(10);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_DOUBLE_EQ(h.fraction(3), 0.0);
}

TEST(Histogram, MeanAndBuckets)
{
    Histogram h(10);
    h.sample(2);
    h.sample(2);
    h.sample(4);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_NEAR(h.mean(), 8.0 / 3.0, 1e-12);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h(10);
    h.sample(1, 5);
    h.sample(3, 5);
    EXPECT_EQ(h.count(), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, OverflowClampsToLastBucket)
{
    Histogram h(4);
    h.sample(100);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Histogram, Percentiles)
{
    Histogram h(100);
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.sample(v);
    EXPECT_EQ(h.percentile(0.5), 50u);
    EXPECT_EQ(h.percentile(0.9), 90u);
    EXPECT_EQ(h.percentile(1.0), 100u);
    EXPECT_EQ(h.percentile(0.01), 1u);
}

TEST(Histogram, Fractions)
{
    Histogram h(8);
    h.sample(0);
    h.sample(0);
    h.sample(5);
    h.sample(7);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
    EXPECT_DOUBLE_EQ(h.fractionAtLeast(5), 0.5);
    EXPECT_DOUBLE_EQ(h.fractionAtLeast(0), 1.0);
    EXPECT_DOUBLE_EQ(h.fractionAtLeast(8), 0.0);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h(4);
    h.sample(1);
    h.sample(2);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.bucket(1), 0u);
}

TEST(Histogram, RenderContainsLabelAndRows)
{
    Histogram h(4);
    h.sample(2);
    std::string out = h.render("ftq occupancy");
    EXPECT_NE(out.find("ftq occupancy"), std::string::npos);
    EXPECT_NE(out.find("2"), std::string::npos);
    EXPECT_NE(out.find("100.00%"), std::string::npos);
}

TEST(HistogramDeath, BucketOutOfRange)
{
    Histogram h(4);
    EXPECT_DEATH(h.bucket(5), "out of range");
}

TEST(Histogram, ZeroMaxValueIsSingleOverflowBucket)
{
    // Histogram{0} is the "empty" shape SimResults defaults to: one
    // bucket that absorbs everything.
    Histogram h(0);
    EXPECT_EQ(h.numBuckets(), 1u);
    h.sample(0);
    h.sample(17);
    h.sample(1 << 30);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.bucket(0), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, WeightedTotalTracksSamplesAndReset)
{
    Histogram h(8);
    EXPECT_EQ(h.weightedTotal(), 0u);
    h.sample(2, 3);
    h.sample(4);
    // 2*3 + 4*1; with count() this recovers the running mean delta
    // between two snapshots (the interval sampler's FTQ-occupancy
    // column).
    EXPECT_EQ(h.weightedTotal(), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.5);
    h.reset();
    EXPECT_EQ(h.weightedTotal(), 0u);
    EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, OverflowClampWeightsOverflowBucketIndex)
{
    Histogram h(4);
    h.sample(100); // clamps into bucket 4
    EXPECT_EQ(h.bucket(4), 1u);
    // The weighted sum records the clamped index, not the raw value,
    // so mean() stays within the bucket range.
    EXPECT_EQ(h.weightedTotal(), 4u);
}
