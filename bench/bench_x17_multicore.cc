/**
 * R-X17 — multi-core scale-out sweep: fetch-directed prefetching when
 * 1/2/4 cores share one L2, its buses, and DRAM (docs/MULTICORE.md).
 * Cores run private copies of the workload (per-core seeds, tagged
 * private address spaces), so every added core is pure contention:
 * shared-L2 capacity pressure plus bus bandwidth pressure.
 *
 * Axes:
 *  - core count (1 / 2 / 4; override with FDIP_X17_CORES=c1,c2,...),
 *  - shared-L2 size (capacity-starved 256KB vs the 1MB baseline),
 *  - prefetch scheme (no prefetching vs FDP remove-CPF), so the sweep
 *    shows whether FDIP's prefetch traffic is still a win when the
 *    buses it rides are contended.
 *
 * The c1 x 1MB points are the classic single-core machine bit-for-bit
 * (verified by tests/test_multicore.cc and the golden suite).
 */

#include <cstdlib>
#include <string>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

constexpr std::uint64_t kL2Sizes[] = {256 * 1024, 1024 * 1024};

/** Swept core counts; FDIP_X17_CORES ("1,2,4" style) overrides. */
const std::vector<unsigned> &
coreCounts()
{
    static const std::vector<unsigned> counts = [] {
        std::vector<unsigned> out;
        const char *env = std::getenv("FDIP_X17_CORES");
        if (env != nullptr && env[0] != '\0') {
            std::string s(env);
            for (std::size_t i = 0; i < s.size();) {
                std::size_t comma = s.find(',', i);
                std::string tok = s.substr(i, comma - i);
                unsigned n =
                    static_cast<unsigned>(std::strtoul(tok.c_str(),
                                                       nullptr, 10));
                fatal_if(n == 0, "FDIP_X17_CORES: bad core count '%s'",
                         tok.c_str());
                out.push_back(n);
                if (comma == std::string::npos)
                    break;
                i = comma + 1;
            }
        }
        if (out.empty())
            out = {1u, 2u, 4u};
        return out;
    }();
    return counts;
}

Runner::Tweak
scaleTweak(unsigned cores, std::uint64_t l2_bytes)
{
    return [cores, l2_bytes](SimConfig &cfg) {
        applyMultiCore(cfg, cores);
        cfg.mem.l2.sizeBytes = l2_bytes;
    };
}

std::string
scaleKey(unsigned cores, std::uint64_t l2_bytes)
{
    return strprintf("c%u-l2_%uk", cores,
                     static_cast<unsigned>(l2_bytes / 1024));
}

std::string
scaleLabel(unsigned cores, std::uint64_t l2_bytes)
{
    return strprintf("%u core(s), %uKB shared L2", cores,
                     static_cast<unsigned>(l2_bytes / 1024));
}

std::vector<TweakVariant>
scaleVariants()
{
    std::vector<TweakVariant> out;
    for (unsigned cores : coreCounts()) {
        for (std::uint64_t l2 : kL2Sizes) {
            out.push_back({scaleKey(cores, l2), scaleLabel(cores, l2),
                           scaleTweak(cores, l2)});
        }
    }
    return out;
}

const std::vector<std::string> &
workloads()
{
    static const std::vector<std::string> w = {"gcc", "go", "groff"};
    return w;
}

/** Core 0's own-window IPC (the aggregate row on a 1-core machine). */
double
core0Ipc(const SimResults &r)
{
    return r.perCore.empty() ? r.ipc : r.perCore[0].ipc;
}

void
render(Runner &runner)
{
    auto point = [&runner](const std::string &wl, PrefetchScheme s,
                           unsigned cores,
                           std::uint64_t l2) -> const SimResults & {
        return runner.run(wl, s, scaleKey(cores, l2),
                          scaleTweak(cores, l2));
    };
    auto mean_over = [&](PrefetchScheme s, unsigned cores,
                         std::uint64_t l2, auto &&f) {
        std::vector<double> v;
        for (const auto &wl : workloads())
            v.push_back(f(point(wl, s, cores, l2)));
        return mean(v);
    };

    for (std::uint64_t l2 : kL2Sizes) {
        AsciiTable t({"cores", "core-0 ipc (fdp)",
                      "vs 1-core", "fdp vs none", "pf coverage",
                      "membus util"});
        double solo = mean_over(PrefetchScheme::FdpRemove,
                                coreCounts().front(), l2, core0Ipc);
        for (unsigned cores : coreCounts()) {
            double fdp = mean_over(PrefetchScheme::FdpRemove, cores,
                                   l2, core0Ipc);
            double none = mean_over(PrefetchScheme::None, cores, l2,
                                    core0Ipc);
            t.addRow({AsciiTable::integer(cores),
                      AsciiTable::num(fdp, 3),
                      AsciiTable::pct(fdp / solo - 1.0),
                      AsciiTable::pct(fdp / none - 1.0),
                      AsciiTable::pct(mean_over(
                          PrefetchScheme::FdpRemove, cores, l2,
                          [](const SimResults &r) {
                              return r.prefetchCoverage;
                          })),
                      AsciiTable::pct(mean_over(
                          PrefetchScheme::FdpRemove, cores, l2,
                          [](const SimResults &r) {
                              return r.memBusUtil;
                          }))});
        }
        print(strprintf("shared-L2 contention, %uKB L2 "
                        "(mean over %zu workloads):\n",
                        static_cast<unsigned>(l2 / 1024),
                        workloads().size()));
        print(t.render());
        print("\n");
    }

    // Per-core fairness at the contended corner: the rotating bus
    // arbiter must not starve any core.
    AsciiTable ft({"workload", "core ipcs (4 cores, 256KB L2, fdp)",
                   "max/min"});
    for (const auto &wl : workloads()) {
        const SimResults &r = point(wl, PrefetchScheme::FdpRemove,
                                    coreCounts().back(),
                                    kL2Sizes[0]);
        std::string ipcs;
        double lo = 0.0, hi = 0.0;
        for (std::size_t c = 0; c < r.perCore.size(); ++c) {
            double ipc = r.perCore[c].ipc;
            ipcs += (c > 0 ? " " : "") + AsciiTable::num(ipc, 3);
            lo = c == 0 ? ipc : std::min(lo, ipc);
            hi = c == 0 ? ipc : std::max(hi, ipc);
        }
        if (r.perCore.empty()) {
            ipcs = AsciiTable::num(r.ipc, 3);
            lo = hi = r.ipc;
        }
        ft.addRow({wl, ipcs,
                   AsciiTable::num(lo > 0.0 ? hi / lo : 0.0, 3)});
    }
    print("per-core fairness at the contended corner:\n");
    print(ft.render());
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "R-X17";
    s.binary = "bench_x17_multicore";
    s.title = "Multi-core scale-out (cores x shared-L2 size x "
              "prefetch scheme)";
    s.shape =
        "per-core IPC and prefetch coverage fall as cores are added, "
        "hardest at 256KB; FDP remove-CPF keeps beating no-prefetch "
        "at every core count; the rotating arbiter keeps per-core "
        "IPCs near-equal (homogeneous cores)";
    s.paperRef = "multi-core extension (beyond the paper): FDIP under "
                 "shared-L2/bus contention";
    s.question = "Does fetch-directed prefetching still pay when the "
                 "L2 and buses it prefetches over are shared by 2-4 "
                 "contending cores, or does its extra traffic crowd "
                 "out demand fetches?";
    s.warmup = kSweepWarmup;
    s.measure = kSweepMeasure;
    s.grids = {{workloads(),
                {PrefetchScheme::None, PrefetchScheme::FdpRemove},
                scaleVariants(), /*withBaseline=*/false}};
    s.render = render;
    s.notes = "Each core runs a private copy of the workload (seed "
              "offset by core id, tagged private address spaces), so "
              "added cores are pure contention. FDIP_X17_CORES "
              "overrides the swept core counts (run lengths are "
              "per-core commits).";
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
