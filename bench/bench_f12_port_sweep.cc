/**
 * R-F12 — Cache-probe-filter port sensitivity: how many L1-I tag
 * ports do the realistic CPF variants need to approach ideal CPF?
 */

#include "bench_util.hh"

using namespace fdip;
using namespace fdip::bench;

int
main(int argc, char **argv)
{
    print(experimentBanner(
        "R-F12", "CPF tag-port sweep (enqueue and remove vs ideal)",
        "with a single port (fully consumed by demand fetch) the "
        "realistic variants degrade; two ports recover nearly all of "
        "ideal CPF's benefit"));

    Runner runner = makeRunner(argc, argv, kSweepWarmup, kSweepMeasure);

    for (unsigned ports : {1u, 2u, 3u, 4u}) {
        for (const auto &name : largeFootprintNames()) {
            for (auto scheme :
                 {PrefetchScheme::FdpEnqueue, PrefetchScheme::FdpRemove,
                  PrefetchScheme::FdpIdeal}) {
                runner.enqueueSpeedup(
                    name, scheme, "ports" + std::to_string(ports),
                    [ports](SimConfig &cfg) {
                        cfg.mem.l1TagPorts = ports;
                    });
            }
        }
    }
    runner.runPending();
    print(runner.sweepSummary());

    AsciiTable t({"tag ports", "FDP enqueue", "FDP remove",
                  "FDP ideal"});

    for (unsigned ports : {1u, 2u, 3u, 4u}) {
        auto tweak = [ports](SimConfig &cfg) {
            cfg.mem.l1TagPorts = ports;
        };
        std::string key = "ports" + std::to_string(ports);
        std::vector<double> enq, rem, ideal;
        for (const auto &name : largeFootprintNames()) {
            enq.push_back(runner.speedup(
                name, PrefetchScheme::FdpEnqueue, key, tweak));
            rem.push_back(runner.speedup(
                name, PrefetchScheme::FdpRemove, key, tweak));
            ideal.push_back(runner.speedup(
                name, PrefetchScheme::FdpIdeal, key, tweak));
        }
        t.addRow({AsciiTable::integer(ports),
                  AsciiTable::pct(gmeanSpeedup(enq)),
                  AsciiTable::pct(gmeanSpeedup(rem)),
                  AsciiTable::pct(gmeanSpeedup(ideal))});
    }

    print(t.render());
    return 0;
}
