/**
 * R-F12 — Cache-probe-filter port sensitivity: how many L1-I tag
 * ports do the realistic CPF variants need to approach ideal CPF?
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

constexpr unsigned kPortCounts[] = {1u, 2u, 3u, 4u};

Runner::Tweak
portTweak(unsigned ports)
{
    return [ports](SimConfig &cfg) {
        cfg.mem.l1TagPorts = ports;
    };
}

std::string
portKey(unsigned ports)
{
    return "ports" + std::to_string(ports);
}

std::vector<TweakVariant>
portVariants()
{
    std::vector<TweakVariant> out;
    for (unsigned ports : kPortCounts) {
        out.push_back({portKey(ports),
                       strprintf("%u L1-I tag ports", ports),
                       portTweak(ports)});
    }
    return out;
}

void
render(Runner &runner)
{
    AsciiTable t({"tag ports", "FDP enqueue", "FDP remove",
                  "FDP ideal"});

    for (unsigned ports : kPortCounts) {
        auto tweak = portTweak(ports);
        std::string key = portKey(ports);
        std::vector<double> enq, rem, ideal;
        for (const auto &name : largeFootprintNames()) {
            enq.push_back(runner.speedup(
                name, PrefetchScheme::FdpEnqueue, key, tweak));
            rem.push_back(runner.speedup(
                name, PrefetchScheme::FdpRemove, key, tweak));
            ideal.push_back(runner.speedup(
                name, PrefetchScheme::FdpIdeal, key, tweak));
        }
        t.addRow({AsciiTable::integer(ports),
                  AsciiTable::pct(gmeanSpeedup(enq)),
                  AsciiTable::pct(gmeanSpeedup(rem)),
                  AsciiTable::pct(gmeanSpeedup(ideal))});
    }

    print(t.render());
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "R-F12";
    s.binary = "bench_f12_port_sweep";
    s.title = "CPF tag-port sweep (enqueue and remove vs ideal)";
    s.shape =
        "with a single port (fully consumed by demand fetch) the "
        "realistic variants degrade; two ports recover nearly all of "
        "ideal CPF's benefit";
    s.paperRef = "MICRO-32, Fig. 12 (CPF tag-port sensitivity)";
    s.warmup = kSweepWarmup;
    s.measure = kSweepMeasure;
    s.grids = {{largeFootprintNames(),
                {PrefetchScheme::FdpEnqueue, PrefetchScheme::FdpRemove,
                 PrefetchScheme::FdpIdeal},
                portVariants(), true}};
    s.render = render;
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
