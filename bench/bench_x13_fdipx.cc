/**
 * X-F13 — EXTENSION (2020 revisit, Figs. 5/6): FDIP performance gain
 * vs BTB storage budget, comparing the unified block-based FTB
 * front-end against the partitioned conventional-BTB front-end at
 * matched storage rungs. Speedups are over the no-prefetch baseline
 * with the same front-end configuration.
 */

#include "bench_util.hh"

using namespace fdip;
using namespace fdip::bench;

int
main(int argc, char **argv)
{
    print(experimentBanner(
        "X-F13", "FDIP gain vs BTB budget: unified FTB vs partitioned",
        "the partitioned 16-bit-tag design wins clearly at small "
        "budgets (more branches tracked per KB) and the two converge "
        "once the branch working set fits either way"));

    Runner runner = makeRunner(argc, argv, kSweepWarmup, kSweepMeasure);
    AsciiTable t({"budget", "unified FTB gmean", "partitioned gmean"});

    // The largest rungs change nothing for our branch working sets;
    // sweep the interesting lower half of the ladder.
    auto ladder = btbBudgetLadder();
    ladder.resize(4); // 11.5K .. 89K

    for (const auto &pt : ladder) {
        for (const auto &name : allWorkloadNames()) {
            runner.enqueueSpeedup(
                name, PrefetchScheme::FdpRemove,
                "uni" + std::to_string(pt.ftbEntries),
                [pt](SimConfig &cfg) {
                    applyFtbBudget(cfg, pt.ftbEntries);
                });
            runner.enqueueSpeedup(
                name, PrefetchScheme::FdpRemove,
                "part" + std::to_string(pt.ftbEntries),
                [pt](SimConfig &cfg) {
                    applyPartitionedBudget(cfg, pt.ftbEntries);
                });
        }
    }
    runner.runPending();
    print(runner.sweepSummary());

    for (const auto &pt : ladder) {
        auto uni_tweak = [&pt](SimConfig &cfg) {
            applyFtbBudget(cfg, pt.ftbEntries);
        };
        auto part_tweak = [&pt](SimConfig &cfg) {
            applyPartitionedBudget(cfg, pt.ftbEntries);
        };
        std::string ukey = "uni" + std::to_string(pt.ftbEntries);
        std::string pkey = "part" + std::to_string(pt.ftbEntries);

        std::vector<double> uni, part;
        for (const auto &name : allWorkloadNames()) {
            uni.push_back(runner.speedup(
                name, PrefetchScheme::FdpRemove, ukey, uni_tweak));
            part.push_back(runner.speedup(
                name, PrefetchScheme::FdpRemove, pkey, part_tweak));
        }
        t.addRow({AsciiTable::num(pt.ftbBudgetKB, 1) + "KB",
                  AsciiTable::pct(gmeanSpeedup(uni)),
                  AsciiTable::pct(gmeanSpeedup(part))});
    }
    print(t.render());
    return 0;
}
