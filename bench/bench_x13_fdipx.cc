/**
 * X-F13 — EXTENSION (2020 revisit, Figs. 5/6): FDIP performance gain
 * vs BTB storage budget, comparing the unified block-based FTB
 * front-end against the partitioned conventional-BTB front-end at
 * matched storage rungs. Speedups are over the no-prefetch baseline
 * with the same front-end configuration.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

/** The largest rungs change nothing for our branch working sets;
 *  sweep the interesting lower half of the ladder. */
std::vector<BtbBudgetPoint>
sweptLadder()
{
    auto ladder = btbBudgetLadder();
    ladder.resize(4); // 11.5K .. 89K
    return ladder;
}

Runner::Tweak
uniTweak(BtbBudgetPoint pt)
{
    return [pt](SimConfig &cfg) {
        applyFtbBudget(cfg, pt.ftbEntries);
    };
}

Runner::Tweak
partTweak(BtbBudgetPoint pt)
{
    return [pt](SimConfig &cfg) {
        applyPartitionedBudget(cfg, pt.ftbEntries);
    };
}

std::string
uniKey(BtbBudgetPoint pt)
{
    return "uni" + std::to_string(pt.ftbEntries);
}

std::string
partKey(BtbBudgetPoint pt)
{
    return "part" + std::to_string(pt.ftbEntries);
}

std::vector<TweakVariant>
budgetVariants()
{
    std::vector<TweakVariant> out;
    for (const auto &pt : sweptLadder()) {
        out.push_back({uniKey(pt),
                       strprintf("unified FTB, %u entries",
                                 pt.ftbEntries),
                       uniTweak(pt)});
        out.push_back({partKey(pt),
                       strprintf("partitioned BTB at the %u-entry "
                                 "unified budget", pt.ftbEntries),
                       partTweak(pt)});
    }
    return out;
}

void
render(Runner &runner)
{
    AsciiTable t({"budget", "unified FTB gmean", "partitioned gmean"});

    for (const auto &pt : sweptLadder()) {
        auto uni_tweak = uniTweak(pt);
        auto part_tweak = partTweak(pt);
        std::string ukey = uniKey(pt);
        std::string pkey = partKey(pt);

        std::vector<double> uni, part;
        for (const auto &name : allWorkloadNames()) {
            uni.push_back(runner.speedup(
                name, PrefetchScheme::FdpRemove, ukey, uni_tweak));
            part.push_back(runner.speedup(
                name, PrefetchScheme::FdpRemove, pkey, part_tweak));
        }
        t.addRow({AsciiTable::num(pt.ftbBudgetKB, 1) + "KB",
                  AsciiTable::pct(gmeanSpeedup(uni)),
                  AsciiTable::pct(gmeanSpeedup(part))});
    }
    print(t.render());
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "X-F13";
    s.binary = "bench_x13_fdipx";
    s.title = "FDIP gain vs BTB budget: unified FTB vs partitioned";
    s.shape =
        "the partitioned 16-bit-tag design wins clearly at small "
        "budgets (more branches tracked per KB) and the two converge "
        "once the branch working set fits either way";
    s.paperRef = "FDIP-Revisited (2020), Figs. 5/6 (gain vs BTB "
                 "storage)";
    s.question = "At which BTB storage budgets does the partitioned "
                 "front-end beat the unified FTB at driving FDIP?";
    s.warmup = kSweepWarmup;
    s.measure = kSweepMeasure;
    s.grids = {{allWorkloadNames(), {PrefetchScheme::FdpRemove},
                budgetVariants(), true}};
    s.render = render;
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
