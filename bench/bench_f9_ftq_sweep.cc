/**
 * R-F9 — FTQ depth sweep: how much decoupling does FDP need?
 * Deeper FTQs give the prefetch engine more lookahead; past a point
 * the extra entries are wrong-path noise.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

constexpr unsigned kFtqSizes[] = {2u, 4u, 8u, 16u, 32u, 64u};

Runner::Tweak
ftqTweak(unsigned entries)
{
    return [entries](SimConfig &cfg) {
        cfg.ftqEntries = entries;
    };
}

std::string
ftqKey(unsigned entries)
{
    return "ftq" + std::to_string(entries);
}

std::vector<TweakVariant>
ftqVariants()
{
    std::vector<TweakVariant> out;
    for (unsigned entries : kFtqSizes) {
        out.push_back({ftqKey(entries),
                       strprintf("%u-entry FTQ", entries),
                       ftqTweak(entries)});
    }
    return out;
}

void
render(Runner &runner)
{
    AsciiTable t({"ftq entries", "gmean FDP speedup",
                  "gmean prefetch coverage", "mean occupancy"});

    for (unsigned entries : kFtqSizes) {
        auto tweak = ftqTweak(entries);
        std::string key = ftqKey(entries);
        std::vector<double> speedups, covs, occs;
        for (const auto &name : largeFootprintNames()) {
            speedups.push_back(runner.speedup(
                name, PrefetchScheme::FdpRemove, key, tweak));
            const SimResults &r = runner.run(
                name, PrefetchScheme::FdpRemove, key, tweak);
            covs.push_back(r.prefetchCoverage);
            occs.push_back(r.ftqOccupancy.mean());
        }
        t.addRow({AsciiTable::integer(entries),
                  AsciiTable::pct(gmeanSpeedup(speedups)),
                  AsciiTable::pct(mean(covs)),
                  AsciiTable::num(mean(occs), 1)});
    }

    print(t.render());
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "R-F9";
    s.binary = "bench_f9_ftq_sweep";
    s.title = "FTQ depth sweep (FDP remove-CPF vs baseline FTQ=32)";
    s.shape =
        "tiny FTQs cripple FDP (no lookahead); gains saturate by a "
        "few tens of entries";
    s.paperRef = "MICRO-32, Fig. 9 (FTQ size sensitivity)";
    s.warmup = kSweepWarmup;
    s.measure = kSweepMeasure;
    s.grids = {{largeFootprintNames(), {PrefetchScheme::FdpRemove},
                ftqVariants(), true}};
    s.render = render;
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
