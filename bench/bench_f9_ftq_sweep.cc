/**
 * R-F9 — FTQ depth sweep: how much decoupling does FDP need?
 * Deeper FTQs give the prefetch engine more lookahead; past a point
 * the extra entries are wrong-path noise.
 */

#include "bench_util.hh"

using namespace fdip;
using namespace fdip::bench;

int
main(int argc, char **argv)
{
    print(experimentBanner(
        "R-F9", "FTQ depth sweep (FDP remove-CPF vs baseline FTQ=32)",
        "tiny FTQs cripple FDP (no lookahead); gains saturate by a "
        "few tens of entries"));

    Runner runner = makeRunner(argc, argv, kSweepWarmup, kSweepMeasure);

    for (unsigned entries : {2u, 4u, 8u, 16u, 32u, 64u}) {
        for (const auto &name : largeFootprintNames()) {
            runner.enqueueSpeedup(
                name, PrefetchScheme::FdpRemove,
                "ftq" + std::to_string(entries),
                [entries](SimConfig &cfg) {
                    cfg.ftqEntries = entries;
                });
        }
    }
    runner.runPending();
    print(runner.sweepSummary());

    AsciiTable t({"ftq entries", "gmean FDP speedup",
                  "gmean prefetch coverage", "mean occupancy"});

    for (unsigned entries : {2u, 4u, 8u, 16u, 32u, 64u}) {
        auto tweak = [entries](SimConfig &cfg) {
            cfg.ftqEntries = entries;
        };
        std::string key = "ftq" + std::to_string(entries);
        std::vector<double> speedups, covs, occs;
        for (const auto &name : largeFootprintNames()) {
            speedups.push_back(runner.speedup(
                name, PrefetchScheme::FdpRemove, key, tweak));
            const SimResults &r = runner.run(
                name, PrefetchScheme::FdpRemove, key, tweak);
            covs.push_back(r.prefetchCoverage);
            occs.push_back(r.ftqOccupancy.mean());
        }
        t.addRow({AsciiTable::integer(entries),
                  AsciiTable::pct(gmeanSpeedup(speedups)),
                  AsciiTable::pct(mean(covs)),
                  AsciiTable::num(mean(occs), 1)});
    }

    print(t.render());
    return 0;
}
