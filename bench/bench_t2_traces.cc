/**
 * X-T3 — Trace-workload sweep: replayed traces through the
 * warmup/ROI-phased frontend (docs/TRACES.md).
 *
 * Workloads come from FDIP_TRACE_PATHS (colon-separated trace paths —
 * native v1/v2 or ChampSim format, dispatched on extension). Without
 * it, the bench self-captures small native traces of two synthetic
 * workloads into the temp directory on first use, so the sweep always
 * has something real to replay.
 *
 * The variant axis exercises the ROI controls: the full-warmup
 * baseline vs. skip-N fast-forward with a short warmup — the same
 * region of interest entered two ways.
 */

#include <cstdlib>
#include <mutex>
#include <set>
#include <sys/stat.h>
#include <sys/types.h>

#include "bench_util.hh"
#include "sim/experiment.hh"
#include "trace/profile.hh"
#include "trace/synth_builder.hh"
#include "trace/trace_file.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

/** Self-captured default traces: long enough that a 500k-inst
 *  measurement loops the file a couple of times (streaming + loop
 *  coverage), short enough to capture in well under a second. */
constexpr std::uint64_t kDefaultCaptureInsts = 200 * 1000;

std::string
defaultTraceDir()
{
    const char *tmp = std::getenv("TMPDIR");
    std::string base = (tmp != nullptr && tmp[0] != '\0') ? tmp : "/tmp";
    return base + "/fdip-bench-traces";
}

struct TraceWorkload
{
    std::string label;   ///< "trace:<path>" grid workload
    std::string path;
    std::string profile; ///< synthetic profile to capture ("" = user's)
};

std::vector<TraceWorkload>
traceWorkloads()
{
    std::vector<TraceWorkload> out;
    const char *env = std::getenv("FDIP_TRACE_PATHS");
    if (env != nullptr && env[0] != '\0') {
        std::string spec = env;
        std::size_t pos = 0;
        while (pos <= spec.size()) {
            std::size_t colon = spec.find(':', pos);
            if (colon == std::string::npos)
                colon = spec.size();
            std::string path = spec.substr(pos, colon - pos);
            if (!path.empty())
                out.push_back({"trace:" + path, path, ""});
            pos = colon + 1;
        }
        fatal_if(out.empty(), "FDIP_TRACE_PATHS is set but empty");
        return out;
    }
    std::string dir = defaultTraceDir();
    for (const char *name : {"gcc", "go"}) {
        std::string path = dir + "/" + name + ".fdip.trace";
        out.push_back({"trace:" + path, path, name});
    }
    return out;
}

/**
 * Capture the default trace for @p w if this process has not yet done
 * so. Always re-captures on first use (never trusts a file left by an
 * older build), and runs inside the Runner's makeConfig path, so
 * worker threads may race here — hence the mutex.
 */
void
ensureDefaultTrace(const TraceWorkload &w)
{
    if (w.profile.empty())
        return;
    static std::mutex m;
    static std::set<std::string> captured;
    std::lock_guard<std::mutex> lock(m);
    if (!captured.insert(w.path).second)
        return;
    ::mkdir(defaultTraceDir().c_str(), 0777);
    WorkloadProfile profile = findProfile(w.profile);
    auto prog = buildProgram(profile);
    SyntheticExecutor exec(*prog, profile);
    writeTraceFile(w.path, exec, kDefaultCaptureInsts, prog->base,
                   prog->codeEnd());
}

ExperimentSpec
makeSpec()
{
    auto workloads = traceWorkloads();

    std::vector<std::string> labels;
    for (const auto &w : workloads)
        labels.push_back(w.label);

    // Every variant's tweak materializes the default traces first:
    // enqueueSpeedup applies the same tweak to the no-prefetch
    // baseline, so capture is guaranteed before any Simulator opens
    // the file.
    auto ensure_all = [workloads](SimConfig &) {
        for (const auto &w : workloads)
            ensureDefaultTrace(w);
    };
    std::vector<TweakVariant> variants = {
        {"", "full warmup from record 0", ensure_all},
        {"roi-skip", "skip 200k insts, then 50k warmup",
         [workloads](SimConfig &cfg) {
             for (const auto &w : workloads)
                 ensureDefaultTrace(w);
             cfg.skipInsts = 200 * 1000;
             cfg.warmupInsts = 50 * 1000;
         }},
    };

    ExperimentSpec s;
    s.id = "X-T3";
    s.binary = "bench_t2_traces";
    s.title = "trace-file workloads with warmup/ROI phases";
    s.shape =
        "FDP speedups on replayed traces mirror the synthetic suite; "
        "the skip-N ROI entry lands near the full-warmup numbers";
    s.question =
        "does the trace frontend (ChampSim/native replay + skip-N ROI "
        "control) reproduce the prefetch-scheme ordering?";
    s.paperRef = "MICRO-32 methodology (trace-driven simulation)";
    s.warmup = kSweepWarmup;
    s.measure = kSweepMeasure;
    s.grids = {{labels,
                {PrefetchScheme::Nlp, PrefetchScheme::FdpEnqueue,
                 PrefetchScheme::FdpIdeal},
                variants,
                /*withBaseline=*/true}};
    s.notes =
        "set FDIP_TRACE_PATHS=<path>[:<path>...] to sweep your own "
        "traces; results cache on the trace *path*, so replace the "
        "file rather than editing in place (docs/TRACES.md)";

    s.render = [workloads, variants](Runner &runner) {
        AsciiTable t({"workload", "variant", "scheme", "IPC",
                      "L1-I MPKI", "speedup"});
        for (const auto &w : workloads) {
            for (const auto &v : variants) {
                for (PrefetchScheme scheme :
                     {PrefetchScheme::Nlp, PrefetchScheme::FdpEnqueue,
                      PrefetchScheme::FdpIdeal}) {
                    const SimResults &r =
                        runner.run(w.label, scheme, v.key, v.tweak);
                    t.addRow({w.label,
                              v.key.empty() ? "full-warmup" : v.key,
                              r.scheme,
                              AsciiTable::num(r.ipc, 3),
                              AsciiTable::num(r.mpki, 2),
                              AsciiTable::pct(
                                  runner.speedup(w.label, scheme, v.key,
                                                 v.tweak), 1)});
                }
            }
        }
        print(t.render());
    };
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
