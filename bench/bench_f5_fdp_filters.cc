/**
 * R-F5 — The headline result: fetch-directed prefetching speedup over
 * the no-prefetch baseline, for each cache-probe-filtering variant,
 * with NLP as the non-FDP reference point.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

void
render(Runner &runner)
{
    AsciiTable t({"workload", "NLP", "FDP nofilter", "FDP enqueue",
                  "FDP remove", "FDP ideal"});

    std::vector<std::vector<double>> cols(5);
    for (const auto &name : allWorkloadNames()) {
        std::vector<double> s;
        s.push_back(runner.speedup(name, PrefetchScheme::Nlp));
        s.push_back(runner.speedup(name, PrefetchScheme::FdpNone));
        s.push_back(runner.speedup(name, PrefetchScheme::FdpEnqueue));
        s.push_back(runner.speedup(name, PrefetchScheme::FdpRemove));
        s.push_back(runner.speedup(name, PrefetchScheme::FdpIdeal));
        for (int i = 0; i < 5; ++i)
            cols[i].push_back(s[i]);
        t.addRow({name, AsciiTable::pct(s[0]), AsciiTable::pct(s[1]),
                  AsciiTable::pct(s[2]), AsciiTable::pct(s[3]),
                  AsciiTable::pct(s[4])});
    }

    std::vector<std::string> row{"gmean"};
    for (int i = 0; i < 5; ++i)
        row.push_back(AsciiTable::pct(gmeanSpeedup(cols[i])));
    t.addRow(row);
    print(t.render());
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "R-F5";
    s.binary = "bench_f5_fdp_filters";
    s.title = "FDP speedup by CPF variant vs NLP";
    s.shape =
        "every FDP variant beats NLP; CPF variants match or beat "
        "no-filter FDP while using far less bus bandwidth (see R-F6); "
        "remove-CPF is the best realistic variant";
    s.paperRef = "MICRO-32, Fig. 5 (FDP speedup by CPF variant)";
    s.warmup = kWarmup;
    s.measure = kMeasure;
    s.grids = {{allWorkloadNames(),
                {PrefetchScheme::Nlp, PrefetchScheme::FdpNone,
                 PrefetchScheme::FdpEnqueue, PrefetchScheme::FdpRemove,
                 PrefetchScheme::FdpIdeal},
                {}, true}};
    s.render = render;
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
