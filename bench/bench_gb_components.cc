/**
 * Component micro-benchmarks (google-benchmark): raw throughput of the
 * structures on the simulator's hot path. Not a paper experiment —
 * this guards simulation speed regressions.
 */

#include <benchmark/benchmark.h>

#include "bpu/btb.hh"
#include "bpu/hybrid.hh"
#include "mem/cache.hh"
#include "trace/executor.hh"
#include "trace/profile.hh"
#include "trace/synth_builder.hh"

using namespace fdip;

static void
BM_CacheAccess(benchmark::State &state)
{
    Cache::Config cfg;
    cfg.sizeBytes = 16 * 1024;
    cfg.assoc = 2;
    cfg.blockBytes = 32;
    Cache cache(cfg);
    Addr addr = 0x1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr));
        addr = (addr + 32) & 0xffff;
    }
}
BENCHMARK(BM_CacheAccess);

static void
BM_BtbLookup(benchmark::State &state)
{
    Btb::Config cfg;
    cfg.sets = 1024;
    cfg.ways = 4;
    Btb btb(cfg);
    for (Addr pc = 0x1000; pc < 0x1000 + 4096 * 4; pc += 16)
        btb.insert(pc, InstClass::Jump, pc + 64);
    Addr pc = 0x1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(btb.lookup(pc));
        pc = 0x1000 + ((pc + 16) & 0x3fff);
    }
}
BENCHMARK(BM_BtbLookup);

static void
BM_HybridPredict(benchmark::State &state)
{
    HybridPredictor pred;
    Addr pc = 0x1000;
    std::uint64_t hist = 0xdead;
    for (auto _ : state) {
        bool p = pred.predict(pc, hist);
        benchmark::DoNotOptimize(p);
        pred.update(pc, hist, !p);
        hist = shiftHistory(hist, p);
        pc += 4;
    }
}
BENCHMARK(BM_HybridPredict);

static void
BM_ExecutorThroughput(benchmark::State &state)
{
    const WorkloadProfile &p = findProfile("gcc");
    auto prog = buildProgram(p);
    SyntheticExecutor exec(*prog, p);
    for (auto _ : state)
        benchmark::DoNotOptimize(exec.next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecutorThroughput);

BENCHMARK_MAIN();
