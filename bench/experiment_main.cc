/**
 * @file experiment_main.cc
 * Shared main() for every figure-reproduction binary: each bench
 * translation unit registers exactly one ExperimentSpec; this driver
 * runs it. Linked into each bench executable by CMake (the catalog
 * generator links the same spec TUs with its own main instead).
 */

#include "common/logging.hh"
#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    auto specs = fdip::ExperimentRegistry::instance().all();
    fatal_if(specs.size() != 1,
             "expected exactly one registered experiment in this "
             "binary, found %zu", specs.size());
    return fdip::experimentMain(*specs[0], argc, argv);
}
