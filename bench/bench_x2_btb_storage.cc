/**
 * X-T2 — EXTENSION (2020 revisit, Tables I & II): storage breakdown of
 * the unified basic-block-oriented BTB vs the 4-partition offset BTB
 * ensemble at matched budgets. Pure storage accounting; no simulation.
 */

#include "bpu/ftb.hh"
#include "bpu/partitioned_btb.hh"
#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

void
render(Runner &)
{
    AsciiTable t({"budget", "unified entries", "unified KB",
                  "partitioned entries", "partitioned KB",
                  "entry ratio"});

    for (const auto &pt : btbBudgetLadder()) {
        Ftb::Config fc;
        fc.sets = pt.ftbEntries / 8;
        fc.ways = 8;
        Ftb ftb(fc);

        auto pcfg = PartitionedBtb::makeDefaultConfig(pt.ftbEntries);
        PartitionedBtb pbtb(pcfg);

        double ukb = double(ftb.storageBits()) / 8 / 1024;
        double pkb = double(pbtb.storageBits()) / 8 / 1024;
        t.addRow({AsciiTable::num(pt.ftbBudgetKB, 2) + "KB",
                  AsciiTable::integer(ftb.numEntries()),
                  AsciiTable::num(ukb, 2),
                  AsciiTable::integer(pbtb.numEntries()),
                  AsciiTable::num(pkb, 2),
                  AsciiTable::num(double(pbtb.numEntries()) /
                                  ftb.numEntries(), 2) + "x"});
    }
    print(t.render());

    // Per-partition detail at the smallest budget (Table II's top).
    print("\npartition detail at the 11.5KB rung (unified-entries 1024):\n");
    AsciiTable d({"partition", "entry bits", "entries", "KB"});
    auto pcfg = PartitionedBtb::makeDefaultConfig(1024);
    PartitionedBtb pbtb(pcfg);
    for (unsigned i = 0; i < pbtb.numPartitions(); ++i) {
        const Btb &p = pbtb.partition(i);
        d.addRow({p.name(),
                  AsciiTable::integer(p.entryBits()),
                  AsciiTable::integer(p.numEntries()),
                  AsciiTable::num(double(p.storageBits()) / 8 / 1024, 2)});
    }
    print(d.render());
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "X-T2";
    s.binary = "bench_x2_btb_storage";
    s.title = "unified block-based BTB vs partitioned-BTB storage";
    s.shape =
        "the partitioned ensemble fits ~2.4x the entries of the "
        "unified design in the same (or less) storage";
    s.paperRef = "FDIP-Revisited (2020), Tables I & II (storage "
                 "breakdown)";
    s.question = "How many more branch targets does the 4-partition "
                 "offset-BTB track than a unified BTB of the same "
                 "storage budget?";
    // Pure storage accounting: no grids, no simulation.
    s.render = render;
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
