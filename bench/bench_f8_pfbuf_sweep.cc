/**
 * R-F8 — Prefetch-buffer size sensitivity: FDP (remove-CPF) gmean
 * speedup over no-prefetch with 8..64 buffer entries, on the
 * large-footprint workload subset.
 */

#include "bench_util.hh"

using namespace fdip;
using namespace fdip::bench;

int
main(int argc, char **argv)
{
    print(experimentBanner(
        "R-F8", "prefetch buffer size sweep (FDP remove-CPF)",
        "speedup grows with buffer size and saturates around 32 "
        "entries — the paper's chosen design point"));

    Runner runner = makeRunner(argc, argv, kSweepWarmup, kSweepMeasure);

    for (unsigned entries : {8u, 16u, 32u, 64u}) {
        for (const auto &name : largeFootprintNames()) {
            runner.enqueueSpeedup(
                name, PrefetchScheme::FdpRemove,
                "pfbuf" + std::to_string(entries),
                [entries](SimConfig &cfg) {
                    cfg.mem.prefetchBufferEntries = entries;
                });
        }
    }
    runner.runPending();
    print(runner.sweepSummary());

    AsciiTable t({"entries", "gmean speedup", "gmean accuracy",
                  "unused evictions/KI"});

    for (unsigned entries : {8u, 16u, 32u, 64u}) {
        auto tweak = [entries](SimConfig &cfg) {
            cfg.mem.prefetchBufferEntries = entries;
        };
        std::string key = "pfbuf" + std::to_string(entries);
        std::vector<double> speedups, accs, evics;
        for (const auto &name : largeFootprintNames()) {
            speedups.push_back(runner.speedup(
                name, PrefetchScheme::FdpRemove, key, tweak));
            const SimResults &r = runner.run(
                name, PrefetchScheme::FdpRemove, key, tweak);
            accs.push_back(r.prefetchAccuracy);
            evics.push_back(r.stats.value("pfbuf.unused_evictions") /
                            (double(r.instructions) / 1000.0));
        }
        t.addRow({AsciiTable::integer(entries),
                  AsciiTable::pct(gmeanSpeedup(speedups)),
                  AsciiTable::pct(mean(accs)),
                  AsciiTable::num(mean(evics), 2)});
    }

    print(t.render());
    return 0;
}
