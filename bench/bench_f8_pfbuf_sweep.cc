/**
 * R-F8 — Prefetch-buffer size sensitivity: FDP (remove-CPF) gmean
 * speedup over no-prefetch with 8..64 buffer entries, on the
 * large-footprint workload subset.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

constexpr unsigned kBufferSizes[] = {8u, 16u, 32u, 64u};

Runner::Tweak
pfbufTweak(unsigned entries)
{
    return [entries](SimConfig &cfg) {
        cfg.mem.prefetchBufferEntries = entries;
    };
}

std::string
pfbufKey(unsigned entries)
{
    return "pfbuf" + std::to_string(entries);
}

std::vector<TweakVariant>
pfbufVariants()
{
    std::vector<TweakVariant> out;
    for (unsigned entries : kBufferSizes) {
        out.push_back({pfbufKey(entries),
                       strprintf("%u-entry prefetch buffer", entries),
                       pfbufTweak(entries)});
    }
    return out;
}

void
render(Runner &runner)
{
    AsciiTable t({"entries", "gmean speedup", "gmean accuracy",
                  "unused evictions/KI"});

    for (unsigned entries : kBufferSizes) {
        auto tweak = pfbufTweak(entries);
        std::string key = pfbufKey(entries);
        std::vector<double> speedups, accs, evics;
        for (const auto &name : largeFootprintNames()) {
            speedups.push_back(runner.speedup(
                name, PrefetchScheme::FdpRemove, key, tweak));
            const SimResults &r = runner.run(
                name, PrefetchScheme::FdpRemove, key, tweak);
            accs.push_back(r.prefetchAccuracy);
            evics.push_back(r.stats.value("pfbuf.unused_evictions") /
                            (double(r.instructions) / 1000.0));
        }
        t.addRow({AsciiTable::integer(entries),
                  AsciiTable::pct(gmeanSpeedup(speedups)),
                  AsciiTable::pct(mean(accs)),
                  AsciiTable::num(mean(evics), 2)});
    }

    print(t.render());
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "R-F8";
    s.binary = "bench_f8_pfbuf_sweep";
    s.title = "prefetch buffer size sweep (FDP remove-CPF)";
    s.shape =
        "speedup grows with buffer size and saturates around 32 "
        "entries — the paper's chosen design point";
    s.paperRef = "MICRO-32, Fig. 8 (prefetch buffer size)";
    s.warmup = kSweepWarmup;
    s.measure = kSweepMeasure;
    s.grids = {{largeFootprintNames(), {PrefetchScheme::FdpRemove},
                pfbufVariants(), true}};
    s.render = render;
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
