/**
 * R-F7 — Prefetch accuracy (useful/issued) and coverage (fraction of
 * would-be misses served by prefetching) per scheme, with the lifecycle
 * attribution split: timely (consumed after the fill), late (demand
 * merged with the in-flight prefetch), and pollution (prefetch L2
 * fills that displaced lines demands later missed on).
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

void
render(Runner &runner)
{
    AsciiTable t({"workload", "scheme", "accuracy", "coverage",
                  "timely", "late", "pollution", "issued/KI"});

    for (const auto &name : allWorkloadNames()) {
        for (auto scheme : allSchemes()) {
            const SimResults &r = runner.run(name, scheme);
            double issued_ki =
                r.stats.value("mem.prefetches_issued") /
                (static_cast<double>(r.instructions) / 1000.0);
            t.addRow({name, schemeName(scheme),
                      AsciiTable::pct(r.prefetchAccuracy),
                      AsciiTable::pct(r.prefetchCoverage),
                      AsciiTable::pct(r.prefetchTimely),
                      AsciiTable::pct(r.prefetchLate),
                      AsciiTable::pct(r.prefetchPollution),
                      AsciiTable::num(issued_ki, 1)});
        }
    }

    print(t.render());
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "R-F7";
    s.binary = "bench_f7_accuracy_coverage";
    s.title = "prefetch accuracy and coverage per scheme";
    s.shape =
        "CPF lifts FDP accuracy far above the no-filter variant while "
        "keeping the best coverage of all schemes; NLP is accurate but "
        "covers only sequential misses; SB sits between";
    s.paperRef = "MICRO-32, Fig. 7 (accuracy and coverage)";
    s.warmup = kWarmup;
    s.measure = kMeasure;
    s.grids = {{allWorkloadNames(), allSchemes(), {},
                /*withBaseline=*/false}};
    s.render = render;
    s.notes = "timely/late/pollution come from the prefetch lifecycle "
              "attribution (docs/OBSERVABILITY.md), as fractions of "
              "issued prefetches; pollution is an independent class "
              "(one prefetch can pollute and still be useful), so the "
              "columns need not sum to 100%.";
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
