/**
 * R-F7 — Prefetch accuracy (useful/issued) and coverage (fraction of
 * would-be misses served by prefetching) per scheme.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

void
render(Runner &runner)
{
    AsciiTable t({"workload", "scheme", "accuracy", "coverage",
                  "issued/KI"});

    for (const auto &name : allWorkloadNames()) {
        for (auto scheme : allSchemes()) {
            const SimResults &r = runner.run(name, scheme);
            double issued_ki =
                r.stats.value("mem.prefetches_issued") /
                (static_cast<double>(r.instructions) / 1000.0);
            t.addRow({name, schemeName(scheme),
                      AsciiTable::pct(r.prefetchAccuracy),
                      AsciiTable::pct(r.prefetchCoverage),
                      AsciiTable::num(issued_ki, 1)});
        }
    }

    print(t.render());
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "R-F7";
    s.binary = "bench_f7_accuracy_coverage";
    s.title = "prefetch accuracy and coverage per scheme";
    s.shape =
        "CPF lifts FDP accuracy far above the no-filter variant while "
        "keeping the best coverage of all schemes; NLP is accurate but "
        "covers only sequential misses; SB sits between";
    s.paperRef = "MICRO-32, Fig. 7 (accuracy and coverage)";
    s.warmup = kWarmup;
    s.measure = kMeasure;
    s.grids = {{allWorkloadNames(), allSchemes(), {},
                /*withBaseline=*/false}};
    s.render = render;
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
