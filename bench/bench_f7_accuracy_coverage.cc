/**
 * R-F7 — Prefetch accuracy (useful/issued) and coverage (fraction of
 * would-be misses served by prefetching) per scheme.
 */

#include "bench_util.hh"

using namespace fdip;
using namespace fdip::bench;

int
main(int argc, char **argv)
{
    print(experimentBanner(
        "R-F7", "prefetch accuracy and coverage per scheme",
        "CPF lifts FDP accuracy far above the no-filter variant while "
        "keeping the best coverage of all schemes; NLP is accurate but "
        "covers only sequential misses; SB sits between"));

    Runner runner = makeRunner(argc, argv, kWarmup, kMeasure);

    for (const auto &name : allWorkloadNames()) {
        for (auto scheme : allSchemes())
            runner.enqueue(name, scheme);
    }
    runner.runPending();
    print(runner.sweepSummary());

    AsciiTable t({"workload", "scheme", "accuracy", "coverage",
                  "issued/KI"});

    for (const auto &name : allWorkloadNames()) {
        for (auto scheme : allSchemes()) {
            const SimResults &r = runner.run(name, scheme);
            double issued_ki =
                r.stats.value("mem.prefetches_issued") /
                (static_cast<double>(r.instructions) / 1000.0);
            t.addRow({name, schemeName(scheme),
                      AsciiTable::pct(r.prefetchAccuracy),
                      AsciiTable::pct(r.prefetchCoverage),
                      AsciiTable::num(issued_ki, 1)});
        }
    }

    print(t.render());
    return 0;
}
