/**
 * R-X16 — TLB-hierarchy sweep: fetch-directed prefetching under a
 * two-level TLB with bounded page-walk bandwidth. A deliberately
 * translation-hostile machine (16-entry ITLB, scrambled pages,
 * 60-cycle walks) sweeps three axes:
 *
 *  - L2-TLB size (0 = single-level, every ITLB miss is a full walk),
 *  - page-table walker count (1 / 2 / unlimited) with demand walks
 *    queueing ahead of prefetch walks,
 *  - the decoupled FTQ TLB prefetcher, against the drop/wait/fill
 *    prefetch-translation policies it complements.
 *
 * The l2-0 x unlimited-walker points are the PR 1 single-level model
 * bit-for-bit (verified by the golden and tick-skip suites); more
 * walkers or a bigger L2 TLB must never lose IPC.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

#include "vm/mmu.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

constexpr unsigned kItlbEntries = 16;
constexpr Cycle kWalkLatency = 60;
constexpr unsigned kL2Sizes[] = {0u, 64u, 256u};
constexpr unsigned kWalkerCounts[] = {1u, 2u, 0u}; // 0 = unlimited

const std::vector<TlbPrefetchPolicy> &
policies()
{
    static const std::vector<TlbPrefetchPolicy> p = {
        TlbPrefetchPolicy::Drop, TlbPrefetchPolicy::Wait,
        TlbPrefetchPolicy::Fill};
    return p;
}

Runner::Tweak
hierTweak(TlbPrefetchPolicy policy, unsigned l2_entries,
          unsigned num_walkers, bool tlbpf)
{
    return [policy, l2_entries, num_walkers, tlbpf](SimConfig &cfg) {
        applyVmConfig(cfg, policy, PageMapKind::Scrambled,
                      kItlbEntries);
        cfg.vm.walkLatency = kWalkLatency;
        applyTlbHierarchy(cfg, l2_entries, num_walkers, tlbpf);
    };
}

std::string
walkerName(unsigned num_walkers)
{
    return num_walkers == 0 ? "winf" : strprintf("w%u", num_walkers);
}

std::string
hierKey(TlbPrefetchPolicy policy, unsigned l2_entries,
        unsigned num_walkers, bool tlbpf)
{
    return strprintf("%s-l2_%u-%s%s", tlbPolicyName(policy), l2_entries,
                     walkerName(num_walkers).c_str(),
                     tlbpf ? "-tlbpf" : "");
}

std::string
hierLabel(TlbPrefetchPolicy policy, unsigned l2_entries,
          unsigned num_walkers, bool tlbpf)
{
    return strprintf(
        "%s policy, %u-entry L2 TLB, %s walker(s)%s",
        tlbPolicyName(policy), l2_entries,
        num_walkers == 0 ? "unlimited"
                         : strprintf("%u", num_walkers).c_str(),
        tlbpf ? ", FTQ TLB prefetcher" : "");
}

/**
 * The curated variant list: every point appears in at least one
 * rendered table.
 *  - per policy: the single-level/unlimited reference (PR 1 model)
 *    and the 64-entry-L2 / 2-walker hierarchy point,
 *  - the L2-size ladder at 1 walker and the walker ladder at 64
 *    entries (fill policy),
 *  - the TLB prefetcher on the hierarchy point, per policy.
 */
std::vector<TweakVariant>
hierVariants()
{
    std::vector<TweakVariant> out;
    out.push_back({"", "VM off (reference)", nullptr});
    auto add = [&out](TlbPrefetchPolicy p, unsigned l2, unsigned w,
                      bool tlbpf) {
        std::string key = hierKey(p, l2, w, tlbpf);
        for (const auto &v : out) {
            if (v.key == key)
                return;
        }
        out.push_back({key, hierLabel(p, l2, w, tlbpf),
                       hierTweak(p, l2, w, tlbpf)});
    };
    for (TlbPrefetchPolicy p : policies()) {
        add(p, 0, 0, false);  // single-level, unlimited: PR 1 model
        add(p, 64, 2, false); // the hierarchy point
        add(p, 64, 2, true);  // ... with translation lookahead
    }
    for (unsigned l2 : kL2Sizes)
        add(TlbPrefetchPolicy::Fill, l2, 1, false);
    for (unsigned w : kWalkerCounts)
        add(TlbPrefetchPolicy::Fill, 64, w, false);
    return out;
}

double
statPerKilo(const SimResults &r, const char *stat)
{
    double kinsts = static_cast<double>(r.instructions) / 1000.0;
    return kinsts > 0.0 ? r.stats.value(stat) / kinsts : 0.0;
}

void
render(Runner &runner)
{
    auto gmean_vs_off = [&runner](TlbPrefetchPolicy p, unsigned l2,
                                  unsigned w, bool tlbpf) {
        std::vector<double> rel;
        for (const auto &name : largeFootprintNames()) {
            const SimResults &off =
                runner.run(name, PrefetchScheme::FdpRemove);
            const SimResults &on = runner.run(
                name, PrefetchScheme::FdpRemove, hierKey(p, l2, w, tlbpf),
                hierTweak(p, l2, w, tlbpf));
            rel.push_back(on.ipc / off.ipc - 1.0);
        }
        return gmeanSpeedup(rel);
    };
    auto mean_stat = [&runner](TlbPrefetchPolicy p, unsigned l2,
                               unsigned w, bool tlbpf,
                               const char *stat) {
        std::vector<double> v;
        for (const auto &name : largeFootprintNames()) {
            v.push_back(statPerKilo(
                runner.run(name, PrefetchScheme::FdpRemove,
                           hierKey(p, l2, w, tlbpf),
                           hierTweak(p, l2, w, tlbpf)),
                stat));
        }
        return mean(v);
    };

    AsciiTable l2t({"l2 tlb entries", "gmean ipc vs vm-off",
                    "l2 hits/kinst", "walks/kinst"});
    for (unsigned l2 : kL2Sizes) {
        l2t.addRow({AsciiTable::integer(l2),
                    AsciiTable::pct(gmean_vs_off(
                        TlbPrefetchPolicy::Fill, l2, 1, false)),
                    AsciiTable::num(mean_stat(TlbPrefetchPolicy::Fill,
                                              l2, 1, false,
                                              "l2tlb.hits"),
                                    2),
                    AsciiTable::num(mean_stat(TlbPrefetchPolicy::Fill,
                                              l2, 1, false, "mmu.walks"),
                                    2)});
    }
    print("L2-TLB size (fill policy, 1 walker):\n");
    print(l2t.render());

    AsciiTable wt({"walkers", "gmean ipc vs vm-off",
                   "queue cycles/kinst", "walks queued/kinst"});
    for (unsigned w : kWalkerCounts) {
        wt.addRow({w == 0 ? "unlimited" : AsciiTable::integer(w),
                   AsciiTable::pct(gmean_vs_off(TlbPrefetchPolicy::Fill,
                                                64, w, false)),
                   AsciiTable::num(mean_stat(TlbPrefetchPolicy::Fill,
                                             64, w, false,
                                             "mmu.walk_queue_cycles"),
                                   2),
                   AsciiTable::num(mean_stat(TlbPrefetchPolicy::Fill,
                                             64, w, false,
                                             "mmu.walks_queued"),
                                   2)});
    }
    print("\nwalker bandwidth (fill policy, 64-entry L2 TLB):\n");
    print(wt.render());

    AsciiTable pt({"policy", "single-level w-inf", "l2-64 w2",
                   "l2-64 w2 + tlb-pf", "tlbpf walks/kinst"});
    for (TlbPrefetchPolicy p : policies()) {
        pt.addRow({tlbPolicyName(p),
                   AsciiTable::pct(gmean_vs_off(p, 0, 0, false)),
                   AsciiTable::pct(gmean_vs_off(p, 64, 2, false)),
                   AsciiTable::pct(gmean_vs_off(p, 64, 2, true)),
                   AsciiTable::num(mean_stat(p, 64, 2, true,
                                             "mmu.tlbpf_walks"),
                                   2)});
    }
    print("\npolicy x hierarchy x decoupled TLB prefetching "
          "(gmean ipc vs vm-off):\n");
    print(pt.render());
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "R-X16";
    s.binary = "bench_x16_tlb_hierarchy";
    s.title = "TLB-hierarchy sweep (L2 TLB x walkers x policy, FDP "
              "remove-CPF)";
    s.shape =
        "a bigger L2 TLB or more walkers never hurts; the decoupled "
        "TLB prefetcher recovers most of what the drop policy loses; "
        "the l2-0/unlimited points match the single-level model";
    s.paperRef = "VM/TLB extension (beyond the paper; Jamet et al. "
                 "2021 methodology)";
    s.question = "Does FDIP's deep FTQ lookahead leave enough time "
                 "to hide two-level TLB misses and bounded page-walk "
                 "bandwidth, and does decoupled TLB prefetching beat "
                 "the fill policy?";
    s.warmup = kSweepWarmup;
    s.measure = kSweepMeasure;
    s.grids = {{largeFootprintNames(), {PrefetchScheme::FdpRemove},
                hierVariants(), /*withBaseline=*/false}};
    s.render = render;
    s.notes = "16-entry ITLB, scrambled pages, 60-cycle walks, "
              "8-cycle L2-TLB refills; demand walks always queue "
              "ahead of prefetch walks.";
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
