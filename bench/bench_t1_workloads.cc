/**
 * R-T1 — Workload characterization (the paper's benchmark table).
 * Columns: static code footprint, dynamic control-flow fraction,
 * baseline (no-prefetch) L1-I MPKI, baseline IPC, and conditional
 * mispredictions per kilo-instruction.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"
#include "trace/synth_builder.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

void
render(Runner &runner)
{
    AsciiTable t({"workload", "code KB", "dyn branch%", "base IPC",
                  "L1-I MPKI", "cond misp/KI"});

    for (const auto &name : allWorkloadNames()) {
        auto prog = buildProgram(findProfile(name));
        const SimResults &r = runner.run(name, PrefetchScheme::None);

        // Dynamic CF fraction: all control transfers the BPU verified
        // in the measurement window.
        double cf = r.stats.value("bpu.cf_seen");

        t.addRow({name,
                  AsciiTable::num(prog->codeBytes() / 1024.0, 0),
                  AsciiTable::pct(cf / double(r.instructions), 1),
                  AsciiTable::num(r.ipc, 3),
                  AsciiTable::num(r.mpki, 2),
                  AsciiTable::num(r.condMispredictPerKilo, 2)});
    }

    print(t.render());
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "R-T1";
    s.binary = "bench_t1_workloads";
    s.title = "workload characterization (no-prefetch baseline)";
    s.shape =
        "large-footprint workloads (burg..vortex) show high L1-I MPKI; "
        "small ones (li..deltablue) are nearly cache-resident";
    s.paperRef = "MICRO-32, Table 1 (benchmark characterization)";
    s.warmup = kWarmup;
    s.measure = kMeasure;
    s.grids = {{allWorkloadNames(), {PrefetchScheme::None}, {},
                /*withBaseline=*/false}};
    s.render = render;
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
