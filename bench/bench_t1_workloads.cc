/**
 * R-T1 — Workload characterization (the paper's benchmark table).
 * Columns: static code footprint, dynamic control-flow fraction,
 * baseline (no-prefetch) L1-I MPKI, baseline IPC, and conditional
 * mispredictions per kilo-instruction.
 */

#include "bench_util.hh"
#include "trace/synth_builder.hh"

using namespace fdip;
using namespace fdip::bench;

int
main(int argc, char **argv)
{
    print(experimentBanner(
        "R-T1", "workload characterization (no-prefetch baseline)",
        "large-footprint workloads (burg..vortex) show high L1-I MPKI; "
        "small ones (li..deltablue) are nearly cache-resident"));

    Runner runner = makeRunner(argc, argv, kWarmup, kMeasure);

    for (const auto &name : allWorkloadNames())
        runner.enqueue(name, PrefetchScheme::None);
    runner.runPending();
    print(runner.sweepSummary());

    AsciiTable t({"workload", "code KB", "dyn branch%", "base IPC",
                  "L1-I MPKI", "cond misp/KI"});

    for (const auto &name : allWorkloadNames()) {
        auto prog = buildProgram(findProfile(name));
        const SimResults &r = runner.run(name, PrefetchScheme::None);

        // Dynamic CF fraction: all control transfers the BPU verified
        // in the measurement window.
        double cf = r.stats.value("bpu.cf_seen");

        t.addRow({name,
                  AsciiTable::num(prog->codeBytes() / 1024.0, 0),
                  AsciiTable::pct(cf / double(r.instructions), 1),
                  AsciiTable::num(r.ipc, 3),
                  AsciiTable::num(r.mpki, 2),
                  AsciiTable::num(r.condMispredictPerKilo, 2)});
    }

    print(t.render());
    return 0;
}
