/**
 * R-A3 — Direction-predictor ablation: FDIP effectiveness depends on
 * the front-end staying on the correct path. Sweeps the predictor
 * (bimodal, gshare, local 2-level, McFarling hybrid) for the baseline
 * and FDP, plus a small victim-cache ablation beside it.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

constexpr PredictorKind kPredictors[] = {
    PredictorKind::Bimodal, PredictorKind::Gshare,
    PredictorKind::Local2Level, PredictorKind::Hybrid};

constexpr unsigned kVictimEntries[] = {0u, 16u};

Runner::Tweak
predTweak(PredictorKind kind)
{
    return [kind](SimConfig &cfg) {
        cfg.bpu.predictor = kind;
    };
}

std::string
predKey(PredictorKind kind)
{
    return std::string("pred-") + predictorKindName(kind);
}

Runner::Tweak
vcTweak(unsigned entries)
{
    return [entries](SimConfig &cfg) {
        cfg.mem.victimCacheEntries = entries;
    };
}

std::string
vcKey(unsigned entries)
{
    return "vc" + std::to_string(entries);
}

std::vector<TweakVariant>
predVariants()
{
    std::vector<TweakVariant> out;
    for (PredictorKind kind : kPredictors) {
        out.push_back({predKey(kind),
                       std::string(predictorKindName(kind)) +
                           " direction predictor",
                       predTweak(kind)});
    }
    return out;
}

std::vector<TweakVariant>
vcVariants()
{
    std::vector<TweakVariant> out;
    for (unsigned entries : kVictimEntries) {
        out.push_back({vcKey(entries),
                       entries == 0
                           ? std::string("no victim cache")
                           : strprintf("%u-entry victim cache",
                                       entries),
                       vcTweak(entries)});
    }
    return out;
}

void
render(Runner &runner)
{
    AsciiTable t({"predictor", "gmean base IPC", "cond misp/KI",
                  "gmean FDP speedup"});

    for (PredictorKind kind : kPredictors) {
        auto tweak = predTweak(kind);
        std::string key = predKey(kind);
        std::vector<double> ipcs, misps, speedups;
        for (const auto &name : largeFootprintNames()) {
            const SimResults &base = runner.run(
                name, PrefetchScheme::None, key, tweak);
            ipcs.push_back(base.ipc);
            misps.push_back(base.condMispredictPerKilo);
            speedups.push_back(runner.speedup(
                name, PrefetchScheme::FdpRemove, key, tweak));
        }
        double log_ipc = 0;
        for (double v : ipcs)
            log_ipc += std::log(v);
        t.addRow({predictorKindName(kind),
                  AsciiTable::num(std::exp(log_ipc / ipcs.size()), 3),
                  AsciiTable::num(mean(misps), 2),
                  AsciiTable::pct(gmeanSpeedup(speedups))});
    }
    print(t.render());

    // Victim-cache side experiment: conflict-miss relief vs FDP.
    print("\nvictim cache (16-entry FA) beside the 2-way L1-I:\n");
    AsciiTable v({"config", "gmean base IPC", "gmean FDP speedup"});
    for (auto [label, entries] :
         {std::pair<const char *, unsigned>{"no victim cache", 0u},
          std::pair<const char *, unsigned>{"16-entry victim cache",
                                            16u}}) {
        auto tweak = vcTweak(entries);
        std::string key = vcKey(entries);
        std::vector<double> ipcs, speedups;
        for (const auto &name : largeFootprintNames()) {
            const SimResults &base = runner.run(
                name, PrefetchScheme::None, key, tweak);
            ipcs.push_back(base.ipc);
            speedups.push_back(runner.speedup(
                name, PrefetchScheme::FdpRemove, key, tweak));
        }
        double log_ipc = 0;
        for (double x : ipcs)
            log_ipc += std::log(x);
        v.addRow({label,
                  AsciiTable::num(std::exp(log_ipc / ipcs.size()), 3),
                  AsciiTable::pct(gmeanSpeedup(speedups))});
    }
    print(v.render());
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "R-A3";
    s.binary = "bench_a3_predictors";
    s.title = "direction predictor x {baseline, FDP remove}";
    s.shape =
        "better prediction -> fewer wrong-path fetches -> higher "
        "baseline IPC and better FDP candidate quality; the hybrid "
        "matches or beats its components";
    s.paperRef = "direction-predictor + victim-cache ablation "
                 "(not a paper figure)";
    s.warmup = kSweepWarmup;
    s.measure = kSweepMeasure;
    s.grids = {
        {largeFootprintNames(), {PrefetchScheme::FdpRemove},
         predVariants(), true},
        {largeFootprintNames(), {PrefetchScheme::FdpRemove},
         vcVariants(), true},
    };
    s.render = render;
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
