/**
 * R-A3 — Direction-predictor ablation: FDIP effectiveness depends on
 * the front-end staying on the correct path. Sweeps the predictor
 * (bimodal, gshare, local 2-level, McFarling hybrid) for the baseline
 * and FDP, plus a small victim-cache ablation beside it.
 */

#include "bench_util.hh"

using namespace fdip;
using namespace fdip::bench;

int
main(int argc, char **argv)
{
    print(experimentBanner(
        "R-A3", "direction predictor x {baseline, FDP remove}",
        "better prediction -> fewer wrong-path fetches -> higher "
        "baseline IPC and better FDP candidate quality; the hybrid "
        "matches or beats its components"));

    Runner runner = makeRunner(argc, argv, kSweepWarmup, kSweepMeasure);

    for (auto kind : {PredictorKind::Bimodal, PredictorKind::Gshare,
                      PredictorKind::Local2Level,
                      PredictorKind::Hybrid}) {
        for (const auto &name : largeFootprintNames()) {
            runner.enqueueSpeedup(
                name, PrefetchScheme::FdpRemove,
                std::string("pred-") + predictorKindName(kind),
                [kind](SimConfig &cfg) {
                    cfg.bpu.predictor = kind;
                });
        }
    }
    for (unsigned entries : {0u, 16u}) {
        for (const auto &name : largeFootprintNames()) {
            runner.enqueueSpeedup(
                name, PrefetchScheme::FdpRemove,
                "vc" + std::to_string(entries),
                [entries](SimConfig &cfg) {
                    cfg.mem.victimCacheEntries = entries;
                });
        }
    }
    runner.runPending();
    print(runner.sweepSummary());

    AsciiTable t({"predictor", "gmean base IPC", "cond misp/KI",
                  "gmean FDP speedup"});

    for (auto kind : {PredictorKind::Bimodal, PredictorKind::Gshare,
                      PredictorKind::Local2Level,
                      PredictorKind::Hybrid}) {
        auto tweak = [kind](SimConfig &cfg) {
            cfg.bpu.predictor = kind;
        };
        std::string key = std::string("pred-") + predictorKindName(kind);
        std::vector<double> ipcs, misps, speedups;
        for (const auto &name : largeFootprintNames()) {
            const SimResults &base = runner.run(
                name, PrefetchScheme::None, key, tweak);
            ipcs.push_back(base.ipc);
            misps.push_back(base.condMispredictPerKilo);
            speedups.push_back(runner.speedup(
                name, PrefetchScheme::FdpRemove, key, tweak));
        }
        double log_ipc = 0;
        for (double v : ipcs)
            log_ipc += std::log(v);
        t.addRow({predictorKindName(kind),
                  AsciiTable::num(std::exp(log_ipc / ipcs.size()), 3),
                  AsciiTable::num(mean(misps), 2),
                  AsciiTable::pct(gmeanSpeedup(speedups))});
    }
    print(t.render());

    // Victim-cache side experiment: conflict-miss relief vs FDP.
    print("\nvictim cache (16-entry FA) beside the 2-way L1-I:\n");
    AsciiTable v({"config", "gmean base IPC", "gmean FDP speedup"});
    for (auto [label, entries] :
         {std::pair<const char *, unsigned>{"no victim cache", 0u},
          std::pair<const char *, unsigned>{"16-entry victim cache",
                                            16u}}) {
        auto tweak = [entries](SimConfig &cfg) {
            cfg.mem.victimCacheEntries = entries;
        };
        std::string key = "vc" + std::to_string(entries);
        std::vector<double> ipcs, speedups;
        for (const auto &name : largeFootprintNames()) {
            const SimResults &base = runner.run(
                name, PrefetchScheme::None, key, tweak);
            ipcs.push_back(base.ipc);
            speedups.push_back(runner.speedup(
                name, PrefetchScheme::FdpRemove, key, tweak));
        }
        double log_ipc = 0;
        for (double x : ipcs)
            log_ipc += std::log(x);
        v.addRow({label,
                  AsciiTable::num(std::exp(log_ipc / ipcs.size()), 3),
                  AsciiTable::pct(gmeanSpeedup(speedups))});
    }
    print(v.render());
    return 0;
}
