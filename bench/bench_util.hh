/**
 * @file bench_util.hh
 * Shared plumbing for the experiment-reproduction binaries: run
 * lengths, the workload lists, and the scheme sets each figure uses.
 */

#ifndef FDIP_BENCH_BENCH_UTIL_HH
#define FDIP_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "sim/report.hh"
#include "sim/runner.hh"
#include "trace/profile.hh"

namespace fdip::bench
{

/** Standard run lengths: long enough for stable means, short enough
 *  that the whole harness regenerates every figure in minutes. */
constexpr std::uint64_t kWarmup = 200 * 1000;
constexpr std::uint64_t kMeasure = 800 * 1000;

/** Shorter runs for wide parameter sweeps. */
constexpr std::uint64_t kSweepWarmup = 150 * 1000;
constexpr std::uint64_t kSweepMeasure = 500 * 1000;

inline std::vector<PrefetchScheme>
allSchemes()
{
    return {PrefetchScheme::Nlp, PrefetchScheme::StreamBuffer,
            PrefetchScheme::FdpNone, PrefetchScheme::FdpEnqueue,
            PrefetchScheme::FdpRemove, PrefetchScheme::FdpIdeal};
}

inline std::vector<PrefetchScheme>
fdpSchemes()
{
    return {PrefetchScheme::FdpNone, PrefetchScheme::FdpEnqueue,
            PrefetchScheme::FdpRemove, PrefetchScheme::FdpIdeal};
}

inline void
print(const std::string &s)
{
    std::fputs(s.c_str(), stdout);
    std::fflush(stdout);
}

/**
 * Construct the bench's Runner from the command line:
 *   --jobs N     worker threads for runPending() (default: FDIP_JOBS
 *                env var, else hardware concurrency)
 *   --warmup N   warmup instructions per run (default: bench-specific)
 *   --measure N  measured instructions per run (default: bench-specific)
 * The run-length overrides let CI smoke-sweep every bench quickly.
 */
inline Runner
makeRunner(int argc, char **argv, std::uint64_t warmup,
           std::uint64_t measure)
{
    unsigned jobs = Runner::defaultJobs();
    for (int i = 1; i < argc; ++i) {
        auto needsValue = [&](const char *flag) {
            fatal_if(i + 1 >= argc, "%s requires a value", flag);
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--jobs") == 0) {
            jobs = static_cast<unsigned>(
                std::strtoul(needsValue("--jobs"), nullptr, 10));
            fatal_if(jobs == 0, "--jobs must be >= 1");
        } else if (std::strcmp(argv[i], "--warmup") == 0) {
            warmup = std::strtoull(needsValue("--warmup"), nullptr, 10);
        } else if (std::strcmp(argv[i], "--measure") == 0) {
            measure = std::strtoull(needsValue("--measure"), nullptr, 10);
            fatal_if(measure == 0, "--measure must be >= 1");
        } else {
            fatal("unknown argument '%s' (expected --jobs/--warmup/"
                  "--measure)", argv[i]);
        }
    }
    Runner runner(warmup, measure);
    runner.setJobs(jobs);
    return runner;
}

/**
 * Queue the (workload x scheme) grid — plus the no-prefetch baselines
 * speedup() needs — without executing anything. Call
 * Runner::runPending() once all grids are queued so the whole bench
 * parallelizes as one batch.
 */
inline void
enqueueGrid(Runner &runner, const std::vector<std::string> &workloads,
            const std::vector<PrefetchScheme> &schemes,
            const std::string &tweak_key = "",
            const Runner::Tweak &tweak = nullptr)
{
    for (const auto &w : workloads) {
        for (auto s : schemes)
            runner.enqueueSpeedup(w, s, tweak_key, tweak);
    }
}

} // namespace fdip::bench

#endif // FDIP_BENCH_BENCH_UTIL_HH
