/**
 * @file bench_util.hh
 * Shared plumbing for the experiment-reproduction binaries: run
 * lengths, the scheme sets each figure uses, and output helpers.
 *
 * Each bench declares its sweep as an ExperimentSpec
 * (sim/experiment.hh) and registers it with
 * FDIP_REGISTER_EXPERIMENT; the shared driver in experiment_main.cc
 * parses arguments, expands the grid, runs the sweep, and calls the
 * bench's render callback.
 */

#ifndef FDIP_BENCH_BENCH_UTIL_HH
#define FDIP_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "sim/report.hh"
#include "sim/runner.hh"
#include "trace/profile.hh"

namespace fdip::bench
{

/** Standard run lengths: long enough for stable means, short enough
 *  that the whole harness regenerates every figure in minutes. */
constexpr std::uint64_t kWarmup = 200 * 1000;
constexpr std::uint64_t kMeasure = 800 * 1000;

/** Shorter runs for wide parameter sweeps. */
constexpr std::uint64_t kSweepWarmup = 150 * 1000;
constexpr std::uint64_t kSweepMeasure = 500 * 1000;

inline std::vector<PrefetchScheme>
allSchemes()
{
    return {PrefetchScheme::Nlp, PrefetchScheme::StreamBuffer,
            PrefetchScheme::FdpNone, PrefetchScheme::FdpEnqueue,
            PrefetchScheme::FdpRemove, PrefetchScheme::FdpIdeal};
}

inline std::vector<PrefetchScheme>
fdpSchemes()
{
    return {PrefetchScheme::FdpNone, PrefetchScheme::FdpEnqueue,
            PrefetchScheme::FdpRemove, PrefetchScheme::FdpIdeal};
}

inline void
print(const std::string &s)
{
    std::fputs(s.c_str(), stdout);
    std::fflush(stdout);
}

} // namespace fdip::bench

#endif // FDIP_BENCH_BENCH_UTIL_HH
