/**
 * R-A1 — Design-choice ablations called out in DESIGN.md §6, plus the
 * oracle upper bound:
 *
 *  (a) prefetch buffer vs filling prefetches straight into the L1-I
 *      (cache pollution from wrong-path prefetches),
 *  (b) idle-bus-only prefetch transfers vs letting prefetches queue
 *      in front of demand traffic (demand priority),
 *  (c) conservative vs aggressive enqueue-CPF port policy,
 *  (d) the perfect-address oracle prefetcher as the ceiling.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

void
l1fillTweak(SimConfig &c)
{
    c.fdp.fillIntoL1 = true;
}

void
busqTweak(SimConfig &c)
{
    c.mem.prefetchMayQueueOnBus = true;
}

void
onePortTweak(SimConfig &c)
{
    c.mem.l1TagPorts = 1;
}

void
render(Runner &runner)
{
    // (a) + (b) + (d): per-workload gmean table.
    AsciiTable t({"variant", "gmean speedup", "mean L2-bus util"});

    struct Variant
    {
        const char *label;
        PrefetchScheme scheme;
        Runner::Tweak tweak;
        const char *key;
    };

    std::vector<Variant> variants = {
        {"FDP -> prefetch buffer (default)", PrefetchScheme::FdpRemove,
         nullptr, ""},
        {"FDP -> straight into L1-I", PrefetchScheme::FdpRemove,
         l1fillTweak, "l1fill"},
        {"FDP, prefetch may queue on bus", PrefetchScheme::FdpRemove,
         busqTweak, "busq"},
        {"FDP no-filter, may queue on bus", PrefetchScheme::FdpNone,
         busqTweak, "busq"},
        {"oracle (perfect addresses)", PrefetchScheme::Oracle,
         nullptr, ""},
    };

    for (const auto &v : variants) {
        std::vector<double> speedups, utils;
        for (const auto &name : largeFootprintNames()) {
            speedups.push_back(
                runner.speedup(name, v.scheme, v.key, v.tweak));
            const SimResults &r = runner.run(name, v.scheme, v.key,
                                             v.tweak);
            utils.push_back(r.l2BusUtil);
        }
        t.addRow({v.label, AsciiTable::pct(gmeanSpeedup(speedups)),
                  AsciiTable::pct(mean(utils))});
    }
    print(t.render());

    // (c): enqueue policies under port scarcity (1 port = demand only).
    print("\nenqueue-CPF port policy (1 tag port: no idle probes):\n");
    AsciiTable p({"variant", "gmean speedup"});
    for (auto [label, scheme] :
         {std::pair<const char *, PrefetchScheme>{
              "enqueue (conservative)", PrefetchScheme::FdpEnqueue},
          std::pair<const char *, PrefetchScheme>{
              "enqueue (aggressive)",
              PrefetchScheme::FdpEnqueueAggressive}}) {
        std::vector<double> speedups;
        for (const auto &name : largeFootprintNames()) {
            speedups.push_back(runner.speedup(
                name, scheme, "1port", onePortTweak));
        }
        p.addRow({label, AsciiTable::pct(gmeanSpeedup(speedups))});
    }
    print(p.render());
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "R-A1";
    s.binary = "bench_a1_ablations";
    s.title = "design ablations (FDP remove-CPF unless noted)";
    s.shape =
        "buffer fills save bandwidth vs direct L1 fills; letting "
        "prefetches queue on the bus trades bandwidth for timeliness "
        "(it can help when, as here, no data traffic shares the bus — "
        "the paper's demand-priority argument assumes a shared bus); "
        "oracle bounds all";
    s.paperRef = "DESIGN.md sec. 6 ablations + oracle bound "
                 "(not a paper figure)";
    s.warmup = kSweepWarmup;
    s.measure = kSweepMeasure;
    s.grids = {
        {largeFootprintNames(), {PrefetchScheme::FdpRemove},
         {{"", "prefetch buffer, idle-bus transfers (default)",
           nullptr},
          {"l1fill", "fill straight into L1-I", l1fillTweak},
          {"busq", "prefetch may queue on the bus", busqTweak}},
         true},
        {largeFootprintNames(), {PrefetchScheme::FdpNone},
         {{"busq", "prefetch may queue on the bus", busqTweak}}, true},
        {largeFootprintNames(), {PrefetchScheme::Oracle}, {}, true},
        {largeFootprintNames(),
         {PrefetchScheme::FdpEnqueue,
          PrefetchScheme::FdpEnqueueAggressive},
         {{"1port", "single L1-I tag port", onePortTweak}}, true},
    };
    s.render = render;
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
