/**
 * R-A1 — Design-choice ablations called out in DESIGN.md §6, plus the
 * oracle upper bound:
 *
 *  (a) prefetch buffer vs filling prefetches straight into the L1-I
 *      (cache pollution from wrong-path prefetches),
 *  (b) idle-bus-only prefetch transfers vs letting prefetches queue
 *      in front of demand traffic (demand priority),
 *  (c) conservative vs aggressive enqueue-CPF port policy,
 *  (d) the perfect-address oracle prefetcher as the ceiling.
 */

#include "bench_util.hh"

using namespace fdip;
using namespace fdip::bench;

int
main(int argc, char **argv)
{
    print(experimentBanner(
        "R-A1", "design ablations (FDP remove-CPF unless noted)",
        "buffer fills save bandwidth vs direct L1 fills; letting "
        "prefetches queue on the bus trades bandwidth for timeliness "
        "(it can help when, as here, no data traffic shares the bus — "
        "the paper's demand-priority argument assumes a shared bus); "
        "oracle bounds all"));

    Runner runner = makeRunner(argc, argv, kSweepWarmup, kSweepMeasure);

    // (a) + (b) + (d): per-workload gmean table.
    AsciiTable t({"variant", "gmean speedup", "mean L2-bus util"});

    struct Variant
    {
        const char *label;
        PrefetchScheme scheme;
        Runner::Tweak tweak;
        const char *key;
    };

    std::vector<Variant> variants = {
        {"FDP -> prefetch buffer (default)", PrefetchScheme::FdpRemove,
         nullptr, ""},
        {"FDP -> straight into L1-I", PrefetchScheme::FdpRemove,
         [](SimConfig &c) { c.fdp.fillIntoL1 = true; }, "l1fill"},
        {"FDP, prefetch may queue on bus", PrefetchScheme::FdpRemove,
         [](SimConfig &c) { c.mem.prefetchMayQueueOnBus = true; },
         "busq"},
        {"FDP no-filter, may queue on bus", PrefetchScheme::FdpNone,
         [](SimConfig &c) { c.mem.prefetchMayQueueOnBus = true; },
         "busq"},
        {"oracle (perfect addresses)", PrefetchScheme::Oracle,
         nullptr, ""},
    };

    for (const auto &v : variants) {
        for (const auto &name : largeFootprintNames())
            runner.enqueueSpeedup(name, v.scheme, v.key, v.tweak);
    }
    for (auto scheme : {PrefetchScheme::FdpEnqueue,
                        PrefetchScheme::FdpEnqueueAggressive}) {
        for (const auto &name : largeFootprintNames()) {
            runner.enqueueSpeedup(name, scheme, "1port",
                                  [](SimConfig &c) {
                                      c.mem.l1TagPorts = 1;
                                  });
        }
    }
    runner.runPending();
    print(runner.sweepSummary());

    for (const auto &v : variants) {
        std::vector<double> speedups, utils;
        for (const auto &name : largeFootprintNames()) {
            speedups.push_back(
                runner.speedup(name, v.scheme, v.key, v.tweak));
            const SimResults &r = runner.run(name, v.scheme, v.key,
                                             v.tweak);
            utils.push_back(r.l2BusUtil);
        }
        t.addRow({v.label, AsciiTable::pct(gmeanSpeedup(speedups)),
                  AsciiTable::pct(mean(utils))});
    }
    print(t.render());

    // (c): enqueue policies under port scarcity (1 port = demand only).
    print("\nenqueue-CPF port policy (1 tag port: no idle probes):\n");
    AsciiTable p({"variant", "gmean speedup"});
    for (auto [label, scheme] :
         {std::pair<const char *, PrefetchScheme>{
              "enqueue (conservative)", PrefetchScheme::FdpEnqueue},
          std::pair<const char *, PrefetchScheme>{
              "enqueue (aggressive)",
              PrefetchScheme::FdpEnqueueAggressive}}) {
        std::vector<double> speedups;
        for (const auto &name : largeFootprintNames()) {
            speedups.push_back(runner.speedup(
                name, scheme, "1port",
                [](SimConfig &c) { c.mem.l1TagPorts = 1; }));
        }
        p.addRow({label, AsciiTable::pct(gmeanSpeedup(speedups))});
    }
    print(p.render());
    return 0;
}
