/**
 * @file gen_experiments.cc
 * Experiment-catalog generator: links every bench's ExperimentSpec
 * translation unit and emits docs/EXPERIMENTS.md from the registry.
 *
 *   fdip_experiments                  print the catalog markdown
 *   fdip_experiments --check <path>   exit 1 if <path> drifts from
 *                                     the registry (CI guard)
 *   fdip_experiments --list           one summary line per experiment
 *   fdip_experiments --describe <id>  full description of one spec
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "sim/experiment.hh"

using namespace fdip;

int
main(int argc, char **argv)
{
    auto specs = ExperimentRegistry::instance().all();
    fatal_if(specs.empty(), "no experiments registered");

    if (argc >= 2 && std::strcmp(argv[1], "--list") == 0) {
        std::fputs(listExperiments(specs).c_str(), stdout);
        return 0;
    }

    if (argc >= 2 && std::strcmp(argv[1], "--describe") == 0) {
        fatal_if(argc < 3, "--describe requires an experiment id");
        const ExperimentSpec *spec =
            ExperimentRegistry::instance().find(argv[2]);
        fatal_if(spec == nullptr, "unknown experiment id '%s' "
                 "(try --list)", argv[2]);
        std::fputs(describeExperiment(*spec).c_str(), stdout);
        return 0;
    }

    std::string md = experimentCatalogMarkdown(specs);

    if (argc >= 2 && std::strcmp(argv[1], "--check") == 0) {
        fatal_if(argc < 3, "--check requires a path");
        std::ifstream in(argv[2], std::ios::binary);
        fatal_if(!in, "--check: cannot read '%s'", argv[2]);
        std::ostringstream buf;
        buf << in.rdbuf();
        if (buf.str() == md) {
            std::fprintf(stderr, "%s matches the spec registry\n",
                         argv[2]);
            return 0;
        }
        std::fprintf(stderr,
                     "%s drifted from the experiment registry.\n"
                     "Regenerate it with:\n"
                     "    ./build/fdip_experiments > %s\n",
                     argv[2], argv[2]);
        return 1;
    }

    fatal_if(argc >= 2, "unknown argument '%s' (expected --check/"
             "--list/--describe or no arguments)", argv[1]);

    std::fputs(md.c_str(), stdout);
    return 0;
}
