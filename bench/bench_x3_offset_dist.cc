/**
 * X-F3 — EXTENSION: distribution of branch-target offset widths across
 * the dynamic branch working set of the whole suite. This is the
 * figure the partitioned-BTB sizing is derived from.
 */

#include <map>

#include "common/intmath.hh"
#include "bench_util.hh"
#include "sim/experiment.hh"
#include "trace/synth_builder.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

void
render(Runner &)
{
    constexpr int kInstsPerWorkload = 300 * 1000;
    std::map<unsigned, std::uint64_t> hist;
    std::uint64_t returns = 0, indirects = 0, total = 0;

    for (const auto &p : workloadSuite()) {
        auto prog = buildProgram(p);
        SyntheticExecutor exec(*prog, p);
        for (int i = 0; i < kInstsPerWorkload; ++i) {
            TraceInstr ti = exec.next();
            if (!isControl(ti.cls) || !ti.taken)
                continue;
            ++total;
            if (ti.cls == InstClass::Return) {
                ++returns;
                continue;
            }
            if (isIndirect(ti.cls)) {
                ++indirects;
                continue;
            }
            std::int64_t delta =
                (static_cast<std::int64_t>(ti.target) -
                 static_cast<std::int64_t>(ti.pc)) /
                static_cast<std::int64_t>(instBytes);
            ++hist[bitsForOffset(delta)];
        }
    }

    AsciiTable t({"offset bits", "% of taken transfers", "cumulative"});
    double cum = 0.0;
    for (auto [bits, count] : hist) {
        double frac = 100.0 * double(count) / double(total);
        cum += frac;
        t.addRow({AsciiTable::integer(bits),
                  AsciiTable::num(frac, 2) + "%",
                  AsciiTable::num(cum, 2) + "%"});
    }
    t.addRow({"returns (no target field)",
              AsciiTable::num(100.0 * double(returns) / double(total), 2)
                  + "%", ""});
    t.addRow({"indirect (full width)",
              AsciiTable::num(100.0 * double(indirects) / double(total),
                              2) + "%", ""});
    print(t.render());

    // Per-partition capture rates under the default sizing.
    double p8 = 0, p13 = 0, p23 = 0;
    for (auto [bits, count] : hist) {
        double frac = double(count) / double(total);
        if (bits <= 8)
            p8 += frac;
        else if (bits <= 13)
            p13 += frac;
        else if (bits <= 23)
            p23 += frac;
    }
    print(strprintf(
        "\npartition demand: <=8b %.1f%% (+returns %.1f%%), 9-13b "
        "%.1f%%, 14-23b %.1f%%, full %.1f%%\n",
        p8 * 100, 100.0 * double(returns) / double(total), p13 * 100,
        p23 * 100, 100.0 * double(indirects) / double(total)));
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "X-F3";
    s.binary = "bench_x3_offset_dist";
    s.title = "dynamic branch target offset-width distribution";
    s.shape =
        "short offsets dominate; returns and indirect branches form "
        "the full-width tail — this drives the partition sizing";
    s.paperRef = "FDIP-Revisited (2020) partition-sizing input "
                 "(trace analysis, no simulation)";
    s.question = "How short are dynamic branch-target offsets really "
                 "— i.e. how much target storage can a partitioned "
                 "BTB save?";
    // Walks the traces directly; no Runner grid.
    s.render = render;
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
