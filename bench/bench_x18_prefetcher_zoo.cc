/**
 * R-X18 — competitor prefetcher zoo: the paper's fetch-directed
 * prefetcher head-to-head against metadata-driven record/replay (MANA)
 * and shadow-branch BTB prefill, next to the classic NLP/stream-buffer
 * baselines (docs/PREFETCHERS.md).
 *
 * Axes:
 *  - scheme (nlp / stream / fdp-enqueue / fdp-remove / mana /
 *    shadow-btb; override with FDIP_X18_SCHEMES=mana,shadow-btb,...),
 *  - FTQ depth for FDP remove-CPF (4..64 entries), reproducing the
 *    FDIP-revisited coverage-vs-pollution trade: deeper FTQs see
 *    further ahead (coverage up) but run further down wrong paths
 *    (pollution up),
 *  - shadow-branch decode noise (bogusNoiseDenom), pricing bogus
 *    branch-looking prefills on a variable-length code space.
 *
 * The summary table prices each scheme on the four axes the related
 * work argues about: accuracy, coverage, timeliness, and dedicated
 * metadata storage.
 */

#include <algorithm>
#include <cstdlib>
#include <string>

#include "bench_util.hh"
#include "sim/experiment.hh"
#include "sim/presets.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

constexpr std::size_t kFtqDepths[] = {4, 8, 16, 32, 64};
constexpr unsigned kNoiseDenoms[] = {0, 64, 32};

/** Swept schemes; FDIP_X18_SCHEMES (comma-separated schemeName()
 *  tokens) overrides, e.g. for the CI no-skip re-run of the two new
 *  schemes. */
const std::vector<PrefetchScheme> &
zooSchemes()
{
    static const std::vector<PrefetchScheme> schemes = [] {
        std::vector<PrefetchScheme> out;
        const char *env = std::getenv("FDIP_X18_SCHEMES");
        if (env != nullptr && env[0] != '\0') {
            std::string s(env);
            for (std::size_t i = 0; i < s.size();) {
                std::size_t comma = s.find(',', i);
                std::string tok = s.substr(i, comma - i);
                bool found = false;
                for (PrefetchScheme cand : allPrefetchSchemes()) {
                    if (tok == schemeName(cand)) {
                        out.push_back(cand);
                        found = true;
                        break;
                    }
                }
                fatal_if(!found, "FDIP_X18_SCHEMES: unknown scheme "
                         "'%s'", tok.c_str());
                if (comma == std::string::npos)
                    break;
                i = comma + 1;
            }
        }
        if (out.empty()) {
            out = {PrefetchScheme::Nlp, PrefetchScheme::StreamBuffer,
                   PrefetchScheme::FdpEnqueue,
                   PrefetchScheme::FdpRemove, PrefetchScheme::Mana,
                   PrefetchScheme::ShadowBtb};
        }
        return out;
    }();
    return schemes;
}

bool
zooHas(PrefetchScheme s)
{
    const auto &z = zooSchemes();
    return std::find(z.begin(), z.end(), s) != z.end();
}

/** Scheme-private metadata storage (address-tracking state only; data
 *  arrays like the prefetch/stream buffers are shared machinery and
 *  priced separately by the hierarchy config). 6 bytes per tracked
 *  48-bit address. */
std::uint64_t
metadataBytes(PrefetchScheme s, const SimConfig &cfg)
{
    switch (s) {
      case PrefetchScheme::Nlp:
        return cfg.nlp.queueEntries * 6;
      case PrefetchScheme::StreamBuffer:
        return std::uint64_t(cfg.sb.numBuffers) * (cfg.sb.depth + 1) * 6;
      case PrefetchScheme::FdpNone:
      case PrefetchScheme::FdpEnqueue:
      case PrefetchScheme::FdpEnqueueAggressive:
      case PrefetchScheme::FdpRemove:
      case PrefetchScheme::FdpIdeal:
        // The FTQ itself is the front-end's own structure — FDP's
        // selling point is that its lookahead metadata is free.
        return (cfg.fdp.piqEntries + cfg.fdp.recentFilterEntries) * 6;
      case PrefetchScheme::Mana:
        return ManaPrefetcher::tableCapacityBytes(cfg.mana) +
            cfg.mana.queueEntries * 6;
      case PrefetchScheme::ShadowBtb:
        return ShadowBtbPrefetcher::metadataBytes(cfg.shadow);
      default:
        return 0;
    }
}

Runner::Tweak
ftqTweak(std::size_t entries)
{
    return [entries](SimConfig &cfg) { cfg.ftqEntries = entries; };
}

std::string
ftqKey(std::size_t entries)
{
    return strprintf("ftq%zu", entries);
}

std::vector<TweakVariant>
ftqVariants()
{
    std::vector<TweakVariant> out;
    for (std::size_t n : kFtqDepths) {
        out.push_back({ftqKey(n), strprintf("%zu-entry FTQ", n),
                       ftqTweak(n)});
    }
    return out;
}

Runner::Tweak
noiseTweak(unsigned denom)
{
    return [denom](SimConfig &cfg) {
        cfg.shadow.bogusNoiseDenom = denom;
    };
}

std::string
noiseKey(unsigned denom)
{
    return strprintf("noise%u", denom);
}

std::vector<TweakVariant>
noiseVariants()
{
    std::vector<TweakVariant> out;
    for (unsigned d : kNoiseDenoms) {
        out.push_back(
            {noiseKey(d),
             d == 0 ? std::string("exact decode (no bogus branches)")
                    : strprintf("1-in-%u non-CF slots branch-looking", d),
             noiseTweak(d)});
    }
    return out;
}

const std::vector<std::string> &
axisWorkloads()
{
    static const std::vector<std::string> w = {"gcc", "go", "groff"};
    return w;
}

void
render(Runner &runner)
{
    // Table 1: the zoo summary, mean over the full workload suite.
    AsciiTable t({"scheme", "speedup", "accuracy", "coverage",
                  "timely", "late", "pollution", "metadata"});
    for (PrefetchScheme s : zooSchemes()) {
        std::vector<double> sp, acc, cov, timely, late, poll;
        for (const auto &wl : allWorkloadNames()) {
            const SimResults &r = runner.run(wl, s);
            sp.push_back(runner.speedup(wl, s));
            acc.push_back(r.prefetchAccuracy);
            cov.push_back(r.prefetchCoverage);
            timely.push_back(r.prefetchTimely);
            late.push_back(r.prefetchLate);
            poll.push_back(r.prefetchPollution);
        }
        SimConfig defaults = makeBaselineConfig("gcc", s);
        std::uint64_t meta = metadataBytes(s, defaults);
        t.addRow({schemeName(s), AsciiTable::pct(gmeanSpeedup(sp)),
                  AsciiTable::pct(mean(acc)), AsciiTable::pct(mean(cov)),
                  AsciiTable::pct(mean(timely)),
                  AsciiTable::pct(mean(late)),
                  AsciiTable::pct(mean(poll)),
                  meta >= 1024
                      ? strprintf("%.1fKB", double(meta) / 1024.0)
                      : strprintf("%uB", unsigned(meta))});
    }
    print(strprintf("prefetcher zoo (mean over %zu workloads; "
                    "speedup is gmean vs no-prefetch):\n",
                    allWorkloadNames().size()));
    print(t.render());
    print("\n");

    // Table 2: per-workload speedups, one column per scheme.
    std::vector<std::string> head = {"workload"};
    for (PrefetchScheme s : zooSchemes())
        head.push_back(schemeName(s));
    AsciiTable pw(head);
    for (const auto &wl : allWorkloadNames()) {
        std::vector<std::string> row = {wl};
        for (PrefetchScheme s : zooSchemes())
            row.push_back(AsciiTable::pct(runner.speedup(wl, s)));
        pw.addRow(row);
    }
    print("per-workload speedup vs no-prefetch:\n");
    print(pw.render());
    print("\n");

    // Table 3: the FDIP-revisited coverage-vs-pollution trade on the
    // FTQ-depth axis (deeper FTQ = more lookahead AND more wrong-path
    // exposure).
    if (zooHas(PrefetchScheme::FdpRemove)) {
        AsciiTable ft({"ftq entries", "speedup", "coverage", "timely",
                       "late", "pollution"});
        for (std::size_t n : kFtqDepths) {
            std::vector<double> sp, cov, timely, late, poll;
            for (const auto &wl : axisWorkloads()) {
                const SimResults &r =
                    runner.run(wl, PrefetchScheme::FdpRemove, ftqKey(n),
                               ftqTweak(n));
                sp.push_back(runner.speedup(
                    wl, PrefetchScheme::FdpRemove, ftqKey(n),
                    ftqTweak(n)));
                cov.push_back(r.prefetchCoverage);
                timely.push_back(r.prefetchTimely);
                late.push_back(r.prefetchLate);
                poll.push_back(r.prefetchPollution);
            }
            ft.addRow({AsciiTable::integer(n),
                       AsciiTable::pct(gmeanSpeedup(sp)),
                       AsciiTable::pct(mean(cov)),
                       AsciiTable::pct(mean(timely)),
                       AsciiTable::pct(mean(late)),
                       AsciiTable::pct(mean(poll))});
        }
        print(strprintf("fdp-remove vs FTQ depth (mean over %zu "
                        "workloads):\n", axisWorkloads().size()));
        print(ft.render());
        print("\n");
    }

    // Table 4: shadow-branch decode noise — correct prefills help,
    // bogus branch-looking prefills send fetch down wrong paths.
    if (zooHas(PrefetchScheme::ShadowBtb)) {
        AsciiTable st({"bogus noise", "speedup", "mpki",
                       "correct/KI", "bogus/KI"});
        for (unsigned d : kNoiseDenoms) {
            std::vector<double> sp, mpki, correct, bogus;
            for (const auto &wl : axisWorkloads()) {
                const SimResults &r =
                    runner.run(wl, PrefetchScheme::ShadowBtb,
                               noiseKey(d), noiseTweak(d));
                sp.push_back(runner.speedup(
                    wl, PrefetchScheme::ShadowBtb, noiseKey(d),
                    noiseTweak(d)));
                double ki =
                    static_cast<double>(r.instructions) / 1000.0;
                mpki.push_back(r.mpki);
                correct.push_back(
                    r.stats.value("shadow.prefill_correct") / ki);
                bogus.push_back(
                    r.stats.value("shadow.prefill_bogus") / ki);
            }
            st.addRow({d == 0 ? std::string("none")
                              : strprintf("1/%u", d),
                       AsciiTable::pct(gmeanSpeedup(sp)),
                       AsciiTable::num(mean(mpki), 2),
                       AsciiTable::num(mean(correct), 2),
                       AsciiTable::num(mean(bogus), 2)});
        }
        print(strprintf("shadow-btb vs decode noise (mean over %zu "
                        "workloads):\n", axisWorkloads().size()));
        print(st.render());
    }
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "R-X18";
    s.binary = "bench_x18_prefetcher_zoo";
    s.title = "Competitor prefetcher zoo (FDP vs MANA vs shadow-branch "
              "BTB prefill vs NLP/stream)";
    s.shape =
        "FDP remove-CPF leads on coverage at zero dedicated metadata; "
        "MANA buys competitive coverage with kilobytes of table; "
        "shadow-btb moves no cache lines (accuracy/coverage n/a) and "
        "helps only via cold BTB misses; deeper FTQs raise coverage "
        "and pollution together; bogus shadow prefills hurt "
        "monotonically";
    s.paperRef = "competitor zoo (beyond the paper): MANA-style "
                 "record/replay and shadow-branch BTB prefill vs "
                 "MICRO-32 FDP";
    s.question = "Does fetch-directed prefetching still win against "
                 "schemes that buy their lookahead with dedicated "
                 "metadata (MANA) or decode-time BTB prefill (shadow "
                 "branches), once metadata cost and pollution are on "
                 "the table?";
    s.warmup = kSweepWarmup;
    s.measure = kSweepMeasure;
    std::vector<PrefetchScheme> ftq_schemes;
    if (zooHas(PrefetchScheme::FdpRemove))
        ftq_schemes.push_back(PrefetchScheme::FdpRemove);
    std::vector<PrefetchScheme> noise_schemes;
    if (zooHas(PrefetchScheme::ShadowBtb))
        noise_schemes.push_back(PrefetchScheme::ShadowBtb);
    s.grids = {{allWorkloadNames(), zooSchemes(), {},
                /*withBaseline=*/true},
               {axisWorkloads(), ftq_schemes, ftqVariants(),
                /*withBaseline=*/true},
               {axisWorkloads(), noise_schemes, noiseVariants(),
                /*withBaseline=*/true}};
    s.render = render;
    s.notes = "shadow-btb issues no memory requests, so its "
              "accuracy/coverage/timeliness read 0%: its entire effect "
              "is pre-filling cold BTB/FTB entries from newly arrived "
              "cache lines. Metadata prices address-tracking state "
              "only (6B per 48-bit address; MANA: its region table). "
              "FDIP_X18_SCHEMES overrides the scheme set (used by the "
              "CI no-skip re-run of mana,shadow-btb).";
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
