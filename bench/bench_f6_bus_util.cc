/**
 * R-F6 — L1<->L2 bus utilization per prefetching scheme: the cost side
 * of R-F5. Cache probe filtering exists to buy FDP's coverage without
 * no-filter FDP's bandwidth bill.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

std::vector<PrefetchScheme>
f6Schemes()
{
    return {PrefetchScheme::None, PrefetchScheme::Nlp,
            PrefetchScheme::StreamBuffer, PrefetchScheme::FdpNone,
            PrefetchScheme::FdpEnqueue, PrefetchScheme::FdpRemove,
            PrefetchScheme::FdpIdeal};
}

void
render(Runner &runner)
{
    AsciiTable t({"workload", "none", "NLP", "SB", "FDP nofil",
                  "FDP enq", "FDP rem", "FDP ideal"});

    std::vector<PrefetchScheme> schemes = f6Schemes();

    std::vector<std::vector<double>> cols(schemes.size());
    for (const auto &name : allWorkloadNames()) {
        std::vector<std::string> row{name};
        for (std::size_t i = 0; i < schemes.size(); ++i) {
            const SimResults &r = runner.run(name, schemes[i]);
            cols[i].push_back(r.l2BusUtil);
            row.push_back(AsciiTable::pct(r.l2BusUtil));
        }
        t.addRow(row);
    }

    std::vector<std::string> avg{"mean"};
    for (auto &c : cols)
        avg.push_back(AsciiTable::pct(mean(c)));
    t.addRow(avg);
    print(t.render());
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "R-F6";
    s.binary = "bench_f6_bus_util";
    s.title = "L2-bus utilization per scheme";
    s.shape =
        "no-filter FDP burns by far the most bandwidth; CPF variants "
        "cut it to near the filtered-prefetcher level; the no-prefetch "
        "baseline is the floor";
    s.paperRef = "MICRO-32, Fig. 6 (L2 bus utilization)";
    s.warmup = kWarmup;
    s.measure = kMeasure;
    s.grids = {{allWorkloadNames(), f6Schemes(), {},
                /*withBaseline=*/false}};
    s.render = render;
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
