/**
 * R-F6 — L1<->L2 bus utilization per prefetching scheme: the cost side
 * of R-F5. Cache probe filtering exists to buy FDP's coverage without
 * no-filter FDP's bandwidth bill.
 */

#include "bench_util.hh"

using namespace fdip;
using namespace fdip::bench;

int
main(int argc, char **argv)
{
    print(experimentBanner(
        "R-F6", "L2-bus utilization per scheme",
        "no-filter FDP burns by far the most bandwidth; CPF variants "
        "cut it to near the filtered-prefetcher level; the no-prefetch "
        "baseline is the floor"));

    Runner runner = makeRunner(argc, argv, kWarmup, kMeasure);

    for (const auto &name : allWorkloadNames()) {
        for (auto scheme :
             {PrefetchScheme::None, PrefetchScheme::Nlp,
              PrefetchScheme::StreamBuffer, PrefetchScheme::FdpNone,
              PrefetchScheme::FdpEnqueue, PrefetchScheme::FdpRemove,
              PrefetchScheme::FdpIdeal})
            runner.enqueue(name, scheme);
    }
    runner.runPending();
    print(runner.sweepSummary());

    AsciiTable t({"workload", "none", "NLP", "SB", "FDP nofil",
                  "FDP enq", "FDP rem", "FDP ideal"});

    std::vector<PrefetchScheme> schemes = {
        PrefetchScheme::None, PrefetchScheme::Nlp,
        PrefetchScheme::StreamBuffer, PrefetchScheme::FdpNone,
        PrefetchScheme::FdpEnqueue, PrefetchScheme::FdpRemove,
        PrefetchScheme::FdpIdeal};

    std::vector<std::vector<double>> cols(schemes.size());
    for (const auto &name : allWorkloadNames()) {
        std::vector<std::string> row{name};
        for (std::size_t i = 0; i < schemes.size(); ++i) {
            const SimResults &r = runner.run(name, schemes[i]);
            cols[i].push_back(r.l2BusUtil);
            row.push_back(AsciiTable::pct(r.l2BusUtil));
        }
        t.addRow(row);
    }

    std::vector<std::string> avg{"mean"};
    for (auto &c : cols)
        avg.push_back(AsciiTable::pct(mean(c)));
    t.addRow(avg);
    print(t.render());
    return 0;
}
