/**
 * R-X15 — ITLB sweep: fetch-directed prefetching under address
 * translation. Scrambled page mapping, ITLB entries x
 * prefetch-translation policy x workload. Prefetches that miss the
 * ITLB are dropped, wait for the walk, or trigger a TLB fill; the
 * policies should order drop <= wait <= fill once the ITLB is small
 * enough to miss in steady state.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

#include "vm/mmu.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

constexpr unsigned kItlbSizes[] = {8u, 16u, 32u, 64u, 128u};

const std::vector<TlbPrefetchPolicy> &
policies()
{
    static const std::vector<TlbPrefetchPolicy> p = {
        TlbPrefetchPolicy::Drop, TlbPrefetchPolicy::Wait,
        TlbPrefetchPolicy::Fill};
    return p;
}

Runner::Tweak
vmTweak(unsigned entries, TlbPrefetchPolicy policy)
{
    return [entries, policy](SimConfig &cfg) {
        applyVmConfig(cfg, policy, PageMapKind::Scrambled, entries);
    };
}

std::string
vmKey(unsigned entries, TlbPrefetchPolicy policy)
{
    return strprintf("itlb%u-%s", entries, tlbPolicyName(policy));
}

std::vector<TweakVariant>
vmVariants()
{
    // The "" variant is the VM-off reference machine every row is
    // normalized against.
    std::vector<TweakVariant> out;
    out.push_back({"", "VM off (reference)", nullptr});
    for (unsigned entries : kItlbSizes) {
        for (TlbPrefetchPolicy policy : policies()) {
            out.push_back({vmKey(entries, policy),
                           strprintf("%u-entry ITLB, %s policy",
                                     entries, tlbPolicyName(policy)),
                           vmTweak(entries, policy)});
        }
    }
    return out;
}

void
render(Runner &runner)
{
    AsciiTable t({"itlb entries", "policy", "gmean ipc vs vm-off",
                  "itlb mpki", "walks/kinst", "pf dropped/kinst"});

    for (unsigned entries : kItlbSizes) {
        for (TlbPrefetchPolicy policy : policies()) {
            auto tweak = vmTweak(entries, policy);
            std::string key = vmKey(entries, policy);
            std::vector<double> rel_ipc, tlb_mpki, walks, dropped;
            for (const auto &name : largeFootprintNames()) {
                const SimResults &off = runner.run(
                    name, PrefetchScheme::FdpRemove);
                const SimResults &on = runner.run(
                    name, PrefetchScheme::FdpRemove, key, tweak);
                double kinsts =
                    static_cast<double>(on.instructions) / 1000.0;
                rel_ipc.push_back(on.ipc / off.ipc - 1.0);
                tlb_mpki.push_back(
                    on.stats.value("itlb.misses") / kinsts);
                walks.push_back(on.stats.value("mmu.walks") / kinsts);
                dropped.push_back(
                    on.stats.value("mmu.pf_dropped") / kinsts);
            }
            t.addRow({AsciiTable::integer(entries),
                      tlbPolicyName(policy),
                      AsciiTable::pct(gmeanSpeedup(rel_ipc)),
                      AsciiTable::num(mean(tlb_mpki), 2),
                      AsciiTable::num(mean(walks), 2),
                      AsciiTable::num(mean(dropped), 2)});
        }
    }

    print(t.render());

    // Per-workload policy ordering at the most TLB-constrained point.
    AsciiTable o({"workload", "drop ipc", "wait ipc", "fill ipc"});
    for (const auto &name : largeFootprintNames()) {
        std::vector<double> ipc;
        for (TlbPrefetchPolicy policy : policies()) {
            auto tweak = vmTweak(8, policy);
            std::string key = vmKey(8, policy);
            ipc.push_back(runner.run(name, PrefetchScheme::FdpRemove,
                                     key, tweak).ipc);
        }
        o.addRow({name, AsciiTable::num(ipc[0], 3),
                  AsciiTable::num(ipc[1], 3),
                  AsciiTable::num(ipc[2], 3)});
    }
    print("\npolicy ordering at 8 ITLB entries:\n");
    print(o.render());
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "R-X15";
    s.binary = "bench_x15_itlb";
    s.title =
        "ITLB sweep (FDP remove-CPF, scrambled pages, 30-cycle walks)";
    s.shape =
        "small ITLBs punish drop hardest; prefetch-triggered fills "
        "recover most of the loss; a large ITLB converges to the "
        "VM-off machine";
    s.paperRef = "VM/ITLB extension (beyond the paper; follow-on "
                 "literature methodology)";
    s.question = "How much of FDIP's gain survives address "
                 "translation, and which prefetch-translation policy "
                 "(drop/wait/fill) recovers the loss?";
    s.warmup = kSweepWarmup;
    s.measure = kSweepMeasure;
    s.grids = {{largeFootprintNames(), {PrefetchScheme::FdpRemove},
                vmVariants(), /*withBaseline=*/false}};
    s.render = render;
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
