/**
 * R-F2 — FTQ occupancy distribution on the decoupled baseline.
 * The FTQ's ability to run ahead of fetch is what gives FDP its
 * prefetch lookahead; this figure shows how full it actually gets.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

void
render(Runner &runner)
{
    AsciiTable t({"workload", "mean occ", "% empty", "% full",
                  "p50", "p90"});

    for (const auto &name : allWorkloadNames()) {
        const SimResults &r = runner.run(name, PrefetchScheme::None);
        const Histogram &h = r.ftqOccupancy;
        t.addRow({name,
                  AsciiTable::num(h.mean(), 1),
                  AsciiTable::pct(h.fraction(0), 1),
                  AsciiTable::pct(h.fraction(32), 1),
                  AsciiTable::integer(h.percentile(0.5)),
                  AsciiTable::integer(h.percentile(0.9))});
    }

    print(t.render());

    // One full rendered distribution for a representative workload.
    const SimResults &gcc = runner.run("gcc", PrefetchScheme::None);
    print("\n" + gcc.ftqOccupancy.render("gcc FTQ occupancy"));
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "R-F2";
    s.binary = "bench_f2_ftq_occupancy";
    s.title = "FTQ occupancy distribution (32-entry FTQ, no prefetch)";
    s.shape =
        "the FTQ is rarely empty; occupancy piles up high whenever the "
        "fetch engine stalls on L1-I misses, i.e. on large-footprint "
        "workloads";
    s.paperRef = "MICRO-32, Fig. 2 (FTQ occupancy)";
    s.warmup = kWarmup;
    s.measure = kMeasure;
    s.grids = {{allWorkloadNames(), {PrefetchScheme::None}, {},
                /*withBaseline=*/false}};
    s.render = render;
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
