/**
 * R-A2 — L1-I replacement-policy ablation: does the prefetcher's value
 * depend on the cache's replacement policy? (LRU vs FIFO vs random,
 * baseline and FDP.)
 */

#include "bench_util.hh"

using namespace fdip;
using namespace fdip::bench;

int
main(int argc, char **argv)
{
    print(experimentBanner(
        "R-A2", "L1-I replacement policy x {baseline, FDP remove}",
        "LRU is the best baseline; FDP's relative gain is largely "
        "policy-insensitive because it attacks compulsory/capacity "
        "misses ahead of time"));

    Runner runner = makeRunner(argc, argv, kSweepWarmup, kSweepMeasure);

    for (auto policy : {ReplPolicy::Lru, ReplPolicy::Fifo,
                        ReplPolicy::Random}) {
        for (const auto &name : largeFootprintNames()) {
            runner.enqueueSpeedup(
                name, PrefetchScheme::FdpRemove,
                std::string("repl-") + replPolicyName(policy),
                [policy](SimConfig &cfg) {
                    cfg.mem.l1i.repl = policy;
                });
        }
    }
    runner.runPending();
    print(runner.sweepSummary());

    AsciiTable t({"policy", "gmean base IPC", "mean base MPKI",
                  "gmean FDP speedup"});

    for (auto policy : {ReplPolicy::Lru, ReplPolicy::Fifo,
                        ReplPolicy::Random}) {
        auto tweak = [policy](SimConfig &cfg) {
            cfg.mem.l1i.repl = policy;
        };
        std::string key = std::string("repl-") + replPolicyName(policy);
        std::vector<double> ipcs, mpkis, speedups;
        for (const auto &name : largeFootprintNames()) {
            const SimResults &base = runner.run(
                name, PrefetchScheme::None, key, tweak);
            ipcs.push_back(base.ipc);
            mpkis.push_back(base.mpki);
            speedups.push_back(runner.speedup(
                name, PrefetchScheme::FdpRemove, key, tweak));
        }
        double log_ipc = 0;
        for (double v : ipcs)
            log_ipc += std::log(v);
        t.addRow({replPolicyName(policy),
                  AsciiTable::num(std::exp(log_ipc / ipcs.size()), 3),
                  AsciiTable::num(mean(mpkis), 2),
                  AsciiTable::pct(gmeanSpeedup(speedups))});
    }

    print(t.render());
    return 0;
}
