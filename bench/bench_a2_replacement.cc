/**
 * R-A2 — L1-I replacement-policy ablation: does the prefetcher's value
 * depend on the cache's replacement policy? (LRU vs FIFO vs random,
 * baseline and FDP.)
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

constexpr ReplPolicy kPolicies[] = {ReplPolicy::Lru, ReplPolicy::Fifo,
                                    ReplPolicy::Random};

Runner::Tweak
replTweak(ReplPolicy policy)
{
    return [policy](SimConfig &cfg) {
        cfg.mem.l1i.repl = policy;
    };
}

std::string
replKey(ReplPolicy policy)
{
    return std::string("repl-") + replPolicyName(policy);
}

std::vector<TweakVariant>
replVariants()
{
    std::vector<TweakVariant> out;
    for (ReplPolicy policy : kPolicies) {
        out.push_back({replKey(policy),
                       std::string(replPolicyName(policy)) +
                           " L1-I replacement",
                       replTweak(policy)});
    }
    return out;
}

void
render(Runner &runner)
{
    AsciiTable t({"policy", "gmean base IPC", "mean base MPKI",
                  "gmean FDP speedup"});

    for (ReplPolicy policy : kPolicies) {
        auto tweak = replTweak(policy);
        std::string key = replKey(policy);
        std::vector<double> ipcs, mpkis, speedups;
        for (const auto &name : largeFootprintNames()) {
            const SimResults &base = runner.run(
                name, PrefetchScheme::None, key, tweak);
            ipcs.push_back(base.ipc);
            mpkis.push_back(base.mpki);
            speedups.push_back(runner.speedup(
                name, PrefetchScheme::FdpRemove, key, tweak));
        }
        double log_ipc = 0;
        for (double v : ipcs)
            log_ipc += std::log(v);
        t.addRow({replPolicyName(policy),
                  AsciiTable::num(std::exp(log_ipc / ipcs.size()), 3),
                  AsciiTable::num(mean(mpkis), 2),
                  AsciiTable::pct(gmeanSpeedup(speedups))});
    }

    print(t.render());
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "R-A2";
    s.binary = "bench_a2_replacement";
    s.title = "L1-I replacement policy x {baseline, FDP remove}";
    s.shape =
        "LRU is the best baseline; FDP's relative gain is largely "
        "policy-insensitive because it attacks compulsory/capacity "
        "misses ahead of time";
    s.paperRef = "replacement-policy ablation (not a paper figure)";
    s.warmup = kSweepWarmup;
    s.measure = kSweepMeasure;
    s.grids = {{largeFootprintNames(), {PrefetchScheme::FdpRemove},
                replVariants(), true}};
    s.render = render;
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
