/**
 * R-F11 — Memory latency sensitivity: FDP speedup as L2 and DRAM
 * latencies scale. Prefetching hides latency, so its value must grow
 * with the latency it hides.
 */

#include "bench_util.hh"

using namespace fdip;
using namespace fdip::bench;

int
main(int argc, char **argv)
{
    print(experimentBanner(
        "R-F11", "memory latency sweep (FDP remove-CPF, large set)",
        "FDP's gmean speedup grows monotonically with miss latency"));

    Runner runner = makeRunner(argc, argv, kSweepWarmup, kSweepMeasure);

    {
        struct Point { Cycle l2; Cycle dram; };
        for (Point p : {Point{6, 35}, Point{12, 70}, Point{24, 140},
                        Point{48, 280}}) {
            for (const auto &name : largeFootprintNames()) {
                runner.enqueueSpeedup(
                    name, PrefetchScheme::FdpRemove,
                    "lat" + std::to_string(p.l2), [p](SimConfig &cfg) {
                        cfg.mem.l2HitLatency = p.l2;
                        cfg.mem.dramLatency = p.dram;
                    });
            }
        }
        runner.runPending();
    print(runner.sweepSummary());
    }

    AsciiTable t({"L2 lat", "DRAM lat", "gmean base IPC",
                  "gmean FDP speedup"});

    struct Point { Cycle l2; Cycle dram; };
    for (Point p : {Point{6, 35}, Point{12, 70}, Point{24, 140},
                    Point{48, 280}}) {
        auto tweak = [p](SimConfig &cfg) {
            cfg.mem.l2HitLatency = p.l2;
            cfg.mem.dramLatency = p.dram;
        };
        std::string key = "lat" + std::to_string(p.l2);
        std::vector<double> ipcs, speedups;
        for (const auto &name : largeFootprintNames()) {
            const SimResults &base = runner.run(
                name, PrefetchScheme::None, key, tweak);
            ipcs.push_back(base.ipc);
            speedups.push_back(runner.speedup(
                name, PrefetchScheme::FdpRemove, key, tweak));
        }
        double log_ipc = 0;
        for (double v : ipcs)
            log_ipc += std::log(v);
        t.addRow({AsciiTable::integer(p.l2),
                  AsciiTable::integer(p.dram),
                  AsciiTable::num(std::exp(log_ipc / ipcs.size()), 3),
                  AsciiTable::pct(gmeanSpeedup(speedups))});
    }

    print(t.render());
    return 0;
}
