/**
 * R-F11 — Memory latency sensitivity: FDP speedup as L2 and DRAM
 * latencies scale. Prefetching hides latency, so its value must grow
 * with the latency it hides.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

struct LatencyPoint
{
    Cycle l2;
    Cycle dram;
};

constexpr LatencyPoint kLatencies[] = {
    {6, 35}, {12, 70}, {24, 140}, {48, 280}};

Runner::Tweak
latTweak(LatencyPoint p)
{
    return [p](SimConfig &cfg) {
        cfg.mem.l2HitLatency = p.l2;
        cfg.mem.dramLatency = p.dram;
    };
}

std::string
latKey(LatencyPoint p)
{
    return "lat" + std::to_string(p.l2);
}

std::vector<TweakVariant>
latVariants()
{
    std::vector<TweakVariant> out;
    for (LatencyPoint p : kLatencies) {
        out.push_back({latKey(p),
                       strprintf("L2 %llu / DRAM %llu cycles",
                                 static_cast<unsigned long long>(p.l2),
                                 static_cast<unsigned long long>(
                                     p.dram)),
                       latTweak(p)});
    }
    return out;
}

void
render(Runner &runner)
{
    AsciiTable t({"L2 lat", "DRAM lat", "gmean base IPC",
                  "gmean FDP speedup"});

    for (LatencyPoint p : kLatencies) {
        auto tweak = latTweak(p);
        std::string key = latKey(p);
        std::vector<double> ipcs, speedups;
        for (const auto &name : largeFootprintNames()) {
            const SimResults &base = runner.run(
                name, PrefetchScheme::None, key, tweak);
            ipcs.push_back(base.ipc);
            speedups.push_back(runner.speedup(
                name, PrefetchScheme::FdpRemove, key, tweak));
        }
        double log_ipc = 0;
        for (double v : ipcs)
            log_ipc += std::log(v);
        t.addRow({AsciiTable::integer(p.l2),
                  AsciiTable::integer(p.dram),
                  AsciiTable::num(std::exp(log_ipc / ipcs.size()), 3),
                  AsciiTable::pct(gmeanSpeedup(speedups))});
    }

    print(t.render());
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "R-F11";
    s.binary = "bench_f11_latency_sweep";
    s.title = "memory latency sweep (FDP remove-CPF, large set)";
    s.shape =
        "FDP's gmean speedup grows monotonically with miss latency";
    s.paperRef = "MICRO-32, Fig. 11 (memory latency sensitivity)";
    s.warmup = kSweepWarmup;
    s.measure = kSweepMeasure;
    s.grids = {{largeFootprintNames(), {PrefetchScheme::FdpRemove},
                latVariants(), true}};
    s.render = render;
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
