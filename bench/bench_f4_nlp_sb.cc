/**
 * R-F4 — Speedup of the non-FDP prefetchers over the no-prefetch
 * baseline: tagged next-line prefetching and streaming buffers with
 * 1/2/4/8 buffers.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

constexpr unsigned kBufferCounts[] = {1u, 2u, 4u, 8u};

Runner::Tweak
sbTweak(unsigned n)
{
    return [n](SimConfig &cfg) {
        cfg.sb.numBuffers = n;
        cfg.sb.allocationFilter = false;
    };
}

std::string
sbKey(unsigned n)
{
    return "sb" + std::to_string(n);
}

std::vector<TweakVariant>
sbVariants()
{
    std::vector<TweakVariant> out;
    for (unsigned n : kBufferCounts) {
        out.push_back({sbKey(n),
                       strprintf("%u stream buffers, no allocation "
                                 "filter", n),
                       sbTweak(n)});
    }
    return out;
}

void
render(Runner &runner)
{
    AsciiTable t({"workload", "NLP", "SB x1", "SB x2", "SB x4",
                  "SB x8"});

    std::vector<double> nlp_s, sb1_s, sb2_s, sb4_s, sb8_s;

    for (const auto &name : allWorkloadNames()) {
        double nlp = runner.speedup(name, PrefetchScheme::Nlp);
        double sb1 = runner.speedup(name, PrefetchScheme::StreamBuffer,
                                    sbKey(1), sbTweak(1));
        double sb2 = runner.speedup(name, PrefetchScheme::StreamBuffer,
                                    sbKey(2), sbTweak(2));
        double sb4 = runner.speedup(name, PrefetchScheme::StreamBuffer,
                                    sbKey(4), sbTweak(4));
        double sb8 = runner.speedup(name, PrefetchScheme::StreamBuffer,
                                    sbKey(8), sbTweak(8));
        nlp_s.push_back(nlp);
        sb1_s.push_back(sb1);
        sb2_s.push_back(sb2);
        sb4_s.push_back(sb4);
        sb8_s.push_back(sb8);
        t.addRow({name, AsciiTable::pct(nlp), AsciiTable::pct(sb1),
                  AsciiTable::pct(sb2), AsciiTable::pct(sb4),
                  AsciiTable::pct(sb8)});
    }

    t.addRow({"gmean", AsciiTable::pct(gmeanSpeedup(nlp_s)),
              AsciiTable::pct(gmeanSpeedup(sb1_s)),
              AsciiTable::pct(gmeanSpeedup(sb2_s)),
              AsciiTable::pct(gmeanSpeedup(sb4_s)),
              AsciiTable::pct(gmeanSpeedup(sb8_s))});
    print(t.render());
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "R-F4";
    s.binary = "bench_f4_nlp_sb";
    s.title = "NLP and stream-buffer speedup over no-prefetch";
    s.shape =
        "both help on large-footprint workloads; more stream buffers "
        "help up to a point; neither approaches FDP (see R-F5)";
    s.paperRef = "MICRO-32, Fig. 4 (non-FDP prefetcher speedups)";
    s.warmup = kWarmup;
    s.measure = kMeasure;
    s.grids = {
        {allWorkloadNames(), {PrefetchScheme::Nlp}, {}, true},
        {allWorkloadNames(), {PrefetchScheme::StreamBuffer},
         sbVariants(), true},
    };
    s.render = render;
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
