/**
 * R-F4 — Speedup of the non-FDP prefetchers over the no-prefetch
 * baseline: tagged next-line prefetching and streaming buffers with
 * 1/2/4/8 buffers.
 */

#include "bench_util.hh"

using namespace fdip;
using namespace fdip::bench;

int
main(int argc, char **argv)
{
    print(experimentBanner(
        "R-F4", "NLP and stream-buffer speedup over no-prefetch",
        "both help on large-footprint workloads; more stream buffers "
        "help up to a point; neither approaches FDP (see R-F5)"));

    Runner runner = makeRunner(argc, argv, kWarmup, kMeasure);

    for (const auto &name : allWorkloadNames()) {
        runner.enqueueSpeedup(name, PrefetchScheme::Nlp);
        for (unsigned n : {1u, 2u, 4u, 8u}) {
            runner.enqueueSpeedup(
                name, PrefetchScheme::StreamBuffer,
                "sb" + std::to_string(n), [n](SimConfig &cfg) {
                    cfg.sb.numBuffers = n;
                    cfg.sb.allocationFilter = false;
                });
        }
    }
    runner.runPending();
    print(runner.sweepSummary());

    AsciiTable t({"workload", "NLP", "SB x1", "SB x2", "SB x4",
                  "SB x8"});

    std::vector<double> nlp_s, sb1_s, sb2_s, sb4_s, sb8_s;

    auto sb_tweak = [](unsigned n) {
        return [n](SimConfig &cfg) {
            cfg.sb.numBuffers = n;
            cfg.sb.allocationFilter = false;
        };
    };

    for (const auto &name : allWorkloadNames()) {
        double nlp = runner.speedup(name, PrefetchScheme::Nlp);
        double sb1 = runner.speedup(name, PrefetchScheme::StreamBuffer,
                                    "sb1", sb_tweak(1));
        double sb2 = runner.speedup(name, PrefetchScheme::StreamBuffer,
                                    "sb2", sb_tweak(2));
        double sb4 = runner.speedup(name, PrefetchScheme::StreamBuffer,
                                    "sb4", sb_tweak(4));
        double sb8 = runner.speedup(name, PrefetchScheme::StreamBuffer,
                                    "sb8", sb_tweak(8));
        nlp_s.push_back(nlp);
        sb1_s.push_back(sb1);
        sb2_s.push_back(sb2);
        sb4_s.push_back(sb4);
        sb8_s.push_back(sb8);
        t.addRow({name, AsciiTable::pct(nlp), AsciiTable::pct(sb1),
                  AsciiTable::pct(sb2), AsciiTable::pct(sb4),
                  AsciiTable::pct(sb8)});
    }

    t.addRow({"gmean", AsciiTable::pct(gmeanSpeedup(nlp_s)),
              AsciiTable::pct(gmeanSpeedup(sb1_s)),
              AsciiTable::pct(gmeanSpeedup(sb2_s)),
              AsciiTable::pct(gmeanSpeedup(sb4_s)),
              AsciiTable::pct(gmeanSpeedup(sb8_s))});
    print(t.render());
    return 0;
}
