/**
 * X-F14 — EXTENSION (2020 revisit, Fig. 7): performance impact of
 * 16-bit folded-XOR tag compression vs full tags in the partitioned
 * BTB, at the smallest budget (where aliasing pressure is highest).
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

void
tag16Tweak(SimConfig &cfg)
{
    applyPartitionedBudget(cfg, 1024);
    cfg.pbtb.tagBits = 16;
}

void
tagfullTweak(SimConfig &cfg)
{
    applyPartitionedBudget(cfg, 1024);
    cfg.pbtb.tagBits = 0; // full tags
}

void
render(Runner &runner)
{
    AsciiTable t({"workload", "16-bit tag", "full tag", "delta"});

    std::vector<double> s16, sfull;
    for (const auto &name : allWorkloadNames()) {
        double a = runner.speedup(name, PrefetchScheme::FdpRemove,
                                  "tag16", tag16Tweak);
        double b = runner.speedup(name, PrefetchScheme::FdpRemove,
                                  "tagfull", tagfullTweak);
        s16.push_back(a);
        sfull.push_back(b);
        t.addRow({name, AsciiTable::pct(a), AsciiTable::pct(b),
                  AsciiTable::pct(b - a, 2)});
    }
    t.addRow({"gmean", AsciiTable::pct(gmeanSpeedup(s16)),
              AsciiTable::pct(gmeanSpeedup(sfull)),
              AsciiTable::pct(gmeanSpeedup(sfull) - gmeanSpeedup(s16), 2)});
    print(t.render());
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "X-F14";
    s.binary = "bench_x14_tag_compression";
    s.title = "16-bit folded-XOR tags vs full tags (smallest BTB)";
    s.shape =
        "the compressed tag costs almost nothing: the folded XOR "
        "preserves the high-order entropy";
    s.paperRef = "FDIP-Revisited (2020), Fig. 7 (tag compression)";
    s.question = "How much prediction accuracy (and FDIP gain) do "
                 "16-bit folded-XOR BTB tags give up vs full tags?";
    s.warmup = kSweepWarmup;
    s.measure = kSweepMeasure;
    s.grids = {{allWorkloadNames(), {PrefetchScheme::FdpRemove},
                {{"tag16", "16-bit folded-XOR tags, 1024-entry "
                  "unified budget", tag16Tweak},
                 {"tagfull", "full tags, 1024-entry unified budget",
                  tagfullTweak}},
                true}};
    s.render = render;
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
