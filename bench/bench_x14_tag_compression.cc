/**
 * X-F14 — EXTENSION (2020 revisit, Fig. 7): performance impact of
 * 16-bit folded-XOR tag compression vs full tags in the partitioned
 * BTB, at the smallest budget (where aliasing pressure is highest).
 */

#include "bench_util.hh"

using namespace fdip;
using namespace fdip::bench;

int
main(int argc, char **argv)
{
    print(experimentBanner(
        "X-F14", "16-bit folded-XOR tags vs full tags (smallest BTB)",
        "the compressed tag costs almost nothing: the folded XOR "
        "preserves the high-order entropy"));

    Runner runner = makeRunner(argc, argv, kSweepWarmup, kSweepMeasure);
    AsciiTable t({"workload", "16-bit tag", "full tag", "delta"});

    auto tag16 = [](SimConfig &cfg) {
        applyPartitionedBudget(cfg, 1024);
        cfg.pbtb.tagBits = 16;
    };
    auto tagfull = [](SimConfig &cfg) {
        applyPartitionedBudget(cfg, 1024);
        cfg.pbtb.tagBits = 0; // full tags
    };

    for (const auto &name : allWorkloadNames()) {
        runner.enqueueSpeedup(name, PrefetchScheme::FdpRemove, "tag16",
                              tag16);
        runner.enqueueSpeedup(name, PrefetchScheme::FdpRemove,
                              "tagfull", tagfull);
    }
    runner.runPending();
    print(runner.sweepSummary());

    std::vector<double> s16, sfull;
    for (const auto &name : allWorkloadNames()) {
        double a = runner.speedup(name, PrefetchScheme::FdpRemove,
                                  "tag16", tag16);
        double b = runner.speedup(name, PrefetchScheme::FdpRemove,
                                  "tagfull", tagfull);
        s16.push_back(a);
        sfull.push_back(b);
        t.addRow({name, AsciiTable::pct(a), AsciiTable::pct(b),
                  AsciiTable::pct(b - a, 2)});
    }
    t.addRow({"gmean", AsciiTable::pct(gmeanSpeedup(s16)),
              AsciiTable::pct(gmeanSpeedup(sfull)),
              AsciiTable::pct(gmeanSpeedup(sfull) - gmeanSpeedup(s16), 2)});
    print(t.render());
    return 0;
}
