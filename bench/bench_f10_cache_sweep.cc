/**
 * R-F10 — L1-I size sweep: baseline IPC and FDP speedup as the cache
 * grows. Prefetching is a substitute for capacity; its gain must
 * shrink as the cache absorbs the footprint.
 */

#include "bench_util.hh"

using namespace fdip;
using namespace fdip::bench;

int
main(int argc, char **argv)
{
    print(experimentBanner(
        "R-F10", "L1-I capacity sweep (8..64KB) x {none, FDP remove}",
        "baseline MPKI and FDP's speedup both collapse as the cache "
        "approaches the working-set size"));

    Runner runner = makeRunner(argc, argv, kSweepWarmup, kSweepMeasure);

    for (unsigned kb : {8u, 16u, 32u, 64u}) {
        for (const auto &name : allWorkloadNames()) {
            runner.enqueueSpeedup(
                name, PrefetchScheme::FdpRemove,
                "l1i" + std::to_string(kb), [kb](SimConfig &cfg) {
                    cfg.mem.l1i.sizeBytes = std::uint64_t(kb) * 1024;
                });
        }
    }
    runner.runPending();
    print(runner.sweepSummary());

    AsciiTable t({"L1-I KB", "gmean base IPC", "mean base MPKI",
                  "gmean FDP speedup"});

    for (unsigned kb : {8u, 16u, 32u, 64u}) {
        auto tweak = [kb](SimConfig &cfg) {
            cfg.mem.l1i.sizeBytes = std::uint64_t(kb) * 1024;
        };
        std::string key = "l1i" + std::to_string(kb);
        std::vector<double> ipcs, mpkis, speedups;
        for (const auto &name : allWorkloadNames()) {
            const SimResults &base = runner.run(
                name, PrefetchScheme::None, key, tweak);
            ipcs.push_back(base.ipc);
            mpkis.push_back(base.mpki);
            speedups.push_back(runner.speedup(
                name, PrefetchScheme::FdpRemove, key, tweak));
        }
        double log_ipc = 0;
        for (double v : ipcs)
            log_ipc += std::log(v);
        double gmean_ipc = std::exp(log_ipc / ipcs.size());
        t.addRow({AsciiTable::integer(kb),
                  AsciiTable::num(gmean_ipc, 3),
                  AsciiTable::num(mean(mpkis), 2),
                  AsciiTable::pct(gmeanSpeedup(speedups))});
    }

    print(t.render());
    return 0;
}
