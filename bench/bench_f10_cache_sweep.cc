/**
 * R-F10 — L1-I size sweep: baseline IPC and FDP speedup as the cache
 * grows. Prefetching is a substitute for capacity; its gain must
 * shrink as the cache absorbs the footprint.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace fdip;
using namespace fdip::bench;

namespace
{

constexpr unsigned kL1SizesKB[] = {8u, 16u, 32u, 64u};

Runner::Tweak
l1iTweak(unsigned kb)
{
    return [kb](SimConfig &cfg) {
        cfg.mem.l1i.sizeBytes = std::uint64_t(kb) * 1024;
    };
}

std::string
l1iKey(unsigned kb)
{
    return "l1i" + std::to_string(kb);
}

std::vector<TweakVariant>
l1iVariants()
{
    std::vector<TweakVariant> out;
    for (unsigned kb : kL1SizesKB) {
        out.push_back({l1iKey(kb), strprintf("%uKB L1-I", kb),
                       l1iTweak(kb)});
    }
    return out;
}

void
render(Runner &runner)
{
    AsciiTable t({"L1-I KB", "gmean base IPC", "mean base MPKI",
                  "gmean FDP speedup"});

    for (unsigned kb : kL1SizesKB) {
        auto tweak = l1iTweak(kb);
        std::string key = l1iKey(kb);
        std::vector<double> ipcs, mpkis, speedups;
        for (const auto &name : allWorkloadNames()) {
            const SimResults &base = runner.run(
                name, PrefetchScheme::None, key, tweak);
            ipcs.push_back(base.ipc);
            mpkis.push_back(base.mpki);
            speedups.push_back(runner.speedup(
                name, PrefetchScheme::FdpRemove, key, tweak));
        }
        double log_ipc = 0;
        for (double v : ipcs)
            log_ipc += std::log(v);
        double gmean_ipc = std::exp(log_ipc / ipcs.size());
        t.addRow({AsciiTable::integer(kb),
                  AsciiTable::num(gmean_ipc, 3),
                  AsciiTable::num(mean(mpkis), 2),
                  AsciiTable::pct(gmeanSpeedup(speedups))});
    }

    print(t.render());
}

ExperimentSpec
makeSpec()
{
    ExperimentSpec s;
    s.id = "R-F10";
    s.binary = "bench_f10_cache_sweep";
    s.title = "L1-I capacity sweep (8..64KB) x {none, FDP remove}";
    s.shape =
        "baseline MPKI and FDP's speedup both collapse as the cache "
        "approaches the working-set size";
    s.paperRef = "MICRO-32, Fig. 10 (L1-I capacity sensitivity)";
    s.warmup = kSweepWarmup;
    s.measure = kSweepMeasure;
    s.grids = {{allWorkloadNames(), {PrefetchScheme::FdpRemove},
                l1iVariants(), true}};
    s.render = render;
    return s;
}

FDIP_REGISTER_EXPERIMENT(makeSpec);

} // namespace
