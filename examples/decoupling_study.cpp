/**
 * @file decoupling_study.cpp
 * The decoupled front-end in action: how FTQ depth converts into
 * prefetch lookahead. Sweeps the FTQ from 2 to 64 entries on one
 * workload and prints the occupancy distribution at each point —
 * the intuition behind the paper's FTQ design choice.
 *
 * Run: ./decoupling_study [workload]   (default: groff)
 */

#include <cstdio>
#include <string>

#include "common/table.hh"
#include "sim/report.hh"
#include "sim/runner.hh"

using namespace fdip;

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "groff";

    Runner runner(150 * 1000, 600 * 1000);
    AsciiTable t({"FTQ", "FDP speedup", "coverage", "mean occ",
                  "% FTQ full"});

    for (unsigned depth : {2u, 4u, 8u, 16u, 32u, 64u}) {
        auto tweak = [depth](SimConfig &cfg) {
            cfg.ftqEntries = depth;
        };
        std::string key = "d" + std::to_string(depth);
        double sp = runner.speedup(workload, PrefetchScheme::FdpRemove,
                                   key, tweak);
        const SimResults &r = runner.run(
            workload, PrefetchScheme::FdpRemove, key, tweak);
        t.addRow({AsciiTable::integer(depth),
                  AsciiTable::pct(sp),
                  AsciiTable::pct(r.prefetchCoverage),
                  AsciiTable::num(r.ftqOccupancy.mean(), 1),
                  AsciiTable::pct(r.ftqOccupancy.fraction(depth))});
    }

    std::printf("FTQ decoupling study on '%s'\n\n%s\n",
                workload.c_str(), t.render().c_str());

    const SimResults &deep = runner.run(
        workload, PrefetchScheme::FdpRemove, "d32",
        [](SimConfig &cfg) { cfg.ftqEntries = 32; });
    std::printf("%s", deep.ftqOccupancy.render(
        workload + " FTQ occupancy (32 entries, FDP)").c_str());
    return 0;
}
