/**
 * @file quickstart.cpp
 * Minimal end-to-end use of the library: build the baseline machine,
 * run one workload with no prefetching and with fetch-directed
 * prefetching (remove-CPF), and print the headline numbers.
 *
 * Run: ./quickstart [workload]   (default: gcc)
 */

#include <cstdio>
#include <string>

#include "sim/report.hh"
#include "sim/runner.hh"

using namespace fdip;

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "gcc";

    std::printf("FDIP quickstart: workload '%s'\n", workload.c_str());
    std::printf("machine: 16KB 2-way L1-I, 32-entry FTQ, 4K-entry FTB, "
                "hybrid predictor\n\n");

    Runner runner(/*warmup=*/200 * 1000, /*measure=*/800 * 1000);

    const SimResults &base =
        runner.run(workload, PrefetchScheme::None);
    const SimResults &fdp =
        runner.run(workload, PrefetchScheme::FdpRemove);

    std::printf("%s\n", summarizeRun(base).c_str());
    std::printf("%s\n", summarizeRun(fdp).c_str());
    std::printf("\nfetch-directed prefetching speedup: %+.1f%%\n",
                speedupOver(base, fdp) * 100.0);
    std::printf("baseline MPKI %.2f -> %.2f with FDP\n",
                base.mpki, fdp.mpki);
    return 0;
}
