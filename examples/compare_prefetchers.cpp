/**
 * @file compare_prefetchers.cpp
 * Head-to-head comparison of every prefetching scheme on one workload:
 * the per-workload view behind the paper's headline figures.
 *
 * Run: ./compare_prefetchers [workload]   (default: vortex)
 */

#include <cstdio>
#include <string>

#include "common/table.hh"
#include "sim/report.hh"
#include "sim/runner.hh"

using namespace fdip;

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "vortex";

    Runner runner(200 * 1000, 800 * 1000);
    AsciiTable t({"scheme", "IPC", "speedup", "L1-I MPKI",
                  "L2-bus util", "pf accuracy", "pf coverage"});

    const SimResults &base = runner.run(workload, PrefetchScheme::None);
    // Every registered scheme, the competitor zoo included (the
    // FTB-prefill shadow-btb scheme issues no memory requests, so its
    // accuracy/coverage columns legitimately read 0%).
    for (auto scheme : allPrefetchSchemes()) {
        const SimResults &r = runner.run(workload, scheme);
        t.addRow({schemeName(scheme),
                  AsciiTable::num(r.ipc, 3),
                  AsciiTable::pct(speedupOver(base, r)),
                  AsciiTable::num(r.mpki, 2),
                  AsciiTable::pct(r.l2BusUtil),
                  AsciiTable::pct(r.prefetchAccuracy),
                  AsciiTable::pct(r.prefetchCoverage)});
    }

    std::printf("prefetcher comparison on '%s' "
                "(16KB 2-way L1-I, 32-entry FTQ)\n\n%s",
                workload.c_str(), t.render().c_str());
    return 0;
}
