/**
 * @file trace_tools.cpp
 * Trace record/replay round trip: record a synthetic workload into a
 * binary trace file, replay it through the branch prediction unit, and
 * verify both runs see the same control flow. This is the template for
 * plugging externally generated traces into the front-end model.
 *
 * Usage: ./trace_tools [workload] [num_insts]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bpu/bpu.hh"
#include "trace/profile.hh"
#include "trace/synth_builder.hh"
#include "trace/trace_file.hh"

using namespace fdip;

namespace
{

/** Drive a BPU over a trace source; return divergences seen. */
std::uint64_t
driveBpu(TraceSource &src, std::uint64_t blocks)
{
    TraceWindow win(src);
    BpuConfig cfg;
    Bpu bpu(win, cfg);
    std::uint64_t div = 0;
    for (std::uint64_t i = 0; i < blocks; ++i) {
        FetchBlock blk = bpu.predictBlock();
        if (blk.diverges) {
            ++div;
            bpu.redirect();
        }
        if (bpu.nextVerifySeq() > 1024)
            win.retireUpTo(bpu.nextVerifySeq() - 1024);
    }
    return div;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "m88ksim";
    std::uint64_t insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 400 * 1000;
    std::string path = "/tmp/fdip_" + workload + ".trace";

    const WorkloadProfile &profile = findProfile(workload);
    auto prog = buildProgram(profile);

    // Record.
    {
        SyntheticExecutor exec(*prog, profile);
        writeTraceFile(path, exec, insts);
        std::printf("recorded %llu instructions of '%s' to %s\n",
                    static_cast<unsigned long long>(insts),
                    workload.c_str(), path.c_str());
    }

    // Replay through the BPU and compare against a live run.
    std::uint64_t blocks = insts / 8;
    SyntheticExecutor live(*prog, profile);
    std::uint64_t live_div = driveBpu(live, blocks);

    TraceFileReader reader(path);
    std::uint64_t replay_div = driveBpu(reader, blocks);

    std::printf("live run:   %llu divergences over %llu blocks\n",
                static_cast<unsigned long long>(live_div),
                static_cast<unsigned long long>(blocks));
    std::printf("replay run: %llu divergences over %llu blocks\n",
                static_cast<unsigned long long>(replay_div),
                static_cast<unsigned long long>(blocks));
    std::printf("replay %s the live run\n",
                live_div == replay_div ? "matches" : "differs from");
    std::remove(path.c_str());
    return live_div == replay_div ? 0 : 1;
}
