/**
 * @file fdip_sim.cpp
 * Command-line front end for the simulator: pick a workload, a
 * prefetch scheme, and machine knobs, and get the full statistics
 * dump. This is the "daily driver" binary for exploring the design
 * space beyond the canned experiments.
 *
 * Usage:
 *   fdip_sim [--workload NAME] [--scheme NAME] [--insts N]
 *            [--warmup N] [--l1i-kb N] [--ftq N] [--pfbuf N]
 *            [--tag-ports N] [--l2-lat N] [--dram-lat N]
 *            [--partitioned-btb ENTRIES] [--full-stats] [--list]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/report.hh"
#include "sim/runner.hh"

using namespace fdip;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --workload NAME    workload profile (default gcc)\n"
        "  --scheme NAME      none|nlp|stream|fdp-nofilter|fdp-enqueue|\n"
        "                     fdp-enqueue-aggr|fdp-remove|fdp-ideal|"
        "oracle\n"
        "  --insts N          measured instructions (default 1000000)\n"
        "  --warmup N         warmup instructions (default 300000)\n"
        "  --l1i-kb N         L1-I capacity in KB (default 16)\n"
        "  --ftq N            FTQ entries (default 32)\n"
        "  --pfbuf N          prefetch buffer entries (default 32)\n"
        "  --tag-ports N      L1-I tag ports (default 2)\n"
        "  --l2-lat N         L2 hit latency (default 12)\n"
        "  --dram-lat N       DRAM latency (default 70)\n"
        "  --partitioned-btb E  conventional front-end, partitioned BTB\n"
        "                     sized against an E-entry unified BTB\n"
        "  --full-stats       dump every raw counter\n"
        "  --list             list workloads and schemes, then exit\n",
        argv0);
}

PrefetchScheme
parseScheme(const std::string &name)
{
    for (auto s : {PrefetchScheme::None, PrefetchScheme::Nlp,
                   PrefetchScheme::StreamBuffer,
                   PrefetchScheme::FdpNone, PrefetchScheme::FdpEnqueue,
                   PrefetchScheme::FdpEnqueueAggressive,
                   PrefetchScheme::FdpRemove, PrefetchScheme::FdpIdeal,
                   PrefetchScheme::Oracle}) {
        if (name == schemeName(s))
            return s;
    }
    std::fprintf(stderr, "unknown scheme '%s'\n", name.c_str());
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    SimConfig cfg = makeBaselineConfig("gcc", PrefetchScheme::FdpRemove);
    bool full_stats = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto want_value = [&](const char *flag) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(1);
            }
            return std::string(argv[++i]);
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--list") {
            std::printf("workloads:");
            for (const auto &n : allWorkloadNames())
                std::printf(" %s", n.c_str());
            std::printf("\nschemes: none nlp stream fdp-nofilter "
                        "fdp-enqueue fdp-enqueue-aggr fdp-remove "
                        "fdp-ideal oracle\n");
            return 0;
        } else if (arg == "--workload") {
            cfg.workload = want_value("--workload");
        } else if (arg == "--scheme") {
            cfg.scheme = parseScheme(want_value("--scheme"));
        } else if (arg == "--insts") {
            cfg.measureInsts = std::strtoull(
                want_value("--insts").c_str(), nullptr, 10);
        } else if (arg == "--warmup") {
            cfg.warmupInsts = std::strtoull(
                want_value("--warmup").c_str(), nullptr, 10);
        } else if (arg == "--l1i-kb") {
            cfg.mem.l1i.sizeBytes = 1024 * std::strtoull(
                want_value("--l1i-kb").c_str(), nullptr, 10);
        } else if (arg == "--ftq") {
            cfg.ftqEntries = std::strtoull(
                want_value("--ftq").c_str(), nullptr, 10);
        } else if (arg == "--pfbuf") {
            cfg.mem.prefetchBufferEntries = std::strtoul(
                want_value("--pfbuf").c_str(), nullptr, 10);
        } else if (arg == "--tag-ports") {
            cfg.mem.l1TagPorts = std::strtoul(
                want_value("--tag-ports").c_str(), nullptr, 10);
        } else if (arg == "--l2-lat") {
            cfg.mem.l2HitLatency = std::strtoull(
                want_value("--l2-lat").c_str(), nullptr, 10);
        } else if (arg == "--dram-lat") {
            cfg.mem.dramLatency = std::strtoull(
                want_value("--dram-lat").c_str(), nullptr, 10);
        } else if (arg == "--partitioned-btb") {
            applyPartitionedBudget(cfg, std::strtoul(
                want_value("--partitioned-btb").c_str(), nullptr, 10));
        } else if (arg == "--full-stats") {
            full_stats = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return 1;
        }
    }

    SimResults r = simulate(cfg);
    std::printf("%s\n", summarizeRun(r).c_str());
    std::printf("cycles=%llu insts=%llu membus=%.1f%% "
                "cond-mispredict/KI=%.2f\n",
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.instructions),
                r.memBusUtil * 100.0, r.condMispredictPerKilo);
    if (full_stats)
        std::printf("\n%s", r.stats.dump().c_str());
    return 0;
}
