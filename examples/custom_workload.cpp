/**
 * @file custom_workload.cpp
 * Shows the two extension points for bringing your own workload:
 *
 *  1. A custom WorkloadProfile — knob-level control (footprint, block
 *     geometry, branch mix, phases) fed to the built-in synthesizer.
 *  2. A hand-built Program — exact control over the CFG, here used to
 *     build a pathological "pointer-chasing dispatch" kernel and show
 *     its FDP behaviour directly via the component API.
 */

#include <cstdio>

#include "sim/report.hh"
#include "sim/runner.hh"
#include "trace/code_image.hh"
#include "trace/executor.hh"
#include "trace/synth_builder.hh"

using namespace fdip;

namespace
{

/** Knob-level custom workload: a huge, flat, branchy server-ish code. */
void
runCustomProfile()
{
    WorkloadProfile p;
    p.name = "megaserver";
    p.seed = 2024;
    p.codeFootprintBytes = 512 * 1024; // far beyond any L1-I
    p.meanBlockInsts = 5.0;
    p.calleeZipf = 0.7;                // flat reuse
    p.wIndCall = 0.08;                 // heavy dynamic dispatch
    p.phaseLen = 400 * 1000;           // fast phase drift

    SimConfig cfg = makeBaselineConfig(p.name, PrefetchScheme::None);
    cfg.customProfile = p;
    cfg.warmupInsts = 150 * 1000;
    cfg.measureInsts = 600 * 1000;

    SimResults base = simulate(cfg);
    cfg.scheme = PrefetchScheme::FdpRemove;
    SimResults fdp = simulate(cfg);

    std::printf("== custom profile 'megaserver' (512KB footprint) ==\n");
    std::printf("%s\n%s\n", summarizeRun(base).c_str(),
                summarizeRun(fdp).c_str());
    std::printf("FDP speedup: %+.1f%%\n\n",
                speedupOver(base, fdp) * 100.0);
}

/** Hand-built program: direct use of the Program/Executor API. */
void
runHandBuiltProgram()
{
    // A two-function program: a loop calling a leaf through a long
    // jump, so every iteration touches two distant cache blocks.
    Program prog;

    Function loop;
    loop.level = 0;
    {
        BasicBlock call;
        call.numInsts = 6;
        call.term = InstClass::Call;
        call.targetFn = 1;
        loop.blocks.push_back(call);

        BasicBlock back;
        back.numInsts = 2;
        back.term = InstClass::Jump;
        back.targetBb = 0;
        loop.blocks.push_back(back);
    }
    prog.funcs.push_back(loop);

    Function leaf;
    leaf.level = 1;
    {
        BasicBlock body;
        body.numInsts = 40; // spans several 32B cache blocks
        body.term = InstClass::NonCF;
        leaf.blocks.push_back(body);

        BasicBlock ret;
        ret.numInsts = 2;
        ret.term = InstClass::Return;
        leaf.blocks.push_back(ret);
    }
    prog.funcs.push_back(leaf);

    prog.layout();
    prog.validate();

    CodeImage image(prog);
    std::printf("== hand-built program ==\n");
    std::printf("code: %llu bytes, %llu instructions, "
                "%llu static branches\n",
                static_cast<unsigned long long>(prog.codeBytes()),
                static_cast<unsigned long long>(prog.numInsts()),
                static_cast<unsigned long long>(
                    image.countClass(InstClass::Call) +
                    image.countClass(InstClass::Jump) +
                    image.countClass(InstClass::Return)));

    WorkloadProfile prof;
    prof.name = "handmade";
    prof.seed = 1;
    SyntheticExecutor exec(prog, prof);
    for (int i = 0; i < 1000; ++i)
        exec.next();
    std::printf("executed 1000 instructions; class mix:\n%s\n",
                exec.classStats().dump().c_str());
}

} // namespace

int
main()
{
    runCustomProfile();
    runHandBuiltProgram();
    return 0;
}
