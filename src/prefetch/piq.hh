/**
 * @file piq.hh
 * Prefetch Instruction Queue: FIFO of candidate cache-block addresses
 * awaiting prefetch issue, with per-entry probe state for the
 * remove-variant of cache probe filtering.
 */

#ifndef FDIP_PREFETCH_PIQ_HH
#define FDIP_PREFETCH_PIQ_HH

#include "common/circular_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "vm/mmu.hh"

namespace fdip
{

struct PiqEntry
{
    /** Candidate virtual block address from the FTQ scan. */
    Addr blockAddr = invalidAddr;
    /** Remove-CPF already verified this block misses in the L1. */
    bool probed = false;
    /** Issue-time translation state (VM runs only). */
    PfTranslationState tr;
};

class Piq
{
  public:
    explicit Piq(std::size_t capacity = 16);

    bool full() const { return q.full(); }
    bool empty() const { return q.empty(); }
    std::size_t size() const { return q.size(); }
    std::size_t capacity() const { return q.capacity(); }

    void push(Addr block_addr);
    PiqEntry &at(std::size_t i) { return q.at(i); }
    const PiqEntry &at(std::size_t i) const { return q.at(i); }
    PiqEntry &front() { return q.front(); }
    const PiqEntry &front() const { return q.front(); }
    void popFront();

    /** Remove entry @p i (probe said the block is already cached). */
    void removeAt(std::size_t i);

    bool contains(Addr block_addr) const;

    void flush();

    StatSet stats;

  private:
    StatSet::Counter stEnqueued = stats.registerCounter("piq.enqueued");
    StatSet::Counter stRemoved = stats.registerCounter("piq.removed");
    StatSet::Counter stFlushedEntries =
        stats.registerCounter("piq.flushed_entries");

    CircularQueue<PiqEntry> q;
};

} // namespace fdip

#endif // FDIP_PREFETCH_PIQ_HH
