/**
 * @file shadow_btb.hh
 * Shadow-branch BTB prefill: newly arrived instruction cache lines are
 * scanned by a decoder running behind the fetch engine ("shadow"
 * decode), and every direct branch discovered is pre-filled into the
 * BTB/FTB before the fetch stream ever reaches it. The scheme issues
 * no memory requests at all — its entire effect is fewer BTB cold
 * misses, i.e. fewer decode-time redirects on never-seen branches.
 *
 * On the canonical 4-byte code space decode is exact inside the code
 * image; the bogusNoiseDenom knob models the variable-length-ISA
 * reality that some data bytes *look* like branches, by deterministically
 * marking a fraction of non-CF slots as branch-looking and pre-filling
 * a synthesized (in-image) target for them. Correct and bogus prefills
 * are counted separately (see docs/PREFETCHERS.md).
 */

#ifndef FDIP_PREFETCH_SHADOW_BTB_HH
#define FDIP_PREFETCH_SHADOW_BTB_HH

#include <deque>
#include <vector>

#include "prefetch/prefetcher.hh"
#include "trace/instr.hh"

namespace fdip
{

class Ftb;
class BtbIface;
class CodeImage;

class ShadowBtbPrefetcher : public Prefetcher
{
  public:
    struct Config
    {
        /** Instruction slots decoded per cycle. */
        unsigned scanWidth = 8;
        /** Pending cache-line scan queue size. */
        std::size_t queueEntries = 8;
        /** Recently-scanned line filter (0 disables). */
        unsigned recentFilterEntries = 32;
        /**
         * Model branch-looking data bytes: 1-in-N non-CF slots is
         * treated as a branch and pre-filled with a synthesized
         * (deterministic, in-image) target. On the canonical 4-byte
         * code space decode is exact, so the default is 0 (no bogus
         * prefills); the knob is the variable-length-ISA noise model
         * swept by bench_x18's shadow-noise axis.
         */
        unsigned bogusNoiseDenom = 0;
    };

    /** Exactly one of @p ftb / @p btb is non-null (block-based vs
     *  conventional front-end); @p image may be null (trace replay),
     *  in which case nothing is ever decoded or pre-filled. */
    ShadowBtbPrefetcher(Ftb *ftb, BtbIface *btb, MemHierarchy &mem,
                        const CodeImage *image, const Config &config);

    std::string name() const override { return "shadow-btb"; }
    void tick(Cycle now) override;
    Cycle nextEventCycle(Cycle now) const override;
    void onDemandAccess(Addr block_addr, const FetchAccess &access,
                        Cycle now) override;

    /** Scheme-private metadata: the scan queue and recent filter (the
     *  prefill target store is the existing BTB/FTB). */
    static std::uint64_t metadataBytes(const Config &config);

  private:
    bool recentlyScanned(Addr line) const;
    void noteScanned(Addr line);
    void prefill(Addr block_start, Addr pc, InstClass cls, Addr target,
                 bool bogus);

    StatSet::Counter stLinesEnqueued =
        stats.registerCounter("shadow.lines_enqueued");
    StatSet::Counter stLinesScanned =
        stats.registerCounter("shadow.lines_scanned");
    StatSet::Counter stInstsScanned =
        stats.registerCounter("shadow.insts_scanned");
    StatSet::Counter stBranchesFound =
        stats.registerCounter("shadow.branches_found");
    StatSet::Counter stIndirectSkipped =
        stats.registerCounter("shadow.indirect_skipped");
    StatSet::Counter stAlreadyKnown =
        stats.registerCounter("shadow.already_known");
    StatSet::Counter stPrefillCorrect =
        stats.registerCounter("shadow.prefill_correct");
    StatSet::Counter stPrefillBogus =
        stats.registerCounter("shadow.prefill_bogus");
    StatSet::Counter stOutOfRange =
        stats.registerCounter("shadow.out_of_range_dropped");
    StatSet::Counter stQueueDrops =
        stats.registerCounter("shadow.queue_drops");
    StatSet::Counter stFiltered = stats.registerCounter("shadow.filtered");
    StatSet::Counter stNoImage = stats.registerCounter("shadow.no_image");

    Ftb *ftb;
    BtbIface *btb;
    MemHierarchy &mem;
    const CodeImage *image;
    Config cfg;

    std::deque<Addr> scanQueue;
    std::vector<Addr> recent; ///< ring of recently scanned lines
    std::size_t recentNext = 0;

    /** Incremental scan state for the head line. */
    unsigned nextSlot = 0;
    Addr blockStart = invalidAddr;
};

} // namespace fdip

#endif // FDIP_PREFETCH_SHADOW_BTB_HH
