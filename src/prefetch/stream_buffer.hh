/**
 * @file stream_buffer.hh
 * Jouppi-style instruction stream buffers: on an L1-I miss, a buffer is
 * allocated and prefetches the successive cache blocks into its FIFO
 * slots. Demand misses probe the buffers (fully-associative lookup
 * across slots, the Farkas/Palacharla-Kessler improvement); a hit moves
 * the block into the L1 and the buffer streams further ahead. An
 * optional two-miss allocation filter suppresses one-off miss streams.
 */

#ifndef FDIP_PREFETCH_STREAM_BUFFER_HH
#define FDIP_PREFETCH_STREAM_BUFFER_HH

#include <deque>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace fdip
{

class StreamBufferPrefetcher : public Prefetcher,
                               public StreamFillClient,
                               public StreamProbeClient
{
  public:
    struct Config
    {
        unsigned numBuffers = 4;
        unsigned depth = 4;
        /** Allocate only on the second of two sequential misses. */
        bool allocationFilter = true;
        unsigned missHistoryEntries = 16;
    };

    StreamBufferPrefetcher(MemHierarchy &mem, const Config &config);

    std::string name() const override { return "stream"; }
    void tick(Cycle now) override;
    Cycle nextEventCycle(Cycle now) const override;
    void chargeIdleCycles(Cycle now, Cycle cycles) override;
    void onDemandAccess(Addr block_addr, const FetchAccess &access,
                        Cycle now) override;

    // StreamFillClient
    void streamFill(std::uint32_t stream_id, std::uint32_t slot_id,
                    Addr block_addr) override;

    // StreamProbeClient
    bool probeAndConsume(Addr block_addr, Cycle now) override;

    const Config &config() const { return cfg; }

  private:
    struct Slot
    {
        /** Virtual block address in the miss stream. */
        Addr vaddr = invalidAddr;
        /** Physical block address fills and demand probes match on. */
        Addr paddr = invalidAddr;
        bool filled = false;
    };

    struct Buffer
    {
        bool active = false;
        std::deque<Slot> slots;
        /** Next sequential virtual block this buffer will request. */
        Addr nextAddr = invalidAddr;
        /** Issue-time translation of @c nextAddr (VM runs only). */
        PfTranslationState tr;
        std::uint64_t lruStamp = 0;
        bool requestInFlight = false;
    };

    StatSet::Counter stReallocations =
        stats.registerCounter("sb.reallocations");
    StatSet::Counter stAllocations = stats.registerCounter("sb.allocations");
    StatSet::Counter stFilteredAllocations =
        stats.registerCounter("sb.filtered_allocations");
    StatSet::Counter stHits = stats.registerCounter("sb.hits");
    StatSet::Counter stSkippedSlots =
        stats.registerCounter("sb.skipped_slots");
    StatSet::Counter stOrphanFills = stats.registerCounter("sb.orphan_fills");
    StatSet::Counter stFills = stats.registerCounter("sb.fills");
    StatSet::Counter stTlbStopped = stats.registerCounter("sb.tlb_stopped");
    StatSet::Counter stTlbWaitCycles =
        stats.registerCounter("sb.tlb_wait_cycles");
    StatSet::Counter stSkippedRedundant =
        stats.registerCounter("sb.skipped_redundant");
    StatSet::Counter stIssued = stats.registerCounter("sb.issued");
    StatSet::Counter stIssueStalls = stats.registerCounter("sb.issue_stalls");

    /** Advance the stream head one block, discarding its translation. */
    void advanceHead(Buffer &b);

    void allocate(Addr miss_addr);
    bool recentlyMissed(Addr block_addr) const;
    void recordMiss(Addr block_addr);

    MemHierarchy &mem;
    Config cfg;
    std::vector<Buffer> buffers;
    std::deque<Addr> missHistory;
    std::uint64_t lruClock = 0;
};

} // namespace fdip

#endif // FDIP_PREFETCH_STREAM_BUFFER_HH
