#include "prefetch/stream_buffer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace fdip
{

StreamBufferPrefetcher::StreamBufferPrefetcher(MemHierarchy &mem_ref,
                                               const Config &config)
    : mem(mem_ref), cfg(config), buffers(cfg.numBuffers)
{
    fatal_if(cfg.numBuffers == 0, "need at least one stream buffer");
    fatal_if(cfg.depth == 0, "stream buffer depth must be nonzero");
    mem.setStreamFillClient(this);
    mem.setStreamProbeClient(this);
}

bool
StreamBufferPrefetcher::recentlyMissed(Addr block_addr) const
{
    return std::find(missHistory.begin(), missHistory.end(),
                     block_addr) != missHistory.end();
}

void
StreamBufferPrefetcher::recordMiss(Addr block_addr)
{
    if (missHistory.size() >= cfg.missHistoryEntries)
        missHistory.pop_front();
    missHistory.push_back(block_addr);
}

void
StreamBufferPrefetcher::allocate(Addr miss_addr)
{
    unsigned bb = mem.l1i().config().blockBytes;

    // A buffer already streaming this region needs no re-allocation.
    for (const Buffer &b : buffers) {
        if (!b.active)
            continue;
        for (const Slot &s : b.slots) {
            if (s.addr == miss_addr)
                return;
        }
        if (b.nextAddr == miss_addr + bb)
            return;
    }

    Buffer *victim = &buffers[0];
    for (Buffer &b : buffers) {
        if (!b.active) {
            victim = &b;
            break;
        }
        if (b.lruStamp < victim->lruStamp)
            victim = &b;
    }
    if (victim->active)
        stats.inc("sb.reallocations");
    victim->active = true;
    victim->slots.clear();
    victim->nextAddr = miss_addr + bb;
    victim->lruStamp = ++lruClock;
    victim->requestInFlight = false;
    stats.inc("sb.allocations");
}

void
StreamBufferPrefetcher::onDemandAccess(Addr block_addr,
                                       const FetchAccess &access,
                                       Cycle now)
{
    if (!isTrueMiss(access))
        return;
    if (cfg.allocationFilter) {
        unsigned bb = mem.l1i().config().blockBytes;
        bool sequential = recentlyMissed(block_addr - bb);
        recordMiss(block_addr);
        if (!sequential) {
            stats.inc("sb.filtered_allocations");
            return;
        }
    }
    allocate(block_addr);
}

bool
StreamBufferPrefetcher::probeAndConsume(Addr block_addr, Cycle now)
{
    for (std::uint32_t bi = 0; bi < buffers.size(); ++bi) {
        Buffer &b = buffers[bi];
        if (!b.active)
            continue;
        for (std::size_t si = 0; si < b.slots.size(); ++si) {
            if (b.slots[si].addr != block_addr)
                continue;
            if (!b.slots[si].filled)
                return false; // in flight: demand merges via the MSHR
            // Hit: consume this slot and everything older.
            b.slots.erase(b.slots.begin(),
                          b.slots.begin() + static_cast<long>(si) + 1);
            b.lruStamp = ++lruClock;
            stats.inc("sb.hits");
            if (si > 0)
                stats.inc("sb.skipped_slots", si);
            return true;
        }
    }
    return false;
}

void
StreamBufferPrefetcher::streamFill(std::uint32_t stream_id,
                                   std::uint32_t slot_id, Addr block_addr)
{
    if (stream_id >= buffers.size()) {
        stats.inc("sb.orphan_fills");
        return;
    }
    Buffer &b = buffers[stream_id];
    b.requestInFlight = false;
    if (!b.active) {
        stats.inc("sb.orphan_fills");
        return;
    }
    for (Slot &s : b.slots) {
        if (s.addr == block_addr && !s.filled) {
            s.filled = true;
            stats.inc("sb.fills");
            return;
        }
    }
    // The buffer was re-aimed while the request was in flight.
    stats.inc("sb.orphan_fills");
}

void
StreamBufferPrefetcher::tick(Cycle now)
{
    unsigned bb = mem.l1i().config().blockBytes;
    // Top up each buffer, one outstanding request per buffer.
    for (std::uint32_t bi = 0; bi < buffers.size(); ++bi) {
        Buffer &b = buffers[bi];
        if (!b.active || b.requestInFlight ||
            b.slots.size() >= cfg.depth) {
            continue;
        }
        // Stream past blocks the cache already holds (the stream
        // buffer sits beside the L1 and can see its tags).
        if (mem.tagProbe(b.nextAddr)) {
            b.nextAddr += bb;
            stats.inc("sb.skipped_redundant");
            continue;
        }
        auto result = mem.issuePrefetch(
            b.nextAddr, now, FillDest::StreamBuffer, bi,
            static_cast<std::uint32_t>(b.slots.size()));
        switch (result) {
          case MemHierarchy::PfIssue::Issued:
            b.slots.push_back({b.nextAddr, false});
            b.nextAddr += bb;
            b.requestInFlight = true;
            stats.inc("sb.issued");
            break;
          case MemHierarchy::PfIssue::Redundant:
            // Already cached or in flight elsewhere: stream past it.
            b.nextAddr += bb;
            stats.inc("sb.skipped_redundant");
            break;
          case MemHierarchy::PfIssue::NoResource:
            stats.inc("sb.issue_stalls");
            return; // shared buses: no point trying other buffers
        }
    }
}

} // namespace fdip
