#include "prefetch/stream_buffer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace fdip
{

StreamBufferPrefetcher::StreamBufferPrefetcher(MemHierarchy &mem_ref,
                                               const Config &config)
    : mem(mem_ref), cfg(config), buffers(cfg.numBuffers)
{
    fatal_if(cfg.numBuffers == 0, "need at least one stream buffer");
    fatal_if(cfg.depth == 0, "stream buffer depth must be nonzero");
    mem.setStreamFillClient(this);
    mem.setStreamProbeClient(this);
}

bool
StreamBufferPrefetcher::recentlyMissed(Addr block_addr) const
{
    return std::find(missHistory.begin(), missHistory.end(),
                     block_addr) != missHistory.end();
}

void
StreamBufferPrefetcher::recordMiss(Addr block_addr)
{
    if (missHistory.size() >= cfg.missHistoryEntries)
        missHistory.pop_front();
    missHistory.push_back(block_addr);
}

void
StreamBufferPrefetcher::allocate(Addr miss_addr)
{
    unsigned bb = mem.l1i().config().blockBytes;

    // A buffer already streaming this region needs no re-allocation.
    for (const Buffer &b : buffers) {
        if (!b.active)
            continue;
        for (const Slot &s : b.slots) {
            if (s.vaddr == miss_addr)
                return;
        }
        if (b.nextAddr == miss_addr + bb)
            return;
    }

    Buffer *victim = &buffers[0];
    for (Buffer &b : buffers) {
        if (!b.active) {
            victim = &b;
            break;
        }
        if (b.lruStamp < victim->lruStamp)
            victim = &b;
    }
    if (victim->active)
        stReallocations.inc();
    // Filled slots die unused here; in-flight ones classify later via
    // the orphan-fill path.
    for (const Slot &s : victim->slots) {
        if (s.filled)
            mem.prefetchAttribution().onEvictUnused(s.paddr);
    }
    victim->active = true;
    victim->slots.clear();
    victim->nextAddr = miss_addr + bb;
    victim->tr = PfTranslationState{};
    victim->lruStamp = ++lruClock;
    victim->requestInFlight = false;
    stAllocations.inc();
}

void
StreamBufferPrefetcher::onDemandAccess(Addr block_addr,
                                       const FetchAccess &access,
                                       Cycle now)
{
    if (!isTrueMiss(access))
        return;
    if (cfg.allocationFilter) {
        unsigned bb = mem.l1i().config().blockBytes;
        bool sequential = recentlyMissed(block_addr - bb);
        recordMiss(block_addr);
        if (!sequential) {
            stFilteredAllocations.inc();
            return;
        }
    }
    allocate(block_addr);
}

bool
StreamBufferPrefetcher::probeAndConsume(Addr block_addr, Cycle now)
{
    for (std::uint32_t bi = 0; bi < buffers.size(); ++bi) {
        Buffer &b = buffers[bi];
        if (!b.active)
            continue;
        for (std::size_t si = 0; si < b.slots.size(); ++si) {
            if (b.slots[si].paddr != block_addr)
                continue;
            if (!b.slots[si].filled)
                return false; // in flight: demand merges via the MSHR
            // Hit: consume this slot and everything older. Skipped
            // older filled slots die unused; skipped in-flight ones
            // classify later via the orphan-fill path.
            for (std::size_t j = 0; j < si; ++j) {
                if (b.slots[j].filled)
                    mem.prefetchAttribution().onEvictUnused(b.slots[j].paddr);
            }
            b.slots.erase(b.slots.begin(),
                          b.slots.begin() + static_cast<long>(si) + 1);
            b.lruStamp = ++lruClock;
            stHits.inc();
            if (si > 0)
                stSkippedSlots.inc(si);
            return true;
        }
    }
    return false;
}

void
StreamBufferPrefetcher::streamFill(std::uint32_t stream_id,
                                   std::uint32_t slot_id, Addr block_addr)
{
    if (stream_id >= buffers.size()) {
        stOrphanFills.inc();
        mem.prefetchAttribution().onEvictUnused(block_addr);
        return;
    }
    Buffer &b = buffers[stream_id];
    b.requestInFlight = false;
    if (!b.active) {
        stOrphanFills.inc();
        mem.prefetchAttribution().onEvictUnused(block_addr);
        return;
    }
    for (Slot &s : b.slots) {
        if (s.paddr == block_addr && !s.filled) {
            s.filled = true;
            stFills.inc();
            return;
        }
    }
    // The buffer was re-aimed while the request was in flight.
    stOrphanFills.inc();
    mem.prefetchAttribution().onEvictUnused(block_addr);
}

void
StreamBufferPrefetcher::advanceHead(Buffer &b)
{
    unsigned bb = mem.l1i().config().blockBytes;
    Addr next = b.nextAddr + bb;
    // The head's translation register covers a whole page: advance the
    // physical side in step while the stream stays inside it, and only
    // re-translate (possibly re-walking) on a page crossing.
    if (b.tr.translated && mmu_ != nullptr && mmu_->enabled() &&
        mmu_->pageTable().vpn(next) ==
            mmu_->pageTable().vpn(b.nextAddr)) {
        b.tr.paddr += bb;
    } else {
        b.tr = PfTranslationState{};
    }
    b.nextAddr = next;
}

Cycle
StreamBufferPrefetcher::nextEventCycle(Cycle now) const
{
    Cycle next = kNever;
    for (const Buffer &b : buffers) {
        // Inactive, topped-up, or in-flight buffers do nothing; a
        // stream with an untranslated or ready head tops up next
        // cycle; a waiting one wakes at its page-walk completion
        // (kNever while the walk is queued for a walker — the MMU's
        // events cover the start).
        if (!b.active || b.requestInFlight || b.slots.size() >= cfg.depth)
            continue;
        if (!b.tr.translated)
            return now + 1;
        Cycle wake = translationWakeCycle(b.tr, now);
        if (wake <= now + 1)
            return now + 1;
        if (wake < next)
            next = wake;
    }
    return next;
}

void
StreamBufferPrefetcher::chargeIdleCycles(Cycle now, Cycle cycles)
{
    // Every stream waiting on a page walk charges one wait cycle per
    // tick (tick() continues past Waiting buffers; no walk completes
    // inside a charged window).
    std::uint64_t waiting = 0;
    for (const Buffer &b : buffers) {
        if (b.active && !b.requestInFlight && b.slots.size() < cfg.depth &&
            b.tr.translated && translationWaiting(b.tr)) {
            ++waiting;
        }
    }
    if (waiting > 0)
        stTlbWaitCycles.inc(waiting * cycles);
}

void
StreamBufferPrefetcher::tick(Cycle now)
{
    // Top up each buffer, one outstanding request per buffer.
    for (std::uint32_t bi = 0; bi < buffers.size(); ++bi) {
        Buffer &b = buffers[bi];
        if (!b.active || b.requestInFlight ||
            b.slots.size() >= cfg.depth) {
            continue;
        }
        switch (resolveTranslation(b.tr, b.nextAddr, now)) {
          case TrResolve::Dropped:
            // The stream crossed into an untranslated page: stop
            // streaming rather than prefetch blind.
            b.active = false;
            stTlbStopped.inc();
            continue;
          case TrResolve::Waiting:
            stTlbWaitCycles.inc();
            continue; // this stream waits; others may proceed
          case TrResolve::Ready:
            break;
        }
        // Stream past blocks the cache already holds (the stream
        // buffer sits beside the L1 and can see its tags).
        if (mem.tagProbe(b.tr.paddr)) {
            advanceHead(b);
            stSkippedRedundant.inc();
            continue;
        }
        auto result = mem.issuePrefetch(
            b.tr.paddr, now, FillDest::StreamBuffer, bi,
            static_cast<std::uint32_t>(b.slots.size()));
        switch (result) {
          case MemHierarchy::PfIssue::Issued:
            b.slots.push_back({b.nextAddr, b.tr.paddr, false});
            advanceHead(b);
            b.requestInFlight = true;
            stIssued.inc();
            break;
          case MemHierarchy::PfIssue::Redundant:
            // Already cached or in flight elsewhere: stream past it.
            advanceHead(b);
            stSkippedRedundant.inc();
            break;
          case MemHierarchy::PfIssue::NoResource:
            stIssueStalls.inc();
            return; // shared buses: no point trying other buffers
        }
    }
}

} // namespace fdip
