#include "prefetch/fdp.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/tracer.hh"

namespace fdip
{

const char *
cpfModeName(CpfMode mode)
{
    switch (mode) {
      case CpfMode::None: return "none";
      case CpfMode::Enqueue: return "enqueue";
      case CpfMode::EnqueueAggressive: return "enqueue-aggr";
      case CpfMode::Remove: return "remove";
      case CpfMode::Ideal: return "ideal";
    }
    return "?";
}

FdpPrefetcher::FdpPrefetcher(Ftq &ftq_ref, MemHierarchy &mem_ref,
                             const Config &config)
    : ftq(ftq_ref), mem(mem_ref), cfg(config), piq_(cfg.piqEntries),
      recentFilter(cfg.recentFilterEntries, invalidAddr)
{
    fatal_if(cfg.scanWidth == 0, "FDP scan width must be nonzero");
    fatal_if(cfg.issueWidth == 0, "FDP issue width must be nonzero");
}

std::string
FdpPrefetcher::name() const
{
    return strprintf("fdp-%s", cpfModeName(cfg.mode));
}

bool
FdpPrefetcher::recentlyRequested(Addr block_addr) const
{
    return std::find(recentFilter.begin(), recentFilter.end(),
                     block_addr) != recentFilter.end();
}

void
FdpPrefetcher::markRequested(Addr block_addr)
{
    if (recentFilter.empty())
        return;
    recentFilter[recentNext] = block_addr;
    recentNext = (recentNext + 1) % recentFilter.size();
}

void
FdpPrefetcher::probeWaitingEntries(Cycle now)
{
    if (cfg.mode != CpfMode::Remove)
        return;
    // Opportunistically probe unverified PIQ entries with whatever tag
    // ports the demand fetch left idle this cycle.
    std::size_t i = 0;
    while (i < piq_.size()) {
        PiqEntry &e = piq_.at(i);
        if (e.probed) {
            ++i;
            continue;
        }
        if (!mem.reserveTagPort())
            return; // out of ports; try again next cycle
        stCpfProbes.inc();
        if (mem.tagProbe(translateFunctional(e.blockAddr))) {
            piq_.removeAt(i);
            stCpfFiltered.inc();
            continue; // entry i replaced by its successor
        }
        e.probed = true;
        ++i;
    }
}

void
FdpPrefetcher::issuePrefetches(Cycle now)
{
    unsigned issued = 0;
    while (issued < cfg.issueWidth && !piq_.empty()) {
        PiqEntry &head = piq_.front();
        switch (resolveTranslation(head.tr, head.blockAddr, now)) {
          case TrResolve::Dropped:
            piq_.popFront();
            stTlbDropped.inc();
            continue;
          case TrResolve::Waiting:
            // Head-of-line wait for the page walk (Wait/Fill).
            stTlbWaitStalls.inc();
            return;
          case TrResolve::Ready:
            break;
        }
        Addr addr = head.tr.paddr;
        FillDest dest = cfg.fillIntoL1 ? FillDest::DemandL1
                                       : FillDest::PrefetchBuffer;
        auto result = mem.issuePrefetch(addr, now, dest);
        if (result == MemHierarchy::PfIssue::NoResource) {
            stIssueStalls.inc();
            return; // bus/MSHR busy: keep the entry, retry next cycle
        }
        piq_.popFront();
        if (result == MemHierarchy::PfIssue::Issued) {
            stIssued.inc();
            ++issued;
        } else {
            stIssueRedundant.inc();
        }
    }
}

void
FdpPrefetcher::scanFtq(Cycle now)
{
    unsigned examined = 0;
    Tracer *tr = mem.tracer();
    auto traceEnqueue = [tr](Addr block) {
        if (tr != nullptr)
            tr->instant("pf_enqueue", kTidPrefetch, "block", block);
    };
    // Entry 0 is the fetch point (being demand fetched); deeper
    // entries are the prefetch candidates.
    for (std::size_t i = 1; i < ftq.size(); ++i) {
        FtqEntry &e = ftq.at(i);
        unsigned n_blocks = ftq.numCacheBlocks(i);
        while (e.nextScanBlock < n_blocks) {
            if (examined >= cfg.scanWidth || piq_.full())
                return;
            Addr cand = ftq.cacheBlockAddr(i, e.nextScanBlock);
            // Candidates are virtual; physically-tagged filter probes
            // (L1 tags, MSHRs) peek the page table functionally.
            Addr pcand = translateFunctional(cand);
            ++examined;
            stCandidates.inc();

            if (recentlyRequested(cand) || piq_.contains(cand) ||
                mem.prefetchRedundant(pcand)) {
                stDedupDropped.inc();
                ++e.nextScanBlock;
                continue;
            }

            switch (cfg.mode) {
              case CpfMode::None:
              case CpfMode::Remove:
                piq_.push(cand);
                markRequested(cand);
                traceEnqueue(cand);
                break;
              case CpfMode::Enqueue:
              case CpfMode::EnqueueAggressive:
                if (!mem.reserveTagPort()) {
                    stEnqueueNoPort.inc();
                    if (cfg.mode == CpfMode::Enqueue) {
                        // Conservative: no idle port, no enqueue.
                        return;
                    }
                    // Aggressive: enqueue unprobed.
                    piq_.push(cand);
                    markRequested(cand);
                    traceEnqueue(cand);
                    break;
                }
                stCpfProbes.inc();
                if (mem.tagProbe(pcand)) {
                    stCpfFiltered.inc();
                } else {
                    piq_.push(cand);
                    markRequested(cand);
                    traceEnqueue(cand);
                }
                break;
              case CpfMode::Ideal:
                stCpfProbes.inc();
                if (mem.tagProbe(pcand)) {
                    stCpfFiltered.inc();
                } else {
                    piq_.push(cand);
                    markRequested(cand);
                    traceEnqueue(cand);
                }
                break;
            }
            ++e.nextScanBlock;
        }
    }
}

void
FdpPrefetcher::tick(Cycle now)
{
    probeWaitingEntries(now);
    issuePrefetches(now);
    scanFtq(now);
}

Cycle
FdpPrefetcher::nextEventCycle(Cycle now) const
{
    // Remove-CPF: an unprobed PIQ entry is probed with next cycle's
    // leftover tag ports.
    if (cfg.mode == CpfMode::Remove) {
        for (std::size_t i = 0; i < piq_.size(); ++i) {
            if (!piq_.at(i).probed)
                return now + 1;
        }
    }
    Cycle next = kNever;
    if (!piq_.empty()) {
        const PiqEntry &head = piq_.front();
        // An untranslated or ready head means a translate or an issue
        // attempt next cycle; a waiting head wakes at walk completion
        // (kNever while its walk is queued for a walker — the MMU's
        // own events cover the start).
        if (!head.tr.translated)
            return now + 1;
        Cycle wake = translationWakeCycle(head.tr, now);
        if (wake <= now + 1)
            return now + 1;
        next = wake;
    }
    if (!piq_.full()) {
        for (std::size_t i = 1; i < ftq.size(); ++i) {
            if (ftq.at(i).nextScanBlock < ftq.numCacheBlocks(i))
                return now + 1; // unscanned candidates remain
        }
    }
    return next;
}

void
FdpPrefetcher::chargeIdleCycles(Cycle now, Cycle cycles)
{
    // The only per-cycle charge of a quiescent tick: the head-of-line
    // candidate waiting on its page walk (no walk completes inside a
    // charged window, so pending-now means pending throughout).
    if (!piq_.empty() && piq_.front().tr.translated &&
        translationWaiting(piq_.front().tr)) {
        stTlbWaitStalls.inc(cycles);
    }
}

void
FdpPrefetcher::onRedirect(Cycle now)
{
    if (cfg.flushPiqOnRedirect)
        piq_.flush();
    stRedirects.inc();
}

} // namespace fdip
