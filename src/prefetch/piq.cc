#include "prefetch/piq.hh"

#include "common/logging.hh"

namespace fdip
{

Piq::Piq(std::size_t capacity)
    : q(capacity)
{}

void
Piq::push(Addr block_addr)
{
    panic_if(full(), "push to full PIQ");
    PiqEntry e;
    e.blockAddr = block_addr;
    q.push(e);
    stEnqueued.inc();
}

void
Piq::popFront()
{
    q.pop();
}

void
Piq::removeAt(std::size_t i)
{
    // The PIQ is small; compact by shifting (hardware uses a CAM).
    panic_if(i >= q.size(), "PIQ removeAt out of range");
    for (std::size_t k = i; k + 1 < q.size(); ++k)
        q.at(k) = q.at(k + 1);
    q.truncate(q.size() - 1);
    stRemoved.inc();
}

bool
Piq::contains(Addr block_addr) const
{
    for (std::size_t i = 0; i < q.size(); ++i) {
        if (q.at(i).blockAddr == block_addr)
            return true;
    }
    return false;
}

void
Piq::flush()
{
    stFlushedEntries.inc(q.size());
    q.clear();
}

} // namespace fdip
