/**
 * @file fdp.hh
 * Fetch-Directed Prefetching — the paper's primary contribution.
 *
 * Every cycle the prefetch engine scans FTQ entries past the fetch
 * point, converts them into candidate cache-block addresses, filters
 * them, and enqueues survivors into the PIQ. The PIQ issues prefetches
 * to the L2 over the (idle) L2 bus; fills land in the fully-associative
 * prefetch buffer probed by demand fetches.
 *
 * Cache Probe Filtering (CPF) variants:
 *  - None:    everything the FTQ predicts is prefetched.
 *  - Enqueue: a candidate enters the PIQ only when an idle L1 tag port
 *             is available this cycle *and* the probe misses.
 *  - Remove:  candidates always enter the PIQ; idle ports are used
 *             opportunistically to probe waiting entries and remove
 *             ones that turn out to be cached.
 *  - Ideal:   unlimited probe bandwidth (filtering upper bound).
 */

#ifndef FDIP_PREFETCH_FDP_HH
#define FDIP_PREFETCH_FDP_HH

#include <vector>

#include "frontend/ftq.hh"
#include "prefetch/piq.hh"
#include "prefetch/prefetcher.hh"

namespace fdip
{

enum class CpfMode
{
    None,
    Enqueue,           ///< conservative: no idle port, no enqueue
    EnqueueAggressive, ///< no idle port: enqueue unprobed
    Remove,
    Ideal,
};

const char *cpfModeName(CpfMode mode);

class FdpPrefetcher : public Prefetcher
{
  public:
    struct Config
    {
        CpfMode mode = CpfMode::Remove;
        std::size_t piqEntries = 16;
        /** Candidate blocks examined per cycle during the FTQ scan. */
        unsigned scanWidth = 4;
        /** Prefetches issued to the L2 per cycle. */
        unsigned issueWidth = 2;
        /** Recently-requested filter size (suppresses re-requests). */
        unsigned recentFilterEntries = 16;
        /** Drop unissued PIQ entries on a pipeline redirect. */
        bool flushPiqOnRedirect = true;
        /**
         * Ablation: fill prefetches straight into the L1-I instead of
         * the prefetch buffer (exposes wrong-path pollution).
         */
        bool fillIntoL1 = false;
    };

    FdpPrefetcher(Ftq &ftq, MemHierarchy &mem, const Config &config);

    std::string name() const override;
    void tick(Cycle now) override;
    Cycle nextEventCycle(Cycle now) const override;
    void chargeIdleCycles(Cycle now, Cycle cycles) override;
    void onRedirect(Cycle now) override;

    const Piq &piq() const { return piq_; }
    const Config &config() const { return cfg; }

  private:
    StatSet::Counter stCpfProbes = stats.registerCounter("fdp.cpf_probes");
    StatSet::Counter stCpfFiltered =
        stats.registerCounter("fdp.cpf_filtered");
    StatSet::Counter stTlbDropped = stats.registerCounter("fdp.tlb_dropped");
    StatSet::Counter stTlbWaitStalls =
        stats.registerCounter("fdp.tlb_wait_stalls");
    StatSet::Counter stIssueStalls =
        stats.registerCounter("fdp.issue_stalls");
    StatSet::Counter stIssued = stats.registerCounter("fdp.issued");
    StatSet::Counter stIssueRedundant =
        stats.registerCounter("fdp.issue_redundant");
    StatSet::Counter stCandidates = stats.registerCounter("fdp.candidates");
    StatSet::Counter stDedupDropped =
        stats.registerCounter("fdp.dedup_dropped");
    StatSet::Counter stEnqueueNoPort =
        stats.registerCounter("fdp.enqueue_no_port");
    StatSet::Counter stRedirects = stats.registerCounter("fdp.redirects");

    void probeWaitingEntries(Cycle now);
    void issuePrefetches(Cycle now);
    void scanFtq(Cycle now);

    /** True if the candidate should be dropped before the PIQ. */
    bool recentlyRequested(Addr block_addr) const;
    void markRequested(Addr block_addr);

    Ftq &ftq;
    MemHierarchy &mem;
    Config cfg;
    Piq piq_;
    std::vector<Addr> recentFilter;
    std::size_t recentNext = 0;
};

} // namespace fdip

#endif // FDIP_PREFETCH_FDP_HH
