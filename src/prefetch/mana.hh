/**
 * @file mana.hh
 * MANA-style record/replay instruction prefetching: the demand fetch
 * stream is chopped into spatial regions; the footprint of blocks that
 * missed inside each region is recorded in a set-associative "MANA
 * table" when the stream leaves the region, and replayed (prefetched
 * into the prefetch buffer) the next time the stream re-enters it.
 * Entries also remember the successor region, so a replay can chase a
 * short chain of regions ahead of the fetch stream.
 *
 * Unlike FDP, which reads the *future* fetch stream out of the FTQ,
 * MANA buys its lookahead with dedicated metadata storage; the
 * mana.table_bytes / evictions counters price that trade (see
 * docs/PREFETCHERS.md).
 */

#ifndef FDIP_PREFETCH_MANA_HH
#define FDIP_PREFETCH_MANA_HH

#include <deque>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace fdip
{

class ManaPrefetcher : public Prefetcher
{
  public:
    struct Config
    {
        /** Cache blocks per spatial region (power of two, max 64). */
        unsigned regionBlocks = 8;
        /** MANA table geometry (sets a power of two). */
        unsigned tableSets = 128;
        unsigned tableWays = 4;
        /** Pending replay-candidate queue size. */
        std::size_t queueEntries = 16;
        /** Regions replayed per trigger, entered region included
         *  (successor-chain lookahead; 1 disables chaining). */
        unsigned chainLength = 2;
        /** Ablation: fill straight into the L1-I (pollution). */
        bool fillIntoL1 = false;
        /** Virtual address bits, for metadata-cost accounting. */
        unsigned vaBits = 48;
    };

    ManaPrefetcher(MemHierarchy &mem, const Config &config);

    std::string name() const override { return "mana"; }
    void tick(Cycle now) override;
    Cycle nextEventCycle(Cycle now) const override;
    void chargeIdleCycles(Cycle now, Cycle cycles) override;
    void onDemandAccess(Addr block_addr, const FetchAccess &access,
                        Cycle now) override;

    /** Bits in one MANA table entry: tag + footprint bitmap +
     *  successor region pointer (+ valid bits). */
    static unsigned entryBits(const Config &config);
    /** Total table capacity in bytes (entries x rounded-up entry
     *  bytes) — the scheme's metadata budget. */
    static std::uint64_t tableCapacityBytes(const Config &config);

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t footprint = 0; ///< bit per block in the region
        std::uint64_t successor = 0; ///< next region the stream entered
        bool hasSuccessor = false;
        std::uint64_t lruStamp = 0;
    };

    struct Cand
    {
        Addr vaddr = invalidAddr;
        /** Issue-time translation state (VM runs only). */
        PfTranslationState tr;
    };

    static constexpr std::uint64_t kNoRegion = ~std::uint64_t(0);

    std::uint64_t regionBytes() const;
    std::size_t setBase(std::uint64_t region) const;
    std::uint64_t tagOf(std::uint64_t region) const;
    Entry *find(std::uint64_t region);
    void recordRegion(std::uint64_t region, std::uint64_t footprint,
                      std::uint64_t successor);
    void replayRegion(std::uint64_t region, Addr trigger_block);
    void enqueue(Addr vaddr);

    StatSet::Counter stRecords = stats.registerCounter("mana.records");
    StatSet::Counter stRecordUpdates =
        stats.registerCounter("mana.record_updates");
    StatSet::Counter stEvictions = stats.registerCounter("mana.evictions");
    StatSet::Counter stTableBytes =
        stats.registerCounter("mana.table_bytes");
    StatSet::Counter stLookups = stats.registerCounter("mana.lookups");
    StatSet::Counter stReplays = stats.registerCounter("mana.replays");
    StatSet::Counter stChainReplays =
        stats.registerCounter("mana.chain_replays");
    StatSet::Counter stReplayedBlocks =
        stats.registerCounter("mana.replayed_blocks");
    StatSet::Counter stQueueDrops =
        stats.registerCounter("mana.queue_drops");
    StatSet::Counter stTlbDropped =
        stats.registerCounter("mana.tlb_dropped");
    StatSet::Counter stTlbWaitStalls =
        stats.registerCounter("mana.tlb_wait_stalls");
    StatSet::Counter stAlreadyCached =
        stats.registerCounter("mana.already_cached");
    StatSet::Counter stIssueStalls =
        stats.registerCounter("mana.issue_stalls");
    StatSet::Counter stIssued = stats.registerCounter("mana.issued");
    StatSet::Counter stRedundant = stats.registerCounter("mana.redundant");

    MemHierarchy &mem;
    Config cfg;

    std::vector<Entry> table;
    std::uint64_t lruClock = 0;
    std::uint64_t curRegion = kNoRegion;
    std::uint64_t curFootprint = 0;
    std::deque<Cand> pending;
};

} // namespace fdip

#endif // FDIP_PREFETCH_MANA_HH
