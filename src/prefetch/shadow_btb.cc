#include "prefetch/shadow_btb.hh"

#include <algorithm>

#include "bpu/btb.hh"
#include "bpu/ftb.hh"
#include "common/fnv.hh"
#include "common/logging.hh"
#include "trace/code_image.hh"

namespace fdip
{

namespace
{

/** Deterministic per-slot hash for the bogus-branch noise model. */
std::uint64_t
slotHash(Addr pc)
{
    Fnv1a f;
    f.u64(pc);
    return f.h;
}

} // namespace

ShadowBtbPrefetcher::ShadowBtbPrefetcher(Ftb *ftb_ptr, BtbIface *btb_ptr,
                                         MemHierarchy &mem_ref,
                                         const CodeImage *image_ptr,
                                         const Config &config)
    : ftb(ftb_ptr), btb(btb_ptr), mem(mem_ref), image(image_ptr),
      cfg(config)
{
    fatal_if(ftb == nullptr && btb == nullptr,
             "shadow-btb needs a BTB or FTB to pre-fill");
    fatal_if(cfg.scanWidth == 0, "shadow scan width must be nonzero");
    fatal_if(cfg.queueEntries == 0,
             "shadow scan queue needs at least one entry");
    recent.assign(cfg.recentFilterEntries, invalidAddr);
}

std::uint64_t
ShadowBtbPrefetcher::metadataBytes(const Config &config)
{
    // 48-bit line addresses: 6 bytes per queue/filter slot. The
    // prefill store itself is the front-end's existing BTB/FTB.
    return (config.queueEntries + config.recentFilterEntries) * 6;
}

bool
ShadowBtbPrefetcher::recentlyScanned(Addr line) const
{
    return std::find(recent.begin(), recent.end(), line) != recent.end();
}

void
ShadowBtbPrefetcher::noteScanned(Addr line)
{
    if (recent.empty())
        return;
    recent[recentNext] = line;
    recentNext = (recentNext + 1) % recent.size();
}

void
ShadowBtbPrefetcher::onDemandAccess(Addr block_addr,
                                    const FetchAccess &access, Cycle now)
{
    // Scan lines as they arrive from below: true misses plus first
    // uses of prefetched/streamed blocks.
    bool trigger = isTrueMiss(access) || access.hitPrefetchBuffer ||
        access.hitStreamBuffer;
    if (!trigger)
        return;
    if (image == nullptr) {
        // Trace replay carries no static code image to decode from;
        // the scheme degenerates to a no-op (documented).
        stNoImage.inc();
        return;
    }
    if (recentlyScanned(block_addr)) {
        stFiltered.inc();
        return;
    }
    if (std::find(scanQueue.begin(), scanQueue.end(), block_addr) !=
        scanQueue.end()) {
        return;
    }
    if (scanQueue.size() >= cfg.queueEntries) {
        stQueueDrops.inc();
        return; // scanning is opportunistic: drop, don't displace
    }
    scanQueue.push_back(block_addr);
    stLinesEnqueued.inc();
}

void
ShadowBtbPrefetcher::prefill(Addr block_start, Addr pc, InstClass cls,
                             Addr target, bool bogus)
{
    // A shadow decoder must never inject a target outside the code
    // segment: real direct branches satisfy this by construction, and
    // synthesized bogus targets are clamped in-image before they get
    // here, so this guard is pure defense (pinned by unit tests).
    if (target < image->base() || target >= image->end() ||
        target % instBytes != 0) {
        stOutOfRange.inc();
        return;
    }
    // Prefill only entries the front-end has not learned yet: the
    // shadow decoder's block-geometry reconstruction is approximate
    // (see below), so overwriting trained entries would corrupt them.
    if (ftb != nullptr) {
        // The FTB is block-indexed; reconstruct the fetch block as the
        // run since the previous CF in this line (or the line start —
        // an approximation of the true basic-block head, which a
        // line-local decoder cannot know).
        if (ftb->lookup(block_start).has_value()) {
            stAlreadyKnown.inc();
            return;
        }
        unsigned num_insts =
            unsigned((pc - block_start) / instBytes) + 1;
        ftb->insert(block_start, num_insts, cls, target);
    } else {
        if (btb->lookup(pc).has_value()) {
            stAlreadyKnown.inc();
            return;
        }
        btb->insert(pc, cls, target);
    }
    if (bogus)
        stPrefillBogus.inc();
    else
        stPrefillCorrect.inc();
}

void
ShadowBtbPrefetcher::tick(Cycle now)
{
    unsigned budget = cfg.scanWidth;
    unsigned slots_per_line = mem.l1i().config().blockBytes / instBytes;
    while (budget > 0 && !scanQueue.empty()) {
        Addr line = scanQueue.front();
        if (nextSlot == 0)
            blockStart = line;
        Addr pc = line + Addr(nextSlot) * instBytes;
        stInstsScanned.inc();
        const StaticInst &si = image->atOrPlain(pc);
        if (isControl(si.cls)) {
            if (isDirect(si.cls) && si.target != invalidAddr) {
                stBranchesFound.inc();
                prefill(blockStart, pc, si.cls, si.target, false);
            } else {
                // Returns and indirect branches have no statically
                // decodable target; a shadow decoder must skip them.
                stIndirectSkipped.inc();
            }
            blockStart = pc + instBytes;
        } else if (cfg.bogusNoiseDenom > 0 &&
                   slotHash(pc) % cfg.bogusNoiseDenom == 0) {
            // Branch-looking bytes: synthesize a deterministic
            // in-image target and pre-fill it as a bogus branch.
            std::uint64_t h = slotHash(pc ^ 0x5bd1e995u);
            Addr target = image->base() +
                Addr(h % image->numInsts()) * instBytes;
            InstClass cls =
                (h >> 32) & 1 ? InstClass::Jump : InstClass::CondBr;
            stBranchesFound.inc();
            prefill(blockStart, pc, cls, target, true);
            blockStart = pc + instBytes;
        }
        --budget;
        if (++nextSlot >= slots_per_line) {
            scanQueue.pop_front();
            noteScanned(line);
            stLinesScanned.inc();
            nextSlot = 0;
        }
    }
}

Cycle
ShadowBtbPrefetcher::nextEventCycle(Cycle now) const
{
    // A non-empty scan queue decodes more slots next cycle; otherwise
    // the scheme is purely reactive to demand accesses (which only
    // happen on ticked cycles).
    return scanQueue.empty() ? kNever : now + 1;
}

} // namespace fdip
