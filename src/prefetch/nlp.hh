/**
 * @file nlp.hh
 * Tagged next-line prefetching (Smith): on a demand miss, or on the
 * first use of a block that arrived by prefetch, request the next
 * sequential block(s) into the prefetch buffer.
 */

#ifndef FDIP_PREFETCH_NLP_HH
#define FDIP_PREFETCH_NLP_HH

#include <deque>

#include "prefetch/prefetcher.hh"

namespace fdip
{

class NlpPrefetcher : public Prefetcher
{
  public:
    struct Config
    {
        /** Sequential blocks requested per trigger. */
        unsigned degree = 1;
        /** Pending-candidate queue size. */
        std::size_t queueEntries = 8;
        /** Ablation: fill straight into the L1-I (pollution). */
        bool fillIntoL1 = false;
    };

    NlpPrefetcher(MemHierarchy &mem, const Config &config);

    std::string name() const override { return "nlp"; }
    void tick(Cycle now) override;
    Cycle nextEventCycle(Cycle now) const override;
    void chargeIdleCycles(Cycle now, Cycle cycles) override;
    void onDemandAccess(Addr block_addr, const FetchAccess &access,
                        Cycle now) override;

  private:
    struct Cand
    {
        Addr vaddr = invalidAddr;
        /** Issue-time translation state (VM runs only). */
        PfTranslationState tr;
    };

    StatSet::Counter stTriggers = stats.registerCounter("nlp.triggers");
    StatSet::Counter stTlbDropped = stats.registerCounter("nlp.tlb_dropped");
    StatSet::Counter stTlbWaitStalls =
        stats.registerCounter("nlp.tlb_wait_stalls");
    StatSet::Counter stAlreadyCached =
        stats.registerCounter("nlp.already_cached");
    StatSet::Counter stIssueStalls =
        stats.registerCounter("nlp.issue_stalls");
    StatSet::Counter stIssued = stats.registerCounter("nlp.issued");
    StatSet::Counter stRedundant = stats.registerCounter("nlp.redundant");

    MemHierarchy &mem;
    Config cfg;
    std::deque<Cand> pending;
};

} // namespace fdip

#endif // FDIP_PREFETCH_NLP_HH
