#include "prefetch/mana.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace fdip
{

ManaPrefetcher::ManaPrefetcher(MemHierarchy &mem_ref, const Config &config)
    : mem(mem_ref), cfg(config)
{
    fatal_if(cfg.regionBlocks == 0 || cfg.regionBlocks > 64 ||
                 !isPowerOf2(cfg.regionBlocks),
             "MANA region size must be a power-of-two block count <= 64");
    fatal_if(!isPowerOf2(cfg.tableSets),
             "MANA table set count must be a power of two");
    fatal_if(cfg.tableWays == 0, "MANA table needs at least one way");
    fatal_if(cfg.queueEntries == 0,
             "MANA replay queue needs at least one entry");
    fatal_if(cfg.chainLength == 0,
             "MANA chain length must be at least 1 (the entered region)");
    table.resize(std::size_t(cfg.tableSets) * cfg.tableWays);
}

unsigned
ManaPrefetcher::entryBits(const Config &config)
{
    unsigned block_bits = 5; // 32B blocks; geometry-independent estimate
    unsigned region_bits =
        config.vaBits - block_bits - floorLog2(config.regionBlocks);
    unsigned tag_bits = region_bits - floorLog2(config.tableSets);
    // tag + footprint bitmap + successor region pointer + entry-valid
    // and successor-valid bits.
    return tag_bits + config.regionBlocks + region_bits + 2;
}

std::uint64_t
ManaPrefetcher::tableCapacityBytes(const Config &config)
{
    std::uint64_t entries =
        std::uint64_t(config.tableSets) * config.tableWays;
    return entries * ((entryBits(config) + 7) / 8);
}

std::uint64_t
ManaPrefetcher::regionBytes() const
{
    return std::uint64_t(mem.l1i().config().blockBytes) *
        cfg.regionBlocks;
}

std::size_t
ManaPrefetcher::setBase(std::uint64_t region) const
{
    return std::size_t(region & (cfg.tableSets - 1)) * cfg.tableWays;
}

std::uint64_t
ManaPrefetcher::tagOf(std::uint64_t region) const
{
    return region >> floorLog2(cfg.tableSets);
}

ManaPrefetcher::Entry *
ManaPrefetcher::find(std::uint64_t region)
{
    std::size_t base = setBase(region);
    std::uint64_t tag = tagOf(region);
    for (unsigned w = 0; w < cfg.tableWays; ++w) {
        Entry &e = table[base + w];
        if (e.valid && e.tag == tag) {
            e.lruStamp = ++lruClock;
            return &e;
        }
    }
    return nullptr;
}

void
ManaPrefetcher::recordRegion(std::uint64_t region,
                             std::uint64_t footprint,
                             std::uint64_t successor)
{
    // Regions the stream walked through without a single miss carry no
    // replayable information; recording them would only thrash the
    // table.
    if (footprint == 0)
        return;
    stRecords.inc();
    if (Entry *e = find(region)) {
        e->footprint = footprint;
        e->successor = successor;
        e->hasSuccessor = true;
        stRecordUpdates.inc();
        return;
    }
    std::size_t base = setBase(region);
    Entry *victim = &table[base];
    for (unsigned w = 0; w < cfg.tableWays; ++w) {
        Entry &e = table[base + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lruStamp < victim->lruStamp)
            victim = &e;
    }
    if (victim->valid) {
        stEvictions.inc();
    } else {
        // Live-metadata accounting: bytes grow only while cold ways
        // fill, then plateau at tableCapacityBytes() (a counter, not a
        // gauge, so the warmup-window subtraction stays meaningful).
        stTableBytes.inc((entryBits(cfg) + 7) / 8);
    }
    victim->valid = true;
    victim->tag = tagOf(region);
    victim->footprint = footprint;
    victim->successor = successor;
    victim->hasSuccessor = true;
    victim->lruStamp = ++lruClock;
}

void
ManaPrefetcher::enqueue(Addr vaddr)
{
    bool queued = std::any_of(
        pending.begin(), pending.end(),
        [vaddr](const Cand &c) { return c.vaddr == vaddr; });
    if (queued)
        return;
    if (pending.size() >= cfg.queueEntries) {
        pending.pop_front();
        stQueueDrops.inc();
    }
    Cand c;
    c.vaddr = vaddr;
    pending.push_back(c);
    stReplayedBlocks.inc();
}

void
ManaPrefetcher::replayRegion(std::uint64_t region, Addr trigger_block)
{
    stLookups.inc();
    Entry *e = find(region);
    if (e == nullptr)
        return;
    stReplays.inc();
    unsigned bb = mem.l1i().config().blockBytes;
    std::uint64_t r = region;
    for (unsigned depth = 0; depth < cfg.chainLength; ++depth) {
        Addr base = Addr(r) * regionBytes();
        for (unsigned b = 0; b < cfg.regionBlocks; ++b) {
            if ((e->footprint & (std::uint64_t(1) << b)) == 0)
                continue;
            Addr cand = base + Addr(b) * bb;
            if (depth == 0 && cand == trigger_block)
                continue; // the demand access already fetched it
            enqueue(cand);
        }
        if (!e->hasSuccessor || depth + 1 == cfg.chainLength)
            break;
        r = e->successor;
        e = find(r);
        if (e == nullptr)
            break;
        stChainReplays.inc();
    }
}

void
ManaPrefetcher::onDemandAccess(Addr block_addr, const FetchAccess &access,
                               Cycle now)
{
    std::uint64_t region = block_addr / regionBytes();
    unsigned bb = mem.l1i().config().blockBytes;
    unsigned block_idx =
        unsigned(block_addr / bb) & (cfg.regionBlocks - 1);

    if (region != curRegion) {
        // Leaving a region finalizes its footprint; entering one
        // replays whatever an earlier visit recorded for it.
        if (curRegion != kNoRegion)
            recordRegion(curRegion, curFootprint, region);
        curRegion = region;
        curFootprint = 0;
        replayRegion(region, block_addr);
    }
    // The footprint records blocks the cache could not serve: true
    // misses plus first uses of prefetched blocks (so a region's
    // record stays stable once its own replays start hitting).
    if (isTrueMiss(access) || access.hitPrefetchBuffer)
        curFootprint |= std::uint64_t(1) << block_idx;
}

Cycle
ManaPrefetcher::nextEventCycle(Cycle now) const
{
    if (pending.empty())
        return kNever;
    const Cand &head = pending.front();
    if (!head.tr.translated)
        return now + 1;
    Cycle wake = translationWakeCycle(head.tr, now);
    return wake <= now + 1 ? now + 1 : wake;
}

void
ManaPrefetcher::chargeIdleCycles(Cycle now, Cycle cycles)
{
    if (!pending.empty() && pending.front().tr.translated &&
        translationWaiting(pending.front().tr)) {
        stTlbWaitStalls.inc(cycles);
    }
}

void
ManaPrefetcher::tick(Cycle now)
{
    while (!pending.empty()) {
        Cand &c = pending.front();
        switch (resolveTranslation(c.tr, c.vaddr, now)) {
          case TrResolve::Dropped:
            pending.pop_front();
            stTlbDropped.inc();
            continue;
          case TrResolve::Waiting:
            stTlbWaitStalls.inc();
            return; // head-of-line wait for the page walk
          case TrResolve::Ready:
            break;
        }
        if (mem.tagProbe(c.tr.paddr)) {
            pending.pop_front();
            stAlreadyCached.inc();
            continue;
        }
        FillDest dest = cfg.fillIntoL1 ? FillDest::DemandL1
                                       : FillDest::PrefetchBuffer;
        auto result = mem.issuePrefetch(c.tr.paddr, now, dest);
        if (result == MemHierarchy::PfIssue::NoResource) {
            stIssueStalls.inc();
            return;
        }
        pending.pop_front();
        if (result == MemHierarchy::PfIssue::Issued)
            stIssued.inc();
        else
            stRedundant.inc();
    }
}

} // namespace fdip
