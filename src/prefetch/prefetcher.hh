/**
 * @file prefetcher.hh
 * Interface every instruction prefetcher implements. The fetch engine
 * notifies prefetchers of demand accesses; the simulator ticks them
 * once per cycle (after demand fetch, so prefetchers only ever see
 * leftover tag ports and idle buses).
 */

#ifndef FDIP_PREFETCH_PREFETCHER_HH
#define FDIP_PREFETCH_PREFETCHER_HH

#include <string>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/hierarchy.hh"
#include "vm/mmu.hh"

namespace fdip
{

class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    virtual std::string name() const = 0;

    /** Per-cycle work: probing, issuing, scanning. */
    virtual void tick(Cycle now) {}

    /**
     * Quiescence protocol: the earliest future cycle at which tick()
     * would do anything beyond the fixed per-cycle charges replayed by
     * chargeIdleCycles() — now + 1 when it would act next cycle (scan,
     * probe, translate, or issue), a head-of-line walk completion when
     * it is waiting on the MMU, kNever when it is fully idle. Must
     * never return a cycle <= @p now.
     */
    virtual Cycle nextEventCycle(Cycle now) const { return kNever; }

    /**
     * Bulk-apply the per-cycle stall accounting of @p cycles ticks in
     * which this prefetcher provably does nothing (e.g. head-of-line
     * TLB-wait counters). Callers may only charge ranges in which
     * nextEventCycle() reported quiescence.
     */
    virtual void chargeIdleCycles(Cycle now, Cycle cycles) {}

    /**
     * Demand access notification from the fetch engine.
     * @param block_addr aligned virtual block address accessed
     * @param access the hierarchy's verdict for this access
     * @param now current cycle
     */
    virtual void
    onDemandAccess(Addr block_addr, const FetchAccess &access, Cycle now)
    {}

    /** Branch-misprediction redirect: squash speculative work. */
    virtual void onRedirect(Cycle now) {}

    /** Wire the VM subsystem (nullptr: flat physical addressing). */
    void setMmu(Mmu *m) { mmu_ = m; }

    StatSet stats;

  protected:
    /** What a candidate's cached translation allows this cycle. */
    enum class TrResolve
    {
        Ready,   ///< issue with @c state.paddr
        Waiting, ///< page walk in progress; retry later
        Dropped, ///< discard the candidate (Drop policy)
    };

    /**
     * Translation probe for a candidate virtual block address,
     * applying the configured prefetch-translation policy. Without an
     * MMU the candidate is Ready at its own address.
     */
    PfTranslation
    translateForPrefetch(Addr vaddr, Cycle now)
    {
        if (mmu_ == nullptr) {
            PfTranslation res;
            res.paddr = vaddr;
            res.readyAt = now;
            return res;
        }
        return mmu_->prefetchTranslate(vaddr, now);
    }

    /**
     * Resolve a candidate's cached translation: probe at most once,
     * then age the cached result until its walk (if any) completes.
     */
    TrResolve
    resolveTranslation(PfTranslationState &state, Addr vaddr, Cycle now)
    {
        if (!state.translated) {
            PfTranslation tr = translateForPrefetch(vaddr, now);
            if (tr.status == PfTranslation::Status::Dropped)
                return TrResolve::Dropped;
            state.translated = true;
            state.paddr = tr.paddr;
            state.readyAt = tr.readyAt;
        }
        return now < state.readyAt ? TrResolve::Waiting
                                   : TrResolve::Ready;
    }

    /**
     * Untimed page-table peek for filter probes that compare a virtual
     * candidate against physically-tagged structures (L1 tags, MSHRs).
     */
    Addr
    translateFunctional(Addr vaddr) const
    {
        return mmu_ == nullptr ? vaddr : mmu_->translateFunctional(vaddr);
    }

    Mmu *mmu_ = nullptr;
};

/** A "true" L1-I miss: nothing anywhere had the block. */
inline bool
isTrueMiss(const FetchAccess &a)
{
    return !a.hitL1 && !a.hitPrefetchBuffer && !a.hitStreamBuffer &&
        !a.mergedInflight && !a.retry;
}

} // namespace fdip

#endif // FDIP_PREFETCH_PREFETCHER_HH
