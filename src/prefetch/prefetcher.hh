/**
 * @file prefetcher.hh
 * Interface every instruction prefetcher implements. The fetch engine
 * notifies prefetchers of demand accesses; the simulator ticks them
 * once per cycle (after demand fetch, so prefetchers only ever see
 * leftover tag ports and idle buses).
 */

#ifndef FDIP_PREFETCH_PREFETCHER_HH
#define FDIP_PREFETCH_PREFETCHER_HH

#include <string>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/hierarchy.hh"

namespace fdip
{

class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    virtual std::string name() const = 0;

    /** Per-cycle work: probing, issuing, scanning. */
    virtual void tick(Cycle now) {}

    /**
     * Demand access notification from the fetch engine.
     * @param block_addr aligned block address accessed
     * @param access the hierarchy's verdict for this access
     * @param now current cycle
     */
    virtual void
    onDemandAccess(Addr block_addr, const FetchAccess &access, Cycle now)
    {}

    /** Branch-misprediction redirect: squash speculative work. */
    virtual void onRedirect(Cycle now) {}

    StatSet stats;
};

/** A "true" L1-I miss: nothing anywhere had the block. */
inline bool
isTrueMiss(const FetchAccess &a)
{
    return !a.hitL1 && !a.hitPrefetchBuffer && !a.hitStreamBuffer &&
        !a.mergedInflight && !a.retry;
}

} // namespace fdip

#endif // FDIP_PREFETCH_PREFETCHER_HH
