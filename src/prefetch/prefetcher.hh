/**
 * @file prefetcher.hh
 * Interface every instruction prefetcher implements. The fetch engine
 * notifies prefetchers of demand accesses; the simulator ticks them
 * once per cycle (after demand fetch, so prefetchers only ever see
 * leftover tag ports and idle buses).
 *
 * The scheme catalog lives in docs/PREFETCHERS.md; every
 * implementation registered in allPrefetchSchemes() is held to the
 * shared contract suite in tests/test_scheme_conformance.cc.
 */

#ifndef FDIP_PREFETCH_PREFETCHER_HH
#define FDIP_PREFETCH_PREFETCHER_HH

#include <string>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/hierarchy.hh"
#include "vm/mmu.hh"

namespace fdip
{

class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    virtual std::string name() const = 0;

    /** Per-cycle work: probing, issuing, scanning. */
    virtual void tick(Cycle now) {}

    /**
     * Quiescence protocol: the earliest future cycle at which tick()
     * would do anything beyond the fixed per-cycle charges replayed by
     * chargeIdleCycles() — now + 1 when it would act next cycle (scan,
     * probe, translate, or issue), a head-of-line walk completion when
     * it is waiting on the MMU, kNever when it is fully idle. Must
     * never return a cycle <= @p now.
     */
    virtual Cycle nextEventCycle(Cycle now) const { return kNever; }

    /**
     * Bulk-apply the per-cycle stall accounting of @p cycles ticks in
     * which this prefetcher provably does nothing (e.g. head-of-line
     * TLB-wait counters). Callers may only charge ranges in which
     * nextEventCycle() reported quiescence.
     */
    virtual void chargeIdleCycles(Cycle now, Cycle cycles) {}

    /**
     * Demand access notification from the fetch engine.
     * @param block_addr aligned virtual block address accessed
     * @param access the hierarchy's verdict for this access
     * @param now current cycle
     */
    virtual void
    onDemandAccess(Addr block_addr, const FetchAccess &access, Cycle now)
    {}

    /** Branch-misprediction redirect: squash speculative work. */
    virtual void onRedirect(Cycle now) {}

    /** Wire the VM subsystem (nullptr: flat physical addressing). */
    void setMmu(Mmu *m) { mmu_ = m; }

    StatSet stats;

  protected:
    /** What a candidate's cached translation allows this cycle. */
    enum class TrResolve
    {
        Ready,   ///< issue with @c state.paddr
        Waiting, ///< page walk in progress; retry later
        Dropped, ///< discard the candidate (Drop policy)
    };

    /**
     * Translation probe for a candidate virtual block address,
     * applying the configured prefetch-translation policy. Without an
     * MMU the candidate is Ready at its own address.
     */
    PfTranslation
    translateForPrefetch(Addr vaddr, Cycle now)
    {
        if (mmu_ == nullptr) {
            PfTranslation res;
            res.paddr = vaddr;
            res.readyAt = now;
            return res;
        }
        return mmu_->prefetchTranslate(vaddr, now);
    }

    /**
     * Resolve a candidate's cached translation: probe at most once,
     * then poll the MMU until the backing walk (if any) completes.
     * Polling (rather than comparing against a cached completion
     * cycle) is what makes bounded walker bandwidth work: a queued
     * prefetch walk's completion slides when demand walks overtake
     * it, so only the MMU knows when the candidate is really ready.
     */
    TrResolve
    resolveTranslation(PfTranslationState &state, Addr vaddr, Cycle now)
    {
        if (!state.translated) {
            PfTranslation tr = translateForPrefetch(vaddr, now);
            if (tr.status == PfTranslation::Status::Dropped)
                return TrResolve::Dropped;
            state.translated = true;
            state.paddr = tr.paddr;
            state.readyAt = tr.readyAt;
            state.vpn = tr.vpn;
            state.walkId = tr.walkId;
        }
        if (state.walkId != 0) {
            if (mmu_ != nullptr &&
                mmu_->walkPending(state.vpn, state.walkId)) {
                return TrResolve::Waiting;
            }
            state.walkId = 0; // walk completed: latch the resolution
        }
        return TrResolve::Ready;
    }

    /**
     * Earliest cycle a translated candidate can act, for
     * nextEventCycle(): now + 1 when its walk is done (or it never
     * had one), the completion cycle while the walk is active, and
     * kNever while the walk is still queued for a walker — the
     * MMU's own walker-completion events cover the start, so the
     * machine is guaranteed to tick before the state can change.
     */
    Cycle
    translationWakeCycle(const PfTranslationState &state, Cycle now) const
    {
        if (state.walkId == 0 || mmu_ == nullptr)
            return now + 1;
        Cycle ready = mmu_->walkReadyCycle(state.vpn, state.walkId);
        if (ready == 0)
            return now + 1; // walk done: candidate acts next cycle
        if (ready == kNever)
            return kNever; // queued: wake on the MMU's walker events
        return ready <= now + 1 ? now + 1 : ready;
    }

    /**
     * Is this translated candidate still waiting on an in-flight
     * walk? Used by chargeIdleCycles() to bulk-apply head-of-line
     * TLB-wait counters across a quiescent window (the caller
     * guarantees no walk completes inside the window).
     */
    bool
    translationWaiting(const PfTranslationState &state) const
    {
        return state.walkId != 0 && mmu_ != nullptr &&
            mmu_->walkPending(state.vpn, state.walkId);
    }

    /**
     * Untimed page-table peek for filter probes that compare a virtual
     * candidate against physically-tagged structures (L1 tags, MSHRs).
     */
    Addr
    translateFunctional(Addr vaddr) const
    {
        return mmu_ == nullptr ? vaddr : mmu_->translateFunctional(vaddr);
    }

    Mmu *mmu_ = nullptr;
};

/** A "true" L1-I miss: nothing anywhere had the block. */
inline bool
isTrueMiss(const FetchAccess &a)
{
    return !a.hitL1 && !a.hitPrefetchBuffer && !a.hitStreamBuffer &&
        !a.mergedInflight && !a.retry;
}

} // namespace fdip

#endif // FDIP_PREFETCH_PREFETCHER_HH
