/**
 * @file oracle.hh
 * Oracle instruction prefetcher: an upper bound on any front-end-
 * directed scheme. It reads the *correct-path* future directly from
 * the trace window and prefetches the next N instruction blocks ahead
 * of the verified front-end position. It still pays real bus
 * occupancy, MSHR limits, and fill latency — only its addresses are
 * perfect.
 */

#ifndef FDIP_PREFETCH_ORACLE_HH
#define FDIP_PREFETCH_ORACLE_HH

#include <vector>

#include "bpu/bpu.hh"
#include "prefetch/prefetcher.hh"
#include "trace/executor.hh"

namespace fdip
{

class OraclePrefetcher : public Prefetcher
{
  public:
    struct Config
    {
        /** Lookahead window in instructions. */
        unsigned lookaheadInsts = 256;
        /** Candidates examined per cycle. */
        unsigned scanWidth = 4;
        /** Issue attempts per cycle. */
        unsigned issueWidth = 2;
        unsigned recentFilterEntries = 32;
    };

    OraclePrefetcher(TraceWindow &trace, const Bpu &bpu,
                     MemHierarchy &mem, const Config &config);

    std::string name() const override { return "oracle"; }
    void tick(Cycle now) override;
    Cycle nextEventCycle(Cycle now) const override;

  private:
    StatSet::Counter stIssueStalls =
        stats.registerCounter("oracle.issue_stalls");
    StatSet::Counter stIssued = stats.registerCounter("oracle.issued");
    StatSet::Counter stCandidates =
        stats.registerCounter("oracle.candidates");

    bool recentlyRequested(Addr block) const;
    void markRequested(Addr block);

    TraceWindow &trace;
    const Bpu &bpu;
    MemHierarchy &mem;
    Config cfg;
    /** Next trace position to scan for candidate blocks. */
    InstSeqNum scanSeq = 0;
    std::vector<Addr> recentFilter;
    std::size_t recentNext = 0;
    std::vector<Addr> pending;
};

} // namespace fdip

#endif // FDIP_PREFETCH_ORACLE_HH
