#include "prefetch/oracle.hh"

#include <algorithm>

#include "common/logging.hh"

namespace fdip
{

OraclePrefetcher::OraclePrefetcher(TraceWindow &trace_ref,
                                   const Bpu &bpu_ref,
                                   MemHierarchy &mem_ref,
                                   const Config &config)
    : trace(trace_ref), bpu(bpu_ref), mem(mem_ref), cfg(config),
      recentFilter(cfg.recentFilterEntries, invalidAddr)
{
    fatal_if(cfg.lookaheadInsts == 0, "oracle needs lookahead");
}

bool
OraclePrefetcher::recentlyRequested(Addr block) const
{
    return std::find(recentFilter.begin(), recentFilter.end(), block) !=
        recentFilter.end();
}

void
OraclePrefetcher::markRequested(Addr block)
{
    if (recentFilter.empty())
        return;
    recentFilter[recentNext] = block;
    recentNext = (recentNext + 1) % recentFilter.size();
}

Cycle
OraclePrefetcher::nextEventCycle(Cycle now) const
{
    // Pending candidates mean an issue attempt next cycle; otherwise
    // the scan acts whenever the lookahead window is not exhausted.
    // The oracle never waits on walks (perfect ITLB) and charges no
    // per-cycle stall counters.
    if (!pending.empty())
        return now + 1;
    InstSeqNum base = bpu.nextVerifySeq();
    InstSeqNum from = scanSeq < base ? base : scanSeq;
    if (from < base + cfg.lookaheadInsts)
        return now + 1;
    return kNever;
}

void
OraclePrefetcher::tick(Cycle now)
{
    // Issue pending candidates over the idle bus.
    unsigned issued = 0;
    while (issued < cfg.issueWidth && !pending.empty()) {
        // The oracle is an upper bound: assume a perfect ITLB and
        // translate functionally instead of paying walk latency.
        Addr cand = translateFunctional(pending.front());
        auto result = mem.issuePrefetch(cand, now,
                                        FillDest::PrefetchBuffer);
        if (result == MemHierarchy::PfIssue::NoResource) {
            stIssueStalls.inc();
            break;
        }
        pending.erase(pending.begin());
        if (result == MemHierarchy::PfIssue::Issued) {
            stIssued.inc();
            ++issued;
        }
    }

    // Scan the true future for new candidate blocks. The window of
    // interest trails the BPU's verified position.
    InstSeqNum base = bpu.nextVerifySeq();
    if (scanSeq < base)
        scanSeq = base;
    InstSeqNum limit = base + cfg.lookaheadInsts;
    unsigned examined = 0;
    while (scanSeq < limit && examined < cfg.scanWidth &&
           pending.size() < 2 * cfg.scanWidth) {
        Addr block = mem.l1i().blockAlign(trace.at(scanSeq).pc);
        Addr pblock = translateFunctional(block);
        ++scanSeq;
        if (recentlyRequested(block) || mem.prefetchRedundant(pblock) ||
            mem.tagProbe(pblock)) {
            continue;
        }
        ++examined;
        pending.push_back(block);
        markRequested(block);
        stCandidates.inc();
    }
}

} // namespace fdip
