#include "prefetch/nlp.hh"

#include <algorithm>

#include "common/logging.hh"

namespace fdip
{

NlpPrefetcher::NlpPrefetcher(MemHierarchy &mem_ref, const Config &config)
    : mem(mem_ref), cfg(config)
{
    fatal_if(cfg.degree == 0, "NLP degree must be nonzero");
}

void
NlpPrefetcher::onDemandAccess(Addr block_addr, const FetchAccess &access,
                              Cycle now)
{
    // Trigger on a true miss or on first use of a prefetched block
    // (the "tag" of tagged next-line prefetching).
    bool trigger = isTrueMiss(access) || access.hitPrefetchBuffer;
    if (!trigger)
        return;
    stTriggers.inc();
    unsigned bb = mem.l1i().config().blockBytes;
    for (unsigned d = 1; d <= cfg.degree; ++d) {
        Addr cand = block_addr + Addr(d) * bb;
        bool queued = std::any_of(
            pending.begin(), pending.end(),
            [cand](const Cand &c) { return c.vaddr == cand; });
        if (queued)
            continue;
        if (pending.size() >= cfg.queueEntries)
            pending.pop_front();
        Cand c;
        c.vaddr = cand;
        pending.push_back(c);
    }
}

Cycle
NlpPrefetcher::nextEventCycle(Cycle now) const
{
    if (pending.empty())
        return kNever;
    const Cand &head = pending.front();
    // An untranslated or ready head acts next cycle; a waiting head
    // wakes at its page-walk completion (kNever while the walk is
    // queued for a walker — the MMU's events cover the start).
    if (!head.tr.translated)
        return now + 1;
    Cycle wake = translationWakeCycle(head.tr, now);
    return wake <= now + 1 ? now + 1 : wake;
}

void
NlpPrefetcher::chargeIdleCycles(Cycle now, Cycle cycles)
{
    if (!pending.empty() && pending.front().tr.translated &&
        translationWaiting(pending.front().tr)) {
        stTlbWaitStalls.inc(cycles);
    }
}

void
NlpPrefetcher::tick(Cycle now)
{
    while (!pending.empty()) {
        Cand &c = pending.front();
        switch (resolveTranslation(c.tr, c.vaddr, now)) {
          case TrResolve::Dropped:
            pending.pop_front();
            stTlbDropped.inc();
            continue;
          case TrResolve::Waiting:
            stTlbWaitStalls.inc();
            return; // head-of-line wait for the page walk
          case TrResolve::Ready:
            break;
        }
        // Next-line prefetch should not waste bandwidth on blocks the
        // cache already holds; the sequential-within-line case makes
        // this check nearly free in hardware (same row as the trigger).
        if (mem.tagProbe(c.tr.paddr)) {
            pending.pop_front();
            stAlreadyCached.inc();
            continue;
        }
        FillDest dest = cfg.fillIntoL1 ? FillDest::DemandL1
                                       : FillDest::PrefetchBuffer;
        auto result = mem.issuePrefetch(c.tr.paddr, now, dest);
        if (result == MemHierarchy::PfIssue::NoResource) {
            stIssueStalls.inc();
            return;
        }
        pending.pop_front();
        if (result == MemHierarchy::PfIssue::Issued)
            stIssued.inc();
        else
            stRedundant.inc();
    }
}

} // namespace fdip
