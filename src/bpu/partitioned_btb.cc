#include "bpu/partitioned_btb.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace fdip
{

PartitionedBtb::PartitionedBtb(const Config &config)
    : cfg(config)
{
    fatal_if(cfg.partitions.empty(), "partitioned BTB with no partitions");
    // Sort ascending by offset width so partitionFor picks the
    // smallest adequate one; a zero (full) width sorts last.
    std::vector<PartitionSpec> specs = cfg.partitions;
    std::sort(specs.begin(), specs.end(),
              [](const PartitionSpec &a, const PartitionSpec &b) {
                  unsigned wa = a.offsetBits == 0 ? ~0u : a.offsetBits;
                  unsigned wb = b.offsetBits == 0 ? ~0u : b.offsetBits;
                  return wa < wb;
              });
    for (const auto &spec : specs) {
        Btb::Config bc;
        bc.sets = spec.sets;
        bc.ways = spec.ways;
        bc.tagBits = cfg.tagBits;
        bc.offsetBits = spec.offsetBits;
        bc.vaBits = cfg.vaBits;
        parts.push_back(std::make_unique<Btb>(bc));
    }
    for (std::size_t i = 0; i < parts.size(); ++i) {
        stInsertByPartition.push_back(stats.registerCounter(
            strprintf("pbtb.insert_p%d", static_cast<int>(i))));
    }
}

PartitionedBtb::Config
PartitionedBtb::makeDefaultConfig(unsigned unified_entries,
                                  unsigned tag_bits)
{
    fatal_if(unified_entries < 64, "partitioned BTB too small");
    fatal_if(!isPowerOf2(unified_entries / 16),
             "unified_entries/16 must be a power of two");
    Config cfg;
    cfg.tagBits = tag_bits;
    unsigned e = unified_entries;
    // Sizing follows the suite's measured offset distribution:
    // ~79% of taken branches (plus all returns) fit 8-bit offsets,
    // a few percent each land in the 9-13 and 14-23 bit classes, and
    // indirect branches need full-width targets. Total entries are
    // ~2.4x the unified design within the same storage budget.
    cfg.partitions = {
        {8, e / 4, 6},    // 1.5e entries, 26-bit entries
        {13, e / 16, 4},  // 0.25e entries, 31-bit entries
        {23, e / 16, 4},  // 0.25e entries, 41-bit entries
        {0, e / 16, 6},   // 0.375e entries, 64-bit entries
    };
    return cfg;
}

int
PartitionedBtb::partitionFor(Addr pc, InstClass cls, Addr target) const
{
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (parts[i]->canHold(pc, cls, target))
            return static_cast<int>(i);
    }
    return -1;
}

std::optional<BtbHit>
PartitionedBtb::lookup(Addr pc)
{
    stLookups.inc();
    // All partitions are probed in parallel in hardware.
    for (auto &p : parts) {
        if (auto hit = p->lookup(pc)) {
            stHits.inc();
            return hit;
        }
    }
    stMisses.inc();
    return std::nullopt;
}

void
PartitionedBtb::insert(Addr pc, InstClass cls, Addr target)
{
    int pi = partitionFor(pc, cls, target);
    if (pi < 0) {
        stInsertRejected.inc();
        return;
    }
    // A branch whose target distance changed class must not linger in
    // another partition, or lookups could see a stale target.
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (static_cast<int>(i) != pi)
            parts[i]->invalidate(pc);
    }
    parts[pi]->insert(pc, cls, target);
    stInsertByPartition[static_cast<std::size_t>(pi)].inc();
}

void
PartitionedBtb::invalidate(Addr pc)
{
    for (auto &p : parts)
        p->invalidate(pc);
}

std::uint64_t
PartitionedBtb::storageBits() const
{
    std::uint64_t bits = 0;
    for (const auto &p : parts)
        bits += p->storageBits();
    return bits;
}

std::string
PartitionedBtb::name() const
{
    std::string n = "pbtb{";
    for (const auto &p : parts)
        n += p->name() + ",";
    n += "}";
    return n;
}

unsigned
PartitionedBtb::numEntries() const
{
    unsigned n = 0;
    for (const auto &p : parts)
        n += p->numEntries();
    return n;
}

} // namespace fdip
