/**
 * @file ftb.hh
 * Fetch target buffer: the basic-block-oriented BTB of the MICRO-32
 * front-end. Indexed by fetch-block start address; an entry describes
 * the run of straight-line instructions starting there, the type of the
 * terminating control-flow instruction, and its (last-seen) target.
 */

#ifndef FDIP_BPU_FTB_HH
#define FDIP_BPU_FTB_HH

#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "trace/instr.hh"

namespace fdip
{

struct FtbBlock
{
    unsigned numInsts;   ///< instructions incl. the terminator
    InstClass termCls;
    Addr target;
};

class Ftb
{
  public:
    struct Config
    {
        unsigned sets = 1024;
        unsigned ways = 4;
        unsigned vaBits = 48;
        /** Max encodable block length (bbSize field width 5 bits). */
        unsigned maxBlockInsts = 31;
    };

    explicit Ftb(const Config &config);

    /** Probe for a fetch block starting at @p start_pc. */
    std::optional<FtbBlock> lookup(Addr start_pc);

    /** Record the block [start_pc .. start_pc + num_insts) ending in a
     *  taken branch of class @p cls to @p target. */
    void insert(Addr start_pc, unsigned num_insts, InstClass cls,
                Addr target);

    void invalidate(Addr start_pc);

    /** Entry bits: tag + type(2) + bbSize(5) + target(vaBits-2). */
    unsigned entryBits() const;
    std::uint64_t storageBits() const;
    unsigned fullTagBits() const;
    unsigned numEntries() const { return cfg.sets * cfg.ways; }
    unsigned validEntries() const;
    std::string name() const;

    const Config &config() const { return cfg; }

    StatSet stats;

  private:
    StatSet::Counter stLookups = stats.registerCounter("ftb.lookups");
    StatSet::Counter stHits = stats.registerCounter("ftb.hits");
    StatSet::Counter stMisses = stats.registerCounter("ftb.misses");
    StatSet::Counter stInsertTruncated =
        stats.registerCounter("ftb.insert_truncated");
    StatSet::Counter stUpdates = stats.registerCounter("ftb.updates");
    StatSet::Counter stEvictions = stats.registerCounter("ftb.evictions");
    StatSet::Counter stInserts = stats.registerCounter("ftb.inserts");
    StatSet::Counter stInvalidations =
        stats.registerCounter("ftb.invalidations");

    struct Entry
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint8_t numInsts = 0;
        InstClass cls = InstClass::NonCF;
        Addr target = invalidAddr;
        std::uint64_t lruStamp = 0;
    };

    std::size_t setIndex(Addr pc) const;
    std::uint64_t tagOf(Addr pc) const;

    Config cfg;
    std::vector<Entry> entries;
    std::uint64_t lruClock = 0;
};

} // namespace fdip

#endif // FDIP_BPU_FTB_HH
