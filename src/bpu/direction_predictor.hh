/**
 * @file direction_predictor.hh
 * Interface for conditional-branch direction predictors.
 */

#ifndef FDIP_BPU_DIRECTION_PREDICTOR_HH
#define FDIP_BPU_DIRECTION_PREDICTOR_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace fdip
{

/** Global branch-history register helpers. */
inline std::uint64_t
shiftHistory(std::uint64_t hist, bool taken)
{
    return (hist << 1) | (taken ? 1 : 0);
}

class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predict the direction of the branch at @p pc. Read-only. */
    virtual bool predict(Addr pc, std::uint64_t ghist) const = 0;

    /** Train with the resolved outcome. */
    virtual void update(Addr pc, std::uint64_t ghist, bool taken) = 0;

    virtual std::string name() const = 0;

    /** Total predictor state in bits (for storage accounting). */
    virtual std::uint64_t storageBits() const = 0;
};

} // namespace fdip

#endif // FDIP_BPU_DIRECTION_PREDICTOR_HH
