#include "bpu/bimodal.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace fdip
{

BimodalPredictor::BimodalPredictor(std::size_t entries,
                                   unsigned counter_bits)
    : table(entries, SatCounter(counter_bits,
          static_cast<std::uint8_t>((1u << counter_bits) / 2))),
      ctrBits(counter_bits)
{
    fatal_if(!isPowerOf2(entries), "bimodal table size must be 2^n");
}

std::size_t
BimodalPredictor::index(Addr pc) const
{
    return (pc / instBytes) & (table.size() - 1);
}

bool
BimodalPredictor::predict(Addr pc, std::uint64_t) const
{
    return table[index(pc)].taken();
}

void
BimodalPredictor::update(Addr pc, std::uint64_t, bool taken)
{
    table[index(pc)].update(taken);
}

std::uint64_t
BimodalPredictor::storageBits() const
{
    return table.size() * ctrBits;
}

} // namespace fdip
