#include "bpu/btb.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace fdip
{

Btb::Btb(const Config &config)
    : cfg(config), entries(std::size_t(cfg.sets) * cfg.ways)
{
    fatal_if(!isPowerOf2(cfg.sets), "BTB sets must be a power of two");
    fatal_if(cfg.ways == 0, "BTB needs at least one way");
    fatal_if(cfg.tagBits > fullTagBits(),
             "BTB tag wider than the full tag");
}

std::size_t
Btb::setIndex(Addr pc) const
{
    return (pc / instBytes) & (cfg.sets - 1);
}

unsigned
Btb::fullTagBits() const
{
    // VA bits minus word-alignment bits minus set-index bits.
    unsigned idx_bits = floorLog2(cfg.sets);
    return cfg.vaBits - 2 - idx_bits;
}

std::uint64_t
Btb::tagOf(Addr pc) const
{
    std::uint64_t full = (pc / instBytes) >> floorLog2(cfg.sets);
    if (cfg.tagBits == 0)
        return full;
    // Keep the low 8 bits verbatim; fold the rest by XOR into the
    // remaining high bits of the compressed tag.
    unsigned low_bits = cfg.tagBits < 8 ? cfg.tagBits : 8;
    std::uint64_t low_mask = (std::uint64_t(1) << low_bits) - 1;
    std::uint64_t low = full & low_mask;
    if (cfg.tagBits <= 8)
        return low;
    std::uint64_t high = foldXor(full >> low_bits, cfg.tagBits - low_bits);
    return (high << low_bits) | low;
}

std::optional<BtbHit>
Btb::lookup(Addr pc)
{
    stLookups.inc();
    std::size_t base = setIndex(pc) * cfg.ways;
    std::uint64_t tag = tagOf(pc);
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Entry &e = entries[base + w];
        if (e.valid && e.tag == tag) {
            e.lruStamp = ++lruClock;
            stHits.inc();
            return BtbHit{e.cls, e.target};
        }
    }
    stMisses.inc();
    return std::nullopt;
}

bool
Btb::canHold(Addr pc, InstClass cls, Addr target) const
{
    if (cfg.offsetBits == 0)
        return true;
    // Returns need no target field at all (the RAS supplies the
    // target); the BTB entry only identifies the instruction.
    if (cls == InstClass::Return)
        return true;
    // Indirect branches have no static offset; they need a full-width
    // target field.
    if (!isDirect(cls))
        return false;
    std::int64_t delta =
        (static_cast<std::int64_t>(target) -
         static_cast<std::int64_t>(pc)) / static_cast<std::int64_t>(
             instBytes);
    return bitsForOffset(delta) <= cfg.offsetBits;
}

void
Btb::insert(Addr pc, InstClass cls, Addr target)
{
    if (!canHold(pc, cls, target)) {
        stInsertRejected.inc();
        return;
    }
    std::size_t base = setIndex(pc) * cfg.ways;
    std::uint64_t tag = tagOf(pc);

    // Update in place on tag match.
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Entry &e = entries[base + w];
        if (e.valid && e.tag == tag) {
            e.cls = cls;
            e.target = target;
            e.lruStamp = ++lruClock;
            stUpdates.inc();
            return;
        }
    }
    // Otherwise fill an invalid way, or evict the LRU way.
    Entry *victim = &entries[base];
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Entry &e = entries[base + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lruStamp < victim->lruStamp)
            victim = &e;
    }
    if (victim->valid)
        stEvictions.inc();
    victim->valid = true;
    victim->tag = tag;
    victim->cls = cls;
    victim->target = target;
    victim->lruStamp = ++lruClock;
    stInserts.inc();
}

void
Btb::invalidate(Addr pc)
{
    std::size_t base = setIndex(pc) * cfg.ways;
    std::uint64_t tag = tagOf(pc);
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Entry &e = entries[base + w];
        if (e.valid && e.tag == tag) {
            e.valid = false;
            stInvalidations.inc();
        }
    }
}

unsigned
Btb::entryBits() const
{
    unsigned tag = cfg.tagBits == 0 ? fullTagBits() : cfg.tagBits;
    unsigned target = cfg.offsetBits == 0 ? cfg.vaBits - 2
                                          : cfg.offsetBits;
    return tag + 2 + target; // tag + type + target/offset
}

std::uint64_t
Btb::storageBits() const
{
    return std::uint64_t(numEntries()) * entryBits();
}

std::string
Btb::name() const
{
    return strprintf("btb[%ux%u,tag=%u,off=%u]", cfg.sets, cfg.ways,
                     cfg.tagBits, cfg.offsetBits);
}

unsigned
Btb::validEntries() const
{
    unsigned n = 0;
    for (const auto &e : entries) {
        if (e.valid)
            ++n;
    }
    return n;
}

} // namespace fdip
