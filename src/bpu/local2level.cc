#include "bpu/local2level.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace fdip
{

Local2LevelPredictor::Local2LevelPredictor(std::size_t history_entries,
                                           unsigned history_bits,
                                           std::size_t pattern_entries,
                                           unsigned counter_bits)
    : historyTable(history_entries, 0),
      patternTable(pattern_entries, SatCounter(counter_bits,
          static_cast<std::uint8_t>((1u << counter_bits) / 2))),
      histBits(history_bits), ctrBits(counter_bits)
{
    fatal_if(!isPowerOf2(history_entries), "history table size must be 2^n");
    fatal_if(!isPowerOf2(pattern_entries), "pattern table size must be 2^n");
    fatal_if(history_bits > 30, "local history too long");
}

std::size_t
Local2LevelPredictor::histIndex(Addr pc) const
{
    return (pc / instBytes) & (historyTable.size() - 1);
}

std::size_t
Local2LevelPredictor::patIndex(std::uint64_t local_hist) const
{
    return local_hist & (patternTable.size() - 1);
}

bool
Local2LevelPredictor::predict(Addr pc, std::uint64_t) const
{
    std::uint64_t local = historyTable[histIndex(pc)];
    return patternTable[patIndex(local)].taken();
}

void
Local2LevelPredictor::update(Addr pc, std::uint64_t, bool taken)
{
    std::size_t hi = histIndex(pc);
    std::uint64_t local = historyTable[hi];
    patternTable[patIndex(local)].update(taken);
    historyTable[hi] = static_cast<std::uint32_t>(
        ((local << 1) | (taken ? 1 : 0)) &
        ((std::uint64_t(1) << histBits) - 1));
}

std::uint64_t
Local2LevelPredictor::storageBits() const
{
    return historyTable.size() * histBits + patternTable.size() * ctrBits;
}

} // namespace fdip
