#include "bpu/gshare.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace fdip
{

GsharePredictor::GsharePredictor(std::size_t entries,
                                 unsigned history_bits,
                                 unsigned counter_bits)
    : table(entries, SatCounter(counter_bits,
          static_cast<std::uint8_t>((1u << counter_bits) / 2))),
      histBits(history_bits), ctrBits(counter_bits)
{
    fatal_if(!isPowerOf2(entries), "gshare table size must be 2^n");
    fatal_if(history_bits > 32, "gshare history too long");
}

std::size_t
GsharePredictor::index(Addr pc, std::uint64_t ghist) const
{
    std::uint64_t hist = ghist & ((std::uint64_t(1) << histBits) - 1);
    return ((pc / instBytes) ^ hist) & (table.size() - 1);
}

bool
GsharePredictor::predict(Addr pc, std::uint64_t ghist) const
{
    return table[index(pc, ghist)].taken();
}

void
GsharePredictor::update(Addr pc, std::uint64_t ghist, bool taken)
{
    table[index(pc, ghist)].update(taken);
}

std::uint64_t
GsharePredictor::storageBits() const
{
    return table.size() * ctrBits;
}

} // namespace fdip
