/**
 * @file gshare.hh
 * McFarling's gshare: global history XOR-ed into the PC index.
 */

#ifndef FDIP_BPU_GSHARE_HH
#define FDIP_BPU_GSHARE_HH

#include <vector>

#include "common/sat_counter.hh"
#include "bpu/direction_predictor.hh"

namespace fdip
{

class GsharePredictor : public DirectionPredictor
{
  public:
    /**
     * @param entries table size (power of two)
     * @param history_bits global-history bits folded into the index
     */
    explicit GsharePredictor(std::size_t entries = 16384,
                             unsigned history_bits = 12,
                             unsigned counter_bits = 2);

    bool predict(Addr pc, std::uint64_t ghist) const override;
    void update(Addr pc, std::uint64_t ghist, bool taken) override;
    std::string name() const override { return "gshare"; }
    std::uint64_t storageBits() const override;

    unsigned historyBits() const { return histBits; }

  private:
    std::size_t index(Addr pc, std::uint64_t ghist) const;

    std::vector<SatCounter> table;
    unsigned histBits;
    unsigned ctrBits;
};

} // namespace fdip

#endif // FDIP_BPU_GSHARE_HH
