/**
 * @file bimodal.hh
 * PC-indexed table of 2-bit saturating counters (Smith predictor).
 */

#ifndef FDIP_BPU_BIMODAL_HH
#define FDIP_BPU_BIMODAL_HH

#include <vector>

#include "common/sat_counter.hh"
#include "bpu/direction_predictor.hh"

namespace fdip
{

class BimodalPredictor : public DirectionPredictor
{
  public:
    /** @param entries table size; must be a power of two. */
    explicit BimodalPredictor(std::size_t entries = 4096,
                              unsigned counter_bits = 2);

    bool predict(Addr pc, std::uint64_t ghist) const override;
    void update(Addr pc, std::uint64_t ghist, bool taken) override;
    std::string name() const override { return "bimodal"; }
    std::uint64_t storageBits() const override;

  private:
    std::size_t index(Addr pc) const;

    std::vector<SatCounter> table;
    unsigned ctrBits;
};

} // namespace fdip

#endif // FDIP_BPU_BIMODAL_HH
