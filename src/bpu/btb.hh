/**
 * @file btb.hh
 * Conventional (instruction-indexed) branch target buffer, plus the
 * abstract interface shared with the partitioned-BTB extension.
 *
 * A hit means "the instruction at this PC is a control-flow instruction
 * of this type with this (last-seen) target". Entries are allocated for
 * taken branches only, LRU-replaced within a set.
 */

#ifndef FDIP_BPU_BTB_HH
#define FDIP_BPU_BTB_HH

#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "trace/instr.hh"

namespace fdip
{

struct BtbHit
{
    InstClass cls;
    Addr target;
};

/** Interface common to the unified and partitioned BTBs. */
class BtbIface
{
  public:
    virtual ~BtbIface() = default;

    /** Probe for a branch at @p pc; touches LRU on hit. */
    virtual std::optional<BtbHit> lookup(Addr pc) = 0;

    /** Allocate/update the entry for a taken branch. */
    virtual void insert(Addr pc, InstClass cls, Addr target) = 0;

    /** Drop any entry for @p pc. */
    virtual void invalidate(Addr pc) = 0;

    virtual std::uint64_t storageBits() const = 0;
    virtual std::string name() const = 0;

    StatSet stats;
};

class Btb : public BtbIface
{
  public:
    struct Config
    {
        unsigned sets = 1024;
        unsigned ways = 4;
        /**
         * Tag width; 0 means a full tag. Non-zero widths keep the low
         * 8 bits of the full tag and fold the rest with XOR into the
         * remaining high bits (the compression scheme evaluated in the
         * tag-compression experiment).
         */
        unsigned tagBits = 0;
        /**
         * Width of the target-offset field in bits (offsets counted in
         * instructions, sign tracked separately); 0 stores full
         * targets. Branches whose offset does not fit are rejected by
         * insert() unless the target field is full width.
         */
        unsigned offsetBits = 0;
        /** Virtual address bits, for storage accounting. */
        unsigned vaBits = 48;
    };

    explicit Btb(const Config &config);

    std::optional<BtbHit> lookup(Addr pc) override;
    void insert(Addr pc, InstClass cls, Addr target) override;
    void invalidate(Addr pc) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;

    /** True if the branch's offset fits this BTB's target field. */
    bool canHold(Addr pc, InstClass cls, Addr target) const;

    /** Bits in one entry (tag + type + target field). */
    unsigned entryBits() const;

    /** Full (uncompressed) tag width for this geometry. */
    unsigned fullTagBits() const;

    const Config &config() const { return cfg; }
    unsigned numEntries() const { return cfg.sets * cfg.ways; }

    /** Count of currently valid entries (for tests/occupancy stats). */
    unsigned validEntries() const;

  private:
    StatSet::Counter stLookups = stats.registerCounter("btb.lookups");
    StatSet::Counter stHits = stats.registerCounter("btb.hits");
    StatSet::Counter stMisses = stats.registerCounter("btb.misses");
    StatSet::Counter stInsertRejected =
        stats.registerCounter("btb.insert_rejected");
    StatSet::Counter stUpdates = stats.registerCounter("btb.updates");
    StatSet::Counter stEvictions = stats.registerCounter("btb.evictions");
    StatSet::Counter stInserts = stats.registerCounter("btb.inserts");
    StatSet::Counter stInvalidations =
        stats.registerCounter("btb.invalidations");

    struct Entry
    {
        bool valid = false;
        std::uint64_t tag = 0;
        InstClass cls = InstClass::NonCF;
        Addr target = invalidAddr;
        std::uint64_t lruStamp = 0;
    };

    std::size_t setIndex(Addr pc) const;
    std::uint64_t tagOf(Addr pc) const;

    Config cfg;
    std::vector<Entry> entries;
    std::uint64_t lruClock = 0;
};

} // namespace fdip

#endif // FDIP_BPU_BTB_HH
