/**
 * @file ras.hh
 * Return address stack: fixed-depth circular stack that overwrites the
 * oldest entry on overflow, as real hardware does. Copyable so the BPU
 * can keep an architectural shadow for misprediction recovery.
 */

#ifndef FDIP_BPU_RAS_HH
#define FDIP_BPU_RAS_HH

#include <vector>

#include "common/types.hh"

namespace fdip
{

class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned depth = 32);

    void push(Addr return_pc);

    /** Pop and return the top; invalidAddr when empty. */
    Addr pop();

    /** Peek without popping; invalidAddr when empty. */
    Addr top() const;

    bool empty() const { return count == 0; }
    unsigned size() const { return count; }
    unsigned depth() const { return static_cast<unsigned>(stack.size()); }

    void clear();

    std::uint64_t storageBits() const;

  private:
    std::vector<Addr> stack;
    unsigned tos = 0;    ///< index one past the top entry
    unsigned count = 0;  ///< valid entries (<= depth)
};

} // namespace fdip

#endif // FDIP_BPU_RAS_HH
