/**
 * @file local2level.hh
 * Two-level local-history predictor (Yeh & Patt PAg style): a per-PC
 * history table feeding a shared pattern table of saturating counters.
 */

#ifndef FDIP_BPU_LOCAL2LEVEL_HH
#define FDIP_BPU_LOCAL2LEVEL_HH

#include <vector>

#include "common/sat_counter.hh"
#include "bpu/direction_predictor.hh"

namespace fdip
{

class Local2LevelPredictor : public DirectionPredictor
{
  public:
    /**
     * @param history_entries size of the per-PC history table (2^n)
     * @param history_bits local history length
     * @param pattern_entries size of the pattern table (2^n)
     */
    explicit Local2LevelPredictor(std::size_t history_entries = 1024,
                                  unsigned history_bits = 10,
                                  std::size_t pattern_entries = 1024,
                                  unsigned counter_bits = 2);

    bool predict(Addr pc, std::uint64_t ghist) const override;
    void update(Addr pc, std::uint64_t ghist, bool taken) override;
    std::string name() const override { return "local2level"; }
    std::uint64_t storageBits() const override;

  private:
    std::size_t histIndex(Addr pc) const;
    std::size_t patIndex(std::uint64_t local_hist) const;

    std::vector<std::uint32_t> historyTable;
    std::vector<SatCounter> patternTable;
    unsigned histBits;
    unsigned ctrBits;
};

} // namespace fdip

#endif // FDIP_BPU_LOCAL2LEVEL_HH
