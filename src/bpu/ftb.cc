#include "bpu/ftb.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace fdip
{

Ftb::Ftb(const Config &config)
    : cfg(config), entries(std::size_t(cfg.sets) * cfg.ways)
{
    fatal_if(!isPowerOf2(cfg.sets), "FTB sets must be a power of two");
    fatal_if(cfg.ways == 0, "FTB needs at least one way");
    fatal_if(cfg.maxBlockInsts == 0 || cfg.maxBlockInsts > 255,
             "FTB block size out of range");
}

std::size_t
Ftb::setIndex(Addr pc) const
{
    return (pc / instBytes) & (cfg.sets - 1);
}

std::uint64_t
Ftb::tagOf(Addr pc) const
{
    return (pc / instBytes) >> floorLog2(cfg.sets);
}

unsigned
Ftb::fullTagBits() const
{
    return cfg.vaBits - 2 - floorLog2(cfg.sets);
}

std::optional<FtbBlock>
Ftb::lookup(Addr start_pc)
{
    stLookups.inc();
    std::size_t base = setIndex(start_pc) * cfg.ways;
    std::uint64_t tag = tagOf(start_pc);
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Entry &e = entries[base + w];
        if (e.valid && e.tag == tag) {
            e.lruStamp = ++lruClock;
            stHits.inc();
            return FtbBlock{e.numInsts, e.cls, e.target};
        }
    }
    stMisses.inc();
    return std::nullopt;
}

void
Ftb::insert(Addr start_pc, unsigned num_insts, InstClass cls, Addr target)
{
    panic_if(num_insts == 0, "FTB block with no instructions");
    if (num_insts > cfg.maxBlockInsts) {
        // Blocks longer than the size field are truncated by hardware;
        // the tail is rediscovered as a separate (sequential) region.
        stInsertTruncated.inc();
        return;
    }
    std::size_t base = setIndex(start_pc) * cfg.ways;
    std::uint64_t tag = tagOf(start_pc);

    for (unsigned w = 0; w < cfg.ways; ++w) {
        Entry &e = entries[base + w];
        if (e.valid && e.tag == tag) {
            e.numInsts = static_cast<std::uint8_t>(num_insts);
            e.cls = cls;
            e.target = target;
            e.lruStamp = ++lruClock;
            stUpdates.inc();
            return;
        }
    }
    Entry *victim = &entries[base];
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Entry &e = entries[base + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lruStamp < victim->lruStamp)
            victim = &e;
    }
    if (victim->valid)
        stEvictions.inc();
    victim->valid = true;
    victim->tag = tag;
    victim->numInsts = static_cast<std::uint8_t>(num_insts);
    victim->cls = cls;
    victim->target = target;
    victim->lruStamp = ++lruClock;
    stInserts.inc();
}

void
Ftb::invalidate(Addr start_pc)
{
    std::size_t base = setIndex(start_pc) * cfg.ways;
    std::uint64_t tag = tagOf(start_pc);
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Entry &e = entries[base + w];
        if (e.valid && e.tag == tag) {
            e.valid = false;
            stInvalidations.inc();
        }
    }
}

unsigned
Ftb::entryBits() const
{
    return fullTagBits() + 2 + 5 + (cfg.vaBits - 2);
}

std::uint64_t
Ftb::storageBits() const
{
    return std::uint64_t(numEntries()) * entryBits();
}

unsigned
Ftb::validEntries() const
{
    unsigned n = 0;
    for (const auto &e : entries) {
        if (e.valid)
            ++n;
    }
    return n;
}

std::string
Ftb::name() const
{
    return strprintf("ftb[%ux%u]", cfg.sets, cfg.ways);
}

} // namespace fdip
