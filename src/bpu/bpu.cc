#include "bpu/bpu.hh"

#include "common/logging.hh"
#include "bpu/hybrid.hh"
#include "bpu/local2level.hh"

namespace fdip
{

const char *
predictorKindName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Bimodal: return "bimodal";
      case PredictorKind::Gshare: return "gshare";
      case PredictorKind::Local2Level: return "local2level";
      case PredictorKind::Hybrid: return "hybrid";
    }
    return "?";
}

Bpu::Bpu(TraceWindow &trace_window, const BpuConfig &config,
         std::unique_ptr<BtbIface> custom_btb)
    : trace(trace_window), cfg(config),
      specRas(cfg.rasDepth), archRas(cfg.rasDepth)
{
    switch (cfg.predictor) {
      case PredictorKind::Bimodal:
        dirPred = std::make_unique<BimodalPredictor>(cfg.bimodalEntries);
        break;
      case PredictorKind::Gshare:
        dirPred = std::make_unique<GsharePredictor>(
            cfg.gshareEntries, cfg.historyBits);
        break;
      case PredictorKind::Local2Level:
        dirPred = std::make_unique<Local2LevelPredictor>();
        break;
      case PredictorKind::Hybrid:
        dirPred = std::make_unique<HybridPredictor>(
            cfg.gshareEntries, cfg.historyBits, cfg.bimodalEntries,
            cfg.chooserEntries);
        break;
    }
    if (cfg.blockBased) {
        panic_if(custom_btb != nullptr,
                 "custom BTB is only meaningful without an FTB");
        ftb_ = std::make_unique<Ftb>(cfg.ftb);
    } else if (custom_btb) {
        btb_ = std::move(custom_btb);
    } else {
        btb_ = std::make_unique<Btb>(cfg.btb);
    }
    for (int i = 0; i <= static_cast<int>(InstClass::IndCall); ++i) {
        stDivergeByClass[i] = stats.registerCounter(
            strprintf("bpu.diverge_%s",
                      instClassName(static_cast<InstClass>(i))));
    }
    specPc = trace.at(0).pc;
}

FetchBlock
Bpu::formBlockFtb()
{
    FetchBlock blk;
    blk.startPc = specPc;

    auto hit = ftb_->lookup(specPc);
    if (!hit || hit->numInsts > cfg.maxBlockInsts) {
        // FTB miss (or a block too long to fetch at once): generate a
        // full-width sequential block; any branch hiding inside will
        // surface as a misfetch.
        blk.numInsts = cfg.maxBlockInsts;
        blk.nextFetchPc = specPc + Addr(blk.numInsts) * instBytes;
        stSeqBlocks.inc();
        specPc = blk.nextFetchPc;
        return blk;
    }

    blk.numInsts = hit->numInsts;
    blk.endsInCF = true;
    blk.termCls = hit->termCls;
    Addr term_pc = blk.startPc + Addr(blk.numInsts - 1) * instBytes;
    Addr fallthrough = blk.startPc + Addr(blk.numInsts) * instBytes;

    bool taken = true;
    Addr target = hit->target;
    if (hit->termCls == InstClass::CondBr) {
        taken = dirPred->predict(term_pc, specHist);
        specHist = shiftHistory(specHist, taken);
    } else if (hit->termCls == InstClass::Return) {
        Addr r = specRas.pop();
        target = (r == invalidAddr) ? fallthrough : r;
    }
    if (isCall(hit->termCls))
        specRas.push(term_pc + instBytes);

    blk.predTaken = taken;
    blk.predTarget = target;
    blk.nextFetchPc = taken ? target : fallthrough;
    stFtbBlocks.inc();
    specPc = blk.nextFetchPc;
    return blk;
}

FetchBlock
Bpu::formBlockBtb()
{
    FetchBlock blk;
    blk.startPc = specPc;

    // All fetch-width PCs probe the BTB in parallel; the block ends at
    // the first control-flow instruction predicted taken.
    for (unsigned i = 0; i < cfg.maxBlockInsts; ++i) {
        Addr pc_i = blk.startPc + Addr(i) * instBytes;
        auto hit = btb_->lookup(pc_i);
        if (!hit)
            continue;
        if (hit->cls == InstClass::CondBr) {
            bool taken = dirPred->predict(pc_i, specHist);
            specHist = shiftHistory(specHist, taken);
            if (!taken)
                continue; // predicted not-taken: keep scanning
            blk.numInsts = i + 1;
            blk.endsInCF = true;
            blk.termCls = hit->cls;
            blk.predTaken = true;
            blk.predTarget = hit->target;
            break;
        }
        // Unconditional control flow always ends the block.
        Addr target = hit->target;
        if (hit->cls == InstClass::Return) {
            Addr r = specRas.pop();
            target = (r == invalidAddr) ? pc_i + instBytes : r;
        }
        if (isCall(hit->cls))
            specRas.push(pc_i + instBytes);
        blk.numInsts = i + 1;
        blk.endsInCF = true;
        blk.termCls = hit->cls;
        blk.predTaken = true;
        blk.predTarget = target;
        break;
    }

    if (!blk.endsInCF) {
        blk.numInsts = cfg.maxBlockInsts;
        stSeqBlocks.inc();
    } else {
        stBtbBlocks.inc();
    }
    blk.nextFetchPc = blk.endsInCF && blk.predTaken
        ? blk.predTarget
        : blk.startPc + Addr(blk.numInsts) * instBytes;
    specPc = blk.nextFetchPc;
    return blk;
}

void
Bpu::verify(FetchBlock &blk)
{
    blk.firstSeq = nextSeq;
    blk.validLen = blk.numInsts;

    for (unsigned i = 0; i < blk.numInsts; ++i) {
        const TraceInstr &actual = trace.at(nextSeq + i);

        // Architectural (correct-path) state advances with the truth.
        if (isControl(actual.cls))
            stCfSeen.inc();
        if (actual.cls == InstClass::CondBr) {
            dirPred->update(actual.pc, archHist, actual.taken);
            archHist = shiftHistory(archHist, actual.taken);
            stCondSeen.inc();
        }
        if (isCall(actual.cls))
            archRas.push(actual.pc + instBytes);
        if (actual.cls == InstClass::Return)
            archRas.pop();

        // Structure training: taken control flow allocates.
        if (isControl(actual.cls) && actual.taken) {
            if (cfg.blockBased) {
                ftb_->insert(blk.startPc, i + 1, actual.cls,
                             actual.target);
            } else {
                btb_->insert(actual.pc, actual.cls, actual.target);
            }
        }

        Addr pred_next;
        if (i + 1 < blk.numInsts) {
            pred_next = blk.pcOf(i + 1);
        } else if (blk.endsInCF && blk.predTaken) {
            pred_next = blk.predTarget;
        } else {
            pred_next = blk.endPc();
        }

        Addr actual_next = actual.nextPc();
        if (pred_next == actual_next)
            continue;

        // Divergence: everything younger than instruction i is on the
        // wrong path, including the tail of this block.
        blk.diverges = true;
        blk.culpritIdx = i;
        blk.validLen = i + 1;
        blk.culpritCls = actual.cls;
        blk.decodeFixable = actual.cls == InstClass::Jump ||
            actual.cls == InstClass::Call;
        divergeSeq = nextSeq + i;
        resumePc = actual_next;
        nextSeq += i + 1;
        correctPath = false;

        stDivergences.inc();
        stDivergeByClass[static_cast<int>(actual.cls)].inc();
        if (blk.decodeFixable)
            stDecodeFixable.inc();
        return;
    }

    nextSeq += blk.numInsts;

    // Decode-time repair: hardware discovers branches the FTB/BTB did
    // not know about when the block reaches decode, and fixes up the
    // speculative history and RAS. With immediate verification the
    // equivalent is catching the speculative state up to the
    // architectural state after every cleanly-verified block.
    specHist = archHist;
    specRas = archRas;
}

FetchBlock
Bpu::predictBlock()
{
    FetchBlock blk = cfg.blockBased ? formBlockFtb() : formBlockBtb();
    stBlocks.inc();
    if (correctPath) {
        verify(blk);
    } else {
        blk.wrongPath = true;
        blk.validLen = 0;
        stWrongPathBlocks.inc();
        stWrongPathInsts.inc(blk.numInsts);
    }
    return blk;
}

void
Bpu::redirect()
{
    panic_if(correctPath, "redirect with no pending divergence");
    correctPath = true;
    specPc = resumePc;
    specHist = archHist;
    specRas = archRas;
    stRedirects.inc();
}

std::uint64_t
Bpu::targetStructBits() const
{
    if (cfg.blockBased)
        return ftb_->storageBits();
    return btb_->storageBits();
}

} // namespace fdip
