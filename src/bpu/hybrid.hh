/**
 * @file hybrid.hh
 * McFarling combining predictor: gshare + bimodal with a PC-indexed
 * chooser table, the predictor class the MICRO-32 front-end used.
 */

#ifndef FDIP_BPU_HYBRID_HH
#define FDIP_BPU_HYBRID_HH

#include <memory>
#include <vector>

#include "common/sat_counter.hh"
#include "bpu/bimodal.hh"
#include "bpu/direction_predictor.hh"
#include "bpu/gshare.hh"

namespace fdip
{

class HybridPredictor : public DirectionPredictor
{
  public:
    explicit HybridPredictor(std::size_t gshare_entries = 16384,
                             unsigned history_bits = 12,
                             std::size_t bimodal_entries = 4096,
                             std::size_t chooser_entries = 4096);

    bool predict(Addr pc, std::uint64_t ghist) const override;
    void update(Addr pc, std::uint64_t ghist, bool taken) override;
    std::string name() const override { return "hybrid"; }
    std::uint64_t storageBits() const override;

  private:
    std::size_t chooserIndex(Addr pc) const;

    GsharePredictor gshare;
    BimodalPredictor bimodal;
    /** Chooser: high half selects gshare, low half bimodal. */
    std::vector<SatCounter> chooser;
};

} // namespace fdip

#endif // FDIP_BPU_HYBRID_HH
