/**
 * @file partitioned_btb.hh
 * EXTENSION (from the 2020 "FDIP Revisited" follow-up): one logical BTB
 * split into several physical BTBs that differ only in the width of the
 * target-offset field. A branch is allocated in the smallest partition
 * whose offset field can encode its target, cutting target-storage cost
 * dramatically because short offsets dominate.
 */

#ifndef FDIP_BPU_PARTITIONED_BTB_HH
#define FDIP_BPU_PARTITIONED_BTB_HH

#include <memory>
#include <vector>

#include "bpu/btb.hh"

namespace fdip
{

class PartitionedBtb : public BtbIface
{
  public:
    struct PartitionSpec
    {
        unsigned offsetBits;  ///< 0 = full-width target field
        unsigned sets;
        unsigned ways;
    };

    struct Config
    {
        std::vector<PartitionSpec> partitions;
        unsigned tagBits = 16;
        unsigned vaBits = 48;
    };

    explicit PartitionedBtb(const Config &config);

    /**
     * The 4-partition organization (8-, 13-, 23-bit and full-width
     * target fields), sized to fit within the storage of a
     * @p unified_entries basic-block-oriented BTB. Following the
     * methodology of the follow-up work, the per-partition entry
     * counts reflect the measured branch-offset distribution of this
     * repository's workload suite: short offsets dominate, so the
     * 8-bit partition gets 1.5x the unified entry count and the
     * longer-offset partitions get a quarter each.
     * @p unified_entries must make unified_entries/16 a power of two.
     */
    static Config makeDefaultConfig(unsigned unified_entries,
                                    unsigned tag_bits = 16);

    std::optional<BtbHit> lookup(Addr pc) override;
    void insert(Addr pc, InstClass cls, Addr target) override;
    void invalidate(Addr pc) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;

    unsigned numPartitions() const
    {
        return static_cast<unsigned>(parts.size());
    }

    const Btb &partition(unsigned i) const { return *parts.at(i); }
    unsigned numEntries() const;

  private:
    StatSet::Counter stLookups = stats.registerCounter("pbtb.lookups");
    StatSet::Counter stHits = stats.registerCounter("pbtb.hits");
    StatSet::Counter stMisses = stats.registerCounter("pbtb.misses");
    StatSet::Counter stInsertRejected =
        stats.registerCounter("pbtb.insert_rejected");
    /** Per-partition insert counters, filled in the constructor. */
    std::vector<StatSet::Counter> stInsertByPartition;

    /** Smallest partition index whose offset field fits the branch. */
    int partitionFor(Addr pc, InstClass cls, Addr target) const;

    Config cfg;
    std::vector<std::unique_ptr<Btb>> parts;
};

} // namespace fdip

#endif // FDIP_BPU_PARTITIONED_BTB_HH
