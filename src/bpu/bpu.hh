/**
 * @file bpu.hh
 * The branch prediction unit: the decoupled front-end's address
 * generation engine. Every cycle it can emit one fetch block (the unit
 * stored in the FTQ) by consulting its structures only — FTB or BTB,
 * direction predictor, and return address stack — exactly like the
 * hardware it models.
 *
 * Because the simulator is trace-driven, each block produced while the
 * BPU believes it is on the correct path is verified against the trace
 * on the spot. At the first diverging instruction the block is marked
 * with the culprit, and the BPU keeps generating blocks down its own
 * *predicted* (wrong) path; those blocks flow into the FTQ, get fetched
 * and even prefetched — modelling real wrong-path pollution — until the
 * simulator delivers the redirect and calls redirect().
 */

#ifndef FDIP_BPU_BPU_HH
#define FDIP_BPU_BPU_HH

#include <memory>

#include "common/stats.hh"
#include "common/types.hh"
#include "bpu/btb.hh"
#include "bpu/direction_predictor.hh"
#include "bpu/ftb.hh"
#include "bpu/ras.hh"
#include "trace/executor.hh"

namespace fdip
{

/** One predicted fetch block: the FTQ's payload. */
struct FetchBlock
{
    Addr startPc = invalidAddr;
    unsigned numInsts = 0;

    bool endsInCF = false;       ///< block terminates in a predicted CF
    InstClass termCls = InstClass::NonCF;
    bool predTaken = false;
    Addr predTarget = invalidAddr;
    Addr nextFetchPc = invalidAddr;

    /** True when the whole block was produced past a divergence. */
    bool wrongPath = false;
    /** Leading instructions that are on the correct path. */
    unsigned validLen = 0;
    /** Divergence happens after instruction culpritIdx of this block. */
    bool diverges = false;
    unsigned culpritIdx = 0;
    InstClass culpritCls = InstClass::NonCF;
    /** Culprit is a direct unconditional: fixable at decode. */
    bool decodeFixable = false;
    /** Sequence number of the first instruction (correct path only). */
    InstSeqNum firstSeq = 0;

    Addr
    pcOf(unsigned idx) const
    {
        return startPc + Addr(idx) * instBytes;
    }

    Addr
    endPc() const
    {
        return startPc + Addr(numInsts) * instBytes;
    }
};

/** Which direction predictor the BPU instantiates. */
enum class PredictorKind : std::uint8_t
{
    Bimodal,
    Gshare,
    Local2Level,
    Hybrid,
};

const char *predictorKindName(PredictorKind kind);

struct BpuConfig
{
    /** Block-based FTB front-end (the paper) vs conventional BTB. */
    bool blockBased = true;
    PredictorKind predictor = PredictorKind::Hybrid;
    unsigned maxBlockInsts = 8;
    unsigned rasDepth = 32;

    Ftb::Config ftb;
    Btb::Config btb;

    std::size_t gshareEntries = 16384;
    unsigned historyBits = 12;
    std::size_t bimodalEntries = 4096;
    std::size_t chooserEntries = 4096;
};

class Bpu
{
  public:
    /**
     * @param trace oracle correct-path stream
     * @param cfg structure geometry
     * @param custom_btb optional replacement target buffer (e.g. the
     *        partitioned BTB extension); only used when !blockBased
     */
    Bpu(TraceWindow &trace, const BpuConfig &cfg,
        std::unique_ptr<BtbIface> custom_btb = nullptr);

    /** Produce the next fetch block and advance the predicted path. */
    FetchBlock predictBlock();

    /**
     * Deliver the resolution of the pending divergence: resynchronize
     * to the correct path with architectural history and RAS.
     */
    void redirect();

    bool onCorrectPath() const { return correctPath; }

    /** Sequence number of the culprit of the pending divergence. */
    InstSeqNum divergenceSeq() const { return divergeSeq; }

    /** Next correct-path sequence number the BPU will verify. */
    InstSeqNum nextVerifySeq() const { return nextSeq; }

    /**
     * Quiescence protocol: the BPU is passive — it only produces a
     * block when the simulator asks it to (i.e. when the FTQ has
     * room), so it never schedules an event of its own.
     */
    Cycle nextEventCycle(Cycle now) const { return kNever; }

    DirectionPredictor &predictor() { return *dirPred; }
    Ftb *ftb() { return ftb_.get(); }
    BtbIface *btb() { return btb_.get(); }

    /** Storage in the target structure (FTB or BTB), in bits. */
    std::uint64_t targetStructBits() const;

    StatSet stats;

  private:
    StatSet::Counter stSeqBlocks = stats.registerCounter("bpu.seq_blocks");
    StatSet::Counter stFtbBlocks = stats.registerCounter("bpu.ftb_blocks");
    StatSet::Counter stBtbBlocks = stats.registerCounter("bpu.btb_blocks");
    StatSet::Counter stCfSeen = stats.registerCounter("bpu.cf_seen");
    StatSet::Counter stCondSeen = stats.registerCounter("bpu.cond_seen");
    StatSet::Counter stDivergences =
        stats.registerCounter("bpu.divergences");
    StatSet::Counter stDecodeFixable =
        stats.registerCounter("bpu.decode_fixable");
    StatSet::Counter stBlocks = stats.registerCounter("bpu.blocks");
    StatSet::Counter stWrongPathBlocks =
        stats.registerCounter("bpu.wrong_path_blocks");
    StatSet::Counter stWrongPathInsts =
        stats.registerCounter("bpu.wrong_path_insts");
    StatSet::Counter stRedirects = stats.registerCounter("bpu.redirects");
    /** Per-InstClass divergence counters, filled in the constructor. */
    StatSet::Counter stDivergeByClass[
        static_cast<int>(InstClass::IndCall) + 1];

    FetchBlock formBlockFtb();
    FetchBlock formBlockBtb();
    void verify(FetchBlock &blk);

    TraceWindow &trace;
    BpuConfig cfg;
    std::unique_ptr<DirectionPredictor> dirPred;
    std::unique_ptr<Ftb> ftb_;
    std::unique_ptr<BtbIface> btb_;
    ReturnAddressStack specRas;
    ReturnAddressStack archRas;
    std::uint64_t specHist = 0;
    std::uint64_t archHist = 0;

    Addr specPc = invalidAddr;
    bool correctPath = true;
    InstSeqNum nextSeq = 0;
    InstSeqNum divergeSeq = 0;
    Addr resumePc = invalidAddr;
};

} // namespace fdip

#endif // FDIP_BPU_BPU_HH
