#include "bpu/ras.hh"

#include "common/logging.hh"

namespace fdip
{

ReturnAddressStack::ReturnAddressStack(unsigned d)
    : stack(d, invalidAddr)
{
    panic_if(d == 0, "RAS depth must be nonzero");
}

void
ReturnAddressStack::push(Addr return_pc)
{
    stack[tos] = return_pc;
    tos = (tos + 1) % stack.size();
    if (count < stack.size())
        ++count;
}

Addr
ReturnAddressStack::pop()
{
    if (count == 0)
        return invalidAddr;
    tos = (tos + stack.size() - 1) % stack.size();
    --count;
    return stack[tos];
}

Addr
ReturnAddressStack::top() const
{
    if (count == 0)
        return invalidAddr;
    return stack[(tos + stack.size() - 1) % stack.size()];
}

void
ReturnAddressStack::clear()
{
    tos = 0;
    count = 0;
}

std::uint64_t
ReturnAddressStack::storageBits() const
{
    return static_cast<std::uint64_t>(stack.size()) * 48;
}

} // namespace fdip
