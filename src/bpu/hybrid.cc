#include "bpu/hybrid.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace fdip
{

HybridPredictor::HybridPredictor(std::size_t gshare_entries,
                                 unsigned history_bits,
                                 std::size_t bimodal_entries,
                                 std::size_t chooser_entries)
    : gshare(gshare_entries, history_bits),
      bimodal(bimodal_entries),
      chooser(chooser_entries, SatCounter(2, 2))
{
    fatal_if(!isPowerOf2(chooser_entries), "chooser size must be 2^n");
}

std::size_t
HybridPredictor::chooserIndex(Addr pc) const
{
    return (pc / instBytes) & (chooser.size() - 1);
}

bool
HybridPredictor::predict(Addr pc, std::uint64_t ghist) const
{
    bool use_gshare = chooser[chooserIndex(pc)].taken();
    return use_gshare ? gshare.predict(pc, ghist)
                      : bimodal.predict(pc, ghist);
}

void
HybridPredictor::update(Addr pc, std::uint64_t ghist, bool taken)
{
    bool g = gshare.predict(pc, ghist);
    bool b = bimodal.predict(pc, ghist);
    // Train the chooser toward whichever component was right, but only
    // when they disagree (McFarling's rule).
    if (g != b)
        chooser[chooserIndex(pc)].update(g == taken);
    gshare.update(pc, ghist, taken);
    bimodal.update(pc, ghist, taken);
}

std::uint64_t
HybridPredictor::storageBits() const
{
    return gshare.storageBits() + bimodal.storageBits() +
        chooser.size() * 2;
}

} // namespace fdip
