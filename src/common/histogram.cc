#include "common/histogram.hh"

#include <algorithm>

#include "common/logging.hh"

namespace fdip
{

void
Histogram::sample(std::uint64_t value, std::uint64_t weight)
{
    std::uint64_t idx = std::min<std::uint64_t>(value, buckets.size() - 1);
    buckets[idx] += weight;
    total += weight;
    weightedSum += idx * weight;
}

std::uint64_t
Histogram::bucket(std::uint64_t value) const
{
    panic_if(value >= buckets.size(), "Histogram bucket out of range");
    return buckets[value];
}

double
Histogram::mean() const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(weightedSum) / static_cast<double>(total);
}

std::uint64_t
Histogram::percentile(double frac) const
{
    if (total == 0)
        return 0;
    frac = std::clamp(frac, 0.0, 1.0);
    std::uint64_t threshold =
        static_cast<std::uint64_t>(frac * static_cast<double>(total));
    std::uint64_t running = 0;
    for (std::size_t v = 0; v < buckets.size(); ++v) {
        running += buckets[v];
        if (running >= threshold && running > 0)
            return v;
    }
    return buckets.size() - 1;
}

double
Histogram::fraction(std::uint64_t value) const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(bucket(value)) /
        static_cast<double>(total);
}

double
Histogram::fractionAtLeast(std::uint64_t value) const
{
    if (total == 0)
        return 0.0;
    std::uint64_t sum = 0;
    for (std::size_t v = value; v < buckets.size(); ++v)
        sum += buckets[v];
    return static_cast<double>(sum) / static_cast<double>(total);
}

void
Histogram::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    total = 0;
    weightedSum = 0;
}

std::string
Histogram::render(const std::string &label) const
{
    std::string out = label + " (n=" + std::to_string(total) + ", mean=" +
        strprintf("%.2f", mean()) + ")\n";
    for (std::size_t v = 0; v < buckets.size(); ++v) {
        if (buckets[v] == 0)
            continue;
        double frac = fraction(v);
        int bars = static_cast<int>(frac * 50.0 + 0.5);
        out += strprintf("  %4zu | %-50s %6.2f%% (%llu)\n", v,
                         std::string(static_cast<size_t>(bars), '#').c_str(),
                         frac * 100.0,
                         static_cast<unsigned long long>(buckets[v]));
    }
    return out;
}

} // namespace fdip
