/**
 * @file stats.hh
 * Lightweight named-statistics registry. Components register counters
 * into a StatSet; reports walk the registry. Formulas (rates, ratios)
 * are computed at dump time from the raw counters.
 */

#ifndef FDIP_COMMON_STATS_HH
#define FDIP_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>

namespace fdip
{

class StatSet
{
  public:
    /** Add @p delta to the named counter (creating it at zero). */
    void inc(const std::string &name, std::uint64_t delta = 1);

    /** Overwrite a scalar value (for gauges / derived values). */
    void set(const std::string &name, double value);

    /** Raw counter value (0 if absent). */
    std::uint64_t counter(const std::string &name) const;

    /** Scalar value: counters and gauges alike (0.0 if absent). */
    double value(const std::string &name) const;

    bool has(const std::string &name) const;

    /** counter(a) / counter(b), 0 when the denominator is 0. */
    double ratio(const std::string &num, const std::string &den) const;

    /** Merge all counters/gauges from @p other into this set. */
    void merge(const StatSet &other, const std::string &prefix = "");

    /** Element-wise a - b (for warmup-window deltas). */
    static StatSet subtract(const StatSet &a, const StatSet &b);

    void reset();

    /** All entries, sorted by name, formatted one per line. */
    std::string dump() const;

    const std::map<std::string, double> &entries() const { return values; }

  private:
    std::map<std::string, double> values;
};

} // namespace fdip

#endif // FDIP_COMMON_STATS_HH
