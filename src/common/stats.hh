/**
 * @file stats.hh
 * Lightweight named-statistics registry. Components register counters
 * into a StatSet; reports walk the registry. Formulas (rates, ratios)
 * are computed at dump time from the raw counters.
 *
 * Hot paths should resolve a name once via registerCounter() and bump
 * the returned Counter handle: inc() is a single array add with no
 * string construction and no map lookup. Handle increments are folded
 * into the string-keyed registry lazily, the first time any reporting
 * API (value, merge, dump, ...) needs them, so the string-keyed view
 * stays byte-compatible with pre-handle behaviour.
 */

#ifndef FDIP_COMMON_STATS_HH
#define FDIP_COMMON_STATS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

namespace fdip
{

class StatSet
{
  public:
    /**
     * Cheap pre-resolved handle to one counter. Obtained from
     * registerCounter(); stays valid for the owning StatSet's lifetime
     * (including across reset()). A handle is bound to the StatSet it
     * was registered with — copies of that StatSet get a flattened,
     * handle-free view.
     */
    class Counter
    {
      public:
        Counter() = default;

        /** Add @p delta; one add on contiguous storage, no lookup. */
        void
        inc(std::uint64_t delta = 1)
        {
            slot->pending += static_cast<double>(delta);
            slot->touched = true;
        }

        explicit operator bool() const { return slot != nullptr; }

      private:
        friend class StatSet;

        struct Slot
        {
            std::string name;
            double pending = 0.0;
            bool touched = false;
        };

        explicit Counter(Slot *s) : slot(s) {}

        Slot *slot = nullptr;
    };

    StatSet() = default;

    /** Copies flatten pending handle increments into the string view;
     *  the copy carries no registrations (its handles are the
     *  original's, still bound to the original). */
    StatSet(const StatSet &other);
    StatSet &operator=(const StatSet &other);

    /**
     * Resolve @p name once and return a handle for hot-path inc().
     * Registering the same name twice returns a handle to the same
     * counter. A registered counter that is never incremented does not
     * appear in entries()/dump(), matching lazy string-API behaviour.
     */
    Counter registerCounter(const std::string &name);

    /** Add @p delta to the named counter (creating it at zero). */
    void inc(const std::string &name, std::uint64_t delta = 1);

    /** Overwrite a scalar value (for gauges / derived values). */
    void set(const std::string &name, double value);

    /** Raw counter value (0 if absent). */
    std::uint64_t counter(const std::string &name) const;

    /** Scalar value: counters and gauges alike (0.0 if absent). */
    double value(const std::string &name) const;

    bool has(const std::string &name) const;

    /** counter(a) / counter(b), 0 when the denominator is 0. */
    double ratio(const std::string &num, const std::string &den) const;

    /** Merge all counters/gauges from @p other into this set. */
    void merge(const StatSet &other, const std::string &prefix = "");

    /** Element-wise a - b (for warmup-window deltas). */
    static StatSet subtract(const StatSet &a, const StatSet &b);

    /** Zero everything. Registered handles stay valid (and empty). */
    void reset();

    /** All entries, sorted by name, formatted one per line. */
    std::string dump() const;

    const std::map<std::string, double> &entries() const;

  private:
    /** Fold pending handle increments into the string-keyed view. */
    void flush() const;

    mutable std::map<std::string, double> values;
    /** Handle storage; deque keeps slot addresses stable. */
    mutable std::deque<Counter::Slot> slots;
    std::map<std::string, std::size_t> slotIndex;
};

} // namespace fdip

#endif // FDIP_COMMON_STATS_HH
