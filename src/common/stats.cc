#include "common/stats.hh"

#include "common/logging.hh"

namespace fdip
{

void
StatSet::flush() const
{
    for (auto &slot : slots) {
        if (!slot.touched)
            continue;
        values[slot.name] += slot.pending;
        slot.pending = 0.0;
    }
}

StatSet::StatSet(const StatSet &other)
{
    other.flush();
    values = other.values;
}

StatSet &
StatSet::operator=(const StatSet &other)
{
    if (this == &other)
        return *this;
    other.flush();
    values = other.values;
    // Keep this set's registrations alive (zeroed) so Counter handles
    // handed out before the assignment never dangle.
    for (auto &slot : slots) {
        slot.pending = 0.0;
        slot.touched = false;
    }
    return *this;
}

StatSet::Counter
StatSet::registerCounter(const std::string &name)
{
    auto [it, inserted] = slotIndex.emplace(name, slots.size());
    if (inserted) {
        slots.emplace_back();
        slots.back().name = name;
    }
    return Counter(&slots[it->second]);
}

void
StatSet::inc(const std::string &name, std::uint64_t delta)
{
    values[name] += static_cast<double>(delta);
}

void
StatSet::set(const std::string &name, double value)
{
    flush();
    values[name] = value;
}

std::uint64_t
StatSet::counter(const std::string &name) const
{
    flush();
    auto it = values.find(name);
    if (it == values.end())
        return 0;
    return static_cast<std::uint64_t>(it->second);
}

double
StatSet::value(const std::string &name) const
{
    flush();
    auto it = values.find(name);
    return it == values.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    flush();
    return values.count(name) != 0;
}

double
StatSet::ratio(const std::string &num, const std::string &den) const
{
    double d = value(den);
    if (d == 0.0)
        return 0.0;
    return value(num) / d;
}

void
StatSet::merge(const StatSet &other, const std::string &prefix)
{
    other.flush();
    for (const auto &[name, val] : other.values)
        values[prefix + name] += val;
}

StatSet
StatSet::subtract(const StatSet &a, const StatSet &b)
{
    a.flush();
    b.flush();
    StatSet out;
    out.values = a.values;
    for (const auto &[name, val] : b.values)
        out.values[name] -= val;
    return out;
}

void
StatSet::reset()
{
    values.clear();
    for (auto &slot : slots) {
        slot.pending = 0.0;
        slot.touched = false;
    }
}

const std::map<std::string, double> &
StatSet::entries() const
{
    flush();
    return values;
}

std::string
StatSet::dump() const
{
    flush();
    std::string out;
    for (const auto &[name, val] : values) {
        double rounded = static_cast<double>(
            static_cast<std::uint64_t>(val));
        if (rounded == val) {
            out += strprintf("%-48s %20llu\n", name.c_str(),
                             static_cast<unsigned long long>(val));
        } else {
            out += strprintf("%-48s %20.6f\n", name.c_str(), val);
        }
    }
    return out;
}

} // namespace fdip
