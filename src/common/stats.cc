#include "common/stats.hh"

#include "common/logging.hh"

namespace fdip
{

void
StatSet::inc(const std::string &name, std::uint64_t delta)
{
    values[name] += static_cast<double>(delta);
}

void
StatSet::set(const std::string &name, double value)
{
    values[name] = value;
}

std::uint64_t
StatSet::counter(const std::string &name) const
{
    auto it = values.find(name);
    if (it == values.end())
        return 0;
    return static_cast<std::uint64_t>(it->second);
}

double
StatSet::value(const std::string &name) const
{
    auto it = values.find(name);
    return it == values.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return values.count(name) != 0;
}

double
StatSet::ratio(const std::string &num, const std::string &den) const
{
    double d = value(den);
    if (d == 0.0)
        return 0.0;
    return value(num) / d;
}

void
StatSet::merge(const StatSet &other, const std::string &prefix)
{
    for (const auto &[name, val] : other.values)
        values[prefix + name] += val;
}

StatSet
StatSet::subtract(const StatSet &a, const StatSet &b)
{
    StatSet out;
    out.values = a.values;
    for (const auto &[name, val] : b.values)
        out.values[name] -= val;
    return out;
}

void
StatSet::reset()
{
    values.clear();
}

std::string
StatSet::dump() const
{
    std::string out;
    for (const auto &[name, val] : values) {
        double rounded = static_cast<double>(
            static_cast<std::uint64_t>(val));
        if (rounded == val) {
            out += strprintf("%-48s %20llu\n", name.c_str(),
                             static_cast<unsigned long long>(val));
        } else {
            out += strprintf("%-48s %20.6f\n", name.c_str(), val);
        }
    }
    return out;
}

} // namespace fdip
