/**
 * @file error.hh
 * Recoverable simulation errors and the fatal-mode switch.
 *
 * The failure model (docs/ROBUSTNESS.md) distinguishes three tiers:
 *  - panic()   — simulator invariant violated; always aborts.
 *  - fatal()   — the *simulation* cannot continue (bad config, wedged
 *                run). By default it exits the process; under
 *                FDIP_FATAL=throw it raises SimError instead, so a
 *                sweep harness can isolate the failing grid point and
 *                keep the rest of the sweep alive.
 *  - SimTimeout — a watchdog fired (FDIP_SIM_TIMEOUT_S wall deadline,
 *                SimConfig::maxCycles ceiling, or the wedge cycle
 *                cap). A SimError subtype so harnesses can render
 *                TIMEOUT distinctly from FAIL.
 */

#ifndef FDIP_COMMON_ERROR_HH
#define FDIP_COMMON_ERROR_HH

#include <stdexcept>
#include <string>

namespace fdip
{

/** A simulation-scoped failure: one grid point is lost, the process
 *  (and any sweep it is running) can continue. */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/** A watchdog expired: the simulation was hung or over its cycle
 *  budget, not wrong. Distinguishable so tables can say TIMEOUT. */
class SimTimeout : public SimError
{
  public:
    explicit SimTimeout(const std::string &what_arg)
        : SimError(what_arg)
    {}
};

/**
 * What fatal()/fatal_if() and the watchdogs do on failure. Abort (the
 * default) preserves the historical exit(1) so tests and one-shot
 * tools fail loudly; Throw raises SimError/SimTimeout for harnesses
 * that isolate per-point failures (Runner::runPending()).
 * Settable via the FDIP_FATAL environment variable ("abort"/"throw")
 * or setFatalMode().
 */
enum class FatalMode
{
    Abort = 0,
    Throw = 1,
};

/** Current mode (FDIP_FATAL is read once, on first use). */
FatalMode fatalMode();

/** Override the mode at runtime (tests; wins over FDIP_FATAL). */
void setFatalMode(FatalMode mode);

/**
 * Watchdog failure: throws SimTimeout in FatalMode::Throw, otherwise
 * reports like fatal() and exits. Used for the per-simulation wall
 * deadline, the maxCycles ceiling, and the wedge cycle cap.
 */
[[noreturn]] void simTimeoutImpl(const char *file, int line,
                                 const char *fmt, ...);

/**
 * Metric sentinels for isolated point failures. Both are quiet NaNs,
 * so *any* arithmetic touching a faulted point's metrics (a hand-
 * computed speedup ratio, a mean) degrades to NaN and renders FAIL —
 * a -infinity sentinel would not: finite/-inf is a finite -0, which
 * silently poisons derived columns. The timed-out sentinel carries a
 * recognizable mantissa payload so cells holding the *stored* value
 * render TIMEOUT; values derived from it are NaN too, rendering
 * TIMEOUT or FAIL depending on whether the hardware propagates the
 * payload — never a number.
 */
double failedSentinel();
double timedOutSentinel();
/** True iff @p v is bit-exactly the timed-out sentinel. */
bool isTimedOutSentinel(double v);

} // namespace fdip

#define sim_timeout(...)                                                     \
    ::fdip::simTimeoutImpl(__FILE__, __LINE__, __VA_ARGS__)

#endif // FDIP_COMMON_ERROR_HH
