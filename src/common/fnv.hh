/**
 * @file fnv.hh
 * Shared 64-bit FNV-1a hashing. Used by SimConfig::fingerprint()
 * (sim/config.cc) and the result-cache entry self-check
 * (sim/result_cache.cc); keeping one implementation means the two
 * cache-validity mechanisms cannot drift apart.
 */

#ifndef FDIP_COMMON_FNV_HH
#define FDIP_COMMON_FNV_HH

#include <cstdint>
#include <cstring>
#include <string>

namespace fdip
{

/** Incremental FNV-1a accumulator with typed feeders. */
struct Fnv1a
{
    std::uint64_t h = 14695981039346656037ull;

    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= p[i];
            h *= 1099511628211ull;
        }
    }

    void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
    void b(bool v) { u64(v ? 1 : 0); }

    void
    d(double v)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    /** Length-prefixed, so "ab"+"c" cannot alias "a"+"bc". */
    void
    s(const std::string &v)
    {
        u64(v.size());
        bytes(v.data(), v.size());
    }
};

/** One-shot hash of a string's raw bytes. */
inline std::uint64_t
fnv1aHash(const std::string &s)
{
    Fnv1a f;
    f.bytes(s.data(), s.size());
    return f.h;
}

} // namespace fdip

#endif // FDIP_COMMON_FNV_HH
