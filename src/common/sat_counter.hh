/**
 * @file sat_counter.hh
 * An n-bit saturating up/down counter, the basic building block of
 * direction predictors.
 */

#ifndef FDIP_COMMON_SAT_COUNTER_HH
#define FDIP_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "common/logging.hh"

namespace fdip
{

class SatCounter
{
  public:
    /**
     * @param bits counter width in bits (1..8)
     * @param initial initial counter value
     */
    explicit SatCounter(unsigned bits = 2, std::uint8_t initial = 0)
        : maxVal(static_cast<std::uint8_t>((1u << bits) - 1)),
          value_(initial)
    {
        panic_if(bits == 0 || bits > 8, "SatCounter width %u", bits);
        panic_if(initial > maxVal, "SatCounter initial value too large");
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (value_ < maxVal)
            ++value_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** Train toward @p taken. */
    void
    update(bool taken)
    {
        taken ? increment() : decrement();
    }

    /** MSB set: predict taken. */
    bool
    taken() const
    {
        return value_ > maxVal / 2;
    }

    /** True when the counter is saturated in either direction. */
    bool
    saturated() const
    {
        return value_ == 0 || value_ == maxVal;
    }

    std::uint8_t value() const { return value_; }
    std::uint8_t max() const { return maxVal; }

    void
    set(std::uint8_t v)
    {
        panic_if(v > maxVal, "SatCounter::set out of range");
        value_ = v;
    }

  private:
    std::uint8_t maxVal;
    std::uint8_t value_;
};

} // namespace fdip

#endif // FDIP_COMMON_SAT_COUNTER_HH
