/**
 * @file intmath.hh
 * Small integer-math helpers used throughout the simulator.
 */

#ifndef FDIP_COMMON_INTMATH_HH
#define FDIP_COMMON_INTMATH_HH

#include <cstdint>

#include "common/logging.hh"

namespace fdip
{

/** True if @p n is a (nonzero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** Floor of log2(n); n must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t n)
{
    unsigned p = 0;
    while (n >>= 1)
        ++p;
    return p;
}

/** Ceiling of log2(n); n must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t n)
{
    return isPowerOf2(n) ? floorLog2(n) : floorLog2(n) + 1;
}

/** Ceiling of a/b for positive integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p addr down to a multiple of @p align (align power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t addr, std::uint64_t align)
{
    return addr & ~(align - 1);
}

/** Round @p addr up to a multiple of @p align (align power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t addr, std::uint64_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

/**
 * Number of bits needed to encode the signed displacement @p offset
 * (magnitude only; the sign is tracked by a separate direction bit, as in
 * the partitioned-BTB storage analysis).
 */
constexpr unsigned
bitsForOffset(std::int64_t offset)
{
    std::uint64_t mag = offset < 0
        ? static_cast<std::uint64_t>(-offset)
        : static_cast<std::uint64_t>(offset);
    if (mag == 0)
        return 1;
    return floorLog2(mag) + 1;
}

/** Fold @p value into @p width bits by XOR-ing width-bit chunks. */
constexpr std::uint64_t
foldXor(std::uint64_t value, unsigned width)
{
    if (width == 0 || width >= 64)
        return value;
    std::uint64_t mask = (std::uint64_t(1) << width) - 1;
    std::uint64_t folded = 0;
    while (value) {
        folded ^= value & mask;
        value >>= width;
    }
    return folded;
}

} // namespace fdip

#endif // FDIP_COMMON_INTMATH_HH
