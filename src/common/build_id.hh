/**
 * @file build_id.hh
 * The simulator's derived build identity.
 *
 * A 64-bit hash over every behaviour-relevant source file (src/ minus
 * src/obs/), computed at build time by cmake/gen_build_identity.cmake
 * and baked into the binary. The ResultCache writes it into every
 * entry: a cache produced by a semantically different build is stale
 * and auto-invalidates, with no manual kFormatVersion bump. Builds
 * outside CMake (no generated header) get identity 0, which still
 * round-trips consistently within one build.
 */

#ifndef FDIP_COMMON_BUILD_ID_HH
#define FDIP_COMMON_BUILD_ID_HH

#include <cstdint>

namespace fdip
{

/** This binary's build identity (or a test override). */
std::uint64_t buildIdentity();

/** Override the identity (tests pin cross-build invalidation with
 *  this; pass the value from buildIdentity() to restore). */
void setBuildIdentity(std::uint64_t id);

} // namespace fdip

#endif // FDIP_COMMON_BUILD_ID_HH
