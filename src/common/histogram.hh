/**
 * @file histogram.hh
 * Integer-valued histogram with summary statistics, used for FTQ
 * occupancy distributions, offset-length distributions, and latency
 * profiles.
 */

#ifndef FDIP_COMMON_HISTOGRAM_HH
#define FDIP_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fdip
{

class Histogram
{
  public:
    /**
     * @param max_value samples above this are clamped into the final
     *                  (overflow) bucket
     */
    explicit Histogram(std::uint64_t max_value)
        : buckets(max_value + 1, 0)
    {}

    /** Record one sample of @p value. */
    void sample(std::uint64_t value, std::uint64_t weight = 1);

    std::uint64_t count() const { return total; }
    std::uint64_t bucket(std::uint64_t value) const;
    std::size_t numBuckets() const { return buckets.size(); }

    /** Arithmetic mean of all samples. */
    double mean() const;

    /** Sum of (bucket index x weight) over all samples — with count(),
     *  enough to delta a running mean between two snapshots. */
    std::uint64_t weightedTotal() const { return weightedSum; }

    /** Smallest value v such that at least frac of samples are <= v. */
    std::uint64_t percentile(double frac) const;

    /** Fraction of samples equal to @p value. */
    double fraction(std::uint64_t value) const;

    /** Fraction of samples >= @p value. */
    double fractionAtLeast(std::uint64_t value) const;

    void reset();

    /** Multi-line ASCII rendering (one row per non-empty bucket). */
    std::string render(const std::string &label) const;

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t total = 0;
    std::uint64_t weightedSum = 0;
};

} // namespace fdip

#endif // FDIP_COMMON_HISTOGRAM_HH
