/**
 * @file env.hh
 * Shared, validated environment-variable parsing for the FDIP_* knobs.
 *
 * Every numeric knob goes through envUint() so a malformed value (a
 * typo, a stray unit suffix, a negative number) is surfaced as one
 * clear warn() naming the variable, the rejected text, and the
 * documented fallback — never silently accepted the way atoi-style
 * parsing would. See docs/ENVVARS.md for the knob catalog.
 */

#ifndef FDIP_COMMON_ENV_HH
#define FDIP_COMMON_ENV_HH

#include <cstdint>

namespace fdip
{

/**
 * Parse the environment variable @p name as an unsigned integer.
 * Unset or empty returns @p fallback silently; a value that is not a
 * full non-negative decimal integer, or is below @p min_value, is
 * rejected with a warn() that states the fallback being used.
 */
std::uint64_t envUint(const char *name, std::uint64_t fallback,
                      std::uint64_t min_value = 0);

} // namespace fdip

#endif // FDIP_COMMON_ENV_HH
