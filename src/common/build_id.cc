#include "common/build_id.hh"

#include <atomic>

#if __has_include("common/build_identity.hh")
#include "common/build_identity.hh"
#endif
#ifndef FDIP_BUILD_IDENTITY
#define FDIP_BUILD_IDENTITY 0x0ull
#endif

namespace fdip
{

namespace
{

std::atomic<std::uint64_t> currentIdentity{FDIP_BUILD_IDENTITY};

} // namespace

std::uint64_t
buildIdentity()
{
    return currentIdentity.load(std::memory_order_relaxed);
}

void
setBuildIdentity(std::uint64_t id)
{
    currentIdentity.store(id, std::memory_order_relaxed);
}

} // namespace fdip
