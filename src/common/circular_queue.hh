/**
 * @file circular_queue.hh
 * Fixed-capacity FIFO ring buffer with random access from the head.
 * Used for the FTQ, the PIQ, and the backend instruction queue, all of
 * which are hardware structures with a hard capacity.
 */

#ifndef FDIP_COMMON_CIRCULAR_QUEUE_HH
#define FDIP_COMMON_CIRCULAR_QUEUE_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"

namespace fdip
{

template <typename T>
class CircularQueue
{
  public:
    explicit CircularQueue(std::size_t capacity)
        : buf(capacity), cap(capacity)
    {
        panic_if(capacity == 0, "CircularQueue capacity must be nonzero");
    }

    bool empty() const { return count == 0; }
    bool full() const { return count == cap; }
    std::size_t size() const { return count; }
    std::size_t capacity() const { return cap; }
    std::size_t freeSlots() const { return cap - count; }

    /** Append to the tail; the queue must not be full. */
    void
    push(T value)
    {
        panic_if(full(), "push to full CircularQueue");
        buf[(head + count) % cap] = std::move(value);
        ++count;
    }

    /** Remove the head element; the queue must not be empty. */
    void
    pop()
    {
        panic_if(empty(), "pop from empty CircularQueue");
        head = (head + 1) % cap;
        --count;
    }

    /** Head element (oldest). */
    T &
    front()
    {
        panic_if(empty(), "front of empty CircularQueue");
        return buf[head];
    }

    const T &
    front() const
    {
        panic_if(empty(), "front of empty CircularQueue");
        return buf[head];
    }

    /** Tail element (youngest). */
    T &
    back()
    {
        panic_if(empty(), "back of empty CircularQueue");
        return buf[(head + count - 1) % cap];
    }

    /** Random access: at(0) is the head. */
    T &
    at(std::size_t i)
    {
        panic_if(i >= count, "CircularQueue::at(%zu) size %zu", i, count);
        return buf[(head + i) % cap];
    }

    const T &
    at(std::size_t i) const
    {
        panic_if(i >= count, "CircularQueue::at(%zu) size %zu", i, count);
        return buf[(head + i) % cap];
    }

    /** Drop every element at index >= @p from (squash younger entries). */
    void
    truncate(std::size_t from)
    {
        panic_if(from > count, "CircularQueue::truncate past end");
        count = from;
    }

    void
    clear()
    {
        head = 0;
        count = 0;
    }

  private:
    std::vector<T> buf;
    std::size_t cap;
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace fdip

#endif // FDIP_COMMON_CIRCULAR_QUEUE_HH
