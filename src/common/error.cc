#include "common/error.hh"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace fdip
{

namespace
{

int
modeFromEnv()
{
    const char *env = std::getenv("FDIP_FATAL");
    if (env == nullptr || env[0] == '\0')
        return static_cast<int>(FatalMode::Abort);
    if (std::strcmp(env, "abort") == 0)
        return static_cast<int>(FatalMode::Abort);
    if (std::strcmp(env, "throw") == 0)
        return static_cast<int>(FatalMode::Throw);
    warn("unknown FDIP_FATAL value '%s' (want abort/throw); "
         "defaulting to abort",
         env);
    return static_cast<int>(FatalMode::Abort);
}

/** -1: not yet initialized from FDIP_FATAL. */
std::atomic<int> currentMode{-1};

} // namespace

FatalMode
fatalMode()
{
    int mode = currentMode.load(std::memory_order_relaxed);
    if (mode < 0) {
        mode = modeFromEnv();
        currentMode.store(mode, std::memory_order_relaxed);
    }
    return static_cast<FatalMode>(mode);
}

void
setFatalMode(FatalMode mode)
{
    currentMode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

void
simTimeoutImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    if (fatalMode() == FatalMode::Throw)
        throw SimTimeout(msg + strprintf(" [%s:%d]", file, line));
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::exit(1);
}

namespace
{

/** Quiet NaN (exponent all-ones, quiet bit set) whose mantissa spells
 *  "TOUT" — bit-exact tag for the timed-out sentinel. */
constexpr std::uint64_t kTimedOutBits = 0x7ff8'0000'544f'5554ull;

} // namespace

double
failedSentinel()
{
    return std::numeric_limits<double>::quiet_NaN();
}

double
timedOutSentinel()
{
    return std::bit_cast<double>(kTimedOutBits);
}

bool
isTimedOutSentinel(double v)
{
    return std::isnan(v) && std::bit_cast<std::uint64_t>(v) == kTimedOutBits;
}

} // namespace fdip
