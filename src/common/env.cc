#include "common/env.hh"

#include <cerrno>
#include <cstdlib>

#include "common/logging.hh"

namespace fdip
{

std::uint64_t
envUint(const char *name, std::uint64_t fallback,
        std::uint64_t min_value)
{
    const char *env = std::getenv(name);
    if (env == nullptr || env[0] == '\0')
        return fallback;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    // strtoull skips leading whitespace and accepts '-'/'+' signs
    // ('-1' wraps to a huge value); require the text to start with a
    // digit so FDIP_RETRIES=-1 cannot mean "retry forever".
    bool starts_with_digit = env[0] >= '0' && env[0] <= '9';
    if (!starts_with_digit || errno != 0 || end == env || *end != '\0') {
        warn("ignoring invalid %s value '%s' (want a non-negative "
             "integer); using %llu",
             name, env, static_cast<unsigned long long>(fallback));
        return fallback;
    }
    if (v < min_value) {
        warn("ignoring out-of-range %s value '%s' (minimum %llu); "
             "using %llu",
             name, env, static_cast<unsigned long long>(min_value),
             static_cast<unsigned long long>(fallback));
        return fallback;
    }
    return v;
}

} // namespace fdip
