/**
 * @file types.hh
 * Fundamental scalar types shared by every simulator component.
 */

#ifndef FDIP_COMMON_TYPES_HH
#define FDIP_COMMON_TYPES_HH

#include <cstdint>

namespace fdip
{

/** Byte address in the simulated 48-bit virtual address space. */
using Addr = std::uint64_t;

/** Simulation time in front-end clock cycles. */
using Cycle = std::uint64_t;

/** Monotone per-trace instruction sequence number. */
using InstSeqNum = std::uint64_t;

/** Architectural instruction size: fixed 4 bytes (RISC, word aligned). */
constexpr unsigned instBytes = 4;

/** An address value that no valid instruction can have. */
constexpr Addr invalidAddr = ~Addr(0);

/** A cycle value meaning "never" / "not scheduled". */
constexpr Cycle neverCycle = ~Cycle(0);

/**
 * Quiescence-protocol alias for @c neverCycle: a component whose
 * nextEventCycle() returns @c kNever cannot change state on its own
 * and only reacts to other components' events.
 */
constexpr Cycle kNever = neverCycle;

} // namespace fdip

#endif // FDIP_COMMON_TYPES_HH
