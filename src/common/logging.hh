/**
 * @file logging.hh
 * gem5-style failure and diagnostic reporting.
 *
 * panic()  -- an internal simulator invariant was violated (a bug in the
 *             simulator itself); aborts.
 * fatal()  -- the simulation cannot continue because of a user error
 *             (bad configuration, invalid arguments); exits with code 1,
 *             or throws SimError under FDIP_FATAL=throw (see
 *             common/error.hh) so sweep harnesses can isolate the
 *             failing point instead of losing the whole process.
 * warn()   -- something is questionable but the simulation can continue.
 * inform() -- plain status output.
 *
 * warn() and inform() go to stderr (bench tables own stdout), pass
 * through the FDIP_LOG verbosity filter, and are serialized under one
 * process-wide mutex so lines from concurrent Runner sweep threads
 * never interleave mid-line. panic() and fatal() are never filtered.
 */

#ifndef FDIP_COMMON_LOGGING_HH
#define FDIP_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace fdip
{

/**
 * Diagnostic verbosity, settable via the FDIP_LOG environment variable
 * ("quiet"/"0", "warn"/"1", "info"/"2") or setLogLevel(). Each level
 * includes the ones below it; the default is Info (everything).
 */
enum class LogLevel : int
{
    Quiet = 0, ///< suppress warn() and inform()
    Warn = 1,  ///< warn() only
    Info = 2,  ///< warn() and inform() (default)
};

/** Current verbosity (FDIP_LOG is read once, on first use). */
LogLevel logLevel();

/** Override the verbosity at runtime (tests; wins over FDIP_LOG). */
void setLogLevel(LogLevel level);

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...);
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...);
void warnImpl(const char *fmt, ...);
void informImpl(const char *fmt, ...);

/** Format a printf-style message into a std::string. */
std::string vstrprintf(const char *fmt, std::va_list args);
std::string strprintf(const char *fmt, ...);

} // namespace fdip

#define panic(...) ::fdip::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::fdip::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::fdip::warnImpl(__VA_ARGS__)
#define inform(...) ::fdip::informImpl(__VA_ARGS__)

/** panic() unless the given condition holds. */
#define panic_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            panic(__VA_ARGS__);                                              \
    } while (0)

#define fatal_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            fatal(__VA_ARGS__);                                              \
    } while (0)

#endif // FDIP_COMMON_LOGGING_HH
