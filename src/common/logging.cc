#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace fdip
{

std::string
vstrprintf(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return "<format error>";
    std::string buf(static_cast<size_t>(len) + 1, '\0');
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    buf.resize(static_cast<size_t>(len));
    return buf;
}

std::string
strprintf(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    return s;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace fdip
