#include "common/logging.hh"

#include "common/error.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace fdip
{

namespace
{

/** Serializes every diagnostic line (Runner sweeps warn from worker
 *  threads; without this, lines interleave mid-line). */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

int
levelFromEnv()
{
    const char *env = std::getenv("FDIP_LOG");
    if (env == nullptr || env[0] == '\0')
        return static_cast<int>(LogLevel::Info);
    if (std::strcmp(env, "quiet") == 0 || std::strcmp(env, "0") == 0)
        return static_cast<int>(LogLevel::Quiet);
    if (std::strcmp(env, "warn") == 0 || std::strcmp(env, "1") == 0)
        return static_cast<int>(LogLevel::Warn);
    if (std::strcmp(env, "info") == 0 || std::strcmp(env, "2") == 0)
        return static_cast<int>(LogLevel::Info);
    // Cannot warn() here (recursion); an unknown value is loud-safe.
    std::fprintf(stderr,
                 "warn: unknown FDIP_LOG value '%s' "
                 "(want quiet/warn/info); defaulting to info\n",
                 env);
    return static_cast<int>(LogLevel::Info);
}

/** -1: not yet initialized from FDIP_LOG. */
std::atomic<int> currentLevel{-1};

} // namespace

LogLevel
logLevel()
{
    int level = currentLevel.load(std::memory_order_relaxed);
    if (level < 0) {
        level = levelFromEnv();
        currentLevel.store(level, std::memory_order_relaxed);
    }
    return static_cast<LogLevel>(level);
}

void
setLogLevel(LogLevel level)
{
    currentLevel.store(static_cast<int>(level), std::memory_order_relaxed);
}

std::string
vstrprintf(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return "<format error>";
    std::string buf(static_cast<size_t>(len) + 1, '\0');
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    buf.resize(static_cast<size_t>(len));
    return buf;
}

std::string
strprintf(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    return s;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file,
                     line);
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    if (fatalMode() == FatalMode::Throw)
        throw SimError(msg + strprintf(" [%s:%d]", file, line));
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file,
                     line);
    }
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Warn)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Info)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace fdip
