/**
 * @file random.hh
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * A seeded xoshiro256** generator plus the distributions the workload
 * synthesizer needs (uniform, geometric-ish block sizes, Zipf function
 * popularity, weighted choice). Fully deterministic given the seed so
 * every experiment is reproducible.
 */

#ifndef FDIP_COMMON_RANDOM_HH
#define FDIP_COMMON_RANDOM_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace fdip
{

/** xoshiro256** 1.0, seeded via splitmix64. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // splitmix64 seeding as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        panic_if(bound == 0, "Rng::below(0)");
        // Debiased multiply-shift (Lemire).
        unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        panic_if(lo > hi, "Rng::range: lo > hi");
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** Geometric-shaped positive integer with the given mean (>= 1). */
    unsigned
    geometric(double mean)
    {
        if (mean <= 1.0)
            return 1;
        double p = 1.0 / mean;
        double u = uniform();
        // Inverse CDF of the geometric distribution on {1, 2, ...}.
        double v = std::log1p(-u) / std::log1p(-p);
        unsigned n = static_cast<unsigned>(v) + 1;
        return n == 0 ? 1 : n;
    }

  private:
    std::uint64_t state[4];
};

/**
 * Sampler over {0, .., n-1} with Zipf(s) popularity. Used to pick callee
 * functions so that instruction working sets show realistic reuse skew.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::size_t n, double s)
    {
        panic_if(n == 0, "ZipfSampler over empty domain");
        cdf.reserve(n);
        double sum = 0.0;
        for (std::size_t i = 1; i <= n; ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i), s);
            cdf.push_back(sum);
        }
        for (auto &c : cdf)
            c /= sum;
    }

    std::size_t
    sample(Rng &rng) const
    {
        double u = rng.uniform();
        // Binary search the CDF.
        std::size_t lo = 0, hi = cdf.size() - 1;
        while (lo < hi) {
            std::size_t mid = (lo + hi) / 2;
            if (cdf[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    std::size_t size() const { return cdf.size(); }

  private:
    std::vector<double> cdf;
};

/** Weighted discrete choice over a fixed weight vector. */
class WeightedChoice
{
  public:
    explicit WeightedChoice(std::vector<double> weights)
    {
        panic_if(weights.empty(), "WeightedChoice with no weights");
        double sum = 0.0;
        for (double w : weights) {
            panic_if(w < 0.0, "negative weight");
            sum += w;
            cdf.push_back(sum);
        }
        panic_if(sum <= 0.0, "WeightedChoice weights sum to zero");
        for (auto &c : cdf)
            c /= sum;
    }

    std::size_t
    sample(Rng &rng) const
    {
        double u = rng.uniform();
        for (std::size_t i = 0; i < cdf.size(); ++i) {
            if (u <= cdf[i])
                return i;
        }
        return cdf.size() - 1;
    }

  private:
    std::vector<double> cdf;
};

} // namespace fdip

#endif // FDIP_COMMON_RANDOM_HH
