/**
 * @file table.hh
 * ASCII table rendering used by the benchmark harness to print the
 * paper's tables and figure series.
 */

#ifndef FDIP_COMMON_TABLE_HH
#define FDIP_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace fdip
{

class AsciiTable
{
  public:
    explicit AsciiTable(std::vector<std::string> headers);

    /** Append a row; must have exactly one cell per header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience cell formatters. */
    static std::string num(double v, int precision = 2);
    static std::string pct(double frac, int precision = 1);
    static std::string integer(std::uint64_t v);

    /** Render with a box-drawing-free, pipe-separated layout. */
    std::string render() const;

    std::size_t numRows() const { return rows.size(); }

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

} // namespace fdip

#endif // FDIP_COMMON_TABLE_HH
