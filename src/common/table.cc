#include "common/table.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "common/logging.hh"

namespace fdip
{

AsciiTable::AsciiTable(std::vector<std::string> hdrs)
    : headers(std::move(hdrs))
{
    panic_if(headers.empty(), "AsciiTable needs at least one column");
}

void
AsciiTable::addRow(std::vector<std::string> cells)
{
    panic_if(cells.size() != headers.size(),
             "AsciiTable row has %zu cells, expected %zu",
             cells.size(), headers.size());
    rows.push_back(std::move(cells));
}

std::string
AsciiTable::num(double v, int precision)
{
    // Failed-point sentinels (sim/simulator.hh RunStatus): a tagged
    // NaN marks a timed-out point, any other NaN a failed one (or a
    // value derived from one). Rendering them as words keeps the rest
    // of the table printable.
    if (isTimedOutSentinel(v))
        return "TIMEOUT";
    if (std::isnan(v))
        return "FAIL";
    return strprintf("%.*f", precision, v);
}

std::string
AsciiTable::pct(double frac, int precision)
{
    if (isTimedOutSentinel(frac))
        return "TIMEOUT";
    if (std::isnan(frac))
        return "FAIL";
    return strprintf("%.*f%%", precision, frac * 100.0);
}

std::string
AsciiTable::integer(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
AsciiTable::render() const
{
    std::vector<std::size_t> width(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        width[c] = headers[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line = "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += " " + row[c] +
                std::string(width[c] - row[c].size(), ' ') + " |";
        }
        return line + "\n";
    };

    std::string sep = "+";
    for (std::size_t c = 0; c < headers.size(); ++c)
        sep += std::string(width[c] + 2, '-') + "+";
    sep += "\n";

    std::string out = sep + render_row(headers) + sep;
    for (const auto &row : rows)
        out += render_row(row);
    out += sep;
    return out;
}

} // namespace fdip
