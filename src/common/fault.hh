/**
 * @file fault.hh
 * Deterministic fault injection for the robustness test harness.
 *
 * FDIP_FAULT holds a comma-separated list of faults (grammar in
 * docs/ROBUSTNESS.md):
 *
 *   throw@<idx>        every simulation of sweep point <idx> throws
 *                      SimError at startup.
 *   throw@<idx>x<n>    only the first <n> attempts throw; the retry
 *                      after that succeeds (pins retry recovery).
 *   hang@<idx>         simulations of point <idx> block instead of
 *                      running, until the wall watchdog raises
 *                      SimTimeout (forever if no deadline is set).
 *   corrupt-cache@<n>  the <n>-th ResultCache::store() of the process
 *                      (counting from 0) writes a torn entry.
 *   truncate-trace@<idx>[x<n>]
 *                      the trace source feeding sweep point <idx>
 *                      throws SimError ("dies mid-stream") once it has
 *                      delivered <n> records (default 1024) — models a
 *                      trace file truncated behind the reader's back.
 *
 * Point indices are the deterministic enqueue order of *distinct*
 * grid points in a Runner sweep (Runner::Point::index). Faults are
 * injected unconditionally — they do not depend on FDIP_FATAL —
 * because an injected throw exists precisely to exercise the
 * isolation path. With FDIP_FAULT unset every hook is a no-op.
 */

#ifndef FDIP_COMMON_FAULT_HH
#define FDIP_COMMON_FAULT_HH

#include <cstdint>
#include <string>

namespace fdip
{

class FaultInjector
{
  public:
    /** Process-wide injector, configured from FDIP_FAULT on first use. */
    static FaultInjector &instance();

    /** Replace the fault plan (tests; same grammar as FDIP_FAULT).
     *  Also resets the store counter used by corrupt-cache@<n>. */
    void configure(const std::string &spec);

    /** Drop all faults and reset counters. */
    void reset() { configure(""); }

    /** True if any fault is armed (cheap; lets hot paths skip work). */
    bool any() const { return armed_; }

    /**
     * Declares "this thread is now simulating sweep point
     * @p point_index, attempt @p attempt (1-based)" for the duration
     * of the scope. Faults that target a point index only fire inside
     * such a scope.
     */
    class PointScope
    {
      public:
        PointScope(std::uint64_t point_index, std::uint64_t attempt);
        ~PointScope();

        PointScope(const PointScope &) = delete;
        PointScope &operator=(const PointScope &) = delete;
    };

    /** Hook at simulation start: throws SimError if a throw@ fault is
     *  armed for the current point and attempt. */
    void maybeThrow();

    /**
     * Hook at simulation start: if a hang@ fault is armed for the
     * current point, blocks in small sleeps until @p timeout_s wall
     * seconds elapse, then throws SimTimeout. A timeout of 0 (no
     * deadline) blocks forever — exactly the failure a real livelock
     * would produce.
     */
    void maybeHang(double timeout_s);

    /** Hook in ResultCache::store(): true if this store (the process-
     *  wide counter matches corrupt-cache@<n>) should be torn. */
    bool corruptThisStore();

    /**
     * Hook in trace-source next(): throws SimError if a truncate-trace@
     * fault is armed for the current point and the source has already
     * delivered @p records_delivered records. @p path names the trace
     * in the error message.
     */
    void maybeTruncateTrace(std::uint64_t records_delivered,
                            const std::string &path);

  private:
    FaultInjector();

    bool armed_ = false;
};

} // namespace fdip

#endif // FDIP_COMMON_FAULT_HH
