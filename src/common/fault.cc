#include "common/fault.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <thread>
#include <vector>

#include "common/error.hh"
#include "common/logging.hh"

namespace fdip
{

namespace
{

struct ThrowFault
{
    std::uint64_t point;
    std::uint64_t failCount; ///< attempts 1..failCount throw
};

struct TruncateFault
{
    std::uint64_t point;
    std::uint64_t afterRecords; ///< next() throws once this many delivered
};

/** truncate-trace@ default: far enough in that warmup is underway. */
constexpr std::uint64_t kDefaultTruncateAfter = 1024;

/** The armed plan. Written only by configure() (before a sweep runs);
 *  read lock-free from worker threads during the sweep. */
std::vector<ThrowFault> throwFaults;
std::vector<std::uint64_t> hangFaults;
std::vector<std::uint64_t> corruptStores;
std::vector<TruncateFault> truncateFaults;
std::atomic<std::uint64_t> storeCounter{0};

struct PointContext
{
    bool active = false;
    std::uint64_t point = 0;
    std::uint64_t attempt = 0;
};

thread_local PointContext tlPoint;

/** Parse the decimal run at *s, advancing it. */
bool
parseNum(const char *&s, std::uint64_t &out)
{
    if (*s < '0' || *s > '9')
        return false;
    std::uint64_t v = 0;
    while (*s >= '0' && *s <= '9')
        v = v * 10 + static_cast<std::uint64_t>(*s++ - '0');
    out = v;
    return true;
}

bool
parseToken(const std::string &tok)
{
    const char *s = tok.c_str();
    auto eat = [&s](const char *prefix) {
        size_t n = std::string(prefix).size();
        if (std::string(s).compare(0, n, prefix) != 0)
            return false;
        s += n;
        return true;
    };
    std::uint64_t idx = 0;
    if (eat("throw@")) {
        if (!parseNum(s, idx))
            return false;
        std::uint64_t count = std::numeric_limits<std::uint64_t>::max();
        if (*s == 'x') {
            ++s;
            if (!parseNum(s, count))
                return false;
        }
        if (*s != '\0')
            return false;
        throwFaults.push_back({idx, count});
        return true;
    }
    if (eat("hang@")) {
        if (!parseNum(s, idx) || *s != '\0')
            return false;
        hangFaults.push_back(idx);
        return true;
    }
    if (eat("corrupt-cache@")) {
        if (!parseNum(s, idx) || *s != '\0')
            return false;
        corruptStores.push_back(idx);
        return true;
    }
    if (eat("truncate-trace@")) {
        if (!parseNum(s, idx))
            return false;
        std::uint64_t after = kDefaultTruncateAfter;
        if (*s == 'x') {
            ++s;
            if (!parseNum(s, after))
                return false;
        }
        if (*s != '\0')
            return false;
        truncateFaults.push_back({idx, after});
        return true;
    }
    return false;
}

} // namespace

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

FaultInjector::FaultInjector()
{
    const char *env = std::getenv("FDIP_FAULT");
    configure(env != nullptr ? env : "");
}

void
FaultInjector::configure(const std::string &spec)
{
    throwFaults.clear();
    hangFaults.clear();
    corruptStores.clear();
    truncateFaults.clear();
    storeCounter.store(0, std::memory_order_relaxed);
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string tok = spec.substr(pos, comma - pos);
        if (!tok.empty() && !parseToken(tok)) {
            warn("ignoring unrecognized FDIP_FAULT token '%s' (want "
                 "throw@<idx>[x<n>], hang@<idx>, corrupt-cache@<n>, or "
                 "truncate-trace@<idx>[x<n>])",
                 tok.c_str());
        }
        pos = comma + 1;
    }
    armed_ = !throwFaults.empty() || !hangFaults.empty() ||
             !corruptStores.empty() || !truncateFaults.empty();
}

FaultInjector::PointScope::PointScope(std::uint64_t point_index,
                                      std::uint64_t attempt)
{
    tlPoint.active = true;
    tlPoint.point = point_index;
    tlPoint.attempt = attempt;
}

FaultInjector::PointScope::~PointScope()
{
    tlPoint.active = false;
}

void
FaultInjector::maybeThrow()
{
    if (!armed_ || !tlPoint.active)
        return;
    for (const ThrowFault &f : throwFaults) {
        if (f.point == tlPoint.point && tlPoint.attempt <= f.failCount) {
            throw SimError(strprintf(
                "injected fault: throw@%llu (attempt %llu)",
                static_cast<unsigned long long>(f.point),
                static_cast<unsigned long long>(tlPoint.attempt)));
        }
    }
}

void
FaultInjector::maybeHang(double timeout_s)
{
    if (!armed_ || !tlPoint.active)
        return;
    bool hang = false;
    for (std::uint64_t p : hangFaults)
        hang = hang || p == tlPoint.point;
    if (!hang)
        return;
    auto start = std::chrono::steady_clock::now();
    for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        if (timeout_s <= 0.0)
            continue; // no deadline: a genuine hang
        std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        if (elapsed.count() > timeout_s) {
            throw SimTimeout(strprintf(
                "injected fault: hang@%llu exceeded wall deadline of "
                "%.1f s",
                static_cast<unsigned long long>(tlPoint.point),
                timeout_s));
        }
    }
}

void
FaultInjector::maybeTruncateTrace(std::uint64_t records_delivered,
                                  const std::string &path)
{
    if (!armed_ || !tlPoint.active)
        return;
    for (const TruncateFault &f : truncateFaults) {
        if (f.point == tlPoint.point &&
            records_delivered >= f.afterRecords) {
            throw SimError(strprintf(
                "injected fault: truncate-trace@%llu — trace '%s' died "
                "mid-stream after %llu records",
                static_cast<unsigned long long>(f.point), path.c_str(),
                static_cast<unsigned long long>(records_delivered)));
        }
    }
}

bool
FaultInjector::corruptThisStore()
{
    if (!armed_ || corruptStores.empty())
        return false;
    std::uint64_t n = storeCounter.fetch_add(1, std::memory_order_relaxed);
    for (std::uint64_t c : corruptStores) {
        if (c == n)
            return true;
    }
    return false;
}

} // namespace fdip
