#include "frontend/ftq.hh"

#include "common/intmath.hh"
#include "common/logging.hh"
#include "obs/tracer.hh"

namespace fdip
{

Ftq::Ftq(std::size_t capacity, unsigned block_bytes)
    : q(capacity), blockBytes(block_bytes), occupancy(capacity)
{
    fatal_if(!isPowerOf2(block_bytes), "cache block size must be 2^n");
}

void
Ftq::push(const FetchBlock &blk)
{
    panic_if(full(), "push to full FTQ");
    FtqEntry e;
    e.blk = blk;
    if (tracer != nullptr)
        e.pushedAt = tracer->now();
    q.push(e);
    ++version_;
    stPushedBlocks.inc();
    stPushedInsts.inc(blk.numInsts);
}

void
Ftq::popHead()
{
    if (tracer != nullptr) {
        const FtqEntry &e = q.front();
        tracer->complete("ftq_entry", kTidFrontend, e.pushedAt,
                         tracer->now(), "pc", e.blk.startPc, "outcome",
                         "fetched");
    }
    q.pop();
    ++version_;
    stPoppedBlocks.inc();
}

void
Ftq::flush()
{
    if (tracer != nullptr) {
        for (std::size_t i = 0; i < q.size(); ++i) {
            const FtqEntry &e = q.at(i);
            tracer->complete("ftq_entry", kTidFrontend, e.pushedAt,
                             tracer->now(), "pc", e.blk.startPc, "outcome",
                             "squashed");
        }
    }
    stFlushes.inc();
    stFlushedBlocks.inc(q.size());
    q.clear();
    ++version_;
}

unsigned
Ftq::numCacheBlocks(std::size_t i) const
{
    const FetchBlock &blk = q.at(i).blk;
    Addr first = alignDown(blk.startPc, blockBytes);
    Addr last = alignDown(blk.endPc() - instBytes, blockBytes);
    return static_cast<unsigned>((last - first) / blockBytes) + 1;
}

Addr
Ftq::cacheBlockAddr(std::size_t i, unsigned k) const
{
    const FetchBlock &blk = q.at(i).blk;
    return alignDown(blk.startPc, blockBytes) + Addr(k) * blockBytes;
}

void
Ftq::sampleOccupancy(std::uint64_t cycles)
{
    occupancy.sample(q.size(), cycles);
}

} // namespace fdip
