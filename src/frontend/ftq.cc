#include "frontend/ftq.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace fdip
{

Ftq::Ftq(std::size_t capacity, unsigned block_bytes)
    : q(capacity), blockBytes(block_bytes), occupancy(capacity)
{
    fatal_if(!isPowerOf2(block_bytes), "cache block size must be 2^n");
}

void
Ftq::push(const FetchBlock &blk)
{
    panic_if(full(), "push to full FTQ");
    FtqEntry e;
    e.blk = blk;
    q.push(e);
    ++version_;
    stPushedBlocks.inc();
    stPushedInsts.inc(blk.numInsts);
}

void
Ftq::popHead()
{
    q.pop();
    ++version_;
    stPoppedBlocks.inc();
}

void
Ftq::flush()
{
    stFlushes.inc();
    stFlushedBlocks.inc(q.size());
    q.clear();
    ++version_;
}

unsigned
Ftq::numCacheBlocks(std::size_t i) const
{
    const FetchBlock &blk = q.at(i).blk;
    Addr first = alignDown(blk.startPc, blockBytes);
    Addr last = alignDown(blk.endPc() - instBytes, blockBytes);
    return static_cast<unsigned>((last - first) / blockBytes) + 1;
}

Addr
Ftq::cacheBlockAddr(std::size_t i, unsigned k) const
{
    const FetchBlock &blk = q.at(i).blk;
    return alignDown(blk.startPc, blockBytes) + Addr(k) * blockBytes;
}

void
Ftq::sampleOccupancy(std::uint64_t cycles)
{
    occupancy.sample(q.size(), cycles);
}

} // namespace fdip
