/**
 * @file ftq.hh
 * The Fetch Target Queue: the decoupling buffer between the branch
 * prediction unit and the fetch engine, and the source of prefetch
 * candidates for fetch-directed prefetching. The head entry is the
 * fetch point; deeper entries are the predicted future fetch stream.
 */

#ifndef FDIP_FRONTEND_FTQ_HH
#define FDIP_FRONTEND_FTQ_HH

#include "common/circular_queue.hh"
#include "common/histogram.hh"
#include "common/stats.hh"
#include "bpu/bpu.hh"

namespace fdip
{

class Tracer;

struct FtqEntry
{
    FetchBlock blk;
    /** Fetch-engine progress: instructions already delivered. */
    unsigned fetchedInsts = 0;
    /** Prefetch-scan progress: next cache block index to consider. */
    unsigned nextScanBlock = 0;
    /** Cycle this entry entered the queue (tracing only). */
    Cycle pushedAt = 0;
};

class Ftq
{
  public:
    Ftq(std::size_t capacity, unsigned block_bytes);

    bool full() const { return q.full(); }
    bool empty() const { return q.empty(); }
    std::size_t size() const { return q.size(); }
    std::size_t capacity() const { return q.capacity(); }

    void push(const FetchBlock &blk);

    FtqEntry &head() { return q.front(); }
    const FtqEntry &head() const { return q.front(); }
    void popHead();

    FtqEntry &at(std::size_t i) { return q.at(i); }
    const FtqEntry &at(std::size_t i) const { return q.at(i); }

    /** Squash everything (branch misprediction recovery). */
    void flush();

    /**
     * Monotonic content-change counter: bumped by push, popHead, and
     * flush. Scanners whose verdict is a pure function of the queue's
     * entries (e.g. the TLB prefetcher's fixed-point check) memoize
     * against it instead of rescanning every cycle.
     */
    std::uint64_t version() const { return version_; }

    /** Number of cache blocks entry @p i spans. */
    unsigned numCacheBlocks(std::size_t i) const;

    /** Aligned address of cache block @p k of entry @p i. */
    Addr cacheBlockAddr(std::size_t i, unsigned k) const;

    /** Record the current occupancy (call once per cycle; idle-cycle
     *  skipping passes the number of cycles being charged). */
    void sampleOccupancy(std::uint64_t cycles = 1);

    /**
     * Quiescence protocol: the FTQ is passive — it only changes state
     * when the BPU pushes or the fetch engine pops — so it never
     * schedules an event of its own.
     */
    Cycle nextEventCycle(Cycle now) const { return kNever; }

    const Histogram &occupancyHist() const { return occupancy; }

    /** Drop occupancy samples collected so far (warmup boundary). */
    void resetOccupancy() { occupancy.reset(); }

    /** Emit entry-lifetime spans to @p t (null disables). */
    void setTracer(Tracer *t) { tracer = t; }

    StatSet stats;

  private:
    StatSet::Counter stPushedBlocks =
        stats.registerCounter("ftq.pushed_blocks");
    StatSet::Counter stPushedInsts = stats.registerCounter("ftq.pushed_insts");
    StatSet::Counter stPoppedBlocks =
        stats.registerCounter("ftq.popped_blocks");
    StatSet::Counter stFlushes = stats.registerCounter("ftq.flushes");
    StatSet::Counter stFlushedBlocks =
        stats.registerCounter("ftq.flushed_blocks");

    CircularQueue<FtqEntry> q;
    unsigned blockBytes;
    Histogram occupancy;
    std::uint64_t version_ = 0;
    Tracer *tracer = nullptr;
};

} // namespace fdip

#endif // FDIP_FRONTEND_FTQ_HH
