/**
 * @file fetch_engine.hh
 * Consumes the FTQ head, performs demand instruction-cache accesses
 * (one cache block per cycle), and streams fetched instructions into
 * the backend queue. Detects the delivery of a mispredicted branch and
 * schedules the pipeline redirect.
 */

#ifndef FDIP_FRONTEND_FETCH_ENGINE_HH
#define FDIP_FRONTEND_FETCH_ENGINE_HH

#include <vector>

#include "common/stats.hh"
#include "core/backend.hh"
#include "frontend/ftq.hh"
#include "mem/hierarchy.hh"
#include "prefetch/prefetcher.hh"
#include "vm/mmu.hh"

namespace fdip
{

class FetchEngine
{
  public:
    struct Config
    {
        unsigned fetchWidth = 8;
        /** Redirect latency for decode-fixable misfetches. */
        Cycle decodeRedirectLatency = 3;
        /** Redirect latency for execute-resolved mispredictions. */
        Cycle resolveRedirectLatency = 12;
    };

    FetchEngine(Ftq &ftq, MemHierarchy &mem, Backend &backend,
                const Config &config);

    void addPrefetcher(Prefetcher *pf) { prefetchers.push_back(pf); }

    /** Wire the VM subsystem (nullptr: flat physical addressing). */
    void setMmu(Mmu *m) { mmu = m; }

    void tick(Cycle now);

    /**
     * Quiescence protocol: the earliest future cycle fetch changes
     * state on its own — stall expiry or the pending redirect. now + 1
     * when fetch would act next cycle; kNever when it is blocked on an
     * empty FTQ or a full backend (their refill/drain is another
     * component's event). Never returns a cycle <= @p now.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Bulk-apply the per-cycle stall accounting of @p cycles ticks in
     * which fetch provably does nothing, mirroring tick()'s early-out
     * branches. Callers may only charge ranges in which
     * nextEventCycle() reported quiescence.
     */
    void chargeIdleCycles(Cycle now, Cycle cycles);

    bool redirectPending() const { return redirectAt != neverCycle; }
    Cycle redirectTime() const { return redirectAt; }

    /** The simulator performed the redirect: reset fetch state. */
    void squash();

    StatSet stats;

  private:
    StatSet::Counter stItlbStallCycles =
        stats.registerCounter("fetch.itlb_stall_cycles");
    StatSet::Counter stMissStallCycles =
        stats.registerCounter("fetch.miss_stall_cycles");
    StatSet::Counter stFtqEmptyCycles =
        stats.registerCounter("fetch.ftq_empty_cycles");
    StatSet::Counter stBackendFullCycles =
        stats.registerCounter("fetch.backend_full_cycles");
    StatSet::Counter stItlbMisses = stats.registerCounter("fetch.itlb_misses");
    StatSet::Counter stMshrRetryCycles =
        stats.registerCounter("fetch.mshr_retry_cycles");
    StatSet::Counter stDemandMisses =
        stats.registerCounter("fetch.demand_misses");
    StatSet::Counter stWrongPathMisses =
        stats.registerCounter("fetch.wrong_path_misses");
    StatSet::Counter stWrongPathDelivered =
        stats.registerCounter("fetch.wrong_path_delivered");
    StatSet::Counter stRedirectsScheduled =
        stats.registerCounter("fetch.redirects_scheduled");
    StatSet::Counter stDecodeRedirects =
        stats.registerCounter("fetch.decode_redirects");
    StatSet::Counter stResolveRedirects =
        stats.registerCounter("fetch.resolve_redirects");
    StatSet::Counter stDelivered = stats.registerCounter("fetch.delivered");
    StatSet::Counter stSquashes = stats.registerCounter("fetch.squashes");

    Ftq &ftq;
    MemHierarchy &mem;
    Backend &backend;
    Config cfg;
    Mmu *mmu = nullptr;

    Cycle stallUntil = 0;
    /** The current stall waits on a page walk, not a cache fill. */
    bool stalledOnWalk = false;
    Cycle redirectAt = neverCycle;
    std::vector<Prefetcher *> prefetchers;
};

} // namespace fdip

#endif // FDIP_FRONTEND_FETCH_ENGINE_HH
