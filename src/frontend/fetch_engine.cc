#include "frontend/fetch_engine.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace fdip
{

FetchEngine::FetchEngine(Ftq &ftq_ref, MemHierarchy &mem_ref,
                         Backend &backend_ref, const Config &config)
    : ftq(ftq_ref), mem(mem_ref), backend(backend_ref), cfg(config)
{
    fatal_if(cfg.fetchWidth == 0, "fetch width must be nonzero");
}

void
FetchEngine::tick(Cycle now)
{
    if (now < stallUntil) {
        (stalledOnWalk ? stItlbStallCycles : stMissStallCycles).inc();
        return;
    }
    stalledOnWalk = false;
    if (ftq.empty()) {
        stFtqEmptyCycles.inc();
        return;
    }
    if (backend.freeSlots() == 0) {
        stBackendFullCycles.inc();
        return;
    }

    FtqEntry &e = ftq.head();
    Addr pc = e.blk.pcOf(e.fetchedInsts);
    Addr block = mem.l1i().blockAlign(pc);

    // Address translation precedes the cache access. An ITLB miss
    // stalls fetch for the L2-TLB refill or page walk (a demand walk
    // queues ahead of any prefetch walks when the walkers are
    // saturated, so readyAt is exact); the refill/walk fills the
    // ITLB, so the retry at readyAt translates without further delay.
    Addr fetch_pc = pc;
    if (mmu != nullptr && mmu->enabled()) {
        TlbAccess tr = mmu->demandTranslate(pc, now);
        if (!tr.hit) {
            stallUntil = tr.readyAt;
            stalledOnWalk = true;
            stItlbMisses.inc();
            return;
        }
        fetch_pc = tr.paddr;
    }

    // The demand fetch owns the first tag port of every cycle; the
    // fetch engine ticks before any prefetcher, so this cannot fail.
    bool port = mem.reserveTagPort();
    panic_if(!port, "demand fetch found no tag port");

    FetchAccess acc = mem.demandFetch(fetch_pc, now);

    // Prefetchers see the virtual block: candidate generation follows
    // the predicted fetch stream and translates at issue time.
    for (Prefetcher *pf : prefetchers)
        pf->onDemandAccess(block, acc, now);

    if (acc.retry) {
        stMshrRetryCycles.inc();
        return;
    }

    bool ready_now = acc.hitL1 || acc.hitPrefetchBuffer ||
        acc.hitStreamBuffer;
    if (!ready_now) {
        panic_if(acc.readyAt == neverCycle, "miss without a fill time");
        stallUntil = acc.readyAt;
        stDemandMisses.inc();
        if (e.blk.wrongPath || e.fetchedInsts >= e.blk.validLen)
            stWrongPathMisses.inc();
        return;
    }

    // Deliver this cycle: bounded by fetch width, the entry, the cache
    // block boundary, and backend queue space.
    unsigned to_block_end = static_cast<unsigned>(
        (block + mem.l1i().config().blockBytes - pc) / instBytes);
    unsigned n = std::min({cfg.fetchWidth,
                           e.blk.numInsts - e.fetchedInsts,
                           to_block_end,
                           static_cast<unsigned>(backend.freeSlots())});
    panic_if(n == 0, "fetch delivered nothing on a hit");

    for (unsigned k = 0; k < n; ++k) {
        unsigned idx = e.fetchedInsts + k;
        DeliveredInst di;
        di.wrongPath = e.blk.wrongPath || idx >= e.blk.validLen;
        di.seq = di.wrongPath ? 0 : e.blk.firstSeq + idx;
        backend.deliver(di);
        if (di.wrongPath)
            stWrongPathDelivered.inc();

        if (e.blk.diverges && idx == e.blk.culpritIdx) {
            panic_if(redirectPending(), "two outstanding redirects");
            Cycle lat = e.blk.decodeFixable
                ? cfg.decodeRedirectLatency
                : cfg.resolveRedirectLatency;
            redirectAt = now + lat;
            stRedirectsScheduled.inc();
            if (e.blk.decodeFixable)
                stDecodeRedirects.inc();
            else
                stResolveRedirects.inc();
        }
    }

    e.fetchedInsts += n;
    stDelivered.inc(n);
    if (e.fetchedInsts == e.blk.numInsts)
        ftq.popHead();
}

Cycle
FetchEngine::nextEventCycle(Cycle now) const
{
    Cycle next = kNever;
    if (redirectPending())
        next = redirectAt > now ? redirectAt : now + 1;
    if (now + 1 < stallUntil)
        return stallUntil < next ? stallUntil : next;
    // Not stalled next cycle: fetch acts unless the FTQ is empty or
    // the backend queue is full.
    if (!ftq.empty() && backend.freeSlots() > 0)
        return now + 1;
    return next;
}

void
FetchEngine::chargeIdleCycles(Cycle now, Cycle cycles)
{
    if (now + 1 < stallUntil) {
        panic_if(now + cycles >= stallUntil,
                 "idle charge crosses a fetch stall expiry");
        (stalledOnWalk ? stItlbStallCycles : stMissStallCycles)
            .inc(cycles);
        return;
    }
    stalledOnWalk = false;
    if (ftq.empty()) {
        stFtqEmptyCycles.inc(cycles);
    } else if (backend.freeSlots() == 0) {
        stBackendFullCycles.inc(cycles);
    } else {
        panic("idle-charging a fetch engine that would act");
    }
}

void
FetchEngine::squash()
{
    stallUntil = 0;
    stalledOnWalk = false;
    redirectAt = neverCycle;
    stSquashes.inc();
}

} // namespace fdip
