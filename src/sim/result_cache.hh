/**
 * @file result_cache.hh
 * On-disk cache of completed simulation results, shared across bench
 * binaries.
 *
 * Every figure-reproduction binary re-simulates the same
 * (workload, scheme) baselines; this cache lets a full figure
 * regeneration reuse them across processes. Entries are keyed by
 * SimConfig::fingerprint() — the order-independent hash of every knob
 * that affects simulated behaviour — plus the run lengths, so an
 * entry produced by a different *config* is never served. The
 * simulator's *code* is covered by the derived build identity
 * (common/build_id.hh) written into every entry: a semantic change
 * to the sources auto-invalidates old entries with no manual
 * kFormatVersion bump.
 *
 * The cache is enabled by pointing FDIP_CACHE_DIR at a directory;
 * FDIP_NO_CACHE=1 disables it even when the directory is set. Writes
 * are atomic (temp file + rename), so concurrent bench binaries can
 * share one directory.
 *
 * Hardening (docs/ROBUSTNESS.md): corrupt or stale entries are
 * quarantined — renamed aside with a `.bad` suffix and counted — so
 * a flaky disk leaves evidence instead of silently re-simulating;
 * opening a cache runs a size-budgeted GC (FDIP_CACHE_BUDGET_MB)
 * that evicts oldest-mtime entries first.
 */

#ifndef FDIP_SIM_RESULT_CACHE_HH
#define FDIP_SIM_RESULT_CACHE_HH

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>

#include "sim/simulator.hh"

namespace fdip
{

class ResultCache
{
  public:
    /** Bumped whenever the entry *format* changes incompatibly.
     *  Simulated-behaviour changes no longer need a bump: the build
     *  identity line invalidates those automatically.
     *  v2: two-level TLB hierarchy + bounded page-walk bandwidth
     *      (SimConfig::fingerprint() grew the vm.l2Tlb*, vm.numWalkers
     *      and vm.tlbPrefetch* fields, so v1 entries can never match a
     *      v2 key anyway; the bump makes the invalidation explicit).
     *  v3: prefetch lifecycle attribution — the entry format grew the
     *      prefetch_timely/late/pollution fields, the pf_timeliness
     *      histogram, and the pfattr.* counters in the stat list.
     *  v4: a "build" header line carrying the derived build identity
     *      (common/build_id.hh).
     *  v5: multi-core scale-out — a "per_core" count after the stat
     *      list followed by one nested per-core result body per core
     *      (0 on single-core machines), so bench_x17's per-core rows
     *      round-trip through the cache. */
    static constexpr unsigned kFormatVersion = 5;

    /** FDIP_CACHE_BUDGET_MB in bytes; 0 (the default) = unlimited. */
    static std::uint64_t budgetBytesFromEnv();

    explicit ResultCache(std::string directory,
                         std::uint64_t budget_bytes = budgetBytesFromEnv());

    /**
     * Cache configured from the environment: FDIP_CACHE_DIR names the
     * directory, FDIP_NO_CACHE=1 force-disables. Returns nullptr when
     * disabled.
     */
    static std::unique_ptr<ResultCache> fromEnv();

    const std::string &dir() const { return directory; }

    /**
     * Load the entry for (fingerprint, warmup, measure). Returns
     * nullopt on a miss; a corrupt or stale entry (truncated file,
     * header mismatch) is warned about and treated as a miss.
     */
    std::optional<SimResults> load(std::uint64_t fingerprint,
                                   std::uint64_t warmup_insts,
                                   std::uint64_t measure_insts) const;

    /** Serialize @p r under (fingerprint, warmup, measure). Errors are
     *  warnings — a read-only cache directory degrades to a no-op. */
    void store(std::uint64_t fingerprint, std::uint64_t warmup_insts,
               std::uint64_t measure_insts, const SimResults &r) const;

    /** File an entry with this key lives in (exposed for tests). */
    std::string entryPath(std::uint64_t fingerprint,
                          std::uint64_t warmup_insts,
                          std::uint64_t measure_insts) const;

    /** Corrupt/stale entries quarantined (renamed to `.bad`) by this
     *  cache object so far. */
    std::size_t quarantined() const { return numQuarantined; }

    /** Entries evicted by the size-budget GC at open. */
    std::size_t evicted() const { return numEvicted; }

  private:
    /** Oldest-mtime-first eviction until the directory's entries fit
     *  the byte budget (0 = unlimited, no scan). */
    void collectGarbage(std::uint64_t budget_bytes);

    std::string directory;
    mutable std::atomic<std::size_t> numQuarantined{0};
    std::size_t numEvicted = 0;
};

/**
 * Text encoding of one cache entry: a header binding the entry to
 * (format version, fingerprint, run lengths), every simulated field of
 * the SimResults including the full StatSet and FTQ-occupancy
 * histogram, the host-side gauges of the producing run, and an "end"
 * marker that catches truncation. Doubles are rendered with %.17g so
 * decoding round-trips them bit-exactly.
 */
std::string encodeCacheEntry(std::uint64_t fingerprint,
                             std::uint64_t warmup_insts,
                             std::uint64_t measure_insts,
                             const SimResults &r);

/**
 * Decode @p text, validating the header against the expected key.
 * Returns nullopt (with a reason in @p error when non-null) on any
 * mismatch or malformation.
 */
std::optional<SimResults> decodeCacheEntry(const std::string &text,
                                           std::uint64_t fingerprint,
                                           std::uint64_t warmup_insts,
                                           std::uint64_t measure_insts,
                                           std::string *error = nullptr);

} // namespace fdip

#endif // FDIP_SIM_RESULT_CACHE_HH
