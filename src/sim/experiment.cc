#include "sim/experiment.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <tuple>

#include "common/logging.hh"
#include "obs/json.hh"
#include "sim/report.hh"

namespace fdip
{

namespace
{

/** "R-F2" < "R-F10": digit runs compare numerically. */
bool
naturalLess(const std::string &a, const std::string &b)
{
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        if (std::isdigit(static_cast<unsigned char>(a[i])) &&
            std::isdigit(static_cast<unsigned char>(b[j]))) {
            std::size_t ie = i, je = j;
            while (ie < a.size() &&
                   std::isdigit(static_cast<unsigned char>(a[ie])))
                ++ie;
            while (je < b.size() &&
                   std::isdigit(static_cast<unsigned char>(b[je])))
                ++je;
            unsigned long an = std::stoul(a.substr(i, ie - i));
            unsigned long bn = std::stoul(b.substr(j, je - j));
            if (an != bn)
                return an < bn;
            i = ie;
            j = je;
            continue;
        }
        if (a[i] != b[j])
            return a[i] < b[j];
        ++i;
        ++j;
    }
    return a.size() < b.size();
}

void
put(const std::string &s)
{
    std::fputs(s.c_str(), stdout);
    std::fflush(stdout);
}

std::string
join(const std::vector<std::string> &items, const char *sep)
{
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += sep;
        out += items[i];
    }
    return out;
}

std::vector<std::string>
schemeNames(const std::vector<PrefetchScheme> &schemes)
{
    std::vector<std::string> out;
    for (auto s : schemes)
        out.push_back(schemeName(s));
    return out;
}

std::string
variantSummary(const TweakVariant &v)
{
    std::string key = v.key.empty() ? "(default)" : v.key;
    if (v.label.empty())
        return key;
    return key + " = " + v.label;
}

std::string
runLengthLine(const ExperimentSpec &spec)
{
    if (spec.measure == 0)
        return "no timed simulation (static analysis)";
    return strprintf("%llu warmup + %llu measured instructions per "
                     "point",
                     static_cast<unsigned long long>(spec.warmup),
                     static_cast<unsigned long long>(spec.measure));
}

/**
 * Machine-readable export of every grid point (--stats-json): one JSON
 * object with the run lengths and a record per distinct simulation.
 * Every read is a memo hit (the sweep just ran), so this adds no
 * simulation time; the fingerprint ties each record back to the exact
 * SimConfig, letting downstream tooling join records across binaries
 * and cache entries.
 */
std::string
statsJson(const ExperimentSpec &spec, Runner &runner,
          std::uint64_t warmup, std::uint64_t measure)
{
    std::string out = "{\n";
    out += strprintf("  \"experiment\": \"%s\",\n",
                     jsonEscape(spec.id).c_str());
    out += strprintf("  \"binary\": \"%s\",\n",
                     jsonEscape(spec.binary).c_str());
    out += strprintf("  \"warmup\": %llu,\n",
                     static_cast<unsigned long long>(warmup));
    out += strprintf("  \"measure\": %llu,\n",
                     static_cast<unsigned long long>(measure));
    out += "  \"points\": [";

    std::set<std::tuple<std::string, std::string, std::string>> seen;
    bool first = true;
    forEachGridPoint(
        spec,
        [&](const std::string &w, PrefetchScheme s,
            const TweakVariant &v) {
            if (!seen.emplace(w, schemeName(s), v.key).second)
                return;
            const SimResults &r = runner.run(w, s, v.key, v.tweak);
            out += first ? "\n" : ",\n";
            first = false;
            out += "    {";
            out += strprintf("\"workload\": \"%s\", ",
                             jsonEscape(w).c_str());
            out += strprintf("\"scheme\": \"%s\", ", schemeName(s));
            out += strprintf("\"tweak\": \"%s\", ",
                             jsonEscape(v.key).c_str());
            out += strprintf(
                "\"fingerprint\": \"%016llx\",\n     ",
                static_cast<unsigned long long>(
                    runner.fingerprintOf(w, s, v.key)));
            if (r.status != RunStatus::Ok) {
                // Sentinel metrics are NaNs, which is not JSON;
                // failed points export a status + error instead.
                out += strprintf(
                    "\"status\": \"%s\", \"error\": \"%s\"}",
                    r.status == RunStatus::TimedOut ? "timeout"
                                                    : "failed",
                    jsonEscape(r.failReason).c_str());
                return;
            }
            out += strprintf("\"cycles\": %llu, ",
                             static_cast<unsigned long long>(r.cycles));
            out += strprintf(
                "\"instructions\": %llu, ",
                static_cast<unsigned long long>(r.instructions));
            out += strprintf("\"ipc\": %.17g, \"mpki\": %.17g,\n     ",
                             r.ipc, r.mpki);
            out += strprintf(
                "\"l2_bus_util\": %.17g, \"mem_bus_util\": %.17g,\n"
                "     ",
                r.l2BusUtil, r.memBusUtil);
            out += strprintf(
                "\"prefetch_accuracy\": %.17g, "
                "\"prefetch_coverage\": %.17g,\n     ",
                r.prefetchAccuracy, r.prefetchCoverage);
            out += strprintf(
                "\"prefetch_timely\": %.17g, "
                "\"prefetch_late\": %.17g, "
                "\"prefetch_pollution\": %.17g,\n     ",
                r.prefetchTimely, r.prefetchLate, r.prefetchPollution);
            out += strprintf("\"cond_mispredict_per_kilo\": %.17g,\n"
                             "     ",
                             r.condMispredictPerKilo);
            out += strprintf(
                "\"host_seconds\": %.17g, "
                "\"host_kcycles_per_sec\": %.17g, ",
                r.hostSeconds, r.hostKcyclesPerSec);
            out += strprintf(
                "\"skipped_cycles\": %llu, \"total_cycles\": %llu",
                static_cast<unsigned long long>(r.skippedCycles),
                static_cast<unsigned long long>(r.totalCycles));
            out += "}";
        });
    out += first ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

} // namespace

ExperimentRegistry &
ExperimentRegistry::instance()
{
    static ExperimentRegistry registry;
    return registry;
}

void
ExperimentRegistry::add(ExperimentSpec spec)
{
    fatal_if(spec.id.empty() || spec.binary.empty(),
             "experiment spec needs an id and a binary name");
    fatal_if(find(spec.id) != nullptr,
             "duplicate experiment id '%s'", spec.id.c_str());
    specs.push_back(std::move(spec));
}

const ExperimentSpec *
ExperimentRegistry::find(const std::string &id) const
{
    for (const auto &s : specs) {
        if (s.id == id)
            return &s;
    }
    return nullptr;
}

std::vector<const ExperimentSpec *>
ExperimentRegistry::all() const
{
    std::vector<const ExperimentSpec *> out;
    for (const auto &s : specs)
        out.push_back(&s);
    std::sort(out.begin(), out.end(),
              [](const ExperimentSpec *a, const ExperimentSpec *b) {
                  return naturalLess(a->id, b->id);
              });
    return out;
}

ExperimentRegistrar::ExperimentRegistrar(ExperimentSpec (*maker)())
{
    ExperimentRegistry::instance().add(maker());
}

void
forEachGridPoint(
    const ExperimentSpec &spec,
    const std::function<void(const std::string &, PrefetchScheme,
                             const TweakVariant &)> &fn)
{
    static const TweakVariant untweaked{};
    for (const auto &grid : spec.grids) {
        std::size_t nvariants =
            grid.variants.empty() ? 1 : grid.variants.size();
        for (std::size_t vi = 0; vi < nvariants; ++vi) {
            const TweakVariant &v =
                grid.variants.empty() ? untweaked : grid.variants[vi];
            for (const auto &w : grid.workloads) {
                for (auto s : grid.schemes) {
                    if (grid.withBaseline)
                        fn(w, PrefetchScheme::None, v);
                    fn(w, s, v);
                }
            }
        }
    }
}

void
enqueueExperiment(Runner &runner, const ExperimentSpec &spec)
{
    forEachGridPoint(spec,
                     [&runner](const std::string &w, PrefetchScheme s,
                               const TweakVariant &v) {
                         runner.enqueue(w, s, v.key, v.tweak);
                     });
}

std::size_t
countDistinctPoints(const ExperimentSpec &spec)
{
    // Mirrors the Runner's memo dedup: shared baselines and
    // overlapping grids collapse onto one simulation.
    std::set<std::tuple<std::string, std::string, std::string>> seen;
    forEachGridPoint(spec,
                     [&seen](const std::string &w, PrefetchScheme s,
                             const TweakVariant &v) {
                         seen.emplace(w, schemeName(s), v.key);
                     });
    return seen.size();
}

std::string
describeExperiment(const ExperimentSpec &spec)
{
    std::string out;
    out += spec.id + ": " + spec.title + "\n";
    out += "  binary:     " + spec.binary + "\n";
    out += "  reproduces: " + spec.paperRef + "\n";
    if (!spec.question.empty())
        out += "  question:   " + spec.question + "\n";
    out += "  expected:   " + spec.shape + "\n";
    out += "  run:        " + runLengthLine(spec) + "\n";
    for (std::size_t g = 0; g < spec.grids.size(); ++g) {
        const ExperimentGrid &grid = spec.grids[g];
        out += strprintf(
            "  grid %zu:     %zu workloads x %zu schemes", g + 1,
            grid.workloads.size(), grid.schemes.size());
        if (!grid.variants.empty())
            out += strprintf(" x %zu variants", grid.variants.size());
        out += grid.withBaseline ? " (+ no-prefetch baselines)\n"
                                 : " (direct runs)\n";
        out += "    workloads: " + join(grid.workloads, " ") + "\n";
        out += "    schemes:   " + join(schemeNames(grid.schemes), " ") +
               "\n";
        if (!grid.variants.empty()) {
            std::vector<std::string> vs;
            for (const auto &v : grid.variants)
                vs.push_back(variantSummary(v));
            out += "    variants:  " + join(vs, ", ") + "\n";
        }
    }
    if (!spec.grids.empty()) {
        out += strprintf("  points:     %zu distinct simulations\n",
                         countDistinctPoints(spec));
    }
    if (!spec.notes.empty())
        out += "  notes:      " + spec.notes + "\n";
    return out;
}

std::string
listExperiments(const std::vector<const ExperimentSpec *> &specs)
{
    std::string out;
    for (const ExperimentSpec *s : specs) {
        out += strprintf("%-7s %-28s %5zu points  %s\n", s->id.c_str(),
                         s->binary.c_str(), countDistinctPoints(*s),
                         s->title.c_str());
    }
    return out;
}

std::string
experimentCatalogMarkdown(
    const std::vector<const ExperimentSpec *> &specs)
{
    std::string md;
    md += "# Experiment catalog\n\n";
    md += "<!-- Generated by fdip_experiments from the ExperimentSpec\n"
          "     registry (sim/experiment.hh). Do not edit by hand.\n"
          "     Regenerate with:\n"
          "         ./build/fdip_experiments > docs/EXPERIMENTS.md\n"
          "     CI fails when this file drifts from the registry. -->\n"
          "\n";
    md += "Every figure and table of the reproduction is one bench\n"
          "binary whose sweep is declared once, as data, in an\n"
          "`ExperimentSpec` (`src/sim/experiment.hh`). Each binary\n"
          "supports `--jobs N`, `--warmup N`, `--measure N`,\n"
          "`--list`, and `--describe`. \"Points\" counts distinct\n"
          "simulations after baseline dedup; with `FDIP_CACHE_DIR`\n"
          "set, points already simulated by *any* binary are served\n"
          "from the on-disk result cache.\n\n";

    md += "| id | binary | reproduces | points | title |\n";
    md += "|----|--------|------------|-------:|-------|\n";
    for (const ExperimentSpec *s : specs) {
        std::string points =
            s->grids.empty() ? "-"
                             : strprintf("%zu",
                                         countDistinctPoints(*s));
        md += strprintf("| %s | `%s` | %s | %s | %s |\n",
                        s->id.c_str(), s->binary.c_str(),
                        s->paperRef.c_str(), points.c_str(),
                        s->title.c_str());
    }
    md += "\n";

    for (const ExperimentSpec *s : specs) {
        md += strprintf("## %s: %s\n\n", s->id.c_str(),
                        s->title.c_str());
        md += strprintf("- **binary:** `%s`\n", s->binary.c_str());
        md += strprintf("- **reproduces:** %s\n", s->paperRef.c_str());
        if (!s->question.empty())
            md += strprintf("- **question:** %s\n", s->question.c_str());
        md += strprintf("- **expected shape:** %s\n", s->shape.c_str());
        md += strprintf("- **run lengths:** %s\n",
                        runLengthLine(*s).c_str());
        if (s->grids.empty()) {
            md += "- **grid:** none (no simulated sweep)\n";
        } else {
            for (std::size_t g = 0; g < s->grids.size(); ++g) {
                const ExperimentGrid &grid = s->grids[g];
                md += strprintf("- **grid %zu:** ", g + 1);
                md += strprintf("%zu workloads x %zu schemes",
                                grid.workloads.size(),
                                grid.schemes.size());
                if (!grid.variants.empty())
                    md += strprintf(" x %zu variants",
                                    grid.variants.size());
                md += grid.withBaseline ? " (+ no-prefetch baselines)"
                                        : " (direct runs)";
                md += "\n";
                md += "  - workloads: " + join(grid.workloads, ", ") +
                      "\n";
                md += "  - schemes: " +
                      join(schemeNames(grid.schemes), ", ") + "\n";
                if (!grid.variants.empty()) {
                    std::vector<std::string> vs;
                    for (const auto &v : grid.variants)
                        vs.push_back("`" +
                                     (v.key.empty() ? std::string("-")
                                                    : v.key) +
                                     "`" +
                                     (v.label.empty()
                                          ? ""
                                          : " (" + v.label + ")"));
                    md += "  - variants: " + join(vs, ", ") + "\n";
                }
            }
            md += strprintf("- **distinct simulations:** %zu\n",
                            countDistinctPoints(*s));
        }
        if (!s->notes.empty())
            md += strprintf("- **notes:** %s\n", s->notes.c_str());
        md += "\n";
    }
    return md;
}

int
experimentMain(const ExperimentSpec &spec, int argc, char **argv)
{
    std::uint64_t warmup = spec.warmup;
    std::uint64_t measure = spec.measure;
    unsigned jobs = Runner::defaultJobs();
    bool list = false, describe = false;
    std::string statsJsonPath;

    for (int i = 1; i < argc; ++i) {
        auto needsValue = [&](const char *flag) {
            fatal_if(i + 1 >= argc, "%s requires a value", flag);
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--jobs") == 0) {
            jobs = static_cast<unsigned>(
                std::strtoul(needsValue("--jobs"), nullptr, 10));
            fatal_if(jobs == 0, "--jobs must be >= 1");
        } else if (std::strcmp(argv[i], "--warmup") == 0) {
            warmup = std::strtoull(needsValue("--warmup"), nullptr, 10);
        } else if (std::strcmp(argv[i], "--measure") == 0) {
            measure = std::strtoull(needsValue("--measure"), nullptr, 10);
            fatal_if(measure == 0, "--measure must be >= 1");
        } else if (std::strcmp(argv[i], "--list") == 0) {
            list = true;
        } else if (std::strcmp(argv[i], "--describe") == 0) {
            describe = true;
        } else if (std::strcmp(argv[i], "--stats-json") == 0) {
            statsJsonPath = needsValue("--stats-json");
        } else {
            fatal("unknown argument '%s' (expected --jobs/--warmup/"
                  "--measure/--list/--describe/--stats-json)", argv[i]);
        }
    }

    if (list) {
        put(listExperiments({&spec}));
        return 0;
    }
    if (describe) {
        put(describeExperiment(spec));
        return 0;
    }

    put(experimentBanner(spec.id, spec.title, spec.shape));

    Runner runner(warmup, measure);
    runner.setJobs(jobs);
    enqueueExperiment(runner, spec);
    bool swept = runner.pendingRuns() > 0;
    runner.runPending();
    if (swept)
        put(runner.sweepSummary());
    if (spec.render)
        spec.render(runner);
    const auto &failures = runner.failures();
    if (!failures.empty()) {
        std::string out = "\nfailed points:\n";
        for (const auto &f : failures) {
            out += strprintf(
                "  %s (%s, %s, '%s') after %u attempt%s: %s\n",
                f.timedOut ? "TIMEOUT" : "FAIL", f.workload.c_str(),
                f.scheme.c_str(), f.tweakKey.c_str(), f.attempts,
                f.attempts == 1 ? "" : "s", f.error.c_str());
        }
        put(out);
    }
    if (!statsJsonPath.empty()) {
        std::ofstream out(statsJsonPath,
                          std::ios::binary | std::ios::trunc);
        fatal_if(!out, "cannot open --stats-json file '%s'",
                 statsJsonPath.c_str());
        out << statsJson(spec, runner, warmup, measure);
        fatal_if(!out, "failed writing --stats-json file '%s'",
                 statsJsonPath.c_str());
        std::printf("stats: wrote %s\n", statsJsonPath.c_str());
    }
    // 0 = clean; 3 = the sweep completed but some points failed (the
    // table above has FAIL/TIMEOUT cells). fatal() paths exit 1.
    return failures.empty() ? 0 : 3;
}

} // namespace fdip
