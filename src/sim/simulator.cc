#include "sim/simulator.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>

#include "common/env.hh"
#include "common/error.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "obs/telemetry.hh"
#include "trace/champsim.hh"
#include "trace/profile.hh"
#include "vm/tlb_prefetcher.hh"

namespace fdip
{

namespace
{

/** FDIP_NO_SKIP=1 (anything but "" / "0") forces per-cycle ticking. */
bool
envForceTick()
{
    const char *env = std::getenv("FDIP_NO_SKIP");
    if (env == nullptr || env[0] == '\0')
        return false;
    return !(env[0] == '0' && env[1] == '\0');
}

constexpr const char kTracePrefix[] = "trace:";

bool
isTraceLabel(const std::string &label)
{
    return label.rfind(kTracePrefix, 0) == 0;
}

/** Bucket-wise sum of per-core histograms (same geometry per config). */
Histogram
sumHistograms(const std::vector<const Histogram *> &hists)
{
    std::size_t buckets = 1;
    for (const Histogram *h : hists)
        buckets = std::max(buckets, h->numBuckets());
    Histogram out(buckets - 1);
    for (const Histogram *h : hists) {
        for (std::size_t v = 0; v < h->numBuckets(); ++v) {
            if (h->bucket(v) > 0)
                out.sample(v, h->bucket(v));
        }
    }
    return out;
}

} // namespace

double
speedupOver(const SimResults &baseline, const SimResults &other)
{
    // Degenerate baselines (wedged or zero-length runs) yield NaN so
    // sweep harnesses can tolerate and report them instead of dying.
    if (baseline.ipc <= 0.0)
        return std::numeric_limits<double>::quiet_NaN();
    return other.ipc / baseline.ipc - 1.0;
}

Simulator::Simulator(const SimConfig &config)
    : cfg(config)
{
    cfg.validate();

    shared_ = std::make_unique<SharedMem>(cfg.mem);
    cores_.reserve(cfg.numCores);
    for (unsigned i = 0; i < cfg.numCores; ++i) {
        auto c = std::make_unique<Core>();
        buildCore(*c, i);
        cores_.push_back(std::move(c));
    }

    forceTick = cfg.forceTick || envForceTick();

    ObsConfig obs = cfg.obs;
    obs.applyEnv();
    if (obs.enabled()) {
        telem_ = std::make_unique<Telemetry>(obs, cfg.workload,
                                             schemeName(cfg.scheme));
        tracer_ = telem_->tracer();
        sampler_ = telem_->sampler();
        if (tracer_ != nullptr) {
            // Trace lanes are single-machine shaped; attach them to
            // core 0 so multi-core traces stay readable.
            Core &c0 = *cores_.front();
            c0.ftq->setTracer(tracer_);
            c0.mmu->setTracer(tracer_);
            c0.mem->setTracer(tracer_);
        }
    }
}

void
Simulator::buildCore(Core &c, unsigned id)
{
    c.id = id;
    c.workload = cfg.coreWorkloads.empty() ? cfg.workload
        : cfg.coreWorkloads[id];
    std::string trace_path = cfg.tracePath;
    if (!cfg.coreWorkloads.empty())
        trace_path = isTraceLabel(c.workload)
            ? c.workload.substr(sizeof(kTracePrefix) - 1) : "";

    Addr trace_code_base = 0;
    Addr trace_code_end = 0;
    if (!trace_path.empty()) {
        auto src = openTraceWorkload(trace_path);
        trace_code_base = src->codeBase();
        trace_code_end = src->codeEnd();
        c.exec = std::move(src);
    } else {
        WorkloadProfile profile =
            cfg.customProfile && cfg.coreWorkloads.empty()
            ? *cfg.customProfile
            : findProfile(c.workload);
        // Homogeneous multi-core mixes still run distinct instruction
        // streams: each core's seed is offset by its id (identity for
        // core 0, so a single-core machine is unchanged).
        profile.seed += cfg.seedOffset + id;
        c.prog = buildProgram(profile);
        c.image = std::make_unique<CodeImage>(*c.prog);
        c.exec = std::make_unique<SyntheticExecutor>(*c.prog, profile);
    }
    // Fast-forward happens before any component sees the stream, so
    // skip-N positions the region of interest identically for trace
    // and synthetic sources.
    for (std::uint64_t i = 0; i < cfg.skipInsts; ++i)
        c.exec->next();
    c.trace = std::make_unique<TraceWindow>(*c.exec);

    std::unique_ptr<BtbIface> custom_btb;
    if (cfg.usePartitionedBtb)
        custom_btb = std::make_unique<PartitionedBtb>(cfg.pbtb);
    c.bpu = std::make_unique<Bpu>(*c.trace, cfg.bpu,
                                  std::move(custom_btb));

    c.mmu = c.prog != nullptr
        ? std::make_unique<Mmu>(cfg.vm, *c.prog)
        : std::make_unique<Mmu>(cfg.vm, trace_code_base, trace_code_end);
    c.mem = std::make_unique<MemHierarchy>(cfg.mem, *shared_, id,
                                           cfg.numCores);
    c.mem->setMaxOutstandingPrefetches(cfg.maxOutstandingPrefetches);
    c.ftq = std::make_unique<Ftq>(cfg.ftqEntries,
                                  cfg.mem.l1i.blockBytes);
    c.backend = std::make_unique<Backend>(cfg.backend);
    c.fetch = std::make_unique<FetchEngine>(*c.ftq, *c.mem, *c.backend,
                                            cfg.fetch);
    c.fetch->setMmu(c.mmu.get());

    if (cfg.vm.enable && cfg.vm.tlbPrefetch) {
        c.tlbPf = std::make_unique<TlbPrefetcher>(
            *c.ftq, *c.mmu,
            TlbPrefetcher::Config{cfg.vm.tlbPrefetchWidth,
                                  cfg.vm.tlbPrefetchFilterEntries});
    }

    switch (cfg.scheme) {
      case PrefetchScheme::None:
        break;
      case PrefetchScheme::Nlp:
        c.prefetchers.push_back(
            std::make_unique<NlpPrefetcher>(*c.mem, cfg.nlp));
        break;
      case PrefetchScheme::StreamBuffer:
        c.prefetchers.push_back(
            std::make_unique<StreamBufferPrefetcher>(*c.mem, cfg.sb));
        break;
      case PrefetchScheme::Oracle:
        c.prefetchers.push_back(std::make_unique<OraclePrefetcher>(
            *c.trace, *c.bpu, *c.mem, cfg.oracle));
        break;
      case PrefetchScheme::Mana:
        c.prefetchers.push_back(
            std::make_unique<ManaPrefetcher>(*c.mem, cfg.mana));
        break;
      case PrefetchScheme::ShadowBtb:
        // Pre-fills whichever target buffer the front-end runs on
        // (FTB for the block-based default, BTB/partitioned otherwise);
        // trace replay has no code image, so the decoder idles.
        c.prefetchers.push_back(std::make_unique<ShadowBtbPrefetcher>(
            c.bpu->ftb(), c.bpu->btb(), *c.mem, c.image.get(),
            cfg.shadow));
        break;
      case PrefetchScheme::FdpNone:
      case PrefetchScheme::FdpEnqueue:
      case PrefetchScheme::FdpEnqueueAggressive:
      case PrefetchScheme::FdpRemove:
      case PrefetchScheme::FdpIdeal: {
        FdpPrefetcher::Config fc = cfg.fdp;
        if (cfg.scheme == PrefetchScheme::FdpNone)
            fc.mode = CpfMode::None;
        else if (cfg.scheme == PrefetchScheme::FdpEnqueue)
            fc.mode = CpfMode::Enqueue;
        else if (cfg.scheme == PrefetchScheme::FdpEnqueueAggressive)
            fc.mode = CpfMode::EnqueueAggressive;
        else if (cfg.scheme == PrefetchScheme::FdpRemove)
            fc.mode = CpfMode::Remove;
        else
            fc.mode = CpfMode::Ideal;
        c.prefetchers.push_back(
            std::make_unique<FdpPrefetcher>(*c.ftq, *c.mem, fc));
        if (cfg.combineNlp) {
            c.prefetchers.push_back(
                std::make_unique<NlpPrefetcher>(*c.mem, cfg.nlp));
        }
        break;
      }
    }

    for (auto &pf : c.prefetchers) {
        pf->setMmu(c.mmu.get());
        c.fetch->addPrefetcher(pf.get());
    }
}

Simulator::~Simulator() = default;

Simulator::Core &
Simulator::core(std::size_t i)
{
    fatal_if(i >= cores_.size(),
             "core index %zu out of range (numCores %zu)", i,
             cores_.size());
    return *cores_[i];
}

const Simulator::Core &
Simulator::core(std::size_t i) const
{
    fatal_if(i >= cores_.size(),
             "core index %zu out of range (numCores %zu)", i,
             cores_.size());
    return *cores_[i];
}

void
Simulator::skipIdleCycles()
{
    // Every BPU delivers a prediction every cycle its FTQ has room, so
    // the frontier only freezes once ALL FTQs are full: one busy core
    // pins the whole machine to per-cycle ticking.
    for (const auto &c : cores_) {
        if (!c->ftq->full())
            return;
    }

    // Gather the minimum next-event cycle, cheapest components first;
    // anything due next cycle ends the attempt immediately.
    Cycle now = curCycle;
    Cycle next = cores_.front()->fetch->nextEventCycle(now);
    auto consider = [&next, now](Cycle ev) {
        if (ev < next)
            next = ev;
        return next > now + 1;
    };
    if (next <= now + 1)
        return;
    for (const auto &cp : cores_) {
        Core &c = *cp;
        if (c.id != 0 && !consider(c.fetch->nextEventCycle(now)))
            return;
        if (!consider(c.backend->nextEventCycle(now)) ||
            !consider(c.bpu->nextEventCycle(now)) ||
            !consider(c.ftq->nextEventCycle(now)) ||
            !consider(c.mmu->nextEventCycle(now)) ||
            !consider(c.mem->nextEventCycle(now)) ||
            (c.tlbPf != nullptr &&
             !consider(c.tlbPf->nextEventCycle(now)))) {
            return;
        }
        for (auto &pf : c.prefetchers) {
            if (!consider(pf->nextEventCycle(now)))
                return;
        }
    }
    // Sample boundaries cap a jump so interval rows land at exactly
    // the same cycles as with per-cycle ticking; splitting one jump in
    // two is bit-identical by the chargeIdleCycles contract.
    if (sampler_ != nullptr && !consider(sampler_->nextBoundary()))
        return;
    // kNever across the board is a wedged machine: fall back to
    // per-cycle ticking so the cycle-cap diagnostics fire exactly as
    // they would without skipping.
    if (next == kNever)
        return;

    // Jump to just before the event; the normal step executes it.
    Cycle idle = next - now - 1;
    for (const auto &cp : cores_) {
        Core &c = *cp;
        c.backend->chargeIdleCycles(now, idle);
        c.fetch->chargeIdleCycles(now, idle);
        for (auto &pf : c.prefetchers)
            pf->chargeIdleCycles(now, idle);
        c.ftq->sampleOccupancy(idle);
    }
    curCycle += idle;
    numSkipped += idle;
}

void
Simulator::stepCore(Core &c)
{
    c.mem->tick(curCycle);
    c.mmu->tick(curCycle);

    if (c.fetch->redirectPending() &&
        curCycle >= c.fetch->redirectTime()) {
        if (tracer_ != nullptr && c.id == 0)
            tracer_->instant("redirect", kTidFrontend);
        c.bpu->redirect();
        c.ftq->flush();
        c.fetch->squash();
        c.backend->squashWrongPath();
        for (auto &pf : c.prefetchers)
            pf->onRedirect(curCycle);
    }

    c.backend->tick(curCycle);
    c.fetch->tick(curCycle);
    // Translation lookahead runs ahead of the block prefetchers so a
    // warmed page is visible to this cycle's prefetch probes.
    if (c.tlbPf != nullptr)
        c.tlbPf->tick(curCycle);
    for (auto &pf : c.prefetchers)
        pf->tick(curCycle);

    if (!c.ftq->full())
        c.ftq->push(c.bpu->predictBlock());

    c.ftq->sampleOccupancy();
}

void
Simulator::step()
{
    if (!forceTick)
        skipIdleCycles();
    ++curCycle;
    if (tracer_ != nullptr)
        tracer_->setNow(curCycle);

    // Round-robin bus/L2 arbitration: the core serviced first rotates
    // every cycle, so no core gets a standing priority on the shared
    // buses. A single-core machine always starts at core 0, keeping
    // its step order exactly the classic sequence.
    std::size_t n = cores_.size();
    std::size_t first =
        n == 1 ? 0 : static_cast<std::size_t>(curCycle % n);
    for (std::size_t k = 0; k < n; ++k)
        stepCore(*cores_[(first + k) % n]);

    if (sampler_ != nullptr && sampler_->due(curCycle))
        recordSample();
    for (const auto &c : cores_)
        c->trace->retireUpTo(c->backend->committed());
}

void
Simulator::recordSample()
{
    StatSet cum;
    collectAll(cum);
    Core &c0 = *cores_.front();
    telem_->recordSample(curCycle, cum, c0.ftq->occupancyHist().count(),
                         c0.ftq->occupancyHist().weightedTotal(),
                         c0.mmu->walksQueued());
}

void
Simulator::collectCore(const Core &c, StatSet &out) const
{
    c.mem->collectStats(out, /*include_shared=*/false);
    if (c.mmu->enabled())
        c.mmu->collectStats(out);
    if (c.tlbPf != nullptr)
        out.merge(c.tlbPf->stats);
    out.merge(c.bpu->stats);
    if (c.bpu->ftb())
        out.merge(c.bpu->ftb()->stats);
    if (c.bpu->btb())
        out.merge(c.bpu->btb()->stats);
    out.merge(c.ftq->stats);
    out.merge(c.fetch->stats);
    out.merge(c.backend->stats);
    for (const auto &pf : c.prefetchers)
        out.merge(pf->stats);
}

void
Simulator::collectAll(StatSet &out) const
{
    std::uint64_t committed = 0;
    for (const auto &c : cores_) {
        collectCore(*c, out);
        committed += c->backend->committed();
    }
    shared_->collectStats(out);
    out.set("sim.cycles", static_cast<double>(curCycle));
    out.set("sim.committed", static_cast<double>(committed));
}

SimResults
Simulator::finalize(const StatSet &delta, Cycle cycles_delta,
                    std::uint64_t insts_delta, const Histogram &occ,
                    const Histogram &pft,
                    const std::string &workload_label) const
{
    SimResults r;
    r.workload = workload_label;
    r.scheme = schemeName(cfg.scheme);
    r.cycles = cycles_delta;
    r.instructions = insts_delta;
    r.ipc = cycles_delta == 0 ? 0.0
        : static_cast<double>(insts_delta) /
          static_cast<double>(cycles_delta);

    double kinsts = static_cast<double>(insts_delta) / 1000.0;
    double true_misses = delta.value("mem.demand_misses") -
        delta.value("mem.inflight_merges");
    r.mpki = kinsts > 0.0 ? true_misses / kinsts : 0.0;

    // Per-core rows carry no shared-bus counters; their utilization is
    // this core's share of the bus (the mem.*bus_busy_cycles tagged
    // counters) over the core's own window.
    double l2bus_busy = delta.has("l2bus.bus.busy_cycles")
        ? delta.value("l2bus.bus.busy_cycles")
        : delta.value("mem.l2bus_busy_cycles");
    double membus_busy = delta.has("membus.bus.busy_cycles")
        ? delta.value("membus.bus.busy_cycles")
        : delta.value("mem.membus_busy_cycles");
    r.l2BusUtil = cycles_delta == 0 ? 0.0
        : l2bus_busy / static_cast<double>(cycles_delta);
    r.memBusUtil = cycles_delta == 0 ? 0.0
        : membus_busy / static_cast<double>(cycles_delta);

    double issued = delta.value("mem.prefetches_issued");
    double useful = delta.value("pfbuf.consumed") +
        delta.value("sb.hits") +
        delta.value("mem.inflight_prefetch_merges");
    r.prefetchAccuracy = issued > 0.0 ? useful / issued : 0.0;

    double would_miss = useful + true_misses;
    r.prefetchCoverage = would_miss > 0.0 ? useful / would_miss : 0.0;

    if (issued > 0.0) {
        r.prefetchTimely = delta.value("pfattr.timely") / issued;
        r.prefetchLate = delta.value("pfattr.late") / issued;
        r.prefetchPollution = delta.value("pfattr.pollution") / issued;
    }
    r.pfTimeliness = pft;

    r.condMispredictPerKilo = kinsts > 0.0
        ? delta.value("bpu.diverge_cond") / kinsts : 0.0;

    r.ftqOccupancy = occ;
    r.stats = delta;
    return r;
}

SimResults
Simulator::run()
{
    auto host_start = std::chrono::steady_clock::now();
    double wall_limit_s =
        static_cast<double>(envUint("FDIP_SIM_TIMEOUT_S", 0));

    // Fault-injection hooks (no-ops unless FDIP_FAULT armed a fault
    // for the sweep point this thread declared via PointScope).
    FaultInjector &faults = FaultInjector::instance();
    if (faults.any()) {
        faults.maybeThrow();
        faults.maybeHang(wall_limit_s);
    }

    std::uint64_t total_insts = cfg.warmupInsts + cfg.measureInsts;
    Cycle cycle_cap = static_cast<Cycle>(
        cfg.cycleLimitPerInst * static_cast<double>(total_insts)) + 10000;

    // Watchdogs, checked once per step: the simulated-cycle ceiling
    // and wedge cap every time (cheap integer compares), the wall
    // deadline every 4096 steps (a clock read is not free).
    std::uint64_t num_steps = 0;
    auto watchdog = [&](const char *phase) {
        if (cfg.maxCycles != 0 && curCycle > cfg.maxCycles) {
            sim_timeout("simulated-cycle ceiling exceeded during %s: "
                        "cycle %llu > maxCycles %llu (%s/%s)",
                        phase,
                        static_cast<unsigned long long>(curCycle),
                        static_cast<unsigned long long>(cfg.maxCycles),
                        cfg.workload.c_str(), schemeName(cfg.scheme));
        }
        if (curCycle > cycle_cap) {
            sim_timeout("simulation wedged during %s (%s/%s)",
                        phase, cfg.workload.c_str(),
                        schemeName(cfg.scheme));
        }
        if (wall_limit_s > 0.0 && (++num_steps & 0xFFF) == 0) {
            std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - host_start;
            if (elapsed.count() > wall_limit_s) {
                sim_timeout("wall deadline of %.0f s exceeded during "
                            "%s (%s/%s)",
                            wall_limit_s, phase, cfg.workload.c_str(),
                            schemeName(cfg.scheme));
            }
        }
    };

    // Shared-component snapshots bracket the machine-wide measurement
    // window: [last core's warmup crossing, last core's finish].
    std::size_t cores_unwarmed = cores_.size();
    std::size_t cores_running = cores_.size();
    Cycle last_warmup_cycle = 0;
    Cycle last_end_cycle = 0;
    StatSet shared_at_warmup;
    StatSet shared_at_end;

    // Per-core warmup/finish crossings are checked after every step —
    // and once up front so a zero-length warmup snapshots at cycle 0
    // exactly as the classic two-loop structure did.
    auto check_crossings = [&] {
        for (const auto &cp : cores_) {
            Core &c = *cp;
            if (!c.warmed &&
                c.backend->committed() >= cfg.warmupInsts) {
                c.warmed = true;
                c.warmupCycle = curCycle;
                c.warmupInsts = c.backend->committed();
                collectCore(c, c.atWarmup);
                c.ftq->resetOccupancy();
                // The timeliness histogram restarts with the
                // measurement window, matching the counter deltas it
                // sits beside.
                c.mem->prefetchAttribution().resetHist();
                if (--cores_unwarmed == 0) {
                    shared_->collectStats(shared_at_warmup);
                    last_warmup_cycle = curCycle;
                    if (telem_ != nullptr)
                        telem_->rebaselineOccupancy();
                }
            }
            if (!c.finished &&
                c.backend->committed() >= total_insts) {
                c.finished = true;
                c.endCycle = curCycle;
                c.endInsts = c.backend->committed();
                collectCore(c, c.atEnd);
                c.occAtEnd = c.ftq->occupancyHist();
                c.pftAtEnd =
                    c.mem->prefetchAttribution().timelinessHist();
                if (--cores_running == 0) {
                    shared_->collectStats(shared_at_end);
                    last_end_cycle = curCycle;
                }
            }
        }
    };

    check_crossings();
    while (cores_running > 0) {
        const char *phase =
            cores_unwarmed > 0 ? "warmup" : "measurement";
        step();
        check_crossings();
        watchdog(phase);
    }

    // Aggregate row: every core's own-window delta summed, plus the
    // shared components' delta over the machine window. Per-core stats
    // therefore sum exactly to the aggregate values.
    StatSet agg = StatSet::subtract(shared_at_end, shared_at_warmup);
    std::uint64_t agg_insts = 0;
    std::vector<const Histogram *> occs;
    std::vector<const Histogram *> pfts;
    for (const auto &cp : cores_) {
        Core &c = *cp;
        agg.merge(StatSet::subtract(c.atEnd, c.atWarmup));
        agg_insts += c.endInsts - c.warmupInsts;
        occs.push_back(&c.occAtEnd);
        pfts.push_back(&c.pftAtEnd);
    }
    Cycle agg_cycles = last_end_cycle - last_warmup_cycle;
    agg.set("sim.cycles", static_cast<double>(agg_cycles));
    agg.set("sim.committed", static_cast<double>(agg_insts));

    SimResults r = finalize(agg, agg_cycles, agg_insts,
                            sumHistograms(occs), sumHistograms(pfts),
                            cfg.workload);

    // Per-core rows only on a multi-core machine: a single-core
    // result stays byte-identical to the pre-multicore format.
    if (cores_.size() > 1) {
        for (const auto &cp : cores_) {
            Core &c = *cp;
            StatSet d = StatSet::subtract(c.atEnd, c.atWarmup);
            Cycle cyc = c.endCycle - c.warmupCycle;
            std::uint64_t insts = c.endInsts - c.warmupInsts;
            d.set("sim.cycles", static_cast<double>(cyc));
            d.set("sim.committed", static_cast<double>(insts));
            r.perCore.push_back(finalize(d, cyc, insts, c.occAtEnd,
                                         c.pftAtEnd, c.workload));
        }
    }

    std::chrono::duration<double> host_elapsed =
        std::chrono::steady_clock::now() - host_start;
    r.hostSeconds = host_elapsed.count();
    if (r.hostSeconds > 0.0) {
        r.hostKcyclesPerSec = static_cast<double>(curCycle) /
            r.hostSeconds / 1000.0;
    }
    r.skippedCycles = numSkipped;
    r.totalCycles = curCycle;
    if (telem_ != nullptr)
        telem_->flush();
    return r;
}

} // namespace fdip
