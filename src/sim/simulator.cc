#include "sim/simulator.hh"

#include <chrono>
#include <cstdlib>
#include <limits>

#include "common/env.hh"
#include "common/error.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "obs/telemetry.hh"
#include "trace/champsim.hh"
#include "trace/profile.hh"
#include "vm/tlb_prefetcher.hh"

namespace fdip
{

namespace
{

/** FDIP_NO_SKIP=1 (anything but "" / "0") forces per-cycle ticking. */
bool
envForceTick()
{
    const char *env = std::getenv("FDIP_NO_SKIP");
    if (env == nullptr || env[0] == '\0')
        return false;
    return !(env[0] == '0' && env[1] == '\0');
}

} // namespace

double
speedupOver(const SimResults &baseline, const SimResults &other)
{
    // Degenerate baselines (wedged or zero-length runs) yield NaN so
    // sweep harnesses can tolerate and report them instead of dying.
    if (baseline.ipc <= 0.0)
        return std::numeric_limits<double>::quiet_NaN();
    return other.ipc / baseline.ipc - 1.0;
}

Simulator::Simulator(const SimConfig &config)
    : cfg(config)
{
    cfg.validate();

    Addr trace_code_base = 0;
    Addr trace_code_end = 0;
    if (!cfg.tracePath.empty()) {
        auto src = openTraceWorkload(cfg.tracePath);
        trace_code_base = src->codeBase();
        trace_code_end = src->codeEnd();
        exec = std::move(src);
    } else {
        WorkloadProfile profile = cfg.customProfile
            ? *cfg.customProfile
            : findProfile(cfg.workload);
        profile.seed += cfg.seedOffset;
        prog = buildProgram(profile);
        image = std::make_unique<CodeImage>(*prog);
        exec = std::make_unique<SyntheticExecutor>(*prog, profile);
    }
    // Fast-forward happens before any component sees the stream, so
    // skip-N positions the region of interest identically for trace
    // and synthetic sources.
    for (std::uint64_t i = 0; i < cfg.skipInsts; ++i)
        exec->next();
    trace = std::make_unique<TraceWindow>(*exec);

    std::unique_ptr<BtbIface> custom_btb;
    if (cfg.usePartitionedBtb)
        custom_btb = std::make_unique<PartitionedBtb>(cfg.pbtb);
    bpu_ = std::make_unique<Bpu>(*trace, cfg.bpu, std::move(custom_btb));

    mmu_ = cfg.tracePath.empty()
        ? std::make_unique<Mmu>(cfg.vm, *prog)
        : std::make_unique<Mmu>(cfg.vm, trace_code_base, trace_code_end);
    mem_ = std::make_unique<MemHierarchy>(cfg.mem);
    mem_->setMaxOutstandingPrefetches(cfg.maxOutstandingPrefetches);
    ftq_ = std::make_unique<Ftq>(cfg.ftqEntries,
                                 cfg.mem.l1i.blockBytes);
    backend_ = std::make_unique<Backend>(cfg.backend);
    fetch_ = std::make_unique<FetchEngine>(*ftq_, *mem_, *backend_,
                                           cfg.fetch);
    fetch_->setMmu(mmu_.get());

    if (cfg.vm.enable && cfg.vm.tlbPrefetch) {
        tlbPf_ = std::make_unique<TlbPrefetcher>(
            *ftq_, *mmu_,
            TlbPrefetcher::Config{cfg.vm.tlbPrefetchWidth,
                                  cfg.vm.tlbPrefetchFilterEntries});
    }

    switch (cfg.scheme) {
      case PrefetchScheme::None:
        break;
      case PrefetchScheme::Nlp:
        prefetchers.push_back(
            std::make_unique<NlpPrefetcher>(*mem_, cfg.nlp));
        break;
      case PrefetchScheme::StreamBuffer:
        prefetchers.push_back(
            std::make_unique<StreamBufferPrefetcher>(*mem_, cfg.sb));
        break;
      case PrefetchScheme::Oracle:
        prefetchers.push_back(std::make_unique<OraclePrefetcher>(
            *trace, *bpu_, *mem_, cfg.oracle));
        break;
      case PrefetchScheme::FdpNone:
      case PrefetchScheme::FdpEnqueue:
      case PrefetchScheme::FdpEnqueueAggressive:
      case PrefetchScheme::FdpRemove:
      case PrefetchScheme::FdpIdeal: {
        FdpPrefetcher::Config fc = cfg.fdp;
        if (cfg.scheme == PrefetchScheme::FdpNone)
            fc.mode = CpfMode::None;
        else if (cfg.scheme == PrefetchScheme::FdpEnqueue)
            fc.mode = CpfMode::Enqueue;
        else if (cfg.scheme == PrefetchScheme::FdpEnqueueAggressive)
            fc.mode = CpfMode::EnqueueAggressive;
        else if (cfg.scheme == PrefetchScheme::FdpRemove)
            fc.mode = CpfMode::Remove;
        else
            fc.mode = CpfMode::Ideal;
        prefetchers.push_back(
            std::make_unique<FdpPrefetcher>(*ftq_, *mem_, fc));
        if (cfg.combineNlp) {
            prefetchers.push_back(
                std::make_unique<NlpPrefetcher>(*mem_, cfg.nlp));
        }
        break;
      }
    }

    for (auto &pf : prefetchers) {
        pf->setMmu(mmu_.get());
        fetch_->addPrefetcher(pf.get());
    }

    forceTick = cfg.forceTick || envForceTick();

    ObsConfig obs = cfg.obs;
    obs.applyEnv();
    if (obs.enabled()) {
        telem_ = std::make_unique<Telemetry>(obs, cfg.workload,
                                             schemeName(cfg.scheme));
        tracer_ = telem_->tracer();
        sampler_ = telem_->sampler();
        if (tracer_ != nullptr) {
            ftq_->setTracer(tracer_);
            mmu_->setTracer(tracer_);
            mem_->setTracer(tracer_);
        }
    }
}

Simulator::~Simulator() = default;

void
Simulator::skipIdleCycles()
{
    // The BPU delivers a prediction every cycle the FTQ has room, so
    // the frontier only freezes once the FTQ is full.
    if (!ftq_->full())
        return;

    // Gather the minimum next-event cycle, cheapest components first;
    // anything due next cycle ends the attempt immediately.
    Cycle now = curCycle;
    Cycle next = fetch_->nextEventCycle(now);
    auto consider = [&next, now](Cycle ev) {
        if (ev < next)
            next = ev;
        return next > now + 1;
    };
    if (next <= now + 1 ||
        !consider(backend_->nextEventCycle(now)) ||
        !consider(bpu_->nextEventCycle(now)) ||
        !consider(ftq_->nextEventCycle(now)) ||
        !consider(mmu_->nextEventCycle(now)) ||
        !consider(mem_->nextEventCycle(now)) ||
        (tlbPf_ != nullptr &&
         !consider(tlbPf_->nextEventCycle(now)))) {
        return;
    }
    for (auto &pf : prefetchers) {
        if (!consider(pf->nextEventCycle(now)))
            return;
    }
    // Sample boundaries cap a jump so interval rows land at exactly
    // the same cycles as with per-cycle ticking; splitting one jump in
    // two is bit-identical by the chargeIdleCycles contract.
    if (sampler_ != nullptr && !consider(sampler_->nextBoundary()))
        return;
    // kNever across the board is a wedged machine: fall back to
    // per-cycle ticking so the cycle-cap diagnostics fire exactly as
    // they would without skipping.
    if (next == kNever)
        return;

    // Jump to just before the event; the normal step executes it.
    Cycle idle = next - now - 1;
    backend_->chargeIdleCycles(now, idle);
    fetch_->chargeIdleCycles(now, idle);
    for (auto &pf : prefetchers)
        pf->chargeIdleCycles(now, idle);
    ftq_->sampleOccupancy(idle);
    curCycle += idle;
    numSkipped += idle;
}

void
Simulator::step()
{
    if (!forceTick)
        skipIdleCycles();
    ++curCycle;
    if (tracer_ != nullptr)
        tracer_->setNow(curCycle);
    mem_->tick(curCycle);
    mmu_->tick(curCycle);

    if (fetch_->redirectPending() &&
        curCycle >= fetch_->redirectTime()) {
        if (tracer_ != nullptr)
            tracer_->instant("redirect", kTidFrontend);
        bpu_->redirect();
        ftq_->flush();
        fetch_->squash();
        backend_->squashWrongPath();
        for (auto &pf : prefetchers)
            pf->onRedirect(curCycle);
    }

    backend_->tick(curCycle);
    fetch_->tick(curCycle);
    // Translation lookahead runs ahead of the block prefetchers so a
    // warmed page is visible to this cycle's prefetch probes.
    if (tlbPf_ != nullptr)
        tlbPf_->tick(curCycle);
    for (auto &pf : prefetchers)
        pf->tick(curCycle);

    if (!ftq_->full())
        ftq_->push(bpu_->predictBlock());

    ftq_->sampleOccupancy();
    if (sampler_ != nullptr && sampler_->due(curCycle))
        recordSample();
    trace->retireUpTo(backend_->committed());
}

void
Simulator::recordSample()
{
    StatSet cum;
    collectAll(cum);
    telem_->recordSample(curCycle, cum, ftq_->occupancyHist().count(),
                         ftq_->occupancyHist().weightedTotal(),
                         mmu_->walksQueued());
}

void
Simulator::collectAll(StatSet &out) const
{
    mem_->collectStats(out);
    if (mmu_->enabled())
        mmu_->collectStats(out);
    if (tlbPf_ != nullptr)
        out.merge(tlbPf_->stats);
    out.merge(bpu_->stats);
    if (bpu_->ftb())
        out.merge(bpu_->ftb()->stats);
    if (bpu_->btb())
        out.merge(bpu_->btb()->stats);
    out.merge(ftq_->stats);
    out.merge(fetch_->stats);
    out.merge(backend_->stats);
    for (const auto &pf : prefetchers) {
        out.merge(pf->stats);
    }
    out.set("sim.cycles", static_cast<double>(curCycle));
    out.set("sim.committed", static_cast<double>(backend_->committed()));
}

SimResults
Simulator::finalize(const StatSet &delta, Cycle cycles_delta,
                    std::uint64_t insts_delta) const
{
    SimResults r;
    r.workload = cfg.workload;
    r.scheme = schemeName(cfg.scheme);
    r.cycles = cycles_delta;
    r.instructions = insts_delta;
    r.ipc = cycles_delta == 0 ? 0.0
        : static_cast<double>(insts_delta) /
          static_cast<double>(cycles_delta);

    double kinsts = static_cast<double>(insts_delta) / 1000.0;
    double true_misses = delta.value("mem.demand_misses") -
        delta.value("mem.inflight_merges");
    r.mpki = kinsts > 0.0 ? true_misses / kinsts : 0.0;

    r.l2BusUtil = cycles_delta == 0 ? 0.0
        : delta.value("l2bus.bus.busy_cycles") /
          static_cast<double>(cycles_delta);
    r.memBusUtil = cycles_delta == 0 ? 0.0
        : delta.value("membus.bus.busy_cycles") /
          static_cast<double>(cycles_delta);

    double issued = delta.value("mem.prefetches_issued");
    double useful = delta.value("pfbuf.consumed") +
        delta.value("sb.hits") +
        delta.value("mem.inflight_prefetch_merges");
    r.prefetchAccuracy = issued > 0.0 ? useful / issued : 0.0;

    double would_miss = useful + true_misses;
    r.prefetchCoverage = would_miss > 0.0 ? useful / would_miss : 0.0;

    if (issued > 0.0) {
        r.prefetchTimely = delta.value("pfattr.timely") / issued;
        r.prefetchLate = delta.value("pfattr.late") / issued;
        r.prefetchPollution = delta.value("pfattr.pollution") / issued;
    }
    r.pfTimeliness = mem_->prefetchAttribution().timelinessHist();

    r.condMispredictPerKilo = kinsts > 0.0
        ? delta.value("bpu.diverge_cond") / kinsts : 0.0;

    r.ftqOccupancy = ftq_->occupancyHist();
    r.stats = delta;
    return r;
}

SimResults
Simulator::run()
{
    auto host_start = std::chrono::steady_clock::now();
    double wall_limit_s =
        static_cast<double>(envUint("FDIP_SIM_TIMEOUT_S", 0));

    // Fault-injection hooks (no-ops unless FDIP_FAULT armed a fault
    // for the sweep point this thread declared via PointScope).
    FaultInjector &faults = FaultInjector::instance();
    if (faults.any()) {
        faults.maybeThrow();
        faults.maybeHang(wall_limit_s);
    }

    std::uint64_t total_insts = cfg.warmupInsts + cfg.measureInsts;
    Cycle cycle_cap = static_cast<Cycle>(
        cfg.cycleLimitPerInst * static_cast<double>(total_insts)) + 10000;

    // Watchdogs, checked once per step: the simulated-cycle ceiling
    // and wedge cap every time (cheap integer compares), the wall
    // deadline every 4096 steps (a clock read is not free).
    std::uint64_t num_steps = 0;
    auto watchdog = [&](const char *phase) {
        if (cfg.maxCycles != 0 && curCycle > cfg.maxCycles) {
            sim_timeout("simulated-cycle ceiling exceeded during %s: "
                        "cycle %llu > maxCycles %llu (%s/%s)",
                        phase,
                        static_cast<unsigned long long>(curCycle),
                        static_cast<unsigned long long>(cfg.maxCycles),
                        cfg.workload.c_str(), schemeName(cfg.scheme));
        }
        if (curCycle > cycle_cap) {
            sim_timeout("simulation wedged during %s (%s/%s)",
                        phase, cfg.workload.c_str(),
                        schemeName(cfg.scheme));
        }
        if (wall_limit_s > 0.0 && (++num_steps & 0xFFF) == 0) {
            std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - host_start;
            if (elapsed.count() > wall_limit_s) {
                sim_timeout("wall deadline of %.0f s exceeded during "
                            "%s (%s/%s)",
                            wall_limit_s, phase, cfg.workload.c_str(),
                            schemeName(cfg.scheme));
            }
        }
    };

    // Warmup window.
    while (backend_->committed() < cfg.warmupInsts) {
        step();
        watchdog("warmup");
    }

    StatSet at_warmup;
    collectAll(at_warmup);
    Cycle warmup_cycles = curCycle;
    std::uint64_t warmup_insts = backend_->committed();
    ftq_->resetOccupancy();
    // The timeliness histogram restarts with the measurement window,
    // matching the counter deltas it sits beside.
    mem_->prefetchAttribution().resetHist();
    if (telem_ != nullptr)
        telem_->rebaselineOccupancy();

    // Measurement window.
    while (backend_->committed() < total_insts) {
        step();
        watchdog("measurement");
    }

    StatSet at_end;
    collectAll(at_end);
    StatSet delta = StatSet::subtract(at_end, at_warmup);
    SimResults r = finalize(delta, curCycle - warmup_cycles,
                            backend_->committed() - warmup_insts);

    std::chrono::duration<double> host_elapsed =
        std::chrono::steady_clock::now() - host_start;
    r.hostSeconds = host_elapsed.count();
    if (r.hostSeconds > 0.0) {
        r.hostKcyclesPerSec = static_cast<double>(curCycle) /
            r.hostSeconds / 1000.0;
    }
    r.skippedCycles = numSkipped;
    r.totalCycles = curCycle;
    if (telem_ != nullptr)
        telem_->flush();
    return r;
}

} // namespace fdip
