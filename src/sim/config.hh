/**
 * @file config.hh
 * Top-level simulation configuration: workload, front-end geometry,
 * memory hierarchy, prefetch scheme, and run lengths.
 */

#ifndef FDIP_SIM_CONFIG_HH
#define FDIP_SIM_CONFIG_HH

#include <optional>
#include <string>
#include <vector>

#include "bpu/bpu.hh"
#include "bpu/partitioned_btb.hh"
#include "core/backend.hh"
#include "frontend/fetch_engine.hh"
#include "mem/hierarchy.hh"
#include "obs/telemetry.hh"
#include "prefetch/fdp.hh"
#include "prefetch/mana.hh"
#include "prefetch/nlp.hh"
#include "prefetch/oracle.hh"
#include "prefetch/shadow_btb.hh"
#include "prefetch/stream_buffer.hh"
#include "vm/mmu.hh"

namespace fdip
{

/** The prefetching schemes the MICRO-32 evaluation compares, plus the
 *  competitor zoo (docs/PREFETCHERS.md). */
enum class PrefetchScheme
{
    None,         ///< no-prefetch baseline
    Nlp,          ///< tagged next-line prefetching
    StreamBuffer, ///< Jouppi streaming buffers
    FdpNone,      ///< fetch-directed, no filtering
    FdpEnqueue,   ///< fetch-directed, enqueue cache-probe filtering
    FdpEnqueueAggressive, ///< enqueue CPF, unprobed on port shortage
    FdpRemove,    ///< fetch-directed, remove cache-probe filtering
    FdpIdeal,     ///< fetch-directed, ideal cache-probe filtering
    Oracle,       ///< perfect-address prefetcher (upper bound)
    Mana,         ///< MANA-style record/replay of region footprints
    ShadowBtb,    ///< shadow-branch decode pre-filling the BTB/FTB
};

const char *schemeName(PrefetchScheme scheme);
bool schemeIsFdp(PrefetchScheme scheme);

/**
 * Every registered scheme, in enum order. This is the registry the
 * conformance battery (tests/test_scheme_conformance.cc) and the
 * tick-skip differential matrix iterate; a scheme missing from it
 * escapes both, so additions here are mandatory, not optional.
 */
const std::vector<PrefetchScheme> &allPrefetchSchemes();

struct SimConfig
{
    std::string workload = "gcc";
    /**
     * When set, this profile is simulated instead of looking
     * @c workload up in the built-in suite (the name is then only a
     * label). This is the hook for user-defined workloads.
     */
    std::optional<WorkloadProfile> customProfile;
    /**
     * When non-empty, the workload is replayed from this trace file
     * (native v1/v2 via TraceFileReader, or ChampSim format via
     * ChampSimTraceReader — dispatched on extension) instead of the
     * synthetic executor; @c workload is then only a label. See
     * docs/TRACES.md.
     */
    std::string tracePath;
    /**
     * Fast-forward: discard this many instructions from the source
     * before the warmup phase begins (trace positioning into a region
     * of interest; also honored for synthetic workloads).
     */
    std::uint64_t skipInsts = 0;
    std::uint64_t warmupInsts = 300 * 1000;
    std::uint64_t measureInsts = 1000 * 1000;
    std::uint64_t seedOffset = 0; ///< extra seed entropy for replicates

    /**
     * Number of cores sharing one L2/bus/DRAM (docs/MULTICORE.md).
     * Each core gets a private frontend (BPU/FTQ/fetch/backend/MMU +
     * prefetchers) and a private L1-I; 1 is the classic single-core
     * machine and is bit-identical to the pre-multicore simulator.
     */
    unsigned numCores = 1;
    /**
     * Per-core workload labels for heterogeneous mixes. Empty (the
     * default) runs @c workload on every core; otherwise it must name
     * exactly numCores workloads, each either a built-in profile name
     * or "trace:<path>". Per-core seeds are offset by the core id so
     * homogeneous cores still execute distinct instruction streams.
     * customProfile is honored only when this is empty.
     */
    std::vector<std::string> coreWorkloads;

    std::size_t ftqEntries = 32;
    FetchEngine::Config fetch;
    BpuConfig bpu;
    Backend::Config backend;
    MemConfig mem;
    unsigned maxOutstandingPrefetches = 8;

    /** Virtual memory: ITLB, page table, prefetch-translation policy. */
    VmConfig vm;

    PrefetchScheme scheme = PrefetchScheme::None;
    FdpPrefetcher::Config fdp;
    NlpPrefetcher::Config nlp;
    StreamBufferPrefetcher::Config sb;
    OraclePrefetcher::Config oracle;
    ManaPrefetcher::Config mana;
    ShadowBtbPrefetcher::Config shadow;
    /** Run NLP alongside FDP (combined scheme). */
    bool combineNlp = false;

    /** Extension: conventional front-end with a partitioned BTB. */
    bool usePartitionedBtb = false;
    PartitionedBtb::Config pbtb;

    /** Abort if a run exceeds this many cycles per instruction. */
    double cycleLimitPerInst = 300.0;

    /**
     * Watchdog: hard ceiling on total simulated cycles (warmup +
     * measurement together); 0 = no ceiling beyond cycleLimitPerInst.
     * Exceeding it raises SimTimeout under FDIP_FATAL=throw (so a
     * sweep renders the point as TIMEOUT) or exits the process.
     */
    std::uint64_t maxCycles = 0;

    /**
     * Escape hatch for differential testing: tick every cycle even
     * when the whole machine is quiescent, instead of jumping to the
     * next event. The FDIP_NO_SKIP=1 environment variable forces this
     * process-wide. Skipping is bit-identical to forced ticking by
     * contract (see tests/test_tick_skip.cc), so this only trades
     * host time.
     */
    bool forceTick = false;

    /**
     * Passive observability (interval sampling, event tracing). The
     * FDIP_SAMPLES / FDIP_TRACE environment variables overlay these at
     * Simulator construction. Deliberately EXCLUDED from fingerprint():
     * telemetry never affects simulated behaviour (see the parity
     * tests in tests/test_obs.cc), so it must not invalidate result
     * caches.
     */
    ObsConfig obs;

    /**
     * Order-independent hash of every knob that affects simulated
     * behaviour. Two configs with equal fingerprints simulate
     * identically; the Runner uses this to refuse memo-key reuse
     * across different configs.
     */
    std::uint64_t fingerprint() const;

    void validate() const;
};

} // namespace fdip

#endif // FDIP_SIM_CONFIG_HH
