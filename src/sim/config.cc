#include "sim/config.hh"

#include "common/logging.hh"

namespace fdip
{

const char *
schemeName(PrefetchScheme scheme)
{
    switch (scheme) {
      case PrefetchScheme::None: return "none";
      case PrefetchScheme::Nlp: return "nlp";
      case PrefetchScheme::StreamBuffer: return "stream";
      case PrefetchScheme::FdpNone: return "fdp-nofilter";
      case PrefetchScheme::FdpEnqueue: return "fdp-enqueue";
      case PrefetchScheme::FdpEnqueueAggressive:
        return "fdp-enqueue-aggr";
      case PrefetchScheme::FdpRemove: return "fdp-remove";
      case PrefetchScheme::FdpIdeal: return "fdp-ideal";
      case PrefetchScheme::Oracle: return "oracle";
    }
    return "?";
}

bool
schemeIsFdp(PrefetchScheme scheme)
{
    return scheme == PrefetchScheme::FdpNone ||
        scheme == PrefetchScheme::FdpEnqueue ||
        scheme == PrefetchScheme::FdpEnqueueAggressive ||
        scheme == PrefetchScheme::FdpRemove ||
        scheme == PrefetchScheme::FdpIdeal;
}

void
SimConfig::validate() const
{
    fatal_if(measureInsts == 0, "measureInsts must be nonzero");
    fatal_if(ftqEntries == 0, "FTQ needs at least one entry");
    fatal_if(bpu.maxBlockInsts == 0, "fetch block size must be nonzero");
    fatal_if(cycleLimitPerInst <= 1.0, "cycle limit too low to finish");
    fatal_if(usePartitionedBtb && bpu.blockBased,
             "partitioned BTB requires the conventional (non-FTB) "
             "front-end");
}

} // namespace fdip
