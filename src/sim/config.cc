#include "sim/config.hh"

#include <cstring>

#include "common/fnv.hh"
#include "common/intmath.hh"
#include "common/logging.hh"

namespace fdip
{

namespace
{

void
hashCache(Fnv1a &f, const Cache::Config &c)
{
    f.s(c.name);
    f.u64(c.sizeBytes);
    f.u64(c.assoc);
    f.u64(c.blockBytes);
    f.u64(static_cast<std::uint64_t>(c.repl));
}

void
hashProfile(Fnv1a &f, const WorkloadProfile &p)
{
    f.s(p.name);
    f.u64(p.seed);
    f.u64(p.codeFootprintBytes);
    f.d(p.meanBlockInsts);
    f.d(p.meanBlocksPerFn);
    f.u64(p.callLevels);
    f.d(p.calleeZipf);
    f.d(p.wCond);
    f.d(p.wJump);
    f.d(p.wCall);
    f.d(p.wIndCall);
    f.d(p.wFallthrough);
    f.d(p.loopFraction);
    f.d(p.meanTripCount);
    f.d(p.patternFraction);
    f.d(p.biasLo);
    f.d(p.biasHi);
    f.u64(p.phaseLen);
    f.u64(p.dispatcherSites);
}

} // namespace

const char *
schemeName(PrefetchScheme scheme)
{
    switch (scheme) {
      case PrefetchScheme::None: return "none";
      case PrefetchScheme::Nlp: return "nlp";
      case PrefetchScheme::StreamBuffer: return "stream";
      case PrefetchScheme::FdpNone: return "fdp-nofilter";
      case PrefetchScheme::FdpEnqueue: return "fdp-enqueue";
      case PrefetchScheme::FdpEnqueueAggressive:
        return "fdp-enqueue-aggr";
      case PrefetchScheme::FdpRemove: return "fdp-remove";
      case PrefetchScheme::FdpIdeal: return "fdp-ideal";
      case PrefetchScheme::Oracle: return "oracle";
      case PrefetchScheme::Mana: return "mana";
      case PrefetchScheme::ShadowBtb: return "shadow-btb";
    }
    return "?";
}

const std::vector<PrefetchScheme> &
allPrefetchSchemes()
{
    static const std::vector<PrefetchScheme> all = {
        PrefetchScheme::None,
        PrefetchScheme::Nlp,
        PrefetchScheme::StreamBuffer,
        PrefetchScheme::FdpNone,
        PrefetchScheme::FdpEnqueue,
        PrefetchScheme::FdpEnqueueAggressive,
        PrefetchScheme::FdpRemove,
        PrefetchScheme::FdpIdeal,
        PrefetchScheme::Oracle,
        PrefetchScheme::Mana,
        PrefetchScheme::ShadowBtb,
    };
    return all;
}

bool
schemeIsFdp(PrefetchScheme scheme)
{
    return scheme == PrefetchScheme::FdpNone ||
        scheme == PrefetchScheme::FdpEnqueue ||
        scheme == PrefetchScheme::FdpEnqueueAggressive ||
        scheme == PrefetchScheme::FdpRemove ||
        scheme == PrefetchScheme::FdpIdeal;
}

std::uint64_t
SimConfig::fingerprint() const
{
    Fnv1a f;
    f.s(workload);
    f.b(customProfile.has_value());
    if (customProfile)
        hashProfile(f, *customProfile);
    f.s(tracePath);
    f.u64(skipInsts);
    f.u64(warmupInsts);
    f.u64(measureInsts);
    f.u64(seedOffset);
    f.u64(numCores);
    f.u64(coreWorkloads.size());
    for (const auto &w : coreWorkloads)
        f.s(w);
    f.u64(ftqEntries);

    f.u64(fetch.fetchWidth);
    f.u64(fetch.decodeRedirectLatency);
    f.u64(fetch.resolveRedirectLatency);

    f.b(bpu.blockBased);
    f.u64(static_cast<std::uint64_t>(bpu.predictor));
    f.u64(bpu.maxBlockInsts);
    f.u64(bpu.rasDepth);
    f.u64(bpu.ftb.sets);
    f.u64(bpu.ftb.ways);
    f.u64(bpu.ftb.vaBits);
    f.u64(bpu.ftb.maxBlockInsts);
    f.u64(bpu.btb.sets);
    f.u64(bpu.btb.ways);
    f.u64(bpu.btb.tagBits);
    f.u64(bpu.btb.offsetBits);
    f.u64(bpu.btb.vaBits);
    f.u64(bpu.gshareEntries);
    f.u64(bpu.historyBits);
    f.u64(bpu.bimodalEntries);
    f.u64(bpu.chooserEntries);

    f.u64(backend.retireWidth);
    f.u64(backend.queueDepth);

    hashCache(f, mem.l1i);
    f.u64(mem.l1TagPorts);
    f.u64(mem.l1HitLatency);
    hashCache(f, mem.l2);
    f.u64(mem.l2HitLatency);
    f.u64(mem.dramLatency);
    f.u64(mem.l2BusBytesPerCycle);
    f.u64(mem.memBusBytesPerCycle);
    f.u64(mem.mshrs);
    f.u64(mem.prefetchBufferEntries);
    f.u64(mem.victimCacheEntries);
    f.b(mem.prefetchMayQueueOnBus);
    f.u64(maxOutstandingPrefetches);

    f.b(vm.enable);
    f.u64(vm.pageBytes);
    f.u64(vm.itlbEntries);
    f.u64(vm.itlbAssoc);
    f.u64(vm.walkLatency);
    f.u64(static_cast<std::uint64_t>(vm.prefetchPolicy));
    f.u64(static_cast<std::uint64_t>(vm.mapping));
    f.u64(vm.mapSeed);
    f.u64(vm.l2TlbEntries);
    f.u64(vm.l2TlbAssoc);
    f.u64(vm.l2TlbLatency);
    f.u64(vm.numWalkers);
    f.b(vm.tlbPrefetch);
    f.u64(vm.tlbPrefetchWidth);
    f.u64(vm.tlbPrefetchFilterEntries);

    f.u64(static_cast<std::uint64_t>(scheme));
    f.u64(static_cast<std::uint64_t>(fdp.mode));
    f.u64(fdp.piqEntries);
    f.u64(fdp.scanWidth);
    f.u64(fdp.issueWidth);
    f.u64(fdp.recentFilterEntries);
    f.b(fdp.flushPiqOnRedirect);
    f.b(fdp.fillIntoL1);
    f.u64(nlp.degree);
    f.u64(nlp.queueEntries);
    f.b(nlp.fillIntoL1);
    f.u64(sb.numBuffers);
    f.u64(sb.depth);
    f.b(sb.allocationFilter);
    f.u64(sb.missHistoryEntries);
    f.u64(oracle.lookaheadInsts);
    f.u64(oracle.scanWidth);
    f.u64(oracle.issueWidth);
    f.u64(oracle.recentFilterEntries);
    f.u64(mana.regionBlocks);
    f.u64(mana.tableSets);
    f.u64(mana.tableWays);
    f.u64(mana.queueEntries);
    f.u64(mana.chainLength);
    f.b(mana.fillIntoL1);
    f.u64(mana.vaBits);
    f.u64(shadow.scanWidth);
    f.u64(shadow.queueEntries);
    f.u64(shadow.recentFilterEntries);
    f.u64(shadow.bogusNoiseDenom);
    f.b(combineNlp);

    f.b(usePartitionedBtb);
    f.u64(pbtb.partitions.size());
    for (const auto &part : pbtb.partitions) {
        f.u64(part.offsetBits);
        f.u64(part.sets);
        f.u64(part.ways);
    }
    f.u64(pbtb.tagBits);
    f.u64(pbtb.vaBits);

    f.d(cycleLimitPerInst);
    f.u64(maxCycles);
    // forceTick is excluded: it changes host behaviour only, never
    // simulated results (enforced by the tick-skip parity tests).
    return f.h;
}

void
SimConfig::validate() const
{
    fatal_if(measureInsts == 0, "measureInsts must be nonzero");
    fatal_if(numCores == 0, "numCores must be at least 1");
    fatal_if(numCores > 64, "numCores out of range (max 64)");
    fatal_if(!coreWorkloads.empty() &&
                 coreWorkloads.size() != numCores,
             "coreWorkloads must name exactly numCores workloads");
    fatal_if(ftqEntries == 0, "FTQ needs at least one entry");
    fatal_if(bpu.maxBlockInsts == 0, "fetch block size must be nonzero");
    fatal_if(cycleLimitPerInst <= 1.0, "cycle limit too low to finish");
    fatal_if(usePartitionedBtb && bpu.blockBased,
             "partitioned BTB requires the conventional (non-FTB) "
             "front-end");
    fatal_if(mana.regionBlocks == 0 || mana.regionBlocks > 64 ||
                 !isPowerOf2(mana.regionBlocks),
             "MANA region size must be a power-of-two block count "
             "<= 64");
    fatal_if(!isPowerOf2(mana.tableSets),
             "MANA table set count must be a power of two");
    fatal_if(mana.tableWays == 0, "MANA table needs at least one way");
    fatal_if(mana.queueEntries == 0,
             "MANA replay queue needs at least one entry");
    fatal_if(mana.chainLength == 0,
             "MANA chain length must be at least 1");
    fatal_if(shadow.scanWidth == 0,
             "shadow-btb scan width must be nonzero");
    fatal_if(shadow.queueEntries == 0,
             "shadow-btb scan queue needs at least one entry");
    // VM knobs are checked even with vm.enable off: the simulator
    // builds the MMU (page table + ITLB) unconditionally.
    fatal_if(!isPowerOf2(vm.pageBytes),
             "VM page size must be a power of two");
    fatal_if(vm.pageBytes < mem.l1i.blockBytes,
             "VM pages must be at least one cache block");
    fatal_if(vm.itlbEntries == 0, "ITLB needs at least one entry");
    fatal_if(vm.itlbAssoc == 0 || vm.itlbEntries % vm.itlbAssoc != 0,
             "ITLB entries must divide evenly into ways");
    fatal_if(!isPowerOf2(vm.itlbEntries / vm.itlbAssoc),
             "ITLB set count must be a power of two");
    fatal_if(vm.walkLatency == 0, "page-walk latency must be nonzero");
    fatal_if(vm.walkLatency > 10000,
             "page-walk latency implausibly high");
    if (vm.l2TlbEntries > 0) {
        fatal_if(vm.l2TlbAssoc == 0 ||
                     vm.l2TlbEntries % vm.l2TlbAssoc != 0,
                 "L2 TLB entries must divide evenly into ways");
        fatal_if(!isPowerOf2(vm.l2TlbEntries / vm.l2TlbAssoc),
                 "L2 TLB set count must be a power of two");
        fatal_if(vm.l2TlbLatency == 0,
                 "L2 TLB hit latency must be nonzero");
        fatal_if(vm.l2TlbLatency >= vm.walkLatency,
                 "L2 TLB hit latency must beat a full page walk");
    }
    fatal_if(vm.numWalkers > 64, "walker count implausibly high");
    if (vm.tlbPrefetch) {
        fatal_if(vm.tlbPrefetchWidth == 0,
                 "TLB-prefetch width must be nonzero");
        fatal_if(vm.tlbPrefetchFilterEntries == 0,
                 "TLB-prefetch filter needs at least one entry");
    }
}

} // namespace fdip
