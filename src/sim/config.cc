#include "sim/config.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace fdip
{

const char *
schemeName(PrefetchScheme scheme)
{
    switch (scheme) {
      case PrefetchScheme::None: return "none";
      case PrefetchScheme::Nlp: return "nlp";
      case PrefetchScheme::StreamBuffer: return "stream";
      case PrefetchScheme::FdpNone: return "fdp-nofilter";
      case PrefetchScheme::FdpEnqueue: return "fdp-enqueue";
      case PrefetchScheme::FdpEnqueueAggressive:
        return "fdp-enqueue-aggr";
      case PrefetchScheme::FdpRemove: return "fdp-remove";
      case PrefetchScheme::FdpIdeal: return "fdp-ideal";
      case PrefetchScheme::Oracle: return "oracle";
    }
    return "?";
}

bool
schemeIsFdp(PrefetchScheme scheme)
{
    return scheme == PrefetchScheme::FdpNone ||
        scheme == PrefetchScheme::FdpEnqueue ||
        scheme == PrefetchScheme::FdpEnqueueAggressive ||
        scheme == PrefetchScheme::FdpRemove ||
        scheme == PrefetchScheme::FdpIdeal;
}

void
SimConfig::validate() const
{
    fatal_if(measureInsts == 0, "measureInsts must be nonzero");
    fatal_if(ftqEntries == 0, "FTQ needs at least one entry");
    fatal_if(bpu.maxBlockInsts == 0, "fetch block size must be nonzero");
    fatal_if(cycleLimitPerInst <= 1.0, "cycle limit too low to finish");
    fatal_if(usePartitionedBtb && bpu.blockBased,
             "partitioned BTB requires the conventional (non-FTB) "
             "front-end");
    // VM knobs are checked even with vm.enable off: the simulator
    // builds the MMU (page table + ITLB) unconditionally.
    fatal_if(!isPowerOf2(vm.pageBytes),
             "VM page size must be a power of two");
    fatal_if(vm.pageBytes < mem.l1i.blockBytes,
             "VM pages must be at least one cache block");
    fatal_if(vm.itlbEntries == 0, "ITLB needs at least one entry");
    fatal_if(vm.itlbAssoc == 0 || vm.itlbEntries % vm.itlbAssoc != 0,
             "ITLB entries must divide evenly into ways");
    fatal_if(!isPowerOf2(vm.itlbEntries / vm.itlbAssoc),
             "ITLB set count must be a power of two");
    fatal_if(vm.walkLatency == 0, "page-walk latency must be nonzero");
    fatal_if(vm.walkLatency > 10000,
             "page-walk latency implausibly high");
}

} // namespace fdip
