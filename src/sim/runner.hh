/**
 * @file runner.hh
 * Experiment runner: executes (workload x scheme) grids with memoized
 * baselines so a bench binary never simulates the same point twice.
 */

#ifndef FDIP_SIM_RUNNER_HH
#define FDIP_SIM_RUNNER_HH

#include <functional>
#include <map>
#include <string>

#include "sim/presets.hh"
#include "sim/simulator.hh"

namespace fdip
{

/** Build + run one simulation from a fully-specified config. */
SimResults simulate(const SimConfig &cfg);

class Runner
{
  public:
    /**
     * @param warmup_insts warmup instructions per run
     * @param measure_insts measured instructions per run
     */
    Runner(std::uint64_t warmup_insts = 300 * 1000,
           std::uint64_t measure_insts = 1000 * 1000);

    using Tweak = std::function<void(SimConfig &)>;

    /**
     * Run @p workload under @p scheme on the baseline machine with an
     * optional config tweak. Results are memoized on
     * (workload, scheme, tweak_key); pass distinct keys for distinct
     * tweaks.
     */
    const SimResults &run(const std::string &workload,
                          PrefetchScheme scheme,
                          const std::string &tweak_key = "",
                          const Tweak &tweak = nullptr);

    /** Speedup of (workload, scheme [, tweak]) over the no-prefetch
     *  baseline with the same non-scheme tweaks applied. */
    double speedup(const std::string &workload, PrefetchScheme scheme,
                   const std::string &tweak_key = "",
                   const Tweak &tweak = nullptr);

    std::uint64_t warmupInsts() const { return warmup; }
    std::uint64_t measureInsts() const { return measure; }

  private:
    std::uint64_t warmup;
    std::uint64_t measure;
    std::map<std::string, SimResults> cache;
};

/** Geometric-mean speedup: gmean over (1 + s_i), minus 1. */
double gmeanSpeedup(const std::vector<double> &speedups);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

} // namespace fdip

#endif // FDIP_SIM_RUNNER_HH
