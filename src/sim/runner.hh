/**
 * @file runner.hh
 * Experiment runner: executes (workload x scheme) grids with memoized
 * baselines so a bench binary never simulates the same point twice.
 *
 * Grid points are independent simulations, so a bench can enqueue()
 * its whole grid up front and runPending() executes the points on a
 * thread pool (--jobs N / FDIP_JOBS, default: hardware concurrency).
 * run() then serves every point from the memo cache, keeping table
 * output deterministic regardless of execution order.
 */

#ifndef FDIP_SIM_RUNNER_HH
#define FDIP_SIM_RUNNER_HH

#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "sim/presets.hh"
#include "sim/simulator.hh"

namespace fdip
{

/** Build + run one simulation from a fully-specified config. */
SimResults simulate(const SimConfig &cfg);

class Runner
{
  public:
    /**
     * @param warmup_insts warmup instructions per run
     * @param measure_insts measured instructions per run
     */
    Runner(std::uint64_t warmup_insts = 300 * 1000,
           std::uint64_t measure_insts = 1000 * 1000);

    using Tweak = std::function<void(SimConfig &)>;

    /**
     * Run @p workload under @p scheme on the baseline machine with an
     * optional config tweak. Results are memoized on
     * (workload, scheme, tweak_key); pass distinct keys for distinct
     * tweaks.
     */
    const SimResults &run(const std::string &workload,
                          PrefetchScheme scheme,
                          const std::string &tweak_key = "",
                          const Tweak &tweak = nullptr);

    /** Speedup of (workload, scheme [, tweak]) over the no-prefetch
     *  baseline with the same non-scheme tweaks applied. */
    double speedup(const std::string &workload, PrefetchScheme scheme,
                   const std::string &tweak_key = "",
                   const Tweak &tweak = nullptr);

    /**
     * Queue a grid point for runPending(). Points already memoized or
     * already queued are ignored, mirroring run()'s memoization.
     */
    void enqueue(const std::string &workload, PrefetchScheme scheme,
                 const std::string &tweak_key = "",
                 const Tweak &tweak = nullptr);

    /** enqueue() both the scheme point and its no-prefetch baseline,
     *  as speedup() will request them. */
    void enqueueSpeedup(const std::string &workload,
                        PrefetchScheme scheme,
                        const std::string &tweak_key = "",
                        const Tweak &tweak = nullptr);

    /**
     * Execute all queued points and memoize their results. Points run
     * concurrently on jobs() threads (in enqueue order when jobs()
     * is 1). Simulations are deterministic and share no state, so the
     * memo cache ends up identical to a serial sweep.
     */
    void runPending();

    /** Thread count for runPending(); 0 is clamped to 1. */
    void setJobs(unsigned n) { numJobs = n == 0 ? 1 : n; }
    unsigned jobs() const { return numJobs; }

    /** FDIP_JOBS env var if set, else hardware concurrency. */
    static unsigned defaultJobs();

    std::uint64_t warmupInsts() const { return warmup; }
    std::uint64_t measureInsts() const { return measure; }

    std::size_t cachedRuns() const { return cache.size(); }
    std::size_t pendingRuns() const { return pending.size(); }

    /**
     * One-line footer for the last runPending() batch: points
     * executed, wall seconds, jobs, and summed per-run host seconds
     * (wall vs. summed shows parallel efficiency; either one drifting
     * up across commits is a simulator perf regression).
     */
    std::string sweepSummary() const;

  private:
    /**
     * Memo key. A tuple (not a joined string) so workload or tweak
     * names containing the old "/" separator cannot collide.
     */
    using Key = std::tuple<std::string, std::string, std::string>;

    struct Point
    {
        Key key;
        std::string workload;
        PrefetchScheme scheme;
        Tweak tweak;
    };

    static Key makeKey(const std::string &workload, PrefetchScheme scheme,
                       const std::string &tweak_key);
    SimConfig makeConfig(const Point &p) const;

    /**
     * Record the materialized config's fingerprint for @p key;
     * panics when the same (workload, scheme, tweak-name) key was
     * previously seen with a *different* config — i.e. two distinct
     * tweak closures sharing a name — so a memoized result can never
     * be served for a config it was not produced by.
     */
    void checkFingerprint(const Key &key, const Point &p);

    std::uint64_t warmup;
    std::uint64_t measure;
    unsigned numJobs = defaultJobs();
    std::map<Key, SimResults> cache;
    std::vector<Point> pending;
    /** Config identity behind every memo key ever enqueued or run. */
    std::map<Key, std::uint64_t> fingerprints;

    /** Last-batch bookkeeping for sweepSummary(). */
    std::size_t sweepPoints = 0;
    double sweepWallSeconds = 0.0;
    double sweepHostSeconds = 0.0;
    /** Idle-skip totals over the batch (simulated cycles). */
    std::uint64_t sweepSkippedCycles = 0;
    std::uint64_t sweepTotalCycles = 0;
    /** A sweep ran: run() misses afterwards indicate an incomplete
     *  enqueue mirror in the bench (they de-parallelize silently). */
    bool sweepDone = false;
};

/** Geometric-mean speedup: gmean over (1 + s_i), minus 1. */
double gmeanSpeedup(const std::vector<double> &speedups);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

} // namespace fdip

#endif // FDIP_SIM_RUNNER_HH
