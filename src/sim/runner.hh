/**
 * @file runner.hh
 * Experiment runner: executes (workload x scheme) grids with memoized
 * baselines so a bench binary never simulates the same point twice.
 *
 * Grid points are independent simulations, so a bench can enqueue()
 * its whole grid up front and runPending() executes the points on a
 * thread pool (--jobs N / FDIP_JOBS, default: hardware concurrency).
 * run() then serves every point from the in-process memo, keeping
 * table output deterministic regardless of execution order.
 *
 * Two reuse layers with distinct names:
 *  - the **memo** (in-process): the per-Runner map that dedups grid
 *    points inside one binary, added in the parallel-runner work;
 *  - the **result cache** (on-disk, sim/result_cache.hh): shares
 *    completed results *across* binaries, keyed by
 *    SimConfig::fingerprint() + run lengths. Enabled by
 *    FDIP_CACHE_DIR; FDIP_NO_CACHE=1 turns it off.
 */

#ifndef FDIP_SIM_RUNNER_HH
#define FDIP_SIM_RUNNER_HH

#include <array>
#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "sim/presets.hh"
#include "sim/result_cache.hh"
#include "sim/simulator.hh"

namespace fdip
{

/** Build + run one simulation from a fully-specified config. */
SimResults simulate(const SimConfig &cfg);

class Runner
{
  public:
    /**
     * @param warmup_insts warmup instructions per run
     * @param measure_insts measured instructions per run
     */
    Runner(std::uint64_t warmup_insts = 300 * 1000,
           std::uint64_t measure_insts = 1000 * 1000);

    using Tweak = std::function<void(SimConfig &)>;

    /**
     * A grid point whose every attempt raised SimError. The sweep
     * carries on: the memo holds a Failed/TimedOut sentinel result
     * (all-NaN metrics, rendered as FAIL / TIMEOUT cells) and
     * this record preserves what actually happened.
     */
    struct FailedPoint
    {
        std::string workload;
        std::string scheme;
        std::string tweakKey;
        /** SimConfig::fingerprint() of the failing config. */
        std::uint64_t fingerprint = 0;
        /** what() of the final attempt's error. */
        std::string error;
        unsigned attempts = 0;
        bool timedOut = false;
    };

    /**
     * Run @p workload under @p scheme on the baseline machine with an
     * optional config tweak. Results are memoized on
     * (workload, scheme, tweak_key); pass distinct keys for distinct
     * tweaks.
     */
    const SimResults &run(const std::string &workload,
                          PrefetchScheme scheme,
                          const std::string &tweak_key = "",
                          const Tweak &tweak = nullptr);

    /** Speedup of (workload, scheme [, tweak]) over the no-prefetch
     *  baseline with the same non-scheme tweaks applied. */
    double speedup(const std::string &workload, PrefetchScheme scheme,
                   const std::string &tweak_key = "",
                   const Tweak &tweak = nullptr);

    /**
     * Queue a grid point for runPending(). Points already memoized or
     * already queued are ignored, mirroring run()'s memoization.
     */
    void enqueue(const std::string &workload, PrefetchScheme scheme,
                 const std::string &tweak_key = "",
                 const Tweak &tweak = nullptr);

    /** enqueue() both the scheme point and its no-prefetch baseline,
     *  as speedup() will request them. */
    void enqueueSpeedup(const std::string &workload,
                        PrefetchScheme scheme,
                        const std::string &tweak_key = "",
                        const Tweak &tweak = nullptr);

    /**
     * Execute all queued points and memoize their results. Points run
     * concurrently on jobs() threads (in enqueue order when jobs()
     * is 1). Simulations are deterministic and share no state, so the
     * memo ends up identical to a serial sweep. When the on-disk
     * result cache is enabled, each point is first looked up there
     * (and stored back after simulating a miss).
     */
    void runPending();

    /** Thread count for runPending(); 0 is clamped to 1. */
    void setJobs(unsigned n) { numJobs = n == 0 ? 1 : n; }
    unsigned jobs() const { return numJobs; }

    /** FDIP_JOBS env var if set, else hardware concurrency. */
    static unsigned defaultJobs();

    /**
     * Retry policy for points that raise SimError: up to @p retries
     * re-attempts (FDIP_RETRIES, default 2) with exponential backoff
     * starting at @p base_ms (FDIP_RETRY_BASE_MS, default 100; the
     * delay doubles per attempt). Only after every attempt fails is
     * the point recorded as a FailedPoint.
     */
    void setRetryPolicy(unsigned retries, unsigned base_ms);

    /** Points whose every attempt failed, in enqueue order. */
    const std::vector<FailedPoint> &failures() const { return failed; }
    /** Points that needed more than one attempt (eventual successes
     *  included). */
    std::size_t retriedPoints() const { return numRetried; }
    /** Failed points whose final error was a SimTimeout. */
    std::size_t timedOutPoints() const { return numTimedOut; }
    /** Corrupt/stale entries the on-disk cache quarantined. */
    std::size_t cacheQuarantined() const;
    /** Entries the on-disk cache's size-budget GC evicted at open. */
    std::size_t cacheEvicted() const;

    std::uint64_t warmupInsts() const { return warmup; }
    std::uint64_t measureInsts() const { return measure; }

    std::size_t memoizedRuns() const { return memo.size(); }
    std::size_t pendingRuns() const { return pending.size(); }

    /** (workload, scheme, tweak_key) of every queued point, in queue
     *  order — introspection for tests and the experiment catalog. */
    std::vector<std::array<std::string, 3>> pendingPoints() const;

    /** Point the on-disk result cache at @p dir (tests; normal use is
     *  the FDIP_CACHE_DIR environment variable). */
    void setCacheDir(const std::string &dir);
    /** Drop the on-disk result cache (in-process memo is unaffected). */
    void disableCache();
    bool cacheEnabled() const { return diskCache != nullptr; }

    /** enqueue() requests served by the in-process memo (duplicate
     *  grid points, shared baselines). */
    std::size_t memoHits() const { return numMemoHits; }
    /** Points served from / simulated into the on-disk result cache
     *  across all runPending()/run() calls so far. */
    std::size_t cacheHits() const { return numCacheHits; }
    std::size_t cacheMisses() const { return numCacheMisses; }

    /**
     * Footer for the last runPending() batch: points executed, wall
     * seconds, jobs, summed per-run host seconds (wall vs. summed
     * shows parallel efficiency; either one drifting up across commits
     * is a simulator perf regression), plus a reuse line that keeps
     * the two layers distinct: "memo hits" are enqueues deduped by the
     * in-process memo, "cache hits" are points served from the on-disk
     * result cache instead of being simulated.
     */
    std::string sweepSummary() const;

    /**
     * SimConfig::fingerprint() of a previously enqueued or run point,
     * for external exports (--stats-json); 0 when the key has never
     * been materialized by this Runner.
     */
    std::uint64_t fingerprintOf(const std::string &workload,
                                PrefetchScheme scheme,
                                const std::string &tweak_key = "") const;

  private:
    /**
     * Memo key. A tuple (not a joined string) so workload or tweak
     * names containing the old "/" separator cannot collide.
     */
    using Key = std::tuple<std::string, std::string, std::string>;

    struct Point
    {
        Key key;
        std::string workload;
        PrefetchScheme scheme;
        Tweak tweak;
        /** Deterministic distinct-point ordinal (enqueue/run order);
         *  the index FDIP_FAULT's throw@/hang@ faults address. */
        std::size_t index = 0;
    };

    /** One executed-or-loaded grid point. */
    struct Outcome
    {
        SimResults results;
        bool diskHit = false;
        unsigned attempts = 1;
        /** Every attempt raised SimError; results is a sentinel. */
        bool failedPoint = false;
        bool timedOut = false;
        std::string error;
    };

    static Key makeKey(const std::string &workload, PrefetchScheme scheme,
                       const std::string &tweak_key);
    SimConfig makeConfig(const Point &p) const;

    /**
     * Serve @p p from the on-disk cache, or simulate (and store) —
     * with failure isolation: SimError attempts are retried per the
     * retry policy, and a point whose every attempt failed returns a
     * sentinel Outcome instead of propagating.
     */
    Outcome computePoint(const Point &p) const;

    /** One cache-or-simulate attempt; lets SimError propagate. */
    Outcome computeAttempt(const SimConfig &cfg) const;

    /** Count one outcome against the hit/miss counters. */
    void accountCacheOutcome(const Outcome &o);

    /** Fold one outcome into the sweep gauges and counters. */
    void accountOutcome(const Outcome &o);

    /** Record retry/failure bookkeeping for one completed point
     *  (single-threaded merge only). */
    void recordHealth(const Point &p, const Outcome &o);

    /**
     * Record the materialized config's fingerprint for @p key;
     * panics when the same (workload, scheme, tweak-name) key was
     * previously seen with a *different* config — i.e. two distinct
     * tweak closures sharing a name — so a memoized result can never
     * be served for a config it was not produced by.
     */
    void checkFingerprint(const Key &key, const Point &p);

    std::uint64_t warmup;
    std::uint64_t measure;
    unsigned numJobs = defaultJobs();
    /** In-process memo: every completed point of this Runner. */
    std::map<Key, SimResults> memo;
    std::vector<Point> pending;
    /** Config identity behind every memo key ever enqueued or run. */
    std::map<Key, std::uint64_t> fingerprints;
    /** Cross-binary on-disk result cache; nullptr when disabled. */
    std::unique_ptr<ResultCache> diskCache = ResultCache::fromEnv();

    /** Reuse counters (whole Runner lifetime). */
    std::size_t numMemoHits = 0;
    std::size_t numCacheHits = 0;
    std::size_t numCacheMisses = 0;

    /** Last-batch bookkeeping for sweepSummary(). */
    std::size_t sweepPoints = 0;
    double sweepWallSeconds = 0.0;
    double sweepHostSeconds = 0.0;
    /** Idle-skip totals over the batch (simulated cycles). */
    std::uint64_t sweepSkippedCycles = 0;
    std::uint64_t sweepTotalCycles = 0;
    /** A sweep ran: run() misses afterwards indicate an incomplete
     *  enqueue mirror in the bench (they de-parallelize silently). */
    bool sweepDone = false;

    /** Next Point::index (distinct points only, enqueue/run order). */
    std::size_t nextPointIndex = 0;

    /** Failure isolation (whole Runner lifetime). */
    std::vector<FailedPoint> failed;
    std::size_t numRetried = 0;
    std::size_t numTimedOut = 0;
    /** SimError retry budget per point and first backoff delay. */
    unsigned maxRetries;
    unsigned retryBaseMs;
};

/** Geometric-mean speedup: gmean over (1 + s_i), minus 1. */
double gmeanSpeedup(const std::vector<double> &speedups);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

} // namespace fdip

#endif // FDIP_SIM_RUNNER_HH
