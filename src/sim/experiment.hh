/**
 * @file experiment.hh
 * Declarative experiment grids: every figure-reproduction binary
 * states its sweep as one ExperimentSpec — axes (workloads x schemes
 * x knob variants), run lengths, and a render callback for its custom
 * table columns — and a single driver expands the spec into Runner
 * enqueues, executes the sweep, and prints the tables.
 *
 * Before this existed, each bench stated its grid twice (the
 * Runner::enqueue mirror and the table loop) and the two could drift.
 * The spec is now the only statement of the grid; the table loop reads
 * points back through Runner's memo, which panics on any key reused
 * with a different config (SimConfig::fingerprint()).
 *
 * The same registry powers:
 *  - a generic bench main() (bench/experiment_main.cc) giving every
 *    binary --jobs/--warmup/--measure plus --list/--describe,
 *  - the experiment-catalog generator (bench/gen_experiments.cc) that
 *    emits docs/EXPERIMENTS.md, and
 *  - the expansion-parity tests (tests/test_experiment.cc).
 */

#ifndef FDIP_SIM_EXPERIMENT_HH
#define FDIP_SIM_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/runner.hh"

namespace fdip
{

/** One point on a grid's tweak axis. */
struct TweakVariant
{
    /** Runner tweak_key; "" names the un-tweaked baseline machine. */
    std::string key;
    /** Human-readable description for --describe and the catalog. */
    std::string label;
    Runner::Tweak tweak;
};

/**
 * One cartesian block of a sweep: workloads x schemes x variants.
 * An empty variant list means a single un-tweaked point per
 * (workload, scheme). Most experiments are one grid; benches whose
 * hand-written loops mixed shapes (e.g. per-variant scheme sets) use
 * several.
 */
struct ExperimentGrid
{
    std::vector<std::string> workloads;
    std::vector<PrefetchScheme> schemes;
    std::vector<TweakVariant> variants;
    /** true: enqueueSpeedup() (adds the no-prefetch baseline each
     *  speedup() needs); false: plain enqueue(). */
    bool withBaseline = true;
};

struct ExperimentSpec
{
    std::string id;       ///< e.g. "R-F9"
    std::string binary;   ///< bench executable, e.g. "bench_f9_ftq_sweep"
    std::string title;    ///< banner headline
    std::string shape;    ///< banner "expected shape" text
    std::string paperRef; ///< which paper figure/table this reproduces
    /** One-line "what question does this answer" blurb, shown in
     *  --describe and the generated catalog (extension benches set
     *  it; reproduction benches are self-describing via paperRef). */
    std::string question;
    std::uint64_t warmup = 0;  ///< default warmup instructions
    std::uint64_t measure = 0; ///< default measured instructions
    std::vector<ExperimentGrid> grids;
    /** Prints the experiment's tables; every point it reads was
     *  enqueued by the grids above, so all reads are memo hits. */
    std::function<void(Runner &)> render;
    /** Optional catalog footnote (methodology caveats etc.). */
    std::string notes;
};

/** Process-wide spec registry, filled by static registrars. */
class ExperimentRegistry
{
  public:
    static ExperimentRegistry &instance();

    /** Register a spec; duplicate ids are fatal. */
    void add(ExperimentSpec spec);

    const ExperimentSpec *find(const std::string &id) const;

    /** All specs, naturally sorted by id (R-F2 before R-F10). */
    std::vector<const ExperimentSpec *> all() const;

  private:
    std::vector<ExperimentSpec> specs;
};

/** Registers maker()'s spec at static-initialization time. */
struct ExperimentRegistrar
{
    explicit ExperimentRegistrar(ExperimentSpec (*maker)());
};

#define FDIP_REGISTER_EXPERIMENT(maker)                                      \
    static const ::fdip::ExperimentRegistrar                                 \
        fdip_experiment_registrar_##maker{maker}

/** Visit every (workload, scheme, variant) enqueue the spec's grids
 *  produce, baselines included, in deterministic expansion order. */
void forEachGridPoint(
    const ExperimentSpec &spec,
    const std::function<void(const std::string &workload,
                             PrefetchScheme scheme,
                             const TweakVariant &variant)> &fn);

/** Expand the spec's grids into Runner enqueues (the single source of
 *  the sweep; there is no hand-written mirror to drift from). */
void enqueueExperiment(Runner &runner, const ExperimentSpec &spec);

/** Distinct simulations the spec expands to (after the Runner's
 *  memo dedup of shared baselines / overlapping grids). */
std::size_t countDistinctPoints(const ExperimentSpec &spec);

/** Multi-line, stable description of one spec (--describe). */
std::string describeExperiment(const ExperimentSpec &spec);

/** One summary line per spec (--list). */
std::string listExperiments(
    const std::vector<const ExperimentSpec *> &specs);

/** The generated docs/EXPERIMENTS.md content. */
std::string experimentCatalogMarkdown(
    const std::vector<const ExperimentSpec *> &specs);

/**
 * Shared bench main: parses --jobs/--warmup/--measure (run overrides),
 * --list/--describe (spec introspection, no simulation), and
 * --stats-json PATH (machine-readable per-point export after the
 * sweep), prints the banner, expands + runs the sweep, prints the
 * footer, then delegates to spec.render.
 */
int experimentMain(const ExperimentSpec &spec, int argc, char **argv);

} // namespace fdip

#endif // FDIP_SIM_EXPERIMENT_HH
