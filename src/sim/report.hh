/**
 * @file report.hh
 * Formatting helpers shared by the benchmark harness binaries.
 */

#ifndef FDIP_SIM_REPORT_HH
#define FDIP_SIM_REPORT_HH

#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/simulator.hh"

namespace fdip
{

/** "experiment banner" printed at the top of every bench binary. */
std::string experimentBanner(const std::string &id,
                             const std::string &title,
                             const std::string &paper_shape);

/** One-line summary of a run (workload, scheme, ipc, mpki, util). */
std::string summarizeRun(const SimResults &r);

} // namespace fdip

#endif // FDIP_SIM_REPORT_HH
