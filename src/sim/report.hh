/**
 * @file report.hh
 * Formatting helpers shared by the benchmark harness binaries.
 */

#ifndef FDIP_SIM_REPORT_HH
#define FDIP_SIM_REPORT_HH

#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/simulator.hh"

namespace fdip
{

/** "experiment banner" printed at the top of every bench binary. */
std::string experimentBanner(const std::string &id,
                             const std::string &title,
                             const std::string &paper_shape);

/** One-line summary of a run (workload, scheme, ipc, mpki, util). */
std::string summarizeRun(const SimResults &r);

/**
 * Canonical, bit-exact serialization of every *simulated* field of a
 * SimResults — scalars (doubles rendered with full round-trip
 * precision), the FTQ occupancy and prefetch-timeliness histograms,
 * and the complete StatSet.
 * Host-side gauges (hostSeconds, hostKcyclesPerSec, skippedCycles,
 * totalCycles) are excluded: they vary with the machine and with the
 * idle-skip path, not with the simulated machine. Two runs of the
 * same config must serialize identically regardless of SimConfig::
 * forceTick — this is the comparison key of the differential parity
 * and golden-file regression tests.
 */
std::string serializeResults(const SimResults &r);

} // namespace fdip

#endif // FDIP_SIM_REPORT_HH
