#include "sim/report.hh"

#include "common/logging.hh"

namespace fdip
{

std::string
experimentBanner(const std::string &id, const std::string &title,
                 const std::string &paper_shape)
{
    std::string bar(72, '=');
    return bar + "\n" + id + ": " + title + "\n" +
        "expected shape: " + paper_shape + "\n" + bar + "\n";
}

std::string
summarizeRun(const SimResults &r)
{
    return strprintf(
        "%-10s %-14s ipc=%.3f mpki=%6.2f l2bus=%5.1f%% acc=%5.1f%% "
        "cov=%5.1f%% host=%.2fs (%.0f kcyc/s)",
        r.workload.c_str(), r.scheme.c_str(), r.ipc, r.mpki,
        r.l2BusUtil * 100.0, r.prefetchAccuracy * 100.0,
        r.prefetchCoverage * 100.0, r.hostSeconds, r.hostKcyclesPerSec);
}

} // namespace fdip
