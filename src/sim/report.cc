#include "sim/report.hh"

#include "common/logging.hh"

namespace fdip
{

std::string
experimentBanner(const std::string &id, const std::string &title,
                 const std::string &paper_shape)
{
    std::string bar(72, '=');
    return bar + "\n" + id + ": " + title + "\n" +
        "expected shape: " + paper_shape + "\n" + bar + "\n";
}

std::string
serializeResults(const SimResults &r)
{
    // %.17g round-trips IEEE doubles exactly, so equal strings mean
    // bit-equal values (modulo -0.0/0.0, which no counter produces).
    std::string out;
    out += strprintf("workload %s\n", r.workload.c_str());
    out += strprintf("scheme %s\n", r.scheme.c_str());
    out += strprintf("cycles %llu\n",
                     static_cast<unsigned long long>(r.cycles));
    out += strprintf("instructions %llu\n",
                     static_cast<unsigned long long>(r.instructions));
    out += strprintf("ipc %.17g\n", r.ipc);
    out += strprintf("mpki %.17g\n", r.mpki);
    out += strprintf("l2_bus_util %.17g\n", r.l2BusUtil);
    out += strprintf("mem_bus_util %.17g\n", r.memBusUtil);
    out += strprintf("prefetch_accuracy %.17g\n", r.prefetchAccuracy);
    out += strprintf("prefetch_coverage %.17g\n", r.prefetchCoverage);
    out += strprintf("prefetch_timely %.17g\n", r.prefetchTimely);
    out += strprintf("prefetch_late %.17g\n", r.prefetchLate);
    out += strprintf("prefetch_pollution %.17g\n", r.prefetchPollution);
    out += strprintf("cond_mispredict_per_kilo %.17g\n",
                     r.condMispredictPerKilo);
    out += strprintf("ftq_occupancy %llu buckets,",
                     static_cast<unsigned long long>(
                         r.ftqOccupancy.numBuckets()));
    for (std::size_t v = 0; v < r.ftqOccupancy.numBuckets(); ++v) {
        out += strprintf(" %llu",
                         static_cast<unsigned long long>(
                             r.ftqOccupancy.bucket(v)));
    }
    out += "\n";
    out += strprintf("pf_timeliness %llu buckets,",
                     static_cast<unsigned long long>(
                         r.pfTimeliness.numBuckets()));
    for (std::size_t v = 0; v < r.pfTimeliness.numBuckets(); ++v) {
        out += strprintf(" %llu",
                         static_cast<unsigned long long>(
                             r.pfTimeliness.bucket(v)));
    }
    out += "\n";
    for (const auto &[name, val] : r.stats.entries())
        out += strprintf("stat %s %.17g\n", name.c_str(), val);
    // Multi-core machines append one nested row per core; single-core
    // results emit nothing here, keeping their serialization
    // byte-identical to the pre-multicore format.
    if (!r.perCore.empty()) {
        out += strprintf("per_core %llu\n",
                         static_cast<unsigned long long>(
                             r.perCore.size()));
        for (std::size_t i = 0; i < r.perCore.size(); ++i) {
            out += strprintf("core %llu\n",
                             static_cast<unsigned long long>(i));
            out += serializeResults(r.perCore[i]);
            out += "core_end\n";
        }
    }
    return out;
}

std::string
summarizeRun(const SimResults &r)
{
    double skip_pct = r.totalCycles == 0 ? 0.0
        : static_cast<double>(r.skippedCycles) /
          static_cast<double>(r.totalCycles) * 100.0;
    return strprintf(
        "%-10s %-14s ipc=%.3f mpki=%6.2f l2bus=%5.1f%% acc=%5.1f%% "
        "cov=%5.1f%% host=%.2fs (%.0f kcyc/s) skip=%.1f%%",
        r.workload.c_str(), r.scheme.c_str(), r.ipc, r.mpki,
        r.l2BusUtil * 100.0, r.prefetchAccuracy * 100.0,
        r.prefetchCoverage * 100.0, r.hostSeconds, r.hostKcyclesPerSec,
        skip_pct);
}

} // namespace fdip
