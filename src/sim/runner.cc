#include "sim/runner.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <thread>

#include "common/env.hh"
#include "common/error.hh"
#include "common/fault.hh"
#include "common/logging.hh"

namespace fdip
{

SimResults
simulate(const SimConfig &cfg)
{
    Simulator sim(cfg);
    return sim.run();
}

Runner::Runner(std::uint64_t warmup_insts, std::uint64_t measure_insts)
    : warmup(warmup_insts), measure(measure_insts),
      maxRetries(static_cast<unsigned>(envUint("FDIP_RETRIES", 2))),
      retryBaseMs(
          static_cast<unsigned>(envUint("FDIP_RETRY_BASE_MS", 100)))
{}

unsigned
Runner::defaultJobs()
{
    // Fallback 0 = auto-detect: a malformed FDIP_JOBS warns and falls
    // back to hardware concurrency, same as leaving it unset.
    std::uint64_t n = envUint("FDIP_JOBS", 0, 1);
    if (n >= 1)
        return static_cast<unsigned>(n);
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
Runner::setRetryPolicy(unsigned retries, unsigned base_ms)
{
    maxRetries = retries;
    retryBaseMs = base_ms;
}

std::size_t
Runner::cacheQuarantined() const
{
    return diskCache ? diskCache->quarantined() : 0;
}

std::size_t
Runner::cacheEvicted() const
{
    return diskCache ? diskCache->evicted() : 0;
}

Runner::Key
Runner::makeKey(const std::string &workload, PrefetchScheme scheme,
                const std::string &tweak_key)
{
    return Key(workload, schemeName(scheme), tweak_key);
}

SimConfig
Runner::makeConfig(const Point &p) const
{
    SimConfig cfg = makeBaselineConfig(p.workload, p.scheme);
    cfg.warmupInsts = warmup;
    cfg.measureInsts = measure;
    if (p.tweak)
        p.tweak(cfg);
    return cfg;
}

Runner::Outcome
Runner::computeAttempt(const SimConfig &cfg) const
{
    Outcome o;
    if (!diskCache) {
        o.results = simulate(cfg);
        return o;
    }

    std::uint64_t fp = cfg.fingerprint();
    if (auto cached = diskCache->load(fp, warmup, measure)) {
        o.results = std::move(*cached);
        o.diskHit = true;
        // The host gauges and skip totals describe the run that
        // produced the entry, not this process; zero them so sweep
        // footers only account simulations that actually executed.
        o.results.hostSeconds = 0.0;
        o.results.hostKcyclesPerSec = 0.0;
        o.results.skippedCycles = 0;
        o.results.totalCycles = 0;
        return o;
    }
    o.results = simulate(cfg);
    diskCache->store(fp, warmup, measure, o.results);
    return o;
}

Runner::Outcome
Runner::computePoint(const Point &p) const
{
    SimConfig cfg = makeConfig(p);
    for (unsigned attempt = 1;; ++attempt) {
        try {
            // Declare (point, attempt) to the fault injector for the
            // duration of the attempt; with FDIP_FAULT unset this is
            // two thread-local stores.
            FaultInjector::PointScope scope(p.index, attempt);
            Outcome o = computeAttempt(cfg);
            o.attempts = attempt;
            return o;
        } catch (const SimError &e) {
            bool timed_out =
                dynamic_cast<const SimTimeout *>(&e) != nullptr;
            warn("point %zu (%s, %s, '%s') attempt %u/%u failed: %s",
                 p.index, p.workload.c_str(), schemeName(p.scheme),
                 std::get<2>(p.key).c_str(), attempt, 1 + maxRetries,
                 e.what());
            if (attempt > maxRetries) {
                // Out of attempts: substitute a sentinel result so the
                // sweep (and its table) completes around this point.
                // Both sentinels are NaNs (the timed-out one tagged)
                // so derived ratios/means degrade to NaN as well.
                double s = timed_out ? timedOutSentinel()
                                     : failedSentinel();
                Outcome o;
                o.results.workload = p.workload;
                o.results.scheme = schemeName(p.scheme);
                o.results.status = timed_out ? RunStatus::TimedOut
                                             : RunStatus::Failed;
                o.results.failReason = e.what();
                o.results.ipc = s;
                o.results.mpki = s;
                o.results.l2BusUtil = s;
                o.results.memBusUtil = s;
                o.results.prefetchAccuracy = s;
                o.results.prefetchCoverage = s;
                o.results.prefetchTimely = s;
                o.results.prefetchLate = s;
                o.results.prefetchPollution = s;
                o.results.condMispredictPerKilo = s;
                o.attempts = attempt;
                o.failedPoint = true;
                o.timedOut = timed_out;
                o.error = e.what();
                return o;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(
                static_cast<std::uint64_t>(retryBaseMs)
                << (attempt - 1)));
        }
    }
}

void
Runner::accountCacheOutcome(const Outcome &o)
{
    // Failed points touched the cache but produced nothing reusable;
    // they are reported on the health line, not as misses.
    if (!diskCache || o.failedPoint)
        return;
    if (o.diskHit)
        ++numCacheHits;
    else
        ++numCacheMisses;
}

void
Runner::recordHealth(const Point &p, const Outcome &o)
{
    if (o.attempts > 1)
        ++numRetried;
    if (!o.failedPoint)
        return;
    if (o.timedOut)
        ++numTimedOut;
    FailedPoint f;
    f.workload = p.workload;
    f.scheme = schemeName(p.scheme);
    f.tweakKey = std::get<2>(p.key);
    auto it = fingerprints.find(p.key);
    f.fingerprint = it == fingerprints.end() ? 0 : it->second;
    f.error = o.error;
    f.attempts = o.attempts;
    f.timedOut = o.timedOut;
    failed.push_back(std::move(f));
}

void
Runner::accountOutcome(const Outcome &o)
{
    sweepHostSeconds += o.results.hostSeconds;
    sweepSkippedCycles += o.results.skippedCycles;
    sweepTotalCycles += o.results.totalCycles;
    accountCacheOutcome(o);
}

void
Runner::checkFingerprint(const Key &key, const Point &p)
{
    std::uint64_t fp = makeConfig(p).fingerprint();
    auto [it, inserted] = fingerprints.emplace(key, fp);
    panic_if(!inserted && it->second != fp,
             "memo-key collision: (%s, %s, '%s') used with two "
             "different configs; give each tweak a distinct tweak_key",
             std::get<0>(key).c_str(), std::get<1>(key).c_str(),
             std::get<2>(key).c_str());
}

const SimResults &
Runner::run(const std::string &workload, PrefetchScheme scheme,
            const std::string &tweak_key, const Tweak &tweak)
{
    Key key = makeKey(workload, scheme, tweak_key);
    // Checked on memo hits too. A tweak-less call with a named key
    // looks the memoized point up by name and claims nothing; with
    // the anonymous "" key it claims the un-tweaked baseline, which
    // must never be served a tweaked point's results.
    if (tweak || tweak_key.empty())
        checkFingerprint(key, Point{key, workload, scheme, tweak});
    auto it = memo.find(key);
    if (it != memo.end())
        return it->second;

    if (sweepDone) {
        // Not fatal, but the point runs serially: the bench's enqueue
        // mirror drifted from its table loop.
        warn("grid point (%s, %s, '%s') was not enqueued before "
             "runPending(); simulating it serially",
             workload.c_str(), schemeName(scheme), tweak_key.c_str());
    }

    Point p{key, workload, scheme, tweak, nextPointIndex++};
    // This simulate defines what the key names: record its
    // fingerprint so any later conflicting claim on the name is
    // fatal rather than silently served these results.
    checkFingerprint(key, p);
    Outcome o = computePoint(p);
    accountCacheOutcome(o);
    recordHealth(p, o);
    auto [pos, inserted] = memo.emplace(std::move(key),
                                        std::move(o.results));
    return pos->second;
}

double
Runner::speedup(const std::string &workload, PrefetchScheme scheme,
                const std::string &tweak_key, const Tweak &tweak)
{
    const SimResults &base =
        run(workload, PrefetchScheme::None, tweak_key, tweak);
    const SimResults &with =
        run(workload, scheme, tweak_key, tweak);
    return speedupOver(base, with);
}

void
Runner::enqueue(const std::string &workload, PrefetchScheme scheme,
                const std::string &tweak_key, const Tweak &tweak)
{
    Key key = makeKey(workload, scheme, tweak_key);
    checkFingerprint(key, Point{key, workload, scheme, tweak});
    if (memo.count(key)) {
        ++numMemoHits;
        return;
    }
    for (const auto &p : pending) {
        if (p.key == key) {
            ++numMemoHits;
            return;
        }
    }
    pending.push_back(
        Point{std::move(key), workload, scheme, tweak, nextPointIndex++});
}

void
Runner::enqueueSpeedup(const std::string &workload, PrefetchScheme scheme,
                       const std::string &tweak_key, const Tweak &tweak)
{
    enqueue(workload, PrefetchScheme::None, tweak_key, tweak);
    enqueue(workload, scheme, tweak_key, tweak);
}

std::vector<std::array<std::string, 3>>
Runner::pendingPoints() const
{
    std::vector<std::array<std::string, 3>> out;
    out.reserve(pending.size());
    for (const auto &p : pending) {
        out.push_back({std::get<0>(p.key), std::get<1>(p.key),
                       std::get<2>(p.key)});
    }
    return out;
}

void
Runner::setCacheDir(const std::string &dir)
{
    diskCache = std::make_unique<ResultCache>(dir);
}

void
Runner::disableCache()
{
    diskCache.reset();
}

void
Runner::runPending()
{
    sweepDone = true;
    if (pending.empty())
        return;

    auto wall_start = std::chrono::steady_clock::now();
    sweepPoints = pending.size();
    sweepHostSeconds = 0.0;
    sweepSkippedCycles = 0;
    sweepTotalCycles = 0;

    unsigned workers = numJobs;
    if (workers > pending.size())
        workers = static_cast<unsigned>(pending.size());

    if (workers <= 1) {
        for (const auto &p : pending) {
            Outcome o = computePoint(p);
            accountOutcome(o);
            recordHealth(p, o);
            memo.emplace(p.key, std::move(o.results));
        }
        pending.clear();
        std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - wall_start;
        sweepWallSeconds = wall.count();
        return;
    }

    // Each worker pulls the next unclaimed point; results land in a
    // per-point slot, so no locking and no ordering dependence.
    std::vector<Outcome> outcomes(pending.size());
    std::atomic<std::size_t> next{0};
    auto work = [this, &outcomes, &next]() {
        while (true) {
            std::size_t i = next.fetch_add(1);
            if (i >= pending.size())
                return;
            outcomes[i] = computePoint(pending[i]);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        threads.emplace_back(work);
    for (auto &t : threads)
        t.join();

    // Memoize in enqueue order: memo contents (and any iteration over
    // them) match a serial sweep exactly. Health records land here
    // too, single-threaded, so FailedPoints keep enqueue order.
    for (std::size_t i = 0; i < pending.size(); ++i) {
        accountOutcome(outcomes[i]);
        recordHealth(pending[i], outcomes[i]);
        memo.emplace(std::move(pending[i].key),
                     std::move(outcomes[i].results));
    }
    pending.clear();
    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start;
    sweepWallSeconds = wall.count();
}

std::uint64_t
Runner::fingerprintOf(const std::string &workload, PrefetchScheme scheme,
                      const std::string &tweak_key) const
{
    auto it = fingerprints.find(makeKey(workload, scheme, tweak_key));
    return it == fingerprints.end() ? 0 : it->second;
}

std::string
Runner::sweepSummary() const
{
    double skip_pct = sweepTotalCycles == 0 ? 0.0
        : 100.0 * static_cast<double>(sweepSkippedCycles) /
          static_cast<double>(sweepTotalCycles);
    std::string out = strprintf(
        "sweep: %zu points in %.1fs wall (%u jobs, %.1fs summed "
        "host time, %.1f%% of simulated cycles skipped)\n",
        sweepPoints, sweepWallSeconds, numJobs, sweepHostSeconds,
        skip_pct);
    // Two reuse layers, reported separately so they cannot be
    // conflated: "memo hits" were deduped inside this process,
    // "cache hits" were loaded from the cross-binary disk cache.
    out += strprintf("reuse: %zu memo hits (in-process dedup); ",
                     numMemoHits);
    if (diskCache) {
        out += strprintf("result cache: %zu hits, %zu misses "
                         "(on-disk, %s)\n",
                         numCacheHits, numCacheMisses,
                         diskCache->dir().c_str());
    } else {
        out += "result cache: disabled (set FDIP_CACHE_DIR)\n";
    }
    // Zero-noise health line: only present when something actually
    // went wrong (failures, retries, quarantined or evicted entries).
    std::size_t quarantined = cacheQuarantined();
    std::size_t evicted = cacheEvicted();
    if (!failed.empty() || numRetried > 0 || quarantined > 0 ||
        evicted > 0) {
        out += strprintf("health: %zu failed points (%zu timed out), "
                         "%zu retried; cache: %zu quarantined, "
                         "%zu evicted\n",
                         failed.size(), numTimedOut, numRetried,
                         quarantined, evicted);
    }
    return out;
}

double
gmeanSpeedup(const std::vector<double> &speedups)
{
    if (speedups.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double s : speedups) {
        // Failed-point sentinels are NaNs (as is any ratio computed
        // against one), degrading the whole aggregate to FAIL instead
        // of panicking mid-table.
        if (!std::isfinite(s))
            return failedSentinel();
        panic_if(1.0 + s <= 0.0, "speedup below -100%%");
        log_sum += std::log(1.0 + s);
    }
    return std::exp(log_sum / static_cast<double>(speedups.size())) - 1.0;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace fdip
