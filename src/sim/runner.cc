#include "sim/runner.hh"

#include <cmath>

#include "common/logging.hh"

namespace fdip
{

SimResults
simulate(const SimConfig &cfg)
{
    Simulator sim(cfg);
    return sim.run();
}

Runner::Runner(std::uint64_t warmup_insts, std::uint64_t measure_insts)
    : warmup(warmup_insts), measure(measure_insts)
{}

const SimResults &
Runner::run(const std::string &workload, PrefetchScheme scheme,
            const std::string &tweak_key, const Tweak &tweak)
{
    std::string key = workload + "/" + schemeName(scheme) + "/" +
        tweak_key;
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;

    SimConfig cfg = makeBaselineConfig(workload, scheme);
    cfg.warmupInsts = warmup;
    cfg.measureInsts = measure;
    if (tweak)
        tweak(cfg);
    auto [pos, inserted] = cache.emplace(key, simulate(cfg));
    return pos->second;
}

double
Runner::speedup(const std::string &workload, PrefetchScheme scheme,
                const std::string &tweak_key, const Tweak &tweak)
{
    const SimResults &base =
        run(workload, PrefetchScheme::None, tweak_key, tweak);
    const SimResults &with =
        run(workload, scheme, tweak_key, tweak);
    return speedupOver(base, with);
}

double
gmeanSpeedup(const std::vector<double> &speedups)
{
    if (speedups.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double s : speedups) {
        panic_if(1.0 + s <= 0.0, "speedup below -100%%");
        log_sum += std::log(1.0 + s);
    }
    return std::exp(log_sum / static_cast<double>(speedups.size())) - 1.0;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace fdip
