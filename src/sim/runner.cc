#include "sim/runner.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "common/logging.hh"

namespace fdip
{

SimResults
simulate(const SimConfig &cfg)
{
    Simulator sim(cfg);
    return sim.run();
}

Runner::Runner(std::uint64_t warmup_insts, std::uint64_t measure_insts)
    : warmup(warmup_insts), measure(measure_insts)
{}

unsigned
Runner::defaultJobs()
{
    if (const char *env = std::getenv("FDIP_JOBS")) {
        char *end = nullptr;
        unsigned long n = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && n >= 1)
            return static_cast<unsigned>(n);
        warn("ignoring invalid FDIP_JOBS value '%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

Runner::Key
Runner::makeKey(const std::string &workload, PrefetchScheme scheme,
                const std::string &tweak_key)
{
    return Key(workload, schemeName(scheme), tweak_key);
}

SimConfig
Runner::makeConfig(const Point &p) const
{
    SimConfig cfg = makeBaselineConfig(p.workload, p.scheme);
    cfg.warmupInsts = warmup;
    cfg.measureInsts = measure;
    if (p.tweak)
        p.tweak(cfg);
    return cfg;
}

Runner::Outcome
Runner::computePoint(const Point &p) const
{
    SimConfig cfg = makeConfig(p);
    if (!diskCache)
        return Outcome{simulate(cfg), false};

    std::uint64_t fp = cfg.fingerprint();
    if (auto cached = diskCache->load(fp, warmup, measure)) {
        SimResults r = std::move(*cached);
        // The host gauges and skip totals describe the run that
        // produced the entry, not this process; zero them so sweep
        // footers only account simulations that actually executed.
        r.hostSeconds = 0.0;
        r.hostKcyclesPerSec = 0.0;
        r.skippedCycles = 0;
        r.totalCycles = 0;
        return Outcome{std::move(r), true};
    }
    Outcome o{simulate(cfg), false};
    diskCache->store(fp, warmup, measure, o.results);
    return o;
}

void
Runner::accountCacheOutcome(const Outcome &o)
{
    if (!diskCache)
        return;
    if (o.diskHit)
        ++numCacheHits;
    else
        ++numCacheMisses;
}

void
Runner::accountOutcome(const Outcome &o)
{
    sweepHostSeconds += o.results.hostSeconds;
    sweepSkippedCycles += o.results.skippedCycles;
    sweepTotalCycles += o.results.totalCycles;
    accountCacheOutcome(o);
}

void
Runner::checkFingerprint(const Key &key, const Point &p)
{
    std::uint64_t fp = makeConfig(p).fingerprint();
    auto [it, inserted] = fingerprints.emplace(key, fp);
    panic_if(!inserted && it->second != fp,
             "memo-key collision: (%s, %s, '%s') used with two "
             "different configs; give each tweak a distinct tweak_key",
             std::get<0>(key).c_str(), std::get<1>(key).c_str(),
             std::get<2>(key).c_str());
}

const SimResults &
Runner::run(const std::string &workload, PrefetchScheme scheme,
            const std::string &tweak_key, const Tweak &tweak)
{
    Key key = makeKey(workload, scheme, tweak_key);
    // Checked on memo hits too. A tweak-less call with a named key
    // looks the memoized point up by name and claims nothing; with
    // the anonymous "" key it claims the un-tweaked baseline, which
    // must never be served a tweaked point's results.
    if (tweak || tweak_key.empty())
        checkFingerprint(key, Point{key, workload, scheme, tweak});
    auto it = memo.find(key);
    if (it != memo.end())
        return it->second;

    if (sweepDone) {
        // Not fatal, but the point runs serially: the bench's enqueue
        // mirror drifted from its table loop.
        warn("grid point (%s, %s, '%s') was not enqueued before "
             "runPending(); simulating it serially",
             workload.c_str(), schemeName(scheme), tweak_key.c_str());
    }

    Point p{key, workload, scheme, tweak};
    // This simulate defines what the key names: record its
    // fingerprint so any later conflicting claim on the name is
    // fatal rather than silently served these results.
    checkFingerprint(key, p);
    Outcome o = computePoint(p);
    accountCacheOutcome(o);
    auto [pos, inserted] = memo.emplace(std::move(key),
                                        std::move(o.results));
    return pos->second;
}

double
Runner::speedup(const std::string &workload, PrefetchScheme scheme,
                const std::string &tweak_key, const Tweak &tweak)
{
    const SimResults &base =
        run(workload, PrefetchScheme::None, tweak_key, tweak);
    const SimResults &with =
        run(workload, scheme, tweak_key, tweak);
    return speedupOver(base, with);
}

void
Runner::enqueue(const std::string &workload, PrefetchScheme scheme,
                const std::string &tweak_key, const Tweak &tweak)
{
    Key key = makeKey(workload, scheme, tweak_key);
    checkFingerprint(key, Point{key, workload, scheme, tweak});
    if (memo.count(key)) {
        ++numMemoHits;
        return;
    }
    for (const auto &p : pending) {
        if (p.key == key) {
            ++numMemoHits;
            return;
        }
    }
    pending.push_back(Point{std::move(key), workload, scheme, tweak});
}

void
Runner::enqueueSpeedup(const std::string &workload, PrefetchScheme scheme,
                       const std::string &tweak_key, const Tweak &tweak)
{
    enqueue(workload, PrefetchScheme::None, tweak_key, tweak);
    enqueue(workload, scheme, tweak_key, tweak);
}

std::vector<std::array<std::string, 3>>
Runner::pendingPoints() const
{
    std::vector<std::array<std::string, 3>> out;
    out.reserve(pending.size());
    for (const auto &p : pending) {
        out.push_back({std::get<0>(p.key), std::get<1>(p.key),
                       std::get<2>(p.key)});
    }
    return out;
}

void
Runner::setCacheDir(const std::string &dir)
{
    diskCache = std::make_unique<ResultCache>(dir);
}

void
Runner::disableCache()
{
    diskCache.reset();
}

void
Runner::runPending()
{
    sweepDone = true;
    if (pending.empty())
        return;

    auto wall_start = std::chrono::steady_clock::now();
    sweepPoints = pending.size();
    sweepHostSeconds = 0.0;
    sweepSkippedCycles = 0;
    sweepTotalCycles = 0;

    unsigned workers = numJobs;
    if (workers > pending.size())
        workers = static_cast<unsigned>(pending.size());

    if (workers <= 1) {
        for (const auto &p : pending) {
            Outcome o = computePoint(p);
            accountOutcome(o);
            memo.emplace(p.key, std::move(o.results));
        }
        pending.clear();
        std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - wall_start;
        sweepWallSeconds = wall.count();
        return;
    }

    // Each worker pulls the next unclaimed point; results land in a
    // per-point slot, so no locking and no ordering dependence.
    std::vector<Outcome> outcomes(pending.size());
    std::atomic<std::size_t> next{0};
    auto work = [this, &outcomes, &next]() {
        while (true) {
            std::size_t i = next.fetch_add(1);
            if (i >= pending.size())
                return;
            outcomes[i] = computePoint(pending[i]);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        threads.emplace_back(work);
    for (auto &t : threads)
        t.join();

    // Memoize in enqueue order: memo contents (and any iteration over
    // them) match a serial sweep exactly.
    for (std::size_t i = 0; i < pending.size(); ++i) {
        accountOutcome(outcomes[i]);
        memo.emplace(std::move(pending[i].key),
                     std::move(outcomes[i].results));
    }
    pending.clear();
    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start;
    sweepWallSeconds = wall.count();
}

std::uint64_t
Runner::fingerprintOf(const std::string &workload, PrefetchScheme scheme,
                      const std::string &tweak_key) const
{
    auto it = fingerprints.find(makeKey(workload, scheme, tweak_key));
    return it == fingerprints.end() ? 0 : it->second;
}

std::string
Runner::sweepSummary() const
{
    double skip_pct = sweepTotalCycles == 0 ? 0.0
        : 100.0 * static_cast<double>(sweepSkippedCycles) /
          static_cast<double>(sweepTotalCycles);
    std::string out = strprintf(
        "sweep: %zu points in %.1fs wall (%u jobs, %.1fs summed "
        "host time, %.1f%% of simulated cycles skipped)\n",
        sweepPoints, sweepWallSeconds, numJobs, sweepHostSeconds,
        skip_pct);
    // Two reuse layers, reported separately so they cannot be
    // conflated: "memo hits" were deduped inside this process,
    // "cache hits" were loaded from the cross-binary disk cache.
    out += strprintf("reuse: %zu memo hits (in-process dedup); ",
                     numMemoHits);
    if (diskCache) {
        out += strprintf("result cache: %zu hits, %zu misses "
                         "(on-disk, %s)\n",
                         numCacheHits, numCacheMisses,
                         diskCache->dir().c_str());
    } else {
        out += "result cache: disabled (set FDIP_CACHE_DIR)\n";
    }
    return out;
}

double
gmeanSpeedup(const std::vector<double> &speedups)
{
    if (speedups.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double s : speedups) {
        panic_if(1.0 + s <= 0.0, "speedup below -100%%");
        log_sum += std::log(1.0 + s);
    }
    return std::exp(log_sum / static_cast<double>(speedups.size())) - 1.0;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace fdip
