/**
 * @file simulator.hh
 * Wires the whole system together — workload, BPU, FTQ, fetch engine,
 * memory hierarchy, prefetchers, backend — and runs the cycle loop.
 */

#ifndef FDIP_SIM_SIMULATOR_HH
#define FDIP_SIM_SIMULATOR_HH

#include <memory>
#include <vector>

#include "common/histogram.hh"
#include "sim/config.hh"
#include "trace/code_image.hh"
#include "trace/executor.hh"
#include "trace/synth_builder.hh"

namespace fdip
{

class TlbPrefetcher;
class Telemetry;
class Tracer;
class IntervalSampler;

/**
 * How a sweep point ended. Ok results come from Simulator::run();
 * Failed/TimedOut are sentinels the Runner substitutes when every
 * attempt at a point threw SimError/SimTimeout — their numeric fields
 * hold a quiet NaN (Failed) or the tagged NaN timedOutSentinel()
 * (TimedOut), so tables render FAIL / TIMEOUT cells and anything
 * *derived* from them (ratios, means) degrades to NaN/FAIL instead
 * of silently poisoning aggregates.
 */
enum class RunStatus
{
    Ok = 0,
    Failed = 1,
    TimedOut = 2,
};

/** Everything a benchmark needs from one simulation run. */
struct SimResults
{
    std::string workload;
    std::string scheme;

    RunStatus status = RunStatus::Ok;
    /** what() of the final failed attempt (empty when status is Ok). */
    std::string failReason;

    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;

    /** L1-I demand misses (not covered by any buffer) per kilo-inst. */
    double mpki = 0.0;
    double l2BusUtil = 0.0;
    double memBusUtil = 0.0;
    double prefetchAccuracy = 0.0;
    double prefetchCoverage = 0.0;

    /**
     * Prefetch lifecycle attribution, as fractions of issued
     * prefetches: timely (consumed from a buffer after the fill),
     * late (demand merged with the in-flight prefetch), pollution
     * (a prefetch L2 fill displaced a line a demand later missed on;
     * can exceed the other classes' complement since one prefetch can
     * pollute and still be useful).
     */
    double prefetchTimely = 0.0;
    double prefetchLate = 0.0;
    double prefetchPollution = 0.0;

    double condMispredictPerKilo = 0.0;

    /**
     * Host-side throughput gauges (whole run, warmup included). Not
     * part of the simulated results: they vary run to run and exist so
     * perf regressions in the simulator itself are visible in every
     * bench run.
     */
    double hostSeconds = 0.0;
    double hostKcyclesPerSec = 0.0;

    /**
     * Idle-cycle-skipping gauges (whole run, warmup included).
     * Deterministic for a given config and build, but zero under
     * SimConfig::forceTick / FDIP_NO_SKIP, so — like the host gauges —
     * they are excluded from serializeResults() parity comparisons.
     */
    Cycle skippedCycles = 0;
    Cycle totalCycles = 0;

    Histogram ftqOccupancy{0};

    /** Fill-to-first-use distance of timely prefetches (log2 buckets:
     *  bucket 0 = same cycle, bucket k = [2^(k-1), 2^k) cycles). */
    Histogram pfTimeliness{0};

    /** Raw measurement-window counter deltas from every component. */
    StatSet stats;
};

/** ipc_b / ipc_a - 1: fractional speedup of b over a. */
double speedupOver(const SimResults &baseline, const SimResults &other);

class Simulator
{
  public:
    explicit Simulator(const SimConfig &config);
    ~Simulator();

    /** Run warmup + measurement; returns measurement-window results. */
    SimResults run();

    /** Access for white-box integration tests. program()/codeImage()
     *  are only valid for synthetic workloads (tracePath empty). */
    Bpu &bpu() { return *bpu_; }
    Ftq &ftq() { return *ftq_; }
    MemHierarchy &mem() { return *mem_; }
    Backend &backend() { return *backend_; }
    Mmu &mmu() { return *mmu_; }
    /** nullptr unless vm.tlbPrefetch is enabled. */
    TlbPrefetcher *tlbPrefetcher() { return tlbPf_.get(); }
    FetchEngine &fetchEngine() { return *fetch_; }
    std::size_t numPrefetchers() const { return prefetchers.size(); }
    Prefetcher &prefetcher(std::size_t i) { return *prefetchers[i]; }
    const Program &program() const { return *prog; }
    const CodeImage &codeImage() const { return *image; }
    Cycle now() const { return curCycle; }

    /** Cycles fast-forwarded by the idle-skip path so far. */
    Cycle skippedCycles() const { return numSkipped; }

    /** True when this simulator may skip idle cycles (config knob and
     *  FDIP_NO_SKIP both clear). */
    bool skippingEnabled() const { return !forceTick; }

    /**
     * Advance one cycle (exposed for fine-grained tests). When idle
     * skipping is enabled and the whole machine is quiescent, one
     * step() jumps curCycle to the next event, charging the skipped
     * cycles exactly as per-cycle ticking would.
     */
    void step();

  private:
    /**
     * The event-driven fast path: when every component is quiescent
     * and the FTQ cannot accept a prediction, jump curCycle to just
     * before the minimum next-event cycle, bulk-charging the per-cycle
     * counters and the occupancy histogram for the skipped range.
     */
    void skipIdleCycles();
    void collectAll(StatSet &out) const;
    SimResults finalize(const StatSet &delta, Cycle cycles_delta,
                        std::uint64_t insts_delta) const;
    /** Snapshot all stats and emit one interval sample row. */
    void recordSample();

    SimConfig cfg;
    /** Synthetic workloads only; null when replaying a trace file. */
    std::unique_ptr<Program> prog;
    std::unique_ptr<CodeImage> image;
    /** The instruction stream: a SyntheticExecutor, or a trace reader
     *  when cfg.tracePath is set (see trace/champsim.hh). */
    std::unique_ptr<TraceSource> exec;
    std::unique_ptr<TraceWindow> trace;
    std::unique_ptr<Bpu> bpu_;
    std::unique_ptr<Ftq> ftq_;
    std::unique_ptr<Mmu> mmu_;
    std::unique_ptr<TlbPrefetcher> tlbPf_;
    std::unique_ptr<MemHierarchy> mem_;
    std::unique_ptr<Backend> backend_;
    std::unique_ptr<FetchEngine> fetch_;
    std::vector<std::unique_ptr<Prefetcher>> prefetchers;

    /** Telemetry (null when observability is fully off); tracer_ and
     *  sampler_ cache the telemetry's pillars for the hot path. */
    std::unique_ptr<Telemetry> telem_;
    Tracer *tracer_ = nullptr;
    IntervalSampler *sampler_ = nullptr;

    Cycle curCycle = 0;
    /** Tick every cycle (config forceTick or FDIP_NO_SKIP=1). */
    bool forceTick = false;
    Cycle numSkipped = 0;
};

} // namespace fdip

#endif // FDIP_SIM_SIMULATOR_HH
