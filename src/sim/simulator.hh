/**
 * @file simulator.hh
 * Wires the whole system together — workload, BPU, FTQ, fetch engine,
 * memory hierarchy, prefetchers, backend — and runs the cycle loop.
 */

#ifndef FDIP_SIM_SIMULATOR_HH
#define FDIP_SIM_SIMULATOR_HH

#include <memory>
#include <vector>

#include "common/histogram.hh"
#include "sim/config.hh"
#include "trace/code_image.hh"
#include "trace/executor.hh"
#include "trace/synth_builder.hh"

namespace fdip
{

class TlbPrefetcher;
class Telemetry;
class Tracer;
class IntervalSampler;

/**
 * How a sweep point ended. Ok results come from Simulator::run();
 * Failed/TimedOut are sentinels the Runner substitutes when every
 * attempt at a point threw SimError/SimTimeout — their numeric fields
 * hold a quiet NaN (Failed) or the tagged NaN timedOutSentinel()
 * (TimedOut), so tables render FAIL / TIMEOUT cells and anything
 * *derived* from them (ratios, means) degrades to NaN/FAIL instead
 * of silently poisoning aggregates.
 */
enum class RunStatus
{
    Ok = 0,
    Failed = 1,
    TimedOut = 2,
};

/** Everything a benchmark needs from one simulation run. */
struct SimResults
{
    std::string workload;
    std::string scheme;

    RunStatus status = RunStatus::Ok;
    /** what() of the final failed attempt (empty when status is Ok). */
    std::string failReason;

    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;

    /** L1-I demand misses (not covered by any buffer) per kilo-inst. */
    double mpki = 0.0;
    double l2BusUtil = 0.0;
    double memBusUtil = 0.0;
    double prefetchAccuracy = 0.0;
    double prefetchCoverage = 0.0;

    /**
     * Prefetch lifecycle attribution, as fractions of issued
     * prefetches: timely (consumed from a buffer after the fill),
     * late (demand merged with the in-flight prefetch), pollution
     * (a prefetch L2 fill displaced a line a demand later missed on;
     * can exceed the other classes' complement since one prefetch can
     * pollute and still be useful).
     */
    double prefetchTimely = 0.0;
    double prefetchLate = 0.0;
    double prefetchPollution = 0.0;

    double condMispredictPerKilo = 0.0;

    /**
     * Host-side throughput gauges (whole run, warmup included). Not
     * part of the simulated results: they vary run to run and exist so
     * perf regressions in the simulator itself are visible in every
     * bench run.
     */
    double hostSeconds = 0.0;
    double hostKcyclesPerSec = 0.0;

    /**
     * Idle-cycle-skipping gauges (whole run, warmup included).
     * Deterministic for a given config and build, but zero under
     * SimConfig::forceTick / FDIP_NO_SKIP, so — like the host gauges —
     * they are excluded from serializeResults() parity comparisons.
     */
    Cycle skippedCycles = 0;
    Cycle totalCycles = 0;

    Histogram ftqOccupancy{0};

    /** Fill-to-first-use distance of timely prefetches (log2 buckets:
     *  bucket 0 = same cycle, bucket k = [2^(k-1), 2^k) cycles). */
    Histogram pfTimeliness{0};

    /** Raw measurement-window counter deltas from every component. */
    StatSet stats;

    /**
     * Per-core rows on a multi-core machine (docs/MULTICORE.md):
     * one entry per core, each measured over that core's own
     * [warmup-crossing, finish] window with core-private stats only
     * (plus its mem.l2bus_* and mem.membus_* bus-share counters).
     * Every core-private stat sums across these rows to the aggregate
     * row's value. EMPTY on a single-core machine, so single-core
     * serializeResults() output is byte-identical to the
     * pre-multicore format; per-core rows never nest further.
     */
    std::vector<SimResults> perCore;
};

/** ipc_b / ipc_a - 1: fractional speedup of b over a. */
double speedupOver(const SimResults &baseline, const SimResults &other);

class Simulator
{
  public:
    /**
     * One core's private component graph: instruction source, BPU,
     * FTQ, MMU/ITLB, fetch engine, backend, prefetchers, and the
     * private side of the memory hierarchy (L1-I/MSHRs/buffers) bound
     * to the machine's SharedMem. Plus the measurement bookkeeping
     * run() keeps per core: warmup/finish crossing snapshots.
     */
    struct Core
    {
        unsigned id = 0;
        /** This core's workload label (cfg.workload, or the
         *  coreWorkloads entry on a heterogeneous mix). */
        std::string workload;

        /** Synthetic workloads only; null when replaying a trace. */
        std::unique_ptr<Program> prog;
        std::unique_ptr<CodeImage> image;
        std::unique_ptr<TraceSource> exec;
        std::unique_ptr<TraceWindow> trace;
        std::unique_ptr<Bpu> bpu;
        std::unique_ptr<Ftq> ftq;
        std::unique_ptr<Mmu> mmu;
        std::unique_ptr<TlbPrefetcher> tlbPf;
        std::unique_ptr<MemHierarchy> mem;
        std::unique_ptr<Backend> backend;
        std::unique_ptr<FetchEngine> fetch;
        std::vector<std::unique_ptr<Prefetcher>> prefetchers;

        /** Measurement-window bookkeeping (maintained by run()).
         *  A finished core keeps ticking — and contending for the
         *  shared L2/buses — until every core has finished; only its
         *  own counting stops at the crossing. */
        bool warmed = false;
        bool finished = false;
        Cycle warmupCycle = 0;
        Cycle endCycle = 0;
        std::uint64_t warmupInsts = 0;
        std::uint64_t endInsts = 0;
        StatSet atWarmup;
        StatSet atEnd;
        Histogram occAtEnd{0};
        Histogram pftAtEnd{0};
    };

    explicit Simulator(const SimConfig &config);
    ~Simulator();

    /** Run warmup + measurement; returns measurement-window results. */
    SimResults run();

    std::size_t numCores() const { return cores_.size(); }

    /** Core @p i's component graph; fatal on out-of-range. */
    Core &core(std::size_t i = 0);
    const Core &core(std::size_t i = 0) const;

    /** Access for white-box integration tests, routed through
     *  core(i) (default: core 0, so single-core tests read exactly
     *  the machine they built). program()/codeImage() are only valid
     *  for synthetic workloads (tracePath empty). */
    Bpu &bpu(std::size_t i = 0) { return *core(i).bpu; }
    Ftq &ftq(std::size_t i = 0) { return *core(i).ftq; }
    MemHierarchy &mem(std::size_t i = 0) { return *core(i).mem; }
    Backend &backend(std::size_t i = 0) { return *core(i).backend; }
    Mmu &mmu(std::size_t i = 0) { return *core(i).mmu; }
    /** The shared L2/bus/DRAM every core's hierarchy sits on. */
    SharedMem &sharedMem() { return *shared_; }
    /** nullptr unless vm.tlbPrefetch is enabled. */
    TlbPrefetcher *tlbPrefetcher(std::size_t i = 0)
    {
        return core(i).tlbPf.get();
    }
    FetchEngine &fetchEngine(std::size_t i = 0) { return *core(i).fetch; }
    std::size_t numPrefetchers() const
    {
        return core().prefetchers.size();
    }
    Prefetcher &prefetcher(std::size_t i)
    {
        return *core().prefetchers[i];
    }
    const Program &program() const { return *core().prog; }
    const CodeImage &codeImage() const { return *core().image; }
    Cycle now() const { return curCycle; }

    /** Cycles fast-forwarded by the idle-skip path so far. */
    Cycle skippedCycles() const { return numSkipped; }

    /** True when this simulator may skip idle cycles (config knob and
     *  FDIP_NO_SKIP both clear). */
    bool skippingEnabled() const { return !forceTick; }

    /**
     * Advance one cycle (exposed for fine-grained tests). When idle
     * skipping is enabled and the whole machine is quiescent, one
     * step() jumps curCycle to the next event, charging the skipped
     * cycles exactly as per-cycle ticking would.
     */
    void step();

  private:
    /**
     * The event-driven fast path: when every core's components are
     * quiescent and no FTQ can accept a prediction, jump curCycle to
     * just before the minimum next-event cycle across the whole
     * machine, bulk-charging the per-cycle counters and the occupancy
     * histograms for the skipped range. The machine is quiescent only
     * when EVERY core is.
     */
    void skipIdleCycles();
    /** Build core @p id's component graph onto the shared memory. */
    void buildCore(Core &c, unsigned id);
    /** One core's slice of step(): ticks, redirect, predict, push. */
    void stepCore(Core &c);
    /** Core-private stats only (no shared L2/bus/DRAM, no sim.*). */
    void collectCore(const Core &c, StatSet &out) const;
    void collectAll(StatSet &out) const;
    SimResults finalize(const StatSet &delta, Cycle cycles_delta,
                        std::uint64_t insts_delta,
                        const Histogram &occ, const Histogram &pft,
                        const std::string &workload_label) const;
    /** Snapshot all stats and emit one interval sample row. */
    void recordSample();

    SimConfig cfg;
    /** The L2/buses/DRAM all cores contend for. */
    std::unique_ptr<SharedMem> shared_;
    /** The per-core component graphs (unique_ptr: stable addresses
     *  for the cross-component references inside each graph). */
    std::vector<std::unique_ptr<Core>> cores_;

    /** Telemetry (null when observability is fully off); tracer_ and
     *  sampler_ cache the telemetry's pillars for the hot path.
     *  Tracer lanes attach to core 0 only (see docs/MULTICORE.md). */
    std::unique_ptr<Telemetry> telem_;
    Tracer *tracer_ = nullptr;
    IntervalSampler *sampler_ = nullptr;

    Cycle curCycle = 0;
    /** Tick every cycle (config forceTick or FDIP_NO_SKIP=1). */
    bool forceTick = false;
    Cycle numSkipped = 0;
};

} // namespace fdip

#endif // FDIP_SIM_SIMULATOR_HH
