#include "sim/presets.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace fdip
{

SimConfig
makeBaselineConfig(const std::string &workload, PrefetchScheme scheme)
{
    SimConfig cfg;
    cfg.workload = workload;
    // "trace:<path>" names a trace-file workload: the full label keys
    // memos/result rows, the path drives the replay (docs/TRACES.md).
    if (workload.rfind("trace:", 0) == 0)
        cfg.tracePath = workload.substr(6);
    cfg.scheme = scheme;

    cfg.ftqEntries = 32;
    cfg.fetch.fetchWidth = 8;
    cfg.fetch.decodeRedirectLatency = 3;
    cfg.fetch.resolveRedirectLatency = 12;

    cfg.bpu.blockBased = true;
    cfg.bpu.maxBlockInsts = 8;
    cfg.bpu.rasDepth = 32;
    cfg.bpu.ftb.sets = 1024;
    cfg.bpu.ftb.ways = 4;

    cfg.backend.retireWidth = 4;
    cfg.backend.queueDepth = 32;

    cfg.mem.l1i.sizeBytes = 16 * 1024;
    cfg.mem.l1i.assoc = 2;
    cfg.mem.l1i.blockBytes = 32;
    cfg.mem.l1TagPorts = 2;
    cfg.mem.l2.sizeBytes = 1024 * 1024;
    cfg.mem.l2.assoc = 8;
    cfg.mem.l2.blockBytes = 32;
    cfg.mem.l2HitLatency = 12;
    cfg.mem.dramLatency = 70;
    cfg.mem.prefetchBufferEntries = 32;

    return cfg;
}

std::vector<BtbBudgetPoint>
btbBudgetLadder()
{
    // Unified block-based BTB: 8-way; entry = tag + type(2) + bbsize(5)
    // + target(46); tag shrinks one bit per doubling of sets. The
    // partitioned design at each rung is sized by
    // PartitionedBtb::makeDefaultConfig(ftbEntries) to fit inside the
    // same budget with ~2.4x the entries.
    return {
        {1024, 11.5},
        {2048, 22.75},
        {4096, 45.0},
        {8192, 89.0},
        {16384, 176.0},
        {32768, 348.0},
    };
}

void
applyFtbBudget(SimConfig &cfg, unsigned entries)
{
    fatal_if(entries < 8, "FTB budget too small");
    cfg.bpu.blockBased = true;
    cfg.usePartitionedBtb = false;
    cfg.bpu.ftb.ways = 8;
    cfg.bpu.ftb.sets = std::max(1u, entries / cfg.bpu.ftb.ways);
    fatal_if(!isPowerOf2(cfg.bpu.ftb.sets),
             "FTB entries must give a power-of-two set count");
}

void
applyPartitionedBudget(SimConfig &cfg, unsigned unified_entries)
{
    cfg.bpu.blockBased = false;
    cfg.usePartitionedBtb = true;
    cfg.pbtb = PartitionedBtb::makeDefaultConfig(unified_entries,
                                                 /*tag_bits=*/16);
}

void
applyUnifiedBtbBudget(SimConfig &cfg, unsigned entries)
{
    fatal_if(entries < 8, "BTB budget too small");
    cfg.bpu.blockBased = false;
    cfg.usePartitionedBtb = false;
    cfg.bpu.btb.ways = 8;
    cfg.bpu.btb.sets = std::max(1u, entries / cfg.bpu.btb.ways);
    cfg.bpu.btb.tagBits = 0;
    cfg.bpu.btb.offsetBits = 0;
    fatal_if(!isPowerOf2(cfg.bpu.btb.sets),
             "BTB entries must give a power-of-two set count");
}

void
applyVmConfig(SimConfig &cfg, TlbPrefetchPolicy policy,
              PageMapKind mapping, unsigned itlb_entries)
{
    fatal_if(!isPowerOf2(itlb_entries),
             "ITLB entries must be a power of two");
    cfg.vm.enable = true;
    cfg.vm.pageBytes = 4096;
    cfg.vm.walkLatency = 30;
    cfg.vm.itlbEntries = itlb_entries;
    cfg.vm.itlbAssoc = itlb_entries >= 4 ? 4 : itlb_entries;
    cfg.vm.prefetchPolicy = policy;
    cfg.vm.mapping = mapping;
}

void
applyTlbHierarchy(SimConfig &cfg, unsigned l2_entries,
                  unsigned num_walkers, bool tlb_prefetch)
{
    fatal_if(l2_entries != 0 && !isPowerOf2(l2_entries),
             "L2 TLB entries must be a power of two");
    cfg.vm.l2TlbEntries = l2_entries;
    cfg.vm.l2TlbAssoc = l2_entries >= 8 ? 8 : l2_entries;
    cfg.vm.l2TlbLatency = 8;
    cfg.vm.numWalkers = num_walkers;
    cfg.vm.tlbPrefetch = tlb_prefetch;
}

void
applyMultiCore(SimConfig &cfg, unsigned cores,
               std::vector<std::string> core_workloads)
{
    fatal_if(cores == 0, "numCores must be at least 1");
    fatal_if(!core_workloads.empty() && core_workloads.size() != cores,
             "core workload list must name one workload per core");
    cfg.numCores = cores;
    cfg.coreWorkloads = std::move(core_workloads);
}

} // namespace fdip
