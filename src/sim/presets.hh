/**
 * @file presets.hh
 * Canonical machine configurations: the baseline front-end of the
 * MICRO-32 study, plus the budget ladders used by the BTB-storage
 * extension experiments.
 */

#ifndef FDIP_SIM_PRESETS_HH
#define FDIP_SIM_PRESETS_HH

#include <vector>

#include "sim/config.hh"

namespace fdip
{

/**
 * The default machine: 16KB 2-way L1-I (32B blocks, 2 tag ports),
 * 1MB L2, FTB-based decoupled front-end with a 32-entry FTQ, hybrid
 * direction predictor, 32-entry prefetch buffer.
 */
SimConfig makeBaselineConfig(const std::string &workload,
                             PrefetchScheme scheme = PrefetchScheme::None);

/** One rung of the BTB-storage ladder (extension experiments). */
struct BtbBudgetPoint
{
    unsigned ftbEntries;  ///< unified block-based BTB entries
    double ftbBudgetKB;   ///< unified storage at this rung
};

/** The six-rung ladder (1K..32K-entry unified block-based BTB). */
std::vector<BtbBudgetPoint> btbBudgetLadder();

/** Configure the unified block-based FTB at @p entries (8-way). */
void applyFtbBudget(SimConfig &cfg, unsigned entries);

/**
 * Configure the conventional front-end with the 4-partition BTB sized
 * to fit the storage of a @p unified_entries unified block-based BTB,
 * 16-bit tags.
 */
void applyPartitionedBudget(SimConfig &cfg, unsigned unified_entries);

/**
 * Configure the conventional front-end with a unified full-tag,
 * full-target BTB of @p entries (8-way).
 */
void applyUnifiedBtbBudget(SimConfig &cfg, unsigned entries);

/**
 * Enable the virtual-memory subsystem on any preset: 4KB pages,
 * 30-cycle page walks, and a 4-way (fully-associative below 4
 * entries) ITLB of @p itlb_entries. Every existing workload runs
 * unchanged with VM off; this switches the same machine to translated
 * fetch with the given prefetch-translation policy and page mapping.
 */
void applyVmConfig(SimConfig &cfg,
                   TlbPrefetchPolicy policy = TlbPrefetchPolicy::Drop,
                   PageMapKind mapping = PageMapKind::Scrambled,
                   unsigned itlb_entries = 64);

/**
 * Layer the two-level TLB hierarchy onto an applyVmConfig() machine:
 * an L2 TLB of @p l2_entries (8-way above 8 entries, fully
 * associative below; 0 disables it), @p num_walkers page-table
 * walkers (0 = unlimited), and optionally the decoupled FTQ TLB
 * prefetcher. With l2_entries == 0 and num_walkers == 0 the machine
 * is bit-identical to the single-level, unlimited-walker model.
 */
void applyTlbHierarchy(SimConfig &cfg, unsigned l2_entries,
                       unsigned num_walkers, bool tlb_prefetch = false);

/**
 * Scale any preset out to @p cores cores sharing one L2/bus/DRAM
 * (docs/MULTICORE.md). With @p core_workloads empty every core runs
 * cfg.workload (distinct per-core seeds); otherwise it must name one
 * workload — a profile name or "trace:<path>" — per core. cores == 1
 * restores the classic single-core machine bit-identically.
 */
void applyMultiCore(SimConfig &cfg, unsigned cores,
                    std::vector<std::string> core_workloads = {});

} // namespace fdip

#endif // FDIP_SIM_PRESETS_HH
