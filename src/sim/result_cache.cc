#include "sim/result_cache.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include <algorithm>
#include <vector>

#include "common/build_id.hh"
#include "common/env.hh"
#include "common/fault.hh"
#include "common/fnv.hh"
#include "common/logging.hh"
#include "sim/report.hh"

namespace fdip
{

namespace
{

/** One "key value" line; values never contain spaces. */
void
kv(std::string &out, const char *key, const std::string &value)
{
    out += key;
    out += ' ';
    out += value;
    out += '\n';
}

std::string
u64str(std::uint64_t v)
{
    return strprintf("%llu", static_cast<unsigned long long>(v));
}

/** %.17g round-trips IEEE doubles exactly through strtod. */
std::string
dblstr(double v)
{
    return strprintf("%.17g", v);
}

/**
 * Line-oriented reader that enforces the fixed key order of the
 * entry format. Any deviation flags failure with a reason.
 */
class EntryReader
{
  public:
    explicit EntryReader(const std::string &text) : in(text) {}

    bool ok() const { return error.empty(); }
    const std::string &reason() const { return error; }

    void
    fail(const std::string &why)
    {
        if (error.empty())
            error = why;
    }

    /** Next line's value for @p key; "" and failure on mismatch. */
    std::string
    expect(const char *key)
    {
        if (!ok())
            return "";
        std::string line;
        if (!std::getline(in, line)) {
            fail(strprintf("truncated before '%s'", key));
            return "";
        }
        if (line == key)
            return ""; // key-only line (the "end" marker)
        std::size_t sep = line.find(' ');
        if (sep == std::string::npos || line.substr(0, sep) != key) {
            fail(strprintf("expected '%s', got '%s'", key,
                           line.c_str()));
            return "";
        }
        return line.substr(sep + 1);
    }

    std::uint64_t
    expectU64(const char *key)
    {
        std::string v = expect(key);
        if (!ok())
            return 0;
        errno = 0;
        char *end = nullptr;
        unsigned long long n = std::strtoull(v.c_str(), &end, 10);
        if (errno != 0 || end == v.c_str() || *end != '\0') {
            fail(strprintf("bad integer for '%s': '%s'", key,
                           v.c_str()));
            return 0;
        }
        return n;
    }

    double
    expectDouble(const char *key)
    {
        std::string v = expect(key);
        if (!ok())
            return 0.0;
        errno = 0;
        char *end = nullptr;
        double d = std::strtod(v.c_str(), &end);
        if (end == v.c_str() || *end != '\0') {
            fail(strprintf("bad double for '%s': '%s'", key, v.c_str()));
            return 0.0;
        }
        return d;
    }

    std::istringstream in;

  private:
    std::string error;
};

/**
 * The per-result body shared by the top-level entry and each nested
 * per-core row: every simulated field of one SimResults minus the
 * perCore list itself.
 */
void
encodeResultsBody(std::string &out, const SimResults &r)
{
    kv(out, "workload", r.workload);
    kv(out, "scheme", r.scheme);
    kv(out, "cycles", u64str(r.cycles));
    kv(out, "instructions", u64str(r.instructions));
    kv(out, "ipc", dblstr(r.ipc));
    kv(out, "mpki", dblstr(r.mpki));
    kv(out, "l2_bus_util", dblstr(r.l2BusUtil));
    kv(out, "mem_bus_util", dblstr(r.memBusUtil));
    kv(out, "prefetch_accuracy", dblstr(r.prefetchAccuracy));
    kv(out, "prefetch_coverage", dblstr(r.prefetchCoverage));
    kv(out, "prefetch_timely", dblstr(r.prefetchTimely));
    kv(out, "prefetch_late", dblstr(r.prefetchLate));
    kv(out, "prefetch_pollution", dblstr(r.prefetchPollution));
    kv(out, "cond_mispredict_per_kilo", dblstr(r.condMispredictPerKilo));
    kv(out, "host_seconds", dblstr(r.hostSeconds));
    kv(out, "host_kcycles_per_sec", dblstr(r.hostKcyclesPerSec));
    kv(out, "skipped_cycles", u64str(r.skippedCycles));
    kv(out, "total_cycles", u64str(r.totalCycles));

    out += strprintf("ftq_occupancy %llu",
                     static_cast<unsigned long long>(
                         r.ftqOccupancy.numBuckets()));
    for (std::size_t v = 0; v < r.ftqOccupancy.numBuckets(); ++v)
        out += " " + u64str(r.ftqOccupancy.bucket(v));
    out += "\n";

    out += strprintf("pf_timeliness %llu",
                     static_cast<unsigned long long>(
                         r.pfTimeliness.numBuckets()));
    for (std::size_t v = 0; v < r.pfTimeliness.numBuckets(); ++v)
        out += " " + u64str(r.pfTimeliness.bucket(v));
    out += "\n";

    const auto &entries = r.stats.entries();
    kv(out, "stats", u64str(entries.size()));
    for (const auto &[name, val] : entries)
        out += "stat " + name + " " + dblstr(val) + "\n";
}

/** Mirror of encodeResultsBody; errors accumulate in @p rd. */
void
decodeResultsBody(EntryReader &rd, SimResults &r)
{
    r.workload = rd.expect("workload");
    r.scheme = rd.expect("scheme");
    r.cycles = rd.expectU64("cycles");
    r.instructions = rd.expectU64("instructions");
    r.ipc = rd.expectDouble("ipc");
    r.mpki = rd.expectDouble("mpki");
    r.l2BusUtil = rd.expectDouble("l2_bus_util");
    r.memBusUtil = rd.expectDouble("mem_bus_util");
    r.prefetchAccuracy = rd.expectDouble("prefetch_accuracy");
    r.prefetchCoverage = rd.expectDouble("prefetch_coverage");
    r.prefetchTimely = rd.expectDouble("prefetch_timely");
    r.prefetchLate = rd.expectDouble("prefetch_late");
    r.prefetchPollution = rd.expectDouble("prefetch_pollution");
    r.condMispredictPerKilo =
        rd.expectDouble("cond_mispredict_per_kilo");
    r.hostSeconds = rd.expectDouble("host_seconds");
    r.hostKcyclesPerSec = rd.expectDouble("host_kcycles_per_sec");
    r.skippedCycles = rd.expectU64("skipped_cycles");
    r.totalCycles = rd.expectU64("total_cycles");

    std::string occ = rd.expect("ftq_occupancy");
    if (!rd.ok())
        return;
    {
        std::istringstream os(occ);
        std::uint64_t buckets = 0;
        if (!(os >> buckets) || buckets == 0) {
            rd.fail("bad ftq_occupancy bucket count");
            return;
        }
        Histogram h(buckets - 1);
        for (std::uint64_t v = 0; v < buckets; ++v) {
            std::uint64_t count = 0;
            if (!(os >> count)) {
                rd.fail("truncated ftq_occupancy buckets");
                return;
            }
            if (count > 0)
                h.sample(v, count);
        }
        r.ftqOccupancy = h;
    }

    std::string pft = rd.expect("pf_timeliness");
    if (!rd.ok())
        return;
    {
        std::istringstream os(pft);
        std::uint64_t buckets = 0;
        if (!(os >> buckets) || buckets == 0) {
            rd.fail("bad pf_timeliness bucket count");
            return;
        }
        Histogram h(buckets - 1);
        for (std::uint64_t v = 0; v < buckets; ++v) {
            std::uint64_t count = 0;
            if (!(os >> count)) {
                rd.fail("truncated pf_timeliness buckets");
                return;
            }
            if (count > 0)
                h.sample(v, count);
        }
        r.pfTimeliness = h;
    }

    std::uint64_t num_stats = rd.expectU64("stats");
    for (std::uint64_t i = 0; rd.ok() && i < num_stats; ++i) {
        std::string line;
        if (!std::getline(rd.in, line)) {
            rd.fail("truncated stat list");
            break;
        }
        std::istringstream ls(line);
        std::string tag, name, value;
        if (!(ls >> tag >> name >> value) || tag != "stat") {
            rd.fail(strprintf("bad stat line '%s'", line.c_str()));
            break;
        }
        errno = 0;
        char *end = nullptr;
        double d = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0') {
            rd.fail(strprintf("bad stat value '%s'", value.c_str()));
            break;
        }
        r.stats.set(name, d);
    }
}

} // namespace

std::string
encodeCacheEntry(std::uint64_t fingerprint, std::uint64_t warmup_insts,
                 std::uint64_t measure_insts, const SimResults &r)
{
    std::string out;
    kv(out, "fdip-result-cache",
       u64str(ResultCache::kFormatVersion));
    kv(out, "build", strprintf("%016llx",
       static_cast<unsigned long long>(buildIdentity())));
    kv(out, "fingerprint", strprintf("%016llx",
       static_cast<unsigned long long>(fingerprint)));
    kv(out, "warmup", u64str(warmup_insts));
    kv(out, "measure", u64str(measure_insts));
    encodeResultsBody(out, r);
    // Nested per-core rows (multi-core machines; 0 on single-core).
    kv(out, "per_core", u64str(r.perCore.size()));
    for (std::size_t i = 0; i < r.perCore.size(); ++i) {
        kv(out, "core", u64str(i));
        encodeResultsBody(out, r.perCore[i]);
    }
    // Hash of the canonical serialization of the *encoded* results.
    // The decoder recomputes it from the decoded SimResults, so any
    // divergence between this codec and serializeResults() — e.g. a
    // field added to SimResults and report.cc but missed here, which
    // would otherwise decode silently as a default value — rejects
    // the entry instead of serving wrong tables.
    kv(out, "canonical", strprintf("%016llx",
       static_cast<unsigned long long>(fnv1aHash(serializeResults(r)))));
    out += "end\n";
    return out;
}

std::optional<SimResults>
decodeCacheEntry(const std::string &text, std::uint64_t fingerprint,
                 std::uint64_t warmup_insts, std::uint64_t measure_insts,
                 std::string *error)
{
    EntryReader rd(text);
    auto failed = [&]() -> std::optional<SimResults> {
        if (error)
            *error = rd.reason();
        return std::nullopt;
    };

    std::uint64_t version = rd.expectU64("fdip-result-cache");
    if (rd.ok() && version != ResultCache::kFormatVersion)
        rd.fail(strprintf("format version %llu, want %u",
                          static_cast<unsigned long long>(version),
                          ResultCache::kFormatVersion));
    std::string build = rd.expect("build");
    if (rd.ok() &&
        build != strprintf("%016llx",
                           static_cast<unsigned long long>(
                               buildIdentity())))
        rd.fail(strprintf("stale entry: build identity mismatch "
                          "(entry %s, this build %016llx)",
                          build.c_str(),
                          static_cast<unsigned long long>(
                              buildIdentity())));
    std::string fp = rd.expect("fingerprint");
    if (rd.ok() &&
        fp != strprintf("%016llx",
                        static_cast<unsigned long long>(fingerprint)))
        rd.fail("stale entry: config fingerprint mismatch");
    std::uint64_t warmup = rd.expectU64("warmup");
    if (rd.ok() && warmup != warmup_insts)
        rd.fail("stale entry: warmup length mismatch");
    std::uint64_t measure = rd.expectU64("measure");
    if (rd.ok() && measure != measure_insts)
        rd.fail("stale entry: measure length mismatch");
    if (!rd.ok())
        return failed();

    SimResults r;
    decodeResultsBody(rd, r);
    if (!rd.ok())
        return failed();

    std::uint64_t num_cores = rd.expectU64("per_core");
    if (rd.ok() && num_cores > 64) {
        rd.fail("implausible per_core count");
        return failed();
    }
    for (std::uint64_t i = 0; rd.ok() && i < num_cores; ++i) {
        std::uint64_t idx = rd.expectU64("core");
        if (rd.ok() && idx != i)
            rd.fail("per-core rows out of order");
        SimResults row;
        decodeResultsBody(rd, row);
        if (rd.ok())
            r.perCore.push_back(std::move(row));
    }
    if (!rd.ok())
        return failed();

    std::string canonical = rd.expect("canonical");
    if (rd.ok() &&
        canonical != strprintf("%016llx",
                               static_cast<unsigned long long>(
                                   fnv1aHash(serializeResults(r)))))
        rd.fail("canonical-serialization hash mismatch (codec and "
                "serializeResults() disagree about this entry)");
    std::string tail = rd.expect("end");
    if (rd.ok() && !tail.empty())
        rd.fail("trailing garbage after 'end'");
    if (!rd.ok())
        return failed();
    return r;
}

std::uint64_t
ResultCache::budgetBytesFromEnv()
{
    return envUint("FDIP_CACHE_BUDGET_MB", 0) * 1024 * 1024;
}

ResultCache::ResultCache(std::string dir, std::uint64_t budget_bytes)
    : directory(std::move(dir))
{
    std::error_code ec;
    std::filesystem::create_directories(directory, ec);
    if (ec)
        warn("result cache: cannot create '%s': %s (writes will fail)",
             directory.c_str(), ec.message().c_str());
    collectGarbage(budget_bytes);
}

void
ResultCache::collectGarbage(std::uint64_t budget_bytes)
{
    if (budget_bytes == 0)
        return; // unlimited: opening the cache stays O(1)

    struct File
    {
        std::string path;
        std::filesystem::file_time_type mtime;
        std::uint64_t size;
    };
    std::vector<File> files;
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto &de :
         std::filesystem::directory_iterator(directory, ec)) {
        if (!de.is_regular_file(ec))
            continue;
        std::string path = de.path().string();
        // Quarantined (.bad) files count against the budget too: they
        // are kept as evidence, not forever.
        bool entry = path.size() >= 7 &&
            path.compare(path.size() - 7, 7, ".result") == 0;
        bool bad = path.size() >= 4 &&
            path.compare(path.size() - 4, 4, ".bad") == 0;
        if (!entry && !bad)
            continue;
        std::uint64_t size = de.file_size(ec);
        if (ec)
            continue;
        files.push_back({path, de.last_write_time(ec), size});
        total += size;
    }
    if (total <= budget_bytes)
        return;

    // Oldest first; ties broken by path so eviction order is
    // deterministic when a test backdates several entries at once.
    std::sort(files.begin(), files.end(),
              [](const File &a, const File &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.path < b.path;
              });
    std::uint64_t freed = 0;
    for (const File &f : files) {
        if (total - freed <= budget_bytes)
            break;
        std::error_code rm;
        if (std::filesystem::remove(f.path, rm) && !rm) {
            freed += f.size;
            ++numEvicted;
        }
    }
    if (numEvicted > 0) {
        inform("result cache: evicted %zu oldest entries (%llu KB) to "
               "meet the %llu MB budget",
               numEvicted,
               static_cast<unsigned long long>(freed / 1024),
               static_cast<unsigned long long>(
                   budget_bytes / (1024 * 1024)));
    }
}

std::unique_ptr<ResultCache>
ResultCache::fromEnv()
{
    if (const char *off = std::getenv("FDIP_NO_CACHE")) {
        if (*off != '\0' && std::strcmp(off, "0") != 0)
            return nullptr;
    }
    const char *dir = std::getenv("FDIP_CACHE_DIR");
    if (!dir || *dir == '\0')
        return nullptr;
    return std::make_unique<ResultCache>(dir);
}

std::string
ResultCache::entryPath(std::uint64_t fingerprint,
                       std::uint64_t warmup_insts,
                       std::uint64_t measure_insts) const
{
    return strprintf("%s/fp%016llx-w%llu-m%llu.result",
                     directory.c_str(),
                     static_cast<unsigned long long>(fingerprint),
                     static_cast<unsigned long long>(warmup_insts),
                     static_cast<unsigned long long>(measure_insts));
}

std::optional<SimResults>
ResultCache::load(std::uint64_t fingerprint, std::uint64_t warmup_insts,
                  std::uint64_t measure_insts) const
{
    std::string path = entryPath(fingerprint, warmup_insts,
                                 measure_insts);
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt; // plain miss
    std::ostringstream buf;
    buf << in.rdbuf();

    std::string why;
    auto r = decodeCacheEntry(buf.str(), fingerprint, warmup_insts,
                              measure_insts, &why);
    if (!r) {
        // Quarantine rather than delete: the file is evidence (flaky
        // disk? torn write? stale build?) and moving it aside both
        // preserves it and guarantees the re-simulated entry cannot
        // collide with the bad bytes.
        in.close();
        std::string bad = path + ".bad";
        std::error_code ec;
        std::filesystem::rename(path, bad, ec);
        if (ec)
            bad = strprintf("<rename failed: %s>", ec.message().c_str());
        numQuarantined.fetch_add(1, std::memory_order_relaxed);
        warn("result cache: rejecting entry '%s': %s (quarantined as "
             "'%s')",
             path.c_str(), why.c_str(), bad.c_str());
    }
    return r;
}

void
ResultCache::store(std::uint64_t fingerprint, std::uint64_t warmup_insts,
                   std::uint64_t measure_insts, const SimResults &r) const
{
    std::string path = entryPath(fingerprint, warmup_insts,
                                 measure_insts);
    // Write-then-rename keeps concurrently sharing binaries safe: a
    // reader sees either no entry or a complete one, never a torn
    // write. Same-key writers race benignly (identical content).
    static std::atomic<unsigned long long> serial{0};
    std::string tmp = strprintf("%s.tmp%ld.%llu", path.c_str(),
                                static_cast<long>(::getpid()),
                                serial.fetch_add(1) + 1);
    std::string text = encodeCacheEntry(fingerprint, warmup_insts,
                                        measure_insts, r);
    if (FaultInjector::instance().corruptThisStore()) {
        warn("fault injection: tearing cache entry '%s'", path.c_str());
        text.resize(text.size() / 2);
    }
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("result cache: cannot write '%s'", tmp.c_str());
            return;
        }
        out << text;
        if (!out) {
            warn("result cache: short write to '%s'", tmp.c_str());
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        warn("result cache: cannot publish '%s': %s", path.c_str(),
             ec.message().c_str());
        std::filesystem::remove(tmp, ec);
    }
}

} // namespace fdip
