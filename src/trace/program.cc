#include "trace/program.hh"

#include "common/logging.hh"

namespace fdip
{

unsigned
Function::numInsts() const
{
    unsigned n = 0;
    for (const auto &bb : blocks)
        n += bb.numInsts;
    return n;
}

void
Program::layout()
{
    panic_if(funcs.empty(), "Program::layout with no functions");
    Addr pc = base;
    for (auto &fn : funcs) {
        fn.entry = pc;
        for (auto &bb : fn.blocks) {
            panic_if(bb.numInsts == 0, "zero-size basic block");
            bb.start = pc;
            pc += Addr(bb.numInsts) * instBytes;
        }
    }
    end = pc;
}

void
Program::validate() const
{
    panic_if(end == 0, "Program::validate before layout");
    for (std::size_t fi = 0; fi < funcs.size(); ++fi) {
        const auto &fn = funcs[fi];
        panic_if(fn.blocks.empty(), "function %zu has no blocks", fi);
        for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
            const auto &bb = fn.blocks[bi];
            switch (bb.term) {
              case InstClass::CondBr:
                panic_if(bi + 1 >= fn.blocks.size(),
                         "fn %zu bb %zu: conditional branch in final "
                         "block has no fallthrough", fi, bi);
                [[fallthrough]];
              case InstClass::Jump:
                panic_if(bb.targetBb >= fn.blocks.size(),
                         "fn %zu bb %zu: branch target out of range",
                         fi, bi);
                break;
              case InstClass::Call:
                panic_if(bb.targetFn >= funcs.size(),
                         "fn %zu bb %zu: callee out of range", fi, bi);
                panic_if(bi + 1 >= fn.blocks.size(),
                         "fn %zu bb %zu: call in final block has no "
                         "return-to block", fi, bi);
                break;
              case InstClass::IndJump:
              case InstClass::IndCall:
                panic_if(bb.indTargets.empty(),
                         "fn %zu bb %zu: indirect with no targets", fi, bi);
                panic_if(bb.indTargets.size() != bb.indWeights.size(),
                         "fn %zu bb %zu: weight/target mismatch", fi, bi);
                for (auto t : bb.indTargets) {
                    panic_if(t >= funcs.size(),
                             "fn %zu bb %zu: indirect target out of range",
                             fi, bi);
                }
                if (bb.term == InstClass::IndCall) {
                    panic_if(bi + 1 >= fn.blocks.size(),
                             "fn %zu bb %zu: indcall in final block", fi, bi);
                }
                break;
              case InstClass::NonCF:
                panic_if(bi + 1 >= fn.blocks.size(),
                         "fn %zu bb %zu: fallthrough out of function",
                         fi, bi);
                break;
              case InstClass::Return:
                break;
            }
        }
    }
}

} // namespace fdip
