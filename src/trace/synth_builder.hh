/**
 * @file synth_builder.hh
 * Turns a WorkloadProfile into a concrete synthetic Program: a layered
 * (acyclic) call graph of functions, each a structured CFG of basic
 * blocks with loops, forward branches, direct and indirect calls.
 */

#ifndef FDIP_TRACE_SYNTH_BUILDER_HH
#define FDIP_TRACE_SYNTH_BUILDER_HH

#include <memory>

#include "trace/profile.hh"
#include "trace/program.hh"

namespace fdip
{

/**
 * Build the program for @p profile. Deterministic in profile.seed.
 * The returned program is laid out and validated.
 */
std::unique_ptr<Program> buildProgram(const WorkloadProfile &profile);

} // namespace fdip

#endif // FDIP_TRACE_SYNTH_BUILDER_HH
