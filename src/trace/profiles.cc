/**
 * @file profiles.cc
 * The workload suite. Footprints and branch behaviour are chosen to span
 * the space the MICRO-32 paper's SPEC95/C++ suite covers: from small
 * loop-dominated codes that fit in a 16KB L1-I (li, ijpeg) to large
 * branchy codes with hundreds of KB of text (gcc, vortex, groff).
 */

#include "trace/profile.hh"

#include "common/logging.hh"

namespace fdip
{

namespace
{

std::vector<WorkloadProfile>
buildSuite()
{
    std::vector<WorkloadProfile> suite;

    // Small-footprint, loop-heavy; near-zero L1-I pressure.
    {
        WorkloadProfile p;
        p.name = "li";
        p.seed = 101;
        p.codeFootprintBytes = 24 * 1024;
        p.meanBlockInsts = 5.5;
        p.loopFraction = 0.42;
        p.meanTripCount = 14.0;
        p.calleeZipf = 1.1;
        suite.push_back(p);
    }
    {
        WorkloadProfile p;
        p.name = "ijpeg";
        p.seed = 102;
        p.codeFootprintBytes = 40 * 1024;
        p.meanBlockInsts = 8.0;
        p.loopFraction = 0.50;
        p.meanTripCount = 24.0;
        p.wCond = 0.50;
        p.wCall = 0.14;
        p.calleeZipf = 1.2;
        suite.push_back(p);
    }
    {
        WorkloadProfile p;
        p.name = "m88ksim";
        p.seed = 103;
        p.codeFootprintBytes = 56 * 1024;
        p.meanBlockInsts = 6.0;
        p.loopFraction = 0.34;
        p.meanTripCount = 10.0;
        p.calleeZipf = 1.0;
        suite.push_back(p);
    }
    {
        WorkloadProfile p;
        p.name = "deltablue";
        p.seed = 104;
        p.codeFootprintBytes = 72 * 1024;
        p.meanBlockInsts = 4.5;   // C++-style short blocks
        p.wCall = 0.24;           // call-heavy
        p.wIndCall = 0.08;        // virtual dispatch
        p.loopFraction = 0.20;
        p.meanTripCount = 5.0;
        p.calleeZipf = 0.9;
        suite.push_back(p);
    }

    // Large-footprint, branchy; heavy L1-I pressure.
    {
        WorkloadProfile p;
        p.name = "burg";
        p.seed = 105;
        p.codeFootprintBytes = 144 * 1024;
        p.meanBlockInsts = 5.0;
        p.loopFraction = 0.22;
        p.meanTripCount = 6.0;
        p.calleeZipf = 0.95;
        p.phaseLen = 900 * 1000;
        suite.push_back(p);
    }
    {
        WorkloadProfile p;
        p.name = "perl";
        p.seed = 106;
        p.codeFootprintBytes = 176 * 1024;
        p.meanBlockInsts = 5.5;
        p.wIndCall = 0.06;        // opcode dispatch
        p.loopFraction = 0.24;
        p.meanTripCount = 7.0;
        p.calleeZipf = 0.92;
        p.phaseLen = 700 * 1000;
        suite.push_back(p);
    }
    {
        WorkloadProfile p;
        p.name = "go";
        p.seed = 107;
        p.codeFootprintBytes = 208 * 1024;
        p.meanBlockInsts = 6.5;
        p.loopFraction = 0.18;
        p.meanTripCount = 5.0;
        p.biasLo = 0.15;          // hard-to-predict branches
        p.biasHi = 0.85;
        p.patternFraction = 0.15;
        p.calleeZipf = 0.9;
        suite.push_back(p);
    }
    {
        WorkloadProfile p;
        p.name = "groff";
        p.seed = 108;
        p.codeFootprintBytes = 240 * 1024;
        p.meanBlockInsts = 4.5;   // C++-style short blocks
        p.wCall = 0.22;
        p.wIndCall = 0.07;
        p.loopFraction = 0.20;
        p.meanTripCount = 6.0;
        p.calleeZipf = 0.95;
        p.phaseLen = 800 * 1000;
        suite.push_back(p);
    }
    {
        WorkloadProfile p;
        p.name = "gcc";
        p.seed = 109;
        p.codeFootprintBytes = 288 * 1024;
        p.meanBlockInsts = 5.0;
        p.loopFraction = 0.20;
        p.meanTripCount = 5.0;
        p.calleeZipf = 0.85;      // flat reuse: big active set
        p.phaseLen = 600 * 1000;
        suite.push_back(p);
    }
    {
        WorkloadProfile p;
        p.name = "vortex";
        p.seed = 110;
        p.codeFootprintBytes = 256 * 1024;
        p.meanBlockInsts = 6.0;
        p.wCall = 0.22;
        p.loopFraction = 0.18;
        p.meanTripCount = 5.0;
        p.calleeZipf = 1.0;
        p.phaseLen = 750 * 1000;
        suite.push_back(p);
    }

    return suite;
}

} // namespace

const std::vector<WorkloadProfile> &
workloadSuite()
{
    static const std::vector<WorkloadProfile> suite = buildSuite();
    return suite;
}

const WorkloadProfile &
findProfile(const std::string &name)
{
    for (const auto &p : workloadSuite()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown workload profile '%s'", name.c_str());
}

std::vector<std::string>
largeFootprintNames()
{
    return {"burg", "perl", "go", "groff", "gcc", "vortex"};
}

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names;
    for (const auto &p : workloadSuite())
        names.push_back(p.name);
    return names;
}

} // namespace fdip
