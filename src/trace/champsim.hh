/**
 * @file champsim.hh
 * ChampSim instruction-trace ingestion: decodes the de-facto
 * interchange format for server-class workload traces into the
 * simulator's TraceSource interface.
 *
 * A ChampSim trace is a stream of fixed 64-byte records — instruction
 * pointer, branch/taken flags, and the source/destination register
 * and memory operand slots — usually xz- or gzip-compressed. Branch
 * *types* are not stored; they are reconstructed from which special
 * registers (stack pointer, flags, instruction pointer) each record
 * reads and writes, exactly the heuristics ChampSim's tracereader
 * applies. Branch *targets* are not stored either: a taken transfer's
 * target is simply the next record's IP, so decoding runs one record
 * ahead.
 *
 * ChampSim IPs are variable-length x86 addresses; this simulator
 * models fixed 4-byte instructions whose fall-through successor is
 * pc+4 and whose return address is call_pc+4. The PcCanonicalizer
 * bridges the two: original IPs are assigned word-aligned canonical
 * PCs from a bump allocator in first-encounter order, slots after
 * branch-capable instructions are reserved for their fall-through
 * successors, and where the dynamic stream falls through to code that
 * was already placed elsewhere a synthetic trampoline Jump (or a
 * NonCF-to-Jump reclassification) preserves the control-flow graph.
 * The invariant the conformance tests pin: in the canonical stream,
 * every not-taken/NonCF record is followed by pc+4, and every taken
 * record is followed by its target (docs/TRACES.md).
 */

#ifndef FDIP_TRACE_CHAMPSIM_HH
#define FDIP_TRACE_CHAMPSIM_HH

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/trace_file.hh"

namespace fdip
{

/** Operand-slot counts of the ChampSim instruction record. */
constexpr unsigned champSimNumDst = 2;
constexpr unsigned champSimNumSrc = 4;

/** The special architectural registers the type heuristics test. */
constexpr std::uint8_t champSimRegStackPointer = 6;
constexpr std::uint8_t champSimRegFlags = 25;
constexpr std::uint8_t champSimRegInstructionPointer = 26;

/** One 64-byte ChampSim trace record (input_instr). */
struct ChampSimRecord
{
    std::uint64_t ip;
    std::uint8_t isBranch;
    std::uint8_t branchTaken;
    std::uint8_t destinationRegisters[champSimNumDst];
    std::uint8_t sourceRegisters[champSimNumSrc];
    std::uint64_t destinationMemory[champSimNumDst];
    std::uint64_t sourceMemory[champSimNumSrc];
};

static_assert(sizeof(ChampSimRecord) == 64, "ChampSim record layout");

/**
 * Reconstruct the instruction class from the record's register
 * heuristics (writes-IP + reads-SP/flags/other patterns). Records the
 * heuristics cannot place but that are flagged is_branch degrade to
 * CondBr — the conservative front-end assumption.
 */
InstClass classifyChampSim(const ChampSimRecord &rec);

/**
 * Maps original (variable-length, arbitrary-alignment) instruction
 * addresses onto the simulator's word-aligned fixed-4-byte code
 * space. Stateful and single-pass: decisions (slot assignments,
 * NonCF-to-Jump conversions, trampolines, conditional taken-target
 * caches, the call/return shadow stack) are memoized per original IP,
 * so repeated encounters — and repeated passes over a looping trace —
 * replay identically.
 */
class PcCanonicalizer
{
  public:
    /** @p reserve_bytes bounds the canonical code region starting at
     *  @p base; exhausting it raises SimError. */
    explicit PcCanonicalizer(Addr base, std::uint64_t reserve_bytes);

    /**
     * Canonicalize the record @p cur (class @p cls), whose successor
     * in the dynamic stream is at original IP @p next_ip (class
     * @p next_cls — known from the reader's lookahead), appending the
     * canonical instruction — plus a trampoline Jump when the
     * fall-through or return path needs one — to @p out.
     */
    void emit(const ChampSimRecord &cur, InstClass cls,
              std::uint64_t next_ip, InstClass next_cls,
              std::deque<TraceInstr> &out);

    Addr base() const { return codeBase; }
    /** One past the highest slot handed out so far. */
    Addr allocatedEnd() const { return maxSlot; }
    Addr reservedEnd() const { return codeBase + reserveBytes; }

  private:
    /** Where control enters the successor: at @p entry; `adjacent`
     *  means it enters through the fall-through slot (directly or via
     *  a trampoline installed there), so the current instruction may
     *  stay a fall-through. Otherwise the caller must emit a taken
     *  transfer to @p entry. */
    struct FallThroughResult
    {
        Addr entry;
        bool adjacent;
    };

    /** Existing slot of @p ip, or a fresh allocation sized for
     *  @p cls (branch-capable classes also reserve slot+4). */
    Addr place(std::uint64_t ip, InstClass cls);
    /** Bind @p ip to @p slot (free or a consumed reservation) and
     *  make @p cls's successor reservation. */
    void claimAt(std::uint64_t ip, Addr slot, InstClass cls);
    bool slotFree(Addr slot) const { return occupied.count(slot) == 0; }
    void installTrampoline(Addr slot, Addr target);
    static void emitTrampoline(std::deque<TraceInstr> &out, Addr slot,
                               Addr target);
    /**
     * Route control falling into @p slot toward the successor
     * @p succ_ip: claim the slot for it, reuse or install a
     * trampoline there (@p may_use_reservation gates consuming a
     * reservation for that), or fail over to the successor's own
     * canonical slot. Appends any trampoline executed on this path to
     * @p out.
     */
    FallThroughResult fallInto(Addr slot, bool may_use_reservation,
                               std::uint64_t succ_ip, InstClass succ_cls,
                               std::deque<TraceInstr> &out);

    Addr codeBase;
    std::uint64_t reserveBytes;
    Addr nextAlloc;
    Addr maxSlot;

    std::unordered_map<std::uint64_t, Addr> canon;
    /** Every slot handed out: assigned, reserved, or trampoline. */
    std::unordered_set<Addr> occupied;
    /** slot -> owning original IP, for reservations not yet claimed. */
    std::unordered_map<Addr, std::uint64_t> reservedSlots;
    /** Original IP -> its reserved (or claimed) successor slot. */
    std::unordered_map<std::uint64_t, Addr> successorSlot;
    /** Trampoline Jumps already installed: site -> target. */
    std::unordered_map<Addr, Addr> trampolines;
    /** Conditional branches: cached static taken target. */
    std::unordered_map<std::uint64_t, Addr> condTarget;
    /** NonCF records reclassified as Jump (fall-through was mapped
     *  elsewhere): original IP -> latest jump target. */
    std::unordered_map<std::uint64_t, Addr> noncfJump;
    /** Call/return shadow stack of reserved return slots. */
    std::vector<Addr> callStack;
};

/**
 * Streams a ChampSim trace as a TraceSource: decompression (xz/gzip
 * by extension, through a pluggable decompress pipe), record decode,
 * branch-type reconstruction, and PC canonicalization, with one
 * record of lookahead for targets. Loops at end of stream like every
 * trace source; the canonicalizer's memoized decisions make repeated
 * passes identical. codeBase()/codeEnd() report the canonicalizer's
 * reserve region (the final extent is unknowable before streaming).
 */
class ChampSimTraceReader : public FileTraceSource
{
  public:
    explicit ChampSimTraceReader(const std::string &path);
    ~ChampSimTraceReader() override;

    ChampSimTraceReader(const ChampSimTraceReader &) = delete;
    ChampSimTraceReader &operator=(const ChampSimTraceReader &) = delete;

    TraceInstr next() override;

    Addr codeBase() const override;
    Addr codeEnd() const override;

    /** Completed passes over the underlying file (0 during the
     *  first). */
    std::uint64_t sourcePasses() const { return passes; }
    /** Canonical instructions still queued from already-decoded
     *  records. */
    bool hasPending() const { return !pending.empty(); }
    /** Raw 64-byte records consumed so far (all passes). */
    std::uint64_t recordsRead() const { return rawRecords; }
    /** Tight end of the canonical region allocated so far. */
    Addr allocatedEnd() const { return canonicalizer.allocatedEnd(); }

  private:
    void open();
    void closeStream();
    bool readRecord(ChampSimRecord &rec);
    void refill();

    std::string path_;
    std::FILE *stream = nullptr;
    bool piped = false;

    PcCanonicalizer canonicalizer;
    std::deque<TraceInstr> pending;
    ChampSimRecord lookahead{};
    bool haveLookahead = false;
    std::uint64_t rawRecords = 0;
    std::uint64_t passes = 0;
};

/** True when @p path names a ChampSim-format trace (by extension:
 *  .champsim.trace / .champsimtrace, optionally .xz/.gz). */
bool isChampSimTracePath(const std::string &path);

/**
 * Open @p path as a trace workload: ChampSim-format paths stream
 * through ChampSimTraceReader, everything else through the native
 * TraceFileReader. SimError on any unreadable or corrupt input.
 */
std::unique_ptr<FileTraceSource>
openTraceWorkload(const std::string &path);

} // namespace fdip

#endif // FDIP_TRACE_CHAMPSIM_HH
