/**
 * @file code_image.hh
 * Flat, PC-indexed view of a program's static instructions. The branch
 * prediction unit uses this to walk down *predicted* (possibly wrong)
 * paths: given any PC inside the image it can tell whether the
 * instruction there is a branch and, for direct branches, where it goes.
 */

#ifndef FDIP_TRACE_CODE_IMAGE_HH
#define FDIP_TRACE_CODE_IMAGE_HH

#include <vector>

#include "common/types.hh"
#include "trace/instr.hh"
#include "trace/program.hh"

namespace fdip
{

/** Static properties of one instruction in the image. */
struct StaticInst
{
    InstClass cls = InstClass::NonCF;
    /** Static destination for direct CF; invalidAddr otherwise. */
    Addr target = invalidAddr;
};

class CodeImage
{
  public:
    /** Build the image from a laid-out, validated program. */
    explicit CodeImage(const Program &prog);

    Addr base() const { return base_; }
    Addr end() const { return end_; }
    std::uint64_t numInsts() const { return insts.size(); }
    std::uint64_t codeBytes() const { return end_ - base_; }

    bool
    contains(Addr pc) const
    {
        return pc >= base_ && pc < end_ && (pc & (instBytes - 1)) == 0;
    }

    /** Static instruction at @p pc; PC must be inside the image. */
    const StaticInst &at(Addr pc) const;

    /**
     * Static instruction at @p pc, or a NonCF placeholder when the PC
     * is outside the image (wrong-path walks can run off the code).
     */
    const StaticInst &atOrPlain(Addr pc) const;

    /** Count of static instructions per class (for characterization). */
    std::uint64_t countClass(InstClass cls) const;

  private:
    Addr base_;
    Addr end_;
    std::vector<StaticInst> insts;
    StaticInst plain;
};

} // namespace fdip

#endif // FDIP_TRACE_CODE_IMAGE_HH
