#include "trace/executor.hh"

#include "common/logging.hh"

namespace fdip
{

SyntheticExecutor::SyntheticExecutor(const Program &program,
                                     const WorkloadProfile &prof)
    : prog(program), profile(prof), rng(prof.seed ^ 0xdecaf)
{
    panic_if(prog.funcs.empty(), "executor over empty program");
    enterBlock(0, 0);
}

void
SyntheticExecutor::enterBlock(std::uint32_t fn, std::uint32_t bb)
{
    curFn = fn;
    curBb = bb;
    instIdx = 0;
}

bool
SyntheticExecutor::condOutcome(const BasicBlock &bb, Addr pc)
{
    BranchState &st = branchState[pc];
    switch (bb.cond.kind) {
      case CondBehavior::Kind::Loop: {
        if (!st.loopActive) {
            unsigned trips = rng.geometric(bb.cond.param);
            st.loopActive = true;
            st.remainingTaken = trips - 1;
        }
        if (st.remainingTaken > 0) {
            --st.remainingTaken;
            return true;
        }
        st.loopActive = false;
        return false;
      }
      case CondBehavior::Kind::Pattern: {
        bool taken = (bb.cond.pattern >> st.patternPos) & 1;
        st.patternPos = static_cast<std::uint8_t>(
            (st.patternPos + 1) % bb.cond.patternLen);
        return taken;
      }
      case CondBehavior::Kind::Biased:
        return rng.chance(bb.cond.param);
    }
    panic("unreachable cond kind");
}

std::uint32_t
SyntheticExecutor::pickIndirect(const BasicBlock &bb)
{
    // Weighted pick, with a phase-dependent rotation of the popularity
    // ranking: as phases advance, a different subset of targets gets
    // hot, shifting the instruction working set.
    WeightedChoice choice(bb.indWeights);
    std::size_t idx = choice.sample(rng);
    if (profile.phaseLen > 0) {
        std::uint64_t phase = count / profile.phaseLen;
        idx = (idx + phase) % bb.indTargets.size();
    }
    return bb.indTargets[idx];
}

TraceInstr
SyntheticExecutor::next()
{
    const Function &fn = prog.funcs[curFn];
    const BasicBlock &bb = fn.blocks[curBb];

    TraceInstr ti;
    ti.pc = bb.start + Addr(instIdx) * instBytes;

    bool is_terminator =
        (instIdx + 1 == bb.numInsts) && bb.term != InstClass::NonCF;

    if (!is_terminator) {
        ti.cls = InstClass::NonCF;
        ti.taken = false;
        ++instIdx;
        if (instIdx == bb.numInsts) {
            // NonCF-terminated block: fall through to the next block.
            enterBlock(curFn, curBb + 1);
        }
        ++count;
        stNoncf.inc();
        return ti;
    }

    ti.cls = bb.term;
    switch (bb.term) {
      case InstClass::CondBr: {
        ti.target = fn.blocks[bb.targetBb].start;
        ti.taken = condOutcome(bb, ti.pc);
        enterBlock(curFn, ti.taken ? bb.targetBb : curBb + 1);
        stCond.inc();
        (ti.taken ? stCondTaken : stCondNottaken).inc();
        break;
      }
      case InstClass::Jump:
        ti.target = fn.blocks[bb.targetBb].start;
        ti.taken = true;
        enterBlock(curFn, bb.targetBb);
        stJump.inc();
        break;
      case InstClass::Call: {
        ti.target = prog.funcs[bb.targetFn].entry;
        ti.taken = true;
        stack.push_back({curFn, curBb + 1});
        panic_if(stack.size() > 4096, "runaway call depth");
        enterBlock(bb.targetFn, 0);
        stCall.inc();
        break;
      }
      case InstClass::Return: {
        ti.taken = true;
        if (stack.empty()) {
            // The dispatcher never returns; a stray return restarts it.
            ti.target = prog.funcs[0].entry;
            enterBlock(0, 0);
        } else {
            Frame f = stack.back();
            stack.pop_back();
            ti.target = prog.funcs[f.fn].blocks[f.bb].start;
            enterBlock(f.fn, f.bb);
        }
        stRet.inc();
        break;
      }
      case InstClass::IndCall: {
        std::uint32_t callee = pickIndirect(bb);
        ti.target = prog.funcs[callee].entry;
        ti.taken = true;
        stack.push_back({curFn, curBb + 1});
        panic_if(stack.size() > 4096, "runaway call depth");
        enterBlock(callee, 0);
        stIndcall.inc();
        break;
      }
      case InstClass::IndJump: {
        std::uint32_t target = pickIndirect(bb);
        ti.target = prog.funcs[target].entry;
        ti.taken = true;
        enterBlock(target, 0);
        stIndjump.inc();
        break;
      }
      case InstClass::NonCF:
        panic("terminator dispatch on NonCF");
    }

    ++count;
    return ti;
}

const TraceInstr &
TraceWindow::at(InstSeqNum seq)
{
    panic_if(seq < base, "TraceWindow::at(%llu) below window base %llu",
             static_cast<unsigned long long>(seq),
             static_cast<unsigned long long>(base));
    while (seq - base >= buf.size())
        buf.push_back(src.next());
    return buf[seq - base];
}

void
TraceWindow::retireUpTo(InstSeqNum seq)
{
    while (base < seq) {
        if (buf.empty()) {
            // Keep sequence numbering dense even when retiring past
            // the generated window: generate and discard.
            src.next();
        } else {
            buf.pop_front();
        }
        ++base;
    }
}

} // namespace fdip
