#include "trace/code_image.hh"

#include "common/logging.hh"

namespace fdip
{

CodeImage::CodeImage(const Program &prog)
    : base_(prog.base), end_(prog.codeEnd())
{
    panic_if(end_ <= base_, "CodeImage over empty program");
    insts.resize((end_ - base_) / instBytes);

    for (const auto &fn : prog.funcs) {
        for (const auto &bb : fn.blocks) {
            if (bb.term == InstClass::NonCF)
                continue;
            std::size_t idx = (bb.terminatorPc() - base_) / instBytes;
            StaticInst &si = insts[idx];
            si.cls = bb.term;
            switch (bb.term) {
              case InstClass::CondBr:
              case InstClass::Jump:
                si.target = fn.blocks[bb.targetBb].start;
                break;
              case InstClass::Call:
                si.target = prog.funcs[bb.targetFn].entry;
                break;
              default:
                si.target = invalidAddr;
                break;
            }
        }
    }
}

const StaticInst &
CodeImage::at(Addr pc) const
{
    panic_if(!contains(pc), "CodeImage::at(%#llx) outside image",
             static_cast<unsigned long long>(pc));
    return insts[(pc - base_) / instBytes];
}

const StaticInst &
CodeImage::atOrPlain(Addr pc) const
{
    if (!contains(pc))
        return plain;
    return insts[(pc - base_) / instBytes];
}

std::uint64_t
CodeImage::countClass(InstClass cls) const
{
    std::uint64_t n = 0;
    for (const auto &si : insts) {
        if (si.cls == cls)
            ++n;
    }
    return n;
}

} // namespace fdip
