#include "trace/trace_file.hh"

#include <cstdarg>
#include <cstring>

#include "common/error.hh"
#include "common/fault.hh"
#include "common/logging.hh"

namespace fdip
{

namespace
{

/** Read-buffer size: bounded memory however long the trace is. */
constexpr std::size_t kReadBufBytes = 64 * 1024;

/**
 * Code-range reserve reported for v1 files, whose header predates the
 * range fields: base matches the synthetic Program default, and the
 * span is generous enough for every workload the v1 writer ever
 * produced (docs/TRACES.md).
 */
constexpr Addr kV1CodeBase = 0x400000;
constexpr std::uint64_t kV1CodeReserveBytes = 32ULL * 1024 * 1024;

[[noreturn]] void
corrupt(const std::string &path, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string detail = vstrprintf(fmt, args);
    va_end(args);
    throw SimError("trace file '" + path + "': " + detail);
}

} // namespace

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

TraceFileWriter::TraceFileWriter(const std::string &path, Addr code_base,
                                 Addr code_end)
    : path_(path)
{
    header.codeBase = code_base;
    header.codeEnd = code_end;
    file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
        throw SimError("cannot open trace file '" + path +
                       "' for writing");
    }
    // Placeholder header; close() backpatches numInsts and the range.
    if (std::fwrite(&header, sizeof(header), 1, file) != 1) {
        std::fclose(file);
        file = nullptr;
        corrupt(path_, "short write on header");
    }
}

TraceFileWriter::~TraceFileWriter()
{
    try {
        close();
    } catch (const SimError &e) {
        warn("%s", e.what());
    }
}

void
TraceFileWriter::append(const TraceInstr &ti)
{
    if (file == nullptr)
        corrupt(path_, "append after close");
    if (ti.pc % instBytes != 0) {
        corrupt(path_, "word-unaligned pc %#llx at record %llu",
                static_cast<unsigned long long>(ti.pc),
                static_cast<unsigned long long>(count));
    }
    bool has_target = ti.target != invalidAddr;
    if (has_target && ti.target % instBytes != 0) {
        corrupt(path_, "word-unaligned target %#llx at record %llu",
                static_cast<unsigned long long>(ti.target),
                static_cast<unsigned long long>(count));
    }

    TraceFileRecordV2 rec{};
    rec.pcAndFlags = (ti.pc >> 2) << 2;
    if (has_target)
        rec.pcAndFlags |= traceRecordHasTarget;
    rec.cls = static_cast<std::uint8_t>(ti.cls);
    rec.taken = ti.taken ? 1 : 0;

    bool far = false;
    if (has_target) {
        // Wraparound-safe signed word delta; both addresses aligned.
        auto sdiff = static_cast<std::int64_t>(ti.target - ti.pc);
        std::int64_t words = sdiff / static_cast<std::int64_t>(instBytes);
        if (words > traceFarTargetSentinel &&
            words <= std::numeric_limits<std::int32_t>::max()) {
            rec.targetDelta = static_cast<std::int32_t>(words);
        } else {
            rec.targetDelta = traceFarTargetSentinel;
            far = true;
        }
    }

    if (std::fwrite(&rec, sizeof(rec), 1, file) != 1) {
        corrupt(path_, "short write on record %llu",
                static_cast<unsigned long long>(count));
    }
    if (far && std::fwrite(&ti.target, sizeof(ti.target), 1, file) != 1) {
        corrupt(path_, "short write on far target of record %llu",
                static_cast<unsigned long long>(count));
    }
    ++count;
}

void
TraceFileWriter::setCodeRange(Addr code_base, Addr code_end)
{
    header.codeBase = code_base;
    header.codeEnd = code_end;
}

void
TraceFileWriter::close()
{
    if (file == nullptr)
        return;
    header.numInsts = count;
    bool ok = std::fseek(file, 0, SEEK_SET) == 0 &&
        std::fwrite(&header, sizeof(header), 1, file) == 1;
    ok = (std::fclose(file) == 0) && ok;
    file = nullptr;
    if (!ok)
        corrupt(path_, "failed to finalize header");
}

void
writeTraceFile(const std::string &path, TraceSource &source,
               std::uint64_t count, Addr code_base, Addr code_end)
{
    TraceFileWriter w(path, code_base, code_end);
    for (std::uint64_t i = 0; i < count; ++i)
        w.append(source.next());
    w.close();
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

TraceFileReader::TraceFileReader(const std::string &path)
    : path_(path), buf(kReadBufBytes)
{
    file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        throw SimError("cannot open trace file '" + path + "'");

    // The two header layouts share their first 24 bytes; read those,
    // then the v2 tail once the version is known.
    TraceFileHeaderV1 common;
    if (std::fread(&common, sizeof(common), 1, file) != 1)
        corrupt(path_, "too short for a header");
    if (common.magic != traceFileMagic)
        corrupt(path_, "not a trace file (bad magic)");
    header.magic = common.magic;
    header.version = common.version;
    header.reserved = common.reserved;
    header.numInsts = common.numInsts;
    if (common.version == 1) {
        headerBytes = sizeof(TraceFileHeaderV1);
        header.codeBase = kV1CodeBase;
        header.codeEnd = kV1CodeBase + kV1CodeReserveBytes;
    } else if (common.version == traceFileVersion) {
        headerBytes = sizeof(TraceFileHeader);
        std::uint64_t range[2];
        if (std::fread(range, sizeof(range), 1, file) != 1)
            corrupt(path_, "too short for a v2 header");
        header.codeBase = range[0];
        header.codeEnd = range[1];
    } else {
        corrupt(path_, "version %u unsupported (reader knows 1 and %u)",
                common.version, traceFileVersion);
    }
    if (header.numInsts == 0)
        corrupt(path_, "empty (zero instructions)");
}

TraceFileReader::~TraceFileReader()
{
    if (file)
        std::fclose(file);
}

void
TraceFileReader::rewindToFirstRecord()
{
    if (std::fseek(file, static_cast<long>(headerBytes), SEEK_SET) != 0)
        corrupt(path_, "seek failed");
    bufPos = 0;
    bufLen = 0;
    position = 0;
    ++loops;
}

void
TraceFileReader::readBytes(void *out, std::size_t n)
{
    auto *dst = static_cast<unsigned char *>(out);
    while (n > 0) {
        if (bufPos == bufLen) {
            bufLen = std::fread(buf.data(), 1, buf.size(), file);
            bufPos = 0;
            if (bufLen == 0) {
                corrupt(path_, "truncated at record %llu "
                        "(header promises %llu)",
                        static_cast<unsigned long long>(position),
                        static_cast<unsigned long long>(header.numInsts));
            }
        }
        std::size_t take = std::min(n, bufLen - bufPos);
        std::memcpy(dst, buf.data() + bufPos, take);
        bufPos += take;
        dst += take;
        n -= take;
    }
}

TraceInstr
TraceFileReader::decodeV1()
{
    TraceFileRecordV1 rec;
    readBytes(&rec, sizeof(rec));
    if (rec.cls > static_cast<std::uint8_t>(InstClass::IndCall)) {
        corrupt(path_, "corrupt record %llu (class %u)",
                static_cast<unsigned long long>(position), rec.cls);
    }
    TraceInstr ti;
    ti.pc = rec.pc;
    ti.target = rec.target;
    ti.cls = static_cast<InstClass>(rec.cls);
    ti.taken = rec.taken != 0;
    return ti;
}

TraceInstr
TraceFileReader::decodeV2()
{
    TraceFileRecordV2 rec;
    readBytes(&rec, sizeof(rec));
    if ((rec.pcAndFlags & 0x2) != 0 || rec.reserved != 0 ||
        rec.taken > 1 ||
        rec.cls > static_cast<std::uint8_t>(InstClass::IndCall)) {
        corrupt(path_, "corrupt record %llu (flags/class/taken)",
                static_cast<unsigned long long>(position));
    }
    TraceInstr ti;
    ti.pc = (rec.pcAndFlags >> 2) << 2;
    ti.cls = static_cast<InstClass>(rec.cls);
    ti.taken = rec.taken != 0;
    if (rec.pcAndFlags & traceRecordHasTarget) {
        if (rec.targetDelta == traceFarTargetSentinel) {
            std::uint64_t target;
            readBytes(&target, sizeof(target));
            if (target % instBytes != 0) {
                corrupt(path_, "corrupt record %llu "
                        "(unaligned far target %#llx)",
                        static_cast<unsigned long long>(position),
                        static_cast<unsigned long long>(target));
            }
            ti.target = target;
        } else {
            ti.target = ti.pc +
                static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(rec.targetDelta) *
                    static_cast<std::int64_t>(instBytes));
        }
    } else {
        if (rec.targetDelta != 0) {
            corrupt(path_, "corrupt record %llu "
                    "(delta without target-valid)",
                    static_cast<unsigned long long>(position));
        }
        ti.target = invalidAddr;
    }
    return ti;
}

TraceInstr
TraceFileReader::next()
{
    FaultInjector &faults = FaultInjector::instance();
    if (faults.any())
        faults.maybeTruncateTrace(position, path_);

    if (position == header.numInsts)
        rewindToFirstRecord();

    TraceInstr ti =
        header.version == 1 ? decodeV1() : decodeV2();
    ++position;
    return ti;
}

} // namespace fdip
