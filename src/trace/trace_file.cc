#include "trace/trace_file.hh"

#include "common/logging.hh"

namespace fdip
{

void
writeTraceFile(const std::string &path, TraceSource &source,
               std::uint64_t count)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    fatal_if(f == nullptr, "cannot open trace file '%s' for writing",
             path.c_str());

    TraceFileHeader hdr;
    hdr.numInsts = count;
    fatal_if(std::fwrite(&hdr, sizeof(hdr), 1, f) != 1,
             "short write on trace header");

    for (std::uint64_t i = 0; i < count; ++i) {
        TraceInstr ti = source.next();
        TraceFileRecord rec{};
        rec.pc = ti.pc;
        rec.target = ti.target;
        rec.cls = static_cast<std::uint8_t>(ti.cls);
        rec.taken = ti.taken ? 1 : 0;
        fatal_if(std::fwrite(&rec, sizeof(rec), 1, f) != 1,
                 "short write on trace record %llu",
                 static_cast<unsigned long long>(i));
    }
    std::fclose(f);
}

TraceFileReader::TraceFileReader(const std::string &path)
    : path_(path)
{
    file = std::fopen(path.c_str(), "rb");
    fatal_if(file == nullptr, "cannot open trace file '%s'",
             path.c_str());
    fatal_if(std::fread(&header, sizeof(header), 1, file) != 1,
             "trace file '%s' too short for a header", path.c_str());
    fatal_if(header.magic != traceFileMagic,
             "'%s' is not a trace file (bad magic)", path.c_str());
    fatal_if(header.version != 1, "trace file version %u unsupported",
             header.version);
    fatal_if(header.numInsts == 0, "trace file '%s' is empty",
             path.c_str());
}

TraceFileReader::~TraceFileReader()
{
    if (file)
        std::fclose(file);
}

void
TraceFileReader::rewindToFirstRecord()
{
    fatal_if(std::fseek(file, sizeof(TraceFileHeader), SEEK_SET) != 0,
             "seek failed on '%s'", path_.c_str());
    position = 0;
    ++loops;
}

TraceInstr
TraceFileReader::next()
{
    if (position == header.numInsts)
        rewindToFirstRecord();

    TraceFileRecord rec;
    fatal_if(std::fread(&rec, sizeof(rec), 1, file) != 1,
             "trace file '%s' truncated at record %llu", path_.c_str(),
             static_cast<unsigned long long>(position));
    ++position;

    TraceInstr ti;
    ti.pc = rec.pc;
    ti.target = rec.target;
    ti.cls = static_cast<InstClass>(rec.cls);
    ti.taken = rec.taken != 0;
    return ti;
}

} // namespace fdip
