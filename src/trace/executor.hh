/**
 * @file executor.hh
 * Stochastic executor: walks a synthetic Program and emits the dynamic
 * (correct-path) instruction stream, plus the TraceWindow adaptor the
 * simulator uses for bounded lookahead into that stream.
 */

#ifndef FDIP_TRACE_EXECUTOR_HH
#define FDIP_TRACE_EXECUTOR_HH

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "trace/profile.hh"
#include "trace/program.hh"

namespace fdip
{

/** An endless stream of dynamic instructions. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;
    virtual TraceInstr next() = 0;
};

/**
 * Executes a synthetic program forever. Deterministic in the profile
 * seed. Loop branches follow per-activation trip counts, pattern
 * branches follow their bit patterns, biased branches flip i.i.d.
 * coins, and indirect calls rotate target popularity across phases.
 */
class SyntheticExecutor : public TraceSource
{
  public:
    SyntheticExecutor(const Program &prog, const WorkloadProfile &profile);

    TraceInstr next() override;

    std::uint64_t emitted() const { return count; }

    /** Dynamic instruction-class counts (for characterization). */
    const StatSet &classStats() const { return stats; }

  private:
    struct Frame
    {
        std::uint32_t fn;
        std::uint32_t bb;
    };

    struct BranchState
    {
        bool loopActive = false;
        std::uint32_t remainingTaken = 0;
        std::uint8_t patternPos = 0;
    };

    const Program &prog;
    WorkloadProfile profile;
    Rng rng;

    std::uint32_t curFn = 0;
    std::uint32_t curBb = 0;
    unsigned instIdx = 0;
    std::vector<Frame> stack;
    std::unordered_map<Addr, BranchState> branchState;
    std::uint64_t count = 0;
    StatSet stats;

    StatSet::Counter stNoncf = stats.registerCounter("dyn.noncf");
    StatSet::Counter stCond = stats.registerCounter("dyn.cond");
    StatSet::Counter stCondTaken = stats.registerCounter("dyn.cond_taken");
    StatSet::Counter stCondNottaken =
        stats.registerCounter("dyn.cond_nottaken");
    StatSet::Counter stJump = stats.registerCounter("dyn.jump");
    StatSet::Counter stCall = stats.registerCounter("dyn.call");
    StatSet::Counter stRet = stats.registerCounter("dyn.ret");
    StatSet::Counter stIndcall = stats.registerCounter("dyn.indcall");
    StatSet::Counter stIndjump = stats.registerCounter("dyn.indjump");

    bool condOutcome(const BasicBlock &bb, Addr pc);
    std::uint32_t pickIndirect(const BasicBlock &bb);
    void enterBlock(std::uint32_t fn, std::uint32_t bb);
};

/**
 * Sliding window over a TraceSource giving the simulator random access
 * by global sequence number. The window only ever grows forward;
 * retireUpTo() releases storage behind the commit point.
 */
class TraceWindow
{
  public:
    explicit TraceWindow(TraceSource &source) : src(source) {}

    /** Instruction @p seq; generates forward on demand. */
    const TraceInstr &at(InstSeqNum seq);

    /** Instructions below @p seq may be discarded. */
    void retireUpTo(InstSeqNum seq);

    std::size_t windowSize() const { return buf.size(); }
    InstSeqNum baseSeq() const { return base; }

  private:
    TraceSource &src;
    std::deque<TraceInstr> buf;
    InstSeqNum base = 0;
};

} // namespace fdip

#endif // FDIP_TRACE_EXECUTOR_HH
