/**
 * @file instr.hh
 * Dynamic instruction record produced by a trace source and consumed by
 * the decoupled front-end simulator.
 */

#ifndef FDIP_TRACE_INSTR_HH
#define FDIP_TRACE_INSTR_HH

#include <cstdint>

#include "common/types.hh"

namespace fdip
{

/** Instruction classes relevant to front-end modelling. */
enum class InstClass : std::uint8_t
{
    NonCF,    ///< not a control-flow instruction
    CondBr,   ///< direct conditional branch
    Jump,     ///< direct unconditional jump
    Call,     ///< direct call
    Return,   ///< return (target comes from the return address stack)
    IndJump,  ///< indirect unconditional jump
    IndCall,  ///< indirect call
};

/** True for any control-flow instruction. */
constexpr bool
isControl(InstClass cls)
{
    return cls != InstClass::NonCF;
}

/** True when the instruction always transfers control when executed. */
constexpr bool
isUnconditional(InstClass cls)
{
    return cls == InstClass::Jump || cls == InstClass::Call ||
        cls == InstClass::Return || cls == InstClass::IndJump ||
        cls == InstClass::IndCall;
}

/** True for calls of any kind (push the return address stack). */
constexpr bool
isCall(InstClass cls)
{
    return cls == InstClass::Call || cls == InstClass::IndCall;
}

/** True when the branch target is direct (encodable in the BTB/image). */
constexpr bool
isDirect(InstClass cls)
{
    return cls == InstClass::CondBr || cls == InstClass::Jump ||
        cls == InstClass::Call;
}

/** True when the target is only known at execution time. */
constexpr bool
isIndirect(InstClass cls)
{
    return cls == InstClass::IndJump || cls == InstClass::IndCall;
}

const char *instClassName(InstClass cls);

/** One dynamic (correct-path) instruction. */
struct TraceInstr
{
    Addr pc = invalidAddr;
    InstClass cls = InstClass::NonCF;
    /**
     * Destination when control transfers. For conditional branches this
     * holds the (static) taken target even when the branch is not taken.
     */
    Addr target = invalidAddr;
    bool taken = false;

    /** Address of the next dynamic instruction. */
    Addr
    nextPc() const
    {
        return taken ? target : pc + instBytes;
    }
};

inline const char *
instClassName(InstClass cls)
{
    switch (cls) {
      case InstClass::NonCF: return "noncf";
      case InstClass::CondBr: return "cond";
      case InstClass::Jump: return "jump";
      case InstClass::Call: return "call";
      case InstClass::Return: return "ret";
      case InstClass::IndJump: return "indjump";
      case InstClass::IndCall: return "indcall";
    }
    return "?";
}

} // namespace fdip

#endif // FDIP_TRACE_INSTR_HH
