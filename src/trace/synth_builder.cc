#include "trace/synth_builder.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace fdip
{

namespace
{

/** Per-level function index ranges in the program's function vector. */
struct Layering
{
    // levelStart[l] .. levelStart[l+1]-1 are the functions at level l.
    std::vector<std::uint32_t> levelStart;

    std::uint32_t
    levelOf(std::uint32_t fn) const
    {
        for (std::uint32_t l = 0; l + 1 < levelStart.size(); ++l) {
            if (fn >= levelStart[l] && fn < levelStart[l + 1])
                return l;
        }
        panic("function %u outside layering", fn);
    }

    std::uint32_t
    count(std::uint32_t level) const
    {
        return levelStart[level + 1] - levelStart[level];
    }
};

/**
 * Pick a callee for a call site in a function at @p caller_level.
 * Prefers the next level down; popularity within a level is Zipf-skewed
 * so a few functions soak up most call sites (instruction reuse skew).
 */
std::uint32_t
pickCallee(Rng &rng, const Layering &lay, std::uint32_t caller_level,
           double zipf_s, unsigned num_levels)
{
    std::uint32_t level;
    if (caller_level + 2 >= num_levels || rng.chance(0.7))
        level = caller_level + 1;
    else
        level = static_cast<std::uint32_t>(
            rng.range(caller_level + 1, num_levels - 1));

    std::uint32_t n = lay.count(level);
    panic_if(n == 0, "empty call-graph level %u", level);
    ZipfSampler zipf(n, zipf_s);
    return lay.levelStart[level] + static_cast<std::uint32_t>(
        zipf.sample(rng));
}

CondBehavior
makeCondBehavior(Rng &rng, const WorkloadProfile &p, bool is_loop)
{
    CondBehavior cb;
    if (is_loop) {
        cb.kind = CondBehavior::Kind::Loop;
        cb.param = p.meanTripCount;
        return cb;
    }
    if (rng.chance(p.patternFraction)) {
        cb.kind = CondBehavior::Kind::Pattern;
        cb.patternLen = static_cast<std::uint8_t>(rng.range(2, 8));
        cb.pattern = static_cast<std::uint32_t>(
            rng.below(1u << cb.patternLen));
        // Avoid all-zero/all-one degenerate patterns (those are Biased).
        if (cb.pattern == 0)
            cb.pattern = 1;
        return cb;
    }
    cb.kind = CondBehavior::Kind::Biased;
    cb.param = p.biasLo + rng.uniform() * (p.biasHi - p.biasLo);
    return cb;
}

/** Build one non-dispatcher function's CFG. */
Function
buildFunction(Rng &rng, const WorkloadProfile &p, const Layering &lay,
              std::uint32_t level)
{
    Function fn;
    fn.level = level;
    bool leaf = level + 1 >= p.callLevels;

    unsigned n_blocks = std::clamp<unsigned>(
        rng.geometric(p.meanBlocksPerFn), 3, 64);
    fn.blocks.resize(n_blocks);

    // Terminator mix; leaves redistribute call weight to fallthrough.
    double w_call = leaf ? 0.0 : p.wCall;
    double w_icall = leaf ? 0.0 : p.wIndCall;
    double w_fall = p.wFallthrough + (leaf ? p.wCall + p.wIndCall : 0.0);
    WeightedChoice term_choice({p.wCond, p.wJump, w_call, w_icall, w_fall});

    unsigned loops_made = 0;
    const unsigned max_loops = 2;

    for (unsigned bi = 0; bi < n_blocks; ++bi) {
        BasicBlock &bb = fn.blocks[bi];
        bb.numInsts = std::clamp<unsigned>(
            rng.geometric(p.meanBlockInsts), 1, 24);

        if (bi + 1 == n_blocks) {
            bb.term = InstClass::Return;
            continue;
        }
        // Blocks too close to the end cannot host forward branches or
        // calls (they need a valid fallthrough); let them fall through.
        if (bi + 2 >= n_blocks) {
            bb.term = InstClass::NonCF;
            continue;
        }

        switch (term_choice.sample(rng)) {
          case 0: { // conditional branch
            bool loop = loops_made < max_loops && rng.chance(p.loopFraction);
            bb.term = InstClass::CondBr;
            if (loop) {
                ++loops_made;
                std::uint32_t lo = bi >= 6 ? bi - 6 : 0;
                bb.targetBb = static_cast<std::uint32_t>(
                    rng.range(lo, bi));
                bb.cond = makeCondBehavior(rng, p, true);
            } else {
                std::uint32_t hi = std::min<std::uint32_t>(
                    bi + 4, n_blocks - 1);
                bb.targetBb = static_cast<std::uint32_t>(
                    rng.range(bi + 2, hi));
                bb.cond = makeCondBehavior(rng, p, false);
            }
            break;
          }
          case 1: { // direct forward jump
            std::uint32_t hi = std::min<std::uint32_t>(
                bi + 4, n_blocks - 1);
            bb.term = InstClass::Jump;
            bb.targetBb = static_cast<std::uint32_t>(
                rng.range(bi + 1, hi));
            break;
          }
          case 2: // direct call
            bb.term = InstClass::Call;
            bb.targetFn = pickCallee(rng, lay, level, p.calleeZipf,
                                     p.callLevels);
            break;
          case 3: { // indirect call (virtual dispatch / fn pointer)
            bb.term = InstClass::IndCall;
            unsigned n_targets = static_cast<unsigned>(rng.range(2, 6));
            for (unsigned t = 0; t < n_targets; ++t) {
                bb.indTargets.push_back(
                    pickCallee(rng, lay, level, p.calleeZipf,
                               p.callLevels));
                bb.indWeights.push_back(1.0 / (t + 1.0));
            }
            break;
          }
          default:
            bb.term = InstClass::NonCF;
            break;
        }
    }
    return fn;
}

/**
 * Build the top-level dispatcher: an endless loop over call sites into
 * level-1 functions. Every ~6th site is an indirect call whose target
 * popularity the executor rotates across phases.
 */
Function
buildDispatcher(Rng &rng, const WorkloadProfile &p, const Layering &lay)
{
    Function fn;
    fn.level = 0;
    unsigned sites = std::max(4u, p.dispatcherSites);
    for (unsigned s = 0; s < sites; ++s) {
        BasicBlock bb;
        bb.numInsts = static_cast<unsigned>(rng.range(2, 5));
        if (s % 6 == 5) {
            bb.term = InstClass::IndCall;
            unsigned n_targets = static_cast<unsigned>(rng.range(3, 8));
            for (unsigned t = 0; t < n_targets; ++t) {
                bb.indTargets.push_back(
                    pickCallee(rng, lay, 0, p.calleeZipf, p.callLevels));
                bb.indWeights.push_back(1.0 / (t + 1.0));
            }
        } else {
            bb.term = InstClass::Call;
            bb.targetFn = pickCallee(rng, lay, 0, p.calleeZipf,
                                     p.callLevels);
        }
        fn.blocks.push_back(bb);
    }
    // Jump back to the first site: the dispatcher never returns.
    BasicBlock loop_back;
    loop_back.numInsts = 2;
    loop_back.term = InstClass::Jump;
    loop_back.targetBb = 0;
    fn.blocks.push_back(loop_back);
    return fn;
}

} // namespace

std::unique_ptr<Program>
buildProgram(const WorkloadProfile &p)
{
    fatal_if(p.callLevels < 2, "profile '%s': need at least 2 call levels",
             p.name.c_str());

    Rng rng(p.seed);
    auto prog = std::make_unique<Program>();

    double mean_fn_insts = p.meanBlocksPerFn * p.meanBlockInsts;
    std::uint64_t want_insts = p.codeFootprintBytes / instBytes;
    std::uint32_t num_fns = std::max<std::uint32_t>(
        p.callLevels * 2,
        static_cast<std::uint32_t>(
            static_cast<double>(want_insts) / mean_fn_insts));

    // Level 0 holds only the dispatcher; split the rest evenly.
    Layering lay;
    lay.levelStart.push_back(0);
    lay.levelStart.push_back(1);
    std::uint32_t rest = num_fns - 1;
    std::uint32_t deeper_levels = p.callLevels - 1;
    for (std::uint32_t l = 0; l < deeper_levels; ++l) {
        std::uint32_t share = rest / deeper_levels +
            (l < rest % deeper_levels ? 1 : 0);
        lay.levelStart.push_back(lay.levelStart.back() + share);
    }

    prog->funcs.resize(num_fns);
    // Non-dispatcher functions first: pickCallee only needs the layering.
    for (std::uint32_t l = 1; l < p.callLevels; ++l) {
        for (std::uint32_t f = lay.levelStart[l];
             f < lay.levelStart[l + 1]; ++f) {
            prog->funcs[f] = buildFunction(rng, p, lay, l);
        }
    }
    prog->funcs[0] = buildDispatcher(rng, p, lay);

    prog->layout();
    prog->validate();
    return prog;
}

} // namespace fdip
