#include "trace/champsim.hh"

#include <algorithm>
#include <cstring>

#include "common/error.hh"
#include "common/fault.hh"
#include "common/logging.hh"

namespace fdip
{

namespace
{

/** Canonical code region for ChampSim workloads: matches the synthetic
 *  Program base; the reserve bounds the MMU's page table and caps
 *  pathological traces (docs/TRACES.md). */
constexpr Addr kChampSimCodeBase = 0x400000;
constexpr std::uint64_t kChampSimCodeReserveBytes = 32ULL * 1024 * 1024;

/** Mismatched call/return streams would otherwise grow the shadow
 *  stack without bound; beyond this depth the oldest entries are
 *  indistinguishable from garbage anyway. */
constexpr std::size_t kMaxShadowCallDepth = 1 << 16;

/** Classes whose canonical slot needs the adjacent slot+4 held for a
 *  later fall-through / return-address successor. */
bool
needsSuccessor(InstClass cls)
{
    return cls == InstClass::CondBr || cls == InstClass::Call ||
        cls == InstClass::IndCall;
}

bool
endsWith(const std::string &s, const char *suffix)
{
    std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/** POSIX-shell single-quote @p s for safe use in a popen command. */
std::string
shellQuote(const std::string &s)
{
    std::string out = "'";
    for (char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += "'";
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// Branch-type reconstruction
// ---------------------------------------------------------------------

InstClass
classifyChampSim(const ChampSimRecord &rec)
{
    bool writes_ip = false, writes_sp = false;
    for (std::uint8_t r : rec.destinationRegisters) {
        writes_ip = writes_ip || r == champSimRegInstructionPointer;
        writes_sp = writes_sp || r == champSimRegStackPointer;
    }
    bool reads_ip = false, reads_sp = false, reads_flags = false,
         reads_other = false;
    for (std::uint8_t r : rec.sourceRegisters) {
        reads_ip = reads_ip || r == champSimRegInstructionPointer;
        reads_sp = reads_sp || r == champSimRegStackPointer;
        reads_flags = reads_flags || r == champSimRegFlags;
        reads_other = reads_other ||
            (r != 0 && r != champSimRegInstructionPointer &&
             r != champSimRegStackPointer && r != champSimRegFlags);
    }

    if (!writes_ip)
        return rec.isBranch ? InstClass::CondBr : InstClass::NonCF;

    if (reads_ip && !reads_sp && !reads_flags && !reads_other)
        return InstClass::Jump;
    if (!reads_ip && !reads_sp && !reads_flags && reads_other)
        return InstClass::IndJump;
    if (reads_ip && reads_flags && !reads_sp && !reads_other)
        return InstClass::CondBr;
    if (reads_sp && writes_sp && !reads_flags) {
        if (reads_other)
            return InstClass::IndCall;
        if (reads_ip)
            return InstClass::Call;
        return InstClass::Return;
    }
    // writes_ip but no heuristic matched: conservative front-end
    // assumption (mirrors ChampSim's BRANCH_OTHER handling).
    return InstClass::CondBr;
}

// ---------------------------------------------------------------------
// PC canonicalization
// ---------------------------------------------------------------------

PcCanonicalizer::PcCanonicalizer(Addr base, std::uint64_t reserve_bytes)
    : codeBase(base), reserveBytes(reserve_bytes), nextAlloc(base),
      maxSlot(base)
{
    fatal_if(base % instBytes != 0, "canonical code base must be aligned");
}

void
PcCanonicalizer::claimAt(std::uint64_t ip, Addr slot, InstClass cls)
{
    canon[ip] = slot;
    occupied.insert(slot);
    reservedSlots.erase(slot);
    maxSlot = std::max(maxSlot, slot + instBytes);
    if (needsSuccessor(cls)) {
        Addr v = slot + instBytes;
        occupied.insert(v);
        reservedSlots[v] = ip;
        successorSlot[ip] = v;
        maxSlot = std::max(maxSlot, v + instBytes);
    }
}

Addr
PcCanonicalizer::place(std::uint64_t ip, InstClass cls)
{
    auto it = canon.find(ip);
    if (it != canon.end())
        return it->second;

    bool pair = needsSuccessor(cls);
    while (!slotFree(nextAlloc))
        nextAlloc += instBytes;
    Addr s = nextAlloc;
    while (!slotFree(s) || (pair && !slotFree(s + instBytes)))
        s += instBytes;
    std::uint64_t need = (pair ? 2 : 1) * instBytes;
    if (s + need > codeBase + reserveBytes) {
        throw SimError(strprintf(
            "champsim trace: canonical code region exhausted "
            "(%llu MiB reserve, %llu distinct instruction addresses)",
            static_cast<unsigned long long>(reserveBytes >> 20),
            static_cast<unsigned long long>(canon.size())));
    }
    claimAt(ip, s, cls);
    return s;
}

void
PcCanonicalizer::installTrampoline(Addr slot, Addr target)
{
    trampolines[slot] = target;
    occupied.insert(slot);
    reservedSlots.erase(slot);
    maxSlot = std::max(maxSlot, slot + instBytes);
}

void
PcCanonicalizer::emitTrampoline(std::deque<TraceInstr> &out, Addr slot,
                                Addr target)
{
    TraceInstr ti;
    ti.pc = slot;
    ti.cls = InstClass::Jump;
    ti.target = target;
    ti.taken = true;
    out.push_back(ti);
}

PcCanonicalizer::FallThroughResult
PcCanonicalizer::fallInto(Addr slot, bool may_use_reservation,
                          std::uint64_t succ_ip, InstClass succ_cls,
                          std::deque<TraceInstr> &out)
{
    bool reserved = reservedSlots.count(slot) != 0;
    auto it = canon.find(succ_ip);
    if (it != canon.end()) {
        if (it->second == slot)
            return {slot, true};
        auto tit = trampolines.find(slot);
        if (tit != trampolines.end()) {
            if (tit->second == it->second) {
                emitTrampoline(out, slot, it->second);
                return {slot, true};
            }
            // Trampoline forwards elsewhere (degenerate: this site has
            // more than one dynamic successor); take the far route.
            return {it->second, false};
        }
        if (may_use_reservation && reserved) {
            installTrampoline(slot, it->second);
            emitTrampoline(out, slot, it->second);
            return {slot, true};
        }
        return {it->second, false};
    }

    // Successor not placed yet: seat it at the adjacent slot if that
    // satisfies its own successor needs, else allocate fresh.
    bool seat = (slotFree(slot) || (may_use_reservation && reserved)) &&
        (!needsSuccessor(succ_cls) || slotFree(slot + instBytes));
    std::uint64_t need =
        (needsSuccessor(succ_cls) ? 2 : 1) * instBytes;
    if (seat && slot + need <= codeBase + reserveBytes) {
        claimAt(succ_ip, slot, succ_cls);
        return {slot, true};
    }
    Addr s = place(succ_ip, succ_cls);
    if (may_use_reservation && reserved && trampolines.count(slot) == 0) {
        installTrampoline(slot, s);
        emitTrampoline(out, slot, s);
        return {slot, true};
    }
    return {s, false};
}

void
PcCanonicalizer::emit(const ChampSimRecord &cur, InstClass cls,
                      std::uint64_t next_ip, InstClass next_cls,
                      std::deque<TraceInstr> &out)
{
    Addr pc = place(cur.ip, cls);

    TraceInstr ti;
    ti.pc = pc;

    // A trampoline on this record's fall-through/return path executes
    // *after* it; collect separately and append behind ti.
    std::deque<TraceInstr> after;

    switch (cls) {
      case InstClass::NonCF: {
        FallThroughResult r =
            fallInto(pc + instBytes, false, next_ip, next_cls, after);
        if (r.adjacent && noncfJump.count(cur.ip) == 0) {
            ti.cls = InstClass::NonCF;
        } else {
            // Fall-through landed (now or on an earlier encounter)
            // away from pc+4: this record is a Jump from here on.
            noncfJump[cur.ip] = r.entry;
            ti.cls = InstClass::Jump;
            ti.target = r.entry;
            ti.taken = true;
        }
        break;
      }
      case InstClass::CondBr: {
        ti.cls = InstClass::CondBr;
        if (cur.branchTaken) {
            Addr t = place(next_ip, next_cls);
            condTarget.emplace(cur.ip, t);
            ti.target = t;
            ti.taken = true;
        } else {
            FallThroughResult r =
                fallInto(pc + instBytes, true, next_ip, next_cls, after);
            if (r.adjacent) {
                auto ct = condTarget.find(cur.ip);
                // Not-taken conditionals still advertise their static
                // taken target (BTB semantics); before the first taken
                // encounter fall back to pc+4 — harmless, never
                // invalidAddr.
                ti.target =
                    ct != condTarget.end() ? ct->second : pc + instBytes;
                ti.taken = false;
            } else {
                // Degenerate: the fall-through slot already routes
                // elsewhere; preserve control flow by taking the
                // branch to the successor's real slot.
                ti.target = r.entry;
                ti.taken = true;
            }
        }
        break;
      }
      case InstClass::Jump:
      case InstClass::IndJump: {
        ti.cls = cls;
        ti.target = place(next_ip, next_cls);
        ti.taken = true;
        break;
      }
      case InstClass::Call:
      case InstClass::IndCall: {
        ti.cls = cls;
        ti.target = place(next_ip, next_cls);
        ti.taken = true;
        auto sit = successorSlot.find(cur.ip);
        Addr ret =
            sit != successorSlot.end() ? sit->second : pc + instBytes;
        if (callStack.size() >= kMaxShadowCallDepth)
            callStack.erase(callStack.begin());
        callStack.push_back(ret);
        break;
      }
      case InstClass::Return: {
        ti.cls = InstClass::Return;
        ti.taken = true;
        if (!callStack.empty()) {
            Addr ret = callStack.back();
            callStack.pop_back();
            FallThroughResult r =
                fallInto(ret, true, next_ip, next_cls, after);
            ti.target = r.adjacent ? ret : r.entry;
        } else {
            // Underflow (trace starts mid-call or streams are
            // mismatched): target the return site directly.
            ti.target = place(next_ip, next_cls);
        }
        break;
      }
    }

    out.push_back(ti);
    for (const TraceInstr &t : after)
        out.push_back(t);
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

ChampSimTraceReader::ChampSimTraceReader(const std::string &path)
    : path_(path),
      canonicalizer(kChampSimCodeBase, kChampSimCodeReserveBytes)
{
    open();
    // Prime the lookahead eagerly so an empty input fails at
    // construction, not at the first next().
    if (!readRecord(lookahead)) {
        closeStream();
        throw SimError("champsim trace '" + path_ + "' holds no records");
    }
    haveLookahead = true;
}

ChampSimTraceReader::~ChampSimTraceReader()
{
    closeStream();
}

void
ChampSimTraceReader::open()
{
    // Probe with fopen first: popen only reports a missing file as an
    // EOF-looking empty stream long after the fact.
    std::FILE *probe = std::fopen(path_.c_str(), "rb");
    if (probe == nullptr)
        throw SimError("cannot open champsim trace '" + path_ + "'");

    const char *decompress = nullptr;
    if (endsWith(path_, ".xz"))
        decompress = "xz -dc";
    else if (endsWith(path_, ".gz"))
        decompress = "gzip -dc";

    if (decompress == nullptr) {
        stream = probe;
        piped = false;
        return;
    }
    std::fclose(probe);
    std::string cmd =
        std::string(decompress) + " " + shellQuote(path_) + " 2>/dev/null";
    stream = popen(cmd.c_str(), "r");
    if (stream == nullptr) {
        throw SimError("cannot start decompressor '" + cmd +
                       "' for champsim trace '" + path_ + "'");
    }
    piped = true;
}

void
ChampSimTraceReader::closeStream()
{
    if (stream == nullptr)
        return;
    if (piped)
        pclose(stream);
    else
        std::fclose(stream);
    stream = nullptr;
}

bool
ChampSimTraceReader::readRecord(ChampSimRecord &rec)
{
    std::size_t got = std::fread(&rec, 1, sizeof(rec), stream);
    if (got == sizeof(rec))
        return true;
    if (got == 0)
        return false;
    throw SimError(strprintf(
        "champsim trace '%s': truncated record at %llu "
        "(%zu of %zu bytes)",
        path_.c_str(), static_cast<unsigned long long>(rawRecords), got,
        sizeof(rec)));
}

TraceInstr
ChampSimTraceReader::next()
{
    FaultInjector &faults = FaultInjector::instance();
    if (faults.any())
        faults.maybeTruncateTrace(rawRecords, path_);

    while (pending.empty())
        refill();
    TraceInstr ti = pending.front();
    pending.pop_front();
    return ti;
}

void
ChampSimTraceReader::refill()
{
    ChampSimRecord cur = lookahead;
    if (!readRecord(lookahead)) {
        // End of stream: the last record's successor is the first
        // record of the next pass — the source loops seamlessly.
        closeStream();
        ++passes;
        open();
        if (!readRecord(lookahead)) {
            throw SimError("champsim trace '" + path_ +
                           "' became empty mid-run");
        }
    }
    canonicalizer.emit(cur, classifyChampSim(cur), lookahead.ip,
                       classifyChampSim(lookahead), pending);
    ++rawRecords;
}

Addr
ChampSimTraceReader::codeBase() const
{
    return canonicalizer.base();
}

Addr
ChampSimTraceReader::codeEnd() const
{
    return canonicalizer.reservedEnd();
}

// ---------------------------------------------------------------------
// Workload dispatch
// ---------------------------------------------------------------------

bool
isChampSimTracePath(const std::string &path)
{
    std::string p = path;
    if (endsWith(p, ".xz"))
        p = p.substr(0, p.size() - 3);
    else if (endsWith(p, ".gz"))
        p = p.substr(0, p.size() - 3);
    return endsWith(p, ".champsim.trace") || endsWith(p, ".champsimtrace");
}

std::unique_ptr<FileTraceSource>
openTraceWorkload(const std::string &path)
{
    if (isChampSimTracePath(path))
        return std::make_unique<ChampSimTraceReader>(path);
    return std::make_unique<TraceFileReader>(path);
}

} // namespace fdip
