/**
 * @file trace_file.hh
 * Binary instruction-trace record/replay.
 *
 * Record: drain any TraceSource into a compact on-disk format.
 * Replay: a TraceFileReader is itself a TraceSource, so recorded (or
 * externally generated) traces drive the simulator exactly like the
 * synthetic executor. The format is self-describing with a magic,
 * version, and instruction count; records are fixed 16-byte entries:
 *
 *   u64 pc_and_flags   bits[63:4] pc>>4? -- no: pc is word aligned, so
 *                      bits[63:2] hold pc>>2, bits[1:0] spare
 *   u8  cls            InstClass
 *   u8  taken
 *   u16 reserved
 *   u32 target_delta   (target - pc)/4 as signed 32-bit; the sentinel
 *                      INT32_MIN means "far target": a full 8-byte
 *                      target record follows
 *
 * For simplicity and robustness this implementation stores fixed
 * 24-byte records (pc, target, cls, taken) — traces are short-lived
 * experiment artifacts, not archives.
 */

#ifndef FDIP_TRACE_TRACE_FILE_HH
#define FDIP_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <string>

#include "trace/executor.hh"

namespace fdip
{

/** Magic bytes at the start of every trace file. */
constexpr std::uint64_t traceFileMagic = 0x46444950'54524331ULL;

struct TraceFileHeader
{
    std::uint64_t magic = traceFileMagic;
    std::uint32_t version = 1;
    std::uint32_t reserved = 0;
    std::uint64_t numInsts = 0;
};

struct TraceFileRecord
{
    std::uint64_t pc;
    std::uint64_t target;
    std::uint8_t cls;
    std::uint8_t taken;
    std::uint8_t pad[6];
};

static_assert(sizeof(TraceFileRecord) == 24, "record layout");

/** Record @p count instructions from @p source into @p path. */
void writeTraceFile(const std::string &path, TraceSource &source,
                    std::uint64_t count);

/**
 * Replays a recorded trace. When the file is exhausted the reader
 * loops back to the beginning (experiments need endless streams);
 * loopCount() reports how often that happened.
 */
class TraceFileReader : public TraceSource
{
  public:
    explicit TraceFileReader(const std::string &path);
    ~TraceFileReader() override;

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    TraceInstr next() override;

    std::uint64_t numInsts() const { return header.numInsts; }
    std::uint64_t loopCount() const { return loops; }

  private:
    void rewindToFirstRecord();

    std::FILE *file = nullptr;
    TraceFileHeader header;
    std::uint64_t position = 0;
    std::uint64_t loops = 0;
    std::string path_;
};

} // namespace fdip

#endif // FDIP_TRACE_TRACE_FILE_HH
