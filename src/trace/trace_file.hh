/**
 * @file trace_file.hh
 * Binary instruction-trace record/replay: the native on-disk format.
 *
 * Record: drain any TraceSource into a compact on-disk format.
 * Replay: a TraceFileReader is itself a TraceSource, so recorded (or
 * converted — see trace/champsim.hh) traces drive the simulator
 * exactly like the synthetic executor.
 *
 * Two format versions share one magic:
 *
 *  v1 (legacy, read-only): 24-byte header {magic, version, reserved,
 *     numInsts}; fixed 24-byte records {u64 pc, u64 target, u8 cls,
 *     u8 taken, pad[6]}. No code-range metadata.
 *
 *  v2 (current, written by TraceFileWriter): 40-byte header that adds
 *     the code range the trace's PCs inhabit — {u64 magic,
 *     u32 version=2, u32 reserved, u64 numInsts, u64 codeBase,
 *     u64 codeEnd} — so a replaying simulator can build its MMU page
 *     table without scanning the stream. Records are delta-encoded
 *     16-byte entries:
 *
 *       u64 pc_and_flags   bits[63:2] hold pc>>2 (pc is word aligned),
 *                          bit0 = target-valid, bit1 must be zero
 *       u8  cls            InstClass
 *       u8  taken          0 or 1
 *       u16 reserved       must be zero
 *       i32 target_delta   (target - pc)/4 as signed 32-bit; the
 *                          sentinel INT32_MIN means "far target": a
 *                          full 8-byte target follows the record
 *
 *     A record with target-valid clear replays target == invalidAddr
 *     (its target_delta must be zero). Word-unaligned PCs (and valid
 *     unaligned targets) are rejected at write time; every corrupt or
 *     truncated input is rejected with SimError at read time — never
 *     UB, never a silent garbage stream — so a sweep isolates a bad
 *     trace as one FAIL cell (docs/TRACES.md, docs/ROBUSTNESS.md).
 *
 * The reader streams through a fixed-size buffer (bounded memory
 * regardless of trace length) and loops back to the first record at
 * end of stream — experiments need endless sources.
 */

#ifndef FDIP_TRACE_TRACE_FILE_HH
#define FDIP_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "trace/executor.hh"

namespace fdip
{

/** Magic bytes at the start of every trace file (all versions). */
constexpr std::uint64_t traceFileMagic = 0x46444950'54524331ULL;

/** Current (written) trace-file format version. */
constexpr std::uint32_t traceFileVersion = 2;

/** v1 header: no code-range metadata. Retained for reading. */
struct TraceFileHeaderV1
{
    std::uint64_t magic = traceFileMagic;
    std::uint32_t version = 1;
    std::uint32_t reserved = 0;
    std::uint64_t numInsts = 0;
};

static_assert(sizeof(TraceFileHeaderV1) == 24, "v1 header layout");

/** v2 header: adds the code range [codeBase, codeEnd) of the PCs. */
struct TraceFileHeader
{
    std::uint64_t magic = traceFileMagic;
    std::uint32_t version = traceFileVersion;
    std::uint32_t reserved = 0;
    std::uint64_t numInsts = 0;
    std::uint64_t codeBase = 0;
    std::uint64_t codeEnd = 0;
};

static_assert(sizeof(TraceFileHeader) == 40, "v2 header layout");

/** v1 record: plain (pc, target, cls, taken). Retained for reading. */
struct TraceFileRecordV1
{
    std::uint64_t pc;
    std::uint64_t target;
    std::uint8_t cls;
    std::uint8_t taken;
    std::uint8_t pad[6];
};

static_assert(sizeof(TraceFileRecordV1) == 24, "v1 record layout");

/** v2 record: delta-encoded; see the file comment for field rules. */
struct TraceFileRecordV2
{
    std::uint64_t pcAndFlags;
    std::uint8_t cls;
    std::uint8_t taken;
    std::uint16_t reserved;
    std::int32_t targetDelta;
};

static_assert(sizeof(TraceFileRecordV2) == 16, "v2 record layout");

/** pc_and_flags bit 0: this record's target is valid. */
constexpr std::uint64_t traceRecordHasTarget = 1ULL << 0;

/** target_delta sentinel: full 8-byte target follows the record. */
constexpr std::int32_t traceFarTargetSentinel =
    std::numeric_limits<std::int32_t>::min();

/**
 * Streaming v2 writer: append records one at a time, then close() to
 * backpatch the header's instruction count. Unaligned PCs/targets and
 * I/O failures raise SimError.
 */
class TraceFileWriter
{
  public:
    /** @p code_base / @p code_end describe the range the trace's PCs
     *  live in (the replaying simulator's MMU covers exactly this
     *  range); setCodeRange() may revise them before close(). */
    explicit TraceFileWriter(const std::string &path, Addr code_base = 0,
                             Addr code_end = 0);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    void append(const TraceInstr &ti);

    /** Revise the header's code range (converters only learn the
     *  allocated extent after streaming the input). */
    void setCodeRange(Addr code_base, Addr code_end);

    /** Backpatch the header and close the file. Idempotent; the
     *  destructor calls it, but errors there cannot throw — call
     *  close() explicitly to observe them. */
    void close();

    std::uint64_t written() const { return count; }

  private:
    std::FILE *file = nullptr;
    TraceFileHeader header;
    std::uint64_t count = 0;
    std::string path_;
};

/** Record @p count instructions from @p source into @p path (v2). */
void writeTraceFile(const std::string &path, TraceSource &source,
                    std::uint64_t count, Addr code_base = 0,
                    Addr code_end = 0);

/**
 * A TraceSource backed by a file, carrying the code range its PCs
 * inhabit so a simulator can size its page table before streaming.
 */
class FileTraceSource : public TraceSource
{
  public:
    virtual Addr codeBase() const = 0;
    virtual Addr codeEnd() const = 0;
};

/**
 * Replays a recorded trace (v1 or v2) through a fixed-size read
 * buffer. When the stream is exhausted the reader loops back to the
 * first record (experiments need endless streams); loopCount()
 * reports how often that happened. Every structural defect — bad
 * magic, unknown version, truncated stream, corrupt record fields —
 * raises SimError.
 */
class TraceFileReader : public FileTraceSource
{
  public:
    explicit TraceFileReader(const std::string &path);
    ~TraceFileReader() override;

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    TraceInstr next() override;

    std::uint64_t numInsts() const { return header.numInsts; }
    std::uint64_t loopCount() const { return loops; }
    std::uint32_t version() const { return header.version; }

    /** v2: from the header. v1 files carry no range; a fixed reserve
     *  region is reported instead (see trace_file.cc). */
    Addr codeBase() const override { return header.codeBase; }
    Addr codeEnd() const override { return header.codeEnd; }

  private:
    void rewindToFirstRecord();
    /** Copy @p n bytes out of the read buffer, refilling from the
     *  file as needed; SimError on short read. */
    void readBytes(void *out, std::size_t n);
    TraceInstr decodeV1();
    TraceInstr decodeV2();

    std::FILE *file = nullptr;
    TraceFileHeader header;
    std::size_t headerBytes = 0;
    std::uint64_t position = 0;
    std::uint64_t loops = 0;
    std::string path_;

    std::vector<unsigned char> buf;
    std::size_t bufPos = 0;
    std::size_t bufLen = 0;
};

} // namespace fdip

#endif // FDIP_TRACE_TRACE_FILE_HH
