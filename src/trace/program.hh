/**
 * @file program.hh
 * Static representation of a synthetic program: functions made of basic
 * blocks laid out contiguously in the simulated address space. The
 * executor walks this structure to produce the dynamic instruction trace,
 * and the code image derived from it lets the front-end walk *wrong*
 * paths after a misprediction, exactly like hardware fetching stale code.
 */

#ifndef FDIP_TRACE_PROGRAM_HH
#define FDIP_TRACE_PROGRAM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "trace/instr.hh"

namespace fdip
{

/** How a conditional branch decides its outcome at run time. */
struct CondBehavior
{
    enum class Kind : std::uint8_t
    {
        Loop,     ///< taken (trip-1) times, then not taken once
        Biased,   ///< i.i.d. taken with probability @c param
        Pattern,  ///< repeating bit pattern of length @c patternLen
    };

    Kind kind = Kind::Biased;
    /** Loop: mean trip count. Biased: taken probability. */
    double param = 0.5;
    std::uint32_t pattern = 0;
    std::uint8_t patternLen = 0;
};

/**
 * A basic block: a run of straight-line instructions, optionally
 * terminated by a control-flow instruction (the last instruction of the
 * block). A block with a NonCF terminator simply falls through into the
 * next block of the function.
 */
struct BasicBlock
{
    Addr start = 0;          ///< filled in by Program::layout()
    unsigned numInsts = 1;   ///< total instructions, terminator included
    InstClass term = InstClass::NonCF;

    /** Intra-function successor block for CondBr/Jump terminators. */
    std::uint32_t targetBb = 0;
    /** Callee function index for Call terminators. */
    std::uint32_t targetFn = 0;
    /** Possible callees/targets for indirect terminators. */
    std::vector<std::uint32_t> indTargets;
    std::vector<double> indWeights;

    CondBehavior cond;

    Addr
    terminatorPc() const
    {
        return start + Addr(numInsts - 1) * instBytes;
    }

    Addr
    end() const
    {
        return start + Addr(numInsts) * instBytes;
    }
};

struct Function
{
    Addr entry = 0;  ///< filled in by Program::layout()
    unsigned level = 0;
    std::vector<BasicBlock> blocks;

    unsigned numInsts() const;
};

/**
 * A whole synthetic program. After layout() every block has a concrete
 * start address; code is contiguous in [base, codeEnd).
 */
class Program
{
  public:
    Addr base = 0x400000;
    std::vector<Function> funcs;

    /** Assign addresses to all functions/blocks. Must be called once. */
    void layout();

    Addr codeEnd() const { return end; }
    std::uint64_t codeBytes() const { return end - base; }
    std::uint64_t numInsts() const { return codeBytes() / instBytes; }

    /** Sanity-check structural invariants; panics on violation. */
    void validate() const;

  private:
    Addr end = 0;
};

} // namespace fdip

#endif // FDIP_TRACE_PROGRAM_HH
