/**
 * @file profile.hh
 * Knobs describing one synthetic workload. Profiles are named after the
 * SPEC95-class programs used in the MICRO-32 FDIP evaluation; each
 * profile controls exactly the properties instruction prefetching is
 * sensitive to: static code footprint, basic-block geometry, branch mix
 * and predictability, call-graph reuse skew, and phase behaviour.
 */

#ifndef FDIP_TRACE_PROFILE_HH
#define FDIP_TRACE_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fdip
{

struct WorkloadProfile
{
    std::string name;
    std::uint64_t seed = 1;

    /** Static code footprint in bytes (drives L1-I pressure). */
    std::uint64_t codeFootprintBytes = 128 * 1024;

    /** Mean basic-block size in instructions (terminator included). */
    double meanBlockInsts = 6.0;
    /** Mean number of basic blocks per function. */
    double meanBlocksPerFn = 12.0;

    /** Call-graph depth (number of levels; no recursion). */
    unsigned callLevels = 6;
    /** Zipf skew for callee popularity; higher = hotter hot code. */
    double calleeZipf = 0.8;

    /** Terminator mix (relative weights; Return is structural). */
    double wCond = 0.55;
    double wJump = 0.10;
    double wCall = 0.18;
    double wIndCall = 0.04;
    double wFallthrough = 0.13;

    /** Of conditional branches: fraction that are loop back-edges. */
    double loopFraction = 0.30;
    /** Mean loop trip count. */
    double meanTripCount = 9.0;
    /** Of non-loop conditionals: fraction driven by a bit pattern. */
    double patternFraction = 0.35;
    /** Bias range for i.i.d. conditionals: taken prob in [lo, hi]. */
    double biasLo = 0.05;
    double biasHi = 0.95;

    /**
     * Working-set phase length in dynamic instructions; 0 disables
     * phases. Each phase rotates indirect-call target popularity,
     * shifting the hot code region.
     */
    std::uint64_t phaseLen = 0;

    /** Number of call sites in the top-level dispatcher loop. */
    unsigned dispatcherSites = 48;
};

/** The ten-workload suite used by every experiment in this repo. */
const std::vector<WorkloadProfile> &workloadSuite();

/** Lookup a suite profile by name; fatal() on unknown name. */
const WorkloadProfile &findProfile(const std::string &name);

/** Names of the large-footprint subset used by sweep benches. */
std::vector<std::string> largeFootprintNames();

/** Names of every suite workload. */
std::vector<std::string> allWorkloadNames();

} // namespace fdip

#endif // FDIP_TRACE_PROFILE_HH
