/**
 * @file backend.hh
 * Retire-width drain model of the execution backend. The front-end
 * delivers instructions into a bounded queue; the backend commits up to
 * retireWidth correct-path instructions per cycle. Wrong-path
 * instructions occupy queue slots (window pressure) until the redirect
 * squashes them. FDIP is a front-end technique; this is all the paper's
 * speedup numbers need from the core.
 */

#ifndef FDIP_CORE_BACKEND_HH
#define FDIP_CORE_BACKEND_HH

#include "common/circular_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace fdip
{

struct DeliveredInst
{
    InstSeqNum seq = 0;
    bool wrongPath = false;
};

class Backend
{
  public:
    struct Config
    {
        unsigned retireWidth = 4;
        std::size_t queueDepth = 32;
    };

    explicit Backend(const Config &config);

    /** Free queue slots this cycle. */
    std::size_t freeSlots() const { return q.freeSlots(); }

    void deliver(const DeliveredInst &inst);

    /** Commit up to retireWidth correct-path instructions. */
    void tick(Cycle now);

    /**
     * Quiescence protocol: now + 1 when the backend can retire next
     * cycle; kNever when it is drained or its head is wrong-path
     * (only a delivery or redirect — someone else's event — can
     * unblock it). Never returns a cycle <= @p now.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Bulk-apply the per-cycle accounting of @p cycles ticks in which
     * the backend provably retires nothing (cycles, starved cycles,
     * lost retire slots). Callers may only charge ranges in which
     * nextEventCycle() reported quiescence.
     */
    void chargeIdleCycles(Cycle now, Cycle cycles);

    /** Drop queued wrong-path instructions (mispredict recovery). */
    void squashWrongPath();

    std::uint64_t committed() const { return numCommitted; }

    const Config &config() const { return cfg; }

    StatSet stats;

  private:
    StatSet::Counter stDelivered =
        stats.registerCounter("backend.delivered");
    StatSet::Counter stDeliveredWrongPath =
        stats.registerCounter("backend.delivered_wrong_path");
    StatSet::Counter stCycles = stats.registerCounter("backend.cycles");
    StatSet::Counter stStarvedCycles =
        stats.registerCounter("backend.starved_cycles");
    StatSet::Counter stRetireSlotsLost =
        stats.registerCounter("backend.retire_slots_lost");
    StatSet::Counter stSquashed = stats.registerCounter("backend.squashed");

    Config cfg;
    CircularQueue<DeliveredInst> q;
    std::uint64_t numCommitted = 0;
};

} // namespace fdip

#endif // FDIP_CORE_BACKEND_HH
