#include "core/backend.hh"

#include "common/logging.hh"

namespace fdip
{

Backend::Backend(const Config &config)
    : cfg(config), q(cfg.queueDepth)
{
    fatal_if(cfg.retireWidth == 0, "retire width must be nonzero");
}

void
Backend::deliver(const DeliveredInst &inst)
{
    panic_if(q.full(), "deliver to full backend queue");
    q.push(inst);
    stDelivered.inc();
    if (inst.wrongPath)
        stDeliveredWrongPath.inc();
}

void
Backend::tick(Cycle now)
{
    unsigned retired = 0;
    while (retired < cfg.retireWidth && !q.empty()) {
        const DeliveredInst &head = q.front();
        if (head.wrongPath) {
            // Wrong-path instructions are squashed by the redirect,
            // never committed; they just occupy window slots.
            break;
        }
        q.pop();
        ++numCommitted;
        ++retired;
    }
    stCycles.inc();
    if (retired == 0)
        stStarvedCycles.inc();
    stRetireSlotsLost.inc(cfg.retireWidth - retired);
}

Cycle
Backend::nextEventCycle(Cycle now) const
{
    if (!q.empty() && !q.front().wrongPath)
        return now + 1;
    return kNever;
}

void
Backend::chargeIdleCycles(Cycle now, Cycle cycles)
{
    panic_if(!q.empty() && !q.front().wrongPath,
             "idle-charging a backend that can retire");
    stCycles.inc(cycles);
    stStarvedCycles.inc(cycles);
    stRetireSlotsLost.inc(cycles * cfg.retireWidth);
}

void
Backend::squashWrongPath()
{
    // Wrong-path instructions are always younger than correct-path
    // ones, so they form the queue's tail: truncate at the first one.
    std::size_t keep = 0;
    while (keep < q.size() && !q.at(keep).wrongPath)
        ++keep;
    stSquashed.inc(q.size() - keep);
    q.truncate(keep);
}

} // namespace fdip
