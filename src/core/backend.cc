#include "core/backend.hh"

#include "common/logging.hh"

namespace fdip
{

Backend::Backend(const Config &config)
    : cfg(config), q(cfg.queueDepth)
{
    fatal_if(cfg.retireWidth == 0, "retire width must be nonzero");
}

void
Backend::deliver(const DeliveredInst &inst)
{
    panic_if(q.full(), "deliver to full backend queue");
    q.push(inst);
    stats.inc("backend.delivered");
    if (inst.wrongPath)
        stats.inc("backend.delivered_wrong_path");
}

void
Backend::tick(Cycle now)
{
    unsigned retired = 0;
    while (retired < cfg.retireWidth && !q.empty()) {
        const DeliveredInst &head = q.front();
        if (head.wrongPath) {
            // Wrong-path instructions are squashed by the redirect,
            // never committed; they just occupy window slots.
            break;
        }
        q.pop();
        ++numCommitted;
        ++retired;
    }
    stats.inc("backend.cycles");
    if (retired == 0)
        stats.inc("backend.starved_cycles");
    stats.inc("backend.retire_slots_lost", cfg.retireWidth - retired);
}

void
Backend::squashWrongPath()
{
    // Wrong-path instructions are always younger than correct-path
    // ones, so they form the queue's tail: truncate at the first one.
    std::size_t keep = 0;
    while (keep < q.size() && !q.at(keep).wrongPath)
        ++keep;
    stats.inc("backend.squashed", q.size() - keep);
    q.truncate(keep);
}

} // namespace fdip
