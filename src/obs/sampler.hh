/**
 * @file sampler.hh
 * Interval time-series sampling: every `sampleIntervalCycles` the
 * simulator snapshots the cumulative StatSet and the sampler turns it
 * into a per-interval delta row (IPC, MPKI, prefetch accuracy, FTQ
 * occupancy mean, walk-queue depth).
 *
 * Skip cooperation: nextBoundary() participates in the simulator's
 * nextEventCycle() aggregation, so an idle-cycle jump never crosses a
 * sample boundary — rows land at exactly the same cycles with and
 * without skipping, and taking a sample never alters simulated state.
 */

#ifndef FDIP_OBS_SAMPLER_HH
#define FDIP_OBS_SAMPLER_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"

namespace fdip
{

/** One per-interval delta row. */
struct SampleRow
{
    Cycle cycle = 0;          ///< boundary cycle (end of interval)
    Cycle intervalCycles = 0; ///< actual interval length
    std::uint64_t insts = 0;  ///< instructions retired this interval
    double ipc = 0.0;
    double mpki = 0.0;        ///< L1-I demand misses / kilo-inst
    double pfAccuracy = 0.0;  ///< useful / issued, this interval
    double ftqOccMean = 0.0;  ///< mean FTQ occupancy this interval
    std::uint64_t walksQueued = 0; ///< walk-queue depth at the boundary
    std::uint64_t prefetchesIssued = 0;
};

class IntervalSampler
{
  public:
    explicit IntervalSampler(Cycle intervalCycles);

    /** Next sample boundary; always strictly ahead of the last
     *  recorded boundary, suitable for nextEventCycle() aggregation. */
    Cycle nextBoundary() const { return next_; }

    /** True once the current cycle reached the boundary. */
    bool due(Cycle now) const { return now >= next_; }

    /**
     * Build the delta row for the interval ending at @p now from the
     * cumulative stats snapshot, then rebase for the next interval.
     * @p occCount / @p occWeighted are the FTQ occupancy histogram's
     * running count() / weightedTotal().
     */
    SampleRow record(Cycle now, const StatSet &cum, std::uint64_t occCount,
                     std::uint64_t occWeighted, std::uint64_t walksQueued);

    /** The FTQ occupancy histogram was reset (warmup boundary): forget
     *  the previous occupancy baseline. */
    void rebaselineOccupancy();

  private:
    Cycle interval_;
    Cycle next_;
    Cycle prevCycle_ = 0;
    StatSet prev_;
    std::uint64_t prevOccCount_ = 0;
    std::uint64_t prevOccWeighted_ = 0;
};

} // namespace fdip

#endif // FDIP_OBS_SAMPLER_HH
