/**
 * @file attribution.hh
 * Prefetch lifecycle attribution: classifies every issued prefetch as
 *
 *   timely         -- demand consumed the block from a prefetch buffer
 *                     or stream buffer after the fill completed (full
 *                     latency hidden)
 *   late           -- demand arrived while the prefetch was still in
 *                     flight and merged with it (partial hide)
 *   evicted-unused -- filled but displaced before any demand touched it
 *   pollution      -- a prefetch-triggered L2 fill displaced a line
 *                     that a demand access later missed on
 *
 * plus a fill-to-first-use distance histogram (log2 buckets) for the
 * timely class. The attribution is always on: it is pure bookkeeping
 * driven by MemHierarchy hooks, deterministic, and independent of the
 * idle-skip mode, so its counters are part of serializeResults().
 */

#ifndef FDIP_OBS_ATTRIBUTION_HH
#define FDIP_OBS_ATTRIBUTION_HH

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/histogram.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace fdip
{

class Tracer;

class PrefetchAttribution
{
  public:
    PrefetchAttribution();

    void setTracer(Tracer *t) { tracer_ = t; }
    Tracer *tracer() const { return tracer_; }

    /** A prefetch request for @p block left for memory at @p now. */
    void onIssue(Addr block, Cycle now);

    /** The prefetched @p block finished filling its buffer at @p now. */
    void onFill(Addr block, Cycle now);

    /** Demand consumed the filled @p block (timely). */
    void onConsume(Addr block, Cycle now);

    /** Demand merged with the still-in-flight prefetch of @p block
     *  (late: the prefetch hid only part of the miss latency). */
    void onDemandMerge(Addr block, Cycle now);

    /** The filled @p block was displaced before any demand use. */
    void onEvictUnused(Addr block);

    /**
     * @p block was inserted into L2, displacing @p victim (if any).
     * Prefetch-triggered fills arm pollution tracking on the victim;
     * any insert of an address disarms it as a victim.
     */
    void onL2Fill(Addr block, std::optional<Addr> victim, bool isPrefetch);

    /** A demand access missed L2 on @p block. */
    void onL2DemandMiss(Addr block);

    /** Fill-to-first-use distance of timely prefetches, log2 buckets:
     *  bucket 0 = same cycle, bucket k = [2^(k-1), 2^k) cycles. */
    const Histogram &timelinessHist() const { return fillToUse; }

    /** Warmup boundary: restart the histogram (counters are deltaed
     *  by the caller instead). */
    void resetHist() { fillToUse.reset(); }

    /** pfattr.{timely,late,evicted_unused,pollution} counters. */
    StatSet stats;

  private:
    struct Live
    {
        Cycle issuedAt = 0;
        Cycle filledAt = 0;
        bool filled = false;
    };

    void traceLifecycle(Addr block, const Live &lv, Cycle end,
                        const char *outcome);

    /** In-flight or filled-but-unused prefetched blocks. */
    std::unordered_map<Addr, Live> live;

    /** L2 victim address -> the prefetched block that displaced it. */
    std::unordered_map<Addr, Addr> victims;

    Histogram fillToUse;

    StatSet::Counter stTimely, stLate, stEvictedUnused, stPollution;

    Tracer *tracer_ = nullptr;
};

} // namespace fdip

#endif // FDIP_OBS_ATTRIBUTION_HH
