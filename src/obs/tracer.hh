/**
 * @file tracer.hh
 * Bounded ring-buffer event tracer emitting Chrome trace_event JSON
 * (load the file in Perfetto / chrome://tracing). Components hold a
 * raw `Tracer *` that is null when tracing is off, so the disabled
 * hot path is a single pointer test.
 *
 * Timestamps are simulated cycles reported in the trace's microsecond
 * field (1 cycle == 1 "us"); host time never appears, so traces are
 * deterministic across runs. Events land on fixed lanes (tid):
 * frontend, prefetch, memory, VM.
 */

#ifndef FDIP_OBS_TRACER_HH
#define FDIP_OBS_TRACER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace fdip
{

/** Trace lanes: tid values grouping events per subsystem. */
constexpr std::uint32_t kTidFrontend = 1;
constexpr std::uint32_t kTidPrefetch = 2;
constexpr std::uint32_t kTidMem = 3;
constexpr std::uint32_t kTidVm = 4;

/**
 * One trace_event record. Names and arg keys are string literals
 * (static storage) so the ring buffer stores only POD — no allocation
 * on the hot path.
 */
struct TraceEvent
{
    const char *name = nullptr;
    char ph = 'i';           ///< 'X' complete span, 'i' instant
    std::uint32_t tid = 0;   ///< lane (kTid*)
    std::uint64_t ts = 0;    ///< start cycle
    std::uint64_t dur = 0;   ///< span length ('X' only)
    const char *argKey = nullptr; ///< optional numeric arg
    std::uint64_t argVal = 0;
    const char *strKey = nullptr; ///< optional string arg (literal)
    const char *strVal = nullptr;
};

class Tracer
{
  public:
    /** @param capacity ring size; oldest events are overwritten. */
    explicit Tracer(std::size_t capacity);

    /** Current cycle, pushed by Simulator::step() each cycle so hooks
     *  deep in components need no `now` plumbing. */
    void setNow(Cycle now) { now_ = now; }
    Cycle now() const { return now_; }

    /** Record a completed span [start, end]. */
    void complete(const char *name, std::uint32_t tid, Cycle start,
                  Cycle end, const char *argKey = nullptr,
                  std::uint64_t argVal = 0, const char *strKey = nullptr,
                  const char *strVal = nullptr);

    /** Record a zero-duration marker at the current cycle. */
    void instant(const char *name, std::uint32_t tid,
                 const char *argKey = nullptr, std::uint64_t argVal = 0,
                 const char *strKey = nullptr, const char *strVal = nullptr);

    /** Events in arrival order (oldest surviving first); clears the
     *  ring (and the dropped counter) so a subsequent drain only sees
     *  newer events. */
    std::vector<TraceEvent> drain();

    /** Events discarded because the ring wrapped since the last
     *  drain(). */
    std::uint64_t dropped() const { return dropped_; }

    std::size_t size() const { return count_; }
    std::size_t capacity() const { return ring_.size(); }

  private:
    void push(const TraceEvent &e);

    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;  ///< next write position
    std::size_t count_ = 0; ///< live events (<= capacity)
    std::uint64_t dropped_ = 0;
    Cycle now_ = 0;
};

} // namespace fdip

#endif // FDIP_OBS_TRACER_HH
